// Adaptive Heartbeat Monitor: registration CAM, counter updates, adaptive
// timeout estimation, hang detection, and the fixed-timeout ablation mode.
#include "modules/ahbm/ahbm.hpp"

#include <gtest/gtest.h>

#include "mem/bus.hpp"
#include "mem/main_memory.hpp"
#include "rse/framework.hpp"

namespace rse::modules {
namespace {

struct AhbmFixture : ::testing::Test {
  mem::MainMemory memory;
  mem::BusArbiter bus{mem::BusTiming{19, 3, 8}};
  engine::Framework fw{memory, bus, 16};
  AhbmModule* ahbm = nullptr;
  std::vector<std::pair<u32, Cycle>> hangs;

  void configure(AhbmConfig config) {
    auto module = std::make_unique<AhbmModule>(fw, config);
    ahbm = module.get();
    fw.add_module(std::move(module));
    ahbm->set_enabled(true);
    ahbm->set_hang_handler([this](u32 entity, Cycle now, Cycle) { hangs.push_back({entity, now}); });
  }

  void SetUp() override {
    AhbmConfig config;
    config.sample_interval = 100;
    config.min_timeout = 200;
    configure(config);
  }

  /// Beat entity regularly every `gap` cycles from `from` to `to`.
  void beat_regularly(u32 entity, Cycle from, Cycle to, Cycle gap) {
    for (Cycle c = from; c <= to; c += gap) ahbm->beat(entity, c);
  }

  void tick_range(Cycle from, Cycle to) {
    for (Cycle c = from; c <= to; ++c) ahbm->tick(c);
  }
};

TEST_F(AhbmFixture, RegisterAndBeatUpdatesCounter) {
  EXPECT_TRUE(ahbm->register_entity(7, 0));
  ahbm->beat(7, 10);
  ahbm->beat(7, 20);
  EXPECT_EQ(ahbm->stats().beats_received, 2u);
}

TEST_F(AhbmFixture, BeatToUnregisteredEntityIgnored) {
  ahbm->beat(42, 10);
  EXPECT_EQ(ahbm->stats().beats_received, 0u);
}

TEST_F(AhbmFixture, CamCapacityBounded) {
  AhbmConfig config;
  config.entity_slots = 2;
  fw.recouple();
  engine::Framework fw2{memory, bus, 16};
  AhbmModule small(fw2, config);
  EXPECT_TRUE(small.register_entity(1, 0));
  EXPECT_TRUE(small.register_entity(2, 0));
  EXPECT_FALSE(small.register_entity(3, 0));
  small.unregister_entity(1);
  EXPECT_TRUE(small.register_entity(3, 0));
}

TEST_F(AhbmFixture, HealthyEntityNeverDeclaredHung) {
  ahbm->register_entity(1, 0);
  Cycle t = 0;
  for (int i = 0; i < 200; ++i) {
    t += 50;
    ahbm->beat(1, t);
    tick_range(t - 49, t);
  }
  EXPECT_TRUE(hangs.empty());
}

TEST_F(AhbmFixture, SilentEntityDetected) {
  ahbm->register_entity(1, 0);
  beat_regularly(1, 50, 1000, 50);
  tick_range(1, 1000);
  ASSERT_TRUE(hangs.empty());
  // The entity goes silent; detection follows within a few timeouts.
  tick_range(1001, 5000);
  ASSERT_EQ(hangs.size(), 1u);
  EXPECT_EQ(hangs[0].first, 1u);
  EXPECT_GT(hangs[0].second, 1000u);
}

TEST_F(AhbmFixture, AdaptiveTimeoutTracksBeatRate) {
  ahbm->register_entity(1, 0);
  ahbm->register_entity(2, 0);
  // Entity 1 beats every 50 cycles; entity 2 every 400.
  for (Cycle c = 1; c <= 4000; ++c) {
    if (c % 50 == 0) ahbm->beat(1, c);
    if (c % 400 == 0) ahbm->beat(2, c);
    ahbm->tick(c);
  }
  const Cycle timeout1 = ahbm->timeout_of(1).value();
  const Cycle timeout2 = ahbm->timeout_of(2).value();
  EXPECT_LT(timeout1, timeout2);  // slower heart -> longer rope
  EXPECT_GE(timeout2, 400u);
}

TEST_F(AhbmFixture, SlowEntityNotFalselyAccused) {
  // A 400-cycle heart must not trip a detector that adapted to it, even
  // though a 200-cycle min timeout would have flagged it under a fixed
  // aggressive setting.
  ahbm->register_entity(2, 0);
  for (Cycle c = 1; c <= 8000; ++c) {
    if (c % 400 == 0) ahbm->beat(2, c);
    ahbm->tick(c);
  }
  EXPECT_TRUE(hangs.empty());
}

TEST_F(AhbmFixture, ResumedEntityCountsFalseResume) {
  ahbm->register_entity(1, 0);
  beat_regularly(1, 50, 500, 50);
  tick_range(1, 3000);  // goes silent -> declared hung
  ASSERT_EQ(hangs.size(), 1u);
  ahbm->beat(1, 3001);  // it was merely slow
  EXPECT_EQ(ahbm->stats().false_resumes, 1u);
  // And it can be detected again after a second silence.
  beat_regularly(1, 3050, 3500, 50);
  tick_range(3002, 9000);
  EXPECT_EQ(hangs.size(), 2u);
}

TEST_F(AhbmFixture, FixedTimeoutMode) {
  AhbmConfig config;
  config.adaptive = false;
  config.fixed_timeout = 300;
  config.sample_interval = 100;
  engine::Framework fw2{memory, bus, 16};
  AhbmModule fixed(fw2, config);
  std::vector<u32> detected;
  fixed.set_hang_handler([&](u32 entity, Cycle, Cycle) { detected.push_back(entity); });
  fixed.register_entity(1, 0);
  // Beats every 400 > fixed 300: false alarm by design.
  for (Cycle c = 1; c <= 2000; ++c) {
    if (c % 400 == 0) fixed.beat(1, c);
    fixed.tick(c);
  }
  EXPECT_FALSE(detected.empty());
}

TEST_F(AhbmFixture, ChkInstructionsDriveTheModule) {
  engine::DispatchInfo chk;
  chk.tag = {0, 1};
  chk.instr.op = isa::Op::kChk;
  chk.instr.chk_module = isa::ModuleId::kAhbm;
  chk.instr.chk_op = kAhbmOpRegister;
  chk.operands[0] = 5;
  chk.operand_count = 1;
  fw.ioq().allocate(chk.tag, true, isa::ModuleId::kAhbm, 0);
  ahbm->on_dispatch(chk, 0);
  EXPECT_TRUE(fw.check_bits(0).check_valid);  // non-blocking ack
  EXPECT_EQ(ahbm->stats().registrations, 1u);

  chk.instr.chk_op = kAhbmOpBeat;
  chk.tag = {1, 2};
  fw.ioq().allocate(chk.tag, true, isa::ModuleId::kAhbm, 1);
  ahbm->on_dispatch(chk, 1);
  EXPECT_EQ(ahbm->stats().beats_received, 1u);

  chk.instr.chk_op = kAhbmOpUnregister;
  chk.tag = {2, 3};
  fw.ioq().allocate(chk.tag, true, isa::ModuleId::kAhbm, 2);
  ahbm->on_dispatch(chk, 2);
  ahbm->beat(5, 10);
  EXPECT_EQ(ahbm->stats().beats_received, 1u);  // unregistered: ignored
}

}  // namespace
}  // namespace rse::modules
