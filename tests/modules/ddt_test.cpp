// Data Dependency Tracker unit tests: the Figure 5 page-state machine, the
// dependency matrix, SavePage generation, and the PST structures.
#include "modules/ddt/ddt.hpp"

#include <gtest/gtest.h>

#include "mem/bus.hpp"
#include "mem/main_memory.hpp"
#include "rse/framework.hpp"

namespace rse::modules {
namespace {

struct DdtFixture : ::testing::Test {
  mem::MainMemory memory;
  mem::BusArbiter bus{mem::BusTiming{19, 3, 8}};
  engine::Framework fw{memory, bus, 16};
  DdtModule* ddt = nullptr;
  std::vector<std::pair<u32, ThreadId>> saves;

  void SetUp() override {
    auto module = std::make_unique<DdtModule>(fw);
    ddt = module.get();
    fw.add_module(std::move(module));
    ddt->set_enabled(true);
    ddt->set_save_page_handler([this](u32 page, ThreadId writer, Cycle) {
      saves.push_back({page, writer});
      return Cycle{100};
    });
  }

  engine::CommitInfo mem_op(ThreadId thread, isa::Op op, Addr addr, u64 seq = 1) {
    engine::CommitInfo info;
    info.tag = {0, seq};
    info.instr.op = op;
    info.thread = thread;
    info.eff_addr = addr;
    return info;
  }

  void load(ThreadId t, Addr addr) { ddt->on_commit(mem_op(t, isa::Op::kLw, addr), 0); }
  Cycle store(ThreadId t, Addr addr) {
    return ddt->on_store_commit(mem_op(t, isa::Op::kSw, addr), 0);
  }
};

TEST_F(DdtFixture, FirstTouchTakesOwnershipWithoutSave) {
  EXPECT_EQ(store(1, 0x1000), 0u);
  EXPECT_TRUE(saves.empty());
  const auto owners = ddt->page_owners(1);
  EXPECT_EQ(owners.write_owner, 1u);
  EXPECT_EQ(owners.read_owner, 1u);
}

TEST_F(DdtFixture, OwnerRereadAndRewriteAreFree) {
  store(1, 0x1000);
  load(1, 0x1004);
  EXPECT_EQ(store(1, 0x1008), 0u);
  EXPECT_TRUE(saves.empty());
  EXPECT_EQ(ddt->stats().dependencies_logged, 0u);
}

TEST_F(DdtFixture, ForeignReadLogsDependency) {
  // Figure 5: (t,t) --(s,r)/log(t->s)--> (t,s)
  store(2, 0x1000);
  load(1, 0x1000);
  EXPECT_TRUE(ddt->depends(2, 1));   // thread 1 depends on producer 2
  EXPECT_FALSE(ddt->depends(1, 2));  // not symmetric
  EXPECT_EQ(ddt->page_owners(1).read_owner, 1u);
  EXPECT_EQ(ddt->page_owners(1).write_owner, 2u);
}

TEST_F(DdtFixture, ForeignWriteRaisesSavePage) {
  // Figure 5: a write by a non-owner triggers SavePage and transfers both
  // ownerships to the writer.
  store(1, 0x2000);
  const Cycle stall = store(2, 0x2004);
  EXPECT_EQ(stall, 100u);
  ASSERT_EQ(saves.size(), 1u);
  EXPECT_EQ(saves[0].first, 2u);       // page number
  EXPECT_EQ(saves[0].second, 2u);      // new writer
  EXPECT_EQ(ddt->page_owners(2).write_owner, 2u);
  EXPECT_EQ(ddt->page_owners(2).read_owner, 2u);
}

TEST_F(DdtFixture, DependencyCountedOncePerThreadPair) {
  // The DDM is a bit matrix: re-establishing the same producer->consumer
  // edge (even through a different page) sets no new bit.
  store(2, 0x1000);
  load(1, 0x1000);
  load(1, 0x1000);
  store(2, 0x3000);
  load(1, 0x3000);
  EXPECT_EQ(ddt->stats().dependencies_logged, 1u);
  EXPECT_TRUE(ddt->depends(2, 1));
}

TEST_F(DdtFixture, WriteAfterForeignWriteDoesNotLogDependency) {
  store(1, 0x1000);
  store(2, 0x1000);  // overwrite, no read: no dependency
  EXPECT_FALSE(ddt->depends(1, 2));
  EXPECT_EQ(saves.size(), 1u);
}

TEST_F(DdtFixture, TransitiveClosureFollowsChains) {
  // t2 -> t1 -> t0 (Figure 8 shape): killing t2 takes t1 and t0 with it.
  store(2, 0x1000);
  load(1, 0x1000);   // t1 depends on t2
  store(1, 0x2000);
  load(0, 0x2000);   // t0 depends on t1
  const auto closure = ddt->dependent_closure(2);
  EXPECT_EQ(closure, (std::vector<ThreadId>{0, 1, 2}));
  // Killing t0 instead takes only t0 (and t1 via the p3 edge is absent here).
  EXPECT_EQ(ddt->dependent_closure(0), (std::vector<ThreadId>{0}));
}

TEST_F(DdtFixture, ClosureHandlesCycles) {
  store(1, 0x1000);
  load(2, 0x1000);  // 1 -> 2
  store(2, 0x2000);
  load(1, 0x2000);  // 2 -> 1 (cycle)
  EXPECT_EQ(ddt->dependent_closure(1), (std::vector<ThreadId>{1, 2}));
  EXPECT_EQ(ddt->dependent_closure(2), (std::vector<ThreadId>{1, 2}));
}

TEST_F(DdtFixture, ForgetThreadsClearsRowsColumnsAndOwnership) {
  store(2, 0x1000);
  load(1, 0x1000);
  store(3, 0x4000);
  load(1, 0x4000);  // 3 -> 1
  ddt->forget_threads({2});
  EXPECT_FALSE(ddt->depends(2, 1));
  EXPECT_TRUE(ddt->depends(3, 1));  // unrelated edge survives
  EXPECT_EQ(ddt->page_owners(1).write_owner, kNoThread);  // page of 0x1000 forgotten
}

TEST_F(DdtFixture, PstEvictionForgetsColdPages) {
  DdtConfig config;
  config.pst_entries = 2;
  auto module = std::make_unique<DdtModule>(fw, config);
  DdtModule* small = module.get();
  small->set_enabled(true);
  small->set_save_page_handler([](u32, ThreadId, Cycle) { return Cycle{0}; });
  engine::CommitInfo info;
  info.instr.op = isa::Op::kSw;
  info.thread = 1;
  for (Addr a : {0x1000u, 0x2000u, 0x3000u}) {
    info.eff_addr = a;
    small->on_store_commit(info, 0);
  }
  EXPECT_EQ(small->stats().pst_evictions, 1u);
  EXPECT_EQ(small->page_owners(1).write_owner, kNoThread);  // evicted
  EXPECT_EQ(small->page_owners(3).write_owner, 1u);         // hot entry kept
}

TEST_F(DdtFixture, DisabledModuleTracksNothing) {
  ddt->set_enabled(false);
  // The framework never routes events to disabled modules; even direct calls
  // after re-enable start from a clean slate because disable resets state.
  store(1, 0x1000);
  ddt->set_enabled(true);
  EXPECT_EQ(ddt->page_owners(1).write_owner, 1u);  // direct call did record
}

TEST_F(DdtFixture, ResetClearsMatrixAndPst) {
  store(2, 0x1000);
  load(1, 0x1000);
  ddt->reset();
  EXPECT_FALSE(ddt->depends(2, 1));
  EXPECT_EQ(ddt->page_owners(1).write_owner, kNoThread);
}

TEST_F(DdtFixture, FootprintViolationRaisedOnlyAtCheckedSites) {
  DdtFootprint footprint;
  footprint.checked_pcs = {0x400010};
  footprint.pages = {mem::page_of(0x1000)};
  footprint.store_pages = {mem::page_of(0x1000)};
  ddt->set_footprint_table(footprint);

  std::vector<std::pair<Addr, u32>> violations;
  ddt->set_footprint_violation_handler(
      [&](Addr pc, u32 page, ThreadId, bool, Cycle) { violations.push_back({pc, page}); });

  auto store_at = [&](Addr pc, Addr addr) {
    engine::CommitInfo info = mem_op(1, isa::Op::kSw, addr);
    info.pc = pc;
    ddt->on_store_commit(info, 0);
  };
  store_at(0x400010, 0x1004);  // checked site, predicted page: clean
  store_at(0x400010, 0x5000);  // checked site, outside the footprint
  store_at(0x400020, 0x9000);  // unresolved site: never checked
  EXPECT_EQ(ddt->stats().footprint_checks, 2u);
  EXPECT_EQ(ddt->stats().footprint_violations, 1u);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].first, 0x400010u);
  EXPECT_EQ(violations[0].second, mem::page_of(0x5000));
}

TEST_F(DdtFixture, FootprintPrereservesPstEntriesAndCountsFirstTouch) {
  DdtFootprint footprint;
  footprint.checked_pcs = {0x400010};
  footprint.pages = {mem::page_of(0x1000), mem::page_of(0x2000)};
  footprint.store_pages = {mem::page_of(0x1000), mem::page_of(0x2000)};
  ddt->set_footprint_table(footprint);
  EXPECT_EQ(ddt->stats().pst_prereserved, 2u);
  EXPECT_EQ(ddt->tracked_pages(),
            (std::vector<u32>{mem::page_of(0x1000), mem::page_of(0x2000)}));

  store(1, 0x1000);
  store(1, 0x1004);  // same page: only the first touch is a prereserve hit
  EXPECT_EQ(ddt->stats().prereserve_hits, 1u);
  EXPECT_TRUE(saves.empty()) << "a pre-reserved entry must not raise SavePage";
}

TEST_F(DdtFixture, AddFootprintPagesWhitelistsRuntimePages) {
  DdtFootprint footprint;
  footprint.checked_pcs = {0x400010};
  footprint.pages = {mem::page_of(0x1000)};
  ddt->set_footprint_table(footprint);
  ddt->add_footprint_pages({mem::page_of(0x7000)});

  engine::CommitInfo info = mem_op(1, isa::Op::kSw, 0x7004);
  info.pc = 0x400010;
  ddt->on_store_commit(info, 0);
  EXPECT_EQ(ddt->stats().footprint_violations, 0u)
      << "a page whitelisted at run time must not violate";
}

TEST_F(DdtFixture, ResetClearsStatsButKeepsFootprintConfig) {
  DdtFootprint footprint;
  footprint.checked_pcs = {0x400010};
  footprint.pages = {mem::page_of(0x1000)};
  footprint.store_pages = {mem::page_of(0x1000)};
  ddt->set_footprint_table(footprint);
  engine::CommitInfo info = mem_op(1, isa::Op::kSw, 0x5000);
  info.pc = 0x400010;
  ddt->on_store_commit(info, 0);
  EXPECT_EQ(ddt->stats().footprint_violations, 1u);

  ddt->reset();
  EXPECT_EQ(ddt->stats().footprint_violations, 0u);
  EXPECT_TRUE(ddt->has_footprint()) << "the footprint is load-time config: survives reset";
  EXPECT_EQ(ddt->stats().pst_prereserved, 1u)
      << "reset re-applies pre-reservation to the fresh PST";
}

TEST_F(DdtFixture, ReplacingFootprintTableRebuildsPrereservation) {
  // Regression: installing a second footprint table (a new program load)
  // merged the new pre-reservation into the previous table's speculative
  // PST entries instead of replacing them — the old program's predicted
  // pages stayed resident, consuming PST capacity and counting as tracked.
  DdtFootprint first;
  first.checked_pcs = {0x400010};
  first.pages = {mem::page_of(0x1000), mem::page_of(0x2000)};
  first.store_pages = {mem::page_of(0x1000), mem::page_of(0x2000)};
  ddt->set_footprint_table(first);
  EXPECT_EQ(ddt->tracked_pages(),
            (std::vector<u32>{mem::page_of(0x1000), mem::page_of(0x2000)}));

  // One prediction is confirmed by a real store before the replacement: the
  // entry holds live dependence state and must survive.
  store(1, 0x1000);

  DdtFootprint second;
  second.checked_pcs = {0x400020};
  second.pages = {mem::page_of(0x3000)};
  second.store_pages = {mem::page_of(0x3000)};
  ddt->set_footprint_table(second);

  // The unconfirmed 0x2000 prediction is gone; the confirmed 0x1000 entry
  // and the new table's 0x3000 pre-reservation remain.
  EXPECT_EQ(ddt->tracked_pages(),
            (std::vector<u32>{mem::page_of(0x1000), mem::page_of(0x3000)}));
  EXPECT_EQ(ddt->page_owners(mem::page_of(0x1000)).write_owner, 1u)
      << "a store-confirmed entry is live dynamic state and survives";

  // The old table's page set must no longer whitelist accesses.
  engine::CommitInfo info = mem_op(1, isa::Op::kSw, 0x2000);
  info.pc = 0x400020;
  ddt->on_store_commit(info, 0);
  EXPECT_EQ(ddt->stats().footprint_violations, 1u)
      << "the replaced table's pages must not leak into the new whitelist";
}

TEST_F(DdtFixture, ReenableClearsEvictionCount) {
  // Regression: pst_evictions survived a disable/re-enable cycle while the
  // PST itself was cleared, so stats disagreed with the table they describe.
  // Module reset semantics are uniform now: dynamic state AND stats go back
  // to zero together.
  DdtConfig config;
  config.pst_entries = 2;
  auto module = std::make_unique<DdtModule>(fw, config);
  DdtModule* small = module.get();
  small->set_enabled(true);
  engine::CommitInfo info;
  info.instr.op = isa::Op::kSw;
  info.thread = 1;
  for (Addr a : {0x1000u, 0x2000u, 0x3000u}) {
    info.eff_addr = a;
    small->on_store_commit(info, 0);
  }
  ASSERT_EQ(small->stats().pst_evictions, 1u);

  small->set_enabled(false);  // disable resets the module
  small->set_enabled(true);
  EXPECT_EQ(small->stats().pst_evictions, 0u);
  EXPECT_EQ(small->stats().tracked_stores, 0u);
  EXPECT_TRUE(small->tracked_pages().empty());
}

TEST_F(DdtFixture, QueryMatrixWritesDdmToGuestMemory) {
  store(2, 0x1000);
  load(1, 0x1000);  // DDM row 2 has bit 1 set
  engine::DispatchInfo chk;
  chk.tag = {3, 9};
  chk.instr.op = isa::Op::kChk;
  chk.instr.chk_module = isa::ModuleId::kDdt;
  chk.instr.chk_blocking = true;
  chk.instr.chk_op = kDdtOpQueryMatrix;
  chk.operands[0] = 0x9000;  // destination buffer
  chk.operand_count = 1;
  fw.ioq().allocate(chk.tag, true, isa::ModuleId::kDdt, 0);
  ddt->on_dispatch(chk, 0);
  for (Cycle c = 1; c < 2000 && !fw.check_bits(3).check_valid; ++c) fw.tick(c);
  EXPECT_TRUE(fw.check_bits(3).check_valid);
  const u64 row2 = memory.read_u32(0x9000 + 2 * 8) |
                   (static_cast<u64>(memory.read_u32(0x9000 + 2 * 8 + 4)) << 32);
  EXPECT_EQ(row2, u64{1} << 1);
}

}  // namespace
}  // namespace rse::modules
