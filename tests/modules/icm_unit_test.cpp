// White-box ICM tests against a bare framework (no core): CHECK/checked
// pairing, Icm_Cache block-fetch spatial locality, squash handling, and
// checker-memory layout.
#include <gtest/gtest.h>

#include "mem/bus.hpp"
#include "mem/main_memory.hpp"
#include "modules/icm/icm.hpp"
#include "rse/framework.hpp"

namespace rse::modules {
namespace {

struct IcmUnit : ::testing::Test {
  mem::MainMemory memory;
  mem::BusArbiter bus{mem::BusTiming{19, 3, 8}};
  engine::Framework fw{memory, bus, 16};
  IcmModule* icm = nullptr;
  Cycle clock = 0;

  void SetUp() override {
    auto module = std::make_unique<IcmModule>(fw);
    icm = module.get();
    fw.add_module(std::move(module));
    icm->set_enabled(true);
  }

  engine::DispatchInfo chk(u32 slot, u64 seq) {
    engine::DispatchInfo info;
    info.tag = {slot, seq};
    info.instr.op = isa::Op::kChk;
    info.instr.chk_module = isa::ModuleId::kIcm;
    info.instr.chk_blocking = true;
    return info;
  }

  engine::DispatchInfo checked(u32 slot, u64 seq, Addr pc, Word raw) {
    engine::DispatchInfo info;
    info.tag = {slot, seq};
    info.pc = pc;
    info.raw = raw;
    info.instr = isa::decode(raw);
    return info;
  }

  /// Dispatch a chk+instruction pair through the framework and tick until
  /// the IOQ answers or the budget runs out; returns the check bits.
  engine::Ioq::CheckBits run_pair(u32 slot, u64 seq, Addr pc, Word raw, Cycle budget = 500) {
    fw.on_dispatch(chk(slot, seq), clock);
    fw.on_dispatch(checked(slot + 1, seq + 1, pc, raw), clock);
    for (Cycle c = 0; c < budget; ++c) {
      fw.tick(++clock);
      const auto bits = fw.check_bits(slot);
      if (bits.check_valid) return bits;
    }
    return fw.check_bits(slot);
  }
};

TEST_F(IcmUnit, MatchingCopyPasses) {
  icm->register_checked_instruction(0x400010, 0x01284820);
  const auto bits = run_pair(0, 1, 0x400010, 0x01284820);
  EXPECT_TRUE(bits.check_valid);
  EXPECT_FALSE(bits.check);
  EXPECT_EQ(icm->stats().mismatches, 0u);
}

TEST_F(IcmUnit, CorruptedBinaryFlagged) {
  icm->register_checked_instruction(0x400010, 0x01284820);
  const auto bits = run_pair(0, 1, 0x400010, 0x01284820 ^ 0x00FF0000);
  EXPECT_TRUE(bits.check_valid);
  EXPECT_TRUE(bits.check);
  EXPECT_EQ(icm->stats().mismatches, 1u);
}

TEST_F(IcmUnit, EveryBitPositionDetected) {
  // Single-bit flips at every position must all mismatch.
  const Word golden = 0x0128A020;
  for (unsigned bit = 0; bit < 32; ++bit) {
    const Addr pc = 0x400000 + bit * 4;
    icm->register_checked_instruction(pc, golden);
  }
  for (unsigned bit = 0; bit < 32; ++bit) {
    const Addr pc = 0x400000 + bit * 4;
    const auto bits = run_pair((bit * 2) % 14, 100 + bit * 2, pc, golden ^ (1u << bit));
    EXPECT_TRUE(bits.check_valid) << "bit " << bit;
    EXPECT_TRUE(bits.check) << "bit " << bit;
  }
  EXPECT_EQ(icm->stats().mismatches, 32u);
}

TEST_F(IcmUnit, BlockFetchBringsNeighborsIntoCache) {
  // Contiguous CheckerMemory placement: one MAU fetch covers the block, so
  // neighbors registered in program order hit without further misses.
  for (int i = 0; i < 8; ++i) {
    icm->register_checked_instruction(0x400100 + i * 4, 0x2000000u + i);
  }
  run_pair(0, 1, 0x400100, 0x2000000u);  // miss: fetches the whole block
  EXPECT_EQ(icm->stats().cache_misses, 1u);
  for (int i = 1; i < 8; ++i) {
    run_pair((2 * i) % 14, 10 + 2 * i, 0x400100 + i * 4, 0x2000000u + i);
  }
  EXPECT_EQ(icm->stats().cache_misses, 1u);  // all neighbors hit
  EXPECT_EQ(icm->stats().cache_hits, 7u);
}

TEST_F(IcmUnit, SquashedChkDropsPendingCheck) {
  icm->register_checked_instruction(0x400010, 0x01284820);
  fw.on_dispatch(chk(0, 1), clock);
  fw.on_squash({0, 1}, clock);
  for (Cycle c = 0; c < 50; ++c) fw.tick(++clock);
  // No stuck pending state: a later pair still works and the dead CHECK
  // never wrote the IOQ.
  EXPECT_EQ(icm->stats().checks_started, 0u);
  const auto bits = run_pair(4, 9, 0x400010, 0x01284820);
  EXPECT_TRUE(bits.check_valid);
  EXPECT_FALSE(bits.check);
}

TEST_F(IcmUnit, SquashedCheckedInstructionDropsCheck) {
  icm->register_checked_instruction(0x400010, 0x01284820);
  fw.on_dispatch(chk(0, 1), clock);
  fw.on_dispatch(checked(1, 2, 0x400010, 0x01284820), clock);
  ++clock;
  fw.tick(clock);  // the pair is formed
  fw.on_squash({1, 2}, clock);  // the checked instruction dies (wrong path)
  fw.on_squash({0, 1}, clock);
  for (Cycle c = 0; c < 100; ++c) fw.tick(++clock);
  // The module drained its pending state without writing a freed entry.
  const auto bits = run_pair(6, 11, 0x400010, 0x01284820);
  EXPECT_TRUE(bits.check_valid);
}

TEST_F(IcmUnit, ReRegistrationRefreshesTheCopy) {
  icm->register_checked_instruction(0x400010, 0x01284820);
  icm->register_checked_instruction(0x400010, 0xDEADBEEF);  // program reloaded
  const auto bits = run_pair(0, 1, 0x400010, 0xDEADBEEF);
  EXPECT_TRUE(bits.check_valid);
  EXPECT_FALSE(bits.check);
}

TEST_F(IcmUnit, ClearCheckerMemoryResetsLayout) {
  icm->register_checked_instruction(0x400010, 0x01284820);
  icm->clear_checker_memory();
  icm->register_checked_instruction(0x400020, 0x11111111);
  const auto bits = run_pair(0, 1, 0x400020, 0x11111111);
  EXPECT_TRUE(bits.check_valid);
  EXPECT_FALSE(bits.check);
  // The old PC is unknown now: completes as MATCH with the unknown_pc stat.
  const auto old = run_pair(4, 10, 0x400010, 0x01284820);
  EXPECT_TRUE(old.check_valid);
  EXPECT_FALSE(old.check);
  EXPECT_EQ(icm->stats().unknown_pc, 1u);
}

TEST_F(IcmUnit, BackToBackChecksAllComplete) {
  for (int i = 0; i < 6; ++i) {
    icm->register_checked_instruction(0x400200 + i * 4, 0x3000000u + i);
  }
  // Dispatch three pairs in the same cycle (a full dispatch group).
  fw.on_dispatch(chk(0, 1), clock);
  fw.on_dispatch(checked(1, 2, 0x400200, 0x3000000u), clock);
  fw.on_dispatch(chk(2, 3), clock);
  fw.on_dispatch(checked(3, 4, 0x400204, 0x3000001u), clock);
  fw.on_dispatch(chk(4, 5), clock);
  fw.on_dispatch(checked(5, 6, 0x400208, 0x3000002u), clock);
  for (Cycle c = 0; c < 500; ++c) fw.tick(++clock);
  EXPECT_TRUE(fw.check_bits(0).check_valid);
  EXPECT_TRUE(fw.check_bits(2).check_valid);
  EXPECT_TRUE(fw.check_bits(4).check_valid);
  EXPECT_EQ(icm->stats().checks_completed, 3u);
  EXPECT_EQ(icm->stats().mismatches, 0u);
}

}  // namespace
}  // namespace rse::modules
