// Instruction Checker Module: redundant-copy comparison, Icm_Cache
// behaviour, mismatch -> flush -> retry recovery, and containment of
// persistent corruption.
#include <gtest/gtest.h>

#include "../support/sim_runner.hpp"

namespace rse {
namespace {

os::MachineConfig rse_machine() {
  os::MachineConfig config;
  config.framework_present = true;
  return config;
}

// A checked loop: the CHECK guards the loop branch, executed many times.
constexpr const char* kCheckedLoop = R"(
.text
main:
  chk frame, 1, nblk, r0, 1   # enable ICM
  li t0, 0
  li t1, 0
loop:
  li t2, 50
  add t1, t1, t0
  addi t0, t0, 1
  chk icm, 0, blk, r0, 0
  blt t0, t2, loop
  move a0, t1
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)";

TEST(Icm, CleanRunPassesAllChecks) {
  testing::SimRunner runner(rse_machine());
  runner.load_source(kCheckedLoop);
  runner.run();
  EXPECT_EQ(runner.os().output(), "1225");
  const auto& stats = runner.machine().icm()->stats();
  EXPECT_GE(stats.checks_completed, 50u);
  EXPECT_EQ(stats.mismatches, 0u);
  EXPECT_EQ(runner.core_stats().check_error_flushes, 0u);
}

TEST(Icm, RepeatedCheckHitsIcmCache) {
  testing::SimRunner runner(rse_machine());
  runner.load_source(kCheckedLoop);
  runner.run();
  const auto& stats = runner.machine().icm()->stats();
  EXPECT_GT(stats.cache_hits, stats.cache_misses);
  EXPECT_GE(stats.cache_misses, 1u);  // the first encounter misses
}

TEST(Icm, BlockingCheckStallsCommit) {
  testing::SimRunner runner(rse_machine());
  runner.load_source(kCheckedLoop);
  runner.run();
  // The synchronous mode costs commit-stall cycles at least on cache misses.
  EXPECT_GT(runner.core_stats().chk_commit_stall_cycles, 0u);
}

TEST(Icm, TransientFetchFaultDetectedAndRetried) {
  testing::SimRunner runner(rse_machine());
  runner.load_source(kCheckedLoop);
  // Corrupt the checked branch instruction exactly once on its way from
  // memory to dispatch (multi-bit flip in the register field).
  const Addr victim = runner.program().symbol("loop") + 3 * 4;  // the chk
  const Addr checked = victim + 4;                              // the blt
  int injections = 0;
  runner.machine().core().set_fetch_fault_hook([&](Addr pc, Word raw) -> Word {
    if (pc == checked && injections == 0) {
      ++injections;
      return raw ^ 0x00030000;  // corrupt a register field
    }
    return raw;
  });
  runner.run();
  EXPECT_EQ(injections, 1);
  EXPECT_EQ(runner.os().output(), "1225");  // retried and recovered
  EXPECT_GE(runner.machine().icm()->stats().mismatches, 1u);
  EXPECT_GE(runner.core_stats().check_error_flushes, 1u);
  EXPECT_GE(runner.os().stats().check_error_retries, 1u);
}

TEST(Icm, PersistentCorruptionIsContained) {
  testing::SimRunner runner(rse_machine());
  runner.load_source(kCheckedLoop);
  const Addr checked = runner.program().symbol("loop") + 4 * 4;  // the blt
  // Corrupt the instruction in main memory itself: every fetch (and every
  // retry) sees the corrupted bits, while CheckerMemory holds the original.
  const Word original = runner.machine().memory().read_u32(checked);
  runner.machine().memory().write_u32(checked, original ^ 0x00FF0000);
  runner.run();
  // The OS exhausts the retry budget and contains the fault by terminating
  // the process rather than letting the corrupted instruction commit.
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().exit_code(), 139);
  EXPECT_GE(runner.os().stats().check_error_aborts, 1u);
}

TEST(Icm, CorruptionWithoutIcmGoesUndetected) {
  // Control experiment: same corruption, module disabled -> silent wrong
  // output (this is what the ICM exists to prevent).
  testing::SimRunner runner(rse_machine());
  runner.load_source(R"(
.text
main:
  li t0, 0
  li t1, 0
loop:
  li t2, 50
  add t1, t1, t0
  addi t0, t0, 1
  blt t0, t2, loop
  move a0, t1
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)");
  const Addr add_pc = runner.program().symbol("loop") + 4;
  const Word original = runner.machine().memory().read_u32(add_pc);
  // add t1,t1,t0 -> sub t1,t1,t0 (funct 0x20 -> 0x22)
  runner.machine().memory().write_u32(add_pc, original ^ 0x2);
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_NE(runner.os().output(), "1225");  // silently wrong
}

TEST(Icm, UnregisteredCheckedPcCompletesAsMatch) {
  testing::SimRunner runner(rse_machine());
  runner.load_source(kCheckedLoop);
  runner.machine().icm()->clear_checker_memory();  // loader bug simulation
  runner.run();
  EXPECT_EQ(runner.os().output(), "1225");  // never wedges the pipeline
  EXPECT_GT(runner.machine().icm()->stats().unknown_pc, 0u);
}

TEST(Icm, ManyDistinctChecksEvictLruEntries) {
  os::MachineConfig config = rse_machine();
  config.icm.cache_entries = 4;  // tiny cache forces evictions
  testing::SimRunner runner(config);
  // 8 distinct checked instructions in a loop: working set exceeds cache.
  std::string source = ".text\nmain:\n  chk frame, 1, nblk, r0, 1\n  li t0, 0\nloop:\n";
  for (int i = 0; i < 8; ++i) {
    source += "  chk icm, 0, blk, r0, 0\n  addi t1, t1, " + std::to_string(i) + "\n";
  }
  source += R"(  addi t0, t0, 1
  li t2, 10
  blt t0, t2, loop
  li a0, 0
  li v0, 1
  syscall
)";
  runner.load_source(source);
  runner.run();
  const auto& stats = runner.machine().icm()->stats();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(stats.mismatches, 0u);
  // With block fetch of 8 words the set may still fit per fetch, but some
  // re-misses must occur with only 4 cache entries.
  EXPECT_GT(stats.cache_misses, 1u);
}

}  // namespace
}  // namespace rse
