// Property test: the DDT's PST/DDM must agree with an independent reference
// tracker for arbitrary random access interleavings (the Figure 5 state
// machine expressed as naive bookkeeping).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"
#include "mem/bus.hpp"
#include "mem/main_memory.hpp"
#include "modules/ddt/ddt.hpp"
#include "rse/framework.hpp"

namespace rse::modules {
namespace {

/// Naive reference implementation of the page-ownership/dependency rules.
class ReferenceTracker {
 public:
  void read(ThreadId t, u32 page) {
    auto& owners = pages_[page];
    if (owners.read == kNoThread) {
      owners.read = t;
      if (owners.write == kNoThread) owners.write = t;
      return;
    }
    if (owners.read != t) {
      owners.read = t;
      if (owners.write != kNoThread && owners.write != t) {
        deps_.insert({owners.write, t});
      }
    }
  }

  /// Returns true if this write requires a SavePage.
  bool write(ThreadId t, u32 page) {
    auto& owners = pages_[page];
    if (owners.write == kNoThread) {
      owners.write = t;
      owners.read = t;
      return false;
    }
    if (owners.write != t) {
      owners.write = t;
      owners.read = t;
      return true;
    }
    return false;
  }

  bool depends(ThreadId producer, ThreadId consumer) const {
    return deps_.count({producer, consumer}) != 0;
  }
  std::size_t dep_count() const { return deps_.size(); }

  struct Owners {
    ThreadId read = kNoThread;
    ThreadId write = kNoThread;
  };
  std::map<u32, Owners> pages_;
  std::set<std::pair<ThreadId, ThreadId>> deps_;
};

class DdtAgainstReference : public ::testing::TestWithParam<u64> {};

TEST_P(DdtAgainstReference, RandomInterleavingsAgree) {
  mem::MainMemory memory;
  mem::BusArbiter bus{mem::BusTiming{19, 3, 8}};
  engine::Framework fw{memory, bus, 16};
  DdtModule ddt(fw);
  ddt.set_enabled(true);
  u64 save_pages_seen = 0;
  ddt.set_save_page_handler([&](u32, ThreadId, Cycle) {
    ++save_pages_seen;
    return Cycle{0};
  });

  ReferenceTracker reference;
  Xorshift64 rng(GetParam());
  u64 reference_saves = 0;
  const u32 threads = 2 + static_cast<u32>(rng.next_below(7));
  const u32 pages = 1 + static_cast<u32>(rng.next_below(6));

  Cycle now = 0;
  for (int op = 0; op < 800; ++op) {
    const ThreadId t = static_cast<ThreadId>(rng.next_below(threads));
    const u32 page = 16 + static_cast<u32>(rng.next_below(pages));
    const Addr addr = (page << 12) | static_cast<Addr>(rng.next_below(1024) * 4);
    engine::CommitInfo info;
    info.thread = t;
    info.eff_addr = addr;
    now += 3;  // avoid the (disabled) lag window affecting anything
    if (rng.next_below(2) == 0) {
      info.instr.op = isa::Op::kLw;
      ddt.on_commit(info, now);
      reference.read(t, page);
    } else {
      info.instr.op = isa::Op::kSw;
      ddt.on_store_commit(info, now);
      if (reference.write(t, page)) ++reference_saves;
    }
  }

  // Ownership agreement for every page touched.
  for (const auto& [page, owners] : reference.pages_) {
    const DdtModule::PageOwners actual = ddt.page_owners(page);
    EXPECT_EQ(actual.read_owner, owners.read) << "page " << page;
    EXPECT_EQ(actual.write_owner, owners.write) << "page " << page;
  }
  // Dependency matrix agreement for every pair.
  for (ThreadId p = 0; p < threads; ++p) {
    for (ThreadId c = 0; c < threads; ++c) {
      EXPECT_EQ(ddt.depends(p, c), reference.depends(p, c)) << p << "->" << c;
    }
  }
  EXPECT_EQ(ddt.stats().dependencies_logged, reference.dep_count());
  EXPECT_EQ(save_pages_seen, reference_saves);
  EXPECT_EQ(ddt.stats().save_page_exceptions, reference_saves);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DdtAgainstReference, ::testing::Range<u64>(1, 26));

TEST(DdtAgainstReference, ClosureMatchesReferenceReachability) {
  mem::MainMemory memory;
  mem::BusArbiter bus{mem::BusTiming{19, 3, 8}};
  engine::Framework fw{memory, bus, 16};
  DdtModule ddt(fw);
  ddt.set_enabled(true);
  ddt.set_save_page_handler([](u32, ThreadId, Cycle) { return Cycle{0}; });
  ReferenceTracker reference;
  Xorshift64 rng(99);
  Cycle now = 0;
  for (int op = 0; op < 500; ++op) {
    const ThreadId t = static_cast<ThreadId>(rng.next_below(8));
    const u32 page = 16 + static_cast<u32>(rng.next_below(4));
    engine::CommitInfo info;
    info.thread = t;
    info.eff_addr = page << 12;
    now += 3;
    if (rng.next_below(2) == 0) {
      info.instr.op = isa::Op::kLw;
      ddt.on_commit(info, now);
      reference.read(t, page);
    } else {
      info.instr.op = isa::Op::kSw;
      ddt.on_store_commit(info, now);
      reference.write(t, page);
    }
  }
  // Reference reachability: BFS over the dependency edge set.
  for (ThreadId faulty = 0; faulty < 8; ++faulty) {
    std::set<ThreadId> reach{faulty};
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [producer, consumer] : reference.deps_) {
        if (reach.count(producer) && !reach.count(consumer)) {
          reach.insert(consumer);
          changed = true;
        }
      }
    }
    const auto closure = ddt.dependent_closure(faulty);
    EXPECT_EQ(std::set<ThreadId>(closure.begin(), closure.end()), reach)
        << "faulty " << faulty;
  }
}

}  // namespace
}  // namespace rse::modules
