// The Figure 8 recovery scenario and the recovery algorithm of section 4.2:
// five threads, page-mediated dependencies t2->t1->t0 plus the t0<->t1 edge
// via page p3; when t2 crashes, t0/t1/t2 die and t3/t4 survive with killed
// threads' memory updates undone.
#include <gtest/gtest.h>

#include "mem/bus.hpp"
#include "mem/main_memory.hpp"
#include "modules/ddt/ddt.hpp"
#include "os/checkpoint.hpp"
#include "os/recovery.hpp"
#include "rse/framework.hpp"

namespace rse::os {
namespace {

struct RecoveryFixture : ::testing::Test {
  mem::MainMemory memory;
  mem::BusArbiter bus{mem::BusTiming{19, 3, 8}};
  engine::Framework fw{memory, bus, 16};
  modules::DdtModule ddt{fw};
  CheckpointStore checkpoints;
  Cycle clock = 0;

  void SetUp() override {
    ddt.set_enabled(true);
    // The OS SavePage handler: snapshot the page before the store lands.
    ddt.set_save_page_handler([this](u32 page, ThreadId writer, Cycle now) {
      checkpoints.add(page, writer, now, memory.snapshot_page(page));
      return Cycle{0};
    });
  }

  void store(ThreadId t, Addr addr, Word value) {
    engine::CommitInfo info;
    info.instr.op = isa::Op::kSw;
    info.thread = t;
    info.eff_addr = addr;
    ddt.on_store_commit(info, ++clock);  // SavePage fires pre-store...
    memory.write_u32(addr, value);       // ...then the store lands
  }

  void load(ThreadId t, Addr addr) {
    engine::CommitInfo info;
    info.instr.op = isa::Op::kLw;
    info.thread = t;
    info.eff_addr = addr;
    ddt.on_commit(info, ++clock);
  }
};

constexpr Addr kP1 = 0x0001'0000;  // page p1
constexpr Addr kP2 = 0x0002'0000;  // page p2
constexpr Addr kP3 = 0x0003'0000;  // page p3

TEST_F(RecoveryFixture, Figure8DependenciesAndKillSet) {
  // Figure 8: t2 writes p1; t1 reads p1 (t2->t1) and writes p2;
  // t0 reads p2 (t1->t0), writes p3; t1 reads p3 (t0->t1).
  store(2, kP1, 21);
  load(1, kP1);
  store(1, kP2, 11);
  load(0, kP2);
  store(0, kP3, 1);
  load(1, kP3);

  EXPECT_TRUE(ddt.depends(2, 1));
  EXPECT_TRUE(ddt.depends(1, 0));
  EXPECT_TRUE(ddt.depends(0, 1));

  const RecoveryPlan plan = run_recovery(ddt, checkpoints, memory, /*faulty=*/2);
  EXPECT_EQ(plan.killed, (std::vector<ThreadId>{0, 1, 2}));
  EXPECT_FALSE(plan.total_loss);
}

TEST_F(RecoveryFixture, Figure8TimingVariantKillsEveryone) {
  // "it is possible that t3 and t4 read page p3 before t2 crashes, in which
  // case all threads are dependent on t2 and should be killed."
  store(2, kP1, 21);
  load(1, kP1);
  store(1, kP2, 11);
  load(0, kP2);
  store(0, kP3, 1);
  load(3, kP3);
  load(4, kP3);
  const RecoveryPlan plan = run_recovery(ddt, checkpoints, memory, 2);
  EXPECT_EQ(plan.killed, (std::vector<ThreadId>{0, 1, 2, 3, 4}));
}

TEST_F(RecoveryFixture, KilledThreadsUpdatesAreUndone) {
  // Healthy t3 authors page content; killed t2 later overwrites it.
  store(3, kP1, 333);
  store(2, kP1 + 4, 222);  // SavePage: snapshot holds t3's state
  EXPECT_EQ(memory.read_u32(kP1 + 4), 222u);

  const RecoveryPlan plan = run_recovery(ddt, checkpoints, memory, 2);
  EXPECT_EQ(plan.killed, (std::vector<ThreadId>{2}));
  EXPECT_EQ(plan.pages_restored, 1u);
  EXPECT_EQ(memory.read_u32(kP1), 333u);     // healthy data kept
  EXPECT_EQ(memory.read_u32(kP1 + 4), 0u);   // killed thread's write undone
}

TEST_F(RecoveryFixture, ChainOfKilledWritersRestoresOldestKilledSnapshot) {
  store(3, kP2, 7);       // healthy base state
  store(2, kP2, 100);     // killed writer #1 (snapshot S1: value 7)
  load(1, kP2);           // t1 depends on t2 -> killed too
  store(1, kP2, 200);     // killed writer #2 (snapshot S2: value 100)
  const RecoveryPlan plan = run_recovery(ddt, checkpoints, memory, 2);
  EXPECT_EQ(plan.killed, (std::vector<ThreadId>{1, 2}));
  EXPECT_EQ(memory.read_u32(kP2), 7u);  // back to the healthy state (S1)
}

TEST_F(RecoveryFixture, HealthyWriterAfterKilledWriterKeepsCurrentContent) {
  store(2, kP3, 50);   // killed thread writes first
  store(3, kP3, 60);   // healthy thread takes over (write-after-write: no dep)
  const RecoveryPlan plan = run_recovery(ddt, checkpoints, memory, 2);
  EXPECT_EQ(plan.killed, (std::vector<ThreadId>{2}));
  EXPECT_EQ(plan.pages_restored, 0u);
  EXPECT_EQ(memory.read_u32(kP3), 60u);  // healthy final state preserved
}

TEST_F(RecoveryFixture, SurvivorsPagesUntouched) {
  store(4, kP1, 44);
  store(2, kP2, 22);
  load(1, kP2);
  const RecoveryPlan plan = run_recovery(ddt, checkpoints, memory, 2);
  EXPECT_EQ(plan.killed, (std::vector<ThreadId>{1, 2}));
  EXPECT_EQ(memory.read_u32(kP1), 44u);
}

TEST_F(RecoveryFixture, DroppedHistoryForcesTotalLoss) {
  // Garbage collection dropped a snapshot the recovery needs: insufficient
  // information -> the whole process must be terminated (section 4.2.2).
  CheckpointStore small(mem::kPageBytes);  // room for exactly one snapshot
  ddt.set_save_page_handler([&](u32 page, ThreadId writer, Cycle now) {
    small.add(page, writer, now, memory.snapshot_page(page));
    return Cycle{0};
  });
  store(3, kP1, 1);
  store(2, kP1, 2);      // snapshot A (will be dropped)
  store(3, kP2, 3);
  store(2, kP2 + 8, 4);  // snapshot B evicts A
  EXPECT_EQ(small.dropped_count(), 1u);
  const RecoveryPlan plan = run_recovery(ddt, small, memory, 2);
  EXPECT_TRUE(plan.total_loss);
}

TEST_F(RecoveryFixture, RecoveryOfIndependentThreadTouchesNothing) {
  store(2, kP1, 21);
  store(3, kP2, 31);
  const RecoveryPlan plan = run_recovery(ddt, checkpoints, memory, 4);
  EXPECT_EQ(plan.killed, (std::vector<ThreadId>{4}));
  EXPECT_EQ(plan.pages_restored, 0u);
}

}  // namespace
}  // namespace rse::os
