// Memory Layout Randomization module: position-independent base
// randomization, hardware GOT copy and PLT rewrite, and the comparison with
// the software TRR baseline (Table 5's subject).
#include <gtest/gtest.h>

#include "../support/sim_runner.hpp"
#include "workloads/workloads.hpp"

namespace rse {
namespace {

os::MachineConfig rse_machine() {
  os::MachineConfig config;
  config.framework_present = true;
  return config;
}

TEST(Mlr, RandomizeBasesKeepsAlignmentAndRange) {
  testing::SimRunner runner(rse_machine());
  auto* mlr = runner.machine().mlr();
  const auto bases = mlr->randomize_bases(0x6000'0000, 0x7FFF'0000, 0x1010'0000, 1234);
  EXPECT_GE(bases.shlib_base, 0x6000'0000u);
  EXPECT_GE(bases.stack_base, 0x7FFF'0000u);
  EXPECT_GE(bases.heap_base, 0x1010'0000u);
  EXPECT_EQ(bases.shlib_base % 16, 0u);
  EXPECT_EQ(bases.stack_base % 16, 0u);
  EXPECT_EQ(bases.heap_base % 16, 0u);
  // within the configured entropy window
  EXPECT_LT(bases.stack_base - 0x7FFF'0000u, 256u * 4096u);
}

TEST(Mlr, ConsecutiveRandomizationsDiffer) {
  testing::SimRunner runner(rse_machine());
  auto* mlr = runner.machine().mlr();
  const auto a = mlr->randomize_bases(0x6000'0000, 0x7FFF'0000, 0x1010'0000, 1);
  const auto b = mlr->randomize_bases(0x6000'0000, 0x7FFF'0000, 0x1010'0000, 2);
  EXPECT_NE(a.stack_base, b.stack_base);
}

TEST(Mlr, LoaderRandomizationChangesProcessLayout) {
  os::MachineConfig machine_config = rse_machine();
  os::OsConfig os_config;
  os_config.randomize_layout = true;
  const char* program = R"(
.text
main:
  move a0, sp
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)";
  testing::SimRunner a(machine_config, os_config);
  a.load_source(program);
  a.run();
  os::MachineConfig machine_config_b = rse_machine();
  machine_config_b.mlr.seed = 999;  // different hardware entropy
  testing::SimRunner b(machine_config_b, os_config);
  b.load_source(program);
  b.run();
  EXPECT_NE(a.os().output(), b.os().output());  // stack base differs
  EXPECT_NE(a.os().stack_base(), isa::kDefaultStackTop);
}

TEST(Mlr, PiRandViaCheckInstructionsWritesResults) {
  testing::SimRunner runner(rse_machine());
  runner.load_source(R"(
.data
.align 4
hdr:     .word 0x400000, 4096, 2048, 1024, 0x60000000, 0x7FFF0000, 0x10100000
results: .space 12
.text
main:
  chk frame, 1, nblk, r0, 2    # enable MLR
  la t0, hdr
  chk mlr, 3, nblk, t0, 0      # header location
  li t1, 28
  chk mlr, 4, nblk, t1, 0      # header size
  la t2, results
  chk mlr, 5, blk, t2, 0       # randomize position-independent regions
  lw a0, results
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)");
  runner.run();
  ASSERT_TRUE(runner.os().finished());
  auto& memory = runner.machine().memory();
  const Addr results = runner.program().symbol("results");
  const u32 rand_shlib = memory.read_u32(results);
  const u32 rand_stack = memory.read_u32(results + 4);
  const u32 rand_heap = memory.read_u32(results + 8);
  EXPECT_GE(rand_shlib, 0x6000'0000u);
  EXPECT_GE(rand_stack, 0x7FFF'0000u);
  EXPECT_GE(rand_heap, 0x1010'0000u);
  EXPECT_EQ(runner.machine().mlr()->stats().pi_randomizations, 1u);
  // Fixed PI-randomization penalty is in the 56-cycle ballpark (section 5.3).
  const Cycle cost = runner.machine().mlr()->stats().last_op_cycles;
  EXPECT_GE(cost, 40u);
  EXPECT_LE(cost, 90u);
}

TEST(Mlr, HardwareGotCopyMatchesSoftwareResult) {
  workloads::MlrProgParams params{256};
  // Software run.
  testing::SimRunner software(rse_machine());
  software.load_source(workloads::trr_software_source(params));
  software.run();
  ASSERT_EQ(software.os().exit_code(), 0);
  // Hardware run.
  testing::SimRunner hardware(rse_machine());
  hardware.load_source(workloads::mlr_rse_source(params));
  hardware.run();
  ASSERT_EQ(hardware.os().exit_code(), 0);

  // Both must produce the identical randomized tables.
  for (auto* runner : {&software, &hardware}) {
    auto& memory = runner->machine().memory();
    const Addr got_old = runner->program().symbol("got_old");
    const Addr got_new = runner->program().symbol("got_new");
    const Addr plt = runner->program().symbol("plt");
    for (u32 i = 0; i < params.got_entries; ++i) {
      EXPECT_EQ(memory.read_u32(got_new + i * 4), 0x6000'0000u + i * 16)
          << "entry " << i;
      EXPECT_EQ(memory.read_u32(plt + i * 4), got_new + i * 4) << "entry " << i;
      EXPECT_EQ(memory.read_u32(got_old + i * 4), 0x6000'0000u + i * 16);
    }
  }
}

TEST(Mlr, HardwareVersionExecutesFarFewerInstructions) {
  workloads::MlrProgParams params{512};
  testing::SimRunner software(rse_machine());
  software.load_source(workloads::trr_software_source(params));
  software.run();
  testing::SimRunner hardware(rse_machine());
  hardware.load_source(workloads::mlr_rse_source(params));
  hardware.run();
  // Table 5: instruction reduction grows with the table size.
  EXPECT_LT(hardware.core_stats().instructions, software.core_stats().instructions / 2);
}

TEST(Mlr, HardwareVersionIsFasterInCycles) {
  workloads::MlrProgParams params{512};
  testing::SimRunner software(rse_machine());
  software.load_source(workloads::trr_software_source(params));
  software.run();
  testing::SimRunner hardware(rse_machine());
  hardware.load_source(workloads::mlr_rse_source(params));
  hardware.run();
  EXPECT_LT(hardware.cycles(), software.cycles());
}

TEST(Mlr, OversizedGotFailsTheCheck) {
  // A GOT larger than the module buffer reports an error (check=1); the OS
  // retries then contains it.
  testing::SimRunner runner(rse_machine());
  runner.load_source(R"(
.data
buf: .space 16
.text
main:
  chk frame, 1, nblk, r0, 2
  la t0, buf
  chk mlr, 6, nblk, t0, 0
  li t1, 8192                 # exceeds the 4 KB GOT buffer
  chk mlr, 7, nblk, t1, 0
  la t2, buf
  chk mlr, 8, nblk, t2, 0
  chk mlr, 9, blk, r0, 0
  li a0, 0
  li v0, 1
  syscall
)");
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().exit_code(), 139);  // retries exhausted -> contained
}

}  // namespace
}  // namespace rse
