// Control-Flow Checker: the commit-stream sequence rules (unit level) and
// end-to-end detection of execution-path control-flow corruption that the
// ICM cannot see.
#include <gtest/gtest.h>

#include <vector>

#include "../support/sim_runner.hpp"
#include "modules/cfc/cfc.hpp"
#include "workloads/workloads.hpp"

namespace rse {
namespace {

using testing::SimRunner;

// ------------------------------------------------------------- unit level

struct CfcUnit : ::testing::Test {
  mem::MainMemory memory;
  mem::BusArbiter bus{mem::BusTiming{19, 3, 8}};
  engine::Framework fw{memory, bus, 16};
  modules::CfcModule cfc{fw, modules::CfcConfig{0x40'0000, 0x41'0000}};
  std::vector<std::pair<Addr, Addr>> violations;  // (from, to)

  void SetUp() override {
    cfc.set_enabled(true);
    cfc.set_violation_handler(
        [this](ThreadId, Addr from, Addr to, Cycle) { violations.push_back({from, to}); });
  }

  void commit(ThreadId thread, Addr pc, const std::string& text) {
    const isa::Program p = isa::assemble(".text\nmain:\n  " + text + "\n");
    engine::CommitInfo info;
    info.thread = thread;
    info.pc = pc;
    info.instr = isa::decode(p.text[0]);
    cfc.on_commit(info, 0);
  }
};

TEST_F(CfcUnit, SequentialFlowIsClean) {
  commit(0, 0x400000, "add t0, t1, t2");
  commit(0, 0x400004, "sub t3, t4, t5");
  commit(0, 0x400008, "lw t0, 0(t1)");
  EXPECT_TRUE(violations.empty());
  EXPECT_EQ(cfc.stats().transitions_checked, 2u);
}

TEST_F(CfcUnit, NonSequentialAfterAluIsAViolation) {
  commit(0, 0x400000, "add t0, t1, t2");
  commit(0, 0x400100, "add t3, t4, t5");  // flow teleported
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].first, 0x400000u);
  EXPECT_EQ(violations[0].second, 0x400100u);
}

TEST_F(CfcUnit, BranchMayFallThroughOrHitItsEncodedTarget) {
  commit(0, 0x400000, "beq t0, t1, main");  // target = 0x400000 + 4 + imm*4
  const Addr target = 0x400000 + 4 + (static_cast<Word>(-1) << 2);  // back to main
  commit(0, target, "add t0, t1, t2");
  commit(0, target + 4, "beq t0, t1, main");
  commit(0, target + 8, "add t0, t1, t2");  // fall-through
  EXPECT_TRUE(violations.empty());
}

TEST_F(CfcUnit, BranchToForeignTargetIsAViolation) {
  commit(0, 0x400000, "beq t0, t1, main");
  commit(0, 0x400400, "add t0, t1, t2");  // neither fall-through nor target
  EXPECT_EQ(violations.size(), 1u);
}

TEST_F(CfcUnit, IndirectJumpMayLandAnywhereInText) {
  commit(0, 0x400000, "jr t0");
  commit(0, 0x400abc & ~3u, "add t0, t1, t2");
  EXPECT_TRUE(violations.empty());
}

TEST_F(CfcUnit, IndirectJumpOutsideTextIsAViolation) {
  commit(0, 0x400000, "jr t0");
  commit(0, 0x500000, "add t0, t1, t2");
  EXPECT_EQ(violations.size(), 1u);
}

TEST_F(CfcUnit, SyscallMayRedirect) {
  commit(0, 0x400000, "syscall");
  commit(0, 0x400800, "add t0, t1, t2");  // OS resumed elsewhere
  EXPECT_TRUE(violations.empty());
}

TEST_F(CfcUnit, RetryInPlaceIsLegal) {
  commit(0, 0x400000, "add t0, t1, t2");
  commit(0, 0x400000, "add t0, t1, t2");  // CHECK-error flush re-commits
  EXPECT_TRUE(violations.empty());
}

TEST_F(CfcUnit, ThreadStreamsAreIndependent) {
  commit(0, 0x400000, "add t0, t1, t2");
  commit(1, 0x400800, "add t0, t1, t2");  // thread 1 starts elsewhere: fine
  commit(0, 0x400004, "add t0, t1, t2");
  commit(1, 0x400804, "add t0, t1, t2");
  EXPECT_TRUE(violations.empty());
}

TEST_F(CfcUnit, ForgetThreadResetsItsStream) {
  commit(0, 0x400000, "add t0, t1, t2");
  cfc.forget_thread(0);
  commit(0, 0x400900, "add t0, t1, t2");  // fresh stream: first commit unchecked
  EXPECT_TRUE(violations.empty());
}

// ------------------------------------------------------- end-to-end level

os::MachineConfig rse_machine() {
  os::MachineConfig config;
  config.framework_present = true;
  return config;
}

TEST(CfcEndToEnd, CleanWorkloadRaisesNoViolations) {
  // Mispredictions, syscalls, calls, loops — none of it may false-positive.
  workloads::KMeansParams params;
  params.patterns = 60;
  params.clusters = 8;
  params.iters = 2;
  SimRunner runner(rse_machine());
  runner.os().enable_module(isa::ModuleId::kCfc);
  runner.load_source(workloads::kmeans_source(params));
  runner.run();
  EXPECT_EQ(runner.os().exit_code(), 0);
  EXPECT_EQ(runner.machine().cfc()->stats().violations, 0u);
  EXPECT_GT(runner.machine().cfc()->stats().transitions_checked, 1000u);
}

TEST(CfcEndToEnd, MultithreadedServerRaisesNoViolations) {
  workloads::ServerParams params;
  params.threads = 3;
  params.compute_iters = 40;
  SimRunner runner(rse_machine());
  runner.os().enable_module(isa::ModuleId::kCfc);
  runner.os().network().configure([] {
    os::NetworkConfig net;
    net.total_requests = 8;
    net.interarrival = 400;
    net.io_latency_mean = 1500;
    return net;
  }());
  runner.load_source(workloads::server_source(params));
  runner.run();
  EXPECT_EQ(runner.os().exit_code(), 0);
  EXPECT_EQ(runner.machine().cfc()->stats().violations, 0u);
}

TEST(CfcEndToEnd, CorruptedBranchTargetDetectedAndContained) {
  // A soft error in the branch unit skews one taken-branch target by two
  // instructions.  The binary is intact (the ICM would pass it); the CFC
  // sees the illegal (branch -> non-target) transition and the OS contains
  // the thread.
  SimRunner runner(rse_machine());
  runner.os().enable_module(isa::ModuleId::kCfc);
  runner.load_source(R"(
.text
main:
  li t0, 0
  li t1, 0
loop:
  li t2, 50
  add t1, t1, t0
  addi t0, t0, 1
  blt t0, t2, loop
  move a0, t1
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)");
  const Addr branch_pc = runner.program().symbol("loop") + 3 * 4;
  const Addr loop_pc = runner.program().symbol("loop");
  int injections = 0;
  runner.machine().core().set_branch_fault_hook([&](Addr pc, Addr next) -> Addr {
    if (pc == branch_pc && next == loop_pc && injections == 0) {
      ++injections;
      return next + 8;  // lands two instructions into the block
    }
    return next;
  });
  runner.run();
  EXPECT_EQ(injections, 1);
  EXPECT_TRUE(runner.os().finished());
  EXPECT_GE(runner.machine().cfc()->stats().violations, 1u);
  EXPECT_EQ(runner.os().exit_code(), 139);  // contained, not silent
}

TEST(CfcEndToEnd, SameCorruptionIsSilentWithoutCfc) {
  SimRunner runner(rse_machine());  // CFC left disabled
  runner.load_source(R"(
.text
main:
  li t0, 0
  li t1, 0
loop:
  li t2, 50
  add t1, t1, t0
  addi t0, t0, 1
  blt t0, t2, loop
  move a0, t1
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)");
  const Addr branch_pc = runner.program().symbol("loop") + 3 * 4;
  const Addr loop_pc = runner.program().symbol("loop");
  int injections = 0;
  runner.machine().core().set_branch_fault_hook([&](Addr pc, Addr next) -> Addr {
    if (pc == branch_pc && next == loop_pc && injections == 0) {
      ++injections;
      return next + 8;
    }
    return next;
  });
  runner.run();
  EXPECT_EQ(injections, 1);
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().exit_code(), 0);
  EXPECT_NE(runner.os().output(), "1225");  // silently wrong result
}

TEST(CfcEndToEnd, ComposesWithIcm) {
  // ICM guards binaries, CFC guards the executed flow; enabling both on a
  // clean instrumented run raises neither mismatches nor violations.
  workloads::KMeansParams params;
  params.patterns = 40;
  params.clusters = 4;
  params.iters = 1;
  SimRunner runner(rse_machine());
  runner.os().enable_module(isa::ModuleId::kCfc);
  runner.load_source(workloads::instrument_checks(workloads::kmeans_source(params)));
  runner.run();
  EXPECT_EQ(runner.os().exit_code(), 0);
  EXPECT_EQ(runner.machine().icm()->stats().mismatches, 0u);
  EXPECT_EQ(runner.machine().cfc()->stats().violations, 0u);
}

}  // namespace
}  // namespace rse
