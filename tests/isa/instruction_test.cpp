#include "isa/instruction.hpp"

#include <gtest/gtest.h>

namespace rse::isa {
namespace {

Instr make_r(Op op, u8 rd, u8 rs, u8 rt, u8 shamt = 0) {
  Instr in;
  in.op = op;
  in.rd = rd;
  in.rs = rs;
  in.rt = rt;
  in.shamt = shamt;
  return in;
}

Instr make_i(Op op, u8 rt, u8 rs, i32 imm) {
  Instr in;
  in.op = op;
  in.rt = rt;
  in.rs = rs;
  in.imm = imm;
  return in;
}

TEST(Instruction, NopEncodesToZero) {
  const Instr nop = decode(kNopEncoding);
  EXPECT_EQ(nop.op, Op::kSll);
  EXPECT_EQ(nop.op_class(), OpClass::kNop);
}

TEST(Instruction, InvalidOpcodeDecodesInvalid) {
  // opcode 0x3F is unassigned
  EXPECT_EQ(decode(0xFC000000u).op, Op::kInvalid);
}

// Round-trip every R-type op through encode/decode.
class RTypeRoundTrip : public ::testing::TestWithParam<Op> {};

TEST_P(RTypeRoundTrip, EncodeDecode) {
  const Instr in = make_r(GetParam(), 3, 7, 12, GetParam() == Op::kSll ? 5 : 0);
  const Instr out = decode(encode(in));
  EXPECT_EQ(out.op, in.op);
  EXPECT_EQ(out.rd, in.rd);
  EXPECT_EQ(out.rs, in.rs);
  EXPECT_EQ(out.rt, in.rt);
}

INSTANTIATE_TEST_SUITE_P(AllRType, RTypeRoundTrip,
                         ::testing::Values(Op::kSll, Op::kSrl, Op::kSra, Op::kSllv, Op::kSrlv,
                                           Op::kSrav, Op::kAdd, Op::kSub, Op::kAnd, Op::kOr,
                                           Op::kXor, Op::kNor, Op::kSlt, Op::kSltu, Op::kMul,
                                           Op::kMulh, Op::kDiv, Op::kRem, Op::kJr, Op::kJalr,
                                           Op::kSyscall));

class ITypeRoundTrip : public ::testing::TestWithParam<std::tuple<Op, i32>> {};

TEST_P(ITypeRoundTrip, EncodeDecode) {
  const auto [op, imm] = GetParam();
  const Instr in = make_i(op, 9, 4, imm);
  const Instr out = decode(encode(in));
  EXPECT_EQ(out.op, in.op);
  EXPECT_EQ(out.rt, in.rt);
  EXPECT_EQ(out.rs, in.rs);
  EXPECT_EQ(out.imm, imm);
}

INSTANTIATE_TEST_SUITE_P(
    AllIType, ITypeRoundTrip,
    ::testing::Combine(::testing::Values(Op::kAddi, Op::kAndi, Op::kOri, Op::kXori, Op::kSlti,
                                         Op::kSltiu, Op::kLui, Op::kLw, Op::kLb, Op::kLbu,
                                         Op::kLh, Op::kLhu, Op::kSw, Op::kSb, Op::kSh, Op::kBeq,
                                         Op::kBne, Op::kBlt, Op::kBge, Op::kBltu, Op::kBgeu),
                       ::testing::Values(0, 1, -1, 32767, -32768)));

TEST(Instruction, JumpRoundTrip) {
  Instr in;
  in.op = Op::kJal;
  in.target = 0x012345u;
  const Instr out = decode(encode(in));
  EXPECT_EQ(out.op, Op::kJal);
  EXPECT_EQ(out.target, 0x012345u);
}

TEST(Instruction, ChkRoundTrip) {
  Instr in;
  in.op = Op::kChk;
  in.chk_module = ModuleId::kDdt;
  in.chk_blocking = true;
  in.chk_op = 19;
  in.rs = 21;
  in.chk_imm = 0xABC;
  const Instr out = decode(encode(in));
  EXPECT_EQ(out.op, Op::kChk);
  EXPECT_EQ(out.chk_module, ModuleId::kDdt);
  EXPECT_TRUE(out.chk_blocking);
  EXPECT_EQ(out.chk_op, 19);
  EXPECT_EQ(out.rs, 21);
  EXPECT_EQ(out.chk_imm, 0xABC);
}

TEST(Instruction, OpClasses) {
  EXPECT_EQ(make_r(Op::kAdd, 1, 2, 3).op_class(), OpClass::kIntAlu);
  EXPECT_EQ(make_r(Op::kMul, 1, 2, 3).op_class(), OpClass::kIntMul);
  EXPECT_EQ(make_i(Op::kLw, 1, 2, 0).op_class(), OpClass::kLoad);
  EXPECT_EQ(make_i(Op::kSw, 1, 2, 0).op_class(), OpClass::kStore);
  EXPECT_EQ(make_i(Op::kBeq, 1, 2, 0).op_class(), OpClass::kBranch);
  EXPECT_EQ(make_r(Op::kJr, 0, 31, 0).op_class(), OpClass::kJump);
  EXPECT_EQ(make_r(Op::kSyscall, 0, 0, 0).op_class(), OpClass::kSyscall);
}

TEST(Instruction, DestRegisters) {
  EXPECT_EQ(make_r(Op::kAdd, 5, 1, 2).dest_reg(), std::optional<u8>(5));
  EXPECT_EQ(make_r(Op::kAdd, 0, 1, 2).dest_reg(), std::nullopt);  // r0 never written
  EXPECT_EQ(make_i(Op::kLw, 7, 2, 0).dest_reg(), std::optional<u8>(7));
  EXPECT_EQ(make_i(Op::kSw, 7, 2, 0).dest_reg(), std::nullopt);
  Instr jal;
  jal.op = Op::kJal;
  EXPECT_EQ(jal.dest_reg(), std::optional<u8>(kRa));
}

TEST(Instruction, SourceRegisters) {
  const auto add_sources = make_r(Op::kAdd, 5, 1, 2).source_regs();
  EXPECT_EQ(add_sources.count, 2);
  EXPECT_EQ(add_sources.regs[0], 1);
  EXPECT_EQ(add_sources.regs[1], 2);

  const auto lw_sources = make_i(Op::kLw, 7, 3, 4).source_regs();
  EXPECT_EQ(lw_sources.count, 1);
  EXPECT_EQ(lw_sources.regs[0], 3);

  const auto sw_sources = make_i(Op::kSw, 7, 3, 4).source_regs();
  EXPECT_EQ(sw_sources.count, 2);

  Instr chk;
  chk.op = Op::kChk;
  chk.rs = 9;
  const auto chk_sources = chk.source_regs();
  EXPECT_EQ(chk_sources.count, 1);
  EXPECT_EQ(chk_sources.regs[0], 9);
}

TEST(Instruction, DisassembleSamples) {
  EXPECT_EQ(disassemble(decode(kNopEncoding)), "nop");
  EXPECT_EQ(disassemble(make_r(Op::kAdd, 3, 1, 2)), "add r3, r1, r2");
  EXPECT_EQ(disassemble(make_i(Op::kLw, 4, 29, 8)), "lw r4, 8(r29)");
}

}  // namespace
}  // namespace rse::isa
