#include "isa/assembler.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace rse::isa {
namespace {

TEST(Assembler, SimpleArithmetic) {
  const Program p = assemble(R"(
.text
main:
  addi r1, r0, 5
  add r2, r1, r1
)");
  ASSERT_EQ(p.text.size(), 2u);
  const Instr first = decode(p.text[0]);
  EXPECT_EQ(first.op, Op::kAddi);
  EXPECT_EQ(first.rt, 1);
  EXPECT_EQ(first.imm, 5);
  EXPECT_EQ(p.entry, p.symbol("main"));
}

TEST(Assembler, RegisterAliases) {
  const Program p = assemble(R"(
.text
main:
  add v0, a0, t3
  add sp, fp, ra
  add s7, t8, zero
)");
  const Instr i0 = decode(p.text[0]);
  EXPECT_EQ(i0.rd, kV0);
  EXPECT_EQ(i0.rs, kA0);
  EXPECT_EQ(i0.rt, kT0 + 3);
  const Instr i1 = decode(p.text[1]);
  EXPECT_EQ(i1.rd, kSp);
  EXPECT_EQ(i1.rs, kFp);
  EXPECT_EQ(i1.rt, kRa);
  const Instr i2 = decode(p.text[2]);
  EXPECT_EQ(i2.rd, kS0 + 7);
  EXPECT_EQ(i2.rs, kT8);
  EXPECT_EQ(i2.rt, 0);
}

TEST(Assembler, BranchTargetsResolve) {
  const Program p = assemble(R"(
.text
main:
  beq r1, r2, skip
  addi r3, r0, 1
skip:
  addi r4, r0, 2
)");
  const Instr branch = decode(p.text[0]);
  EXPECT_EQ(branch.op, Op::kBeq);
  // skip is 2 instructions ahead of main; offset relative to pc+4 is 1 word.
  EXPECT_EQ(branch.imm, 1);
}

TEST(Assembler, BackwardBranch) {
  const Program p = assemble(R"(
.text
main:
loop:
  addi r1, r1, 1
  bne r1, r2, loop
)");
  const Instr branch = decode(p.text[1]);
  EXPECT_EQ(branch.imm, -2);
}

TEST(Assembler, JumpEncodesWordTarget) {
  const Program p = assemble(R"(
.text
main:
  j main
)");
  const Instr jump = decode(p.text[0]);
  EXPECT_EQ(jump.op, Op::kJ);
  EXPECT_EQ(jump.target << 2, p.symbol("main"));
}

TEST(Assembler, LiSmallAndLarge) {
  const Program p = assemble(R"(
.text
main:
  li r1, 42
  li r2, -7
  li r3, 0x12345678
)");
  ASSERT_EQ(p.text.size(), 4u);  // 1 + 1 + 2
  EXPECT_EQ(decode(p.text[0]).op, Op::kAddi);
  EXPECT_EQ(decode(p.text[1]).imm, -7);
  EXPECT_EQ(decode(p.text[2]).op, Op::kLui);
  EXPECT_EQ(decode(p.text[3]).op, Op::kOri);
}

TEST(Assembler, LaLoadsSymbolAddress) {
  const Program p = assemble(R"(
.data
value: .word 99
.text
main:
  la r1, value
)");
  const Instr lui = decode(p.text[0]);
  const Instr ori = decode(p.text[1]);
  const Addr addr = p.symbol("value");
  EXPECT_EQ((static_cast<u32>(lui.imm) & 0xFFFF) << 16 | (static_cast<u32>(ori.imm) & 0xFFFF),
            addr);
}

TEST(Assembler, DataDirectives) {
  const Program p = assemble(R"(
.data
a: .word 1, 2, 3
b: .byte 7, 8
.align 2
c: .word 0xDEADBEEF
d: .space 8
e: .word 5
)");
  const Addr base = p.data_base;
  EXPECT_EQ(p.symbol("a"), base);
  EXPECT_EQ(p.symbol("b"), base + 12);
  EXPECT_EQ(p.symbol("c"), base + 16);  // aligned past the 2 bytes
  EXPECT_EQ(p.symbol("d"), base + 20);
  EXPECT_EQ(p.symbol("e"), base + 28);
  // little-endian placement
  EXPECT_EQ(p.data[0], 1);
  EXPECT_EQ(p.data[12], 7);
  EXPECT_EQ(p.data[13], 8);
  EXPECT_EQ(p.data[16], 0xEF);
  EXPECT_EQ(p.data[19], 0xDE);
}

TEST(Assembler, WordCanHoldLabel) {
  const Program p = assemble(R"(
.data
ptr: .word target
target: .word 1
.text
main:
  nop
)");
  const Addr target = p.symbol("target");
  u32 stored = 0;
  for (int b = 3; b >= 0; --b) stored = (stored << 8) | p.data[b];
  EXPECT_EQ(stored, target);
}

TEST(Assembler, ChkInstruction) {
  const Program p = assemble(R"(
.text
main:
  chk icm, 0, blk, r0, 0
  chk mlr, 9, nblk, s0, 7
  chk 4, 4, nblk, a0, 0xFF
)");
  const Instr c0 = decode(p.text[0]);
  EXPECT_EQ(c0.op, Op::kChk);
  EXPECT_EQ(c0.chk_module, ModuleId::kIcm);
  EXPECT_TRUE(c0.chk_blocking);
  const Instr c1 = decode(p.text[1]);
  EXPECT_EQ(c1.chk_module, ModuleId::kMlr);
  EXPECT_EQ(c1.chk_op, 9);
  EXPECT_FALSE(c1.chk_blocking);
  EXPECT_EQ(c1.rs, kS0);
  EXPECT_EQ(c1.chk_imm, 7);
  const Instr c2 = decode(p.text[2]);
  EXPECT_EQ(c2.chk_module, ModuleId::kAhbm);
  EXPECT_EQ(c2.chk_imm, 0xFF);
}

TEST(Assembler, MemoryOperandForms) {
  const Program p = assemble(R"(
.data
var: .word 3
.text
main:
  lw r1, 8(r2)
  lw r3, (r4)
  lw r5, -4(sp)
  lw r6, var
  sw r6, var
)");
  EXPECT_EQ(decode(p.text[0]).imm, 8);
  EXPECT_EQ(decode(p.text[1]).imm, 0);
  EXPECT_EQ(decode(p.text[2]).imm, -4);
  // label forms expand to 2 instructions each
  EXPECT_EQ(p.text.size(), 3u + 2u + 2u);
  EXPECT_EQ(decode(p.text[3]).op, Op::kLui);
  EXPECT_EQ(decode(p.text[4]).op, Op::kLw);
  EXPECT_EQ(decode(p.text[6]).op, Op::kSw);
}

TEST(Assembler, PseudoInstructions) {
  const Program p = assemble(R"(
.text
main:
  move r1, r2
  b main
  beqz r3, main
  bnez r4, main
  nop
)");
  EXPECT_EQ(decode(p.text[0]).op, Op::kAdd);
  EXPECT_EQ(decode(p.text[1]).op, Op::kBeq);
  EXPECT_EQ(decode(p.text[2]).op, Op::kBeq);
  EXPECT_EQ(decode(p.text[3]).op, Op::kBne);
  EXPECT_EQ(p.text[4], kNopEncoding);
}

TEST(Assembler, EntryDirective) {
  const Program p = assemble(R"(
.text
start:
  nop
other:
  nop
.entry other
)");
  EXPECT_EQ(p.entry, p.symbol("other"));
}

TEST(Assembler, CommentsAndBlankLines) {
  const Program p = assemble(R"(
# full line comment
.text
main:  ; trailing style
  addi r1, r0, 1   # comment after code
)");
  EXPECT_EQ(p.text.size(), 1u);
}

TEST(Assembler, Errors) {
  EXPECT_THROW(assemble(".text\nmain:\n  frobnicate r1\n"), AssemblyError);
  EXPECT_THROW(assemble(".text\nmain:\n  beq r1, r2, nowhere\n"), AssemblyError);
  EXPECT_THROW(assemble(".text\nmain:\n  addi r1, r0, 99999\n"), AssemblyError);
  EXPECT_THROW(assemble(".text\nmain:\nmain:\n  nop\n"), AssemblyError);
  EXPECT_THROW(assemble(".text\nmain:\n  add r1, r99, r0\n"), AssemblyError);
  EXPECT_THROW(assemble(".text\n  .word 1\n"), AssemblyError);  // .word outside .data
}

TEST(Assembler, TextWordLookup) {
  const Program p = assemble(".text\nmain:\n  nop\n  addi r1, r0, 3\n");
  EXPECT_EQ(p.text_word(p.text_base), kNopEncoding);
  EXPECT_EQ(decode(p.text_word(p.text_base + 4)).imm, 3);
  EXPECT_THROW(p.text_word(p.text_base + 8), AssemblyError);
  EXPECT_THROW(p.text_word(p.text_base + 1), AssemblyError);
}

}  // namespace
}  // namespace rse::isa
