// Property tests on the binary encoding: decode(encode(decode(w))) is a
// fixed point for every word whose decode is valid, and the assembler's
// output disassembles to text that carries the same semantics.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "isa/assembler.hpp"
#include "isa/instruction.hpp"

namespace rse::isa {
namespace {

bool same_decoded(const Instr& a, const Instr& b) {
  if (a.op != b.op) return false;
  if (a.op == Op::kChk) {
    return a.chk_module == b.chk_module && a.chk_blocking == b.chk_blocking &&
           a.chk_op == b.chk_op && a.rs == b.rs && a.chk_imm == b.chk_imm;
  }
  if (a.op == Op::kJ || a.op == Op::kJal) return a.target == b.target;
  return a.rd == b.rd && a.rs == b.rs && a.rt == b.rt && a.shamt == b.shamt && a.imm == b.imm;
}

class EncodingFixedPoint : public ::testing::TestWithParam<u64> {};

TEST_P(EncodingFixedPoint, DecodeEncodeDecodeIsStable) {
  Xorshift64 rng(GetParam());
  int valid = 0;
  for (int i = 0; i < 20000; ++i) {
    const Word raw = static_cast<Word>(rng.next());
    const Instr first = decode(raw);
    if (first.op == Op::kInvalid) continue;
    ++valid;
    const Word re = encode(first);
    const Instr second = decode(re);
    ASSERT_TRUE(same_decoded(first, second))
        << "raw=0x" << std::hex << raw << " re=0x" << re << " (" << disassemble(first)
        << " vs " << disassemble(second) << ")";
    // Encoding a second time must be byte-identical (canonical form).
    EXPECT_EQ(encode(second), re);
  }
  EXPECT_GT(valid, 1000);  // the opcode space is reasonably dense
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingFixedPoint, ::testing::Values(1, 2, 3, 4, 5));

TEST(EncodingProperty, SourceRegsAndDestNeverExceedRegisterFile) {
  Xorshift64 rng(77);
  for (int i = 0; i < 20000; ++i) {
    const Instr in = decode(static_cast<Word>(rng.next()));
    if (in.op == Op::kInvalid) continue;
    if (const auto dest = in.dest_reg()) {
      EXPECT_LT(*dest, kNumRegs);
    }
    const auto sources = in.source_regs();
    ASSERT_LE(sources.count, 2);
    for (u8 s = 0; s < sources.count; ++s) EXPECT_LT(sources.regs[s], kNumRegs);
  }
}

TEST(EncodingProperty, DestRegNeverR0) {
  Xorshift64 rng(88);
  for (int i = 0; i < 20000; ++i) {
    const Instr in = decode(static_cast<Word>(rng.next()));
    if (in.op == Op::kInvalid) continue;
    if (const auto dest = in.dest_reg()) {
      EXPECT_NE(*dest, 0);
    }
  }
}

TEST(EncodingProperty, NopClassOnlyForCanonicalNop) {
  // Only sll r0, rX, 0 encodings (and invalid words) classify as kNop.
  Xorshift64 rng(99);
  for (int i = 0; i < 20000; ++i) {
    const Instr in = decode(static_cast<Word>(rng.next()));
    if (in.op == Op::kInvalid) continue;
    if (in.op_class() == OpClass::kNop) {
      EXPECT_EQ(in.op, Op::kSll);
      EXPECT_EQ(in.rd, 0);
    }
  }
}

TEST(AssemblerProperty, AssembledTextAlwaysDecodesValid) {
  // Everything the assembler emits must decode to a known instruction.
  const Program p = assemble(R"(
.data
buf: .word 1, 2, 3
.text
main:
  la s0, buf
  li t0, 0x7FFFFFFF
  lw t1, 0(s0)
  sw t1, 4(s0)
  chk icm, 0, blk, r0, 0
  beq t0, t1, main
  jal main
  jr ra
  syscall
)");
  for (const Word raw : p.text) {
    EXPECT_NE(decode(raw).op, Op::kInvalid) << "word 0x" << std::hex << raw;
  }
}

}  // namespace
}  // namespace rse::isa
