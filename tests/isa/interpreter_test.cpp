// Unit tests for the golden-model interpreter itself (the reference the
// pipeline is differential-tested against needs its own ground truth).
#include "isa/interpreter.hpp"

#include <gtest/gtest.h>

#include "isa/assembler.hpp"

namespace rse::isa {
namespace {

struct InterpFixture : ::testing::Test {
  mem::MainMemory memory;

  Interpreter run(const std::string& source, u64 budget = 100000) {
    const Program program = assemble(source);
    for (std::size_t i = 0; i < program.text.size(); ++i) {
      memory.write_u32(program.text_base + static_cast<Addr>(i * 4), program.text[i]);
    }
    if (!program.data.empty()) {
      memory.write_block(program.data_base, program.data.data(),
                         static_cast<u32>(program.data.size()));
    }
    Interpreter interp(memory);
    interp.set_pc(program.entry);
    interp.set_syscall_handler([](Interpreter& i) { return i.reg(kV0) != 1; });
    interp.run(budget);
    return interp;
  }
};

TEST_F(InterpFixture, Arithmetic) {
  Interpreter i = run(R"(
.text
main:
  li t0, 21
  li t1, 2
  mul s0, t0, t1
  li a0, 0
  li v0, 1
  syscall
)");
  EXPECT_EQ(i.reg(kS0), 42u);
}

TEST_F(InterpFixture, MemoryAndLoop) {
  Interpreter i = run(R"(
.data
arr: .space 40
.text
main:
  la s0, arr
  li t0, 0
fill:
  li t1, 10
  bge t0, t1, sum
  sll t2, t0, 2
  add t2, s0, t2
  sw t0, 0(t2)
  addi t0, t0, 1
  b fill
sum:
  li t0, 0
  li s1, 0
sum_loop:
  li t1, 10
  bge t0, t1, done
  sll t2, t0, 2
  add t2, s0, t2
  lw t3, 0(t2)
  add s1, s1, t3
  addi t0, t0, 1
  b sum_loop
done:
  li v0, 1
  syscall
)");
  EXPECT_EQ(i.reg(kS0 + 1), 45u);
}

TEST_F(InterpFixture, CallsAndReturns) {
  Interpreter i = run(R"(
.text
main:
  li a0, 7
  jal twice
  move s2, v0
  li v0, 1
  syscall
twice:
  add v0, a0, a0
  jr ra
)");
  EXPECT_EQ(i.reg(kS0 + 2), 14u);
}

TEST_F(InterpFixture, ChkIsTransparent) {
  Interpreter i = run(R"(
.text
main:
  li s3, 5
  chk icm, 0, blk, r0, 0
  addi s3, s3, 1
  chk ddt, 3, nblk, s3, 0
  addi s3, s3, 1
  li v0, 1
  syscall
)");
  EXPECT_EQ(i.reg(kS0 + 3), 7u);
}

TEST_F(InterpFixture, SignedCompareAndBranches) {
  Interpreter i = run(R"(
.text
main:
  li t0, -5
  li t1, 3
  li s4, 0
  blt t0, t1, signed_ok
  li s4, 99
signed_ok:
  bltu t0, t1, wrong       # 0xFFFFFFFB > 3 unsigned
  addi s4, s4, 1
wrong:
  li v0, 1
  syscall
)");
  EXPECT_EQ(i.reg(kS0 + 4), 1u);
}

TEST_F(InterpFixture, DivisionByZeroIsZero) {
  Interpreter i = run(R"(
.text
main:
  li t0, 5
  li t1, 0
  div s5, t0, t1
  rem s6, t0, t1
  li v0, 1
  syscall
)");
  EXPECT_EQ(i.reg(kS0 + 5), 0u);
  EXPECT_EQ(i.reg(kS0 + 6), 0u);
}

TEST_F(InterpFixture, IllegalInstructionStops) {
  const Program program = assemble(".text\nmain:\n  nop\n");
  memory.write_u32(program.text_base, program.text[0]);
  memory.write_u32(program.text_base + 4, 0xFC000000);  // illegal
  Interpreter interp(memory);
  interp.set_pc(program.text_base);
  EXPECT_EQ(interp.run(100), Interpreter::Stop::kIllegal);
  EXPECT_TRUE(interp.hit_illegal());
  EXPECT_EQ(interp.instructions_executed(), 1u);  // nop only
}

TEST_F(InterpFixture, InstructionBudgetBoundsRunaways) {
  Interpreter i = run(".text\nmain:\n  b main\n", 500);
  EXPECT_EQ(i.instructions_executed(), 500u);
  EXPECT_FALSE(i.hit_illegal());
}

TEST_F(InterpFixture, RunReportsStopReason) {
  // Budget exhaustion is not a clean exit and must be distinguishable.
  const Program program = assemble(".text\nmain:\n  b main\n");
  for (std::size_t i = 0; i < program.text.size(); ++i) {
    memory.write_u32(program.text_base + static_cast<Addr>(i * 4), program.text[i]);
  }
  Interpreter interp(memory);
  interp.set_pc(program.entry);
  EXPECT_EQ(interp.run(500), Interpreter::Stop::kBudget);

  mem::MainMemory clean;
  const Program exits = assemble(".text\nmain:\n  li v0, 1\n  syscall\n");
  for (std::size_t i = 0; i < exits.text.size(); ++i) {
    clean.write_u32(exits.text_base + static_cast<Addr>(i * 4), exits.text[i]);
  }
  Interpreter done(clean);
  done.set_pc(exits.entry);
  done.set_syscall_handler([](Interpreter& i) { return i.reg(kV0) != 1; });
  EXPECT_EQ(done.run(500), Interpreter::Stop::kHandlerStop);
  EXPECT_FALSE(done.hit_illegal());
}

TEST_F(InterpFixture, R0StaysZero) {
  Interpreter i = run(R"(
.text
main:
  li t0, 42
  add r0, t0, t0
  move s7, r0
  li v0, 1
  syscall
)");
  EXPECT_EQ(i.reg(kS0 + 7), 0u);
  EXPECT_EQ(i.reg(0), 0u);
}

}  // namespace
}  // namespace rse::isa
