#include "mem/main_memory.hpp"

#include <gtest/gtest.h>

namespace rse::mem {
namespace {

TEST(MainMemory, ZeroInitialized) {
  MainMemory m;
  EXPECT_EQ(m.read_u8(0), 0);
  EXPECT_EQ(m.read_u32(0x12345678), 0u);
}

TEST(MainMemory, ByteHalfWordRoundTrip) {
  MainMemory m;
  m.write_u8(100, 0xAB);
  m.write_u16(102, 0xBEEF);
  m.write_u32(104, 0xDEADBEEF);
  EXPECT_EQ(m.read_u8(100), 0xAB);
  EXPECT_EQ(m.read_u16(102), 0xBEEF);
  EXPECT_EQ(m.read_u32(104), 0xDEADBEEFu);
}

TEST(MainMemory, LittleEndianLayout) {
  MainMemory m;
  m.write_u32(0, 0x04030201);
  EXPECT_EQ(m.read_u8(0), 1);
  EXPECT_EQ(m.read_u8(1), 2);
  EXPECT_EQ(m.read_u8(2), 3);
  EXPECT_EQ(m.read_u8(3), 4);
  EXPECT_EQ(m.read_u16(1), 0x0302);
}

TEST(MainMemory, CrossPageWord) {
  MainMemory m;
  const Addr boundary = kPageBytes - 2;
  m.write_u32(boundary, 0xCAFEBABE);
  EXPECT_EQ(m.read_u32(boundary), 0xCAFEBABEu);
  EXPECT_EQ(m.pages_touched(), 2u);
}

TEST(MainMemory, BlockTransferAcrossPages) {
  MainMemory m;
  std::vector<u8> data(kPageBytes + 100);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i * 7);
  m.write_block(kPageBytes - 50, data.data(), static_cast<u32>(data.size()));
  std::vector<u8> readback(data.size());
  m.read_block(kPageBytes - 50, readback.data(), static_cast<u32>(readback.size()));
  EXPECT_EQ(readback, data);
}

TEST(MainMemory, ReadBlockOfUntouchedMemoryIsZero) {
  MainMemory m;
  u8 buf[16] = {1, 2, 3};
  m.read_block(0x40000000, buf, sizeof(buf));
  for (u8 b : buf) EXPECT_EQ(b, 0);
}

TEST(MainMemory, PageSnapshotRestore) {
  MainMemory m;
  m.write_u32(0x5000, 111);
  m.write_u32(0x5004, 222);
  const u32 page = page_of(0x5000);
  const std::vector<u8> snap = m.snapshot_page(page);
  m.write_u32(0x5000, 999);
  m.write_u32(0x5FFC, 888);
  m.restore_page(page, snap);
  EXPECT_EQ(m.read_u32(0x5000), 111u);
  EXPECT_EQ(m.read_u32(0x5004), 222u);
  EXPECT_EQ(m.read_u32(0x5FFC), 0u);
}

TEST(MainMemory, PageHelpers) {
  EXPECT_EQ(page_of(0), 0u);
  EXPECT_EQ(page_of(4095), 0u);
  EXPECT_EQ(page_of(4096), 1u);
  EXPECT_EQ(page_base(3), 3u * 4096);
}

}  // namespace
}  // namespace rse::mem
