// Property tests over cache geometries: accounting invariants, capacity
// behaviour, and set-conflict behaviour must hold for every configuration.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "mem/cache.hpp"

namespace rse::mem {
namespace {

class CountingLevel : public MemLevel {
 public:
  Cycle access(Cycle now, Addr, u32, bool) override {
    ++accesses;
    return now + 20;
  }
  u64 accesses = 0;
};

// (size, assoc, block)
using Geometry = std::tuple<u32, u32, u32>;

class CacheProperty : public ::testing::TestWithParam<Geometry> {
 protected:
  CacheConfig config() const {
    const auto [size, assoc, block] = GetParam();
    return CacheConfig{"prop", size, assoc, block, 1};
  }
};

TEST_P(CacheProperty, AccountingInvariant) {
  CountingLevel next;
  Cache cache(config(), next);
  Xorshift64 rng(std::get<0>(GetParam()) + std::get<1>(GetParam()));
  Cycle now = 0;
  for (int i = 0; i < 2000; ++i) {
    cache.access(++now, static_cast<Addr>(rng.next_below(1 << 16)) & ~3u, 4,
                 rng.next_below(2) == 0);
  }
  const CacheStats& stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, stats.accesses);
  EXPECT_EQ(stats.accesses, 2000u);
  EXPECT_LE(stats.writebacks, stats.misses);  // at most one writeback per fill
  // Every miss reaches the next level at least once (fill), at most twice
  // (writeback + fill).
  EXPECT_GE(next.accesses, stats.misses);
  EXPECT_LE(next.accesses, 2 * stats.misses);
}

TEST_P(CacheProperty, WorkingSetWithinCapacityAlwaysHitsOnRevisit) {
  CountingLevel next;
  Cache cache(config(), next);
  const auto [size, assoc, block] = GetParam();
  const u32 blocks = size / block;
  Cycle now = 0;
  // Touch every block once (sequential fill: no conflict evictions since
  // the set population equals associativity exactly).
  for (u32 b = 0; b < blocks; ++b) cache.access(++now, b * block, 4, false);
  const u64 misses_after_fill = cache.stats().misses;
  EXPECT_EQ(misses_after_fill, blocks);
  // Revisit: everything must hit.
  for (u32 b = 0; b < blocks; ++b) cache.access(++now, b * block, 4, false);
  EXPECT_EQ(cache.stats().misses, misses_after_fill);
}

TEST_P(CacheProperty, ThrashingBeyondAssociativityAlwaysMisses) {
  CountingLevel next;
  Cache cache(config(), next);
  const auto [size, assoc, block] = GetParam();
  const u32 sets = size / (block * assoc);
  const u32 stride = sets * block;  // same set every time
  Cycle now = 0;
  // Cycle through assoc+1 conflicting blocks repeatedly: LRU guarantees
  // every access misses once warmed.
  for (int round = 0; round < 20; ++round) {
    for (u32 way = 0; way <= assoc; ++way) {
      cache.access(++now, way * stride, 4, false);
    }
  }
  const CacheStats& stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
}

TEST_P(CacheProperty, DirtyDataIsWrittenBackExactlyOncePerEviction) {
  CountingLevel next;
  Cache cache(config(), next);
  const auto [size, assoc, block] = GetParam();
  const u32 sets = size / (block * assoc);
  const u32 stride = sets * block;
  Cycle now = 0;
  // Write assoc blocks of one set (all dirty), then evict them all with
  // clean reads of new conflicting blocks.
  for (u32 way = 0; way < assoc; ++way) cache.access(++now, way * stride, 4, true);
  for (u32 way = 0; way < assoc; ++way) {
    cache.access(++now, (assoc + way) * stride, 4, false);
  }
  EXPECT_EQ(cache.stats().writebacks, assoc);
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheProperty,
                         ::testing::Values(Geometry{8 * 1024, 1, 32},   // paper il1/dl1
                                           Geometry{64 * 1024, 2, 64},  // paper il2
                                           Geometry{128 * 1024, 2, 64}, // paper dl2
                                           Geometry{256, 1, 16},        // tiny direct
                                           Geometry{512, 4, 16},        // 4-way
                                           Geometry{1024, 8, 32},       // 8-way
                                           Geometry{4096, 4, 128}));    // big blocks

TEST(CacheSingleSet, FullyAssociativeBehaviour) {
  // size == assoc * block: one set, pure LRU.
  CountingLevel next;
  Cache cache(CacheConfig{"full", 4 * 32, 4, 32, 1}, next);
  Cycle now = 0;
  for (u32 b = 0; b < 4; ++b) cache.access(++now, b * 32, 4, false);
  cache.access(++now, 0 * 32, 4, false);  // touch block 0 (MRU)
  cache.access(++now, 4 * 32, 4, false);  // evicts block 1 (LRU)
  cache.access(++now, 0 * 32, 4, false);  // hit
  EXPECT_EQ(cache.stats().hits, 2u);
  cache.access(++now, 1 * 32, 4, false);  // miss: was evicted
  EXPECT_EQ(cache.stats().misses, 6u);
}

}  // namespace
}  // namespace rse::mem
