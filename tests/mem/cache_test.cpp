#include "mem/cache.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace rse::mem {
namespace {

/// Next level with a fixed latency, recording accesses.
class FakeLevel : public MemLevel {
 public:
  explicit FakeLevel(Cycle latency) : latency_(latency) {}
  Cycle access(Cycle now, Addr addr, u32 bytes, bool write) override {
    accesses.push_back({addr, bytes, write});
    return now + latency_;
  }
  struct Access {
    Addr addr;
    u32 bytes;
    bool write;
  };
  std::vector<Access> accesses;

 private:
  Cycle latency_;
};

CacheConfig small_config() {
  // 4 sets x 1 way x 16-byte blocks = 64 bytes.
  return CacheConfig{"test", 64, 1, 16, 1};
}

TEST(Cache, MissThenHit) {
  FakeLevel next(10);
  Cache cache(small_config(), next);
  const Cycle miss_done = cache.access(0, 0x100, 4, false);
  EXPECT_EQ(miss_done, 11u);  // 1 tag check + 10 fill
  EXPECT_EQ(cache.stats().misses, 1u);
  const Cycle hit_done = cache.access(20, 0x104, 4, false);  // same block
  EXPECT_EQ(hit_done, 21u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(Cache, FillsWholeBlocks) {
  FakeLevel next(10);
  Cache cache(small_config(), next);
  cache.access(0, 0x107, 1, false);
  ASSERT_EQ(next.accesses.size(), 1u);
  EXPECT_EQ(next.accesses[0].addr, 0x100u);
  EXPECT_EQ(next.accesses[0].bytes, 16u);
  EXPECT_FALSE(next.accesses[0].write);
}

TEST(Cache, WritebackOnDirtyEviction) {
  FakeLevel next(10);
  Cache cache(small_config(), next);
  cache.access(0, 0x100, 4, true);   // dirty block in set 0
  cache.access(20, 0x140, 4, false); // same set (64-byte stride), evicts
  ASSERT_EQ(next.accesses.size(), 3u);
  EXPECT_TRUE(next.accesses[1].write);        // writeback of 0x100 block
  EXPECT_EQ(next.accesses[1].addr, 0x100u);
  EXPECT_FALSE(next.accesses[2].write);       // refill of 0x140 block
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionSkipsWriteback) {
  FakeLevel next(10);
  Cache cache(small_config(), next);
  cache.access(0, 0x100, 4, false);
  cache.access(20, 0x140, 4, false);
  EXPECT_EQ(next.accesses.size(), 2u);
  EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(Cache, LruReplacementInSet) {
  // 2-way cache: 2 sets x 2 ways x 16B = 64B.
  FakeLevel next(10);
  Cache cache(CacheConfig{"lru", 64, 2, 16, 1}, next);
  cache.access(0, 0x000, 4, false);   // set 0, way A
  cache.access(10, 0x020, 4, false);  // set 0, way B (stride 32 = 2 sets*16)
  cache.access(20, 0x000, 4, false);  // touch A -> B is LRU
  cache.access(30, 0x040, 4, false);  // evicts B
  cache.access(40, 0x000, 4, false);  // A still resident
  EXPECT_EQ(cache.stats().hits, 2u);
  cache.access(50, 0x020, 4, false);  // B was evicted -> miss
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(Cache, MissRateComputation) {
  FakeLevel next(10);
  Cache cache(small_config(), next);
  cache.access(0, 0x100, 4, false);
  cache.access(10, 0x100, 4, false);
  cache.access(20, 0x100, 4, false);
  cache.access(30, 0x100, 4, false);
  EXPECT_DOUBLE_EQ(cache.stats().miss_rate(), 0.25);
}

TEST(Cache, FlushInvalidatesEverything) {
  FakeLevel next(10);
  Cache cache(small_config(), next);
  cache.access(0, 0x100, 4, false);
  cache.flush();
  cache.access(10, 0x100, 4, false);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(Cache, RejectsBadGeometry) {
  FakeLevel next(1);
  EXPECT_THROW(Cache(CacheConfig{"bad", 100, 1, 16, 1}, next), ConfigError);
  EXPECT_THROW(Cache(CacheConfig{"bad", 64, 0, 16, 1}, next), ConfigError);
  EXPECT_THROW(Cache(CacheConfig{"bad", 64, 1, 12, 1}, next), ConfigError);
}

TEST(Cache, PaperGeometriesConstruct) {
  FakeLevel next(1);
  EXPECT_NO_THROW(Cache(CacheConfig{"il1", 8 * 1024, 1, 32, 1}, next));
  EXPECT_NO_THROW(Cache(CacheConfig{"il2", 64 * 1024, 2, 64, 6}, next));
  EXPECT_NO_THROW(Cache(CacheConfig{"dl2", 128 * 1024, 2, 64, 6}, next));
}

TEST(Cache, HierarchyLatencyComposes) {
  // L1(1) -> L2(6) -> memory(fake 30): L1 miss + L2 miss.
  FakeLevel memory(30);
  Cache l2(CacheConfig{"l2", 128, 2, 16, 6}, memory);
  Cache l1(CacheConfig{"l1", 64, 1, 16, 1}, l2);
  const Cycle done = l1.access(0, 0x100, 4, false);
  // 1 (L1 tag) + 6 (L2 tag) + 30 (memory) = 37
  EXPECT_EQ(done, 37u);
  // Second access: L1 hit.
  EXPECT_EQ(l1.access(40, 0x104, 4, false), 41u);
}

}  // namespace
}  // namespace rse::mem
