#include "mem/bus.hpp"

#include <gtest/gtest.h>

namespace rse::mem {
namespace {

TEST(BusTiming, SingleChunk) {
  const BusTiming t{18, 2, 8};
  EXPECT_EQ(t.transfer_cycles(1), 18u);
  EXPECT_EQ(t.transfer_cycles(8), 18u);
}

TEST(BusTiming, MultiChunkPipelined) {
  const BusTiming t{18, 2, 8};
  EXPECT_EQ(t.transfer_cycles(9), 20u);    // 2 chunks
  EXPECT_EQ(t.transfer_cycles(32), 24u);   // 4 chunks: 18 + 3*2
  EXPECT_EQ(t.transfer_cycles(64), 32u);   // 8 chunks: 18 + 7*2
}

TEST(BusTiming, RsePenaltyMatchesPaper) {
  // Section 5.2: with the arbiter, 18/2 becomes 19/3.
  const BusTiming rse{19, 3, 8};
  EXPECT_EQ(rse.transfer_cycles(8), 19u);
  EXPECT_EQ(rse.transfer_cycles(64), 19u + 7 * 3);
}

TEST(BusArbiter, IdleBusStartsImmediately) {
  BusArbiter arb(BusTiming{18, 2, 8});
  EXPECT_EQ(arb.request(100, 8, BusSource::kPipeline), 118u);
}

TEST(BusArbiter, BusyBusSerializes) {
  BusArbiter arb(BusTiming{18, 2, 8});
  const Cycle first = arb.request(0, 8, BusSource::kPipeline);
  EXPECT_EQ(first, 18u);
  // Second request issued at cycle 5 waits until the bus frees.
  const Cycle second = arb.request(5, 8, BusSource::kMau);
  EXPECT_EQ(second, 36u);
  EXPECT_EQ(arb.stats().mau_wait_cycles, 13u);
}

TEST(BusArbiter, StatsPerSource) {
  BusArbiter arb(BusTiming{18, 2, 8});
  arb.request(0, 8, BusSource::kPipeline);
  arb.request(0, 8, BusSource::kPipeline);
  arb.request(0, 16, BusSource::kMau);
  EXPECT_EQ(arb.stats().pipeline_transfers, 2u);
  EXPECT_EQ(arb.stats().mau_transfers, 1u);
  EXPECT_GT(arb.stats().busy_cycles, 0u);
}

TEST(BusArbiter, FreesAfterTransfer) {
  BusArbiter arb(BusTiming{18, 2, 8});
  arb.request(0, 8, BusSource::kPipeline);
  // After busy_until, a new request starts immediately.
  EXPECT_EQ(arb.request(50, 8, BusSource::kPipeline), 68u);
}

}  // namespace
}  // namespace rse::mem
