// Security attack scenarios end-to-end: the classes of layout-dependent
// attacks the paper says the MLR defeats ("about 60% of attacks reported by
// CERT... are based on an attacker's knowledge of the memory layout of a
// target application").  Each scenario is run unprotected (attack succeeds
// or hijacks) and protected (attack is foiled / contained).
#include <gtest/gtest.h>

#include "../support/sim_runner.hpp"

namespace rse {
namespace {

using testing::SimRunner;

os::MachineConfig rse_machine(u64 mlr_seed = 0x4D4C52) {
  os::MachineConfig config;
  config.framework_present = true;
  config.mlr.seed = mlr_seed;
  return config;
}

// Scenario 1: function-pointer overwrite at an absolute stack address.
// The victim keeps a function pointer in its stack frame; the attacker
// (modeled host-side, standing in for an arbitrary-write primitive) writes
// the address of `privileged` to the address the pointer occupies under the
// DEFAULT layout.
constexpr const char* kFnPtrVictim = R"(
.text
main:
  # stack frame: [sp+0] = function pointer, initialized to `safe`
  addi sp, sp, -16
  la t0, safe
  sw t0, 0(sp)
  # ... time passes (the attacker's write lands here, host-side) ...
  li v0, 8
  syscall              # yield: a deterministic point for the injection
  # call through the (possibly clobbered) pointer
  lw t1, 0(sp)
  jalr t1
  move a0, v0
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
safe:
  li v0, 111
  jr ra
privileged:
  li v0, 666           # the attacker's goal
  jr ra
)";

/// Run the fn-ptr scenario; the attacker writes `payload` to `target_addr`
/// right after the yield syscall.
std::string run_fnptr_attack(bool randomize, Addr target_addr, u64 mlr_seed) {
  os::OsConfig os_config;
  os_config.randomize_layout = randomize;
  SimRunner runner(rse_machine(mlr_seed), os_config);
  runner.load_source(kFnPtrVictim);
  const Addr privileged = runner.program().symbol("privileged");
  // Advance until the victim yields (its frame is live), then inject.
  while (!runner.os().finished() && runner.os().stats().syscalls < 1) runner.os().step();
  runner.machine().memory().write_u32(target_addr, privileged);
  runner.run();
  return runner.os().output();
}

TEST(AttackScenarios, FnPtrOverwriteHijacksFixedLayout) {
  // Dry run (no attack) to learn where the pointer lives by default.
  SimRunner probe;
  probe.load_source(kFnPtrVictim);
  probe.run();
  ASSERT_EQ(probe.os().output(), "111");
  const Addr default_slot = ((probe.os().stack_base() - 64) & ~Addr{15}) - 16;

  // Unprotected: the attacker's fixed-layout assumption holds -> hijack.
  EXPECT_EQ(run_fnptr_attack(/*randomize=*/false, default_slot, 1), "666");
}

TEST(AttackScenarios, FnPtrOverwriteFoiledByMlrAcrossSeeds) {
  SimRunner probe;
  probe.load_source(kFnPtrVictim);
  probe.run();
  const Addr default_slot = ((probe.os().stack_base() - 64) & ~Addr{15}) - 16;

  // Protected: the stack lives somewhere else; the blind write misses the
  // pointer and the victim calls `safe` as intended.  Check several
  // hardware-entropy seeds (a lucky collision is ~1 in 64k).
  int foiled = 0;
  for (u64 seed = 10; seed < 18; ++seed) {
    if (run_fnptr_attack(/*randomize=*/true, default_slot, seed) == "111") ++foiled;
  }
  EXPECT_GE(foiled, 7);
}

// Scenario 2: jump to an absolute address assumed to hold injected code
// (classic code-injection with a fixed stack layout).  Execute protection +
// MLR turn it into a contained crash — and with the DDT the rest of a
// multithreaded service survives.
TEST(AttackScenarios, CodeInjectionBecomesContainedCrash) {
  os::OsConfig os_config;
  os_config.randomize_layout = true;
  SimRunner runner(rse_machine(), os_config);
  runner.load_source(R"(
.text
main:
  li t0, 0x7FFE0000   # "the payload must be here" under the fixed layout
  jr t0
)");
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().exit_code(), 139);
  EXPECT_EQ(runner.os().stats().crashes, 1u);
}

// Scenario 3: GOT overwrite against a long-running service is defeated by
// runtime re-randomization (covered in depth in rerandomize_test.cpp);
// here the combined stack + GOT protection runs together.
TEST(AttackScenarios, LayeredDefensesComposeOnOneProcess) {
  os::OsConfig os_config;
  os_config.randomize_layout = true;
  os_config.rerandomize_interval = 3000;
  SimRunner runner(rse_machine(), os_config);
  runner.load_source(R"(
.data
.align 4
got:  .word fn
plt:  .word got+0
acc:  .word 0
.text
main:
  la a0, got
  la a1, plt
  li a2, 4
  li v0, 16
  syscall
  li s0, 0
loop:
  li t0, 600
  bge s0, t0, done
  lw t1, plt
  lw t1, 0(t1)
  jalr t1
  addi s0, s0, 1
  b loop
done:
  lw a0, acc
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
fn:
  lw t2, acc
  addi t2, t2, 1
  sw t2, acc
  jr ra
)");
  const Addr original_got = runner.program().symbol("got");
  // Attack both the original GOT and the default stack mid-run.
  for (int i = 0; i < 5000; ++i) runner.os().step();
  runner.machine().memory().write_u32(original_got, 0xDEAD0000);
  runner.machine().memory().write_u32(isa::kDefaultStackTop - 64, 0xDEAD0000);
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().exit_code(), 0);
  EXPECT_EQ(runner.os().output(), "600");
  EXPECT_GT(runner.os().stats().rerandomizations, 0u);
  EXPECT_NE(runner.os().stack_base(), isa::kDefaultStackTop);
}

}  // namespace
}  // namespace rse
