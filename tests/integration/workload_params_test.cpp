// Parameterized sweeps over the workload generators: every configuration
// must assemble, run to a clean exit, and stay deterministic.
#include <gtest/gtest.h>

#include <tuple>

#include "../support/sim_runner.hpp"
#include "workloads/workloads.hpp"

namespace rse {
namespace {

using testing::SimRunner;

class KMeansSweep : public ::testing::TestWithParam<std::tuple<u32, u32, u32>> {};

TEST_P(KMeansSweep, RunsClean) {
  const auto [patterns, clusters, iters] = GetParam();
  workloads::KMeansParams params;
  params.patterns = patterns;
  params.clusters = clusters;
  params.iters = iters;
  SimRunner runner;
  runner.load_source(workloads::kmeans_source(params));
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().exit_code(), 0);
  // Work scales with patterns * clusters * iters.
  EXPECT_GT(runner.core_stats().instructions, u64{patterns} * clusters * iters);
}

INSTANTIATE_TEST_SUITE_P(Configs, KMeansSweep,
                         ::testing::Values(std::tuple{20u, 2u, 1u}, std::tuple{50u, 4u, 2u},
                                           std::tuple{100u, 8u, 1u}, std::tuple{40u, 16u, 3u}));

class PlaceSweep : public ::testing::TestWithParam<std::tuple<u32, u32, u32>> {};

TEST_P(PlaceSweep, RunsClean) {
  const auto [nets, temps, moves] = GetParam();
  workloads::PlaceParams params;
  params.cells = 128;
  params.grid = 16;
  params.nets = nets;
  params.temps = temps;
  params.moves_per_temp = moves;
  SimRunner runner;
  runner.load_source(workloads::vpr_place_source(params));
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().exit_code(), 0);
}

INSTANTIATE_TEST_SUITE_P(Configs, PlaceSweep,
                         ::testing::Values(std::tuple{64u, 2u, 50u}, std::tuple{256u, 3u, 100u},
                                           std::tuple{1024u, 2u, 200u}));

class RouteSweep : public ::testing::TestWithParam<std::tuple<u32, u32, u32>> {};

TEST_P(RouteSweep, RunsClean) {
  const auto [grid, nets, obstacles] = GetParam();
  workloads::RouteParams params;
  params.grid = grid;
  params.nets = nets;
  params.obstacles = obstacles;
  SimRunner runner;
  runner.load_source(workloads::vpr_route_source(params));
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().exit_code(), 0);
}

INSTANTIATE_TEST_SUITE_P(Configs, RouteSweep,
                         ::testing::Values(std::tuple{16u, 3u, 20u}, std::tuple{32u, 5u, 150u},
                                           std::tuple{32u, 8u, 0u}));

class ServerSweep : public ::testing::TestWithParam<std::tuple<u32, u32, bool>> {};

TEST_P(ServerSweep, HandlesEveryRequest) {
  const auto [threads, io_phases, ddt] = GetParam();
  workloads::ServerParams params;
  params.threads = threads;
  params.io_phases = io_phases;
  params.compute_iters = 40;
  params.enable_ddt = ddt;
  os::MachineConfig config;
  config.framework_present = true;
  SimRunner runner(config);
  runner.os().network().configure([] {
    os::NetworkConfig net;
    net.total_requests = 10;
    net.interarrival = 400;
    net.io_latency_mean = 1500;
    return net;
  }());
  runner.load_source(workloads::server_source(params));
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().exit_code(), 0);
  EXPECT_TRUE(runner.os().network().all_completed());
}

INSTANTIATE_TEST_SUITE_P(Configs, ServerSweep,
                         ::testing::Values(std::tuple{1u, 1u, false}, std::tuple{2u, 2u, true},
                                           std::tuple{6u, 3u, true},
                                           std::tuple{10u, 1u, false}));

class MlrSweep : public ::testing::TestWithParam<u32> {};

TEST_P(MlrSweep, BothVersionsAgreeOnMemoryState) {
  const workloads::MlrProgParams params{GetParam()};
  os::MachineConfig config;
  config.framework_present = true;
  SimRunner software(config), hardware(config);
  software.load_source(workloads::trr_software_source(params));
  software.run();
  hardware.load_source(workloads::mlr_rse_source(params));
  hardware.run();
  ASSERT_EQ(software.os().exit_code(), 0);
  ASSERT_EQ(hardware.os().exit_code(), 0);
  const Addr got_new = software.program().symbol("got_new");
  const Addr plt = software.program().symbol("plt");
  for (u32 i = 0; i < params.got_entries; ++i) {
    EXPECT_EQ(software.machine().memory().read_u32(got_new + i * 4),
              hardware.machine().memory().read_u32(got_new + i * 4));
    EXPECT_EQ(software.machine().memory().read_u32(plt + i * 4),
              hardware.machine().memory().read_u32(plt + i * 4));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MlrSweep, ::testing::Values(16u, 64u, 200u, 1000u));

class RandomProgramDeterminism : public ::testing::TestWithParam<u64> {};

TEST_P(RandomProgramDeterminism, CycleExactAcrossRuns) {
  workloads::KMeansParams params;
  params.patterns = 30;
  params.clusters = 4;
  params.iters = 1;
  params.seed = GetParam();
  const std::string source = workloads::kmeans_source(params);
  SimRunner a, b;
  a.load_source(source);
  a.run();
  b.load_source(source);
  b.run();
  EXPECT_EQ(a.cycles(), b.cycles());
  EXPECT_EQ(a.os().output(), b.os().output());
  EXPECT_EQ(a.core_stats().mispredicts, b.core_stats().mispredicts);
  EXPECT_EQ(a.machine().il1().stats().misses, b.machine().il1().stats().misses);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramDeterminism, ::testing::Values(1u, 7u, 42u));

}  // namespace
}  // namespace rse
