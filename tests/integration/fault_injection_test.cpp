// End-to-end fault injection against a running workload: module behavioural
// faults (Table 2) and IOQ stuck-at bits, verifying safe-mode decoupling
// keeps the application live.
#include <gtest/gtest.h>

#include "../support/sim_runner.hpp"
#include "workloads/workloads.hpp"

namespace rse {
namespace {

using testing::SimRunner;

os::MachineConfig rse_machine(Cycle watchdog = 2000) {
  os::MachineConfig config;
  config.framework_present = true;
  config.selfcheck.watchdog_timeout = watchdog;
  config.selfcheck.alarm_threshold = 4;
  return config;
}

constexpr const char* kCheckedProgram = R"(
.text
main:
  chk frame, 1, nblk, r0, 1
  li t0, 0
  li t1, 0
loop:
  li t2, 40
  add t1, t1, t0
  addi t0, t0, 1
  chk icm, 0, blk, r0, 0
  blt t0, t2, loop
  move a0, t1
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)";

TEST(FaultInjection, NoProgressModuleDecouplesAndAppCompletes) {
  // Table 2 row 1: a hung module would stall the blocking CHECK forever;
  // the watchdog decouples the framework and the application finishes.
  SimRunner runner(rse_machine());
  runner.load_source(kCheckedProgram);
  runner.machine().icm()->inject_fault(engine::ModuleFaultMode::kNoProgress);
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().output(), "780");
  EXPECT_TRUE(runner.machine().framework()->safe_mode());
  EXPECT_EQ(runner.machine().framework()->verdict(), engine::SelfCheckVerdict::kNoProgress);
}

TEST(FaultInjection, FalseAlarmStormDecouplesAndAppCompletes) {
  // Table 2 row 2: the module flags every CHECK; retries flush repeatedly
  // until the storm counter trips and the framework decouples.  The OS retry
  // budget is widened so the hardware watchdog (not OS containment) acts.
  os::OsConfig os_config;
  os_config.check_error_retries = 50;
  SimRunner runner(rse_machine(), os_config);
  runner.load_source(kCheckedProgram);
  runner.machine().icm()->inject_fault(engine::ModuleFaultMode::kFalseAlarm);
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().output(), "780");
  EXPECT_TRUE(runner.machine().framework()->safe_mode());
  EXPECT_EQ(runner.machine().framework()->verdict(),
            engine::SelfCheckVerdict::kFalseAlarmStorm);
  EXPECT_GT(runner.core_stats().check_error_flushes, 0u);
}

TEST(FaultInjection, FalseNegativeGoesUnnoticedButHarmless) {
  // Table 2 row 3: the application silently loses protection — execution
  // proceeds; the watchdog (by design) cannot see this.
  SimRunner runner(rse_machine());
  runner.load_source(kCheckedProgram);
  runner.machine().icm()->inject_fault(engine::ModuleFaultMode::kFalseNegative);
  runner.run();
  EXPECT_EQ(runner.os().output(), "780");
  EXPECT_FALSE(runner.machine().framework()->safe_mode());
}

TEST(FaultInjection, FalseNegativeMasksARealFault) {
  // The cost of Table 2 row 3: with the module lying, a corrupted
  // instruction sails through and produces a wrong result.
  SimRunner runner(rse_machine());
  runner.load_source(kCheckedProgram);
  runner.machine().icm()->inject_fault(engine::ModuleFaultMode::kFalseNegative);
  const Addr add_pc = runner.program().symbol("loop") + 4;
  const Word original = runner.machine().memory().read_u32(add_pc);
  runner.machine().memory().write_u32(add_pc, original ^ 0x2);  // add -> sub
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_NE(runner.os().output(), "780");
}

TEST(FaultInjection, StuckAt1CheckValidOnFreeEntryTripsWatchdog) {
  SimRunner runner(rse_machine());
  runner.load_source(kCheckedProgram);
  runner.machine().framework()->ioq().inject_stuck_fault(
      3, engine::IoqStuckFault::kCheckValidStuck1);
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().output(), "780");
  // With the busy pipeline the slot keeps getting reallocated; the missing
  // 1->0 transition is caught once the machine goes quiet (the watchdog
  // keeps running while the pipeline idles).
  for (int i = 0; i < 5000 && !runner.machine().framework()->safe_mode(); ++i) {
    runner.machine().step();
  }
  EXPECT_TRUE(runner.machine().framework()->safe_mode());
  EXPECT_EQ(runner.machine().framework()->verdict(), engine::SelfCheckVerdict::kStuckAt1);
}

TEST(FaultInjection, StuckAt0CheckValidDetectedAsNoProgress) {
  SimRunner runner(rse_machine());
  runner.load_source(kCheckedProgram);
  // Slot of the repeated ICM CHECK varies; stuck-at-0 on any slot the CHECK
  // occupies will eventually hold one hostage.  Inject on several cycles of
  // the loop by picking slot 0 (the flush realloc pattern reuses it).
  runner.machine().framework()->ioq().inject_stuck_fault(
      5, engine::IoqStuckFault::kCheckValidStuck0);
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().output(), "780");  // watchdog rescued it if it hit
}

TEST(FaultInjection, StuckAt1CheckCausesFlushLoopThenDecouple) {
  // Table 2 row 4 last case: check stuck at 1 -> repeated flush at the same
  // instruction; the free-entry monitor eventually decouples; the OS retry
  // budget may also contain it.  Either way the machine must not livelock.
  SimRunner runner(rse_machine(500));
  runner.load_source(kCheckedProgram);
  runner.machine().framework()->ioq().inject_stuck_fault(2,
                                                         engine::IoqStuckFault::kCheckStuck1);
  runner.run();
  EXPECT_TRUE(runner.os().finished());
}

TEST(FaultInjection, DisabledModuleNeverConsultedEvenWhenFaulty) {
  SimRunner runner(rse_machine());
  // Program never enables the ICM; a faulty module must be irrelevant.
  runner.load_source(R"(
.text
main:
  li t0, 0
loop:
  li t2, 40
  addi t0, t0, 1
  chk icm, 0, blk, r0, 0
  blt t0, t2, loop
  li a0, 0
  li v0, 1
  syscall
)");
  runner.machine().icm()->inject_fault(engine::ModuleFaultMode::kFalseAlarm);
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().exit_code(), 0);
  EXPECT_FALSE(runner.machine().framework()->safe_mode());
}

}  // namespace
}  // namespace rse
