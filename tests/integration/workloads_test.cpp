// The paper's workloads assemble, run to completion, and behave as the
// experiments require (determinism, instrumentation effects).
#include <gtest/gtest.h>

#include "../support/sim_runner.hpp"
#include "workloads/workloads.hpp"

namespace rse {
namespace {

using testing::SimRunner;

workloads::KMeansParams tiny_kmeans() {
  workloads::KMeansParams p;
  p.patterns = 40;
  p.clusters = 4;
  p.iters = 2;
  return p;
}

workloads::PlaceParams tiny_place() {
  workloads::PlaceParams p;
  p.temps = 3;
  p.moves_per_temp = 100;
  return p;
}

workloads::RouteParams tiny_route() {
  workloads::RouteParams p;
  p.nets = 4;
  return p;
}

TEST(Workloads, KMeansRunsToCompletion) {
  SimRunner runner;
  runner.load_source(workloads::kmeans_source(tiny_kmeans()));
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().exit_code(), 0);
  EXPECT_FALSE(runner.os().output().empty());
}

TEST(Workloads, KMeansIsDeterministic) {
  SimRunner a, b;
  a.load_source(workloads::kmeans_source(tiny_kmeans()));
  a.run();
  b.load_source(workloads::kmeans_source(tiny_kmeans()));
  b.run();
  EXPECT_EQ(a.os().output(), b.os().output());
  EXPECT_EQ(a.cycles(), b.cycles());
}

TEST(Workloads, PlaceRunsAndAcceptsMoves) {
  SimRunner runner;
  runner.load_source(workloads::vpr_place_source(tiny_place()));
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().exit_code(), 0);
  // annealing must accept at least some moves
  EXPECT_NE(runner.os().output(), "0\n");
}

TEST(Workloads, RouteFindsPaths) {
  SimRunner runner;
  runner.load_source(workloads::vpr_route_source(tiny_route()));
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().exit_code(), 0);
  const int total = std::stoi(runner.os().output());
  EXPECT_GT(total, 0);  // wavefront numbers accumulated
}

TEST(Workloads, ServerHandlesAllRequests) {
  workloads::ServerParams params;
  params.threads = 3;
  params.compute_iters = 50;
  SimRunner runner;
  runner.os().network().configure([] {
    os::NetworkConfig net;
    net.total_requests = 12;
    net.interarrival = 500;
    net.io_latency_mean = 2000;
    return net;
  }());
  runner.load_source(workloads::server_source(params));
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().exit_code(), 0);
  EXPECT_EQ(runner.os().output(), "12\n");
  EXPECT_TRUE(runner.os().network().all_completed());
}

TEST(Workloads, ServerMoreThreadsNotSlower) {
  auto run_with_threads = [](u32 threads) {
    workloads::ServerParams params;
    params.threads = threads;
    params.compute_iters = 60;
    params.io_phases = 3;
    SimRunner runner;
    runner.os().network().configure([] {
      os::NetworkConfig net;
      net.total_requests = 16;
      net.interarrival = 200;
      net.io_latency_mean = 6000;
      return net;
    }());
    runner.load_source(workloads::server_source(params));
    runner.run();
    EXPECT_EQ(runner.os().exit_code(), 0);
    return runner.cycles();
  };
  const Cycle one = run_with_threads(1);
  const Cycle four = run_with_threads(4);
  EXPECT_LT(four, one);  // I/O overlap helps (Figure 9's left side)
}

TEST(Workloads, InstrumentationInsertsChecksBeforeControlFlow) {
  const std::string plain = workloads::kmeans_source(tiny_kmeans());
  const std::string instrumented = workloads::instrument_checks(plain);
  // Count chk occurrences: one per branch/jump plus the enable.
  auto count = [](const std::string& s, const std::string& needle) {
    std::size_t n = 0, pos = 0;
    while ((pos = s.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  };
  EXPECT_GT(count(instrumented, "chk icm"), 10u);
  EXPECT_EQ(count(instrumented, "chk frame"), 1u);
  // Both versions must assemble.
  EXPECT_NO_THROW(isa::assemble(plain));
  EXPECT_NO_THROW(isa::assemble(instrumented));
}

TEST(Workloads, InstrumentedProgramProducesSameResult) {
  os::MachineConfig config;
  config.framework_present = true;
  SimRunner plain(config), checked(config);
  plain.load_source(workloads::kmeans_source(tiny_kmeans()));
  plain.run();
  checked.load_source(workloads::instrument_checks(workloads::kmeans_source(tiny_kmeans())));
  checked.run();
  EXPECT_EQ(plain.os().output(), checked.os().output());
  // The ICM actually checked things.
  EXPECT_GT(checked.machine().icm()->stats().checks_completed, 100u);
  EXPECT_EQ(checked.machine().icm()->stats().mismatches, 0u);
}

TEST(Workloads, CheckInstructionsIncreaseICacheAccesses) {
  // The Table 4 cache-overhead methodology: instrumented code on the
  // baseline machine (CHECKs behave as NOPs) raises il1 accesses.
  SimRunner plain, checked;
  plain.load_source(workloads::kmeans_source(tiny_kmeans()));
  plain.run();
  checked.load_source(workloads::instrument_checks(workloads::kmeans_source(tiny_kmeans())));
  checked.run();
  EXPECT_EQ(plain.os().output(), checked.os().output());
  EXPECT_GT(checked.machine().il1().stats().accesses, plain.machine().il1().stats().accesses);
}

TEST(Workloads, MlrProgramsScaleWithGotEntries) {
  auto cycles_for = [](u32 entries, bool hardware) {
    os::MachineConfig config;
    config.framework_present = true;
    SimRunner runner(config);
    workloads::MlrProgParams params{entries};
    runner.load_source(hardware ? workloads::mlr_rse_source(params)
                                : workloads::trr_software_source(params));
    runner.run();
    EXPECT_EQ(runner.os().exit_code(), 0);
    return runner.cycles();
  };
  // Software cost grows roughly linearly; hardware stays cheaper.
  const Cycle sw128 = cycles_for(128, false);
  const Cycle sw512 = cycles_for(512, false);
  EXPECT_GT(sw512, sw128 * 2);
  EXPECT_LT(cycles_for(128, true), sw128);
  EXPECT_LT(cycles_for(512, true), sw512);
}

}  // namespace
}  // namespace rse
