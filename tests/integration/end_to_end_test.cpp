// Full-system scenarios: DDT-protected multithreaded server surviving a
// thread crash, MLR-randomized loading, framework overhead sanity.
#include <gtest/gtest.h>

#include "../support/sim_runner.hpp"
#include "workloads/workloads.hpp"

namespace rse {
namespace {

using testing::SimRunner;

os::MachineConfig rse_machine() {
  os::MachineConfig config;
  config.framework_present = true;
  return config;
}

os::NetworkConfig small_net(u32 requests = 16) {
  os::NetworkConfig net;
  net.total_requests = requests;
  net.interarrival = 300;
  net.io_latency_mean = 4000;
  return net;
}

TEST(EndToEnd, ServerWithDdtTracksDependenciesAndSavesPages) {
  workloads::ServerParams params;
  params.threads = 4;
  params.compute_iters = 60;
  params.enable_ddt = true;
  SimRunner runner(rse_machine());
  runner.os().network().configure(small_net(20));
  runner.load_source(workloads::server_source(params));
  runner.run();
  ASSERT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().exit_code(), 0);
  const auto& ddt = runner.machine().ddt()->stats();
  EXPECT_GT(ddt.tracked_stores, 0u);
  EXPECT_GT(ddt.save_page_exceptions, 0u);
  EXPECT_GT(ddt.dependencies_logged, 0u);
  EXPECT_EQ(runner.os().stats().pages_saved, ddt.save_page_exceptions);
  EXPECT_GT(runner.core_stats().module_stall_cycles, 0u);
}

TEST(EndToEnd, SavedPagesGrowWithThreadCount) {
  auto pages_for_threads = [](u32 threads) {
    workloads::ServerParams params;
    params.threads = threads;
    params.compute_iters = 60;
    params.enable_ddt = true;
    SimRunner runner(rse_machine());
    runner.os().network().configure(small_net(24));
    runner.load_source(workloads::server_source(params));
    runner.run();
    EXPECT_EQ(runner.os().exit_code(), 0);
    return runner.os().stats().pages_saved;
  };
  const u64 one = pages_for_threads(1);
  const u64 six = pages_for_threads(6);
  EXPECT_LE(one, 4u);  // single-thread: (almost) no ownership changes
  EXPECT_GT(six, one + 4);
}

TEST(EndToEnd, CrashedWorkerIsRecoveredAndSurvivorsFinish) {
  // A 3-worker DDT-protected server where one worker crashes mid-run: the
  // recovery kills the dependent closure and the survivors complete the
  // remaining requests.
  workloads::ServerParams params;
  params.threads = 3;
  params.compute_iters = 40;
  params.enable_ddt = true;
  SimRunner runner(rse_machine());
  runner.os().network().configure(small_net(18));
  runner.load_source(workloads::server_source(params));
  // Let the server warm up, then crash worker thread 2 (tid 2: main=0).
  for (int i = 0; i < 200000 && runner.os().stats().pages_saved < 2; ++i) runner.os().step();
  ASSERT_FALSE(runner.os().finished());
  runner.os().inject_crash(2);
  runner.run();
  ASSERT_TRUE(runner.os().finished());
  ASSERT_EQ(runner.os().recoveries().size(), 1u);
  const os::RecoveryReport& report = runner.os().recoveries()[0];
  EXPECT_EQ(report.faulty, 2u);
  EXPECT_FALSE(report.total_loss);
  // The faulty thread died; at least one other thread survived the cut.
  EXPECT_EQ(runner.os().thread_state(2), os::ThreadState::kKilled);
  EXPECT_FALSE(report.survivors.empty());
}

TEST(EndToEnd, CrashWithoutDdtKillsWholeServer) {
  workloads::ServerParams params;
  params.threads = 3;
  params.compute_iters = 40;
  params.enable_ddt = false;  // kill-all policy applies
  SimRunner runner(rse_machine());
  runner.os().network().configure(small_net(18));
  runner.load_source(workloads::server_source(params));
  for (int i = 0; i < 100000 && runner.os().live_thread_count() < 4; ++i) runner.os().step();
  runner.os().inject_crash(2);
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().exit_code(), 139);
  EXPECT_EQ(runner.os().live_thread_count(), 0u);
}

TEST(EndToEnd, FrameworkPresenceAddsSmallOverhead) {
  // Table 4's framework experiment in miniature: same program, bus timing
  // 18/2 vs 19/3 -> low-single-digit % more cycles.
  workloads::KMeansParams params;
  params.patterns = 60;
  params.clusters = 8;
  params.iters = 2;
  SimRunner baseline;
  baseline.load_source(workloads::kmeans_source(params));
  baseline.run();
  SimRunner framework(rse_machine());
  framework.load_source(workloads::kmeans_source(params));
  framework.run();
  EXPECT_EQ(baseline.os().output(), framework.os().output());
  EXPECT_GE(framework.cycles(), baseline.cycles());
  const double overhead =
      static_cast<double>(framework.cycles() - baseline.cycles()) /
      static_cast<double>(baseline.cycles());
  EXPECT_LT(overhead, 0.15);
}

TEST(EndToEnd, MlrRandomizedLayoutFoilsFixedAddressAttack) {
  // An "attacker" program that jumps to a hardcoded stack address (where an
  // unrandomized run would have planted a return value).  With MLR the
  // address is wrong -> the thread crashes instead of executing the payload.
  const char* attack = R"(
.text
main:
  # write a code pointer at the *default* stack top region, then jump to a
  # hardcoded address derived from the fixed layout assumption
  li t0, 0x7FFEFF00
  jr t0             # fixed-layout assumption: lands in unmapped zeros
)";
  os::OsConfig os_config;
  os_config.randomize_layout = true;
  SimRunner runner(rse_machine(), os_config);
  runner.load_source(attack);
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().exit_code(), 139);  // crash, not hijack
  EXPECT_EQ(runner.os().stats().crashes, 1u);
}

TEST(EndToEnd, FullServerRunWithAllFourModulesEnabled) {
  workloads::ServerParams params;
  params.threads = 3;
  params.compute_iters = 40;
  params.enable_ddt = true;
  os::OsConfig os_config;
  os_config.randomize_layout = true;
  SimRunner runner(rse_machine(), os_config);
  runner.os().network().configure(small_net(10));
  runner.os().enable_module(isa::ModuleId::kIcm);
  runner.os().enable_module(isa::ModuleId::kAhbm);
  runner.load_source(
      workloads::instrument_checks(workloads::server_source(params),
                                   workloads::InstrumentOptions{.check_control = true,
                                                                .check_mem = false,
                                                                .add_icm_enable = true}));
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().exit_code(), 0);
  EXPECT_GT(runner.machine().icm()->stats().checks_completed, 100u);
  EXPECT_EQ(runner.machine().icm()->stats().mismatches, 0u);
  EXPECT_GT(runner.machine().ddt()->stats().tracked_stores, 0u);
  EXPECT_FALSE(runner.machine().framework()->safe_mode());
}

}  // namespace
}  // namespace rse
