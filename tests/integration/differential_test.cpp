// Differential testing: the out-of-order core must retire exactly the same
// architectural state as the in-order golden interpreter for randomly
// generated programs — with and without the RSE framework, under ICM
// instrumentation, and across pipeline-stressing configurations.
#include <gtest/gtest.h>

#include "../support/random_program.hpp"
#include "../support/sim_runner.hpp"
#include "isa/interpreter.hpp"
#include "workloads/workloads.hpp"

namespace rse {
namespace {

using testing::RandomProgramOptions;
using testing::generate_random_program;
using testing::SimRunner;

/// Final arena content (working-register dump included) after running
/// `source` on the golden interpreter.
std::vector<u8> golden_arena(const std::string& source, u64* instructions = nullptr) {
  const isa::Program program = isa::assemble(source);
  mem::MainMemory memory;
  for (std::size_t i = 0; i < program.text.size(); ++i) {
    memory.write_u32(program.text_base + static_cast<Addr>(i * 4), program.text[i]);
  }
  if (!program.data.empty()) {
    memory.write_block(program.data_base, program.data.data(),
                       static_cast<u32>(program.data.size()));
  }
  isa::Interpreter interp(memory);
  interp.set_pc(program.entry);
  bool exited = false;
  interp.set_syscall_handler([&exited](isa::Interpreter& i) {
    if (i.reg(isa::kV0) == 1) {
      exited = true;
      return false;
    }
    return true;  // other syscalls: no-op in the golden model
  });
  const isa::Interpreter::Stop stop = interp.run();
  EXPECT_EQ(stop, isa::Interpreter::Stop::kHandlerStop)
      << "golden model stopped for the wrong reason (budget/illegal)";
  EXPECT_TRUE(exited) << "golden model did not reach sys_exit";
  if (instructions != nullptr) *instructions = interp.instructions_executed();
  const Addr arena = program.symbol("arena");
  std::vector<u8> out((64 + testing::kDumpOffsetWords + 16) * 4);
  memory.read_block(arena, out.data(), static_cast<u32>(out.size()));
  return out;
}

std::vector<u8> machine_arena(const std::string& source, const os::MachineConfig& config) {
  SimRunner runner(config);
  runner.load_source(source);
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  const Addr arena = runner.program().symbol("arena");
  std::vector<u8> out((64 + testing::kDumpOffsetWords + 16) * 4);
  runner.machine().memory().read_block(arena, out.data(), static_cast<u32>(out.size()));
  return out;
}

class DifferentialAlu : public ::testing::TestWithParam<u64> {};

TEST_P(DifferentialAlu, MatchesGoldenModel) {
  RandomProgramOptions options;
  options.with_memory = false;
  options.with_loops = false;
  const std::string source = generate_random_program(GetParam(), options);
  EXPECT_EQ(machine_arena(source, os::MachineConfig{}), golden_arena(source));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialAlu, ::testing::Range<u64>(1, 41));

class DifferentialMemory : public ::testing::TestWithParam<u64> {};

TEST_P(DifferentialMemory, MatchesGoldenModel) {
  RandomProgramOptions options;
  options.with_memory = true;
  options.with_loops = true;
  const std::string source = generate_random_program(GetParam(), options);
  EXPECT_EQ(machine_arena(source, os::MachineConfig{}), golden_arena(source));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialMemory, ::testing::Range<u64>(100, 140));

class DifferentialCalls : public ::testing::TestWithParam<u64> {};

TEST_P(DifferentialCalls, MatchesGoldenModel) {
  RandomProgramOptions options;
  options.with_memory = true;
  options.with_loops = true;
  options.with_calls = true;
  const std::string source = generate_random_program(GetParam(), options);
  EXPECT_EQ(machine_arena(source, os::MachineConfig{}), golden_arena(source));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialCalls, ::testing::Range<u64>(200, 225));

class DifferentialWithRse : public ::testing::TestWithParam<u64> {};

TEST_P(DifferentialWithRse, InstrumentedRunMatchesGoldenModel) {
  // The ICM-instrumented program on the RSE machine retires the same state:
  // CHECK instructions are architecturally transparent.
  RandomProgramOptions options;
  options.with_memory = true;
  options.with_loops = true;
  const std::string source = generate_random_program(GetParam(), options);
  const std::string instrumented = workloads::instrument_checks(source);
  os::MachineConfig config;
  config.framework_present = true;
  EXPECT_EQ(machine_arena(instrumented, config), golden_arena(source));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialWithRse, ::testing::Range<u64>(300, 325));

class DifferentialTinyPipeline : public ::testing::TestWithParam<u64> {};

TEST_P(DifferentialTinyPipeline, StressedStructuresMatchGoldenModel) {
  // A deliberately starved pipeline (tiny RUU/LSQ/caches) exercises every
  // stall path; architectural results must be unchanged.
  RandomProgramOptions options;
  options.with_memory = true;
  options.with_loops = true;
  options.blocks = 8;
  const std::string source = generate_random_program(GetParam(), options);
  os::MachineConfig config;
  config.core.ruu_size = 4;
  config.core.lsq_size = 2;
  config.core.fetch_buffer_size = 2;
  config.core.fetch_width = 2;
  config.core.issue_width = 2;
  config.core.commit_width = 2;
  config.core.int_alus = 1;
  config.core.mem_ports = 1;
  config.il1 = mem::CacheConfig{"il1", 256, 1, 32, 1};
  config.dl1 = mem::CacheConfig{"dl1", 256, 1, 32, 1};
  EXPECT_EQ(machine_arena(source, config), golden_arena(source));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTinyPipeline, ::testing::Range<u64>(400, 425));

TEST(Differential, CommittedInstructionCountMatchesGoldenModel) {
  // Squashes must never be counted: the committed-instruction statistic
  // equals the golden model's executed count exactly.
  RandomProgramOptions options;
  options.with_memory = true;
  options.with_loops = true;
  const std::string source = generate_random_program(777, options);
  u64 golden_count = 0;
  golden_arena(source, &golden_count);
  SimRunner runner;
  runner.load_source(source);
  runner.run();
  EXPECT_EQ(runner.core_stats().instructions, golden_count);
}

}  // namespace
}  // namespace rse
