// Table 1 semantics of the Instruction Output Queue check/checkValid bits.
#include "rse/ioq.hpp"

#include <gtest/gtest.h>

namespace rse::engine {
namespace {

InstrTag tag(u32 slot, u64 seq) { return InstrTag{slot, seq}; }

TEST(Ioq, FreeEntryReadsZero) {
  Ioq ioq(16);
  const auto bits = ioq.observed(5);
  EXPECT_FALSE(bits.check_valid);
  EXPECT_FALSE(bits.check);
}

TEST(Ioq, NonCheckInstructionAllocatesReadyToCommit) {
  // Table 1: non-CHECK entries are '10' so the pipeline commits as usual.
  Ioq ioq(16);
  ioq.allocate(tag(3, 1), /*pending_check=*/false, isa::ModuleId::kFramework, 0);
  const auto bits = ioq.observed(3);
  EXPECT_TRUE(bits.check_valid);
  EXPECT_FALSE(bits.check);
}

TEST(Ioq, PendingCheckAllocatesZeroZero) {
  // Table 1: a CHECK still executing reads '00' — the pipeline may stall.
  Ioq ioq(16);
  ioq.allocate(tag(3, 1), /*pending_check=*/true, isa::ModuleId::kIcm, 0);
  const auto bits = ioq.observed(3);
  EXPECT_FALSE(bits.check_valid);
  EXPECT_FALSE(bits.check);
}

TEST(Ioq, ModuleWritePassResult) {
  Ioq ioq(16);
  ioq.allocate(tag(2, 7), true, isa::ModuleId::kIcm, 0);
  ioq.module_write(tag(2, 7), /*check_valid=*/true, /*check=*/false, 5, /*safe_mode=*/false);
  const auto bits = ioq.observed(2);
  EXPECT_TRUE(bits.check_valid);
  EXPECT_FALSE(bits.check);
}

TEST(Ioq, ModuleWriteErrorResult) {
  // Table 1: checkValid=1 + check=1 means error detected -> pipeline flush.
  Ioq ioq(16);
  ioq.allocate(tag(2, 7), true, isa::ModuleId::kIcm, 0);
  ioq.module_write(tag(2, 7), true, true, 5, false);
  const auto bits = ioq.observed(2);
  EXPECT_TRUE(bits.check_valid);
  EXPECT_TRUE(bits.check);
}

TEST(Ioq, StaleSeqWriteIgnored) {
  Ioq ioq(16);
  ioq.allocate(tag(2, 7), true, isa::ModuleId::kIcm, 0);
  ioq.free(tag(2, 7));
  ioq.allocate(tag(2, 8), true, isa::ModuleId::kIcm, 10);
  // A lagging module writes for the dead instruction: must not hit seq 8.
  ioq.module_write(tag(2, 7), true, true, 12, false);
  EXPECT_FALSE(ioq.observed(2).check_valid);
}

TEST(Ioq, SafeModeForcesConstantOutput) {
  // Section 3.4: decoupled framework always allows commit (1, 0).
  Ioq ioq(16);
  ioq.allocate(tag(1, 3), true, isa::ModuleId::kIcm, 0);
  ioq.module_write(tag(1, 3), true, true, 5, /*safe_mode=*/true);
  const auto bits = ioq.observed(1);
  EXPECT_TRUE(bits.check_valid);
  EXPECT_FALSE(bits.check);
}

TEST(Ioq, FreeResetsEntry) {
  Ioq ioq(16);
  ioq.allocate(tag(4, 9), false, isa::ModuleId::kFramework, 0);
  ioq.free(tag(4, 9));
  EXPECT_FALSE(ioq.entry(4).allocated);
  EXPECT_FALSE(ioq.observed(4).check_valid);
}

TEST(Ioq, FreeWithWrongSeqKeepsEntry) {
  Ioq ioq(16);
  ioq.allocate(tag(4, 9), false, isa::ModuleId::kFramework, 0);
  ioq.free(tag(4, 8));
  EXPECT_TRUE(ioq.entry(4).allocated);
}

// Stuck-at fault injection on the output bits (Table 2 row 4).
class IoqStuckFaultTest : public ::testing::TestWithParam<IoqStuckFault> {};

TEST_P(IoqStuckFaultTest, ObservedBitsReflectFault) {
  Ioq ioq(16);
  ioq.allocate(tag(6, 1), true, isa::ModuleId::kIcm, 0);
  ioq.module_write(tag(6, 1), true, false, 3, false);  // healthy: (1, 0)
  ioq.inject_stuck_fault(6, GetParam());
  const auto bits = ioq.observed(6);
  switch (GetParam()) {
    case IoqStuckFault::kNone:
      EXPECT_TRUE(bits.check_valid);
      EXPECT_FALSE(bits.check);
      break;
    case IoqStuckFault::kCheckValidStuck0:
      EXPECT_FALSE(bits.check_valid);
      break;
    case IoqStuckFault::kCheckValidStuck1:
      EXPECT_TRUE(bits.check_valid);
      break;
    case IoqStuckFault::kCheckStuck0:
      EXPECT_FALSE(bits.check);
      break;
    case IoqStuckFault::kCheckStuck1:
      EXPECT_TRUE(bits.check);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFaults, IoqStuckFaultTest,
                         ::testing::Values(IoqStuckFault::kNone, IoqStuckFault::kCheckValidStuck0,
                                           IoqStuckFault::kCheckValidStuck1,
                                           IoqStuckFault::kCheckStuck0,
                                           IoqStuckFault::kCheckStuck1));

TEST(Ioq, FaultOnlyAffectsInjectedSlot) {
  Ioq ioq(16);
  ioq.allocate(tag(1, 1), false, isa::ModuleId::kFramework, 0);
  ioq.inject_stuck_fault(6, IoqStuckFault::kCheckValidStuck0);
  EXPECT_TRUE(ioq.observed(1).check_valid);
}

}  // namespace
}  // namespace rse::engine
