// Differential property harness for divergent multi-version execution
// (rse/dme.hpp, docs/security.md): two variants of the same guest under
// distinct MLR layout seeds must produce identical *canonical* traces on
// every fault-free run — across random program shapes, seed pairs, and both
// execution engines — while any corruption of a committed record must
// surface as a divergence.  False divergences would poison every --dme
// campaign's baseline; missed corruptions would erase the detector.
#include <gtest/gtest.h>

#include <string>

#include "../support/random_program.hpp"
#include "campaign/runner.hpp"
#include "common/rng.hpp"
#include "isa/assembler.hpp"
#include "rse/dme.hpp"

namespace rse::dme {
namespace {

constexpr u64 kPrograms = 60;  // ≥ 50 program/seed-pair runs (ISSUE 10)

testing::RandomProgramOptions options_for(u64 seed) {
  testing::RandomProgramOptions options;
  options.with_calls = seed % 2 == 0;
  options.print_progress = seed % 3 == 0;
  options.attack_patterns = seed % 4 == 0;  // legal attack-shaped traffic
  return options;
}

RecordedTrace record(const isa::Program& program, u64 mlr_seed, bool prefer_fast) {
  os::MachineConfig machine_config;
  os::OsConfig os_config;
  const VariantSpec spec{machine_config, os_config, {}, mlr_seed};
  return record_trace(spec, program, kDefaultMaxRecords, prefer_fast);
}

/// Zero false divergences on fault-free runs: for every random program the
/// two MLR variants — one recorded through the fast-path engine, one
/// through the cycle-accurate core — compare canonically equal, and both
/// finish with the same architectural result.
TEST(DmeProperty, FaultFreeRandomProgramsNeverDiverge) {
  u64 records_total = 0;
  for (u64 seed = 1; seed <= kPrograms; ++seed) {
    const std::string source = testing::generate_random_program(seed, options_for(seed));
    const isa::Program program = isa::assemble(source);
    const RecordedTrace reference = record(program, /*mlr_seed=*/2 * seed + 1,
                                           /*prefer_fast=*/true);
    const RecordedTrace run = record(program, /*mlr_seed=*/2 * seed + 2,
                                     /*prefer_fast=*/false);
    ASSERT_TRUE(reference.finished) << "seed " << seed;
    ASSERT_TRUE(run.finished) << "seed " << seed;
    EXPECT_EQ(run.output, reference.output) << "seed " << seed;
    EXPECT_EQ(run.exit_code, reference.exit_code) << "seed " << seed;

    const DmeResult verdict = compare_traces(run, reference.trace);
    EXPECT_EQ(verdict.divergences, 0u)
        << "seed " << seed << ": false divergence at canonical record "
        << verdict.first_divergence << " (of " << run.trace.records.size() << ")";
    EXPECT_EQ(run.trace.records.size(), reference.trace.records.size()) << "seed " << seed;
    records_total += run.trace.records.size();
  }
  EXPECT_GT(records_total, 0u);
}

/// Engine parity: the same variant (same seed) recorded fast and
/// cycle-accurately yields canonically identical traces — the DME is a
/// valid second consumer of the fast-path engine.
TEST(DmeProperty, FastAndCycleAccurateRecordingsAgree) {
  for (u64 seed = 1; seed <= 10; ++seed) {
    const std::string source = testing::generate_random_program(seed, options_for(seed));
    const isa::Program program = isa::assemble(source);
    const RecordedTrace fast = record(program, /*mlr_seed=*/seed, /*prefer_fast=*/true);
    const RecordedTrace slow = record(program, /*mlr_seed=*/seed, /*prefer_fast=*/false);
    ASSERT_TRUE(fast.finished && slow.finished) << "seed " << seed;
    EXPECT_EQ(slow.output, fast.output) << "seed " << seed;
    const DmeResult verdict = compare_traces(slow, fast.trace);
    EXPECT_EQ(verdict.divergences, 0u)
        << "seed " << seed << ": engines disagree at record " << verdict.first_divergence;
    EXPECT_EQ(slow.trace.records.size(), fast.trace.records.size()) << "seed " << seed;
  }
}

/// Sensitivity: corrupting any single committed record — the trace-level
/// image of a register or data-word fault at that commit — must flip the
/// comparison to a divergence at exactly that record.  Exercises every
/// field the checker matches on (pc, raw word, memory ea, value).
TEST(DmeProperty, CorruptedRecordsAlwaysDiverge) {
  Xorshift64 rng(0xD1FF);
  for (u64 seed = 1; seed <= 20; ++seed) {
    const std::string source = testing::generate_random_program(seed, options_for(seed));
    const isa::Program program = isa::assemble(source);
    const RecordedTrace reference = record(program, /*mlr_seed=*/seed, /*prefer_fast=*/true);
    const RecordedTrace run = record(program, /*mlr_seed=*/seed + 100, /*prefer_fast=*/true);
    ASSERT_EQ(compare_traces(run, reference.trace).divergences, 0u) << "seed " << seed;
    ASSERT_FALSE(reference.trace.records.empty());

    for (int trial = 0; trial < 4; ++trial) {
      CanonicalTrace mutated = reference.trace;
      const u64 index = rng.next_below(mutated.records.size());
      TraceRecord& victim = mutated.records[index];
      switch (trial) {
        case 0:
          victim.pc ^= 0x4;  // control-flow fault: wrong committed pc
          break;
        case 1:
          victim.raw ^= 1u << rng.next_below(32);  // instruction-word fault
          break;
        case 2:
          // Value fault: both the raw and canonical views change (a real
          // corrupted commit changes the value wherever it is rebased to).
          // Values are canonical identity only on memory records — a non-mem
          // record is already fully pinned by its pc + raw word.
          if ((victim.flags & kFlagMem) == 0) continue;
          victim.value ^= 0x80001;
          victim.value_canon ^= 0x80001;
          break;
        case 3:
          if ((victim.flags & kFlagMem) == 0) continue;  // ea only on mem records
          victim.ea ^= 0x40;
          victim.ea_canon ^= 0x40;
          break;
      }
      const DmeResult verdict = compare_traces(run, mutated);
      EXPECT_EQ(verdict.divergences, 1u)
          << "seed " << seed << " trial " << trial << ": corrupted record " << index
          << " went unnoticed";
      EXPECT_EQ(verdict.first_divergence, index)
          << "seed " << seed << " trial " << trial << ": divergence not at the fault";
    }
  }
}

/// A truncated reference (run limit hit while recording) must never flag a
/// divergence for records past its end — the comparison is inconclusive,
/// not divergent — while a *finished* reference that simply ends earlier
/// than the run is a divergence at the boundary.
TEST(DmeProperty, TruncatedReferenceIsInconclusiveNotDivergent) {
  const std::string source = testing::generate_random_program(3, options_for(3));
  const isa::Program program = isa::assemble(source);
  const RecordedTrace reference = record(program, 5, /*prefer_fast=*/true);
  const RecordedTrace run = record(program, 6, /*prefer_fast=*/true);
  ASSERT_GT(reference.trace.records.size(), 8u);

  CanonicalTrace cut = reference.trace;
  cut.records.resize(cut.records.size() / 2);
  cut.truncated = true;
  EXPECT_EQ(compare_traces(run, cut).divergences, 0u)
      << "records past a truncated reference are not evidence of divergence";

  cut.truncated = false;  // same prefix, but claiming the program ended there
  const DmeResult verdict = compare_traces(run, cut);
  EXPECT_EQ(verdict.divergences, 1u);
  EXPECT_EQ(verdict.first_divergence, cut.records.size());
}

/// End-to-end flip property on campaign workloads: with --dme layered onto
/// fault-injection campaigns, every injected fault is masked, detected by a
/// module, a crash/hang — or caught by the trace diff.  Silent data
/// corruption is impossible by construction: a wrong final output requires
/// a wrong committed value, and a wrong committed value IS a canonical
/// divergence.
TEST(DmeProperty, InjectedFaultsFlipToDivergenceOrModuleDetection) {
  campaign::CampaignRunner runner;
  u32 dme_detections = 0;
  for (const char* workload : {"loop", "calls"}) {
    campaign::CampaignSpec spec;
    spec.workload = workload;
    spec.runs = 48;
    spec.seed = 11;
    spec.jobs = 2;
    spec.dme = true;
    const campaign::CampaignReport report = runner.run(spec);
    EXPECT_EQ(report.by_outcome[static_cast<unsigned>(campaign::Outcome::kSdc)], 0u)
        << workload << ": a fault corrupted the output without any detection";
    dme_detections +=
        report.by_outcome[static_cast<unsigned>(campaign::Outcome::kDetectedDme)];
  }
  EXPECT_GT(dme_detections, 0u) << "no fault was caught by the trace diff alone";
}

}  // namespace
}  // namespace rse::dme
