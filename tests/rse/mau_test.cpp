#include "rse/mau.hpp"

#include <gtest/gtest.h>

namespace rse::engine {
namespace {

struct MauFixture : ::testing::Test {
  mem::MainMemory memory;
  mem::BusArbiter bus{mem::BusTiming{19, 3, 8}};
  Mau mau{memory, bus, 4};

  void run_until(Cycle limit, Cycle from = 0) {
    for (Cycle c = from; c <= limit; ++c) mau.tick(c);
  }
};

TEST_F(MauFixture, ReadTransfersDataToModuleBuffer) {
  memory.write_u32(0x1000, 0xCAFED00D);
  u8 buffer[8] = {};
  Cycle done = 0;
  mau.submit(isa::ModuleId::kIcm, 0x1000, 8, false, buffer, [&](Cycle at) { done = at; });
  run_until(100);
  EXPECT_EQ(done, 19u);  // starts at the first tick, 8 bytes = 1 chunk
  u32 word;
  std::memcpy(&word, buffer, 4);
  EXPECT_EQ(word, 0xCAFED00Du);
}

TEST_F(MauFixture, WriteTransfersBufferToMemory) {
  u8 buffer[4] = {0xEF, 0xBE, 0xAD, 0xDE};
  bool finished = false;
  mau.submit(isa::ModuleId::kMlr, 0x2000, 4, true, buffer, [&](Cycle) { finished = true; });
  run_until(100);
  EXPECT_TRUE(finished);
  EXPECT_EQ(memory.read_u32(0x2000), 0xDEADBEEFu);
}

TEST_F(MauFixture, RequestsServicedInOrder) {
  u8 b1[4] = {1};
  u8 b2[4] = {2};
  Cycle done1 = 0, done2 = 0;
  mau.submit(isa::ModuleId::kIcm, 0x100, 4, true, b1, [&](Cycle at) { done1 = at; });
  mau.submit(isa::ModuleId::kMlr, 0x200, 4, true, b2, [&](Cycle at) { done2 = at; });
  run_until(200);
  EXPECT_GT(done1, 0u);
  EXPECT_GT(done2, done1);  // one bus transfer at a time, cyclic order
}

TEST_F(MauFixture, QueueFullRejects) {
  u8 buffer[4] = {};
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(mau.submit(isa::ModuleId::kIcm, 0x100, 4, false, buffer, nullptr));
  }
  EXPECT_FALSE(mau.submit(isa::ModuleId::kIcm, 0x100, 4, false, buffer, nullptr));
  EXPECT_EQ(mau.stats().rejected_full, 1u);
}

TEST_F(MauFixture, PipelinePriorityOverMau) {
  // Pipeline grabs the bus first at the same cycle: the MAU transfer waits.
  u8 buffer[8] = {};
  Cycle done = 0;
  bus.request(1, 64, mem::BusSource::kPipeline);  // occupies until 19+7*3 = 40
  mau.submit(isa::ModuleId::kIcm, 0x100, 8, false, buffer, [&](Cycle at) { done = at; });
  run_until(200);
  EXPECT_GE(done, 40u + 19u);
  EXPECT_GT(bus.stats().mau_wait_cycles, 0u);
}

TEST_F(MauFixture, LargeTransferUsesChunkedTiming) {
  std::vector<u8> buffer(4096);
  Cycle done = 0;
  mau.submit(isa::ModuleId::kDdt, 0x3000, 4096, false, buffer.data(),
             [&](Cycle at) { done = at; });
  run_until(5000);
  // 512 chunks at 19 + 511*3.
  EXPECT_EQ(done, 19u + 511 * 3);
}

TEST_F(MauFixture, IdleReflectsState) {
  EXPECT_TRUE(mau.idle());
  u8 buffer[4] = {};
  mau.submit(isa::ModuleId::kIcm, 0x100, 4, false, buffer, nullptr);
  EXPECT_FALSE(mau.idle());
  run_until(100);
  EXPECT_TRUE(mau.idle());
}

}  // namespace
}  // namespace rse::engine
