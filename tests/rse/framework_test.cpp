#include "rse/framework.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "isa/assembler.hpp"

namespace rse::engine {
namespace {

/// Records everything the framework routes to it.
class StubModule : public Module {
 public:
  using Module::Module;
  isa::ModuleId id() const override { return isa::ModuleId::kIcm; }
  const char* name() const override { return "stub"; }

  void on_dispatch(const DispatchInfo& info, Cycle now) override {
    dispatches.push_back({info, now});
  }
  void on_commit(const CommitInfo& info, Cycle now) override { commits.push_back({info, now}); }
  Cycle on_store_commit(const CommitInfo&, Cycle) override {
    ++store_commits;
    return store_stall;
  }
  void on_squash(const InstrTag& tag, Cycle) override { squashes.push_back(tag); }
  void tick(Cycle now) override { last_tick = now; }
  void reset() override { ++resets; }

  std::vector<std::pair<DispatchInfo, Cycle>> dispatches;
  std::vector<std::pair<CommitInfo, Cycle>> commits;
  std::vector<InstrTag> squashes;
  u32 store_commits = 0;
  Cycle store_stall = 0;
  Cycle last_tick = 0;
  u32 resets = 0;
};

struct FrameworkFixture : ::testing::Test {
  mem::MainMemory memory;
  mem::BusArbiter bus{mem::BusTiming{19, 3, 8}};
  Framework fw{memory, bus, 16};
  StubModule* stub = nullptr;

  void SetUp() override {
    auto module = std::make_unique<StubModule>(fw);
    stub = module.get();
    fw.add_module(std::move(module));
    stub->set_enabled(true);
    stub->resets = 0;
  }

  static DispatchInfo make_dispatch(u32 slot, u64 seq, isa::Op op) {
    DispatchInfo info;
    info.tag = {slot, seq};
    info.instr.op = op;
    info.pc = 0x400000 + slot * 4;
    return info;
  }

  static DispatchInfo make_chk(u32 slot, u64 seq, isa::ModuleId module, bool blocking) {
    DispatchInfo info;
    info.tag = {slot, seq};
    info.instr.op = isa::Op::kChk;
    info.instr.chk_module = module;
    info.instr.chk_blocking = blocking;
    return info;
  }
};

TEST_F(FrameworkFixture, DispatchEventsVisibleOneCycleLater) {
  fw.on_dispatch(make_dispatch(0, 1, isa::Op::kAdd), 10);
  fw.tick(10);
  EXPECT_TRUE(stub->dispatches.empty());  // latch delay (Table 3)
  fw.tick(11);
  ASSERT_EQ(stub->dispatches.size(), 1u);
  EXPECT_EQ(stub->dispatches[0].second, 11u);
}

TEST_F(FrameworkFixture, NonChkAllocatesCommittableIoqEntry) {
  fw.on_dispatch(make_dispatch(2, 1, isa::Op::kAdd), 5);
  const auto bits = fw.check_bits(2);
  EXPECT_TRUE(bits.check_valid);
  EXPECT_FALSE(bits.check);
}

TEST_F(FrameworkFixture, ChkToEnabledModulePends) {
  fw.on_dispatch(make_chk(3, 1, isa::ModuleId::kIcm, true), 5);
  EXPECT_FALSE(fw.check_bits(3).check_valid);
}

TEST_F(FrameworkFixture, ChkToDisabledModuleCommitsImmediately) {
  // Section 3.2: the enable/disable unit writes a constant (1,0) for
  // disabled modules.
  stub->set_enabled(false);
  fw.on_dispatch(make_chk(3, 1, isa::ModuleId::kIcm, true), 5);
  EXPECT_TRUE(fw.check_bits(3).check_valid);
  EXPECT_FALSE(fw.check_bits(3).check);
}

TEST_F(FrameworkFixture, ChkToAbsentModuleCommitsImmediately) {
  fw.on_dispatch(make_chk(4, 1, isa::ModuleId::kDdt, true), 5);
  EXPECT_TRUE(fw.check_bits(4).check_valid);
}

TEST_F(FrameworkFixture, ModuleWriteReachesIoq) {
  fw.on_dispatch(make_chk(3, 1, isa::ModuleId::kIcm, true), 5);
  fw.module_write_ioq(*stub, {3, 1}, true, false, 8);
  EXPECT_TRUE(fw.check_bits(3).check_valid);
}

TEST_F(FrameworkFixture, FrameChkEnablesAndDisablesModulesAtDispatch) {
  stub->set_enabled(false);
  DispatchInfo enable;
  enable.tag = {0, 1};
  enable.instr.op = isa::Op::kChk;
  enable.instr.chk_module = isa::ModuleId::kFramework;
  enable.instr.chk_op = kFrameOpEnableModule;
  enable.instr.chk_imm = static_cast<u16>(isa::ModuleId::kIcm);
  fw.on_dispatch(enable, 10);
  EXPECT_TRUE(stub->enabled());
  // A CHECK to the module dispatched right after the enable already pends.
  fw.on_dispatch(make_chk(1, 2, isa::ModuleId::kIcm, true), 10);
  EXPECT_FALSE(fw.check_bits(1).check_valid);

  DispatchInfo disable = enable;
  disable.tag = {2, 3};
  disable.instr.chk_op = kFrameOpDisableModule;
  fw.on_dispatch(disable, 11);
  EXPECT_FALSE(stub->enabled());
  EXPECT_EQ(fw.stats().module_enables, 1u);
  EXPECT_EQ(fw.stats().module_disables, 1u);

  // Wrong-path enable CHECKs never take effect.
  DispatchInfo speculative = enable;
  speculative.tag = {3, 4};
  speculative.wrong_path = true;
  fw.on_dispatch(speculative, 12);
  EXPECT_FALSE(stub->enabled());
}

TEST_F(FrameworkFixture, CommitFreesIoqAndNotifiesModules) {
  fw.on_dispatch(make_dispatch(1, 1, isa::Op::kAdd), 5);
  CommitInfo info;
  info.tag = {1, 1};
  info.instr.op = isa::Op::kAdd;
  fw.on_commit(info, 8);
  fw.tick(9);
  ASSERT_EQ(stub->commits.size(), 1u);
  EXPECT_FALSE(fw.ioq().entry(1).allocated);
}

TEST_F(FrameworkFixture, StoreCommitStallIsSynchronousAndSummed) {
  stub->store_stall = 7;
  CommitInfo store;
  store.tag = {1, 1};
  store.instr.op = isa::Op::kSw;
  const Cycle stall = fw.on_commit(store, 8);
  EXPECT_EQ(stall, 7u);
  EXPECT_EQ(stub->store_commits, 1u);
}

TEST_F(FrameworkFixture, DisabledModuleGetsNoEvents) {
  stub->set_enabled(false);
  fw.on_dispatch(make_dispatch(0, 1, isa::Op::kAdd), 5);
  fw.tick(6);
  EXPECT_TRUE(stub->dispatches.empty());
}

TEST_F(FrameworkFixture, SquashFreesEntriesAndNotifies) {
  fw.on_dispatch(make_chk(2, 1, isa::ModuleId::kIcm, true), 5);
  fw.on_squash({2, 1}, 6);
  fw.tick(7);
  ASSERT_EQ(stub->squashes.size(), 1u);
  EXPECT_FALSE(fw.ioq().entry(2).allocated);
  EXPECT_EQ(fw.stats().squashes_seen, 1u);
}

TEST_F(FrameworkFixture, InputQueueLatchedDataReadableBySlotSeq) {
  DispatchInfo info = make_dispatch(4, 9, isa::Op::kLw);
  fw.on_dispatch(info, 5);
  EXPECT_EQ(fw.queues().fetch_out.read(4, 9, 5), nullptr);  // not yet visible
  const DispatchInfo* read = fw.queues().fetch_out.read(4, 9, 6);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->pc, info.pc);
  EXPECT_EQ(fw.queues().fetch_out.read(4, 8, 6), nullptr);  // wrong seq
}

TEST_F(FrameworkFixture, ModuleFaultModesRewriteResults) {
  fw.on_dispatch(make_chk(1, 1, isa::ModuleId::kIcm, true), 0);
  stub->inject_fault(ModuleFaultMode::kFalseAlarm);
  fw.module_write_ioq(*stub, {1, 1}, true, false, 2);
  EXPECT_TRUE(fw.check_bits(1).check);

  fw.on_dispatch(make_chk(2, 2, isa::ModuleId::kIcm, true), 0);
  stub->inject_fault(ModuleFaultMode::kFalseNegative);
  fw.module_write_ioq(*stub, {2, 2}, true, true, 2);
  EXPECT_TRUE(fw.check_bits(2).check_valid);
  EXPECT_FALSE(fw.check_bits(2).check);

  fw.on_dispatch(make_chk(3, 3, isa::ModuleId::kIcm, true), 0);
  stub->inject_fault(ModuleFaultMode::kNoProgress);
  fw.module_write_ioq(*stub, {3, 3}, true, false, 2);
  EXPECT_FALSE(fw.check_bits(3).check_valid);
}

TEST_F(FrameworkFixture, ResetClearsModulesAndQueues) {
  fw.on_dispatch(make_dispatch(0, 1, isa::Op::kAdd), 5);
  fw.reset();
  EXPECT_FALSE(fw.ioq().entry(0).allocated);
  EXPECT_EQ(stub->resets, 1u);
  fw.tick(6);
  EXPECT_TRUE(stub->dispatches.empty());  // pending events dropped
}

}  // namespace
}  // namespace rse::engine
