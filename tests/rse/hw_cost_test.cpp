// The paper's hardware-overhead arithmetic (section 3.1 footnote 4 and the
// MLR inventory of section 5.3) reproduced exactly.
#include "rse/hw_cost.hpp"

#include <gtest/gtest.h>

namespace rse::engine {
namespace {

TEST(HwCost, PaperInputInterfaceNumbers) {
  // "approximately 2560 flip-flops and 12,800 gates"
  const QueueCost cost = input_interface_cost(HwCostConfig{});
  EXPECT_EQ(cost.flip_flops, 2560u);
  EXPECT_EQ(cost.mux_gates, 12800u);
}

TEST(HwCost, MuxGateCounts) {
  // footnote 4: 2-to-1 = 4 gates, 3-to-1 = 5, 4-to-1 = 6.
  EXPECT_EQ(mux_gate_count(2), 4u);
  EXPECT_EQ(mux_gate_count(3), 5u);
  EXPECT_EQ(mux_gate_count(4), 6u);
}

TEST(HwCost, ScalesWithRobSize) {
  HwCostConfig config;
  config.entries_per_queue = 32;  // double the ROB
  const QueueCost cost = input_interface_cost(config);
  EXPECT_EQ(cost.flip_flops, 2 * 2560u);
  EXPECT_EQ(cost.mux_gates, 2 * 12800u);
}

TEST(HwCost, ScalesWithWordWidth) {
  HwCostConfig config;
  config.bits_per_entry = 64;
  const QueueCost cost = input_interface_cost(config);
  EXPECT_EQ(cost.flip_flops, 2 * 2560u);
}

TEST(HwCost, MlrInventoryMatchesPaper) {
  const MlrHwCost mlr = mlr_hw_cost();
  EXPECT_EQ(mlr.pi_registers, 24u);
  EXPECT_EQ(mlr.pi_adders, 4u);
  EXPECT_EQ(mlr.header_block_bytes, 4096u);
  EXPECT_EQ(mlr.got_buffer_bytes, 4096u);
  EXPECT_EQ(mlr.plt_buffer_bytes, 4096u);
  EXPECT_EQ(mlr.pd_adders, 5u);
  EXPECT_EQ(mlr.pd_registers, 2u);
}

}  // namespace
}  // namespace rse::engine
