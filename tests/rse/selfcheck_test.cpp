// Table 2 error scenarios of the RSE and the self-checking watchdog of
// section 3.4: no-progress modules, false-alarm storms, stuck-at output
// bits, and the safe-mode decoupling that keeps the application running.
#include <gtest/gtest.h>

#include "rse/framework.hpp"

namespace rse::engine {
namespace {

class SilentModule : public Module {
 public:
  using Module::Module;
  isa::ModuleId id() const override { return isa::ModuleId::kIcm; }
  const char* name() const override { return "silent"; }
};

struct SelfCheckFixture : ::testing::Test {
  mem::MainMemory memory;
  mem::BusArbiter bus{mem::BusTiming{19, 3, 8}};
  Framework fw{memory, bus, 16};
  SilentModule* module = nullptr;
  std::vector<SelfCheckVerdict> verdicts;

  void SetUp() override {
    auto m = std::make_unique<SilentModule>(fw);
    module = m.get();
    fw.add_module(std::move(m));
    module->set_enabled(true);
    SelfCheckConfig config;
    config.watchdog_timeout = 100;
    config.alarm_threshold = 3;
    fw.set_selfcheck_config(config);
    fw.set_selfcheck_observer([this](SelfCheckVerdict v, Cycle) { verdicts.push_back(v); });
  }

  DispatchInfo chk(u32 slot, u64 seq) {
    DispatchInfo info;
    info.tag = {slot, seq};
    info.instr.op = isa::Op::kChk;
    info.instr.chk_module = isa::ModuleId::kIcm;
    info.instr.chk_blocking = true;
    return info;
  }
};

TEST_F(SelfCheckFixture, NoProgressModuleTripsWatchdog) {
  // Table 2 row 1: the module never produces a result; an instruction could
  // wait forever.  The watchdog detects the missing 0->1 transition.
  fw.on_dispatch(chk(0, 1), 0);
  for (Cycle c = 1; c <= 150 && !fw.safe_mode(); ++c) fw.tick(c);
  EXPECT_TRUE(fw.safe_mode());
  EXPECT_EQ(fw.verdict(), SelfCheckVerdict::kNoProgress);
  ASSERT_EQ(verdicts.size(), 1u);
  // Decoupled: the stuck CHECK is released so the pipeline can commit.
  EXPECT_TRUE(fw.check_bits(0).check_valid);
  EXPECT_FALSE(fw.check_bits(0).check);
}

TEST_F(SelfCheckFixture, HealthyCheckDoesNotTrip) {
  fw.on_dispatch(chk(0, 1), 0);
  fw.module_write_ioq(*module, {0, 1}, true, false, 5);
  CommitInfo info;
  info.tag = {0, 1};
  info.instr.op = isa::Op::kChk;
  info.instr.chk_module = isa::ModuleId::kIcm;
  fw.on_commit(info, 10);
  for (Cycle c = 1; c <= 400; ++c) fw.tick(c);
  EXPECT_FALSE(fw.safe_mode());
}

TEST_F(SelfCheckFixture, FalseAlarmStormTripsThresholdCounter) {
  // Table 2 row 2: the module always declares an error; the pipeline would
  // flush and retry the same CHECK forever.  Each retry lands in the same
  // IOQ slot; the commit stage observes check=1 there every time, so the
  // per-entry error-transition counter crosses the threshold within the
  // watchdog window.
  for (u64 retry = 1; retry <= 5 && !fw.safe_mode(); ++retry) {
    fw.on_dispatch(chk(0, retry), 10 * retry);
    fw.module_write_ioq(*module, {0, retry}, true, true, 10 * retry + 1);
    fw.on_check_error(0, 10 * retry + 2);      // commit observed the error
    fw.on_squash({0, retry}, 10 * retry + 2);  // the flush squashes the CHECK
    fw.tick(10 * retry + 3);
  }
  EXPECT_TRUE(fw.safe_mode());
  EXPECT_EQ(fw.verdict(), SelfCheckVerdict::kFalseAlarmStorm);
}

TEST_F(SelfCheckFixture, StuckAt1CheckFieldStormAlsoTrips) {
  // Table 2 row 4 last case: check stuck-at-1 causes repeated flushes at the
  // same slot; the same commit-side counter catches it even though no module
  // ever wrote the bit.
  fw.ioq().inject_stuck_fault(0, IoqStuckFault::kCheckStuck1);
  for (u64 retry = 1; retry <= 5 && !fw.safe_mode(); ++retry) {
    fw.on_dispatch(chk(0, retry), 10 * retry);
    fw.on_check_error(0, 10 * retry + 2);
    fw.on_squash({0, retry}, 10 * retry + 2);
    fw.tick(10 * retry + 3);
  }
  EXPECT_TRUE(fw.safe_mode());
  EXPECT_EQ(fw.verdict(), SelfCheckVerdict::kFalseAlarmStorm);
  // Decoupled output lets the pipeline commit despite the stuck bit.
  fw.on_dispatch(chk(1, 9), 100);
  EXPECT_TRUE(fw.check_bits(1).check_valid);
  EXPECT_FALSE(fw.check_bits(1).check);
}

TEST_F(SelfCheckFixture, StuckAt1CheckValidOnFreeEntryDetected) {
  // Table 2 row 4: a free IOQ entry reading 1 means a stuck-at-1 output.
  fw.ioq().inject_stuck_fault(5, IoqStuckFault::kCheckValidStuck1);
  for (Cycle c = 1; c <= 200 && !fw.safe_mode(); ++c) fw.tick(c);
  EXPECT_TRUE(fw.safe_mode());
  EXPECT_EQ(fw.verdict(), SelfCheckVerdict::kStuckAt1);
}

TEST_F(SelfCheckFixture, StuckAt1CheckOnFreeEntryDetected) {
  fw.ioq().inject_stuck_fault(7, IoqStuckFault::kCheckStuck1);
  for (Cycle c = 1; c <= 200 && !fw.safe_mode(); ++c) fw.tick(c);
  EXPECT_TRUE(fw.safe_mode());
  EXPECT_EQ(fw.verdict(), SelfCheckVerdict::kStuckAt1);
}

TEST_F(SelfCheckFixture, StuckAt0CheckValidLooksLikeNoProgress) {
  // Table 2: stuck-at-0 of checkValid is equivalent to a module that makes
  // no progress — and is handled by the same watchdog path.
  fw.ioq().inject_stuck_fault(0, IoqStuckFault::kCheckValidStuck0);
  fw.on_dispatch(chk(0, 1), 0);
  fw.module_write_ioq(*module, {0, 1}, true, false, 2);  // module DID answer
  for (Cycle c = 1; c <= 200 && !fw.safe_mode(); ++c) fw.tick(c);
  EXPECT_TRUE(fw.safe_mode());
  EXPECT_EQ(fw.verdict(), SelfCheckVerdict::kNoProgress);
}

TEST_F(SelfCheckFixture, SafeModeOverridesAllSubsequentWrites) {
  fw.on_dispatch(chk(0, 1), 0);
  for (Cycle c = 1; c <= 150; ++c) fw.tick(c);
  ASSERT_TRUE(fw.safe_mode());
  fw.on_dispatch(chk(1, 2), 200);
  fw.module_write_ioq(*module, {1, 2}, true, true, 201);  // module says error
  EXPECT_TRUE(fw.check_bits(1).check_valid);
  EXPECT_FALSE(fw.check_bits(1).check);  // safe mode: always commit
}

TEST_F(SelfCheckFixture, SafeModeChksToLiveModuleCommitImmediately) {
  fw.on_dispatch(chk(0, 1), 0);
  for (Cycle c = 1; c <= 150; ++c) fw.tick(c);
  ASSERT_TRUE(fw.safe_mode());
  fw.on_dispatch(chk(2, 3), 200);
  EXPECT_TRUE(fw.check_bits(2).check_valid);
}

TEST_F(SelfCheckFixture, RecoupleRestoresChecking) {
  fw.on_dispatch(chk(0, 1), 0);
  for (Cycle c = 1; c <= 150; ++c) fw.tick(c);
  ASSERT_TRUE(fw.safe_mode());
  CommitInfo info;
  info.tag = {0, 1};
  info.instr.op = isa::Op::kChk;
  info.instr.chk_module = isa::ModuleId::kIcm;
  fw.on_commit(info, 160);
  fw.recouple();
  EXPECT_FALSE(fw.safe_mode());
  fw.on_dispatch(chk(1, 2), 200);
  EXPECT_FALSE(fw.check_bits(1).check_valid);  // pending again
}

TEST_F(SelfCheckFixture, DisabledSelfCheckNeverTrips) {
  SelfCheckConfig config;
  config.enabled = false;
  fw.set_selfcheck_config(config);
  fw.on_dispatch(chk(0, 1), 0);
  for (Cycle c = 1; c <= 1000; ++c) fw.tick(c);
  EXPECT_FALSE(fw.safe_mode());
}

}  // namespace
}  // namespace rse::engine
