// MAU service discipline: requests from multiple modules are served in
// cyclic (FIFO) order, one bus transfer at a time, and module buffers are
// only touched when their transfer completes.
#include <gtest/gtest.h>

#include <vector>

#include "rse/mau.hpp"

namespace rse::engine {
namespace {

struct MauFairness : ::testing::Test {
  mem::MainMemory memory;
  mem::BusArbiter bus{mem::BusTiming{19, 3, 8}};
  Mau mau{memory, bus, 16};

  void run_until(Cycle limit) {
    for (Cycle c = 1; c <= limit; ++c) mau.tick(c);
  }
};

TEST_F(MauFairness, InterleavedModulesServedInSubmissionOrder) {
  std::vector<std::pair<isa::ModuleId, Cycle>> completions;
  u8 buffer[8] = {};
  for (int round = 0; round < 3; ++round) {
    for (isa::ModuleId module : {isa::ModuleId::kIcm, isa::ModuleId::kMlr, isa::ModuleId::kDdt}) {
      mau.submit(module, 0x1000, 8, false, buffer, [&completions, module](Cycle at) {
        completions.push_back({module, at});
      });
    }
  }
  run_until(2000);
  ASSERT_EQ(completions.size(), 9u);
  for (std::size_t i = 0; i < 9; ++i) {
    const isa::ModuleId expected =
        std::array{isa::ModuleId::kIcm, isa::ModuleId::kMlr, isa::ModuleId::kDdt}[i % 3];
    EXPECT_EQ(completions[i].first, expected) << "position " << i;
    if (i > 0) {
      EXPECT_GT(completions[i].second, completions[i - 1].second);
    }
  }
}

TEST_F(MauFairness, BusOccupancyNeverOverlaps) {
  // Completion spacing must be at least the per-transfer latency.
  std::vector<Cycle> completions;
  u8 buffer[64] = {};
  for (int i = 0; i < 5; ++i) {
    mau.submit(isa::ModuleId::kIcm, 0x1000, 64, false, buffer,
               [&completions](Cycle at) { completions.push_back(at); });
  }
  run_until(2000);
  ASSERT_EQ(completions.size(), 5u);
  const Cycle latency = bus.timing().transfer_cycles(64);
  for (std::size_t i = 1; i < completions.size(); ++i) {
    EXPECT_GE(completions[i] - completions[i - 1], latency);
  }
}

TEST_F(MauFairness, WriteDataLandsOnlyAtCompletion) {
  u8 buffer[4] = {0x11, 0x22, 0x33, 0x44};
  Cycle done = 0;
  mau.submit(isa::ModuleId::kMlr, 0x2000, 4, true, buffer, [&done](Cycle at) { done = at; });
  // Before the transfer completes, memory must be untouched.
  for (Cycle c = 1; c < 19; ++c) {
    mau.tick(c);
    EXPECT_EQ(memory.read_u32(0x2000), 0u) << "cycle " << c;
  }
  run_until(100);
  EXPECT_GT(done, 0u);
  EXPECT_EQ(memory.read_u32(0x2000), 0x44332211u);
}

TEST_F(MauFairness, QueueDrainsAfterBackpressure) {
  u8 buffer[4] = {};
  int completed = 0;
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(mau.submit(isa::ModuleId::kDdt, 0x100, 4, false, buffer,
                           [&completed](Cycle) { ++completed; }));
  }
  EXPECT_FALSE(mau.submit(isa::ModuleId::kDdt, 0x100, 4, false, buffer, nullptr));
  run_until(1000);
  EXPECT_EQ(completed, 16);
  EXPECT_TRUE(mau.idle());
  // Capacity is available again.
  EXPECT_TRUE(mau.submit(isa::ModuleId::kDdt, 0x100, 4, false, buffer, nullptr));
}

TEST_F(MauFairness, StatsCountBytesAndRequests) {
  u8 buffer[16] = {};
  mau.submit(isa::ModuleId::kIcm, 0x100, 16, false, buffer, nullptr);
  mau.submit(isa::ModuleId::kIcm, 0x200, 4, true, buffer, nullptr);
  run_until(200);
  EXPECT_EQ(mau.stats().requests, 2u);
  EXPECT_EQ(mau.stats().bytes_transferred, 20u);
}

}  // namespace
}  // namespace rse::engine
