// The framework's pipeline taps observed by a recording module while a real
// program runs on the out-of-order core: dispatch order, operand values
// (Regfile_Data), effective addresses (Execute_Out), loaded values
// (Memory_Out), commit order, and wrong-path squashes — the input interface
// of paper section 3.1 end to end.
#include <gtest/gtest.h>

#include <vector>

#include "cpu/core.hpp"
#include "isa/assembler.hpp"
#include "mem/cache.hpp"
#include "rse/framework.hpp"

namespace rse::engine {
namespace {

class RecorderModule : public Module {
 public:
  using Module::Module;
  isa::ModuleId id() const override { return isa::ModuleId::kIcm; }
  const char* name() const override { return "recorder"; }

  void on_dispatch(const DispatchInfo& info, Cycle) override { dispatches.push_back(info); }
  void on_execute(const ExecuteInfo& info, Cycle) override { executes.push_back(info); }
  void on_commit(const CommitInfo& info, Cycle) override { commits.push_back(info); }
  void on_squash(const InstrTag& tag, Cycle) override { squashes.push_back(tag); }

  std::vector<DispatchInfo> dispatches;
  std::vector<ExecuteInfo> executes;
  std::vector<CommitInfo> commits;
  std::vector<InstrTag> squashes;
};

/// A bare machine without the GuestOs: core + framework + recorder module.
struct TapsFixture : ::testing::Test, cpu::OsClient {
  mem::MainMemory memory;
  mem::BusArbiter bus{mem::BusTiming{19, 3, 8}};
  mem::BusMemory port{bus, mem::BusSource::kPipeline};
  mem::Cache il1{mem::CacheConfig{"il1", 8192, 1, 32, 1}, port};
  mem::Cache dl1{mem::CacheConfig{"dl1", 8192, 1, 32, 1}, port};
  Framework fw{memory, bus, 16};
  RecorderModule* recorder = nullptr;
  std::unique_ptr<cpu::Core> core;
  bool exited = false;

  void SetUp() override {
    auto module = std::make_unique<RecorderModule>(fw);
    recorder = module.get();
    fw.add_module(std::move(module));
    recorder->set_enabled(true);
    core = std::make_unique<cpu::Core>(cpu::CoreConfig{}, memory, il1, dl1);
    core->attach_framework(&fw);
    core->set_os(this);
  }

  // OsClient: syscall == exit for these tests.
  SyscallResult on_syscall(Cycle) override {
    exited = true;
    return SyscallResult{0, true};
  }
  bool on_check_error(Cycle, Addr, isa::ModuleId) override { return true; }
  void on_illegal(Cycle, Addr) override { exited = true; }

  void run(const std::string& source, Cycle limit = 50000) {
    const isa::Program program = isa::assemble(source);
    for (std::size_t i = 0; i < program.text.size(); ++i) {
      memory.write_u32(program.text_base + static_cast<Addr>(i * 4), program.text[i]);
    }
    if (!program.data.empty()) {
      memory.write_block(program.data_base, program.data.data(),
                         static_cast<u32>(program.data.size()));
    }
    cpu::ThreadContext context;
    context.pc = program.entry;
    context.regs[isa::kSp] = 0x7FFE0000;
    core->set_context(context, 0);
    core->resume();
    Cycle now = 0;
    while (++now <= limit && !exited) {
      core->cycle(now);
      fw.tick(now);
    }
    ASSERT_TRUE(exited) << "program did not finish";
    // Drain the framework's latched events (1-cycle visibility delay).
    for (int k = 0; k < 4; ++k) fw.tick(++now);
  }
};

TEST_F(TapsFixture, CommitsArriveInProgramOrder) {
  run(R"(
.text
main:
  li t0, 1
  li t1, 2
  add t2, t0, t1
  syscall
)");
  ASSERT_GE(recorder->commits.size(), 3u);
  EXPECT_EQ(recorder->commits[0].pc, 0x400000u);
  EXPECT_EQ(recorder->commits[1].pc, 0x400004u);
  EXPECT_EQ(recorder->commits[2].pc, 0x400008u);
  // Sequence numbers strictly increase in commit order.
  for (std::size_t i = 1; i < recorder->commits.size(); ++i) {
    EXPECT_GT(recorder->commits[i].tag.seq, recorder->commits[i - 1].tag.seq);
  }
}

TEST_F(TapsFixture, RegfileDataCarriesOperandValues) {
  run(R"(
.text
main:
  li t0, 41
  addi t1, t0, 1
  add t2, t1, t0
  syscall
)");
  // Find the add's dispatch record: operands must be the architectural
  // values at dispatch (42 and 41).
  bool found = false;
  for (const DispatchInfo& d : recorder->dispatches) {
    if (d.instr.op == isa::Op::kAdd && d.instr.rd == isa::kT0 + 2) {
      ASSERT_EQ(d.operand_count, 2);
      EXPECT_EQ(d.operands[0], 42u);
      EXPECT_EQ(d.operands[1], 41u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TapsFixture, ExecuteOutDeliversEffectiveAddresses) {
  run(R"(
.data
.align 4
var: .word 1234
.text
main:
  la s0, var
  lw t0, 0(s0)
  sw t0, 4(s0)
  syscall
)");
  Addr var = 0;
  for (const CommitInfo& c : recorder->commits) {
    if (c.instr.op == isa::Op::kLw) var = c.eff_addr;
  }
  ASSERT_NE(var, 0u);
  bool load_seen = false, store_seen = false;
  for (const ExecuteInfo& x : recorder->executes) {
    if (x.is_mem && x.eff_addr == var) load_seen = true;
    if (x.is_mem && x.eff_addr == var + 4) store_seen = true;
  }
  EXPECT_TRUE(load_seen);
  EXPECT_TRUE(store_seen);
}

TEST_F(TapsFixture, CommitOutCarriesLoadedAndStoredValues) {
  run(R"(
.data
.align 4
var: .word 1234
.text
main:
  lw t0, var
  addi t0, t0, 1
  sw t0, var
  syscall
)");
  bool load_ok = false, store_ok = false;
  for (const CommitInfo& c : recorder->commits) {
    if (c.instr.op == isa::Op::kLw) load_ok = c.mem_value == 1234;
    if (c.instr.op == isa::Op::kSw) store_ok = c.mem_value == 1235;
  }
  EXPECT_TRUE(load_ok);
  EXPECT_TRUE(store_ok);
}

TEST_F(TapsFixture, WrongPathDispatchesAreFlaggedAndSquashed) {
  // A never-taken branch that the fresh bimodal predictor guesses taken:
  // the wrong-path instructions dispatch flagged and are squashed, never
  // committed.
  run(R"(
.text
main:
  li t0, 1
  beq t0, r0, wrong    # never taken; predicted taken initially
  b after
wrong:
  add t5, t5, t5
  add t6, t6, t6
after:
  syscall
)");
  u32 wrong_path_dispatches = 0;
  for (const DispatchInfo& d : recorder->dispatches) {
    if (d.wrong_path) ++wrong_path_dispatches;
  }
  EXPECT_GT(wrong_path_dispatches, 0u);
  EXPECT_FALSE(recorder->squashes.empty());
  // No committed instruction carries a wrong-path pc between `wrong` and
  // `after` writing t5/t6.
  for (const CommitInfo& c : recorder->commits) {
    if (c.instr.op == isa::Op::kAdd) {
      EXPECT_NE(c.instr.rd, isa::kT0 + 5);
      EXPECT_NE(c.instr.rd, isa::kT0 + 6);
    }
  }
  // Every squash matches a dispatch that never committed.
  for (const InstrTag& tag : recorder->squashes) {
    for (const CommitInfo& c : recorder->commits) {
      EXPECT_FALSE(c.tag == tag);
    }
  }
}

TEST_F(TapsFixture, EveryCommittedInstructionWasDispatchedExactlyOnce) {
  run(R"(
.text
main:
  li t0, 0
loop:
  li t1, 20
  addi t0, t0, 1
  blt t0, t1, loop
  syscall
)");
  for (const CommitInfo& c : recorder->commits) {
    u32 matches = 0;
    for (const DispatchInfo& d : recorder->dispatches) {
      if (d.tag == c.tag) ++matches;
    }
    EXPECT_EQ(matches, 1u) << "pc 0x" << std::hex << c.pc;
  }
}

TEST_F(TapsFixture, DispatchPlusSquashAccountsForEverything) {
  run(R"(
.text
main:
  li t0, 0
loop:
  li t1, 30
  andi t2, t0, 1
  beq t2, r0, skip
  nop
skip:
  addi t0, t0, 1
  blt t0, t1, loop
  syscall
)");
  // commits + squashes == dispatches (nothing vanishes, nothing is counted
  // twice).
  EXPECT_EQ(recorder->commits.size() + recorder->squashes.size(),
            recorder->dispatches.size());
}

}  // namespace
}  // namespace rse::engine
