// Unit tests for the fast-path execution engine (src/exec/): decoded
// basic-block cache behavior (terminators, leader cuts, page-granular
// invalidation), FastEngine architectural semantics against the golden
// interpreter, FastSession whitelist/bail handling, and the fast golden
// baseline's equivalence to the cycle-accurate one.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../support/random_program.hpp"
#include "../support/sim_runner.hpp"
#include "campaign/golden.hpp"
#include "campaign/workload.hpp"
#include "exec/block_cache.hpp"
#include "exec/fast_engine.hpp"
#include "exec/fast_session.hpp"
#include "isa/assembler.hpp"
#include "isa/interpreter.hpp"

namespace rse {
namespace {

using testing::RandomProgramOptions;
using testing::SimRunner;
using testing::generate_random_program;

void write_program(mem::MainMemory& memory, const isa::Program& program) {
  for (std::size_t i = 0; i < program.text.size(); ++i) {
    memory.write_u32(program.text_base + static_cast<Addr>(i * 4), program.text[i]);
  }
  if (!program.data.empty()) {
    memory.write_block(program.data_base, program.data.data(),
                       static_cast<u32>(program.data.size()));
  }
}

// ---------------------------------------------------------------- BlockCache

TEST(BlockCache, BlockRunsUpToAndIncludingTerminator) {
  const isa::Program program = isa::assemble(
      ".text\nmain:\n"
      "  addi t0, r0, 1\n"
      "  add t1, t0, t0\n"
      "  beq t0, t1, skip\n"
      "  sub t2, t1, t0\n"
      "skip:\n"
      "  syscall\n");
  mem::MainMemory memory;
  write_program(memory, program);
  exec::BlockCache cache(memory);

  const exec::DecodedBlock* block = cache.lookup(program.entry);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->start, program.entry);
  ASSERT_EQ(block->instrs.size(), 3u);  // addi, add, beq — branch terminates
  EXPECT_EQ(block->instrs[2].op, isa::Op::kBeq);

  const exec::DecodedBlock* tail = cache.lookup(program.symbol("skip"));
  ASSERT_NE(tail, nullptr);
  ASSERT_EQ(tail->instrs.size(), 1u);  // syscall terminates immediately
  EXPECT_EQ(tail->instrs[0].op, isa::Op::kSyscall);
  EXPECT_EQ(cache.stats().decodes, 2u);
  EXPECT_EQ(cache.blocks_cached(), 2u);
}

TEST(BlockCache, RegisteredLeaderCutsStraightLineCode) {
  const isa::Program program = isa::assemble(
      ".text\nmain:\n"
      "  addi t0, r0, 1\n"
      "  addi t1, r0, 2\n"
      "mid:\n"
      "  addi t2, r0, 3\n"
      "  syscall\n");
  mem::MainMemory memory;
  write_program(memory, program);
  exec::BlockCache cache(memory);
  cache.add_leader(program.symbol("mid"));

  const exec::DecodedBlock* head = cache.lookup(program.entry);
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->instrs.size(), 2u);  // stops before the registered leader
  const exec::DecodedBlock* mid = cache.lookup(program.symbol("mid"));
  ASSERT_NE(mid, nullptr);
  EXPECT_EQ(mid->instrs.size(), 2u);  // addi + syscall
}

TEST(BlockCache, InvalidateDropsBlocksSharingThePage) {
  const isa::Program program = isa::assemble(
      ".text\nmain:\n"
      "  addi t0, r0, 1\n"
      "  addi t1, r0, 2\n"
      "  syscall\n");
  mem::MainMemory memory;
  write_program(memory, program);
  exec::BlockCache cache(memory);

  ASSERT_NE(cache.lookup(program.entry), nullptr);
  EXPECT_EQ(cache.blocks_cached(), 1u);
  cache.invalidate(program.entry + 4, 4);
  EXPECT_EQ(cache.blocks_cached(), 0u);
  EXPECT_GE(cache.stats().invalidations, 1u);
  // Re-lookup decodes afresh (and sees whatever memory now holds).
  ASSERT_NE(cache.lookup(program.entry), nullptr);
  EXPECT_EQ(cache.stats().decodes, 2u);
}

TEST(BlockCache, BlockLengthIsCapped) {
  std::string source = ".text\nmain:\n";
  for (u32 i = 0; i < exec::BlockCache::kMaxBlockInstrs + 8; ++i) {
    source += "  addi t0, t0, 1\n";
  }
  source += "  syscall\n";
  const isa::Program program = isa::assemble(source);
  mem::MainMemory memory;
  write_program(memory, program);
  exec::BlockCache cache(memory);
  const exec::DecodedBlock* block = cache.lookup(program.entry);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->instrs.size(), exec::BlockCache::kMaxBlockInstrs);
}

// ---------------------------------------------------------------- FastEngine

/// Run `source` bare (no OS) on both the golden interpreter and the fast
/// engine, stopping on the first syscall, and require identical registers.
void expect_engine_matches_interpreter(const std::string& source) {
  const isa::Program program = isa::assemble(source);

  mem::MainMemory golden_memory;
  write_program(golden_memory, program);
  isa::Interpreter interp(golden_memory);
  interp.set_pc(program.entry);
  interp.set_syscall_handler([](isa::Interpreter&) { return false; });
  ASSERT_EQ(interp.run(), isa::Interpreter::Stop::kHandlerStop);

  mem::MainMemory fast_memory;
  write_program(fast_memory, program);
  exec::BlockCache cache(fast_memory);
  exec::FastEngine engine(fast_memory, cache, program.text_base,
                          program.text_base + static_cast<Addr>(program.text.size() * 4));
  engine.set_pc(program.entry);
  ASSERT_EQ(engine.run_until(~0ull), exec::FastEngine::Stop::kSyscall);

  for (u8 r = 1; r < isa::kNumRegs; ++r) {
    EXPECT_EQ(engine.reg(r), interp.reg(r)) << "register r" << static_cast<int>(r);
  }
  const Addr arena = program.symbol("arena");
  const u32 bytes = (64 + testing::kDumpOffsetWords + 16) * 4;
  std::vector<u8> golden_bytes(bytes), fast_bytes(bytes);
  golden_memory.read_block(arena, golden_bytes.data(), bytes);
  fast_memory.read_block(arena, fast_bytes.data(), bytes);
  EXPECT_EQ(fast_bytes, golden_bytes);
}

class FastEngineDifferential : public ::testing::TestWithParam<u64> {};

TEST_P(FastEngineDifferential, MatchesGoldenInterpreter) {
  RandomProgramOptions options;
  options.with_memory = true;
  options.with_loops = true;
  options.with_calls = true;
  expect_engine_matches_interpreter(generate_random_program(GetParam(), options));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastEngineDifferential, ::testing::Range<u64>(9000, 9010));

TEST(FastEngine, SelfModifyingStoreExecutesThePatchedWord) {
  // The store rewrites `patch` with the donor word before the site's first
  // execution; the functional model must observe it immediately.
  const isa::Program program = isa::assemble(
      ".text\nmain:\n"
      "  la v1, donor\n"
      "  lw v0, 0(v1)\n"
      "  la t9, patch\n"
      "  sw v0, 0(t9)\n"
      "patch:\n"
      "  addi s1, s1, 1\n"
      "  syscall\n"
      "donor:\n"
      "  addi s1, s1, 7\n");
  mem::MainMemory memory;
  write_program(memory, program);
  exec::BlockCache cache(memory);
  exec::FastEngine engine(memory, cache, program.text_base,
                          program.text_base + static_cast<Addr>(program.text.size() * 4));
  engine.set_pc(program.entry);
  ASSERT_EQ(engine.run_until(~0ull), exec::FastEngine::Stop::kSyscall);
  EXPECT_EQ(engine.reg(17), 7u);  // s1 took the donor's +7, not the stale +1
  EXPECT_GE(cache.stats().invalidations, 1u);
}

TEST(FastEngine, StopsIllegalOutsideTextRange) {
  const isa::Program program = isa::assemble(
      ".text\nmain:\n"
      "  jr ra\n");  // ra = 0: jumps below text
  mem::MainMemory memory;
  write_program(memory, program);
  exec::BlockCache cache(memory);
  exec::FastEngine engine(memory, cache, program.text_base,
                          program.text_base + static_cast<Addr>(program.text.size() * 4));
  engine.set_pc(program.entry);
  EXPECT_EQ(engine.run_until(~0ull), exec::FastEngine::Stop::kIllegal);
}

TEST(FastEngine, BoundaryStopIsExact) {
  std::string source = ".text\nmain:\n";
  for (int i = 0; i < 20; ++i) source += "  addi t0, t0, 1\n";
  source += "  syscall\n";
  const isa::Program program = isa::assemble(source);
  mem::MainMemory memory;
  write_program(memory, program);
  exec::BlockCache cache(memory);
  exec::FastEngine engine(memory, cache, program.text_base,
                          program.text_base + static_cast<Addr>(program.text.size() * 4));
  engine.set_pc(program.entry);
  ASSERT_EQ(engine.run_until(7), exec::FastEngine::Stop::kBoundary);
  EXPECT_EQ(engine.executed(), 7u);
  EXPECT_EQ(engine.reg(8), 7u);  // t0 incremented exactly seven times
  EXPECT_EQ(engine.pc(), program.entry + 7 * 4);
  // Resuming past the boundary finishes the remaining instructions.
  ASSERT_EQ(engine.run_until(~0ull), exec::FastEngine::Stop::kSyscall);
  EXPECT_EQ(engine.reg(8), 20u);
}

// --------------------------------------------------------------- FastSession

TEST(FastSession, StrictModeBailsOnClockRelaxedModeFinishes) {
  const std::string source =
      ".text\nmain:\n"
      "  li v0, 4\n  syscall\n"  // sys_clock: outside the strict whitelist
      "  li a0, 0\n  li v0, 1\n  syscall\n";

  SimRunner strict_runner;
  strict_runner.load_source(source);
  exec::FastSession strict(strict_runner.os());
  strict.seed_leaders(strict_runner.program());
  EXPECT_EQ(strict.run_until(1000), exec::FastSession::Status::kBail);
  EXPECT_EQ(strict.bail_reason(), exec::FastSession::BailReason::kSyscall);
  // The bail leaves consistent state ON the syscall: the cycle-accurate
  // machine finishes the program after a transplant.
  strict.transplant(strict.virtual_now());
  strict_runner.run();
  EXPECT_TRUE(strict_runner.os().finished());

  SimRunner relaxed_runner;
  relaxed_runner.load_source(source);
  exec::FastSession relaxed(relaxed_runner.os(), exec::FastSessionConfig{/*relaxed=*/true});
  relaxed.seed_leaders(relaxed_runner.program());
  EXPECT_EQ(relaxed.run_until(1000), exec::FastSession::Status::kExited);
  EXPECT_TRUE(relaxed_runner.os().finished());
  EXPECT_EQ(relaxed_runner.os().exit_code(), 0);
}

// -------------------------------------------------------------- fast goldens

TEST(FastGolden, MatchesCycleAccurateGoldenOutputAndInstructions) {
  const campaign::WorkloadSetup setup = campaign::make_workload("loop");
  const campaign::GoldenRun golden = campaign::simulate_golden(setup);
  const campaign::GoldenRun fast = campaign::simulate_golden_fast(setup);
  EXPECT_EQ(fast.output, golden.output);
  EXPECT_EQ(fast.exit_code, golden.exit_code);
  EXPECT_EQ(fast.instructions, golden.instructions);
}

TEST(FastGolden, CacheKeysFastAndCycleAccurateSeparately) {
  campaign::GoldenCache cache;
  const campaign::WorkloadSetup setup = campaign::make_workload("loop");
  const auto classic = cache.get(setup);
  const auto fast = cache.get(setup, /*fast=*/true);
  EXPECT_NE(classic.get(), fast.get());
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.get(setup, /*fast=*/true).get(), fast.get());
  EXPECT_EQ(cache.hits(), 1u);
}

}  // namespace
}  // namespace rse
