// Unit tests for the fast-path execution engine (src/exec/): decoded
// basic-block cache behavior (terminators, leader cuts, page-granular
// invalidation), FastEngine architectural semantics against the golden
// interpreter, FastSession whitelist/bail handling, and the fast golden
// baseline's equivalence to the cycle-accurate one.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "../support/random_program.hpp"
#include "../support/sim_runner.hpp"
#include "campaign/golden.hpp"
#include "campaign/workload.hpp"
#include "exec/block_cache.hpp"
#include "exec/fast_engine.hpp"
#include "exec/fast_session.hpp"
#include "isa/assembler.hpp"
#include "isa/interpreter.hpp"

namespace rse {
namespace {

using testing::RandomProgramOptions;
using testing::SimRunner;
using testing::generate_random_program;

void write_program(mem::MainMemory& memory, const isa::Program& program) {
  for (std::size_t i = 0; i < program.text.size(); ++i) {
    memory.write_u32(program.text_base + static_cast<Addr>(i * 4), program.text[i]);
  }
  if (!program.data.empty()) {
    memory.write_block(program.data_base, program.data.data(),
                       static_cast<u32>(program.data.size()));
  }
}

// ---------------------------------------------------------------- BlockCache

TEST(BlockCache, BlockRunsUpToAndIncludingTerminator) {
  const isa::Program program = isa::assemble(
      ".text\nmain:\n"
      "  addi t0, r0, 1\n"
      "  add t1, t0, t0\n"
      "  beq t0, t1, skip\n"
      "  sub t2, t1, t0\n"
      "skip:\n"
      "  syscall\n");
  mem::MainMemory memory;
  write_program(memory, program);
  exec::BlockCache cache(memory);

  const exec::DecodedBlock* block = cache.lookup(program.entry);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->start, program.entry);
  ASSERT_EQ(block->instrs.size(), 3u);  // addi, add, beq — branch terminates
  EXPECT_EQ(block->instrs[2].op, isa::Op::kBeq);

  const exec::DecodedBlock* tail = cache.lookup(program.symbol("skip"));
  ASSERT_NE(tail, nullptr);
  ASSERT_EQ(tail->instrs.size(), 1u);  // syscall terminates immediately
  EXPECT_EQ(tail->instrs[0].op, isa::Op::kSyscall);
  EXPECT_EQ(cache.stats().decodes, 2u);
  EXPECT_EQ(cache.blocks_cached(), 2u);
}

TEST(BlockCache, RegisteredLeaderCutsStraightLineCode) {
  const isa::Program program = isa::assemble(
      ".text\nmain:\n"
      "  addi t0, r0, 1\n"
      "  addi t1, r0, 2\n"
      "mid:\n"
      "  addi t2, r0, 3\n"
      "  syscall\n");
  mem::MainMemory memory;
  write_program(memory, program);
  exec::BlockCache cache(memory);
  cache.set_chaining(false);  // per-block shape: chaining crosses leaders
  cache.add_leader(program.symbol("mid"));

  const exec::DecodedBlock* head = cache.lookup(program.entry);
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->instrs.size(), 2u);  // stops before the registered leader
  const exec::DecodedBlock* mid = cache.lookup(program.symbol("mid"));
  ASSERT_NE(mid, nullptr);
  EXPECT_EQ(mid->instrs.size(), 2u);  // addi + syscall
}

TEST(BlockCache, InvalidateDropsBlocksSharingThePage) {
  const isa::Program program = isa::assemble(
      ".text\nmain:\n"
      "  addi t0, r0, 1\n"
      "  addi t1, r0, 2\n"
      "  syscall\n");
  mem::MainMemory memory;
  write_program(memory, program);
  exec::BlockCache cache(memory);

  ASSERT_NE(cache.lookup(program.entry), nullptr);
  EXPECT_EQ(cache.blocks_cached(), 1u);
  cache.invalidate(program.entry + 4, 4);
  EXPECT_EQ(cache.blocks_cached(), 0u);
  EXPECT_GE(cache.stats().invalidations, 1u);
  // Re-lookup decodes afresh (and sees whatever memory now holds).
  ASSERT_NE(cache.lookup(program.entry), nullptr);
  EXPECT_EQ(cache.stats().decodes, 2u);
}

TEST(BlockCache, BlockLengthIsCapped) {
  std::string source = ".text\nmain:\n";
  for (u32 i = 0; i < exec::BlockCache::kMaxBlockInstrs + 8; ++i) {
    source += "  addi t0, t0, 1\n";
  }
  source += "  syscall\n";
  const isa::Program program = isa::assemble(source);
  mem::MainMemory memory;
  write_program(memory, program);
  exec::BlockCache cache(memory);
  cache.set_chaining(false);  // superblocks use the larger kMaxSuperblockInstrs
  const exec::DecodedBlock* block = cache.lookup(program.entry);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->instrs.size(), exec::BlockCache::kMaxBlockInstrs);
}

// ---------------------------------------------------------------- superblocks

TEST(BlockCache, SuperblockChainsAcrossUnconditionalJumps) {
  const isa::Program program = isa::assemble(
      ".text\nmain:\n"
      "  addi t0, r0, 1\n"
      "  j mid\n"
      "pad:\n"
      "  addi t3, r0, 9\n"
      "  syscall\n"
      "mid:\n"
      "  addi t1, r0, 2\n"
      "  j tail\n"
      "tail:\n"
      "  addi t2, r0, 3\n"
      "  syscall\n");
  mem::MainMemory memory;
  write_program(memory, program);
  exec::BlockCache cache(memory);
  const Addr text_end = program.text_base + static_cast<Addr>(program.text.size() * 4);
  cache.set_text_range(program.text_base, text_end);

  const exec::DecodedBlock* block = cache.lookup(program.entry);
  ASSERT_NE(block, nullptr);
  EXPECT_TRUE(block->chained);
  // addi, j, addi, j, addi, syscall — both jumps chained through.
  ASSERT_EQ(block->instrs.size(), 6u);
  EXPECT_EQ(block->pcs[2], program.symbol("mid"));
  EXPECT_EQ(block->pcs[4], program.symbol("tail"));
  EXPECT_EQ(block->instrs[5].op, isa::Op::kSyscall);
  EXPECT_EQ(cache.stats().superblocks, 1u);
}

TEST(BlockCache, SuperblockCrossesRegisteredLeaders) {
  const isa::Program program = isa::assemble(
      ".text\nmain:\n"
      "  addi t0, r0, 1\n"
      "  addi t1, r0, 2\n"
      "mid:\n"
      "  addi t2, r0, 3\n"
      "  syscall\n");
  mem::MainMemory memory;
  write_program(memory, program);
  exec::BlockCache cache(memory);
  const Addr text_end = program.text_base + static_cast<Addr>(program.text.size() * 4);
  cache.set_text_range(program.text_base, text_end);
  cache.add_leader(program.symbol("mid"));

  const exec::DecodedBlock* head = cache.lookup(program.entry);
  ASSERT_NE(head, nullptr);
  EXPECT_TRUE(head->chained);
  EXPECT_EQ(head->instrs.size(), 4u);  // runs straight through the leader
}

TEST(BlockCache, SuperblockStopsOnBackEdgeLoop) {
  // j back to an already-visited pc must terminate the chain, not spin.
  const isa::Program program = isa::assemble(
      ".text\nmain:\n"
      "  addi t0, r0, 1\n"
      "  j main\n");
  mem::MainMemory memory;
  write_program(memory, program);
  exec::BlockCache cache(memory);
  const Addr text_end = program.text_base + static_cast<Addr>(program.text.size() * 4);
  cache.set_text_range(program.text_base, text_end);

  const exec::DecodedBlock* block = cache.lookup(program.entry);
  ASSERT_NE(block, nullptr);
  ASSERT_EQ(block->instrs.size(), 2u);  // addi + j, then the revisit stops it
  EXPECT_EQ(block->instrs[1].op, isa::Op::kJ);
}

TEST(BlockCache, SuperblockLengthIsCapped) {
  std::string source = ".text\nmain:\n";
  for (u32 i = 0; i < exec::BlockCache::kMaxSuperblockInstrs + 8; ++i) {
    source += "  addi t0, t0, 1\n";
  }
  source += "  syscall\n";
  const isa::Program program = isa::assemble(source);
  mem::MainMemory memory;
  write_program(memory, program);
  exec::BlockCache cache(memory);
  const Addr text_end = program.text_base + static_cast<Addr>(program.text.size() * 4);
  cache.set_text_range(program.text_base, text_end);
  const exec::DecodedBlock* block = cache.lookup(program.entry);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->instrs.size(), exec::BlockCache::kMaxSuperblockInstrs);
}

TEST(BlockCache, StoreIntoMiddleOfSuperblockInvalidatesIt) {
  // Satellite: page-granular invalidation must tear down superblocks that
  // merely *span* the stored page, not just ones that start on it.  Build a
  // superblock whose chained tail sits on a different page from its start.
  std::string source = ".text\nmain:\n  j far\n";
  source += "pad:\n";
  for (u32 i = 0; i < 2048; ++i) source += "  addi t3, t3, 1\n";  // 8 KiB of padding
  source +=
      "far:\n"
      "  addi t1, r0, 2\n"
      "  syscall\n";
  const isa::Program program = isa::assemble(source);
  mem::MainMemory memory;
  write_program(memory, program);
  exec::BlockCache cache(memory);
  const Addr text_end = program.text_base + static_cast<Addr>(program.text.size() * 4);
  cache.set_text_range(program.text_base, text_end);

  const exec::DecodedBlock* block = cache.lookup(program.entry);
  ASSERT_NE(block, nullptr);
  ASSERT_TRUE(block->chained);
  const Addr far_pc = program.symbol("far");
  ASSERT_NE(mem::page_of(far_pc), mem::page_of(program.entry));  // spans pages
  EXPECT_EQ(cache.blocks_cached(), 1u);

  // A store into the chained tail's page — far from the block's start page —
  // must drop the superblock.
  cache.invalidate(far_pc + 4, 4);
  EXPECT_EQ(cache.blocks_cached(), 0u);

  // Per-block mode never had the tail in the head block, so the same store
  // leaves the head block alone.
  cache.set_chaining(false);
  ASSERT_NE(cache.lookup(program.entry), nullptr);
  EXPECT_EQ(cache.blocks_cached(), 1u);
  cache.invalidate(far_pc + 4, 4);
  EXPECT_EQ(cache.blocks_cached(), 1u);
}

TEST(BlockCache, SetChainingTogglesClearTheCache) {
  const isa::Program program = isa::assemble(
      ".text\nmain:\n"
      "  addi t0, r0, 1\n"
      "  syscall\n");
  mem::MainMemory memory;
  write_program(memory, program);
  exec::BlockCache cache(memory);
  ASSERT_NE(cache.lookup(program.entry), nullptr);
  EXPECT_EQ(cache.blocks_cached(), 1u);
  cache.set_chaining(false);  // shapes differ per mode: toggle must clear
  EXPECT_EQ(cache.blocks_cached(), 0u);
  cache.set_chaining(false);  // no-op: already off
  ASSERT_NE(cache.lookup(program.entry), nullptr);
  EXPECT_EQ(cache.blocks_cached(), 1u);
  cache.set_chaining(true);
  EXPECT_EQ(cache.blocks_cached(), 0u);
}

// ---------------------------------------------------------------- FastEngine

/// Run `source` bare (no OS) on both the golden interpreter and the fast
/// engine, stopping on the first syscall, and require identical registers.
void expect_engine_matches_interpreter(const std::string& source) {
  const isa::Program program = isa::assemble(source);

  mem::MainMemory golden_memory;
  write_program(golden_memory, program);
  isa::Interpreter interp(golden_memory);
  interp.set_pc(program.entry);
  interp.set_syscall_handler([](isa::Interpreter&) { return false; });
  ASSERT_EQ(interp.run(), isa::Interpreter::Stop::kHandlerStop);

  mem::MainMemory fast_memory;
  write_program(fast_memory, program);
  exec::BlockCache cache(fast_memory);
  exec::FastEngine engine(fast_memory, cache, program.text_base,
                          program.text_base + static_cast<Addr>(program.text.size() * 4));
  engine.set_pc(program.entry);
  ASSERT_EQ(engine.run_until(~0ull), exec::FastEngine::Stop::kSyscall);

  for (u8 r = 1; r < isa::kNumRegs; ++r) {
    EXPECT_EQ(engine.reg(r), interp.reg(r)) << "register r" << static_cast<int>(r);
  }
  const Addr arena = program.symbol("arena");
  const u32 bytes = (64 + testing::kDumpOffsetWords + 16) * 4;
  std::vector<u8> golden_bytes(bytes), fast_bytes(bytes);
  golden_memory.read_block(arena, golden_bytes.data(), bytes);
  fast_memory.read_block(arena, fast_bytes.data(), bytes);
  EXPECT_EQ(fast_bytes, golden_bytes);
}

class FastEngineDifferential : public ::testing::TestWithParam<u64> {};

TEST_P(FastEngineDifferential, MatchesGoldenInterpreter) {
  RandomProgramOptions options;
  options.with_memory = true;
  options.with_loops = true;
  options.with_calls = true;
  expect_engine_matches_interpreter(generate_random_program(GetParam(), options));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastEngineDifferential, ::testing::Range<u64>(9000, 9010));

TEST(FastEngine, SelfModifyingStoreExecutesThePatchedWord) {
  // The store rewrites `patch` with the donor word before the site's first
  // execution; the functional model must observe it immediately.
  const isa::Program program = isa::assemble(
      ".text\nmain:\n"
      "  la v1, donor\n"
      "  lw v0, 0(v1)\n"
      "  la t9, patch\n"
      "  sw v0, 0(t9)\n"
      "patch:\n"
      "  addi s1, s1, 1\n"
      "  syscall\n"
      "donor:\n"
      "  addi s1, s1, 7\n");
  mem::MainMemory memory;
  write_program(memory, program);
  exec::BlockCache cache(memory);
  exec::FastEngine engine(memory, cache, program.text_base,
                          program.text_base + static_cast<Addr>(program.text.size() * 4));
  engine.set_pc(program.entry);
  ASSERT_EQ(engine.run_until(~0ull), exec::FastEngine::Stop::kSyscall);
  EXPECT_EQ(engine.reg(17), 7u);  // s1 took the donor's +7, not the stale +1
  EXPECT_GE(cache.stats().invalidations, 1u);
}

TEST(FastEngine, SuperblockDispatchMatchesPerBlockDispatch) {
  // The same jump-threaded program must produce identical architectural
  // results whether dispatch runs chained superblocks or per-basic-block.
  const std::string source =
      ".text\nmain:\n"
      "  addi t0, r0, 5\n"
      "loop:\n"
      "  addi t1, t1, 3\n"
      "  j step\n"
      "step:\n"
      "  addi t0, t0, -1\n"
      "  bne t0, r0, loop\n"
      "  syscall\n";
  const isa::Program program = isa::assemble(source);
  const Addr text_end = program.text_base + static_cast<Addr>(program.text.size() * 4);

  u64 chained_executed = 0;
  std::array<Word, isa::kNumRegs> chained_regs{};
  {
    mem::MainMemory memory;
    write_program(memory, program);
    exec::BlockCache cache(memory);
    exec::FastEngine engine(memory, cache, program.text_base, text_end);
    engine.set_pc(program.entry);
    ASSERT_EQ(engine.run_until(~0ull), exec::FastEngine::Stop::kSyscall);
    EXPECT_GE(cache.stats().superblocks, 1u);
    chained_executed = engine.executed();
    chained_regs = engine.regs();
  }
  {
    mem::MainMemory memory;
    write_program(memory, program);
    exec::BlockCache cache(memory);
    cache.set_chaining(false);
    exec::FastEngine engine(memory, cache, program.text_base, text_end);
    engine.set_pc(program.entry);
    ASSERT_EQ(engine.run_until(~0ull), exec::FastEngine::Stop::kSyscall);
    EXPECT_EQ(cache.stats().superblocks, 0u);
    EXPECT_EQ(engine.executed(), chained_executed);
    EXPECT_EQ(engine.regs(), chained_regs);
  }
}

TEST(FastEngine, SelfModifyingStoreIntoChainedSuperblockTail) {
  // Satellite sweep, unit flavor: a store into the *middle* of a running
  // superblock (the chained tail, reached through a j) must invalidate the
  // block and execute the patched word — in both dispatch modes.
  const std::string source =
      ".text\nmain:\n"
      "  la v1, donor\n"
      "  lw v0, 0(v1)\n"
      "  la t9, patch\n"
      "  sw v0, 0(t9)\n"
      "  j tail\n"
      "tail:\n"
      "  addi s0, s0, 1\n"
      "patch:\n"
      "  addi s1, s1, 1\n"
      "  syscall\n"
      "donor:\n"
      "  addi s1, s1, 7\n";
  const isa::Program program = isa::assemble(source);
  const Addr text_end = program.text_base + static_cast<Addr>(program.text.size() * 4);
  for (const bool chaining : {true, false}) {
    mem::MainMemory memory;
    write_program(memory, program);
    exec::BlockCache cache(memory);
    cache.set_chaining(chaining);
    exec::FastEngine engine(memory, cache, program.text_base, text_end);
    engine.set_pc(program.entry);
    ASSERT_EQ(engine.run_until(~0ull), exec::FastEngine::Stop::kSyscall);
    EXPECT_EQ(engine.reg(16), 1u) << "chaining=" << chaining;  // s0: tail ran
    EXPECT_EQ(engine.reg(17), 7u) << "chaining=" << chaining;  // s1: donor word
    EXPECT_GE(cache.stats().invalidations, 1u);
  }
}

TEST(FastEngine, StopsIllegalOutsideTextRange) {
  const isa::Program program = isa::assemble(
      ".text\nmain:\n"
      "  jr ra\n");  // ra = 0: jumps below text
  mem::MainMemory memory;
  write_program(memory, program);
  exec::BlockCache cache(memory);
  exec::FastEngine engine(memory, cache, program.text_base,
                          program.text_base + static_cast<Addr>(program.text.size() * 4));
  engine.set_pc(program.entry);
  EXPECT_EQ(engine.run_until(~0ull), exec::FastEngine::Stop::kIllegal);
}

TEST(FastEngine, BoundaryStopIsExact) {
  std::string source = ".text\nmain:\n";
  for (int i = 0; i < 20; ++i) source += "  addi t0, t0, 1\n";
  source += "  syscall\n";
  const isa::Program program = isa::assemble(source);
  mem::MainMemory memory;
  write_program(memory, program);
  exec::BlockCache cache(memory);
  exec::FastEngine engine(memory, cache, program.text_base,
                          program.text_base + static_cast<Addr>(program.text.size() * 4));
  engine.set_pc(program.entry);
  ASSERT_EQ(engine.run_until(7), exec::FastEngine::Stop::kBoundary);
  EXPECT_EQ(engine.executed(), 7u);
  EXPECT_EQ(engine.reg(8), 7u);  // t0 incremented exactly seven times
  EXPECT_EQ(engine.pc(), program.entry + 7 * 4);
  // Resuming past the boundary finishes the remaining instructions.
  ASSERT_EQ(engine.run_until(~0ull), exec::FastEngine::Stop::kSyscall);
  EXPECT_EQ(engine.reg(8), 20u);
}

// --------------------------------------------------------------- FastSession

TEST(FastSession, StrictModeBailsOnClockRelaxedModeFinishes) {
  const std::string source =
      ".text\nmain:\n"
      "  li v0, 4\n  syscall\n"  // sys_clock: outside the strict whitelist
      "  li a0, 0\n  li v0, 1\n  syscall\n";

  SimRunner strict_runner;
  strict_runner.load_source(source);
  exec::FastSession strict(strict_runner.os());
  strict.seed_leaders(strict_runner.program());
  EXPECT_EQ(strict.run_until(1000), exec::FastSession::Status::kBail);
  EXPECT_EQ(strict.bail_reason(), exec::FastSession::BailReason::kSyscall);
  // The bail leaves consistent state ON the syscall: the cycle-accurate
  // machine finishes the program after a transplant.
  strict.transplant(strict.virtual_now());
  strict_runner.run();
  EXPECT_TRUE(strict_runner.os().finished());

  SimRunner relaxed_runner;
  relaxed_runner.load_source(source);
  exec::FastSession relaxed(relaxed_runner.os(), exec::FastSessionConfig{/*relaxed=*/true});
  relaxed.seed_leaders(relaxed_runner.program());
  EXPECT_EQ(relaxed.run_until(1000), exec::FastSession::Status::kExited);
  EXPECT_TRUE(relaxed_runner.os().finished());
  EXPECT_EQ(relaxed_runner.os().exit_code(), 0);
}

TEST(FastSession, ResumeRunsThroughYieldAndFinishesFast) {
  // Bail-and-resume: a yield suspends the only thread; the session executes
  // it as an excursion on the cycle-accurate machine, replays the
  // suspension on the real scheduler, and continues fast to completion.
  const std::string source =
      ".text\nmain:\n"
      "  li v0, 8\n  syscall\n"  // sys_yield: suspends, scheduler resumes us
      "  li a0, 7\n  li v0, 2\n  syscall\n"  // print_int 7
      "  li a0, 0\n  li v0, 1\n  syscall\n";
  SimRunner runner;
  runner.load_source(source);
  exec::FastSessionConfig config;
  config.relaxed = true;  // relaxed excursions run at virtual time
  config.resume = true;
  exec::FastSession session(runner.os(), config);
  session.seed_leaders(runner.program());
  EXPECT_EQ(session.run_until(1000), exec::FastSession::Status::kExited);
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().output(), "7");
  // Without resume, the same prefix bails with the PC still ON the yield.
  SimRunner bail_runner;
  bail_runner.load_source(source);
  exec::FastSession no_resume(bail_runner.os());
  no_resume.seed_leaders(bail_runner.program());
  EXPECT_EQ(no_resume.run_until(1000), exec::FastSession::Status::kBail);
  EXPECT_EQ(no_resume.bail_reason(), exec::FastSession::BailReason::kSyscall);
}

TEST(FastSession, SecondLiveThreadBailsAsSuspendNotSyscall) {
  // Regression (bail-reason split): once thread_create has *executed*, the
  // session is past the instruction and must report kSuspend — reporting it
  // as kSyscall would claim an un-executed syscall sits at the PC.
  const std::string source =
      ".text\nmain:\n"
      "  la a0, worker\n"
      "  li v0, 6\n  syscall\n"  // thread_create(worker) -> v0 = worker id
      "  add a0, v0, r0\n  li v0, 9\n  syscall\n"  // join(worker)
      "  li a0, 0\n  li v0, 1\n  syscall\n"
      "worker:\n"
      "  li v0, 7\n  syscall\n";  // thread_exit
  SimRunner runner;
  runner.load_source(source);
  exec::FastSessionConfig config;
  config.relaxed = true;
  config.resume = true;
  exec::FastSession session(runner.os(), config);
  session.seed_leaders(runner.program());
  const u64 before = session.executed();
  EXPECT_EQ(session.run_until(1000), exec::FastSession::Status::kBail);
  EXPECT_EQ(session.bail_reason(), exec::FastSession::BailReason::kSuspend);
  EXPECT_GT(session.executed(), before);  // the syscall itself was credited
  // Bail state is consistent: transplanting and running classically from
  // here finishes the whole two-thread program.
  session.transplant(session.virtual_now());
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().exit_code(), 0);
}

TEST(FastSession, StrictResumeRequiresScheduleEntry) {
  // A strict session with resume armed but no schedule entry for the
  // syscall's stream position must bail kSyscall *before* executing it —
  // excursions without a classic commit cycle would run at the wrong time.
  const std::string source =
      ".text\nmain:\n"
      "  li v0, 8\n  syscall\n"  // yield — not whitelisted in strict mode
      "  li a0, 0\n  li v0, 1\n  syscall\n";
  SimRunner runner;
  runner.load_source(source);
  exec::FastSessionConfig config;
  config.resume = true;  // strict: needs syscall_schedule, which is null
  exec::FastSession session(runner.os(), config);
  session.seed_leaders(runner.program());
  EXPECT_EQ(session.run_until(1000), exec::FastSession::Status::kBail);
  EXPECT_EQ(session.bail_reason(), exec::FastSession::BailReason::kSyscall);
}

// -------------------------------------------------------------- fast goldens

TEST(FastGolden, MatchesCycleAccurateGoldenOutputAndInstructions) {
  const campaign::WorkloadSetup setup = campaign::make_workload("loop");
  const campaign::GoldenRun golden = campaign::simulate_golden(setup);
  const campaign::GoldenRun fast = campaign::simulate_golden_fast(setup);
  EXPECT_EQ(fast.output, golden.output);
  EXPECT_EQ(fast.exit_code, golden.exit_code);
  EXPECT_EQ(fast.instructions, golden.instructions);
}

TEST(FastGolden, CacheKeysFastAndCycleAccurateSeparately) {
  campaign::GoldenCache cache;
  const campaign::WorkloadSetup setup = campaign::make_workload("loop");
  const auto classic = cache.get(setup);
  const auto fast = cache.get(setup, /*fast=*/true);
  EXPECT_NE(classic.get(), fast.get());
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.get(setup, /*fast=*/true).get(), fast.get());
  EXPECT_EQ(cache.hits(), 1u);
}

}  // namespace
}  // namespace rse
