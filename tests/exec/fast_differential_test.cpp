// Differential property suite for fast mode: randomly generated guest
// programs run once through the exec/ fast engine (rse_run --fast style:
// relaxed session, transplant on bail) and once on the cycle-accurate OoO
// core.  Architectural state must match at every syscall boundary — the
// full register file and the post-syscall PC, snapshotted in both modes at
// the exact point the OS handler observes — and at exit: output, exit code,
// and the final arena memory (working-register dump included).  Programs
// with self-modifying stores to the text segment are part of the suite.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "../support/random_program.hpp"
#include "../support/sim_runner.hpp"
#include "exec/fast_session.hpp"
#include "workloads/workloads.hpp"

namespace rse {
namespace {

using testing::RandomProgramOptions;
using testing::SimRunner;
using testing::generate_random_program;

constexpr u64 kRunLimit = 50'000'000;

struct Snapshot {
  Addr pc = 0;  // post-syscall PC, as the OS handler sees it
  std::array<Word, isa::kNumRegs> regs{};
  bool operator==(const Snapshot& other) const {
    return pc == other.pc && regs == other.regs;
  }
};

struct RunTrace {
  bool finished = false;
  int exit_code = -1;
  std::string output;
  std::vector<Snapshot> boundaries;  // one per executed syscall, in order
  std::vector<u8> arena;
};

std::vector<u8> arena_bytes(SimRunner& runner) {
  const Addr arena = runner.program().symbol("arena");
  std::vector<u8> out((64 + testing::kDumpOffsetWords + 16) * 4);
  runner.machine().memory().read_block(arena, out.data(), static_cast<u32>(out.size()));
  return out;
}

/// Record a syscall-commit snapshot from the cycle-accurate core.  At syscall
/// commit the RUU holds only the syscall (it dispatches serialized), so
/// context() is exactly the state the handler is about to see.
void attach_commit_probe(SimRunner& runner, std::vector<Snapshot>* out) {
  cpu::Core& core = runner.machine().core();
  runner.machine().core().set_commit_trace(
      [&core, out](Cycle, Addr, const isa::Instr& instr, ThreadId) {
        if (instr.op != isa::Op::kSyscall) return;
        const cpu::ThreadContext ctx = core.context();
        out->push_back(Snapshot{ctx.pc, ctx.regs});
      });
}

RunTrace run_classic(const std::string& source, bool framework = false) {
  os::MachineConfig config;
  config.framework_present = framework;
  SimRunner runner(config);
  runner.load_source(source);
  RunTrace trace;
  attach_commit_probe(runner, &trace.boundaries);
  runner.run();
  trace.finished = runner.os().finished();
  trace.exit_code = runner.os().exit_code();
  trace.output = runner.os().output();
  trace.arena = arena_bytes(runner);
  return trace;
}

RunTrace run_fast(const std::string& source, bool framework = false, bool superblocks = true) {
  os::MachineConfig config;
  config.framework_present = framework;
  SimRunner runner(config);
  runner.load_source(source);
  RunTrace trace;

  exec::FastSessionConfig session_config;
  session_config.relaxed = true;
  session_config.superblocks = superblocks;
  exec::FastSession session(runner.os(), session_config);
  session.seed_leaders(runner.program());
  session.set_syscall_probe([&trace](Addr pc, const std::array<Word, isa::kNumRegs>& regs) {
    trace.boundaries.push_back(Snapshot{pc, regs});
  });
  // Syscalls the session cannot delegate run on the core after the
  // transplant; the commit probe keeps the boundary stream seamless.
  attach_commit_probe(runner, &trace.boundaries);
  const exec::FastSession::Status status = session.run_until(kRunLimit);
  if (status == exec::FastSession::Status::kBail) {
    session.transplant(session.virtual_now());
    runner.run();
  }

  trace.finished = runner.os().finished();
  trace.exit_code = runner.os().exit_code();
  trace.output = runner.os().output();
  trace.arena = arena_bytes(runner);
  return trace;
}

void expect_traces_equal(const RunTrace& fast, const RunTrace& classic) {
  EXPECT_TRUE(classic.finished);
  EXPECT_TRUE(fast.finished);
  EXPECT_EQ(fast.exit_code, classic.exit_code);
  EXPECT_EQ(fast.output, classic.output);
  EXPECT_EQ(fast.arena, classic.arena);
  ASSERT_EQ(fast.boundaries.size(), classic.boundaries.size());
  for (std::size_t i = 0; i < classic.boundaries.size(); ++i) {
    EXPECT_EQ(fast.boundaries[i].pc, classic.boundaries[i].pc) << "boundary " << i;
    for (u8 r = 1; r < isa::kNumRegs; ++r) {
      EXPECT_EQ(fast.boundaries[i].regs[r], classic.boundaries[i].regs[r])
          << "boundary " << i << ", register r" << static_cast<int>(r);
    }
  }
}

void expect_fast_matches_classic(const std::string& source, bool framework = false) {
  expect_traces_equal(run_fast(source, framework), run_classic(source, framework));
}

class FastDifferentialPlain : public ::testing::TestWithParam<u64> {};

TEST_P(FastDifferentialPlain, StateMatchesAtEveryBoundaryAndExit) {
  RandomProgramOptions options;
  options.with_memory = true;
  options.with_loops = true;
  options.print_progress = true;
  expect_fast_matches_classic(generate_random_program(GetParam(), options));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastDifferentialPlain, ::testing::Range<u64>(5000, 5050));

class FastDifferentialCalls : public ::testing::TestWithParam<u64> {};

TEST_P(FastDifferentialCalls, StateMatchesAtEveryBoundaryAndExit) {
  RandomProgramOptions options;
  options.with_memory = true;
  options.with_loops = true;
  options.with_calls = true;
  options.print_progress = true;
  expect_fast_matches_classic(generate_random_program(GetParam(), options));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastDifferentialCalls, ::testing::Range<u64>(5100, 5150));

class FastDifferentialCallHeavy : public ::testing::TestWithParam<u64> {};

TEST_P(FastDifferentialCallHeavy, StateMatchesAtEveryBoundaryAndExit) {
  RandomProgramOptions options;
  options.with_memory = true;
  options.with_loops = true;
  options.call_heavy = true;
  options.arg_pointers = true;
  options.print_progress = true;
  expect_fast_matches_classic(generate_random_program(GetParam(), options));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastDifferentialCallHeavy, ::testing::Range<u64>(5200, 5250));

class FastDifferentialSelfModifying
    : public ::testing::TestWithParam<std::tuple<u64, bool>> {};

TEST_P(FastDifferentialSelfModifying, PatchedTextMatchesAtEveryBoundaryAndExit) {
  // Self-modifying stores to text: the generator serializes (syscall) and
  // pads past the fetch buffer between each patch and its site, so the OoO
  // core and the functional fast path must observe identical instructions.
  // Runs in both dispatch modes — with superblock chaining the patch site
  // usually sits in the *middle* of a chained superblock, so the sweep pins
  // spanning-page invalidation tearing the whole superblock down.
  RandomProgramOptions options;
  options.with_memory = true;
  options.with_loops = true;
  options.self_modifying = true;
  options.print_progress = true;
  const auto [seed, superblocks] = GetParam();
  const std::string source = generate_random_program(seed, options);
  expect_traces_equal(run_fast(source, /*framework=*/false, superblocks), run_classic(source));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastDifferentialSelfModifying,
                         ::testing::Combine(::testing::Range<u64>(5300, 5350),
                                            ::testing::Bool()));

class FastDifferentialYielding : public ::testing::TestWithParam<u64> {};

TEST_P(FastDifferentialYielding, RelaxedResumeMatchesAtEveryBoundaryAndExit) {
  // Bail-and-resume prefixes: yields suspend the single thread mid-program.
  // A relaxed resumable session executes each yield as an excursion on the
  // real scheduler and continues fast; every boundary snapshot and the
  // final state must still match the cycle-accurate run.
  RandomProgramOptions options;
  options.with_memory = true;
  options.with_loops = true;
  options.yield_points = true;
  options.print_progress = true;
  const std::string source = generate_random_program(GetParam(), options);

  SimRunner runner;
  runner.load_source(source);
  RunTrace trace;
  exec::FastSessionConfig config;
  config.relaxed = true;
  config.resume = true;
  exec::FastSession session(runner.os(), config);
  session.seed_leaders(runner.program());
  session.set_syscall_probe([&trace](Addr pc, const std::array<Word, isa::kNumRegs>& regs) {
    trace.boundaries.push_back(Snapshot{pc, regs});
  });
  attach_commit_probe(runner, &trace.boundaries);
  const exec::FastSession::Status status = session.run_until(kRunLimit);
  if (status == exec::FastSession::Status::kBail) {
    session.transplant(session.virtual_now());
    runner.run();
  }
  trace.finished = runner.os().finished();
  trace.exit_code = runner.os().exit_code();
  trace.output = runner.os().output();
  trace.arena = arena_bytes(runner);

  expect_traces_equal(trace, run_classic(source));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastDifferentialYielding, ::testing::Range<u64>(5500, 5550));

class FastDifferentialInstrumented : public ::testing::TestWithParam<u64> {};

TEST_P(FastDifferentialInstrumented, ChkBoundariesAreTransparentInBothModes) {
  // ICM-instrumented programs on an RSE machine: CHKs are architectural
  // NOPs in both modes, so every boundary snapshot still matches.
  RandomProgramOptions options;
  options.with_memory = true;
  options.with_loops = true;
  options.print_progress = true;
  const std::string source =
      workloads::instrument_checks(generate_random_program(GetParam(), options));
  expect_fast_matches_classic(source, /*framework=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastDifferentialInstrumented,
                         ::testing::Range<u64>(5400, 5420));

}  // namespace
}  // namespace rse
