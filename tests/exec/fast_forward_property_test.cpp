// Fast-forward eligibility property harness: randomized guest programs pin
// the campaign fast path against the classic path for every fast-forward-
// eligible fault class — register bits, instruction words, data words, and
// bail-and-resume prefixes (yielding programs) — plus windowed-campaign
// digest invariance on the shipped workloads.
//
// For each random program the harness replicates exactly what
// CampaignRunner::run does under --fast-forward: one instrumented replay
// maps the plan's injection cycles to boundaries (positions + in-flight
// ranges) and records the syscall schedule, then every record runs once
// classically and once through run_one_fast_forward.  The classified
// outcome and fault_applied — the per-run digest content — must match
// record-for-record; which path a run took must never show.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../support/random_program.hpp"
#include "campaign/golden.hpp"
#include "campaign/runner.hpp"
#include "exec/fast_forward.hpp"

namespace rse {
namespace {

using testing::RandomProgramOptions;
using testing::generate_random_program;

// Aggregated across the whole binary so the trailing coverage test can
// assert the fast path was genuinely exercised (not satisfied vacuously by
// every record falling back to classic).
campaign::FastForwardStats g_accum;
u64 g_programs = 0;

void accumulate(const campaign::FastForwardStats& stats) {
  g_accum.fast += stats.fast;
  g_accum.fallback_target += stats.fallback_target;
  g_accum.fallback_unmapped += stats.fallback_unmapped;
  g_accum.fallback_conflict += stats.fallback_conflict;
  g_accum.fallback_checked += stats.fallback_checked;
  g_accum.fallback_syscall += stats.fallback_syscall;
  g_accum.fallback_suspend += stats.fallback_suspend;
  g_accum.fallback_illegal += stats.fallback_illegal;
  g_accum.fallback_other += stats.fallback_other;
  ++g_programs;
}

/// Classic vs fast-forward differential over one random program: every
/// record of a small plan for `target` must classify identically.
void expect_fast_forward_matches_classic(u64 seed, campaign::InjectTarget target,
                                         const RandomProgramOptions& options) {
  campaign::WorkloadSetup setup;
  setup.name = "random-ff";
  setup.source = generate_random_program(seed, options);
  const campaign::GoldenRun golden = campaign::simulate_golden(setup);
  ASSERT_GT(golden.cycles, 0u);

  campaign::CampaignSpec spec;
  spec.workload = setup.name;
  spec.runs = 6;
  spec.seed = seed;
  spec.targets = {target};

  campaign::CampaignRunner runner;
  const campaign::InjectionPlan plan = runner.plan_for(spec, golden, setup);
  const Cycle budget = static_cast<Cycle>(static_cast<double>(golden.cycles) * 8.0) + 20'000;

  // The instrumented replay, exactly as CampaignRunner::run stages it.
  std::vector<Cycle> cycles;
  for (u32 i = 0; i < spec.runs; ++i) cycles.push_back(plan.record(i).inject_cycle);
  exec::FastForwardController::SyscallSchedule schedule;
  exec::FastForwardController::BoundaryMap boundaries;
  {
    os::OsConfig os_config = setup.os;
    os_config.run_limit = budget;
    os::Machine machine(setup.machine);
    os::GuestOs guest(machine, os_config);
    guest.load(golden.program);
    boundaries =
        exec::FastForwardController::map_boundaries(guest, std::move(cycles), &schedule);
  }

  for (u32 i = 0; i < spec.runs; ++i) {
    const campaign::InjectionRecord record = plan.record(i);
    const campaign::RunResult classic =
        runner.run_one_with_budget(setup, golden, record, budget);
    const campaign::RunResult fast =
        runner.run_one_fast_forward(setup, golden, record, budget, boundaries, &schedule);
    EXPECT_EQ(fast.outcome, classic.outcome)
        << "seed " << seed << ", run " << i << ": " << campaign::describe(record);
    EXPECT_EQ(fast.fault_applied, classic.fault_applied)
        << "seed " << seed << ", run " << i << ": " << campaign::describe(record);
  }
  accumulate(runner.fast_forward_stats());
}

class FastForwardInstrWord : public ::testing::TestWithParam<u64> {};

TEST_P(FastForwardInstrWord, OutcomeMatchesClassicForEveryRecord) {
  RandomProgramOptions options;
  options.with_memory = true;
  options.with_loops = true;
  options.print_progress = true;
  expect_fast_forward_matches_classic(GetParam(), campaign::InjectTarget::kInstructionWord,
                                      options);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastForwardInstrWord, ::testing::Range<u64>(6000, 6050));

class FastForwardDataWord : public ::testing::TestWithParam<u64> {};

TEST_P(FastForwardDataWord, OutcomeMatchesClassicForEveryRecord) {
  RandomProgramOptions options;
  options.with_memory = true;
  options.with_loops = true;
  options.print_progress = true;
  expect_fast_forward_matches_classic(GetParam(), campaign::InjectTarget::kDataWord, options);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastForwardDataWord, ::testing::Range<u64>(6100, 6150));

class FastForwardResumePrefix : public ::testing::TestWithParam<u64> {};

TEST_P(FastForwardResumePrefix, OutcomeMatchesClassicForEveryRecord) {
  // Yielding programs: the fault-free prefix suspends repeatedly, so the
  // fast path crosses each yield as a scheduled excursion (bail-and-resume)
  // — or falls back, but either way the classification must match.
  RandomProgramOptions options;
  options.with_memory = true;
  options.with_loops = true;
  options.yield_points = true;
  options.print_progress = true;
  expect_fast_forward_matches_classic(GetParam(), campaign::InjectTarget::kRegisterBit,
                                      options);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastForwardResumePrefix, ::testing::Range<u64>(6200, 6250));

/// Global-environment teardown runs after every test: the differentials are
/// only meaningful if a healthy share of records genuinely took the fast
/// path rather than all falling back, so assert it once at the end.
class FastPathCoverageEnvironment : public ::testing::Environment {
 public:
  void TearDown() override {
    if (g_programs == 0) return;  // suites filtered out of this invocation
    EXPECT_GE(g_accum.fast, g_programs)
        << "fewer fast-path runs than programs — eligibility has regressed "
        << "(fallbacks: target " << g_accum.fallback_target << ", unmapped "
        << g_accum.fallback_unmapped << ", conflict " << g_accum.fallback_conflict
        << ", checked " << g_accum.fallback_checked
        << ", syscall " << g_accum.fallback_syscall << ", suspend "
        << g_accum.fallback_suspend << ", illegal " << g_accum.fallback_illegal
        << ", other " << g_accum.fallback_other << ")";
    EXPECT_EQ(g_accum.fallback_target, 0u);   // no config faults in these plans
    EXPECT_EQ(g_accum.fallback_illegal, 0u);  // fault-free prefixes never trap
  }
};

const ::testing::Environment* const g_coverage_env =
    ::testing::AddGlobalTestEnvironment(new FastPathCoverageEnvironment);

// ------------------------------------------------------- windowed campaigns

class FastForwardWindowedDigest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(FastForwardWindowedDigest, DigestMatchesClassicAcrossWindows) {
  // --fast-forward x --window: extreme windows drive boundaries toward the
  // run's edges — a high window puts injection cycles past where the replay
  // can map them (unmapped fallback), a low one stacks them onto the first
  // instructions.  The digest must stay byte-identical either way.
  const auto [lo, hi] = GetParam();
  campaign::CampaignSpec spec;
  spec.workload = "loop";
  spec.runs = 24;
  spec.seed = 77;
  spec.jobs = 2;
  spec.window_lo = lo;
  spec.window_hi = hi;

  campaign::CampaignRunner runner;  // shared golden cache across both runs
  const campaign::CampaignReport classic = runner.run(spec);
  spec.fast_forward = true;
  const campaign::CampaignReport fast = runner.run(spec);
  EXPECT_EQ(campaign::deterministic_digest(fast), campaign::deterministic_digest(classic));
}

INSTANTIATE_TEST_SUITE_P(Windows, FastForwardWindowedDigest,
                         ::testing::Values(std::make_pair(0.0, 0.05),
                                           std::make_pair(0.45, 0.55),
                                           std::make_pair(0.95, 1.0)));

TEST(FastForwardWindowedDigest, IcmCheckedInstrFaultsFallBackAndDigestMatches) {
  // Regression: an instruction-word fault on an ICM-checked instruction
  // (kmeans is chk-instrumented) is detected through *speculative* dispatch
  // — classic runs saw wrong-path fetches of the corrupted word that a
  // transplanted (empty-pipeline) core never makes, flipping detected_icm
  // to masked under --fast-forward.  Such records must take the classic
  // path (fallback_checked) and the digest must stay byte-identical.
  campaign::CampaignSpec spec;
  spec.workload = "kmeans";
  spec.runs = 32;
  spec.seed = 7;
  spec.jobs = 2;
  spec.targets = {campaign::InjectTarget::kInstructionWord,
                  campaign::InjectTarget::kDataWord};
  spec.window_lo = 0.85;
  spec.window_hi = 1.0;

  campaign::CampaignRunner runner;
  const campaign::CampaignReport classic = runner.run(spec);
  spec.fast_forward = true;
  const campaign::CampaignReport fast = runner.run(spec);
  EXPECT_EQ(campaign::deterministic_digest(fast), campaign::deterministic_digest(classic));
  const campaign::FastForwardStats ff = runner.fast_forward_stats();
  EXPECT_GT(ff.fast, 0u);
  EXPECT_GT(ff.fallback_checked, 0u);  // the eligibility rule actually fired
}

TEST(FastForwardWindowedDigest, CallsWorkloadLateWindowMatchesClassic) {
  // Second workload shape for the windowed audit: call/return dominated,
  // late window (boundary-unmapped heavy).
  campaign::CampaignSpec spec;
  spec.workload = "calls";
  spec.runs = 16;
  spec.seed = 99;
  spec.jobs = 2;
  spec.window_lo = 0.9;
  spec.window_hi = 1.0;

  campaign::CampaignRunner runner;
  const campaign::CampaignReport classic = runner.run(spec);
  spec.fast_forward = true;
  const campaign::CampaignReport fast = runner.run(spec);
  EXPECT_EQ(campaign::deterministic_digest(fast), campaign::deterministic_digest(classic));
}

}  // namespace
}  // namespace rse
