// Static DDT footprint end-to-end: the loader runs the data-flow pass
// (OsConfig::static_ddt), hands the DDT the page-footprint signature, and
// the DDT raises footprint-violation detections for committed accesses at
// statically resolved sites that land outside the predicted page set.
// These tests pin: no false positives on clean runs, unperturbed golden
// timing, PST pre-reservation actually firing, the campaign digest
// recording the mode, and digest determinism across worker counts.
#include <gtest/gtest.h>

#include <algorithm>

#include "campaign/runner.hpp"
#include "isa/assembler.hpp"
#include "os/guest_os.hpp"
#include "os/machine.hpp"

namespace rse::campaign {
namespace {

/// Run a workload fault-free with the static footprint installed and return
/// the DDT for inspection.
const modules::DdtModule* run_clean(const WorkloadSetup& setup, os::Machine& machine) {
  os::OsConfig os_config = setup.os;
  os_config.static_ddt = true;
  os::GuestOs guest(machine, os_config);
  guest.load(isa::assemble(setup.source));
  for (isa::ModuleId id : setup.host_enables) guest.enable_module(id);
  guest.enable_module(isa::ModuleId::kDdt);
  guest.run();
  EXPECT_TRUE(guest.finished()) << setup.name << " did not finish";
  EXPECT_NE(guest.program_analysis(), nullptr);
  return machine.ddt();
}

TEST(StaticDdtTest, CleanRunsProduceNoFootprintViolations) {
  for (const char* name : {"loop", "calls", "kmeans", "server"}) {
    const WorkloadSetup setup = make_workload(name);
    os::Machine machine(setup.machine);
    const modules::DdtModule* ddt = run_clean(setup, machine);
    ASSERT_NE(ddt, nullptr) << name;
    EXPECT_EQ(ddt->stats().footprint_violations, 0u)
        << name << ": static footprint false-positived on a clean run";
  }
}

TEST(StaticDdtTest, ResolvedWorkloadsExerciseTheFootprintCheck) {
  // kmeans and server both have statically resolved store sites, so a clean
  // run must actually consult the footprint and hit its pre-reserved PST
  // entries — otherwise the mode is silently off.
  for (const char* name : {"kmeans", "server"}) {
    const WorkloadSetup setup = make_workload(name);
    os::Machine machine(setup.machine);
    const modules::DdtModule* ddt = run_clean(setup, machine);
    ASSERT_NE(ddt, nullptr) << name;
    EXPECT_TRUE(ddt->has_footprint()) << name;
    EXPECT_GT(ddt->stats().footprint_checks, 0u) << name;
    EXPECT_GT(ddt->stats().pst_prereserved, 0u) << name;
    EXPECT_GT(ddt->stats().prereserve_hits, 0u) << name;
  }
}

TEST(StaticDdtTest, FootprintDoesNotPerturbGoldenTiming) {
  CampaignRunner runner;
  for (const char* name : {"loop", "kmeans", "server"}) {
    WorkloadSetup base = make_workload(name);
    WorkloadSetup tight = base;
    tight.os.static_ddt = true;
    const auto golden_base = runner.cache().get(base);
    const auto golden_tight = runner.cache().get(tight);
    EXPECT_EQ(golden_base->cycles, golden_tight->cycles)
        << name << ": the footprint check must not perturb fault-free execution";
    EXPECT_EQ(golden_base->output, golden_tight->output) << name;
    EXPECT_EQ(golden_tight->ddt_footprint_violations, 0u) << name;
  }
}

TEST(StaticDdtTest, CampaignDigestRecordsTheMode) {
  CampaignRunner runner;
  CampaignSpec spec;
  spec.workload = "kmeans";
  spec.runs = 16;
  spec.seed = 11;
  spec.jobs = 1;
  const CampaignReport dynamic_report = runner.run(spec);
  spec.static_ddt = true;
  const CampaignReport static_report = runner.run(spec);

  EXPECT_NE(deterministic_digest(dynamic_report), deterministic_digest(static_report));
  EXPECT_NE(deterministic_digest(static_report).find("static-ddt"), std::string::npos);
  EXPECT_NE(deterministic_digest(dynamic_report).find("dynamic-ddt"), std::string::npos);
  EXPECT_NE(to_json(static_report).find("\"static_ddt\": true"), std::string::npos);
}

TEST(StaticDdtTest, DigestIsIdenticalAcrossWorkerCounts) {
  CampaignRunner runner;
  CampaignSpec spec;
  spec.workload = "kmeans";
  spec.runs = 48;
  spec.seed = 23;
  spec.static_ddt = true;

  std::string baseline;
  for (u32 jobs : {1u, 4u, 8u}) {
    spec.jobs = jobs;
    const std::string digest = deterministic_digest(runner.run(spec));
    if (jobs == 1) {
      baseline = digest;
    } else {
      EXPECT_EQ(digest, baseline) << "digest diverged at jobs=" << jobs;
    }
  }
}

TEST(StaticDdtTest, DetectsBaseRegisterCorruptionDynamicDdtMisses) {
  // Corrupt a high bit of an address base register: the next store at a
  // statically resolved site lands pages away from the predicted set.  The
  // dynamic DDT happily tracks the bogus page; only the footprint check can
  // call it out.
  CampaignRunner runner;
  // kmeans: single-threaded, so an injected register corruption is never
  // masked by a context-switch restore before the next resolved store.
  WorkloadSetup base = make_workload("kmeans");
  if (std::find(base.host_enables.begin(), base.host_enables.end(), isa::ModuleId::kDdt) ==
      base.host_enables.end()) {
    base.host_enables.push_back(isa::ModuleId::kDdt);
  }
  WorkloadSetup tight = base;
  tight.os.static_ddt = true;
  const auto golden_base = runner.cache().get(base);
  const auto golden_tight = runner.cache().get(tight);
  ASSERT_EQ(golden_base->cycles, golden_tight->cycles);

  InjectionRecord record;
  record.target = InjectTarget::kRegisterBit;

  u32 injected = 0, tight_detected = 0, base_detected = 0, index = 0;
  const Cycle stride = std::max<Cycle>(1, golden_base->cycles / 96);
  for (Cycle cycle = 20; cycle + 20 < golden_base->cycles; cycle += stride, ++index) {
    record.inject_cycle = cycle;
    record.reg = static_cast<u8>(8 + (index % 16));  // rotate t0..t7, s0..s7
    record.bit = static_cast<u8>(14 + (index % 8));  // 16 KB .. 2 MB off target
    record.mask = Word{1} << record.bit;
    const RunResult rb = runner.run_one(base, *golden_base, record);
    const RunResult rt = runner.run_one(tight, *golden_tight, record);
    if (!rt.fault_applied) continue;
    ++injected;
    if (rb.outcome == Outcome::kDetectedDdt) ++base_detected;
    if (rt.outcome == Outcome::kDetectedDdt) ++tight_detected;
  }
  ASSERT_GT(injected, 10u);
  EXPECT_GT(tight_detected, base_detected)
      << "the static footprint detected nothing the dynamic DDT missed";
}

}  // namespace
}  // namespace rse::campaign
