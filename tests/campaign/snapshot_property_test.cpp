// Whole-machine snapshot/restore property harness (docs/campaigns.md).
//
// For randomized guest programs, the suite proves the os::MachineSnapshot
// round trip is bit-exact in both directions:
//  - capture is non-perturbing: the captured machine, run on to completion,
//    finishes identically to an uninterrupted reference run;
//  - restore is exact: a fresh machine/guest pair restored from the
//    snapshot matches the captured machine's register file, PC, cycle, and
//    memory image immediately, and — run to completion — finishes
//    bit-identically to the reference (registers, memory digest, output,
//    exit code, instruction counts, module statistics).
// Snapshot points sweep the reference run's cycle buckets, and the
// campaign-level test pins the checkpoint-fork digest with --fast-forward
// both off (exact chain) and on (transplanted chain).
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "isa/assembler.hpp"
#include "os/guest_os.hpp"
#include "os/machine.hpp"
#include "os/snapshot.hpp"
#include "../support/random_program.hpp"

using namespace rse;

namespace {

constexpr Cycle kRunLimit = 400'000;

struct HarnessConfig {
  rse::testing::RandomProgramOptions program;  // qualified: ::testing is gtest's
  bool framework = false;
  std::vector<isa::ModuleId> enables;

  os::OsConfig os_config() const {
    os::OsConfig config;
    config.run_limit = kRunLimit;
    return config;
  }
};

/// Everything the end of a run determines.  Two bit-identical executions
/// must agree on every field.
struct FinalState {
  Cycle cycles = 0;
  std::array<Word, isa::kNumRegs> regs{};
  Addr pc = 0;
  u64 memory_digest = 0;
  std::string output;
  int exit_code = 0;
  bool finished = false;
  cpu::CoreStats core{};
  modules::IcmStats icm{};
  modules::CfcStats cfc{};
};

os::Machine make_machine(const HarnessConfig& config) {
  os::MachineConfig mc;
  mc.framework_present = config.framework;
  return os::Machine(mc);
}

void step_until_done(os::Machine& machine, os::GuestOs& guest, Cycle limit) {
  while (!guest.finished() && machine.now() < limit) guest.step();
}

FinalState observe(os::Machine& machine, os::GuestOs& guest) {
  FinalState state;
  state.cycles = machine.now();
  for (unsigned r = 0; r < isa::kNumRegs; ++r) state.regs[r] = machine.core().reg(static_cast<u8>(r));
  state.pc = machine.core().pc();
  state.memory_digest = os::MachineSnapshot::memory_digest(machine.memory());
  state.output = guest.output();
  state.exit_code = guest.exit_code();
  state.finished = guest.finished();
  state.core = machine.core().stats();
  if (machine.icm() != nullptr) state.icm = machine.icm()->stats();
  if (machine.cfc() != nullptr) state.cfc = machine.cfc()->stats();
  return state;
}

void expect_identical(const FinalState& a, const FinalState& b, const std::string& what) {
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.regs, b.regs) << what;
  EXPECT_EQ(a.pc, b.pc) << what;
  EXPECT_EQ(a.memory_digest, b.memory_digest) << what;
  EXPECT_EQ(a.output, b.output) << what;
  EXPECT_EQ(a.exit_code, b.exit_code) << what;
  EXPECT_EQ(a.finished, b.finished) << what;
  // The stats structs are all-u64 aggregates, so memcmp equality is exact
  // field equality without naming every counter.
  EXPECT_EQ(0, std::memcmp(&a.core, &b.core, sizeof(a.core))) << what << " (core stats)";
  EXPECT_EQ(0, std::memcmp(&a.icm, &b.icm, sizeof(a.icm))) << what << " (icm stats)";
  EXPECT_EQ(0, std::memcmp(&a.cfc, &b.cfc, sizeof(a.cfc))) << what << " (cfc stats)";
}

/// One snapshot round trip at roughly `fraction` of the reference run.
void check_round_trip(const HarnessConfig& config, const isa::Program& program,
                      const FinalState& reference, double fraction, const std::string& what) {
  const Cycle point = static_cast<Cycle>(static_cast<double>(reference.cycles) * fraction);

  os::Machine captured_machine = make_machine(config);
  os::GuestOs captured(captured_machine, config.os_config());
  captured.load(program);
  for (isa::ModuleId id : config.enables) captured.enable_module(id);
  while (!captured.finished() && captured_machine.now() < point) captured.step();
  while (!captured.finished() && captured_machine.now() < kRunLimit &&
         !os::MachineSnapshot::quiescent(captured_machine)) {
    captured.step();
  }
  if (captured.finished()) return;  // bucket past the end of this program
  ASSERT_TRUE(os::MachineSnapshot::quiescent(captured_machine)) << what;
  const os::MachineSnapshot snapshot = os::MachineSnapshot::capture(captured_machine, captured);
  const FinalState at_capture = observe(captured_machine, captured);

  // Restore into a fresh pair and compare the immediate state.
  os::Machine restored_machine = make_machine(config);
  os::GuestOs restored(restored_machine, config.os_config());
  restored.load(program);
  for (isa::ModuleId id : config.enables) restored.enable_module(id);
  os::MachineSnapshot::restore(snapshot, restored_machine, restored);
  expect_identical(at_capture, observe(restored_machine, restored), what + " at capture point");

  // Both the captured machine (capture must not perturb) and the restored
  // one must finish exactly like the uninterrupted reference.
  step_until_done(captured_machine, captured, kRunLimit);
  step_until_done(restored_machine, restored, kRunLimit);
  expect_identical(reference, observe(captured_machine, captured), what + " captured-run end");
  expect_identical(reference, observe(restored_machine, restored), what + " restored-run end");
}

void run_property_suite(const HarnessConfig& config, unsigned programs, u64 seed_base) {
  unsigned snapshotted = 0;
  for (unsigned i = 0; i < programs; ++i) {
    const u64 seed = seed_base + i;
    const std::string source = rse::testing::generate_random_program(seed, config.program);
    const isa::Program program = isa::assemble(source);

    os::Machine ref_machine = make_machine(config);
    os::GuestOs ref_guest(ref_machine, config.os_config());
    ref_guest.load(program);
    for (isa::ModuleId id : config.enables) ref_guest.enable_module(id);
    step_until_done(ref_machine, ref_guest, kRunLimit);
    ASSERT_TRUE(ref_guest.finished()) << "random program " << seed << " hit the run limit";
    const FinalState reference = observe(ref_machine, ref_guest);

    // Sweep the snapshot point across cycle buckets: each seed exercises a
    // different quarter, and a handful of seeds exercise all three.
    std::vector<double> fractions{0.25 * static_cast<double>(1 + (i % 3))};
    if (i < 4) fractions = {0.25, 0.5, 0.75};
    for (double fraction : fractions) {
      check_round_trip(config, program, reference, fraction,
                       "seed " + std::to_string(seed) + " @" + std::to_string(fraction));
      ++snapshotted;
    }
  }
  // The sweep must actually test something: nearly every program is long
  // enough to snapshot mid-run.
  EXPECT_GE(snapshotted, programs);
}

TEST(SnapshotPropertyTest, PlainCoreRoundTripsBitExactly) {
  HarnessConfig config;
  config.program.with_memory = true;
  config.program.with_loops = true;
  run_property_suite(config, 50, 1000);
}

TEST(SnapshotPropertyTest, FrameworkAndModulesRoundTripBitExactly) {
  HarnessConfig config;
  config.framework = true;
  config.enables = {isa::ModuleId::kIcm, isa::ModuleId::kCfc};
  config.program.with_memory = true;
  config.program.with_loops = true;
  config.program.with_calls = true;
  run_property_suite(config, 50, 2000);
}

TEST(SnapshotPropertyTest, MidRunOutputRoundTripsBitExactly) {
  HarnessConfig config;
  config.framework = true;
  config.enables = {isa::ModuleId::kIcm};
  config.program.with_memory = true;
  config.program.print_progress = true;
  run_property_suite(config, 50, 3000);
}

// Campaign-level pin: checkpoint-fork must not move the deterministic
// digest, with the snapshot chain built classically (exact) and through
// --fast-forward (transplanted, register-faults-only forking), across
// bucket counts.
TEST(SnapshotPropertyTest, CheckpointForkDigestInvariantAcrossBucketsAndFastForward) {
  campaign::GoldenCache cache;
  campaign::CampaignRunner runner(&cache);
  campaign::CampaignSpec spec;
  spec.workload = "loop";
  spec.runs = 32;
  spec.seed = 11;
  spec.jobs = 2;
  const std::string baseline = campaign::deterministic_digest(runner.run(spec));

  for (const u32 buckets : {1u, 4u, 8u, 13u}) {
    for (const bool fast_forward : {false, true}) {
      campaign::CampaignSpec fork_spec = spec;
      fork_spec.snapshot_fork = true;
      fork_spec.snapshot_buckets = buckets;
      fork_spec.fast_forward = fast_forward;
      EXPECT_EQ(baseline, campaign::deterministic_digest(runner.run(fork_spec)))
          << "buckets=" << buckets << " fast_forward=" << fast_forward;
    }
  }
}

}  // namespace
