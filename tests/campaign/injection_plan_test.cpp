// InjectionPlan: reproducibility from (campaign_seed, run_index) and
// well-formedness of every sampled fault point.
#include <gtest/gtest.h>

#include <set>

#include "campaign/injection.hpp"
#include "common/error.hpp"

namespace rse::campaign {
namespace {

InjectionSpace loop_space() {
  InjectionSpace space;
  space.cycles = 100'000;
  space.text_base = 0x0040'0000;
  space.text_words = 200;
  space.data_base = 0x1000'0000;
  space.data_words = 64;
  space.ioq_slots = 16;
  space.targets = {InjectTarget::kRegisterBit, InjectTarget::kInstructionWord,
                   InjectTarget::kDataWord, InjectTarget::kConfigBit};
  return space;
}

TEST(InjectionPlan, SameSeedAndIndexGiveIdenticalRecords) {
  const InjectionPlan a(1234, loop_space());
  const InjectionPlan b(1234, loop_space());
  for (u32 i = 0; i < 500; ++i) {
    EXPECT_EQ(a.record(i), b.record(i)) << "run " << i;
  }
}

TEST(InjectionPlan, RecordsAreIndependentOfQueryOrder) {
  const InjectionPlan plan(77, loop_space());
  const InjectionRecord forward = plan.record(3);
  plan.record(450);
  plan.record(0);
  EXPECT_EQ(plan.record(3), forward);
}

TEST(InjectionPlan, DifferentSeedsDiverge) {
  const InjectionPlan a(1, loop_space());
  const InjectionPlan b(2, loop_space());
  u32 differing = 0;
  for (u32 i = 0; i < 100; ++i) {
    if (!(a.record(i) == b.record(i))) ++differing;
  }
  EXPECT_GT(differing, 90u);
}

TEST(InjectionPlan, EveryRecordIsInsideTheSpace) {
  const InjectionSpace space = loop_space();
  const InjectionPlan plan(99, space);
  for (u32 i = 0; i < 2000; ++i) {
    const InjectionRecord r = plan.record(i);
    EXPECT_GE(r.inject_cycle, 1u);
    EXPECT_LE(r.inject_cycle, space.cycles);
    switch (r.target) {
      case InjectTarget::kRegisterBit:
        EXPECT_GE(r.reg, 1);  // never the hardwired zero register
        if (r.reg == kPcPseudoReg) {
          // Next-PC latch faults stay word-aligned and near-range.
          EXPECT_GE(r.bit, 2);
          EXPECT_LT(r.bit, 16);
        } else {
          EXPECT_LT(r.reg, space.num_regs);
          EXPECT_LT(r.bit, 32);
        }
        EXPECT_EQ(r.mask, Word{1} << r.bit);
        break;
      case InjectTarget::kInstructionWord:
        EXPECT_GE(r.addr, space.text_base);
        EXPECT_LT(r.addr, space.text_base + 4 * space.text_words);
        EXPECT_EQ(r.addr % 4, 0u);
        EXPECT_NE(r.mask, 0u);
        break;
      case InjectTarget::kDataWord:
        EXPECT_GE(r.addr, space.data_base);
        EXPECT_LT(r.addr, space.data_base + 4 * space.data_words);
        EXPECT_NE(r.mask, 0u);
        break;
      case InjectTarget::kConfigBit:
        if (r.config_kind == ConfigFaultKind::kIoqStuck) {
          EXPECT_LT(r.ioq_slot, space.ioq_slots);
          EXPECT_NE(r.ioq_fault, engine::IoqStuckFault::kNone);
        } else {
          EXPECT_NE(r.module_fault, engine::ModuleFaultMode::kNone);
        }
        break;
    }
  }
}

TEST(InjectionPlan, AllTargetClassesGetSampled) {
  const InjectionPlan plan(5, loop_space());
  std::set<InjectTarget> seen;
  for (u32 i = 0; i < 200; ++i) seen.insert(plan.record(i).target);
  EXPECT_EQ(seen.size(), kNumInjectTargets);
}

TEST(InjectionPlan, DataTargetRedirectsWhenWorkloadHasNoData) {
  InjectionSpace space = loop_space();
  space.data_words = 0;
  const InjectionPlan plan(5, space);
  for (u32 i = 0; i < 300; ++i) {
    EXPECT_NE(plan.record(i).target, InjectTarget::kDataWord);
  }
}

TEST(InjectionPlan, RestrictedTargetListIsHonoured) {
  InjectionSpace space = loop_space();
  space.targets = {InjectTarget::kInstructionWord};
  const InjectionPlan plan(11, space);
  for (u32 i = 0; i < 100; ++i) {
    EXPECT_EQ(plan.record(i).target, InjectTarget::kInstructionWord);
  }
}

TEST(InjectionPlan, RejectsDegenerateSpaces) {
  InjectionSpace no_cycles = loop_space();
  no_cycles.cycles = 0;
  EXPECT_THROW(InjectionPlan(1, no_cycles), ConfigError);

  InjectionSpace no_targets = loop_space();
  no_targets.targets.clear();
  EXPECT_THROW(InjectionPlan(1, no_targets), ConfigError);
}

TEST(InjectionTarget, NamesRoundTrip) {
  for (unsigned t = 0; t < kNumInjectTargets; ++t) {
    const auto target = static_cast<InjectTarget>(t);
    InjectTarget parsed;
    ASSERT_TRUE(parse_target(to_string(target), &parsed));
    EXPECT_EQ(parsed, target);
  }
  InjectTarget parsed;
  EXPECT_FALSE(parse_target("bogus", &parsed));
}

}  // namespace
}  // namespace rse::campaign
