// CampaignRunner end-to-end: classification totals, campaign-level
// determinism (same seed twice; --jobs 1 vs --jobs N), golden-run caching,
// and single-run reproduction of a parallel campaign's results.
#include <gtest/gtest.h>

#include "campaign/runner.hpp"

namespace rse::campaign {
namespace {

CampaignSpec loop_spec(u32 runs = 24, u32 jobs = 1) {
  CampaignSpec spec;
  spec.workload = "loop";
  spec.runs = runs;
  spec.seed = 2026;
  spec.jobs = jobs;
  return spec;
}

TEST(CampaignRunner, EveryRunLandsInExactlyOneBucket) {
  CampaignRunner runner;
  const CampaignReport report = runner.run(loop_spec());
  ASSERT_EQ(report.results.size(), 24u);
  u32 total = 0;
  for (unsigned o = 0; o < kNumOutcomes; ++o) total += report.by_outcome[o];
  EXPECT_EQ(total, 24u);
  u32 per_target_total = 0;
  for (unsigned t = 0; t < kNumInjectTargets; ++t) per_target_total += report.by_target_runs[t];
  EXPECT_EQ(per_target_total, 24u);
  // Results stay in run-index order no matter how they were scheduled.
  for (u32 i = 0; i < report.results.size(); ++i) {
    EXPECT_EQ(report.results[i].record.run_index, i);
  }
}

TEST(CampaignRunner, SameSpecTwiceIsByteIdentical) {
  CampaignRunner runner;
  const CampaignReport a = runner.run(loop_spec());
  const CampaignReport b = runner.run(loop_spec());
  ASSERT_EQ(a.results.size(), b.results.size());
  for (u32 i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].record, b.results[i].record) << "run " << i;
    EXPECT_EQ(a.results[i].outcome, b.results[i].outcome) << "run " << i;
    EXPECT_EQ(a.results[i].cycles, b.results[i].cycles) << "run " << i;
  }
  EXPECT_EQ(deterministic_digest(a), deterministic_digest(b));
}

TEST(CampaignRunner, JobCountDoesNotChangeTheReport) {
  CampaignRunner runner;
  const CampaignReport serial = runner.run(loop_spec(24, 1));
  const CampaignReport parallel = runner.run(loop_spec(24, 8));
  EXPECT_EQ(deterministic_digest(serial), deterministic_digest(parallel));
  EXPECT_EQ(serial.by_outcome, parallel.by_outcome);
  EXPECT_EQ(serial.by_target_outcome, parallel.by_target_outcome);
}

TEST(CampaignRunner, GoldenRunIsSimulatedOnceAcrossCampaigns) {
  GoldenCache cache;
  CampaignRunner runner(&cache);
  runner.run(loop_spec(4, 1));
  EXPECT_EQ(cache.misses(), 1u);
  runner.run(loop_spec(4, 2));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_GE(cache.hits(), 1u);
}

TEST(CampaignRunner, SingleRunReproducesCampaignResult) {
  CampaignRunner runner;
  const CampaignSpec spec = loop_spec(12, 4);
  const CampaignReport report = runner.run(spec);

  const WorkloadSetup setup = make_workload(spec.workload);
  const auto golden = runner.cache().get(setup);
  const InjectionPlan plan = runner.plan_for(spec, *golden, setup);
  for (const u32 index : {0u, 5u, 11u}) {
    const RunResult replay = runner.run_one(setup, *golden, plan.record(index));
    EXPECT_EQ(replay.record, report.results[index].record);
    EXPECT_EQ(replay.outcome, report.results[index].outcome);
    EXPECT_EQ(replay.cycles, report.results[index].cycles);
  }
}

TEST(CampaignRunner, ClassifiesFaultsIntoMultipleBuckets) {
  // 64 runs over all four target classes must produce a non-trivial outcome
  // mix: at least some masked runs and at least some unmasked ones.
  CampaignRunner runner;
  const CampaignReport report = runner.run(loop_spec(64, 2));
  EXPECT_GT(report.by_outcome[static_cast<unsigned>(Outcome::kMasked)], 0u);
  EXPECT_GT(report.unmasked(), 0u);
  EXPECT_GT(report.faults_applied, 0u);
}

TEST(CampaignRunner, ConfigFaultsReachTheSelfCheckPath) {
  // Restricting the campaign to config-bit faults (IOQ stuck-at + module
  // behaviour modes) must exercise detection or at worst masking — a config
  // fault cannot silently corrupt the program's own data.
  CampaignSpec spec = loop_spec(32, 2);
  spec.targets = {InjectTarget::kConfigBit};
  CampaignRunner runner;
  const CampaignReport report = runner.run(spec);
  EXPECT_EQ(report.by_outcome[static_cast<unsigned>(Outcome::kSdc)], 0u);
  EXPECT_EQ(report.results.size(), 32u);
}

TEST(CampaignRunner, RunsCsvAndJsonExport) {
  CampaignRunner runner;
  const CampaignReport report = runner.run(loop_spec(8, 2));
  const std::string csv_path = ::testing::TempDir() + "campaign_runs.csv";
  ASSERT_TRUE(write_runs_csv(report, csv_path));

  const std::string json = to_json(report);
  EXPECT_NE(json.find("\"workload\": \"loop\""), std::string::npos);
  EXPECT_NE(json.find("\"outcomes\""), std::string::npos);
  EXPECT_NE(json.find("\"coverage\""), std::string::npos);

  const std::string summary = summary_text(report);
  EXPECT_NE(summary.find("detection coverage"), std::string::npos);
  EXPECT_NE(summary.find("runs/sec"), std::string::npos);
}

TEST(CampaignRunner, FastForwardLeavesEveryClassifiedOutcomeUnchanged) {
  // --fast-forward replays each eligible run's fault-free prefix through the
  // exec/ fast engine and transplants into the cycle-accurate core at the
  // injection cycle.  Classification must be bit-identical: same outcome for
  // every run index, and therefore the same deterministic digest.
  CampaignRunner runner;
  const CampaignSpec classic_spec = loop_spec(48, 2);
  CampaignSpec ff_spec = classic_spec;
  ff_spec.fast_forward = true;

  const CampaignReport classic = runner.run(classic_spec);
  const CampaignReport ff = runner.run(ff_spec);
  EXPECT_EQ(deterministic_digest(ff), deterministic_digest(classic));
  ASSERT_EQ(ff.results.size(), classic.results.size());
  for (u32 i = 0; i < classic.results.size(); ++i) {
    EXPECT_EQ(ff.results[i].record, classic.results[i].record) << "run " << i;
    EXPECT_EQ(ff.results[i].outcome, classic.results[i].outcome) << "run " << i;
    EXPECT_EQ(ff.results[i].fault_applied, classic.results[i].fault_applied) << "run " << i;
  }
}

TEST(CampaignRunner, FastForwardRegisterOnlyCampaignMatchesClassic) {
  // Register-bit faults are the fast-forwardable class — every eligible run
  // actually takes the fast path here, so this pins the switchover itself.
  CampaignRunner runner;
  CampaignSpec classic_spec = loop_spec(32, 2);
  classic_spec.targets = {InjectTarget::kRegisterBit};
  CampaignSpec ff_spec = classic_spec;
  ff_spec.fast_forward = true;
  const CampaignReport classic = runner.run(classic_spec);
  const CampaignReport ff = runner.run(ff_spec);
  EXPECT_EQ(deterministic_digest(ff), deterministic_digest(classic));
}

TEST(GoldenCache, DistinctWorkloadsGetDistinctGoldenRuns) {
  GoldenCache cache;
  const auto loop = cache.get(make_workload("loop"));
  const auto kmeans = cache.get(make_workload("kmeans"));
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_NE(loop->cycles, kmeans->cycles);
  EXPECT_EQ(loop->exit_code, 0);
  EXPECT_EQ(kmeans->exit_code, 0);
  EXPECT_FALSE(loop->output.empty());
}

}  // namespace
}  // namespace rse::campaign
