// Detect/miss golden matrix for the security attack corpus
// (src/workloads/attacks.cpp, docs/security.md): every scenario is run
// fault-free under each protection configuration and the *measured* outcome
// is pinned as a fixture — which module fires, what the guest still managed
// to print before containment (the latency class), and which scenarios
// escape.  A regression in any module's detection surface moves a cell and
// fails here.
//
// The DME rows use rse/dme.hpp directly: two recorded variants under
// distinct MLR seeds, compared canonically.  attack-heap is the
// DME-alone scenario — every per-module row below is a miss, only the
// cross-variant trace diff sees the wild store move.
#include <gtest/gtest.h>

#include <string>

#include "../support/sim_runner.hpp"
#include "campaign/runner.hpp"
#include "campaign/workload.hpp"
#include "isa/assembler.hpp"
#include "modules/cfc/cfc.hpp"
#include "modules/ddt/ddt.hpp"
#include "modules/icm/icm.hpp"
#include "rse/dme.hpp"
#include "workloads/workloads.hpp"

namespace rse::campaign {
namespace {

// One protection configuration — a column of the matrix.  Every run is
// instrumented (workloads::instrument_checks), so the ICM is active in all
// columns; the flags layer the other modules on top, mirroring rse_run.
struct Column {
  const char* name;
  bool cfc = false;         // range CFC (text-segment landing check)
  bool static_cfc = false;  // CFC with the analyzer's successor table
  bool static_ddt = false;  // DDT with the static page footprint
  bool randomize = false;   // MLR layout randomization
};

constexpr Column kUnprotected{"unprotected"};
constexpr Column kRangeCfc{"range-cfc", /*cfc=*/true};
constexpr Column kStaticCfc{"static-cfc", false, /*static_cfc=*/true};
constexpr Column kStaticDdt{"static-ddt", false, false, /*static_ddt=*/true};
constexpr Column kMlr{"mlr", false, false, false, /*randomize=*/true};

// What one fault-free run measured — a cell of the matrix.
struct Cell {
  std::string output;
  int exit_code = 0;
  bool finished = false;
  u64 crashes = 0;
  u64 cfc_violations = 0;
  u64 cfc_static_checks = 0;
  u64 cfc_range_checks = 0;
  u64 ddt_footprint_violations = 0;
  u64 icm_mismatches = 0;
};

Cell run_cell(const std::string& source, const Column& column, u64 mlr_seed = 0x4D4C52) {
  os::MachineConfig machine_config;
  machine_config.framework_present = true;
  machine_config.mlr.seed = mlr_seed;
  os::OsConfig os_config;
  os_config.static_cfc = column.static_cfc;
  os_config.static_ddt = column.static_ddt;
  os_config.randomize_layout = column.randomize;
  testing::SimRunner runner(machine_config, os_config);
  runner.load_source(workloads::instrument_checks(source));
  if (column.cfc || column.static_cfc) runner.os().enable_module(isa::ModuleId::kCfc);
  if (column.static_ddt) runner.os().enable_module(isa::ModuleId::kDdt);
  runner.run();

  Cell cell;
  cell.output = runner.os().output();
  cell.exit_code = runner.os().exit_code();
  cell.finished = runner.os().finished();
  cell.crashes = runner.os().stats().crashes;
  if (const auto* cfc = runner.machine().cfc()) {
    cell.cfc_violations = cfc->stats().violations;
    cell.cfc_static_checks = cfc->stats().indirect_static_checks;
    cell.cfc_range_checks = cfc->stats().indirect_range_checks;
  }
  if (const auto* ddt = runner.machine().ddt()) {
    cell.ddt_footprint_violations = ddt->stats().footprint_violations;
  }
  if (const auto* icm = runner.machine().icm()) {
    cell.icm_mismatches = icm->stats().mismatches;
  }
  return cell;
}

/// A silent cell: the scenario ran to completion with no module evidence.
void expect_silent(const Cell& cell, const std::string& output, int exit_code,
                   const std::string& where) {
  EXPECT_TRUE(cell.finished) << where;
  EXPECT_EQ(cell.output, output) << where;
  EXPECT_EQ(cell.exit_code, exit_code) << where;
  EXPECT_EQ(cell.crashes, 0u) << where;
  EXPECT_EQ(cell.cfc_violations, 0u) << where;
  EXPECT_EQ(cell.ddt_footprint_violations, 0u) << where;
  EXPECT_EQ(cell.icm_mismatches, 0u) << where;
}

// ---- stack smash: return-address overwrite --------------------------------
//
// Matrix row: hijack succeeds silently ('!' / exit 7) in every column except
// static CFC, whose successor table knows worker's only legal return site.
// Latency class: the violation fires at the corrupted transfer, but
// containment is post-landing — the privileged marker still prints before
// the kill, so static CFC *detects* the hijack without preventing it.

TEST(AttackMatrix, StackSmashEscapesEverythingButStaticCfc) {
  const std::string atk = workloads::stack_smash_source({});
  for (const Column& column : {kUnprotected, kStaticDdt, kMlr}) {
    expect_silent(run_cell(atk, column), "!", 7, std::string("attack-stack/") + column.name);
  }
  // Range CFC is consulted and fooled: the hijacked landing is still text.
  const Cell range = run_cell(atk, kRangeCfc);
  EXPECT_EQ(range.output, "!");
  EXPECT_EQ(range.exit_code, 7);
  EXPECT_EQ(range.cfc_violations, 0u) << "range CFC must accept a text landing";
  EXPECT_GT(range.cfc_range_checks, 0u) << "the hijacked return was never range-checked";
}

TEST(AttackMatrix, StackSmashDetectedByStaticCfc) {
  const Cell cell = run_cell(workloads::stack_smash_source({}), kStaticCfc);
  EXPECT_GE(cell.cfc_violations, 1u) << "successor table missed the hijacked return";
  EXPECT_GT(cell.cfc_static_checks, 0u);
  EXPECT_GE(cell.crashes, 1u) << "detection must contain (kill) the hijacked thread";
  // Latency class pin: detection is at-transfer but containment is
  // post-landing — the privileged marker already printed.
  EXPECT_EQ(cell.output, "!");
}

TEST(AttackMatrix, BenignStackTwinIsCleanEverywhere) {
  const std::string ben = workloads::stack_smash_source({/*payload_offset=*/8});
  for (const Column& column : {kUnprotected, kRangeCfc, kStaticCfc, kStaticDdt, kMlr}) {
    expect_silent(run_cell(ben, column), "n", 0, std::string("benign-stack/") + column.name);
  }
}

// ---- GOT overwrite: function-pointer table clobber ------------------------
//
// Matrix row: MLR's own target class.  The wild store lands on the table's
// *default-layout* address; every module column misses (the dispatch lands
// on `privileged`, which is address-taken, so even the static successor
// table admits it — coarse CFI's documented blind spot).  Under MLR the
// table moves and the attack writes into unused heap: the dispatch runs the
// intact entry ('bn' / exit 0).  Latency class: preemptive — MLR foils the
// hijack before any corrupted transfer exists.

TEST(AttackMatrix, GotOverwriteHijacksEveryNonRandomizedColumn) {
  const std::string atk = workloads::got_overwrite_source({});
  for (const Column& column : {kUnprotected, kRangeCfc, kStaticDdt}) {
    expect_silent(run_cell(atk, column), "!", 7, std::string("attack-got/") + column.name);
  }
  // Static CFC consults the table and still admits the landing: privileged
  // is address-taken (its address is the payload in .data), so coarse CFI
  // cannot tell the hijack from a legal indirect call.
  const Cell cfc = run_cell(atk, kStaticCfc);
  EXPECT_EQ(cfc.output, "!");
  EXPECT_EQ(cfc.exit_code, 7);
  EXPECT_EQ(cfc.cfc_violations, 0u);
  EXPECT_GT(cfc.cfc_static_checks, 0u) << "the hijacked dispatch was never table-checked";
}

TEST(AttackMatrix, GotOverwriteFoiledByMlr) {
  for (const u64 seed : {u64{0x4D4C52}, u64{7}, u64{1234}}) {
    const Cell cell = run_cell(workloads::got_overwrite_source({}), kMlr, seed);
    EXPECT_TRUE(cell.finished) << "seed " << seed;
    EXPECT_EQ(cell.output, "bn") << "seed " << seed << ": hijack not foiled";
    EXPECT_EQ(cell.exit_code, 0) << "seed " << seed;
    EXPECT_EQ(cell.crashes, 0u) << "seed " << seed;
  }
}

TEST(AttackMatrix, BenignGotTwinRepointsLegallyEverywhere) {
  // The twin re-points its own table entry through the allocation pointer —
  // reaching `privileged` IS its correct behavior, under MLR too (no false
  // foil: the legal write tracks the randomized base).
  const std::string ben = workloads::got_overwrite_source({/*wild=*/false});
  for (const Column& column : {kUnprotected, kRangeCfc, kStaticCfc, kStaticDdt, kMlr}) {
    const Cell cell = run_cell(ben, column);
    EXPECT_TRUE(cell.finished) << column.name;
    EXPECT_EQ(cell.output, "!") << column.name;
    EXPECT_EQ(cell.exit_code, 7) << column.name;
    EXPECT_EQ(cell.cfc_violations, 0u) << column.name;
    EXPECT_EQ(cell.crashes, 0u) << column.name;
  }
}

// ---- heap spray: wild-pointer corruption ----------------------------------
//
// Matrix row: every module column is a silent miss — the poison lands in
// the guest's own arena, so there is no illegal transfer, no footprint
// escape at a resolved site, no patched text.  Only the checksum differs
// between the attack and its twin.  The detect cell lives in the DME rows
// below: under small MLR entropy the wild store hits a seed-dependent arena
// word, and the cross-variant trace diff flags the first divergent load.

TEST(AttackMatrix, HeapSprayEscapesEveryModuleColumn) {
  const std::string atk = workloads::heap_spray_source({});
  const std::string ben = workloads::heap_spray_source({/*wild=*/false});
  for (const Column& column : {kUnprotected, kRangeCfc, kStaticCfc, kStaticDdt}) {
    expect_silent(run_cell(atk, column), "25774553", 0,
                  std::string("attack-heap/") + column.name);
    expect_silent(run_cell(ben, column), "25778585", 0,
                  std::string("benign-heap/") + column.name);
  }
}

// ---- CHK bypass: enter one instruction past the ICM CHECK -----------------
//
// Matrix row: the pinned ICM miss.  The guest patches a *checked* text word
// but enters past the CHECK, so the comparison never runs — the hostile
// patch executes silently ('666').  The control cell goes *through* the
// CHECK: the ICM compares the patched word against its load-time copy and
// kills the thread before the gate's print (empty output — detection ahead
// of any side effect).

TEST(AttackMatrix, ChkBypassEscapesEveryColumn) {
  const std::string atk = workloads::chk_bypass_source({});
  for (const Column& column : {kUnprotected, kRangeCfc, kStaticCfc, kStaticDdt, kMlr}) {
    const Cell cell = run_cell(atk, column);
    const std::string where = std::string("attack-chk/") + column.name;
    EXPECT_TRUE(cell.finished) << where;
    EXPECT_EQ(cell.output, "666") << where;
    EXPECT_EQ(cell.exit_code, 0) << where;
    EXPECT_EQ(cell.crashes, 0u) << where;
    EXPECT_EQ(cell.cfc_violations, 0u) << where;
    EXPECT_EQ(cell.ddt_footprint_violations, 0u) << where;
    // Stat-only evidence, never containment: sequential fetch runs onto the
    // skipped gate CHECK down a wrong path, so the ICM compares the patched
    // word and logs a mismatch — but the CHECK is squashed before commit,
    // its IOQ slot is freed, and no check error is ever raised.  The bypass
    // is architecturally a silent miss (the pinned ICM escape).
    EXPECT_EQ(cell.icm_mismatches, 1u) << where;
  }
}

TEST(AttackMatrix, ChkThroughGateDetectedByIcm) {
  workloads::ChkBypassParams through;
  through.bypass = false;  // enter via the CHECK, hostile patch in place
  const Cell cell = run_cell(workloads::chk_bypass_source(through), kUnprotected);
  EXPECT_GE(cell.icm_mismatches, 1u) << "ICM never compared the patched gate";
  EXPECT_GE(cell.crashes, 1u);
  EXPECT_EQ(cell.output, "") << "containment must precede the gate's print";
}

TEST(AttackMatrix, BenignChkTwinIsCleanEverywhere) {
  workloads::ChkBypassParams benign;
  benign.bypass = false;
  benign.hostile_patch = false;  // bit-identical patch through the CHECK
  const std::string ben = workloads::chk_bypass_source(benign);
  for (const Column& column : {kUnprotected, kRangeCfc, kStaticCfc, kStaticDdt, kMlr}) {
    expect_silent(run_cell(ben, column), "7", 0, std::string("benign-chk/") + column.name);
  }
}

// ---- DME rows -------------------------------------------------------------

dme::DmeResult dme_row(const char* workload, u64 seed_a, u64 seed_b) {
  const WorkloadSetup setup = make_workload(workload);
  const isa::Program program = isa::assemble(setup.source);
  const dme::VariantSpec variant_b{setup.machine, setup.os, setup.host_enables, seed_b};
  const dme::RecordedTrace reference = dme::record_trace(variant_b, program);
  const dme::VariantSpec variant_a{setup.machine, setup.os, setup.host_enables, seed_a};
  const dme::RecordedTrace run = dme::record_trace(variant_a, program);
  EXPECT_TRUE(run.finished) << workload;
  EXPECT_TRUE(reference.finished) << workload;
  return dme::compare_traces(run, reference.trace);
}

TEST(AttackMatrix, DmeAloneDetectsTheHeapSpray) {
  // The DME-alone cell: under the workload's entropy_pages = 4 the wild
  // store lands on a different arena word per seed, so the first divergent
  // canonical record is the checksum loop's load of the poisoned word.
  const dme::DmeResult attack = dme_row("attack-heap", 1, 2);
  EXPECT_EQ(attack.divergences, 1u)
      << "attack-heap must diverge across MLR variants (the DME-alone detect)";
  // The twin's poison is arena-relative: identical canonical traces.
  const dme::DmeResult benign = dme_row("benign-heap", 1, 2);
  EXPECT_EQ(benign.divergences, 0u)
      << "benign-heap falsely diverged at record " << benign.first_divergence;
}

TEST(AttackMatrix, LayoutIndependentScenariosStayConvergent) {
  // Scenarios whose behavior does not depend on the randomized layout are
  // DME misses — pinned so a canonicalization regression (spurious
  // divergence on stack/heap traffic) is caught immediately.
  for (const char* workload : {"attack-stack", "benign-stack", "attack-chk", "benign-chk"}) {
    const dme::DmeResult result = dme_row(workload, 1, 2);
    EXPECT_EQ(result.divergences, 0u)
        << workload << " falsely diverged at record " << result.first_divergence;
  }
}

TEST(AttackMatrix, GotScenariosConvergeUnderDme) {
  // Both variants randomize, so the wild store misses the table in both and
  // the dispatch runs the intact entry — same canonical behavior, DME miss
  // (MLR already foiled the attack preemptively).
  EXPECT_EQ(dme_row("attack-got", 1, 2).divergences, 0u);
  EXPECT_EQ(dme_row("benign-got", 1, 2).divergences, 0u);
}

// ---- campaign integration -------------------------------------------------

TEST(AttackMatrix, AllCorpusWorkloadsRunUnderDmeCampaigns) {
  CampaignRunner runner;
  for (const char* workload : {"attack-stack", "benign-stack", "attack-got", "benign-got",
                               "attack-heap", "benign-heap", "attack-chk", "benign-chk"}) {
    CampaignSpec spec;
    spec.workload = workload;
    spec.runs = 4;
    spec.seed = 7;
    spec.jobs = 2;
    spec.dme = true;
    const CampaignReport report = runner.run(spec);
    u32 total = 0;
    for (const u32 count : report.by_outcome) total += count;
    EXPECT_EQ(total, spec.runs) << workload << ": campaign lost runs under --dme";
  }
}

}  // namespace
}  // namespace rse::campaign
