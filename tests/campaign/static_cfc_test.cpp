// Static CFC successor table end-to-end: the loader precomputes per-block
// legal-successor sets (OsConfig::static_cfc) and the CFC tightens its
// indirect-jump check from "lands in text" to "lands in the static target
// set".  These tests pin both directions: no false positives on clean runs,
// and detection of in-text return-target corruption the range check misses.
#include <gtest/gtest.h>

#include "campaign/runner.hpp"
#include "isa/assembler.hpp"
#include "os/guest_os.hpp"
#include "os/machine.hpp"

namespace rse::campaign {
namespace {

/// Run a workload fault-free with the static successor table installed.
void run_clean(const WorkloadSetup& setup) {
  os::OsConfig os_config = setup.os;
  os_config.static_cfc = true;
  os::Machine machine(setup.machine);
  os::GuestOs guest(machine, os_config);
  guest.load(isa::assemble(setup.source));
  for (isa::ModuleId id : setup.host_enables) guest.enable_module(id);
  guest.run();

  EXPECT_TRUE(guest.finished()) << setup.name << " did not finish";
  ASSERT_NE(machine.cfc(), nullptr);
  EXPECT_EQ(machine.cfc()->stats().violations, 0u)
      << setup.name << ": static successor table false-positived on a clean run";
  EXPECT_GT(machine.cfc()->stats().transitions_checked, 0u);
  ASSERT_NE(guest.program_analysis(), nullptr);
  EXPECT_FALSE(guest.program_analysis()->has_errors());
}

TEST(StaticCfcTest, CleanRunsProduceNoViolations) {
  for (const char* name : {"loop", "calls", "kmeans"}) {
    run_clean(make_workload(name));
  }
}

TEST(StaticCfcTest, CallsWorkloadExercisesTheStaticPath) {
  const WorkloadSetup setup = make_workload("calls");
  os::OsConfig os_config = setup.os;
  os_config.static_cfc = true;
  os::Machine machine(setup.machine);
  os::GuestOs guest(machine, os_config);
  guest.load(isa::assemble(setup.source));
  for (isa::ModuleId id : setup.host_enables) guest.enable_module(id);
  guest.run();

  ASSERT_TRUE(guest.finished());
  // Every `jr $ra` commit must have consulted the table, never the fallback:
  // the calls workload's returns all resolve statically.
  EXPECT_GT(machine.cfc()->stats().indirect_static_checks, 0u);
  EXPECT_EQ(machine.cfc()->stats().indirect_range_checks, 0u);
  EXPECT_EQ(machine.cfc()->stats().violations, 0u);
}

TEST(StaticCfcTest, WithoutTheTableTheCfcFallsBackToRangeChecks) {
  const WorkloadSetup setup = make_workload("calls");
  os::Machine machine(setup.machine);
  os::GuestOs guest(machine, setup.os);  // static_cfc defaults off
  guest.load(isa::assemble(setup.source));
  for (isa::ModuleId id : setup.host_enables) guest.enable_module(id);
  guest.run();

  ASSERT_TRUE(guest.finished());
  EXPECT_EQ(guest.program_analysis(), nullptr);
  EXPECT_EQ(machine.cfc()->stats().indirect_static_checks, 0u);
  EXPECT_GT(machine.cfc()->stats().indirect_range_checks, 0u);
}

// The coverage claim: sweep one-shot next-PC-latch faults (the corrupted
// control transfer stays inside text) across the run and compare outcomes
// with and without the static table.  The table must detect strictly more,
// and specifically detect faults the range check classified as something
// other than a CFC hit.
TEST(StaticCfcTest, DetectsInTextReturnCorruptionRangeCheckMisses) {
  CampaignRunner runner;
  const WorkloadSetup base = make_workload("calls");
  WorkloadSetup tight = base;
  tight.os.static_cfc = true;

  const auto golden_base = runner.cache().get(base);
  const auto golden_tight = runner.cache().get(tight);
  ASSERT_EQ(golden_base->cycles, golden_tight->cycles)
      << "the successor table must not perturb fault-free execution";

  InjectionRecord record;
  record.target = InjectTarget::kRegisterBit;
  record.reg = kPcPseudoReg;
  record.mask = 0x8;  // 8 bytes off target: always inside text on this workload

  u32 base_detected = 0, tight_detected = 0, gap = 0, injected = 0;
  for (Cycle cycle = 20; cycle + 20 < golden_base->cycles; cycle += 16) {
    record.inject_cycle = cycle;
    const RunResult rb = runner.run_one(base, *golden_base, record);
    const RunResult rt = runner.run_one(tight, *golden_tight, record);
    ASSERT_EQ(rb.fault_applied, rt.fault_applied);
    if (!rb.fault_applied) continue;
    ++injected;
    if (rb.outcome == Outcome::kDetectedCfc) ++base_detected;
    if (rt.outcome == Outcome::kDetectedCfc) {
      ++tight_detected;
      if (rb.outcome != Outcome::kDetectedCfc) ++gap;
    }
  }

  ASSERT_GT(injected, 10u);
  EXPECT_GT(tight_detected, base_detected);
  EXPECT_GT(gap, 0u) << "no fault was caught by the static table alone";
  // Direct-branch corruption is caught either way, so the baseline must not
  // out-detect the table anywhere (a regression would show up here first).
  EXPECT_GE(tight_detected, base_detected + gap);
}

TEST(StaticCfcTest, CampaignDigestRecordsTheMode) {
  CampaignRunner runner;
  CampaignSpec spec;
  spec.workload = "calls";
  spec.runs = 16;
  spec.seed = 11;
  spec.jobs = 1;
  const CampaignReport range_report = runner.run(spec);
  spec.static_cfc = true;
  const CampaignReport static_report = runner.run(spec);

  EXPECT_NE(deterministic_digest(range_report), deterministic_digest(static_report));
  EXPECT_NE(deterministic_digest(static_report).find("static-cfc"), std::string::npos);
  EXPECT_NE(to_json(static_report).find("\"static_cfc\": true"), std::string::npos);
}

}  // namespace
}  // namespace rse::campaign
