// Wilson score interval and sequential-refinement predicate unit tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "campaign/stats.hpp"

using namespace rse;
using campaign::kNumOutcomes;
using campaign::straddles;
using campaign::strata_needing_refinement;
using campaign::wilson_interval;
using campaign::WilsonInterval;

namespace {

TEST(WilsonIntervalTest, MatchesClosedFormAtZ95) {
  // Hand-computed Wilson bounds for p = 30/100 at z = 1.95996...:
  // center = (p + z^2/2n) / (1 + z^2/n), half = z/(1+z^2/n) *
  // sqrt(p(1-p)/n + z^2/4n^2) -> [0.218949, 0.395849].
  const WilsonInterval ci = wilson_interval(30, 100);
  EXPECT_NEAR(ci.low, 0.218949, 1e-5);
  EXPECT_NEAR(ci.high, 0.395849, 1e-5);
  EXPECT_NEAR(ci.center, (ci.low + ci.high) / 2.0, 1e-12);
  // The adjusted center is pulled toward 1/2 relative to the raw p.
  EXPECT_GT(ci.center, 0.30);
}

TEST(WilsonIntervalTest, ZeroHitsIsDegenerateButHonest) {
  // 0/n: the lower bound collapses to exactly 0 but the upper bound stays
  // strictly positive — the "rule of three" regime Wald gets wrong.
  const WilsonInterval ci = wilson_interval(0, 50);
  EXPECT_DOUBLE_EQ(ci.low, 0.0);
  EXPECT_GT(ci.high, 0.0);
  EXPECT_NEAR(ci.high, 0.0713, 1e-3);  // z^2 / (n + z^2)
}

TEST(WilsonIntervalTest, AllHitsMirrorsZeroHits) {
  const WilsonInterval all = wilson_interval(50, 50);
  const WilsonInterval none = wilson_interval(0, 50);
  EXPECT_DOUBLE_EQ(all.high, 1.0);
  EXPECT_LT(all.low, 1.0);
  // Symmetry: the interval for n/n is the mirror image of 0/n.
  EXPECT_NEAR(all.low, 1.0 - none.high, 1e-12);
}

TEST(WilsonIntervalTest, NoTrialsIsVacuous) {
  const WilsonInterval ci = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(ci.low, 0.0);
  EXPECT_DOUBLE_EQ(ci.high, 1.0);
}

TEST(WilsonIntervalTest, WidthShrinksWithSampleSize) {
  double previous_width = 1.0;
  for (const u32 n : {10u, 40u, 160u, 640u}) {
    const WilsonInterval ci = wilson_interval(n / 4, n);
    const double width = ci.high - ci.low;
    EXPECT_LT(width, previous_width) << n;
    previous_width = width;
  }
}

TEST(WilsonIntervalTest, BoundsAlwaysClampToUnitInterval) {
  for (u32 total : {1u, 2u, 5u, 100u}) {
    for (u32 hits = 0; hits <= total; ++hits) {
      const WilsonInterval ci = wilson_interval(hits, total);
      EXPECT_GE(ci.low, 0.0);
      EXPECT_LE(ci.high, 1.0);
      EXPECT_LE(ci.low, ci.high);
      // The raw proportion always lies inside the interval.
      const double p = static_cast<double>(hits) / total;
      EXPECT_LE(ci.low, p + 1e-12);
      EXPECT_GE(ci.high, p - 1e-12);
    }
  }
}

TEST(StraddlesTest, ThresholdInsideOutsideAndOnTheBoundary) {
  const WilsonInterval ci = wilson_interval(30, 100);  // ~[0.219, 0.395]
  EXPECT_TRUE(straddles(ci, 0.30));
  EXPECT_FALSE(straddles(ci, 0.10));  // clearly below the interval
  EXPECT_FALSE(straddles(ci, 0.50));  // clearly above
  // Exactly on a bound: resolved, not straddling (strict inequalities).
  EXPECT_FALSE(straddles(ci, ci.low));
  EXPECT_FALSE(straddles(ci, ci.high));
}

TEST(RefinementTest, StopsWhenEveryStratumResolves) {
  // 1000 runs: every stratum is either far above or far below a 5%
  // threshold, so nothing needs refinement.
  std::array<u32, kNumOutcomes> by_outcome{};
  by_outcome[0] = 800;  // 80% — lower bound far above 5%
  by_outcome[5] = 200;  // 20% — same
  EXPECT_TRUE(strata_needing_refinement(by_outcome, 1000, 0.05).empty());
}

TEST(RefinementTest, FlagsExactlyTheStraddlingStrata) {
  // 40 runs: 2 hits (5%) in stratum 5 straddles a 5% threshold; 38 hits in
  // stratum 0 is far above it; empty strata have upper bound z^2/(n+z^2)
  // ~ 8.8% > 5%, so they straddle too — they genuinely are unresolved at
  // this sample size.
  std::array<u32, kNumOutcomes> by_outcome{};
  by_outcome[0] = 38;
  by_outcome[5] = 2;
  const std::vector<unsigned> strata = strata_needing_refinement(by_outcome, 40, 0.05);
  EXPECT_TRUE(std::find(strata.begin(), strata.end(), 5u) != strata.end());
  EXPECT_TRUE(std::find(strata.begin(), strata.end(), 0u) == strata.end());
  EXPECT_TRUE(std::find(strata.begin(), strata.end(), 1u) != strata.end());
}

TEST(RefinementTest, EmptyStrataResolveOnceTheSampleIsLargeEnough) {
  // With enough total runs, a zero-hit stratum's upper bound drops below
  // the threshold and it stops demanding runs: 0/200 -> high ~ 1.9% < 5%.
  std::array<u32, kNumOutcomes> by_outcome{};
  by_outcome[0] = 200;
  const std::vector<unsigned> strata = strata_needing_refinement(by_outcome, 200, 0.05);
  EXPECT_TRUE(std::find(strata.begin(), strata.end(), 1u) == strata.end());
}

TEST(RefinementTest, ZeroTotalDemandsEverything) {
  // No data: every stratum's interval is [0, 1], which straddles any
  // interior threshold.
  std::array<u32, kNumOutcomes> by_outcome{};
  EXPECT_EQ(strata_needing_refinement(by_outcome, 0, 0.05).size(), kNumOutcomes);
}

}  // namespace
