// Determinism harness for the checkpoint-fork campaign engine and
// multi-process sharding (docs/campaigns.md):
//  - checkpoint-fork campaigns must reproduce the from-reset campaign
//    byte-for-byte — deterministic digest AND the per-run CSV (outcomes,
//    fault_applied, per-run cycle counts) — on real workloads;
//  - merging shard reports must reproduce the unsharded digest for any
//    shard count x jobs combination, through the text round trip;
//  - the digest and golden-cache keys must see exactly the right spec
//    fields: execution-strategy knobs (snapshot_fork, buckets, shard
//    coordinates, jobs, fast_forward) stay out, run-set knobs (window,
//    ci_threshold) go in.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/shard.hpp"
#include "campaign/stats.hpp"
#include "common/error.hpp"

using namespace rse;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

campaign::CampaignSpec small_spec(const std::string& workload, u32 runs) {
  campaign::CampaignSpec spec;
  spec.workload = workload;
  spec.runs = runs;
  spec.seed = 5;
  spec.jobs = 2;
  return spec;
}

class ForkShardTest : public ::testing::Test {
 protected:
  campaign::GoldenCache cache_;
  campaign::CampaignRunner runner_{&cache_};
};

TEST_F(ForkShardTest, ForkedCampaignIsByteIdenticalToFromResetOnKmeans) {
  campaign::CampaignSpec spec = small_spec("kmeans", 32);
  const campaign::CampaignReport classic = runner_.run(spec);
  spec.snapshot_fork = true;
  const campaign::CampaignReport forked = runner_.run(spec);

  EXPECT_EQ(campaign::deterministic_digest(classic), campaign::deterministic_digest(forked));
  // Byte identity extends to the per-run CSV: outcome, fault_applied, and
  // per-run cycle counts all survive forking (exact chains only — the
  // snapshot restores the precise microarchitectural state).
  const std::string classic_csv = ::testing::TempDir() + "/classic_kmeans.csv";
  const std::string forked_csv = ::testing::TempDir() + "/forked_kmeans.csv";
  ASSERT_TRUE(campaign::write_runs_csv(classic, classic_csv));
  ASSERT_TRUE(campaign::write_runs_csv(forked, forked_csv));
  EXPECT_EQ(read_file(classic_csv), read_file(forked_csv));
}

TEST_F(ForkShardTest, ForkedCampaignIsByteIdenticalToFromResetOnStride) {
  campaign::CampaignSpec spec = small_spec("stride", 32);
  spec.static_ddt = true;  // footprint check in the loop: modules serialize too
  const campaign::CampaignReport classic = runner_.run(spec);
  spec.snapshot_fork = true;
  spec.snapshot_buckets = 5;
  const campaign::CampaignReport forked = runner_.run(spec);

  EXPECT_EQ(campaign::deterministic_digest(classic), campaign::deterministic_digest(forked));
  const std::string classic_csv = ::testing::TempDir() + "/classic_stride.csv";
  const std::string forked_csv = ::testing::TempDir() + "/forked_stride.csv";
  ASSERT_TRUE(campaign::write_runs_csv(classic, classic_csv));
  ASSERT_TRUE(campaign::write_runs_csv(forked, forked_csv));
  EXPECT_EQ(read_file(classic_csv), read_file(forked_csv));
}

TEST_F(ForkShardTest, ShardMergeReproducesUnshardedDigestForAllGridPoints) {
  campaign::CampaignSpec spec = small_spec("loop", 26);  // 26: uneven shard splits
  const std::string unsharded = campaign::deterministic_digest(runner_.run(spec));

  for (const u32 shards : {1u, 2u, 4u, 7u}) {
    for (const u32 jobs : {1u, 4u}) {
      std::vector<campaign::CampaignReport> reports;
      for (u32 i = 0; i < shards; ++i) {
        campaign::CampaignSpec shard_spec = spec;
        shard_spec.jobs = jobs;
        shard_spec.shard_index = i;
        shard_spec.shard_count = shards;
        // Round-trip every shard through the text format — the CLI's
        // --shard-out / --merge path — not just through memory.
        reports.push_back(
            campaign::parse_shard_report(campaign::shard_report_text(runner_.run(shard_spec))));
      }
      const campaign::CampaignReport merged = campaign::merge_shard_reports(reports);
      EXPECT_EQ(unsharded, campaign::deterministic_digest(merged))
          << "shards=" << shards << " jobs=" << jobs;
    }
  }
}

TEST_F(ForkShardTest, ShardValidationRejectsGapsAndForeignShards) {
  campaign::CampaignSpec spec = small_spec("loop", 12);
  spec.shard_count = 3;
  spec.shard_index = 0;
  const campaign::CampaignReport shard0 = runner_.run(spec);
  spec.shard_index = 2;
  const campaign::CampaignReport shard2 = runner_.run(spec);

  // Missing shard 1: the run indices no longer partition [0, runs).
  EXPECT_THROW(campaign::merge_shard_reports({shard0, shard2}), SimError);
  // Duplicate shard: same failure, detected as a non-partition.
  EXPECT_THROW(campaign::merge_shard_reports({shard0, shard0, shard2}), SimError);
  // A shard of a different campaign (other seed) must be rejected outright.
  campaign::CampaignSpec foreign = small_spec("loop", 12);
  foreign.seed = 99;
  foreign.shard_count = 3;
  foreign.shard_index = 1;
  const campaign::CampaignReport foreign1 = runner_.run(foreign);
  EXPECT_THROW(campaign::merge_shard_reports({shard0, foreign1, shard2}), SimError);
  EXPECT_THROW(campaign::merge_shard_reports({}), SimError);
}

TEST_F(ForkShardTest, ShardReportTextRoundTripsEveryDeterministicField) {
  campaign::CampaignSpec spec = small_spec("loop", 9);
  spec.window_lo = 0.25;
  spec.window_hi = 0.75;
  spec.snapshot_fork = true;
  spec.static_ddt = true;
  const campaign::CampaignReport report = runner_.run(spec);
  const campaign::CampaignReport round = campaign::parse_shard_report(
      campaign::shard_report_text(report));
  EXPECT_EQ(campaign::deterministic_digest(report), campaign::deterministic_digest(round));
  EXPECT_EQ(campaign::shard_report_text(report), campaign::shard_report_text(round));
  EXPECT_EQ(report.results.size(), round.results.size());
  for (size_t i = 0; i < report.results.size(); ++i) {
    EXPECT_EQ(report.results[i].record, round.results[i].record) << i;
    EXPECT_EQ(report.results[i].outcome, round.results[i].outcome) << i;
    EXPECT_EQ(report.results[i].fault_applied, round.results[i].fault_applied) << i;
    EXPECT_EQ(report.results[i].cycles, round.results[i].cycles) << i;
  }
  EXPECT_THROW(campaign::parse_shard_report("not a shard report\n"), SimError);
}

// ---- digest key regressions: one test per new spec token ----------------

TEST_F(ForkShardTest, DigestExcludesExecutionStrategyKnobs) {
  campaign::CampaignSpec spec = small_spec("loop", 16);
  const std::string baseline = campaign::deterministic_digest(runner_.run(spec));

  // Every knob that only changes HOW runs execute — never WHICH runs or
  // their outcomes — must stay out of the digest.  Each is toggled alone.
  campaign::CampaignSpec fork = spec;
  fork.snapshot_fork = true;
  EXPECT_EQ(baseline, campaign::deterministic_digest(runner_.run(fork))) << "snapshot_fork";

  campaign::CampaignSpec buckets = fork;
  buckets.snapshot_buckets = 3;
  EXPECT_EQ(baseline, campaign::deterministic_digest(runner_.run(buckets)))
      << "snapshot_buckets";

  campaign::CampaignSpec jobs = spec;
  jobs.jobs = 4;
  EXPECT_EQ(baseline, campaign::deterministic_digest(runner_.run(jobs))) << "jobs";

  campaign::CampaignSpec ff = spec;
  ff.fast_forward = true;
  EXPECT_EQ(baseline, campaign::deterministic_digest(runner_.run(ff))) << "fast_forward";
}

TEST_F(ForkShardTest, DigestIncludesWindowTokenOnlyWhenNonDefault) {
  campaign::CampaignSpec spec = small_spec("loop", 16);
  const std::string baseline = campaign::deterministic_digest(runner_.run(spec));
  EXPECT_EQ(baseline.find("window"), std::string::npos)
      << "default window must not perturb historical digests";

  campaign::CampaignSpec windowed = spec;
  windowed.window_lo = 0.5;
  windowed.window_hi = 1.0;
  const std::string window_digest = campaign::deterministic_digest(runner_.run(windowed));
  EXPECT_NE(baseline, window_digest);
  EXPECT_NE(window_digest.find("window0.5000-1.0000"), std::string::npos) << window_digest;
}

TEST_F(ForkShardTest, DigestIncludesCiRefinementTokenOnlyWhenEnabled) {
  campaign::CampaignSpec spec = small_spec("loop", 16);
  const std::string baseline = campaign::deterministic_digest(runner_.run(spec));
  EXPECT_EQ(baseline.find("ci-refine"), std::string::npos);

  campaign::CampaignSpec refined = spec;
  refined.ci_threshold = 0.05;
  refined.ci_batch = 16;
  refined.ci_max_runs = 32;
  const std::string refined_digest = campaign::deterministic_digest(runner_.run(refined));
  EXPECT_NE(baseline, refined_digest);
  EXPECT_NE(refined_digest.find("ci-refine0.0500"), std::string::npos) << refined_digest;
}

TEST_F(ForkShardTest, RefinementIsJobsInvariantAndRejectsSharding) {
  campaign::CampaignSpec spec = small_spec("loop", 16);
  spec.ci_threshold = 0.05;
  spec.ci_batch = 16;
  spec.ci_max_runs = 48;
  spec.jobs = 1;
  const campaign::CampaignReport one = runner_.run(spec);
  spec.jobs = 4;
  const campaign::CampaignReport four = runner_.run(spec);
  EXPECT_EQ(campaign::deterministic_digest(one), campaign::deterministic_digest(four));
  EXPECT_GE(one.results.size(), 16u);

  spec.shard_count = 2;
  EXPECT_THROW(runner_.run(spec), ConfigError);
}

TEST_F(ForkShardTest, GoldenCacheKeyIgnoresExecutionStrategyKnobs) {
  campaign::CampaignSpec spec = small_spec("loop", 8);
  (void)runner_.run(spec);
  const u64 misses_after_first = cache_.misses();

  // Fork, shard, window, and CI campaigns of the same workload/config must
  // all reuse the one cached golden run: the golden is fault-free, so no
  // new-mode knob may leak into its key.
  campaign::CampaignSpec fork = spec;
  fork.snapshot_fork = true;
  (void)runner_.run(fork);
  campaign::CampaignSpec shard = spec;
  shard.shard_index = 1;
  shard.shard_count = 2;
  (void)runner_.run(shard);
  campaign::CampaignSpec windowed = spec;
  windowed.window_lo = 0.5;
  windowed.window_hi = 1.0;
  (void)runner_.run(windowed);
  campaign::CampaignSpec refined = spec;
  refined.ci_threshold = 0.4;
  refined.ci_max_runs = 16;
  (void)runner_.run(refined);

  EXPECT_EQ(misses_after_first, cache_.misses());
  EXPECT_GE(cache_.hits(), 4u);
}

TEST_F(ForkShardTest, ShardRangesPartitionThePlan) {
  // The contiguous ranges for every shard count used in the grid must tile
  // [0, runs) without gaps or overlap — including counts that do not divide
  // the run count.
  for (const u32 runs : {1u, 7u, 26u, 100u}) {
    for (const u32 shards : {1u, 2u, 4u, 7u}) {
      u32 covered = 0;
      u32 prev_hi = 0;
      for (u32 i = 0; i < shards; ++i) {
        const u32 lo = static_cast<u32>(u64{runs} * i / shards);
        const u32 hi = static_cast<u32>(u64{runs} * (i + 1) / shards);
        EXPECT_EQ(prev_hi, lo);
        prev_hi = hi;
        covered += hi - lo;
      }
      EXPECT_EQ(prev_hi, runs);
      EXPECT_EQ(covered, runs);
    }
  }
}

TEST_F(ForkShardTest, InvalidShardAndWindowSpecsAreRejected) {
  campaign::CampaignSpec spec = small_spec("loop", 8);
  spec.shard_count = 0;
  EXPECT_THROW(runner_.run(spec), ConfigError);
  spec.shard_count = 2;
  spec.shard_index = 2;
  EXPECT_THROW(runner_.run(spec), ConfigError);

  campaign::CampaignSpec window = small_spec("loop", 8);
  window.window_lo = 0.9;
  window.window_hi = 0.1;
  EXPECT_THROW(runner_.run(window), ConfigError);
  window.window_lo = -0.5;
  window.window_hi = 0.5;
  EXPECT_THROW(runner_.run(window), ConfigError);
}

}  // namespace
