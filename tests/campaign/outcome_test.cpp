// OutcomeClassifier: every evidence combination lands in exactly one bucket,
// with detection taking precedence over the program-level result.
#include <gtest/gtest.h>

#include "campaign/outcome.hpp"

namespace rse::campaign {
namespace {

GoldenRun golden() {
  GoldenRun g;
  g.output = "42";
  g.exit_code = 0;
  g.cycles = 10'000;
  return g;
}

RunEvidence clean_run() {
  RunEvidence e;
  e.finished = true;
  e.output = "42";
  e.exit_code = 0;
  return e;
}

TEST(Outcome, CleanRunIsMasked) {
  EXPECT_EQ(classify(clean_run(), golden()), Outcome::kMasked);
}

TEST(Outcome, UnfinishedRunIsHangRegardlessOfOtherEvidence) {
  RunEvidence e = clean_run();
  e.finished = false;
  e.icm_mismatches = 3;  // even with detection evidence: the budget expired
  EXPECT_EQ(classify(e, golden()), Outcome::kHang);
}

TEST(Outcome, IcmMismatchWinsOverEverythingFinished) {
  RunEvidence e = clean_run();
  e.icm_mismatches = 1;
  e.cfc_violations = 1;
  e.output = "wrong";
  EXPECT_EQ(classify(e, golden()), Outcome::kDetectedIcm);
}

TEST(Outcome, CfcViolationDetected) {
  RunEvidence e = clean_run();
  e.cfc_violations = 2;
  e.crashes = 1;  // the CFC handler kills the thread; still a CFC detection
  EXPECT_EQ(classify(e, golden()), Outcome::kDetectedCfc);
}

TEST(Outcome, SelfCheckTripDetected) {
  RunEvidence e = clean_run();
  e.selfcheck_trips = 1;
  EXPECT_EQ(classify(e, golden()), Outcome::kDetectedSelfCheck);
}

TEST(Outcome, DdtRecoveryDetected) {
  RunEvidence e = clean_run();
  e.recoveries = 1;
  e.crashes = 1;
  e.exit_code = 139;
  EXPECT_EQ(classify(e, golden()), Outcome::kDetectedDdt);
}

TEST(Outcome, UndetectedCrashIsCrash) {
  RunEvidence e = clean_run();
  e.crashes = 1;
  e.exit_code = 139;
  EXPECT_EQ(classify(e, golden()), Outcome::kCrash);
}

TEST(Outcome, IllegalTrapCountsAsCrash) {
  RunEvidence e = clean_run();
  e.illegal_traps = 1;
  EXPECT_EQ(classify(e, golden()), Outcome::kCrash);
}

TEST(Outcome, WrongOutputWithoutDetectionIsSdc) {
  RunEvidence e = clean_run();
  e.output = "41";
  EXPECT_EQ(classify(e, golden()), Outcome::kSdc);
}

TEST(Outcome, WrongExitCodeWithoutCrashIsSdc) {
  RunEvidence e = clean_run();
  e.exit_code = 7;
  EXPECT_EQ(classify(e, golden()), Outcome::kSdc);
}

TEST(Outcome, BaselineDetectorNoiseIsSubtracted) {
  // A workload whose golden run already logs detector activity must not
  // classify every faulty run as detected.
  GoldenRun g = golden();
  g.icm_mismatches = 2;
  g.cfc_violations = 1;
  RunEvidence e = clean_run();
  e.icm_mismatches = 2;
  e.cfc_violations = 1;
  EXPECT_EQ(classify(e, g), Outcome::kMasked);
  e.icm_mismatches = 3;
  EXPECT_EQ(classify(e, g), Outcome::kDetectedIcm);
}

TEST(Outcome, EveryOutcomeHasAName) {
  for (unsigned o = 0; o < kNumOutcomes; ++o) {
    EXPECT_STRNE(to_string(static_cast<Outcome>(o)), "?");
  }
}

TEST(Outcome, DetectedPredicateCoversExactlyTheFiveDetectors) {
  u32 detected = 0;
  for (unsigned o = 0; o < kNumOutcomes; ++o) {
    if (is_detected(static_cast<Outcome>(o))) ++detected;
  }
  EXPECT_EQ(detected, 5u);
  EXPECT_TRUE(is_detected(Outcome::kDetectedDme));
  EXPECT_FALSE(is_detected(Outcome::kMasked));
  EXPECT_FALSE(is_detected(Outcome::kSdc));
  EXPECT_FALSE(is_detected(Outcome::kHang));
}

TEST(Outcome, DmeDivergenceClassifiesAsDetectedDme) {
  // A run whose canonical trace diverged where the golden baseline did not.
  RunEvidence e;
  e.finished = true;
  e.output = "42";
  e.dme_divergences = 1;
  e.dme_first_divergence = 7;
  EXPECT_EQ(classify(e, golden()), Outcome::kDetectedDme);
  // An *earlier* divergence than a divergent baseline is still a detection
  // (the fault moved the first mismatch forward); a divergence at the same
  // position as the baseline's is the attack itself, not the fault.
  GoldenRun g = golden();
  g.dme_divergences = 1;
  g.dme_first_divergence = 7;
  EXPECT_NE(classify(e, g), Outcome::kDetectedDme);
  e.dme_first_divergence = 3;
  EXPECT_EQ(classify(e, g), Outcome::kDetectedDme);
}

}  // namespace
}  // namespace rse::campaign
