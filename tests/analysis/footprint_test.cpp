// Unit regressions for the static data-flow footprint (docs/analysis.md):
// signed-i32 overflow demotion in the site fold, and the interprocedural
// per-function summaries (clobber masks, sp restore proofs, recursion).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/analyzer.hpp"
#include "campaign/workload.hpp"
#include "isa/assembler.hpp"

namespace rse::analysis {
namespace {

PageFootprint footprint_of(const std::string& source, bool interprocedural = true,
                           bool field = true) {
  const isa::Program program = isa::assemble(source);
  AnalysisOptions options;
  options.interprocedural_footprint = interprocedural;
  options.field_sensitive = field;
  return analyze(program, options).footprint;
}

const AccessSite* site_at(const PageFootprint& fp, const isa::Program& program,
                          Addr pc) {
  (void)program;
  for (const AccessSite& site : fp.sites) {
    if (site.pc == pc) return &site;
  }
  return nullptr;
}

const FunctionSummary* summary_of(const PageFootprint& fp, Addr entry) {
  for (const FunctionSummary& sum : fp.summaries) {
    if (sum.entry == entry) return &sum;
  }
  return nullptr;
}

/// An absolute base materialized near INT32_MAX whose offset would wrap the
/// signed-i32 domain must demote the site to Unknown — a wrapped fold would
/// whitelist pages at the bottom of the address space instead.
TEST(FootprintTest, AbsoluteFoldNearIntMaxDemotesInsteadOfWrapping) {
  const std::string source = R"(
.text
main:
  lui t0, 0x7FFF
  ori t0, t0, 0xFFF0
  sw t1, 124(t0)
  li a0, 0
  li v0, 1
  syscall
)";
  const PageFootprint fp = footprint_of(source);
  // 0x7FFFFFF0 + 124 = 0x8000006C overflows i32: the store is excluded, not
  // folded into a wrapped (negative or low) page.
  EXPECT_EQ(fp.unknown_sites, 1u);
  EXPECT_TRUE(fp.pages.empty());
  bool found = false;
  for (const AccessSite& site : fp.sites) {
    if (!site.is_store) continue;
    found = true;
    EXPECT_EQ(site.precision, AccessPrecision::kUnknown);
  }
  EXPECT_TRUE(found);
}

/// Same guard for the sp-relative envelope: subtracting a huge negative
/// constant from sp pushes the offset past INT32_MAX; the site must demote
/// rather than contribute a wrapped stack envelope (which the loader would
/// then resolve to bogus pages near the stack top).
TEST(FootprintTest, StackEnvelopeOverflowDemotesInsteadOfWrapping) {
  const std::string source = R"(
.text
main:
  lui t1, 0x8000
  ori t1, t1, 12
  sub t0, sp, t1
  sw t2, 16(t0)
  li a0, 0
  li v0, 1
  syscall
)";
  const PageFootprint fp = footprint_of(source);
  // t1 = 0x8000000C = -2147483636 as i32, so t0 = sp + 2147483636 and the
  // store offset 2147483652 exceeds the i32 domain.
  EXPECT_EQ(fp.unknown_sites, 1u);
  EXPECT_FALSE(fp.has_sp_range);
}

/// A register the callee provably leaves alone survives the call in the
/// interprocedural model; the flat model wipes the whole caller-saved set.
TEST(FootprintTest, SummaryKeepsCalleePreservedRegisterAcrossCall) {
  const std::string source = R"(
.data
buf: .space 64

.text
main:
  la t2, buf
  li a0, 5
  jal leaf
  sw t3, 0(t2)
  li a0, 0
  li v0, 1
  syscall

leaf:
  addi v1, a0, 1
  jr ra
)";
  const isa::Program program = isa::assemble(source);
  const PageFootprint ipa = footprint_of(source, /*interprocedural=*/true);
  const PageFootprint flat = footprint_of(source, /*interprocedural=*/false);
  EXPECT_EQ(ipa.unknown_sites, 0u);
  EXPECT_EQ(flat.unknown_sites, 1u);
  const Addr store_pc = program.symbol("main") + 4 * 4;  // la expands to 2
  const AccessSite* flat_site = site_at(flat, program, store_pc);
  ASSERT_NE(flat_site, nullptr);
  EXPECT_EQ(flat_site->precision, AccessPrecision::kUnknown);
  EXPECT_TRUE(flat.summaries.empty());  // flat mode computes no summaries

  const FunctionSummary* leaf = summary_of(ipa, program.symbol("leaf"));
  ASSERT_NE(leaf, nullptr);
  EXPECT_TRUE(leaf->summarized);
  EXPECT_TRUE(leaf->returns);
  // leaf writes v1 only; t2 (r10) must not be in the clobber mask.
  EXPECT_EQ(leaf->clobbered_regs & (1u << 10), 0u);
  EXPECT_NE(leaf->clobbered_regs & (1u << isa::kV1), 0u);
}

/// The shipped call-heavy workload: all three callees summarize, the framed
/// one proves its sp restore, and summaries resolve the sites the flat
/// model loses to call clobbering.
TEST(FootprintTest, CallsWorkloadSummariesResolveMoreSites) {
  const std::string source = campaign::make_workload("calls").source;
  const isa::Program program = isa::assemble(source);
  const PageFootprint ipa = footprint_of(source, /*interprocedural=*/true);
  const PageFootprint flat = footprint_of(source, /*interprocedural=*/false);
  EXPECT_LT(ipa.unknown_sites, flat.unknown_sites);
  EXPECT_EQ(ipa.unknown_sites, 0u);

  for (const char* name : {"square", "mix", "accum"}) {
    const FunctionSummary* sum = summary_of(ipa, program.symbol(name));
    ASSERT_NE(sum, nullptr) << name;
    EXPECT_TRUE(sum->summarized) << name;
    EXPECT_TRUE(sum->returns) << name;
    // Arithmetic restore proof: sp's clobber bit is clear even for accum,
    // which moves sp for its frame but restores it on the return path.
    EXPECT_EQ(sum->clobbered_regs & (1u << isa::kSp), 0u) << name;
  }
  const FunctionSummary* accum = summary_of(ipa, program.symbol("accum"));
  ASSERT_NE(accum, nullptr);
  EXPECT_TRUE(accum->has_sp_range);
  EXPECT_LT(accum->sp_lo, 0);  // the frame spills below the entry sp
}

/// Self-recursion converges to a usable summary (sp restored, bounded
/// clobber set) instead of poisoning the whole summary map.
TEST(FootprintTest, RecursiveFunctionStillSummarizes) {
  const std::string source = R"(
.data
buf: .space 64

.text
main:
  la t2, buf
  li a0, 3
  jal rec
  sw t3, 4(t2)
  li a0, 0
  li v0, 1
  syscall

rec:
  addi sp, sp, -8
  sw ra, 4(sp)
  sw a0, 0(sp)
  bge r0, a0, rec_done
  addi a0, a0, -1
  jal rec
rec_done:
  lw a0, 0(sp)
  lw ra, 4(sp)
  addi sp, sp, 8
  jr ra
)";
  const isa::Program program = isa::assemble(source);
  const PageFootprint ipa = footprint_of(source, /*interprocedural=*/true);
  const FunctionSummary* rec = summary_of(ipa, program.symbol("rec"));
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->summarized);
  EXPECT_TRUE(rec->returns);
  EXPECT_EQ(rec->clobbered_regs & (1u << isa::kSp), 0u);
  // With the dense-hull domain, rec's own frame accesses stay unknown (sp
  // widens through the recursive entry join — excluded, sound), but the
  // store through t2 after the recursive call resolves only because rec's
  // summary proves t2 preserved: it is the single site separating the two
  // modes, and the only absolute store in the program.
  const PageFootprint ipa_dense =
      footprint_of(source, /*interprocedural=*/true, /*field=*/false);
  const PageFootprint flat =
      footprint_of(source, /*interprocedural=*/false, /*field=*/false);
  EXPECT_EQ(flat.unknown_sites, ipa_dense.unknown_sites + 1);
  EXPECT_FALSE(ipa_dense.store_pages.empty());
  EXPECT_TRUE(flat.store_pages.empty());
  // The field-sensitive $sp rung contexts keep the recursive frames' sp
  // values separated (and stride-joined past the rung budget), so rec's
  // frame accesses additionally resolve into the sp envelope.
  EXPECT_LT(ipa.unknown_sites, ipa_dense.unknown_sites);
  EXPECT_FALSE(ipa.store_pages.empty());
}

/// Loop bounds larger than the widening visit budget still resolve: the
/// threshold ladder climbs to the program's own materialized constants
/// instead of jumping to the domain limit (kmeans-large regression).
TEST(FootprintTest, LargeLoopBoundsResolveViaThresholdWidening) {
  for (const char* name : {"kmeans", "kmeans-large"}) {
    const std::string source = campaign::make_workload(name).source;
    const PageFootprint ipa = footprint_of(source, /*interprocedural=*/true);
    EXPECT_EQ(ipa.unknown_sites, 0u) << name;
    const PageFootprint flat = footprint_of(source, /*interprocedural=*/false);
    EXPECT_LT(ipa.unknown_sites, flat.unknown_sites) << name;
  }
}

}  // namespace
}  // namespace rse::analysis
