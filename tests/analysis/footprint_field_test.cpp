// Unit regressions for the field-sensitive strided-interval footprint
// domain (docs/analysis.md): exact page-residue splitting for strides wider
// than a page, $sp-depth recursion contexts, bounded-clone fallback, and
// the degenerate-stride demotions (overflow near INT32_MAX, misaligned
// joins) that must always fall back to the dense hull — never
// under-approximate.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "isa/assembler.hpp"

namespace rse::analysis {
namespace {

PageFootprint field_footprint(const std::string& source, bool field = true,
                              u32 sp_depth = 2) {
  AnalysisOptions options;
  options.field_sensitive = field;
  options.field_sp_depth = sp_depth;
  return analyze(isa::assemble(source), options).footprint;
}

const AccessSite* site_of(const PageFootprint& fp, bool store) {
  for (const AccessSite& site : fp.sites) {
    if (site.is_store == store && site.base == AddressBase::kAbsolute &&
        site.precision == AccessPrecision::kOver) {
      return &site;
    }
  }
  return nullptr;
}

// A column walk stepping three pages at a time.  The data segment loads at
// 0x10000000 (page 0x10000).
constexpr const char* kColumnWalk = R"(
.data
mat: .space 49152

.text
main:
  la a0, mat
  li a1, 4
  li a2, 12288
  jal walk
  li a0, 0
  li v0, 1
  syscall

walk:
  li t2, 0
wl:
  mul t3, t2, a2
  add t3, t3, a0
  lw t4, 0(t3)
  addi t4, t4, 1
  sw t4, 0(t3)
  addi t2, t2, 1
  blt t2, a1, wl
  jr ra
)";

/// Strides wider than a page fold to exact residue pages: a four-element
/// walk with a three-page step touches pages {0, 3, 6, 9} of the matrix,
/// not the dense ten-page hull.
TEST(FootprintFieldTest, StrideBeyondPageSplitsIntoResiduePages) {
  const PageFootprint fp = field_footprint(kColumnWalk);
  EXPECT_EQ(fp.unknown_sites, 0u);
  EXPECT_TRUE(fp.field_sensitive);
  const std::vector<u32> want = {0x10000, 0x10003, 0x10006, 0x10009};
  EXPECT_EQ(fp.pages, want);
  EXPECT_EQ(fp.store_pages, want);
  const AccessSite* store = site_of(fp, /*store=*/true);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->stride, 12288);

  // The dense hull covers every page the hull spans.
  const PageFootprint dense = field_footprint(kColumnWalk, /*field=*/false);
  EXPECT_FALSE(dense.field_sensitive);
  EXPECT_EQ(dense.pages.size(), 10u);
  for (const AccessSite& site : dense.sites) EXPECT_EQ(site.stride, 0);
}

// A depth-4 recursive frame writer: each rung pushes a frame and stores the
// remaining depth through an advancing slot pointer.
constexpr const char* kRecursiveWriter = R"(
.data
slots: .space 64

.text
main:
  la a0, slots
  li a1, 4
  jal recw
  li a0, 0
  li v0, 1
  syscall

recw:
  addi sp, sp, -8
  sw ra, 4(sp)
  sw a1, 0(sp)
  sw a1, 0(a0)
  bge r0, a1, recw_done
  addi a0, a0, 4
  addi a1, a1, -1
  jal recw
recw_done:
  lw a1, 0(sp)
  lw ra, 4(sp)
  addi sp, sp, 8
  jr ra
)";

/// $sp-depth recursion contexts separate the recursive frames: the dense
/// domain loses the frame accesses to the widened sp join, the field domain
/// keeps them bounded (and counts the rung clones it spent doing so).
TEST(FootprintFieldTest, SpDepthContextsResolveRecursiveFrames) {
  const PageFootprint field = field_footprint(kRecursiveWriter);
  const PageFootprint dense = field_footprint(kRecursiveWriter, /*field=*/false);
  EXPECT_LT(field.unknown_sites, dense.unknown_sites);
  EXPECT_EQ(field.unknown_sites, 0u);
  EXPECT_GE(field.sp_contexts, 1u);
  EXPECT_EQ(dense.sp_contexts, 0u);
  EXPECT_TRUE(field.has_sp_range);
}

/// Recursion deeper than the rung budget falls back to the joined context
/// instead of cloning without bound — the result stays sound (a superset of
/// nothing it shouldn't be: no site resolves to a smaller set than the
/// joined fallback would give) and the fallback is counted.
TEST(FootprintFieldTest, RecursionPastRungBudgetFallsBackJoined) {
  const PageFootprint capped =
      field_footprint(kRecursiveWriter, /*field=*/true, /*sp_depth=*/1);
  const PageFootprint deep =
      field_footprint(kRecursiveWriter, /*field=*/true, /*sp_depth=*/8);
  // The capped run gives up rungs past the budget; it must never resolve
  // more than the generous budget does, and both bound the same pages.
  EXPECT_GE(capped.unknown_sites, deep.unknown_sites);
  EXPECT_GT(capped.context_fallbacks, 0u);
  EXPECT_EQ(capped.pages, deep.pages);
}

/// A strided offset whose fold would cross INT32_MAX demotes the site to
/// Unknown — never a wrapped (low) page residue.
TEST(FootprintFieldTest, StrideFoldNearIntMaxDemotesToUnknown) {
  const std::string source = R"(
.text
main:
  li t0, 0
  beq a0, r0, skip
  li t0, 2
skip:
  lui t1, 0x3FFFC
  mul t2, t0, t1
  lui t3, 0x7FFF
  ori t3, t3, 0xFFF0
  add t3, t3, t2
  sw r0, 0(t3)
  li a0, 0
  li v0, 1
  syscall
)";
  // t0 in {0, 2}; t1 = 0x3FFFC000, so t2 strides to 0x7FFF8000 and the add
  // lands past INT32_MAX.  The store must be excluded, not wrapped.
  const PageFootprint fp = field_footprint(source);
  EXPECT_EQ(fp.unknown_sites, 1u);
  EXPECT_TRUE(fp.pages.empty());
}

/// Joining misaligned constants (gcd collapses to 1) demotes the value to
/// the dense hull: the site still resolves, with no stride to export.
TEST(FootprintFieldTest, MisalignedJoinDemotesToDenseHull) {
  const std::string source = R"(
.data
buf: .space 64

.text
main:
  li t0, 0
  beq a0, r0, second
  li t0, 5
second:
  bne a1, r0, fold
  li t0, 12
fold:
  la t1, buf
  add t1, t1, t0
  sw r0, 0(t1)
  li a0, 0
  li v0, 1
  syscall
)";
  const PageFootprint fp = field_footprint(source);
  EXPECT_EQ(fp.unknown_sites, 0u);
  const AccessSite* store = site_of(fp, /*store=*/true);
  ASSERT_NE(store, nullptr);
  // {0, 5, 12} has no common stride: the merged site reports a dense hull.
  EXPECT_EQ(store->stride, 0);
  EXPECT_EQ(fp.pages, std::vector<u32>{0x10000});
}

/// Field-off is the revert switch: no strides are introduced anywhere and
/// the exported sites all report dense ranges.
TEST(FootprintFieldTest, FieldOffExportsNoStrides) {
  for (const char* source : {kColumnWalk, kRecursiveWriter}) {
    const PageFootprint fp = field_footprint(source, /*field=*/false);
    EXPECT_FALSE(fp.field_sensitive);
    EXPECT_EQ(fp.sp_contexts, 0u);
    for (const AccessSite& site : fp.sites) EXPECT_EQ(site.stride, 0);
  }
}

}  // namespace
}  // namespace rse::analysis
