// Differential property harness for the static data-flow footprint
// (docs/analysis.md): randomized guest programs are analyzed statically and
// then executed with the DDT tracking pages dynamically.  Soundness demands
// that every page the program actually touches was predicted — a dynamic
// page outside the static set would mean the abstract interpreter under-
// approximated an address range, exactly the bug class this harness exists
// to catch.  The second half runs the same programs under --static-ddt and
// pins the end-to-end agreement: zero footprint violations on clean runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "../support/random_program.hpp"
#include "../support/sim_runner.hpp"
#include "analysis/analyzer.hpp"
#include "isa/assembler.hpp"
#include "modules/cfc/cfc.hpp"
#include "modules/ddt/ddt.hpp"

namespace rse::analysis {
namespace {

constexpr u64 kPrograms = 50;  // per generator configuration

testing::RandomProgramOptions options_for(u64 seed) {
  testing::RandomProgramOptions options;
  options.with_calls = seed % 2 == 0;  // alternate leaf-call programs in
  return options;
}

/// Every page the DDT saw at run time must be inside the static prediction.
TEST(FootprintPropertyTest, DynamicPagesStayInsideStaticFootprint) {
  u64 static_pages_total = 0, dynamic_pages_total = 0;
  for (u64 seed = 1; seed <= kPrograms; ++seed) {
    const std::string source = testing::generate_random_program(seed, options_for(seed));
    const isa::Program program = isa::assemble(source);
    const AnalysisResult result = analyze(program);
    ASSERT_FALSE(result.has_errors()) << "seed " << seed << ":\n"
                                      << to_json(program, result);
    // The generator forms every address from a la-materialized arena base,
    // so the data-flow pass must bound every access site.
    EXPECT_EQ(result.footprint.unknown_sites, 0u) << "seed " << seed;
    ASSERT_FALSE(result.footprint.pages.empty()) << "seed " << seed;

    os::MachineConfig machine_config;
    machine_config.framework_present = true;
    testing::SimRunner runner(machine_config);
    runner.load_source(source);
    runner.os().enable_module(isa::ModuleId::kDdt);
    runner.run();
    ASSERT_TRUE(runner.os().finished()) << "seed " << seed;

    const modules::DdtModule* ddt = runner.machine().ddt();
    ASSERT_NE(ddt, nullptr);
    const std::vector<u32> touched = ddt->tracked_pages();
    ASSERT_FALSE(touched.empty()) << "seed " << seed << " exercised no memory";
    for (u32 page : touched) {
      EXPECT_TRUE(std::binary_search(result.footprint.pages.begin(),
                                     result.footprint.pages.end(), page))
          << "seed " << seed << ": dynamically touched page 0x" << std::hex << page
          << " missing from the static footprint (soundness violation)";
    }
    static_pages_total += result.footprint.pages.size();
    dynamic_pages_total += touched.size();
  }
  // Precision: the static prediction may over-approximate, but not wildly —
  // the generator's arena spans at most two pages.
  ASSERT_GT(dynamic_pages_total, 0u);
  const double over_approx = static_cast<double>(static_pages_total) /
                             static_cast<double>(dynamic_pages_total);
  RecordProperty("over_approx_ratio", std::to_string(over_approx));
  EXPECT_LE(over_approx, 3.0) << "static footprint is " << over_approx
                              << "x the dynamically touched page set";
}

/// End-to-end agreement: the same random programs run under --static-ddt
/// raise zero footprint violations, while actually checking accesses — at
/// the default context depth and with cloning disabled (--context-depth 0).
TEST(FootprintPropertyTest, StaticDdtCleanOnRandomPrograms) {
  for (u64 seed = 1; seed <= kPrograms; ++seed) {
    const std::string source = testing::generate_random_program(seed, options_for(seed));
    for (const u32 depth : {0u, 1u}) {
      os::MachineConfig machine_config;
      machine_config.framework_present = true;
      os::OsConfig os_config;
      os_config.static_ddt = true;
      os_config.context_depth = depth;
      testing::SimRunner runner(machine_config, os_config);
      runner.load_source(source);
      runner.os().enable_module(isa::ModuleId::kDdt);
      runner.run();
      ASSERT_TRUE(runner.os().finished()) << "seed " << seed << " depth " << depth;

      const modules::DdtModule* ddt = runner.machine().ddt();
      ASSERT_NE(ddt, nullptr);
      EXPECT_GT(ddt->stats().footprint_checks, 0u)
          << "seed " << seed << " depth " << depth;
      EXPECT_EQ(ddt->stats().footprint_violations, 0u)
          << "seed " << seed << " at context depth " << depth
          << ": static footprint disagrees with a clean run";
    }
  }
}

testing::RandomProgramOptions call_heavy_options() {
  testing::RandomProgramOptions options;
  options.with_calls = true;
  options.call_heavy = true;
  return options;
}

/// Interprocedural soundness on call-heavy programs (framed helpers,
/// bounded recursion, jalr calls through la-materialized pointers): under
/// --static-ddt with summaries on, clean runs raise zero footprint
/// violations while actually checking accesses — every site the summaries
/// resolve (including stores through a register proven call-preserved)
/// agrees with execution.  The aggregate also pins the precision claim:
/// summaries must resolve strictly more sites than the flat call model.
TEST(FootprintPropertyTest, StaticDdtCleanOnCallHeavyPrograms) {
  u64 ipa_unknown = 0, flat_unknown = 0, checks = 0;
  for (u64 seed = 1; seed <= kPrograms; ++seed) {
    const std::string source =
        testing::generate_random_program(seed + 1000, call_heavy_options());
    const isa::Program program = isa::assemble(source);

    const AnalysisResult ipa = analyze(program);
    ASSERT_FALSE(ipa.has_errors()) << "seed " << seed << ":\n"
                                   << to_json(program, ipa);
    AnalysisOptions flat_options;
    flat_options.interprocedural_footprint = false;
    const AnalysisResult flat = analyze(program, flat_options);
    ipa_unknown += ipa.footprint.unknown_sites;
    flat_unknown += flat.footprint.unknown_sites;
    // Refinement only ever resolves more: a site the flat model bounds must
    // stay bounded under summaries.
    EXPECT_LE(ipa.footprint.unknown_sites, flat.footprint.unknown_sites)
        << "seed " << seed;

    os::MachineConfig machine_config;
    machine_config.framework_present = true;
    os::OsConfig os_config;
    os_config.static_ddt = true;  // footprint_summaries defaults to true
    testing::SimRunner runner(machine_config, os_config);
    runner.load_source(source);
    runner.os().enable_module(isa::ModuleId::kDdt);
    runner.run();
    ASSERT_TRUE(runner.os().finished()) << "seed " << seed;

    const modules::DdtModule* ddt = runner.machine().ddt();
    ASSERT_NE(ddt, nullptr);
    checks += ddt->stats().footprint_checks;
    EXPECT_EQ(ddt->stats().footprint_violations, 0u)
        << "seed " << seed << ": summary-resolved site disagrees with a clean run";
  }
  EXPECT_GT(checks, 0u) << "no site resolved across any call-heavy program";
  EXPECT_LT(ipa_unknown, flat_unknown)
      << "summaries resolved nothing the flat model missed";
}

testing::RandomProgramOptions arg_pointer_options(u64 seed) {
  testing::RandomProgramOptions options;
  options.arg_pointers = true;
  options.with_calls = seed % 2 == 0;
  return options;
}

/// Context-sensitivity soundness on pointer-argument programs: call sites
/// pass absolute, sp-relative, and gp-relative buffer bases through
/// $a0..$a3 to shared callees.  With cloning disabled (context depth 0) the
/// joined base is unknown and the sites drop out of the check; at the
/// default depth the clones resolve them per call site.  Both modes must
/// raise zero footprint violations on clean runs — a violation in either
/// would be a false positive from an under-approximated per-context fold —
/// and the default depth must resolve strictly more sites in aggregate.
TEST(FootprintPropertyTest, StaticDdtCleanOnArgPointerProgramsBothDepths) {
  u64 ctx_unknown = 0, flat_unknown = 0;
  u64 checks[2] = {0, 0};
  for (u64 seed = 1; seed <= kPrograms; ++seed) {
    const std::string source =
        testing::generate_random_program(seed + 2000, arg_pointer_options(seed));
    const isa::Program program = isa::assemble(source);

    const AnalysisResult ctx = analyze(program);  // context_depth defaults to 1
    ASSERT_FALSE(ctx.has_errors()) << "seed " << seed << ":\n"
                                   << to_json(program, ctx);
    AnalysisOptions flat_options;
    flat_options.context_depth = 0;
    const AnalysisResult flat = analyze(program, flat_options);
    ASSERT_FALSE(flat.has_errors()) << "seed " << seed;
    ctx_unknown += ctx.footprint.unknown_sites;
    flat_unknown += flat.footprint.unknown_sites;
    EXPECT_LE(ctx.footprint.unknown_sites, flat.footprint.unknown_sites)
        << "seed " << seed;

    for (const u32 depth : {0u, 1u}) {
      os::MachineConfig machine_config;
      machine_config.framework_present = true;
      os::OsConfig os_config;
      os_config.static_ddt = true;
      os_config.context_depth = depth;
      testing::SimRunner runner(machine_config, os_config);
      runner.load_source(source);
      runner.os().enable_module(isa::ModuleId::kDdt);
      runner.run();
      ASSERT_TRUE(runner.os().finished()) << "seed " << seed << " depth " << depth;

      const modules::DdtModule* ddt = runner.machine().ddt();
      ASSERT_NE(ddt, nullptr);
      checks[depth] += ddt->stats().footprint_checks;
      EXPECT_EQ(ddt->stats().footprint_violations, 0u)
          << "seed " << seed << " at context depth " << depth
          << ": clean run tripped the static footprint (false positive)";
    }
  }
  EXPECT_GT(checks[0], 0u) << "depth 0 checked nothing across the suite";
  EXPECT_GT(checks[1], 0u) << "depth 1 checked nothing across the suite";
  EXPECT_LT(ctx_unknown, flat_unknown)
      << "context cloning resolved nothing the flat pointer-argument join missed";
}

testing::RandomProgramOptions strided_options(u64 seed) {
  testing::RandomProgramOptions options;
  options.strided_loops = true;
  options.recursive_writer = true;
  options.with_calls = seed % 2 == 0;
  return options;
}

/// Field-sensitivity soundness on strided-loop and recursive-writer
/// programs: shared callees multiply an induction variable by per-call-site
/// byte steps (word, struct-field, and multi-page strides), and a recursive
/// writer pushes a frame per rung.  Under --static-ddt the strided residue
/// pages replace the dense hulls, so a clean run raising a footprint
/// violation would be an under-approximated residue fold — the false
/// positive this suite exists to rule out.  Swept across the field domain
/// on/off and context depths {0, 1}: zero violations in all four modes,
/// and the field domain must never leave more sites unresolved than the
/// dense hull.
TEST(FootprintPropertyTest, StaticDdtCleanOnStridedProgramsFieldOnOff) {
  u64 field_unknown = 0, dense_unknown = 0;
  u64 checks = 0;
  for (u64 seed = 1; seed <= kPrograms; ++seed) {
    const std::string source =
        testing::generate_random_program(seed + 3000, strided_options(seed));
    const isa::Program program = isa::assemble(source);

    const AnalysisResult field = analyze(program);  // field_sensitive defaults on
    ASSERT_FALSE(field.has_errors()) << "seed " << seed << ":\n"
                                     << to_json(program, field);
    AnalysisOptions dense_options;
    dense_options.field_sensitive = false;
    const AnalysisResult dense = analyze(program, dense_options);
    field_unknown += field.footprint.unknown_sites;
    dense_unknown += dense.footprint.unknown_sites;
    EXPECT_LE(field.footprint.unknown_sites, dense.footprint.unknown_sites)
        << "seed " << seed;

    for (const bool field_on : {false, true}) {
      for (const u32 depth : {0u, 1u}) {
        os::MachineConfig machine_config;
        machine_config.framework_present = true;
        os::OsConfig os_config;
        os_config.static_ddt = true;
        os_config.field_sensitive = field_on;
        os_config.context_depth = depth;
        testing::SimRunner runner(machine_config, os_config);
        runner.load_source(source);
        runner.os().enable_module(isa::ModuleId::kDdt);
        runner.run();
        ASSERT_TRUE(runner.os().finished())
            << "seed " << seed << " field " << field_on << " depth " << depth;

        const modules::DdtModule* ddt = runner.machine().ddt();
        ASSERT_NE(ddt, nullptr);
        checks += ddt->stats().footprint_checks;
        EXPECT_EQ(ddt->stats().footprint_violations, 0u)
            << "seed " << seed << " field " << field_on << " depth " << depth
            << ": clean run tripped the static footprint (false positive)";
      }
    }
  }
  EXPECT_GT(checks, 0u) << "no strided program checked any site";
  EXPECT_LE(field_unknown, dense_unknown);
}

testing::RandomProgramOptions attack_pattern_options(u64 seed) {
  testing::RandomProgramOptions options;
  options.attack_patterns = true;
  options.with_calls = seed % 2 == 0;
  return options;
}

/// Adversarial-shape false-positive freedom (docs/security.md): programs
/// full of attack-shaped — but legal — writes (framed helpers storing past
/// their own $sp envelope, jump-table entries re-pointed between
/// address-taken handlers before indirect dispatch) run clean under
/// --static-ddt at both context depths.  A violation here would mean the
/// footprint treats the *shape* of an attack as the attack.
TEST(FootprintPropertyTest, StaticDdtCleanOnAttackPatternProgramsBothDepths) {
  u64 checks[2] = {0, 0};
  for (u64 seed = 1; seed <= kPrograms; ++seed) {
    const std::string source =
        testing::generate_random_program(seed + 4000, attack_pattern_options(seed));
    const isa::Program program = isa::assemble(source);
    const AnalysisResult result = analyze(program);
    ASSERT_FALSE(result.has_errors()) << "seed " << seed << ":\n"
                                      << to_json(program, result);
    for (const u32 depth : {0u, 1u}) {
      os::MachineConfig machine_config;
      machine_config.framework_present = true;
      os::OsConfig os_config;
      os_config.static_ddt = true;
      os_config.context_depth = depth;
      testing::SimRunner runner(machine_config, os_config);
      runner.load_source(source);
      runner.os().enable_module(isa::ModuleId::kDdt);
      runner.run();
      ASSERT_TRUE(runner.os().finished()) << "seed " << seed << " depth " << depth;

      const modules::DdtModule* ddt = runner.machine().ddt();
      ASSERT_NE(ddt, nullptr);
      checks[depth] += ddt->stats().footprint_checks;
      EXPECT_EQ(ddt->stats().footprint_violations, 0u)
          << "seed " << seed << " depth " << depth
          << ": attack-shaped legal write tripped the static footprint";
    }
  }
  EXPECT_GT(checks[0], 0u) << "depth 0 checked nothing across the attack suite";
  EXPECT_GT(checks[1], 0u) << "depth 1 checked nothing across the attack suite";
}

/// The CFC side of the same property: legally re-pointed jump tables must
/// pass the static successor check (the clobbered entry still lands on an
/// address-taken handler — coarse CFI admits it) and the handlers' jr
/// returns fall back to the text-range check, all with zero violations at
/// both context depths.
TEST(FootprintPropertyTest, StaticCfcCleanOnJumpTableClobberProgramsBothDepths) {
  u64 static_checks = 0, range_checks = 0;
  for (u64 seed = 1; seed <= kPrograms; ++seed) {
    const std::string source =
        testing::generate_random_program(seed + 4000, attack_pattern_options(seed));
    for (const u32 depth : {0u, 1u}) {
      os::MachineConfig machine_config;
      machine_config.framework_present = true;
      os::OsConfig os_config;
      os_config.static_cfc = true;
      os_config.context_depth = depth;
      testing::SimRunner runner(machine_config, os_config);
      runner.load_source(source);
      runner.os().enable_module(isa::ModuleId::kCfc);
      runner.run();
      ASSERT_TRUE(runner.os().finished()) << "seed " << seed << " depth " << depth;

      const modules::CfcModule* cfc = runner.machine().cfc();
      ASSERT_NE(cfc, nullptr);
      static_checks += cfc->stats().indirect_static_checks;
      range_checks += cfc->stats().indirect_range_checks;
      EXPECT_EQ(cfc->stats().violations, 0u)
          << "seed " << seed << " depth " << depth
          << ": legal jump-table re-point tripped the CFC";
    }
  }
  EXPECT_GT(static_checks, 0u) << "no clobbered dispatch was table-checked";
  EXPECT_GT(range_checks, 0u) << "no handler return hit the range fallback";
}

/// The harness itself must be reproducible: same seed, same program, same
/// footprint — byte for byte.
TEST(FootprintPropertyTest, SeedDeterminism) {
  for (u64 seed : {1, 17, 42}) {
    const std::string a = testing::generate_random_program(seed, options_for(seed));
    const std::string b = testing::generate_random_program(seed, options_for(seed));
    ASSERT_EQ(a, b) << "generator is not seed-deterministic";
    const isa::Program program = isa::assemble(a);
    const AnalysisResult first = analyze(program);
    const AnalysisResult second = analyze(program);
    EXPECT_EQ(first.footprint.pages, second.footprint.pages);
    EXPECT_EQ(first.footprint.store_pages, second.footprint.store_pages);
    EXPECT_EQ(first.footprint.checked_pcs(), second.footprint.checked_pcs());
  }
}

}  // namespace
}  // namespace rse::analysis
