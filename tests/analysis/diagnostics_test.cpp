// Diagnostics pass (analysis/analyzer.hpp): each DiagCode has a fixture that
// must trip it at the documented severity, plus negative cases pinning the
// checks to zero false positives on well-formed programs.
#include "analysis/analyzer.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "isa/assembler.hpp"
#include "workloads/workloads.hpp"

namespace rse::analysis {
namespace {

u32 count_code(const AnalysisResult& result, DiagCode code) {
  return static_cast<u32>(std::count_if(
      result.diagnostics.begin(), result.diagnostics.end(),
      [code](const Diagnostic& d) { return d.code == code; }));
}

const Diagnostic* find_code(const AnalysisResult& result, DiagCode code) {
  for (const Diagnostic& d : result.diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

TEST(DiagnosticsTest, JumpOutsideTextIsError) {
  const AnalysisResult result = analyze(isa::assemble(R"(
.text
main:
  j 0x00500000
)"));
  const Diagnostic* d = find_code(result, DiagCode::kBranchTargetOutsideText);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_TRUE(result.has_errors());
  EXPECT_EQ(d->symbol, "main");
}

TEST(DiagnosticsTest, BitFlippedBranchTargetIsError) {
  // The campaign's kInstructionWord fault class: corrupt the offset field of
  // an in-range branch so it aims far outside the text segment.  The lint
  // must catch the corrupted image even though the original assembled clean.
  isa::Program program = isa::assemble(R"(
.text
main:
  li t0, 8
loop:
  addi t0, t0, -1
  bne t0, r0, loop
  li a0, 0
  li v0, 1
  syscall
)");
  ASSERT_FALSE(analyze(program).has_errors());

  for (Word& word : program.text) {
    if (isa::decode(word).op == isa::Op::kBne) {
      word ^= 0x2000;  // flip offset bit 13: the target lands ~32 KiB away
      break;
    }
  }
  const AnalysisResult corrupted = analyze(program);
  const Diagnostic* d = find_code(corrupted, DiagCode::kBranchTargetOutsideText);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST(DiagnosticsTest, FallOffTextEndIsError) {
  const AnalysisResult result = analyze(isa::assemble(R"(
.text
main:
  addi t0, t0, 1
)"));
  const Diagnostic* d = find_code(result, DiagCode::kFallOffTextEnd);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST(DiagnosticsTest, InvalidEncodingSeverityFollowsReachability) {
  isa::Program program = isa::assemble(R"(
.text
main:
  j end
dead:
  addi t0, t0, 1
end:
  li a0, 0
  li v0, 1
  syscall
)");
  // Clobber the unreachable instruction with a word no decoder accepts.
  const Addr dead = program.symbol("dead");
  program.text[(dead - program.text_base) / 4] = 0xFFFF'FFFFu;
  ASSERT_EQ(isa::decode(0xFFFF'FFFFu).op, isa::Op::kInvalid);

  const AnalysisResult result = analyze(program);
  const Diagnostic* d = find_code(result, DiagCode::kInvalidEncoding);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);  // unreachable: latent, not fatal
  EXPECT_EQ(d->addr, dead);

  // The same garbage on the reachable path is an error.
  program.text[(program.symbol("end") - program.text_base) / 4] = 0xFFFF'FFFFu;
  const AnalysisResult reachable = analyze(program);
  bool saw_error = false;
  for (const Diagnostic& diag : reachable.diagnostics) {
    if (diag.code == DiagCode::kInvalidEncoding && diag.severity == Severity::kError) {
      saw_error = true;
    }
  }
  EXPECT_TRUE(saw_error);
}

TEST(DiagnosticsTest, StoreAimedAtTextIsError) {
  const AnalysisResult result = analyze(isa::assemble(R"(
.text
main:
  la t0, main
  sw t1, 0(t0)
  li a0, 0
  li v0, 1
  syscall
)"));
  const Diagnostic* d = find_code(result, DiagCode::kStoreToText);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST(DiagnosticsTest, StoreToDataIsNotFlagged) {
  const AnalysisResult result = analyze(isa::assemble(R"(
.data
buffer:
  .space 16
.text
main:
  la t0, buffer
  sw t1, 0(t0)
  li a0, 0
  li v0, 1
  syscall
)"));
  EXPECT_EQ(count_code(result, DiagCode::kStoreToText), 0u);
}

TEST(DiagnosticsTest, ChkUnknownModuleIsError) {
  // The encoder accepts module numbers 0..7 but only 0..5 name a module: a
  // CHK addressed to 6 or 7 is dispatched nowhere.
  const AnalysisResult result = analyze(isa::assemble(R"(
.text
main:
  chk 6, 0, nblk, r0, 0
  li a0, 0
  li v0, 1
  syscall
)"));
  const Diagnostic* d = find_code(result, DiagCode::kChkUnknownModule);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_TRUE(result.has_errors());
}

TEST(DiagnosticsTest, ChkEnableOfMissingModuleIsError) {
  // frame op1 = enable, imm12 low bits select the module: 6 does not exist,
  // so the enable silently does nothing at runtime.
  const AnalysisResult result = analyze(isa::assemble(R"(
.text
main:
  chk frame, 1, nblk, r0, 6
  li a0, 0
  li v0, 1
  syscall
)"));
  const Diagnostic* d = find_code(result, DiagCode::kChkBadConfig);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST(DiagnosticsTest, WellFormedEnableIsClean) {
  const AnalysisResult result = analyze(isa::assemble(R"(
.text
main:
  chk frame, 1, nblk, r0, 5
  li a0, 0
  li v0, 1
  syscall
)"));
  EXPECT_FALSE(result.has_errors());
  EXPECT_EQ(count_code(result, DiagCode::kChkBadConfig), 0u);
}

TEST(DiagnosticsTest, UndecodedChkOpIsWarning) {
  // MLR decodes ops 3..12; op 20 falls through the module's dispatch.
  const AnalysisResult result = analyze(isa::assemble(R"(
.text
main:
  chk mlr, 20, nblk, r0, 0
  li a0, 0
  li v0, 1
  syscall
)"));
  const Diagnostic* d = find_code(result, DiagCode::kChkUnknownOp);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_FALSE(result.has_errors());
}

TEST(DiagnosticsTest, IcmChkAtEndOfTextChecksNothing) {
  const AnalysisResult result = analyze(isa::assemble(R"(
.text
main:
  li a0, 0
  li v0, 1
  syscall
  chk icm, 0, blk, r0, 0
)"));
  EXPECT_GE(count_code(result, DiagCode::kChkChecksNothing), 1u);
}

TEST(DiagnosticsTest, UnreachableBlockIsWarning) {
  const AnalysisResult result = analyze(isa::assemble(R"(
.text
main:
  j end
dead:
  addi t0, t0, 1
end:
  li a0, 0
  li v0, 1
  syscall
)"));
  const Diagnostic* d = find_code(result, DiagCode::kUnreachableBlock);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_FALSE(result.has_errors());
}

TEST(DiagnosticsTest, ProtectedRegionCoverageRequiresIcmChk) {
  const char* source = R"(
.text
main:
  li t0, 3
loop:
  addi t0, t0, -1
  bne t0, r0, loop
  li a0, 0
  li v0, 1
  syscall
)";
  const isa::Program bare = isa::assemble(source);
  AnalysisOptions options;
  options.protected_regions.push_back({"text", bare.text_base, bare.text_end()});
  const AnalysisResult uncovered = analyze(bare, options);
  EXPECT_GE(count_code(uncovered, DiagCode::kMissingChkCoverage), 1u);

  // After Table 4 instrumentation every control instruction has a preceding
  // ICM CHECK, so the same contract holds.
  const isa::Program covered_prog = isa::assemble(workloads::instrument_checks(source));
  AnalysisOptions covered_options;
  covered_options.protected_regions.push_back(
      {"text", covered_prog.text_base, covered_prog.text_end()});
  const AnalysisResult covered = analyze(covered_prog, covered_options);
  EXPECT_EQ(count_code(covered, DiagCode::kMissingChkCoverage), 0u);
}

TEST(DiagnosticsTest, DiagnosticsAreSortedAndSymbolized) {
  const AnalysisResult result = analyze(isa::assemble(R"(
.text
main:
  chk 6, 0, nblk, r0, 0
  chk 7, 0, nblk, r0, 0
  li a0, 0
  li v0, 1
  syscall
)"));
  ASSERT_GE(result.diagnostics.size(), 2u);
  EXPECT_TRUE(std::is_sorted(
      result.diagnostics.begin(), result.diagnostics.end(),
      [](const Diagnostic& a, const Diagnostic& b) { return a.addr < b.addr; }));
  EXPECT_EQ(result.diagnostics[0].symbol, "main");
  EXPECT_EQ(result.diagnostics[1].symbol, "main+0x4");
  const std::string line = format_diagnostic(result.diagnostics[0]);
  EXPECT_NE(line.find("error[chk-unknown-module]"), std::string::npos);
  EXPECT_NE(line.find("(main)"), std::string::npos);
}

TEST(DiagnosticsTest, JsonReportCarriesCountsAndCodes) {
  const isa::Program program = isa::assemble(R"(
.text
main:
  chk 6, 0, nblk, r0, 0
  li a0, 0
  li v0, 1
  syscall
)");
  const AnalysisResult result = analyze(program);
  const std::string json = to_json(program, result);
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
  EXPECT_NE(json.find("chk-unknown-module"), std::string::npos);
}

}  // namespace
}  // namespace rse::analysis
