// Regressions for the context-sensitive footprint pass (docs/analysis.md):
// per-call-site summary cloning keyed on the abstract argument tuple, the
// bounded context cache with its sound joined-summary fall-back, and
// termination of recursive cloning under the depth budget.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "analysis/analyzer.hpp"
#include "isa/assembler.hpp"
#include "mem/main_memory.hpp"

namespace rse::analysis {
namespace {

PageFootprint footprint_of(const std::string& source, u32 context_depth) {
  const isa::Program program = isa::assemble(source);
  AnalysisOptions options;
  options.interprocedural_footprint = true;
  options.context_depth = context_depth;
  return analyze(program, options).footprint;
}

// A shared callee walking a pointer received in $a0, called with two buffers
// on disjoint pages with a never-touched guard page between them.
constexpr const char* kDisjointArgs = R"(
.data
buf_a: .space 64
guard: .space 8192
buf_b: .space 64
.text
main:
  la a0, buf_a
  li a1, 8
  jal fill
  la a0, buf_b
  li a1, 8
  jal fill
  li a0, 0
  li v0, 1
  syscall

fill:
  li t2, 0
floop:
  sll t3, t2, 2
  add t3, t3, a0
  lw t4, 0(t3)
  addi t4, t4, 1
  sw t4, 0(t3)
  addi t2, t2, 1
  blt t2, a1, floop
  jr ra
)";

/// Context depth 0 joins the two incoming buffer pointers into one range
/// whose hull covers the guard page; depth 1 clones the callee per call
/// site, resolves both accesses, and the per-pc table excludes the guard.
TEST(FootprintContextTest, DisjointArgRangesResolveBothCallSites) {
  const isa::Program program = isa::assemble(kDisjointArgs);
  const u32 page_a = mem::page_of(program.data_base);
  const u32 page_guard = mem::page_of(program.data_base + 64 + 4096);
  const u32 page_b = mem::page_of(program.data_base + 64 + 8192);
  ASSERT_LT(page_a, page_guard);
  ASSERT_LT(page_guard, page_b);

  const PageFootprint flat = footprint_of(kDisjointArgs, /*context_depth=*/0);
  // Context-insensitive: $a0 joins two exact pointers into one absolute
  // range, so the sites resolve but the contiguous hull swallows the guard.
  EXPECT_TRUE(std::count(flat.pages.begin(), flat.pages.end(), page_guard) > 0 ||
              flat.unknown_sites > 0);
  EXPECT_EQ(flat.context_pages.size(), 0u);
  EXPECT_EQ(flat.contexts_cloned, 0u);

  const PageFootprint ctx = footprint_of(kDisjointArgs, /*context_depth=*/1);
  EXPECT_EQ(ctx.unknown_sites, 0u);
  EXPECT_GE(ctx.contexts_cloned, 2u);
  EXPECT_EQ(ctx.context_fallbacks, 0u);
  // Both buffers predicted...
  EXPECT_TRUE(std::count(ctx.pages.begin(), ctx.pages.end(), page_a) > 0);
  EXPECT_TRUE(std::count(ctx.pages.begin(), ctx.pages.end(), page_b) > 0);
  // ...and the per-context fold never touched the guard page between them.
  EXPECT_EQ(std::count(ctx.pages.begin(), ctx.pages.end(), page_guard), 0);
  // The callee's load and store each carry a per-pc page table listing
  // exactly the two buffer pages.
  ASSERT_GE(ctx.context_pages.size(), 2u);
  for (const PageFootprint::SitePages& site : ctx.context_pages) {
    EXPECT_TRUE(std::binary_search(site.pages.begin(), site.pages.end(), page_a));
    EXPECT_TRUE(std::binary_search(site.pages.begin(), site.pages.end(), page_b));
    EXPECT_FALSE(
        std::binary_search(site.pages.begin(), site.pages.end(), page_guard));
  }
}

/// More distinct argument tuples than the context cache holds: the overflow
/// call sites fall back to the joined summary.  The fall-back is sound — the
/// footprint still covers every offset the callee can touch.
TEST(FootprintContextTest, ContextCacheSaturationFallsBackToJoinedSummary) {
  std::ostringstream src;
  src << ".data\nbig: .space 8192\n.text\nmain:\n";
  constexpr u32 kSites = 40;  // > kMaxContextClones = 32
  for (u32 i = 0; i < kSites; ++i) {
    src << "  la a0, big\n"
        << "  addi a0, a0, " << i * 8 << "\n"
        << "  li a1, 2\n"
        << "  jal fill\n";
  }
  src << "  li a0, 0\n  li v0, 1\n  syscall\n\n"
      << "fill:\n"
      << "  li t2, 0\n"
      << "floop:\n"
      << "  sll t3, t2, 2\n"
      << "  add t3, t3, a0\n"
      << "  lw t4, 0(t3)\n"
      << "  addi t4, t4, 1\n"
      << "  sw t4, 0(t3)\n"
      << "  addi t2, t2, 1\n"
      << "  blt t2, a1, floop\n"
      << "  jr ra\n";

  const isa::Program program = isa::assemble(src.str());
  AnalysisOptions options;
  options.interprocedural_footprint = true;
  options.context_depth = 1;
  const PageFootprint fp = analyze(program, options).footprint;

  // The cache saturated and the remaining call sites fell back.
  EXPECT_GT(fp.contexts_cloned, 0u);
  EXPECT_GT(fp.context_fallbacks, 0u);
  // Soundness of the fall-back: every site still resolves (the joined
  // context sees one absolute range covering all the offsets) and the
  // buffer's pages are all predicted.
  EXPECT_EQ(fp.unknown_sites, 0u);
  const u32 first = mem::page_of(program.data_base);
  const u32 last = mem::page_of(program.data_base + (kSites - 1) * 8 + 7);
  for (u32 page = first; page <= last; ++page) {
    EXPECT_TRUE(std::count(fp.pages.begin(), fp.pages.end(), page) > 0)
        << "page " << page << " reachable through a fallen-back call site "
        << "is missing from the footprint";
  }
}

// Self-recursive callee whose pointer argument advances on every level.
constexpr const char* kRecursive = R"(
.data
arr: .space 256
.text
main:
  la a0, arr
  li a1, 8
  jal rec
  li a0, 0
  li v0, 1
  syscall

rec:
  addi sp, sp, -8
  sw ra, 4(sp)
  sw a1, 0(sp)
  beq a1, zero, base
  sw a1, 0(a0)
  addi a0, a0, 4
  addi a1, a1, -1
  jal rec
base:
  lw ra, 4(sp)
  addi sp, sp, 8
  jr ra
)";

/// Recursion with a changing argument tuple would clone forever without the
/// depth budget: each level past the budget re-enters the joined context,
/// whose widened fixpoint terminates.  The analysis must terminate at every
/// depth and never under-approximate the touched pages.
TEST(FootprintContextTest, RecursionUnderCloningTerminates) {
  const isa::Program program = isa::assemble(kRecursive);
  const u32 arr_page = mem::page_of(program.data_base);
  for (const u32 depth : {0u, 1u, 3u}) {
    AnalysisOptions options;
    options.interprocedural_footprint = true;
    options.context_depth = depth;
    const PageFootprint fp = analyze(program, options).footprint;  // terminates
    // Every store in `rec` either resolves with the array page predicted or
    // stays unknown (excluded from checking) — both sound.
    for (const AccessSite& site : fp.sites) {
      if (!site.is_store || site.base != AddressBase::kAbsolute) continue;
      EXPECT_TRUE(std::count(fp.pages.begin(), fp.pages.end(), arr_page) > 0);
    }
    if (depth > 0) {
      // The clone count stays within the cache bound even though the
      // recursion offers unboundedly many distinct argument tuples.
      EXPECT_LE(fp.contexts_cloned, 32u);
    }
  }
}

}  // namespace
}  // namespace rse::analysis
