// Every shipped workload must lint clean at error severity — both the
// campaign registry's pre-instrumented setups and the raw generator sources
// after Table 4 instrumentation.  This pins the analyzer's false-positive
// rate on real programs at zero and keeps future workloads honest.
#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "campaign/workload.hpp"
#include "isa/assembler.hpp"
#include "workloads/workloads.hpp"

namespace rse::analysis {
namespace {

void expect_error_free(const std::string& label, const std::string& source) {
  const isa::Program program = isa::assemble(source);
  const AnalysisResult result = analyze(program);
  EXPECT_EQ(result.count(Severity::kError), 0u) << label << " has lint errors:\n"
                                                << to_json(program, result);
  // Reachability must cover the whole program: an unreachable-block warning
  // on shipped code means CFG recovery lost an edge.
  EXPECT_EQ(result.cfg.reachable_blocks(), result.cfg.blocks.size())
      << label << " has blocks the analyzer believes are unreachable";
}

TEST(WorkloadLintTest, CampaignWorkloadsLintClean) {
  for (const std::string& name : campaign::workload_names()) {
    // The CHECK-bypass pair patches its own gate instruction — the one
    // corpus entry that is *supposed* to lint dirty (see the dedicated
    // test below); every other workload, attacks included, lints clean.
    if (name == "attack-chk" || name == "benign-chk") continue;
    expect_error_free("campaign workload '" + name + "'",
                      campaign::make_workload(name).source);
  }
}

TEST(WorkloadLintTest, ChkPatchScenariosAreFlaggedByStaticLint) {
  // The CHECK-bypass scenarios (attack and benign twin alike) rewrite the
  // gate instruction in place, so the static pass reports the store-to-text
  // that the dynamic ICM misses when the CHECK itself is bypassed
  // (docs/security.md).  The donor/mirror blocks are read as data, never
  // jumped to, so an unreachable-block warning rides along.  Pin both: a
  // lint-clean chk scenario would mean the attack stopped attacking.
  for (const char* name : {"attack-chk", "benign-chk"}) {
    const isa::Program program = isa::assemble(campaign::make_workload(name).source);
    const AnalysisResult result = analyze(program);
    EXPECT_EQ(result.count(Severity::kError), 1u) << name;
    bool store_to_text = false;
    bool unreachable = false;
    for (const Diagnostic& d : result.diagnostics) {
      if (d.code == DiagCode::kStoreToText) store_to_text = true;
      if (d.code == DiagCode::kUnreachableBlock) unreachable = true;
    }
    EXPECT_TRUE(store_to_text) << name << ": the gate patch must be flagged";
    EXPECT_TRUE(unreachable) << name << ": donor/mirror are data, not flow targets";
  }
}

TEST(WorkloadLintTest, GeneratorSourcesLintCleanInstrumented) {
  expect_error_free("kmeans", workloads::instrument_checks(workloads::kmeans_source({})));
  expect_error_free("server", workloads::instrument_checks(workloads::server_source({})));
  expect_error_free("vpr_place",
                    workloads::instrument_checks(workloads::vpr_place_source({})));
  expect_error_free("vpr_route",
                    workloads::instrument_checks(workloads::vpr_route_source({})));
}

TEST(WorkloadLintTest, ShippedWorkloadsLintFootprintClean) {
  // No shipped workload stores outside its own footprint — a
  // store-outside-footprint diagnostic on real code would mean the data-flow
  // pass resolved an address wrongly (it is an error, so expect_error_free
  // would also trip, but this pins the specific code for clearer failures).
  for (const std::string& name : campaign::workload_names()) {
    const isa::Program program = isa::assemble(campaign::make_workload(name).source);
    const AnalysisResult result = analyze(program);
    for (const Diagnostic& d : result.diagnostics) {
      EXPECT_NE(d.code, DiagCode::kStoreOutsideFootprint)
          << "workload '" << name << "': " << format_diagnostic(d);
    }
  }
}

TEST(WorkloadLintTest, ResolvedWorkloadsPredictPages) {
  // The static-DDT showcase workloads: their resolved store sites must fold
  // to a non-empty page prediction, or --static-ddt silently degrades to the
  // dynamic-only DDT.
  for (const char* name : {"kmeans", "server"}) {
    const isa::Program program = isa::assemble(campaign::make_workload(name).source);
    const AnalysisResult result = analyze(program);
    EXPECT_FALSE(result.footprint.pages.empty()) << name;
    EXPECT_FALSE(result.footprint.store_pages.empty()) << name;
    EXPECT_FALSE(result.footprint.checked_pcs().empty()) << name;
    EXPECT_GT(result.footprint.exact_sites, 0u) << name;
  }
}

TEST(WorkloadLintTest, CallsWorkloadResolvesItsReturns) {
  // The static-CFC showcase workload: all three callee returns (square, mix,
  // accum) must resolve so the CFC gets exact successor sets instead of
  // range-check fallbacks.
  const isa::Program program = isa::assemble(campaign::make_workload("calls").source);
  const AnalysisResult result = analyze(program);
  EXPECT_EQ(result.unresolved_indirects, 0u);
  EXPECT_EQ(result.indirect.size(), 3u);
  for (const auto& [pc, targets] : result.indirect) {
    EXPECT_FALSE(targets.empty()) << "empty successor set at 0x" << std::hex << pc;
  }
}

}  // namespace
}  // namespace rse::analysis
