// CFG recovery (analysis/cfg.hpp): block partitioning, successor sets,
// call/return-edge inference, address-taken tracking, reachability.
#include "analysis/cfg.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "isa/assembler.hpp"

namespace rse::analysis {
namespace {

const BasicBlock& block_starting(const ControlFlowGraph& cfg, Addr start) {
  const BasicBlock* block = cfg.block_at(start);
  EXPECT_NE(block, nullptr) << "no block at 0x" << std::hex << start;
  EXPECT_EQ(block->start, start);
  return *block;
}

TEST(CfgTest, StraightLineProgramIsOneBlockPerTerminator) {
  const isa::Program program = isa::assemble(R"(
.text
main:
  li t0, 1
  addi t0, t0, 2
  move a0, t0
  li v0, 1
  syscall
)");
  const ControlFlowGraph cfg = build_cfg(program);
  ASSERT_EQ(cfg.blocks.size(), 1u);
  const BasicBlock& block = cfg.blocks[0];
  EXPECT_EQ(block.start, program.text_base);
  EXPECT_EQ(block.end, program.text_end());
  EXPECT_EQ(block.exit, BlockExit::kSyscall);
  EXPECT_TRUE(block.reachable);
  // Syscall keeps the fall-through (here: off the end, none) as successor.
  EXPECT_TRUE(block.successors.empty());
}

TEST(CfgTest, BranchSplitsBlocksAndGetsBothSuccessors) {
  const isa::Program program = isa::assemble(R"(
.text
main:
  li t0, 5
loop:
  addi t0, t0, -1
  bne t0, r0, loop
  li a0, 0
  li v0, 1
  syscall
)");
  const ControlFlowGraph cfg = build_cfg(program);
  const Addr loop = program.symbol("loop");

  const BasicBlock& head = block_starting(cfg, program.text_base);
  EXPECT_EQ(head.exit, BlockExit::kFallThrough);
  ASSERT_EQ(head.successors.size(), 1u);
  EXPECT_EQ(head.successors[0], loop);

  const BasicBlock& body = block_starting(cfg, loop);
  EXPECT_EQ(body.exit, BlockExit::kBranch);
  ASSERT_EQ(body.successors.size(), 2u);  // sorted: target < fall-through here
  EXPECT_TRUE(std::binary_search(body.successors.begin(), body.successors.end(), loop));
  EXPECT_TRUE(std::binary_search(body.successors.begin(), body.successors.end(), body.end));
  EXPECT_TRUE(std::is_sorted(body.successors.begin(), body.successors.end()));
}

TEST(CfgTest, CallEdgesAndReturnSiteInference) {
  const isa::Program program = isa::assemble(R"(
.text
main:
  jal leaf
  jal leaf
  li a0, 0
  li v0, 1
  syscall
leaf:
  addi v1, a0, 1
  jr ra
)");
  const ControlFlowGraph cfg = build_cfg(program);
  const Addr leaf = program.symbol("leaf");

  ASSERT_EQ(cfg.calls.size(), 2u);
  EXPECT_EQ(cfg.calls[0].callee, leaf);
  EXPECT_EQ(cfg.calls[0].return_site, cfg.calls[0].call_pc + 4);
  EXPECT_EQ(cfg.calls[1].callee, leaf);

  // The leaf's jr $ra resolves to exactly the two return sites.
  const BasicBlock& ret = block_starting(cfg, leaf);
  EXPECT_EQ(ret.exit, BlockExit::kReturn);
  EXPECT_TRUE(ret.indirect_resolved);
  ASSERT_EQ(ret.successors.size(), 2u);
  EXPECT_EQ(ret.successors[0], cfg.calls[0].return_site);
  EXPECT_EQ(ret.successors[1], cfg.calls[1].return_site);
  EXPECT_TRUE(ret.reachable);

  // And lands in the CFC handoff table under the jr's own PC.
  const IndirectTargetTable table = indirect_targets(cfg);
  const auto it = table.find(ret.terminator_pc());
  ASSERT_NE(it, table.end());
  EXPECT_EQ(it->second, ret.successors);
}

TEST(CfgTest, ReturnWithoutCallSitesIsUnresolved) {
  // `leaf` is never called via jal, so its return set cannot be inferred;
  // the block must stay out of the handoff table (CFC range-check fallback).
  const isa::Program program = isa::assemble(R"(
.text
main:
  li a0, 0
  li v0, 1
  syscall
leaf:
  jr ra
)");
  const ControlFlowGraph cfg = build_cfg(program);
  const BasicBlock& ret = block_starting(cfg, program.symbol("leaf"));
  EXPECT_EQ(ret.exit, BlockExit::kReturn);
  EXPECT_FALSE(ret.indirect_resolved);
  EXPECT_TRUE(indirect_targets(cfg).empty());
}

TEST(CfgTest, AddressTakenResolvesNonReturnIndirects) {
  const isa::Program program = isa::assemble(R"(
.text
main:
  la t0, handler
  jr t0
handler:
  li a0, 0
  li v0, 1
  syscall
)");
  const ControlFlowGraph cfg = build_cfg(program);
  const Addr handler = program.symbol("handler");
  EXPECT_TRUE(cfg.address_taken.count(handler));

  const BasicBlock* jump = cfg.block_at(program.text_base);
  ASSERT_NE(jump, nullptr);
  EXPECT_EQ(jump->exit, BlockExit::kIndirect);
  EXPECT_TRUE(jump->indirect_resolved);
  ASSERT_EQ(jump->successors.size(), 1u);
  EXPECT_EQ(jump->successors[0], handler);

  // The address-taken landing pad is a root: it stays reachable.
  EXPECT_TRUE(cfg.block_at(handler)->reachable);
}

TEST(CfgTest, UnreachableBlockIsMarked) {
  const isa::Program program = isa::assemble(R"(
.text
main:
  j end
dead:
  addi t0, t0, 1
end:
  li a0, 0
  li v0, 1
  syscall
)");
  const ControlFlowGraph cfg = build_cfg(program);
  EXPECT_FALSE(cfg.block_at(program.symbol("dead"))->reachable);
  EXPECT_TRUE(cfg.block_at(program.symbol("end"))->reachable);
  EXPECT_EQ(cfg.reachable_blocks(), 2u);
}

TEST(CfgTest, CallFallThroughIsReachableAcrossTheCallee) {
  // Reachability must continue at the call's return site even though the
  // jal's only static successor is the callee entry.
  const isa::Program program = isa::assemble(R"(
.text
main:
  jal leaf
  li a0, 0
  li v0, 1
  syscall
leaf:
  jr ra
)");
  const ControlFlowGraph cfg = build_cfg(program);
  for (const BasicBlock& block : cfg.blocks) {
    EXPECT_TRUE(block.reachable) << "block at 0x" << std::hex << block.start;
  }
}

}  // namespace
}  // namespace rse::analysis
