# Lint fixture: a direct jump whose target lies far outside the text
# segment — the static shape of a corrupted branch-offset field.  rse_lint
# must report branch-target-outside-text at error severity and exit nonzero.
.text
main:
  li t0, 1
  j 0x00500000
