# Server-style callee taking a buffer pointer in $a0: one call site passes a
# global request buffer, the other a stack-local scratch area.  The
# context-insensitive analyzer joins the two incoming pointers (absolute
# join stack = unknown) and must give up on every access in `process`; with
# context cloning (the default --context-depth 1) each call site resolves
# exactly and the lint reports zero unresolved sites.
.data
reqbuf: .space 256
.text
main:
  la a0, reqbuf
  li a1, 32
  jal process
  addi a0, sp, -128
  li a1, 16
  jal process
  li a0, 0
  li v0, 1
  syscall

process:              # a0 = buffer, a1 = word count
  li t2, 0
ploop:
  sll t3, t2, 2
  add t3, t3, a0
  lw t4, 0(t3)
  addi t4, t4, 3
  sw t4, 0(t3)
  addi t2, t2, 1
  blt t2, a1, ploop
  jr ra
