# Lint fixture: a store above the thread's initial stack pointer.  The
# loader leaves only a small alignment slack above sp, so a positive
# sp-relative store beyond it clobbers memory the thread does not own.
# rse_lint must report store-outside-footprint at error severity.
.text
main:
  li t0, 7
  sw t0, 100(sp)
  li v0, 1
  li a0, 0
  syscall
