# Lint fixture: a store through a constant pointer that lands between the
# text and data segments — the static shape of a corrupted base address.
# The data-flow pass resolves the address exactly, so rse_lint must report
# store-outside-footprint at error severity and exit nonzero.
.data
.align 4
buf: .space 16
.text
main:
  li t0, 0x00F00000
  li t1, 1
  sw t1, 0(t0)
  li v0, 1
  li a0, 0
  syscall
