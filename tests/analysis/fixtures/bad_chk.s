# Lint fixture: mis-parameterized CHK instructions.  Module #6 names no RSE
# module (chk-unknown-module), and the framework enable selects module 6 in
# its imm12 (chk-bad-config) — both error severity, so rse_lint exits 1.
.text
main:
  chk 6, 0, nblk, r0, 0
  chk frame, 1, nblk, r0, 6
  li a0, 0
  li v0, 1
  syscall
