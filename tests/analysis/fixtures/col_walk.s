# Column walk with a three-page stride: four elements stepping 12288 bytes
# through a 12-page matrix.  The field-sensitive footprint must report the
# walk sites with stride 12288 and fold exact residue pages {0, 3, 6, 9}
# (pages 0x10000/0x10003/0x10006/0x10009); the dense hull covers all ten.
.data
mat: .space 49152

.text
main:
  la a0, mat
  li a1, 4
  li a2, 12288
  jal walk
  li a0, 0
  li v0, 1
  syscall

walk:
  li t2, 0
wl:
  mul t3, t2, a2
  add t3, t3, a0
  lw t4, 0(t3)
  addi t4, t4, 1
  sw t4, 0(t3)
  addi t2, t2, 1
  blt t2, a1, wl
  jr ra
