// Guest OS syscall layer and process lifecycle.
#include <gtest/gtest.h>

#include "../support/sim_runner.hpp"

namespace rse {
namespace {

using testing::SimRunner;
using testing::run_for_output;

TEST(GuestOs, PrintSyscalls) {
  const std::string out = run_for_output(R"(
.data
msg: .byte 104, 105, 0     # "hi"
.text
main:
  li a0, -42
  li v0, 2
  syscall
  li a0, 32
  li v0, 3
  syscall
  la a0, msg
  li v0, 15
  syscall
  li a0, 0
  li v0, 1
  syscall
)");
  EXPECT_EQ(out, "-42 hi");
}

TEST(GuestOs, ClockAdvances) {
  const std::string out = run_for_output(R"(
.text
main:
  li v0, 4
  syscall
  move s0, v0
  li t0, 0
spin:
  li t1, 200
  addi t0, t0, 1
  blt t0, t1, spin
  li v0, 4
  syscall
  sltu a0, s0, v0    # 1 if time advanced
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)");
  EXPECT_EQ(out, "1");
}

TEST(GuestOs, SbrkGrowsHeap) {
  SimRunner runner;
  runner.load_source(R"(
.text
main:
  li a0, 64
  li v0, 5
  syscall
  move s0, v0        # old break
  li a0, 64
  li v0, 5
  syscall
  sub a0, v0, s0     # second break - first = 64
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)");
  runner.run();
  EXPECT_EQ(runner.os().output(), "64");
}

TEST(GuestOs, RandIsUsable) {
  const std::string out = run_for_output(R"(
.text
main:
  li v0, 14
  syscall
  move s0, v0
  li v0, 14
  syscall
  xor t0, s0, v0
  sltu a0, r0, t0     # 1 if two draws differ
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)");
  EXPECT_EQ(out, "1");
}

TEST(GuestOs, ThreadCreateJoinExit) {
  const std::string out = run_for_output(R"(
.data
.align 2
flag: .word 0
.text
main:
  la a0, child
  li a1, 7
  li v0, 6
  syscall            # create child, arg 7
  move s0, v0        # tid
  move a0, s0
  li v0, 9
  syscall            # join
  lw a0, flag
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
child:
  la t0, flag
  sw a0, 0(t0)       # flag = arg
  li v0, 7
  syscall            # thread_exit
)");
  EXPECT_EQ(out, "7");
}

TEST(GuestOs, JoinOnDeadThreadReturnsImmediately) {
  const std::string out = run_for_output(R"(
.text
main:
  la a0, child
  li a1, 0
  li v0, 6
  syscall
  move s0, v0
  move a0, s0
  li v0, 9
  syscall            # first join waits
  move a0, s0
  li v0, 9
  syscall            # second join returns immediately
  li a0, 5
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
child:
  li v0, 7
  syscall
)");
  EXPECT_EQ(out, "5");
}

TEST(GuestOs, YieldRotatesThreads) {
  // Two children append markers; yields force interleaving.
  const std::string out = run_for_output(R"(
.text
main:
  la a0, child
  li a1, 65          # 'A'
  li v0, 6
  syscall
  move s0, v0
  la a0, child
  li a1, 66          # 'B'
  li v0, 6
  syscall
  move s1, v0
  move a0, s0
  li v0, 9
  syscall
  move a0, s1
  li v0, 9
  syscall
  li a0, 0
  li v0, 1
  syscall
child:
  move s7, a0
  li s6, 0
child_loop:
  li t0, 3
  bge s6, t0, child_done
  move a0, s7
  li v0, 3
  syscall            # print marker
  li v0, 8
  syscall            # yield
  addi s6, s6, 1
  b child_loop
child_done:
  li v0, 7
  syscall
)");
  // Perfect alternation after both threads start.
  EXPECT_NE(out.find("AB"), std::string::npos);
  EXPECT_NE(out.find("BA"), std::string::npos);
  EXPECT_EQ(out.size(), 6u);
}

TEST(GuestOs, ThreadLimitReturnsError) {
  os::OsConfig config;
  config.max_threads = 2;  // main + 1 child
  SimRunner runner(os::MachineConfig{}, config);
  runner.load_source(R"(
.text
main:
  la a0, child
  li a1, 0
  li v0, 6
  syscall
  move s0, v0
  la a0, child
  li a1, 0
  li v0, 6
  syscall            # exceeds limit -> -1
  move a0, v0
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
child:
  li v0, 7
  syscall
)");
  runner.run();
  EXPECT_EQ(runner.os().output(), "-1");
}

TEST(GuestOs, CrashWithoutDdtKillsEverything) {
  SimRunner runner;  // no framework at all
  runner.load_source(R"(
.text
main:
  la a0, child
  li a1, 0
  li v0, 6
  syscall
  li t0, 0
spin:
  addi t0, t0, 1
  b spin
child:
  li v0, 13
  syscall            # crash
)");
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().exit_code(), 139);
  EXPECT_EQ(runner.os().live_thread_count(), 0u);
}

TEST(GuestOs, IllegalInstructionIsAThreadCrash) {
  SimRunner runner;
  runner.load_source(R"(
.data
bad: .word 0xFC000000      # unassigned opcode
.text
main:
  la t0, bad
  jr t0                    # jump into data: decodes as illegal
)");
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().exit_code(), 139);
  EXPECT_EQ(runner.os().stats().crashes, 1u);
}

TEST(GuestOs, RunLimitStopsRunaways) {
  os::OsConfig config;
  config.run_limit = 5000;
  SimRunner runner(os::MachineConfig{}, config);
  runner.load_source(R"(
.text
main:
spin:
  b spin
)");
  runner.run();
  EXPECT_FALSE(runner.os().finished());
  EXPECT_GE(runner.cycles(), 5000u);
  EXPECT_LE(runner.cycles(), 5002u);
}

TEST(GuestOs, OutputAccumulatesAcrossThreads) {
  const std::string out = run_for_output(R"(
.text
main:
  li a0, 1
  li v0, 2
  syscall
  la a0, child
  li a1, 2
  li v0, 6
  syscall
  move a0, v0
  li v0, 9
  syscall
  li a0, 3
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
child:
  move a0, a0
  li v0, 2
  syscall
  li v0, 7
  syscall
)");
  EXPECT_EQ(out, "123");
}

}  // namespace
}  // namespace rse
