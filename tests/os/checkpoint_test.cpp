#include "os/checkpoint.hpp"

#include <gtest/gtest.h>

#include "mem/main_memory.hpp"

namespace rse::os {
namespace {

std::vector<u8> page_data(u8 fill) { return std::vector<u8>(mem::kPageBytes, fill); }

TEST(CheckpointStore, RecordsInOrder) {
  CheckpointStore store;
  store.add(1, 10, 100, page_data(1));
  store.add(2, 11, 200, page_data(2));
  ASSERT_EQ(store.count(), 2u);
  EXPECT_EQ(store.log()[0].page, 1u);
  EXPECT_EQ(store.log()[1].page, 2u);
  EXPECT_EQ(store.log()[0].new_writer, 10u);
  EXPECT_EQ(store.bytes(), 2 * mem::kPageBytes);
}

TEST(CheckpointStore, UnboundedByDefault) {
  CheckpointStore store;
  for (int i = 0; i < 50; ++i) store.add(i, 0, i, page_data(0));
  EXPECT_EQ(store.count(), 50u);
  EXPECT_EQ(store.dropped_count(), 0u);
}

TEST(CheckpointStore, BudgetEnforcedByDroppingOldest) {
  CheckpointStore store(2 * mem::kPageBytes);
  store.add(1, 0, 1, page_data(1));
  store.add(2, 0, 2, page_data(2));
  store.add(3, 0, 3, page_data(3));
  EXPECT_EQ(store.count(), 2u);
  EXPECT_EQ(store.log()[0].page, 2u);  // oldest dropped
  EXPECT_TRUE(store.page_history_dropped(1));
  EXPECT_FALSE(store.page_history_dropped(2));
  EXPECT_EQ(store.dropped_count(), 1u);
  EXPECT_EQ(store.dropped_pages().size(), 1u);
}

TEST(CheckpointStore, ClearResetsEverythingButRemembersNothing) {
  CheckpointStore store(2 * mem::kPageBytes);
  store.add(1, 0, 1, page_data(1));
  store.add(2, 0, 2, page_data(2));
  store.add(3, 0, 3, page_data(3));
  store.clear();
  EXPECT_EQ(store.count(), 0u);
  EXPECT_EQ(store.bytes(), 0u);
  EXPECT_FALSE(store.page_history_dropped(1));  // new epoch
}

TEST(CheckpointStore, SnapshotContentPreserved) {
  CheckpointStore store;
  std::vector<u8> data = page_data(0);
  data[17] = 0xAB;
  store.add(5, 3, 99, data);
  EXPECT_EQ(store.log()[0].data[17], 0xAB);
  EXPECT_EQ(store.log()[0].at, 99u);
}

}  // namespace
}  // namespace rse::os
