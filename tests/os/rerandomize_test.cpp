// Runtime re-randomization (paper section 4.1's extension): the process is
// periodically stopped, the MLR relocates the GOT, the PLT and every
// compiler-recorded pointer slot are patched, and execution resumes — while
// calls through the PLT and through cached pointers keep working.
#include <gtest/gtest.h>

#include "../support/sim_runner.hpp"

namespace rse {
namespace {

using testing::SimRunner;

// A program exercising both indirection paths across re-randomizations:
// calls through the PLT and through a compiler-cached pointer listed in the
// special pointer section.  fn_add adds 2, fn_sub subtracts 1 per loop:
// counter must end at exactly iterations * 1.
constexpr const char* kGotProgram = R"(
.data
.align 4
got:     .word fn_add, fn_sub
plt:     .word got+0, got+4
cached:  .word got+4
ptrsec:  .word cached
counter: .word 0
.text
main:
  la a0, got
  la a1, plt
  li a2, 8
  li v0, 16
  syscall                 # register GOT/PLT for re-randomization
  la a0, ptrsec
  li a1, 1
  li v0, 17
  syscall                 # register the compiler-recorded pointer slot
  li s0, 0
loop:
  li t0, 2000
  bge s0, t0, done
  lw t1, plt              # &got[0], wherever the GOT currently lives
  lw t1, 0(t1)
  jalr t1                 # fn_add: counter += 2
  lw t1, cached           # the cached pointer the OS keeps fixed up
  lw t1, 0(t1)
  jalr t1                 # fn_sub: counter -= 1
  addi s0, s0, 1
  b loop
done:
  lw a0, counter
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
fn_add:
  lw t2, counter
  addi t2, t2, 2
  sw t2, counter
  jr ra
fn_sub:
  lw t2, counter
  addi t2, t2, -1
  sw t2, counter
  jr ra
)";

os::MachineConfig rse_machine() {
  os::MachineConfig config;
  config.framework_present = true;
  return config;
}

TEST(Rerandomize, ProgramSurvivesManyRelocations) {
  os::OsConfig os_config;
  os_config.rerandomize_interval = 4000;
  SimRunner runner(rse_machine(), os_config);
  runner.load_source(kGotProgram);
  const Addr original_got = runner.program().symbol("got");
  runner.run();
  ASSERT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().output(), "2000");
  EXPECT_GT(runner.os().stats().rerandomizations, 3u);
  EXPECT_GT(runner.os().stats().rerandomize_cycles, 0u);
  EXPECT_NE(runner.os().got_location(), original_got);
  // The MLR module did the relocations.
  EXPECT_GE(runner.machine().mlr()->stats().got_copies,
            runner.os().stats().rerandomizations);
}

TEST(Rerandomize, SuccessiveLocationsDiffer) {
  os::OsConfig os_config;
  os_config.rerandomize_interval = 4000;
  SimRunner runner(rse_machine(), os_config);
  runner.load_source(kGotProgram);
  std::vector<Addr> locations{runner.os().got_location()};
  u64 seen = 0;
  while (!runner.os().finished()) {
    runner.os().step();
    if (runner.os().stats().rerandomizations > seen) {
      seen = runner.os().stats().rerandomizations;
      locations.push_back(runner.os().got_location());
    }
  }
  ASSERT_GT(locations.size(), 3u);
  for (std::size_t i = 1; i < locations.size(); ++i) {
    EXPECT_NE(locations[i], locations[i - 1]);
  }
}

TEST(Rerandomize, StaleAddressAttackIsFoiled) {
  // An attacker who learned the GOT's address before a re-randomization and
  // overwrites it afterwards corrupts dead memory: the live (moved) GOT is
  // untouched and the program completes correctly.
  os::OsConfig os_config;
  os_config.rerandomize_interval = 4000;
  SimRunner runner(rse_machine(), os_config);
  runner.load_source(kGotProgram);
  const Addr leaked_got = runner.program().symbol("got");  // attacker's knowledge
  while (!runner.os().finished() && runner.os().stats().rerandomizations < 2) {
    runner.os().step();
  }
  ASSERT_FALSE(runner.os().finished());
  // The attack: clobber both function pointers at the leaked address.
  runner.machine().memory().write_u32(leaked_got, 0xDEAD0000);
  runner.machine().memory().write_u32(leaked_got + 4, 0xDEAD0004);
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().exit_code(), 0);
  EXPECT_EQ(runner.os().output(), "2000");
}

TEST(Rerandomize, SameAttackHijacksWithoutRerandomization) {
  // Control: with re-randomization off, the same overwrite corrupts the
  // live GOT and the next indirect call crashes the thread.
  SimRunner runner(rse_machine());  // interval = 0
  runner.load_source(kGotProgram);
  const Addr got = runner.program().symbol("got");
  for (int i = 0; i < 2000; ++i) runner.os().step();
  ASSERT_FALSE(runner.os().finished());
  runner.machine().memory().write_u32(got, 0xDEAD0000);
  runner.machine().memory().write_u32(got + 4, 0xDEAD0004);
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().exit_code(), 139);  // jump into unmapped space
}

TEST(Rerandomize, DisabledByDefault) {
  SimRunner runner(rse_machine());
  runner.load_source(kGotProgram);
  runner.run();
  EXPECT_EQ(runner.os().output(), "2000");
  EXPECT_EQ(runner.os().stats().rerandomizations, 0u);
}

TEST(Rerandomize, SoftwareFallbackWithoutRse) {
  // No framework: the OS falls back to a TRR-style software relocation.
  os::OsConfig os_config;
  os_config.rerandomize_interval = 4000;
  SimRunner runner(os::MachineConfig{}, os_config);
  runner.load_source(kGotProgram);
  runner.run();
  EXPECT_EQ(runner.os().output(), "2000");
  EXPECT_GT(runner.os().stats().rerandomizations, 0u);
}

TEST(Rerandomize, MultithreadedProcessSurvivesRelocations) {
  // Re-randomization stops the whole process (every thread) and resumes it.
  os::OsConfig os_config;
  os_config.rerandomize_interval = 2500;
  os_config.quantum = 3000;
  SimRunner runner(rse_machine(), os_config);
  runner.load_source(R"(
.data
.align 4
got:     .word helper
plt:     .word got+0
total:   .word 0
.text
main:
  la a0, got
  la a1, plt
  li a2, 4
  li v0, 16
  syscall
  la a0, worker
  li a1, 0
  li v0, 6
  syscall
  move s1, v0
  jal work_body
  move a0, s1
  li v0, 9
  syscall
  lw a0, total
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
worker:
  jal work_body
  li v0, 7
  syscall
work_body:
  move s5, ra
  li s0, 0
wb_loop:
  li t0, 800
  bge s0, t0, wb_done
  lw t1, plt
  lw t1, 0(t1)
  jalr t1
  addi s0, s0, 1
  b wb_loop
wb_done:
  jr s5
helper:
  lw t2, total
  addi t2, t2, 1
  sw t2, total
  jr ra
)");
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().output(), "1600");
  EXPECT_GT(runner.os().stats().rerandomizations, 1u);
}

}  // namespace
}  // namespace rse
