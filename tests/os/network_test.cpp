#include "os/network.hpp"

#include <gtest/gtest.h>

namespace rse::os {
namespace {

NetworkConfig no_jitter(u32 total, Cycle gap) {
  NetworkConfig config;
  config.total_requests = total;
  config.interarrival = gap;
  config.jitter_pct = 0;
  return config;
}

TEST(Network, ArrivalsSpacedByInterarrival) {
  SimNetwork net(no_jitter(3, 100));
  EXPECT_FALSE(net.has_ready(99));
  EXPECT_TRUE(net.has_ready(100));
  EXPECT_EQ(net.next_arrival(), 100u);
}

TEST(Network, AcceptConsumesInOrder) {
  SimNetwork net(no_jitter(3, 100));
  EXPECT_EQ(net.accept(50), std::nullopt);
  EXPECT_EQ(net.accept(100).value(), 0u);
  EXPECT_EQ(net.accept(100), std::nullopt);  // #1 arrives at 200
  EXPECT_EQ(net.accept(250).value(), 1u);
  EXPECT_EQ(net.accept(300).value(), 2u);
  EXPECT_TRUE(net.exhausted());
}

TEST(Network, CompletionTracking) {
  SimNetwork net(no_jitter(2, 10));
  net.accept(10);
  net.accept(20);
  EXPECT_FALSE(net.all_completed());
  net.complete(0, 100);
  net.complete(1, 150);
  EXPECT_TRUE(net.all_completed());
  EXPECT_EQ(net.stats().last_completion, 150u);
}

TEST(Network, JitterKeepsArrivalsMonotonic) {
  NetworkConfig config;
  config.total_requests = 50;
  config.interarrival = 100;
  config.jitter_pct = 40;
  SimNetwork net(config);
  Cycle prev = 0;
  for (u32 i = 0; i < 50; ++i) {
    ASSERT_TRUE(net.accept(1'000'000).has_value());
    (void)prev;
  }
  EXPECT_TRUE(net.exhausted());
}

TEST(Network, IoLatencyWithinJitterBand) {
  NetworkConfig config;
  config.io_latency_mean = 1000;
  config.jitter_pct = 40;
  SimNetwork net(config);
  for (int i = 0; i < 200; ++i) {
    const Cycle latency = net.io_latency();
    EXPECT_GE(latency, 600u);
    EXPECT_LE(latency, 1400u);
  }
}

TEST(Network, DeterministicForSeed) {
  NetworkConfig config;
  config.seed = 99;
  SimNetwork a(config), b(config);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.io_latency(), b.io_latency());
}

}  // namespace
}  // namespace rse::os
