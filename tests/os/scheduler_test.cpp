// Scheduler behaviour: quantum preemption, context-switch cost accounting,
// blocking I/O overlap.
#include <gtest/gtest.h>

#include <set>

#include "../support/sim_runner.hpp"

namespace rse {
namespace {

using testing::SimRunner;

// Two CPU-bound children that each count to N and store progress; with
// preemptive round-robin both must finish even though neither yields.
constexpr const char* kTwoSpinners = R"(
.data
.align 2
done_a: .word 0
done_b: .word 0
.text
main:
  la a0, worker_a
  li a1, 0
  li v0, 6
  syscall
  move s0, v0
  la a0, worker_b
  li a1, 0
  li v0, 6
  syscall
  move s1, v0
  move a0, s0
  li v0, 9
  syscall
  move a0, s1
  li v0, 9
  syscall
  lw t0, done_a
  lw t1, done_b
  add a0, t0, t1
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
worker_a:
  li t0, 0
loop_a:
  li t1, 30000
  addi t0, t0, 1
  blt t0, t1, loop_a
  li t2, 1
  la t3, done_a
  sw t2, 0(t3)
  li v0, 7
  syscall
worker_b:
  li t0, 0
loop_b:
  li t1, 30000
  addi t0, t0, 1
  blt t0, t1, loop_b
  li t2, 1
  la t3, done_b
  sw t2, 0(t3)
  li v0, 7
  syscall
)";

TEST(Scheduler, PreemptionLetsCpuBoundThreadsShare) {
  os::OsConfig config;
  config.quantum = 5000;
  SimRunner runner(os::MachineConfig{}, config);
  runner.load_source(kTwoSpinners);
  runner.run();
  EXPECT_EQ(runner.os().output(), "2");
  EXPECT_GT(runner.os().stats().preemptions, 3u);
  EXPECT_GT(runner.os().stats().context_switches, 4u);
}

TEST(Scheduler, LargerQuantumMeansFewerSwitches) {
  os::OsConfig small_quantum;
  small_quantum.quantum = 2000;
  SimRunner a(os::MachineConfig{}, small_quantum);
  a.load_source(kTwoSpinners);
  a.run();

  os::OsConfig large_quantum;
  large_quantum.quantum = 50000;
  SimRunner b(os::MachineConfig{}, large_quantum);
  b.load_source(kTwoSpinners);
  b.run();

  EXPECT_GT(a.os().stats().context_switches, b.os().stats().context_switches);
  EXPECT_EQ(a.os().output(), "2");
  EXPECT_EQ(b.os().output(), "2");
}

TEST(Scheduler, ContextSwitchCostSlowsTotalRuntime) {
  os::OsConfig cheap;
  cheap.quantum = 2000;
  cheap.context_switch_cost = 0;
  SimRunner a(os::MachineConfig{}, cheap);
  a.load_source(kTwoSpinners);
  a.run();

  os::OsConfig expensive = cheap;
  expensive.context_switch_cost = 2000;
  SimRunner b(os::MachineConfig{}, expensive);
  b.load_source(kTwoSpinners);
  b.run();

  EXPECT_LT(a.cycles(), b.cycles());
}

TEST(Scheduler, IoBlockedThreadDoesNotHoldTheCore) {
  // One thread sleeps on network I/O while another computes: total time is
  // close to the compute time, not compute + sleep.
  os::OsConfig config;
  SimRunner runner(os::MachineConfig{}, config);
  runner.os().network().configure([] {
    os::NetworkConfig net;
    net.total_requests = 1;
    net.interarrival = 1;
    net.io_latency_mean = 50000;
    net.jitter_pct = 0;
    return net;
  }());
  runner.load_source(R"(
.data
.align 2
done_io: .word 0
.text
main:
  la a0, sleeper
  li a1, 0
  li v0, 6
  syscall
  move s0, v0
  li t0, 0
crunch:
  li t1, 40000
  addi t0, t0, 1
  blt t0, t1, crunch
  move a0, s0
  li v0, 9
  syscall
  lw a0, done_io
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
sleeper:
  li v0, 11
  syscall            # block ~50k cycles of simulated I/O
  li t0, 1
  la t1, done_io
  sw t0, 0(t1)
  li v0, 7
  syscall
)");
  runner.run();
  EXPECT_EQ(runner.os().output(), "1");
  // compute ~40k iterations (<100k cycles) overlapping the 50k-cycle sleep.
  EXPECT_LT(runner.cycles(), 200'000u);
}

TEST(Scheduler, DrainedSwitchPreservesArchitecturalState) {
  // Aggressive preemption with dependent arithmetic: any state corruption on
  // context switches would change the final sum.
  os::OsConfig config;
  config.quantum = 500;  // extremely frequent switches
  SimRunner runner(os::MachineConfig{}, config);
  runner.load_source(kTwoSpinners);
  runner.run();
  EXPECT_EQ(runner.os().output(), "2");
}

TEST(Scheduler, RunSlicesAreOrderedAndDisjoint) {
  os::OsConfig config;
  config.quantum = 3000;
  SimRunner runner(os::MachineConfig{}, config);
  runner.os().set_record_slices(true);
  runner.load_source(kTwoSpinners);
  runner.run();
  const std::vector<os::RunSlice>& slices = runner.os().run_slices();
  ASSERT_GT(slices.size(), 4u);  // several switches happened
  for (std::size_t i = 0; i < slices.size(); ++i) {
    EXPECT_LT(slices[i].from, slices[i].to);
    if (i > 0) {
      // Chronological and non-overlapping (the core runs one thread at a
      // time; switch cost separates consecutive slices).
      EXPECT_GE(slices[i].from, slices[i - 1].to);
    }
  }
  // All three threads (main + two workers) got core time.
  std::set<ThreadId> seen;
  for (const auto& slice : slices) seen.insert(slice.thread);
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Scheduler, SlicesNotRecordedByDefault) {
  SimRunner runner;
  runner.load_source(kTwoSpinners);
  runner.run();
  EXPECT_TRUE(runner.os().run_slices().empty());
}

}  // namespace
}  // namespace rse
