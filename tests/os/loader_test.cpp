// Loader behaviour: segment placement, ICM static parse, execute protection,
// and MLR-driven layout decisions.
#include <gtest/gtest.h>

#include "../support/sim_runner.hpp"

namespace rse {
namespace {

using testing::SimRunner;

constexpr const char* kTinyProgram = R"(
.data
greeting: .word 0x1234
.text
main:
  chk icm, 0, blk, r0, 0
  add t0, t1, t2
  li a0, 0
  li v0, 1
  syscall
)";

TEST(Loader, PlacesTextAndData) {
  SimRunner runner;
  runner.load_source(kTinyProgram);
  const isa::Program& program = runner.program();
  auto& memory = runner.machine().memory();
  for (std::size_t i = 0; i < program.text.size(); ++i) {
    EXPECT_EQ(memory.read_u32(program.text_base + static_cast<Addr>(i * 4)), program.text[i]);
  }
  EXPECT_EQ(memory.read_u32(program.symbol("greeting")), 0x1234u);
}

TEST(Loader, HeapStartsPageAlignedAfterData) {
  SimRunner runner;
  runner.load_source(kTinyProgram);
  EXPECT_GE(runner.os().heap_base(), runner.program().data_end());
  EXPECT_EQ(runner.os().heap_base() % mem::kPageBytes, 0u);
}

TEST(Loader, MainThreadStackIsAlignedBelowStackBase) {
  SimRunner runner;
  runner.load_source(kTinyProgram);
  runner.run();
  EXPECT_EQ(runner.os().stack_base(), isa::kDefaultStackTop);  // no MLR
}

TEST(Loader, RegistersIcmCheckedInstructionsAtLoad) {
  os::MachineConfig config;
  config.framework_present = true;
  SimRunner runner(config);
  runner.os().enable_module(isa::ModuleId::kIcm);
  runner.load_source(kTinyProgram);
  // The instruction after the CHK has a redundant copy in CheckerMemory:
  // corrupting it in main memory is detected on the very first fetch.
  const Addr checked = runner.program().symbol("main") + 4;
  const Word original = runner.machine().memory().read_u32(checked);
  runner.machine().memory().write_u32(checked, original ^ 0x00010000);
  runner.run();
  EXPECT_GE(runner.machine().icm()->stats().mismatches, 1u);
}

TEST(Loader, ReloadReplacesPreviousProgramState) {
  os::MachineConfig config;
  config.framework_present = true;
  SimRunner runner(config);
  runner.load_source(kTinyProgram);
  runner.run();
  EXPECT_EQ(runner.os().exit_code(), 0);
  // Load a second program into the same machine/OS: must run cleanly with a
  // fresh thread table and checker memory.
  runner.os().load(isa::assemble(R"(
.text
main:
  li a0, 9
  li v0, 2
  syscall
  li a0, 3
  li v0, 1
  syscall
)"));
  runner.os().run();
  EXPECT_NE(runner.os().output().find("9"), std::string::npos);
}

TEST(Loader, ExecuteProtectionCoversDataSegment) {
  SimRunner runner;
  runner.load_source(R"(
.data
blob: .word 0x01284820   # a valid add encoding, but in the data segment
.text
main:
  la t0, blob
  jr t0
)");
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().exit_code(), 139);  // data is not executable
}

TEST(Loader, RandomizedLayoutShiftsAllThreeBases) {
  os::MachineConfig config;
  config.framework_present = true;
  os::OsConfig os_config;
  os_config.randomize_layout = true;
  SimRunner runner(config, os_config);
  runner.load_source(kTinyProgram);
  EXPECT_GT(runner.os().stack_base(), isa::kDefaultStackTop);
  EXPECT_GT(runner.os().shlib_base(), 0x6000'0000u);
  EXPECT_GT(runner.os().heap_base(), runner.program().data_end());
  EXPECT_GT(runner.os().stats().loader_cycles, 0u);
}

TEST(Loader, RandomizeWithoutFrameworkThrows) {
  os::OsConfig os_config;
  os_config.randomize_layout = true;
  SimRunner runner(os::MachineConfig{}, os_config);
  EXPECT_THROW(runner.load_source(kTinyProgram), ConfigError);
}

}  // namespace
}  // namespace rse
