// Edge cases of the syscall layer and scheduler corner conditions.
#include <gtest/gtest.h>

#include "../support/sim_runner.hpp"

namespace rse {
namespace {

using testing::SimRunner;
using testing::run_for_output;

TEST(SyscallEdge, JoinOnInvalidTidReturnsImmediately) {
  const std::string out = run_for_output(R"(
.text
main:
  li a0, 99
  li v0, 9
  syscall            # join on a tid that never existed
  li a0, 1
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)");
  EXPECT_EQ(out, "1");
}

TEST(SyscallEdge, JoinSelfWouldDeadlockButRunLimitBounds) {
  // Joining yourself can never complete; the run limit contains it.
  os::OsConfig config;
  config.run_limit = 20000;
  SimRunner runner(os::MachineConfig{}, config);
  runner.load_source(R"(
.text
main:
  li a0, 0
  li v0, 9
  syscall            # join(self)
  li a0, 0
  li v0, 1
  syscall
)");
  runner.run();
  EXPECT_FALSE(runner.os().finished());
}

TEST(SyscallEdge, YieldWithNoOtherThreadContinues) {
  const std::string out = run_for_output(R"(
.text
main:
  li v0, 8
  syscall            # yield with an empty ready queue
  li v0, 8
  syscall
  li a0, 7
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)");
  EXPECT_EQ(out, "7");
}

TEST(SyscallEdge, SbrkZeroReturnsCurrentBreak) {
  const std::string out = run_for_output(R"(
.text
main:
  li a0, 0
  li v0, 5
  syscall
  move s0, v0
  li a0, 0
  li v0, 5
  syscall
  sub a0, v0, s0     # two zero-sbrk calls: same break
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)");
  EXPECT_EQ(out, "0");
}

TEST(SyscallEdge, SbrkReturnsAlignedRegions) {
  SimRunner runner;
  runner.load_source(R"(
.text
main:
  li a0, 5
  li v0, 5
  syscall
  li a0, 3
  li v0, 5
  syscall
  andi a0, v0, 15    # second region is 16-byte aligned
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)");
  runner.run();
  EXPECT_EQ(runner.os().output(), "0");
}

TEST(SyscallEdge, PrintStrStopsAtNulAndIsBounded) {
  const std::string out = run_for_output(R"(
.data
msg: .byte 111, 107, 0, 120, 120   # "ok\0xx"
.text
main:
  la a0, msg
  li v0, 15
  syscall
  li a0, 0
  li v0, 1
  syscall
)");
  EXPECT_EQ(out, "ok");
}

TEST(SyscallEdge, NetAcceptAfterExhaustionKeepsReturningMinusOne) {
  SimRunner runner;
  runner.os().network().configure([] {
    os::NetworkConfig net;
    net.total_requests = 1;
    net.interarrival = 1;
    return net;
  }());
  runner.load_source(R"(
.text
main:
  li v0, 10
  syscall            # accepts request 0
  move s0, v0
  li v0, 10
  syscall            # exhausted -> -1
  move s1, v0
  li v0, 10
  syscall            # still -1
  add a0, v0, s1     # -2
  li v0, 2
  syscall
  move a0, s0
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)");
  runner.run();
  EXPECT_EQ(runner.os().output(), "-20");
}

TEST(SyscallEdge, NetReplyWithoutAcceptIsHarmless) {
  const std::string out = run_for_output(R"(
.text
main:
  li a0, 5
  li v0, 12
  syscall            # reply to a request we never accepted
  li a0, 3
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)");
  EXPECT_EQ(out, "3");
}

TEST(SyscallEdge, ExitFromChildThreadEndsWholeProcess) {
  SimRunner runner;
  runner.load_source(R"(
.text
main:
  la a0, child
  li a1, 0
  li v0, 6
  syscall
spin:
  b spin
child:
  li a0, 55
  li v0, 1
  syscall            # process exit from a worker
)");
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().exit_code(), 55);
}

TEST(SyscallEdge, ClockIsMonotonicAcrossThreads) {
  const std::string out = run_for_output(R"(
.text
main:
  li v0, 4
  syscall
  move s0, v0
  la a0, child
  li a1, 0
  li v0, 6
  syscall
  move a0, v0
  li v0, 9
  syscall
  li v0, 4
  syscall
  sltu a0, s0, v0
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
child:
  li v0, 7
  syscall
)");
  EXPECT_EQ(out, "1");
}

TEST(SyscallEdge, RegisterPtrTableCapsEntries) {
  // A hostile count is clamped (only the first 1024 slots are read).
  SimRunner runner;
  runner.load_source(R"(
.data
table: .word 0
.text
main:
  la a0, table
  li t0, 0x7FFFFFFF
  move a1, t0
  li v0, 17
  syscall
  li a0, 1
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)");
  runner.run();
  EXPECT_EQ(runner.os().output(), "1");  // survived, bounded
}

}  // namespace
}  // namespace rse
