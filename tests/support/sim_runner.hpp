// Shared test/bench helper: assemble a guest program, run it on a configured
// machine under the guest OS, and expose the pieces for inspection.
#pragma once

#include <string>

#include "isa/assembler.hpp"
#include "os/guest_os.hpp"
#include "os/machine.hpp"

namespace rse::testing {

class SimRunner {
 public:
  explicit SimRunner(os::MachineConfig machine_config = {}, os::OsConfig os_config = {})
      : machine_(machine_config), os_(machine_, os_config) {}

  /// Assemble and load a program (does not run it yet).
  void load_source(const std::string& source) {
    program_ = isa::assemble(source);
    os_.load(program_);
  }

  void run() { os_.run(); }

  os::Machine& machine() { return machine_; }
  os::GuestOs& os() { return os_; }
  const isa::Program& program() const { return program_; }

  Cycle cycles() const { return machine_.now(); }
  const cpu::CoreStats& core_stats() { return machine_.core().stats(); }

 private:
  os::Machine machine_;
  os::GuestOs os_;
  isa::Program program_;
};

/// Convenience: run `source` to completion on a default machine and return
/// the guest's printed output.
inline std::string run_for_output(const std::string& source) {
  SimRunner runner;
  runner.load_source(source);
  runner.run();
  return runner.os().output();
}

}  // namespace rse::testing
