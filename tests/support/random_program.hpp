// Random guest-program generator for differential testing: structured,
// always-terminating programs mixing ALU ops, memory traffic on a small
// arena, forward branches, bounded loops, and calls.  The epilogue dumps the
// working registers into the arena so two executions can be compared by
// memory content alone.
#pragma once

#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace rse::testing {

struct RandomProgramOptions {
  u32 blocks = 12;          // basic blocks
  u32 ops_per_block = 8;    // ALU/memory ops per block
  bool with_memory = true;  // loads/stores on the arena
  bool with_loops = true;   // bounded counted loops
  bool with_calls = false;  // jal/jr leaf calls
  /// Call-heavy shape for interprocedural-footprint testing: framed helpers
  /// (real sp frames), bounded recursion, indirect calls through a
  /// la-materialized function pointer, and an arena base kept live in t8
  /// across the calls (resolvable only when callee summaries prove t8
  /// preserved).  Implies with_calls-style callees at the bottom.
  bool call_heavy = false;
  /// Pointer-argument callees for context-sensitivity testing: call sites
  /// pass a buffer base through one of $a0..$a3 — an absolute arena pointer,
  /// an sp-relative scratch pointer, or a gp-relative arena pointer — and
  /// the callee walks the buffer through the argument register.  The
  /// context-insensitive join of those bases is unknown, so the accesses
  /// resolve only under per-call-site summary cloning.
  bool arg_pointers = false;
  /// Strided-walk callees for field-sensitivity testing: call sites pass a
  /// buffer base, element count, and byte step through $a0..$a2 to a shared
  /// callee that multiplies its induction variable by the step.  Steps mix
  /// word, struct-field, and multi-page strides over a dedicated matrix
  /// region sized for the largest walk, so the strided-interval domain must
  /// fold exact residue pages while staying sound.
  bool strided_loops = false;
  /// Bounded recursive frame writer for $sp-depth context testing: each
  /// rung pushes a real stack frame and stores through a slot pointer that
  /// advances one word per rung.
  bool recursive_writer = false;
  /// Emit mid-program print-int syscalls at random block boundaries.  Each
  /// one is an observable synchronization point: the differential harness
  /// snapshots the full register file there in both execution modes.
  bool print_progress = false;
  /// Emit sys_yield at random block boundaries.  Yield is outside every
  /// fast-mode whitelist and suspends the calling thread, so these programs
  /// exercise bail-and-resume: a resumable session must execute the yield as
  /// a cycle-accurate excursion and continue fast afterwards.
  bool yield_points = false;
  /// Attack-shaped traffic for the security suites (docs/security.md):
  /// framed helpers that store far past their own $sp envelope (deep
  /// out-of-frame writes into caller stack territory, the stack-smash write
  /// shape) and an in-memory jump table whose entries are re-pointed between
  /// address-taken handlers before each indirect dispatch (the GOT-clobber
  /// write shape).  Everything stays semantically legal, so the static
  /// DDT/CFC modes must stay violation-free on these programs at every
  /// context depth — the adversarial-shape false-positive property.
  bool attack_patterns = false;
  /// Emit self-modifying text patches: a block copies a donor instruction
  /// word over a later patch site, then crosses a serializing syscall plus a
  /// padding run longer than the core's fetch buffer before executing the
  /// patched word.  The barrier makes the program's behavior independent of
  /// the OoO core's stale-fetch window, so fast mode and the cycle-accurate
  /// core must agree exactly.
  bool self_modifying = false;
  u32 arena_words = 64;
};

/// Address of the register-dump area relative to the arena symbol.
inline constexpr u32 kDumpOffsetWords = 64;

inline std::string generate_random_program(u64 seed, const RandomProgramOptions& options = {}) {
  Xorshift64 rng(seed);
  std::ostringstream s;
  // Working registers: t0..t7 (r8..r15) and s1..s7 (r17..r23); s0 = &arena.
  const std::vector<std::string> regs = {"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
                                         "s1", "s2", "s3", "s4", "s5", "s6", "s7"};
  auto reg = [&] { return regs[rng.next_below(regs.size())]; };

  s << ".data\n.align 4\narena: .space "
    << (options.arena_words + kDumpOffsetWords + 16) * 4 << "\n";
  if (options.strided_loops || options.recursive_writer) {
    // Dedicated walk region: covers the widest strided walk (three pages of
    // step times three steps) plus the recursive writer's slots.
    s << "smatrix: .space 40960\n";
  }
  if (options.attack_patterns) s << "jtab: .space 32\n";
  s << ".text\nmain:\n  la s0, arena\n";
  if (options.call_heavy) s << "  la t8, arena\n";
  if (options.attack_patterns) {
    // Seed the jump table: every entry starts on a handler (address-taken,
    // so coarse CFI admits any later re-pointing among them).
    s << "  la t9, jtab\n";
    for (u32 e = 0; e < 8; ++e) {
      s << "  la v0, jthandler_" << e % 3 << "\n";
      s << "  sw v0, " << e * 4 << "(t9)\n";
    }
  }
  for (const std::string& r : regs) {
    s << "  li " << r << ", " << static_cast<i64>(rng.next_in(-40000, 40000)) << "\n";
  }

  auto emit_op = [&] {
    switch (rng.next_below(options.with_memory ? 14 : 10)) {
      case 0: s << "  add " << reg() << ", " << reg() << ", " << reg() << "\n"; break;
      case 1: s << "  sub " << reg() << ", " << reg() << ", " << reg() << "\n"; break;
      case 2: s << "  xor " << reg() << ", " << reg() << ", " << reg() << "\n"; break;
      case 3: s << "  and " << reg() << ", " << reg() << ", " << reg() << "\n"; break;
      case 4: s << "  or " << reg() << ", " << reg() << ", " << reg() << "\n"; break;
      case 5: s << "  mul " << reg() << ", " << reg() << ", " << reg() << "\n"; break;
      case 6:
        s << "  sll " << reg() << ", " << reg() << ", " << rng.next_below(31) << "\n";
        break;
      case 7:
        s << "  sra " << reg() << ", " << reg() << ", " << rng.next_below(31) << "\n";
        break;
      case 8: s << "  slt " << reg() << ", " << reg() << ", " << reg() << "\n"; break;
      case 9:
        s << "  addi " << reg() << ", " << reg() << ", "
          << static_cast<i64>(rng.next_in(-1000, 1000)) << "\n";
        break;
      case 10:
      case 11:
        s << "  sw " << reg() << ", " << rng.next_below(options.arena_words) * 4 << "(s0)\n";
        break;
      case 12:
        s << "  lw " << reg() << ", " << rng.next_below(options.arena_words) * 4 << "(s0)\n";
        break;
      case 13:
        s << "  lb " << reg() << ", " << rng.next_below(options.arena_words * 4) << "(s0)\n";
        break;
    }
  };

  u32 loop_id = 0;
  u32 patch_count = 0;
  bool argfill_used[4] = {false, false, false, false};
  bool stwalk_used = false, recwr_used = false;
  bool oobfw_used = false, jtab_used = false;
  for (u32 block = 0; block < options.blocks; ++block) {
    s << "block_" << block << ":\n";
    if (options.print_progress && rng.next_below(3) == 0) {
      // Observable sync point: print a working register's current value.
      s << "  move a0, " << reg() << "\n  li v0, 2\n  syscall\n";
    }
    if (options.yield_points && rng.next_below(3) == 0) {
      // Suspension point: the single thread yields and the scheduler
      // immediately re-selects it.  Classic runs replay the suspension on
      // the real scheduler; fast prefixes need bail-and-resume to cross it.
      s << "  li v0, 8\n  syscall\n";
    }
    if (options.self_modifying && rng.next_below(3) == 0) {
      // Patch a later site in this block with a donor instruction word, then
      // serialize (syscall) and pad past the fetch buffer before running it.
      // The patch executes before its site's first execution in program
      // order, so functional and OoO execution see the same instruction.
      const u32 p = patch_count++;
      s << "  la v1, donor_" << p << "\n";
      s << "  lw v0, 0(v1)\n";
      s << "  la t9, patch_" << p << "\n";
      s << "  sw v0, 0(t9)\n";
      s << "  li a0, " << p << "\n  li v0, 2\n  syscall\n";
      for (int pad = 0; pad < 8; ++pad) s << "  addi t9, t9, 0\n";
      s << "patch_" << p << ":\n";
      s << "  addi s1, s1, 1\n";  // overwritten by donor_<p> before it runs
    }
    const bool looped = options.with_loops && rng.next_below(3) == 0;
    if (looped) {
      // bounded counted loop around this block's body (uses at/ra-free regs)
      s << "  li v1, 0\nloop_" << loop_id << ":\n";
    }
    for (u32 op = 0; op < options.ops_per_block; ++op) emit_op();
    if (looped) {
      s << "  addi v1, v1, 1\n";
      s << "  li v0, " << (2 + rng.next_below(6)) << "\n";
      s << "  blt v1, v0, loop_" << loop_id << "\n";
      ++loop_id;
    }
    if (block + 1 < options.blocks && rng.next_below(2) == 0) {
      // data-dependent forward branch (forward targets keep it terminating)
      const u32 target = block + 1 + rng.next_below(options.blocks - block - 1) ;
      const char* kinds[] = {"beq", "bne", "blt", "bge"};
      s << "  " << kinds[rng.next_below(4)] << " " << reg() << ", " << reg() << ", block_"
        << (target % options.blocks <= block ? block + 1 : target) << "\n";
    }
    if (options.with_calls && rng.next_below(3) == 0) {
      s << "  jal leaf_" << rng.next_below(3) << "\n";
    }
    if (options.call_heavy && rng.next_below(2) == 0) {
      switch (rng.next_below(3)) {
        case 0:  // framed helper, direct
          s << "  move a0, " << reg() << "\n";
          s << "  jal helper_" << rng.next_below(3) << "\n";
          break;
        case 1:  // indirect call through a la-materialized pointer
          s << "  la t9, ptr_helper_" << rng.next_below(3) << "\n";
          s << "  move a0, " << reg() << "\n";
          s << "  jalr t9\n";
          break;
        case 2:  // bounded recursion
          s << "  li a0, " << 1 + rng.next_below(5) << "\n";
          s << "  jal rec\n";
          break;
      }
      // The arena base in t8 is live across the call: this store resolves
      // only if the analysis proves the callee leaves t8 alone.
      s << "  sw " << reg() << ", " << rng.next_below(options.arena_words) * 4 << "(t8)\n";
    }
    if (options.strided_loops && rng.next_below(2) == 0) {
      // Strided walk through the shared callee: base in a0, element count
      // in a1, byte step in a2.  The widest span (3 * 12288 + offset + 4)
      // stays inside smatrix.
      const u32 steps[] = {4, 8, 12, 4096, 8192, 12288};
      s << "  la a0, smatrix\n";
      s << "  addi a0, a0, " << rng.next_below(8) * 4 << "\n";
      s << "  li a1, " << 2 + rng.next_below(3) << "\n";
      s << "  li a2, " << steps[rng.next_below(6)] << "\n";
      s << "  jal stwalk\n";
      stwalk_used = true;
    }
    if (options.recursive_writer && rng.next_below(2) == 0) {
      // Recursive frame writer: slot pointer in a0, depth in a1.
      s << "  la a0, smatrix\n";
      s << "  addi a0, a0, " << rng.next_below(8) * 4 << "\n";
      s << "  li a1, " << 1 + rng.next_below(4) << "\n";
      s << "  jal recwr\n";
      recwr_used = true;
    }
    if (options.attack_patterns && rng.next_below(2) == 0) {
      if (rng.next_below(2) == 0) {
        // Out-of-frame write shape: a framed helper stores deep below its
        // own $sp envelope and one word above its frame's top (caller stack
        // territory nothing ever reads back).
        s << "  jal oobfw\n";
        oobfw_used = true;
      } else {
        // Jump-table clobber shape: re-point a table entry at another
        // address-taken handler, then dispatch through the clobbered slot.
        const u32 e = rng.next_below(8);
        s << "  la t9, jtab\n";
        s << "  la v0, jthandler_" << rng.next_below(3) << "\n";
        s << "  sw v0, " << e * 4 << "(t9)\n";
        s << "  lw v1, " << e * 4 << "(t9)\n";
        s << "  jalr ra, v1\n";
        jtab_used = true;
      }
    }
    if (options.arg_pointers && rng.next_below(2) == 0) {
      const u32 k = rng.next_below(4);        // pointer register a0..a3
      const u32 c = (k + 1) % 4;              // word count in the next a-reg
      switch (rng.next_below(3)) {
        case 0:  // absolute pointer into the arena
          s << "  la a" << k << ", arena\n";
          s << "  addi a" << k << ", a" << k << ", "
            << rng.next_below(options.arena_words - 8) * 4 << "\n";
          break;
        case 1:  // pointer to a stack-local scratch area below main's sp
          s << "  addi a" << k << ", sp, -" << 32 + rng.next_below(9) * 4 << "\n";
          break;
        case 2:  // gp-relative pointer into the arena (the loader pins gp = 0)
          s << "  la a" << k << ", arena\n";
          s << "  add a" << k << ", a" << k << ", gp\n";
          s << "  addi a" << k << ", a" << k << ", "
            << rng.next_below(options.arena_words - 8) * 4 << "\n";
          break;
      }
      s << "  li a" << c << ", " << 2 + rng.next_below(5) << "\n";
      s << "  jal argfill_" << k << "\n";
      argfill_used[k] = true;
    }
  }

  // Epilogue: dump every working register into the arena, then exit.
  s << "block_" << options.blocks << ":\n";
  for (std::size_t i = 0; i < regs.size(); ++i) {
    s << "  sw " << regs[i] << ", " << (kDumpOffsetWords + i) * 4 << "(s0)\n";
  }
  s << "  li a0, 0\n  li v0, 1\n  syscall\n";

  // Donor words for the self-modifying patches: single ALU instructions
  // placed after the exit, never executed in place, only copied.
  for (u32 p = 0; p < patch_count; ++p) {
    s << "donor_" << p << ":\n";
    switch (rng.next_below(4)) {
      case 0: s << "  xor s2, s2, s4\n"; break;
      case 1: s << "  addi t4, t4, " << 1 + rng.next_below(64) << "\n"; break;
      case 2: s << "  sub s5, s5, t1\n"; break;
      case 3: s << "  or t6, t6, s3\n"; break;
    }
  }

  if (options.with_calls || options.call_heavy) {
    for (int leaf = 0; leaf < 3; ++leaf) {
      s << "leaf_" << leaf << ":\n";
      s << "  xor t0, t1, t2\n  addi t3, t3, " << leaf + 1 << "\n  jr ra\n";
    }
  }
  if (options.call_heavy) {
    for (int h = 0; h < 3; ++h) {
      // Framed helpers: spill ra and a scratch word, compute into v1.
      s << "helper_" << h << ":\n";
      s << "  addi sp, sp, -8\n  sw ra, 4(sp)\n  sw a0, 0(sp)\n";
      s << "  sll v1, a0, " << h + 1 << "\n  xor v1, v1, a0\n";
      s << "  lw ra, 4(sp)\n  addi sp, sp, 8\n  jr ra\n";
      // Leaf variants reachable only through jalr (address-taken).
      s << "ptr_helper_" << h << ":\n";
      s << "  addi v1, a0, " << 7 * (h + 1) << "\n  jr ra\n";
    }
    // Bounded recursion: depth = initial a0 (the generator keeps it small).
    s << "rec:\n";
    s << "  addi sp, sp, -8\n  sw ra, 4(sp)\n  sw a0, 0(sp)\n";
    s << "  bge r0, a0, rec_done\n";
    s << "  addi a0, a0, -1\n  jal rec\n";
    s << "rec_done:\n";
    s << "  lw a0, 0(sp)\n  lw ra, 4(sp)\n  addi sp, sp, 8\n  jr ra\n";
  }
  if (stwalk_used) {
    // Shared strided walker; only v0/v1/t9 are clobbered (plus the a-regs
    // the caller just set), so the working registers stay call-preserved.
    s << "stwalk:\n";
    s << "  li v1, 0\n";
    s << "stwl:\n";
    s << "  mul t9, v1, a2\n";
    s << "  add t9, t9, a0\n";
    s << "  lw v0, 0(t9)\n";
    s << "  addi v0, v0, 1\n";
    s << "  sw v0, 0(t9)\n";
    s << "  addi v1, v1, 1\n";
    s << "  blt v1, a1, stwl\n";
    s << "  jr ra\n";
  }
  if (recwr_used) {
    // Recursive frame writer: depth = initial a1, one frame and one slot
    // store per rung.
    s << "recwr:\n";
    s << "  addi sp, sp, -8\n  sw ra, 4(sp)\n  sw a1, 0(sp)\n";
    s << "  sw a1, 0(a0)\n";
    s << "  bge r0, a1, recwr_done\n";
    s << "  addi a0, a0, 4\n  addi a1, a1, -1\n  jal recwr\n";
    s << "recwr_done:\n";
    s << "  lw a1, 0(sp)\n  lw ra, 4(sp)\n  addi sp, sp, 8\n  jr ra\n";
  }
  if (oobfw_used) {
    // Framed helper writing past its own envelope in both directions: four
    // pages below its sp (deep stack territory) and one word above its
    // 16-byte frame.  Both stores are machine-legal and dead — the property
    // suites pin that the static modes neither crash nor false-positive on
    // this write shape.
    s << "oobfw:\n";
    s << "  addi sp, sp, -16\n  sw ra, 12(sp)\n";
    s << "  sw v1, -16384(sp)\n";
    s << "  lw v0, -16384(sp)\n";
    s << "  sw v0, 16(sp)\n";
    s << "  lw ra, 12(sp)\n  addi sp, sp, 16\n  jr ra\n";
  }
  if (jtab_used || options.attack_patterns) {
    // Jump-table handlers: reached only through jalr (never jal), so their
    // returns fall back to the CFC's text-range check.  Each nudges one
    // working register deterministically.
    for (int h = 0; h < 3; ++h) {
      s << "jthandler_" << h << ":\n";
      s << "  addi s" << h + 1 << ", s" << h + 1 << ", " << 7 * h + 3 << "\n";
      s << "  jr ra\n";
    }
  }
  if (options.arg_pointers) {
    // argfill_<k> walks a<k+1>-many words through the buffer base received
    // in $a<k>.  Only v0/v1/t9 are clobbered, so t8/s0 stay call-preserved.
    // The count rides in a register (not an immediate bound) so a body
    // reached only through the exit syscall's lexical fall-through joins to
    // an unknown range instead of fabricating a small resolved one; bodies
    // are emitted only for callees some block actually calls.
    for (int k = 0; k < 4; ++k) {
      if (!argfill_used[k]) continue;
      s << "argfill_" << k << ":\n";
      s << "  li v1, 0\n";
      s << "afl_" << k << ":\n";
      s << "  sll t9, v1, 2\n";
      s << "  add t9, t9, a" << k << "\n";
      s << "  lw v0, 0(t9)\n";
      s << "  addi v0, v0, 1\n";
      s << "  sw v0, 0(t9)\n";
      s << "  addi v1, v1, 1\n";
      s << "  blt v1, a" << (k + 1) % 4 << ", afl_" << k << "\n";
      s << "  jr ra\n";
    }
  }
  return s.str();
}

}  // namespace rse::testing
