// White-box timing behaviour of the out-of-order core: superscalar
// throughput, dependency serialization, functional-unit structural limits,
// misprediction penalties, and blocking-CHECK commit gating.
#include <gtest/gtest.h>

#include "../support/sim_runner.hpp"

namespace rse {
namespace {

using testing::SimRunner;

/// Cycles consumed by the core for a snippet run to completion.
Cycle cycles_for(const std::string& body, os::MachineConfig config = {}) {
  SimRunner runner(config);
  runner.load_source(".text\nmain:\n" + body + "  li a0, 0\n  li v0, 1\n  syscall\n");
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  return runner.core_stats().run_cycles;
}

/// Warm per-iteration cost of `body`: run it in a loop twice and 18 times
/// and difference the cycle counts, cancelling cold-cache effects.
Cycle warm_cycles_per_iteration(const std::string& body, os::MachineConfig config = {}) {
  auto looped = [&](int iters) {
    std::string s = "  li s7, 0\nouter:\n";
    s += body;
    s += "  addi s7, s7, 1\n  li s6, " + std::to_string(iters) + "\n";
    s += "  blt s7, s6, outer\n";
    return cycles_for(s, config);
  };
  const Cycle cold = looped(2);
  const Cycle warm = looped(18);
  return (warm - cold) / 16;
}

std::string repeat(const std::string& line, int n) {
  std::string out;
  for (int i = 0; i < n; ++i) out += line;
  return out;
}

TEST(PipelineTiming, IndependentAluStreamSustainsSuperscalarIpc) {
  // 400 independent adds on a 4-wide machine: warm IPC must be well above 2.
  const std::string body = repeat("  add t0, t1, t2\n  add t3, t4, t5\n", 200);
  const Cycle per_iter = warm_cycles_per_iteration(body);
  const double ipc = 400.0 / static_cast<double>(per_iter);
  EXPECT_GT(ipc, 2.0);
}

TEST(PipelineTiming, DependentChainSerializesToOnePerCycle) {
  // A 400-deep add chain can never beat 1 instruction per cycle (warm).
  const std::string body = repeat("  add t0, t0, t1\n", 400);
  const Cycle chain = warm_cycles_per_iteration(body);
  EXPECT_GE(chain, 400u);
  // And the independent version of the same instruction count is much faster.
  const std::string indep = repeat("  add t2, t0, t1\n  add t3, t0, t1\n", 200);
  EXPECT_LT(warm_cycles_per_iteration(indep), chain / 2);
}

TEST(PipelineTiming, MulLatencyShowsOnDependentChain) {
  const Cycle add_chain = warm_cycles_per_iteration(repeat("  add t0, t0, t1\n", 100));
  const Cycle mul_chain = warm_cycles_per_iteration(repeat("  mul t0, t0, t1\n", 100));
  // mul latency (3) vs add latency (1) on a fully serialized chain.
  EXPECT_GT(mul_chain, add_chain * 2);
}

TEST(PipelineTiming, UnpipelinedDividerIsAStructuralBottleneck) {
  // Independent divides still serialize on the single unpipelined divider.
  const std::string divs = repeat("  div t2, t0, t1\n  div t3, t0, t1\n", 25);
  const Cycle div_cycles = cycles_for("  li t0, 100\n  li t1, 3\n" + divs);
  EXPECT_GT(div_cycles, 50u * 20u);  // 50 divides x 20-cycle occupancy
}

TEST(PipelineTiming, PredictableLoopBranchesAreCheap) {
  // A hot loop branch trains the bimodal predictor: the loop runs near the
  // dependent-chain bound, not at the mispredict-penalty bound.
  SimRunner runner;
  runner.load_source(R"(
.text
main:
  li t0, 0
loop:
  li t2, 1000
  addi t0, t0, 1
  blt t0, t2, loop
  li a0, 0
  li v0, 1
  syscall
)");
  runner.run();
  EXPECT_LT(runner.core_stats().mispredicts, 10u);
  EXPECT_LT(runner.core_stats().run_cycles, 4000u);  // ~3 cycles/iteration
}

TEST(PipelineTiming, MispredictionCostsSquashedWork) {
  // Alternating branch: ~50% mispredicts; each one squashes wrong-path work.
  SimRunner runner;
  runner.load_source(R"(
.text
main:
  li t0, 0
loop:
  li t2, 500
  andi t3, t0, 1
  beq t3, r0, even
  nop
even:
  addi t0, t0, 1
  blt t0, t2, loop
  li a0, 0
  li v0, 1
  syscall
)");
  runner.run();
  EXPECT_GT(runner.core_stats().mispredicts, 100u);
  EXPECT_GT(runner.core_stats().squashed, runner.core_stats().mispredicts);
}

TEST(PipelineTiming, LoadUseLatencyVisibleOnDependentLoads) {
  // Pointer-chase (dependent loads) vs independent loads from one address.
  const std::string prologue = R"(
.data
.align 4
cell: .word cell
.text
main:
  la t0, cell
)";
  SimRunner chase;
  chase.load_source(prologue + repeat("  lw t0, 0(t0)\n", 200) +
                    "  li a0, 0\n  li v0, 1\n  syscall\n");
  chase.run();
  SimRunner indep;
  indep.load_source(prologue + repeat("  lw t1, 0(t0)\n", 200) +
                    "  li a0, 0\n  li v0, 1\n  syscall\n");
  indep.run();
  EXPECT_GT(chase.core_stats().run_cycles, indep.core_stats().run_cycles);
}

TEST(PipelineTiming, IcacheMissesStallFetch) {
  os::MachineConfig tiny_icache;
  tiny_icache.il1 = mem::CacheConfig{"il1", 128, 1, 32, 1};  // 4 blocks
  // A looped body larger than the tiny cache misses every block, every
  // iteration; the normal 8 KB il1 holds it after the first pass.
  const std::string body = repeat("  add t0, t1, t2\n", 400);
  const Cycle small = warm_cycles_per_iteration(body, tiny_icache);
  const Cycle normal = warm_cycles_per_iteration(body);
  EXPECT_GT(small, 2 * normal);
  SimRunner runner(tiny_icache);
  runner.load_source(".text\nmain:\n" + body + "  li a0, 0\n  li v0, 1\n  syscall\n");
  runner.run();
  EXPECT_GT(runner.core_stats().fetch_stall_cycles, 100u);
}

TEST(PipelineTiming, BlockingChkToSilentModuleStallsUntilWatchdog) {
  // An enabled module that never answers holds the blocking CHECK at commit
  // until the watchdog decouples the framework — measurable stall.
  os::MachineConfig config;
  config.framework_present = true;
  config.selfcheck.watchdog_timeout = 500;
  SimRunner runner(config);
  runner.load_source(R"(
.text
main:
  chk frame, 1, nblk, r0, 1
  chk icm, 0, blk, r0, 0
  add t0, t1, t2
  li a0, 0
  li v0, 1
  syscall
)");
  runner.machine().icm()->inject_fault(engine::ModuleFaultMode::kNoProgress);
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_GT(runner.core_stats().chk_commit_stall_cycles, 400u);
}

TEST(PipelineTiming, NonBlockingChkDoesNotStallCommit) {
  os::MachineConfig config;
  config.framework_present = true;
  SimRunner runner(config);
  runner.load_source(R"(
.text
main:
  chk frame, 1, nblk, r0, 4
  chk ahbm, 3, nblk, t0, 0
  chk ahbm, 4, nblk, t0, 0
  add t0, t1, t2
  li a0, 0
  li v0, 1
  syscall
)");
  runner.run();
  EXPECT_EQ(runner.core_stats().chk_commit_stall_cycles, 0u);
}

TEST(PipelineTiming, SerializingMlrChkDrainsThePipeline) {
  // Blocking MLR CHECKs serialize dispatch, so the run is far slower than
  // the same count of non-blocking CHECKs.
  os::MachineConfig config;
  config.framework_present = true;
  const std::string blocking = "  chk frame, 1, nblk, r0, 2\n" +
                               repeat("  chk mlr, 3, nblk, t0, 0\n", 10) +
                               repeat("  add t1, t2, t3\n", 10);
  const Cycle nonblocking_cycles = cycles_for(blocking, config);
  const std::string serializing = "  chk frame, 1, nblk, r0, 2\n  la t0, main\n  li t1, 28\n" +
                                  std::string("  chk mlr, 3, nblk, t0, 0\n"
                                              "  chk mlr, 4, nblk, t1, 0\n"
                                              "  chk mlr, 5, blk, t0, 0\n") +
                                  repeat("  add t1, t2, t3\n", 10);
  const Cycle blocking_cycles = cycles_for(serializing, config);
  EXPECT_GT(blocking_cycles, nonblocking_cycles);
}

TEST(PipelineTiming, RuuSizeBoundsInFlightWork) {
  // Halving the RUU on a long independent stream costs throughput when
  // long-latency ops are in flight.
  const std::string body = "  li t9, 7\n  li t8, 3\n" +
                           repeat("  mul t0, t9, t8\n  add t1, t9, t8\n  add t2, t9, t8\n", 100);
  os::MachineConfig small;
  small.core.ruu_size = 4;
  small.core.lsq_size = 2;
  const Cycle small_cycles = warm_cycles_per_iteration(body, small);
  const Cycle normal_cycles = warm_cycles_per_iteration(body);
  EXPECT_GT(small_cycles, normal_cycles);
}

}  // namespace
}  // namespace rse
