#include <gtest/gtest.h>

#include "../support/sim_runner.hpp"

namespace rse {
namespace {

using testing::SimRunner;
using testing::run_for_output;

// Guest programs communicate results through print syscalls; these tests
// validate the functional correctness of the pipeline (in-order semantics
// despite out-of-order timing) and basic timing sanity.

TEST(Core, ArithmeticSemantics) {
  const std::string out = run_for_output(R"(
.text
main:
  li t0, 6
  li t1, 7
  mul t2, t0, t1
  move a0, t2
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)");
  EXPECT_EQ(out, "42");
}

TEST(Core, SignedArithmetic) {
  const std::string out = run_for_output(R"(
.text
main:
  li t0, -15
  li t1, 4
  div t2, t0, t1       # -3 (truncating)
  rem t3, t0, t1       # -3
  add a0, t2, t3       # -6
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)");
  EXPECT_EQ(out, "-6");
}

TEST(Core, ShiftsAndLogic) {
  const std::string out = run_for_output(R"(
.text
main:
  li t0, 0xF0
  srl t1, t0, 4        # 0x0F
  sll t2, t1, 2        # 0x3C
  xor t3, t2, t1       # 0x33
  andi t4, t3, 0x0F    # 0x03
  ori a0, t4, 0x40     # 0x43 = 67
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)");
  EXPECT_EQ(out, "67");
}

TEST(Core, LoadStoreRoundTrip) {
  const std::string out = run_for_output(R"(
.data
buf: .space 64
.text
main:
  la s0, buf
  li t0, 1234
  sw t0, 8(s0)
  lw a0, 8(s0)
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)");
  EXPECT_EQ(out, "1234");
}

TEST(Core, ByteAndHalfAccesses) {
  const std::string out = run_for_output(R"(
.data
buf: .space 16
.text
main:
  la s0, buf
  li t0, -2
  sb t0, 0(s0)
  lb t1, 0(s0)         # sign-extended -2
  lbu t2, 0(s0)        # zero-extended 254
  add a0, t1, t2       # 252
  li v0, 2
  syscall
  li t0, -3
  sh t0, 4(s0)
  lh t1, 4(s0)
  lhu t2, 4(s0)
  beq t1, t0, half_ok
  li a0, 999
  li v0, 2
  syscall
half_ok:
  li a0, 0
  li v0, 1
  syscall
)");
  EXPECT_EQ(out, "252");
}

TEST(Core, StoreToLoadForwardingIsCorrect) {
  // A store immediately followed by a dependent load of the same address.
  const std::string out = run_for_output(R"(
.data
buf: .space 8
.text
main:
  la s0, buf
  li t0, 77
  sw t0, 0(s0)
  lw t1, 0(s0)
  addi a0, t1, 1
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)");
  EXPECT_EQ(out, "78");
}

TEST(Core, PartialStoreForwardsByByte) {
  const std::string out = run_for_output(R"(
.data
buf: .word 0x04030201
.text
main:
  la s0, buf
  li t0, 0xAA
  sb t0, 1(s0)        # word becomes 0x0403AA01
  lw t1, 0(s0)
  srl t1, t1, 8
  andi a0, t1, 0xFF    # 0xAA = 170
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)");
  EXPECT_EQ(out, "170");
}

TEST(Core, LoopSumsCorrectly) {
  const std::string out = run_for_output(R"(
.text
main:
  li t0, 0     # i
  li t1, 0     # sum
loop:
  li t2, 100
  bge t0, t2, done
  add t1, t1, t0
  addi t0, t0, 1
  b loop
done:
  move a0, t1
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)");
  EXPECT_EQ(out, "4950");
}

TEST(Core, FunctionCallAndReturn) {
  const std::string out = run_for_output(R"(
.text
main:
  li a0, 5
  jal square
  move a0, v0
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
square:
  mul v0, a0, a0
  jr ra
)");
  EXPECT_EQ(out, "25");
}

TEST(Core, NestedCallsThroughStack) {
  const std::string out = run_for_output(R"(
.text
main:
  li a0, 4
  jal fact
  move a0, v0
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
fact:
  li t0, 2
  blt a0, t0, base
  addi sp, sp, -8
  sw ra, 0(sp)
  sw a0, 4(sp)
  addi a0, a0, -1
  jal fact
  lw a0, 4(sp)
  lw ra, 0(sp)
  addi sp, sp, 8
  mul v0, v0, a0
  jr ra
base:
  li v0, 1
  jr ra
)");
  EXPECT_EQ(out, "24");
}

TEST(Core, MispredictedBranchesDoNotCorruptState) {
  // A data-dependent alternating branch defeats the bimodal predictor, so
  // wrong-path instructions are fetched and squashed constantly; the final
  // architectural result must still be exact.
  const std::string out = run_for_output(R"(
.text
main:
  li t0, 0     # i
  li t1, 0     # acc
loop:
  li t2, 200
  bge t0, t2, done
  andi t3, t0, 1
  beq t3, r0, even
  addi t1, t1, 3
  b next
even:
  addi t1, t1, 1
next:
  addi t0, t0, 1
  b loop
done:
  move a0, t1
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)");
  EXPECT_EQ(out, "400");  // 100*1 + 100*3
}

TEST(Core, SquashedWrongPathStoresNeverLand) {
  SimRunner runner;
  runner.load_source(R"(
.data
victim: .word 5
.text
main:
  li t0, 1
  beq t0, r0, poison   # never taken, but may be predicted taken
  b finish
poison:
  la t1, victim
  li t2, 666
  sw t2, 0(t1)
finish:
  lw a0, victim
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)");
  runner.run();
  EXPECT_EQ(runner.os().output(), "5");
}

TEST(Core, MispredictsAreCountedOnAlternatingBranch) {
  SimRunner runner;
  runner.load_source(R"(
.text
main:
  li t0, 0
loop:
  li t2, 64
  bge t0, t2, done
  andi t3, t0, 1
  beq t3, r0, skip
  nop
skip:
  addi t0, t0, 1
  b loop
done:
  li a0, 0
  li v0, 1
  syscall
)");
  runner.run();
  EXPECT_GT(runner.core_stats().mispredicts, 10u);
  EXPECT_GT(runner.core_stats().squashed, 10u);
}

TEST(Core, TimingIsDeterministic) {
  const std::string source = R"(
.text
main:
  li t0, 0
loop:
  li t2, 500
  bge t0, t2, done
  addi t0, t0, 1
  b loop
done:
  li a0, 0
  li v0, 1
  syscall
)";
  SimRunner a, b;
  a.load_source(source);
  a.run();
  b.load_source(source);
  b.run();
  EXPECT_EQ(a.cycles(), b.cycles());
  EXPECT_EQ(a.core_stats().instructions, b.core_stats().instructions);
}

TEST(Core, IpcIsPlausible) {
  SimRunner runner;
  runner.load_source(R"(
.text
main:
  li t0, 0
loop:
  li t2, 2000
  bge t0, t2, done
  add t3, t0, t0
  add t4, t3, t0
  add t5, t4, t3
  addi t0, t0, 1
  b loop
done:
  li a0, 0
  li v0, 1
  syscall
)");
  runner.run();
  const double ipc = static_cast<double>(runner.core_stats().instructions) /
                     static_cast<double>(runner.core_stats().run_cycles);
  EXPECT_GT(ipc, 0.4);  // superscalar core must beat scalar-in-order-miss rates
  EXPECT_LT(ipc, 4.01);
}

TEST(Core, ExitCodePropagates) {
  SimRunner runner;
  runner.load_source(R"(
.text
main:
  li a0, 17
  li v0, 1
  syscall
)");
  runner.run();
  EXPECT_TRUE(runner.os().finished());
  EXPECT_EQ(runner.os().exit_code(), 17);
}

TEST(Core, LuiOriBuildsFullWord) {
  const std::string out = run_for_output(R"(
.text
main:
  lui t0, 0x1234
  ori t0, t0, 0x5678
  srl a0, t0, 16       # 0x1234 = 4660
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)");
  EXPECT_EQ(out, "4660");
}

TEST(Core, SltVariants) {
  const std::string out = run_for_output(R"(
.text
main:
  li t0, -1
  li t1, 1
  slt t2, t0, t1       # signed: 1
  sltu t3, t0, t1      # unsigned: 0 (0xFFFFFFFF > 1)
  slti t4, t0, 0       # 1
  sltiu t5, t1, 2      # 1
  add a0, t2, t3
  add a0, a0, t4
  add a0, a0, t5       # 3
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)");
  EXPECT_EQ(out, "3");
}

TEST(Core, CommitTraceObservesRetirementOrder) {
  SimRunner runner;
  std::vector<Addr> pcs;
  runner.load_source(R"(
.text
main:
  li t0, 1
  li t1, 2
  add t2, t0, t1
  li a0, 0
  li v0, 1
  syscall
)");
  runner.machine().core().set_commit_trace(
      [&pcs](Cycle, Addr pc, const isa::Instr&, ThreadId) { pcs.push_back(pc); });
  runner.run();
  ASSERT_EQ(pcs.size(), 6u);
  for (std::size_t i = 1; i < pcs.size(); ++i) EXPECT_EQ(pcs[i], pcs[i - 1] + 4);
}

}  // namespace
}  // namespace rse
