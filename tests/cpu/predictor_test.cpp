#include "cpu/branch_predictor.hpp"

#include <gtest/gtest.h>

namespace rse::cpu {
namespace {

TEST(Predictor, StartsWeaklyTaken) {
  BranchPredictor bp(PredictorConfig{});
  EXPECT_TRUE(bp.predict_taken(0x400000));
}

TEST(Predictor, LearnsNotTaken) {
  BranchPredictor bp(PredictorConfig{});
  const Addr pc = 0x400010;
  bp.update_cond(pc, false, false);
  bp.update_cond(pc, false, false);
  EXPECT_FALSE(bp.predict_taken(pc));
}

TEST(Predictor, TwoBitHysteresis) {
  BranchPredictor bp(PredictorConfig{});
  const Addr pc = 0x400020;
  bp.update_cond(pc, true, false);  // strongly taken
  bp.update_cond(pc, false, false); // back to weakly taken
  EXPECT_TRUE(bp.predict_taken(pc));
  bp.update_cond(pc, false, false);
  EXPECT_FALSE(bp.predict_taken(pc));
}

TEST(Predictor, BtbStoresTargets) {
  BranchPredictor bp(PredictorConfig{});
  EXPECT_EQ(bp.predict_indirect(0x400100), 0u);
  bp.update_indirect(0x400100, 0x400800, true);
  EXPECT_EQ(bp.predict_indirect(0x400100), 0x400800u);
}

TEST(Predictor, BtbTagRejectsAliases) {
  PredictorConfig config;
  config.btb_entries = 16;
  BranchPredictor bp(config);
  bp.update_indirect(0x400100, 0x400800, false);
  // Same index (stride 16 words), different PC: must not return the target.
  EXPECT_EQ(bp.predict_indirect(0x400100 + 16 * 4), 0u);
}

TEST(Predictor, RasLifoOrder) {
  BranchPredictor bp(PredictorConfig{});
  bp.ras_push(0x1000);
  bp.ras_push(0x2000);
  EXPECT_EQ(bp.ras_pop(), 0x2000u);
  EXPECT_EQ(bp.ras_pop(), 0x1000u);
  EXPECT_EQ(bp.ras_pop(), 0u);  // empty
}

TEST(Predictor, RasOverflowDropsOldest) {
  PredictorConfig config;
  config.ras_entries = 2;
  BranchPredictor bp(config);
  bp.ras_push(1);
  bp.ras_push(2);
  bp.ras_push(3);
  EXPECT_EQ(bp.ras_pop(), 3u);
  EXPECT_EQ(bp.ras_pop(), 2u);
  EXPECT_EQ(bp.ras_pop(), 0u);
}

TEST(Predictor, MispredictStats) {
  BranchPredictor bp(PredictorConfig{});
  bp.predict_taken(0x400000);
  bp.update_cond(0x400000, false, true);
  bp.update_indirect(0x400004, 0x1234, true);
  EXPECT_EQ(bp.stats().cond_mispredicts, 1u);
  EXPECT_EQ(bp.stats().indirect_mispredicts, 1u);
}

}  // namespace
}  // namespace rse::cpu
