#include "common/bits.hpp"

#include <gtest/gtest.h>

namespace rse {
namespace {

TEST(Bits, ExtractBasic) {
  EXPECT_EQ(bits(0xDEADBEEF, 0, 8), 0xEFu);
  EXPECT_EQ(bits(0xDEADBEEF, 8, 8), 0xBEu);
  EXPECT_EQ(bits(0xDEADBEEF, 28, 4), 0xDu);
  EXPECT_EQ(bits(0xFFFFFFFF, 0, 32), 0xFFFFFFFFu);
}

TEST(Bits, InsertBasic) {
  EXPECT_EQ(insert_bits(0, 0, 8, 0xAB), 0xABu);
  EXPECT_EQ(insert_bits(0, 24, 8, 0xAB), 0xAB000000u);
  EXPECT_EQ(insert_bits(0xFFFFFFFF, 8, 8, 0), 0xFFFF00FFu);
  // Field wider than count is masked.
  EXPECT_EQ(insert_bits(0, 0, 4, 0xFF), 0xFu);
}

TEST(Bits, InsertThenExtractRoundTrips) {
  for (unsigned lsb = 0; lsb <= 24; lsb += 3) {
    for (unsigned count = 1; count + lsb <= 32; count += 5) {
      const u32 field = 0x5A5A5A5Au & ((count == 32 ? ~0u : (1u << count) - 1));
      const u32 word = insert_bits(0x13572468, lsb, count, field);
      EXPECT_EQ(bits(word, lsb, count), field) << "lsb=" << lsb << " count=" << count;
    }
  }
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0xFF, 8), -1);
  EXPECT_EQ(sign_extend(0x7F, 8), 127);
  EXPECT_EQ(sign_extend(0x80, 8), -128);
  EXPECT_EQ(sign_extend(0xFFFF, 16), -1);
  EXPECT_EQ(sign_extend(0x8000, 16), -32768);
  EXPECT_EQ(sign_extend(0x7FFF, 16), 32767);
  EXPECT_EQ(sign_extend(0xFFFFFFFF, 32), -1);
}

TEST(Bits, PowerOfTwoHelpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
  EXPECT_EQ(log2_pow2(1), 0u);
  EXPECT_EQ(log2_pow2(4096), 12u);
  EXPECT_EQ(align_up(0, 16), 0u);
  EXPECT_EQ(align_up(1, 16), 16u);
  EXPECT_EQ(align_up(16, 16), 16u);
  EXPECT_EQ(align_up(4097, 4096), 8192u);
}

}  // namespace
}  // namespace rse
