#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "report/csv.hpp"
#include "report/table.hpp"

namespace rse::report {
namespace {

TEST(Table, AlignsColumnsAndPrintsAllRows) {
  Table table({"Name", "Value"});
  table.row({"short", "1"});
  table.row({"a much longer cell", "22"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| Name"), std::string::npos);
  EXPECT_NE(out.find("a much longer cell"), std::string::npos);
  EXPECT_NE(out.find("| 22"), std::string::npos);
  // 1 header + 3 separators + 2 data rows = 6 lines
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 6);
}

TEST(Table, ShortRowsPadWithEmptyCells) {
  Table table({"A", "B", "C"});
  table.row({"only"});
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(Format, Millions) {
  EXPECT_EQ(fmt_millions(32'910'000), "32.91");
  EXPECT_EQ(fmt_millions(260'000), "0.26");
}

TEST(Format, Percent) {
  EXPECT_EQ(fmt_pct(0.0347), "3.47%");
  EXPECT_EQ(fmt_pct(0.0347, 0), "3%");
  EXPECT_EQ(fmt_pct(-0.015), "-1.50%");
}

TEST(Csv, EscapesSpecialCells) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesFile) {
  const std::string path = ::testing::TempDir() + "/rse_csv_test.csv";
  CsvWriter csv(path, {"x", "y"});
  csv.row({"1", "2"});
  csv.row({"3", "4,5"});
  ASSERT_TRUE(csv.flush());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3,\"4,5\"");
}

TEST(Csv, ExportDirComesFromEnvironment) {
  ::unsetenv("RSE_BENCH_CSV_DIR");
  EXPECT_FALSE(csv_export_dir().has_value());
  ::setenv("RSE_BENCH_CSV_DIR", "/tmp", 1);
  ASSERT_TRUE(csv_export_dir().has_value());
  EXPECT_EQ(*csv_export_dir(), "/tmp");
  ::unsetenv("RSE_BENCH_CSV_DIR");
}

}  // namespace
}  // namespace rse::report
