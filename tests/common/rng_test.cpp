#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rse {
namespace {

TEST(Rng, DeterministicForSeed) {
  Xorshift64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xorshift64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ZeroSeedStillWorks) {
  Xorshift64 rng(0);
  EXPECT_NE(rng.next(), 0u);
}

TEST(Rng, BoundedValuesInRange) {
  Xorshift64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, IntervalInclusive) {
  Xorshift64 rng(9);
  std::set<i64> seen;
  for (int i = 0; i < 2000; ++i) {
    const i64 v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit over 2000 draws
}

TEST(Rng, UnitIntervalInRange) {
  Xorshift64 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.next_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

}  // namespace
}  // namespace rse
