#include "common/ring_buffer.hpp"

#include <gtest/gtest.h>

namespace rse {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  EXPECT_FALSE(rb.full());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 4u);
}

TEST(RingBuffer, FifoOrder) {
  RingBuffer<int> rb(4);
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_EQ(rb.pop(), 1);
  EXPECT_EQ(rb.pop(), 2);
  rb.push(4);
  rb.push(5);
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_EQ(rb.pop(), 4);
  EXPECT_EQ(rb.pop(), 5);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, WrapsAround) {
  RingBuffer<int> rb(3);
  for (int round = 0; round < 10; ++round) {
    rb.push(round);
    rb.push(round + 100);
    EXPECT_EQ(rb.pop(), round);
    EXPECT_EQ(rb.pop(), round + 100);
  }
}

TEST(RingBuffer, FullDetection) {
  RingBuffer<int> rb(2);
  rb.push(1);
  EXPECT_FALSE(rb.full());
  rb.push(2);
  EXPECT_TRUE(rb.full());
}

TEST(RingBuffer, IndexedAccess) {
  RingBuffer<int> rb(4);
  rb.push(10);
  rb.push(11);
  rb.push(12);
  EXPECT_EQ(rb.at(0), 10);
  EXPECT_EQ(rb.at(1), 11);
  EXPECT_EQ(rb.at(2), 12);
  rb.at(1) = 42;
  rb.pop();
  EXPECT_EQ(rb.front(), 42);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(7);
  EXPECT_EQ(rb.front(), 7);
}

}  // namespace
}  // namespace rse
