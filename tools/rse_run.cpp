// rse-run: run a guest .s program on the simulated machine.
//
//   rse_run program.s [options]
//     --rse                 instantiate the RSE framework (19/3 memory)
//     --icm --mlr --ddt --ahbm   enable a module (implies --rse)
//     --instrument          insert ICM CHECKs before control flow
//     --randomize           MLR layout randomization at load
//     --rerand <cycles>     runtime GOT re-randomization interval
//     --fast                execute through the exec/ fast engine (decoded
//                           block cache + direct-memory path) instead of the
//                           cycle-accurate core; sys_clock reads virtual
//                           time, and the run falls back to the modeled core
//                           when it leaves fast mode's envelope
//                           (docs/execution.md)
//     --limit <cycles>      run limit (default 2e9)
//     --requests <n> --io <cycles>   simulated network parameters
//     --stats               print detailed machine statistics
//     --trace <n>           print the first n committed instructions
//     --lint                run the static analyzer first; refuse to run on
//                           error-severity findings (rse_lint for details)
//     --static-cfc          precompute the CFG-derived legal-successor table
//     --flat-footprint      static analysis without interprocedural summaries
//     --context-depth N     context-sensitive footprint cloning depth
//                           (default 1; 0 = context-insensitive)
//     --field-sensitive / --no-field-sensitive
//                           strided-interval (field-level) footprint domain
//                           for --static-ddt (default on)
//     --sp-depth N          abstract-$sp recursion context depth for the
//                           field-sensitive footprint (default 2)
//     --static-ddt          hand the DDT the static data-flow page footprint
//                           at load and hand it to the CFC (implies --cfc)
//     --dme                 divergent multi-version execution: run the program
//                           twice under distinct MLR layout-randomization
//                           seeds, canonicalize both committed-instruction
//                           traces (rse/dme.hpp), and report whether they
//                           converge; prints variant A's output followed by a
//                           `dme:` summary line (docs/security.md)
//     --dme-seeds A:B       the two MLR seeds (default 1:2; implies --dme)
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/analyzer.hpp"
#include "common/error.hpp"
#include "exec/fast_session.hpp"
#include "isa/assembler.hpp"
#include "os/guest_os.hpp"
#include "os/machine.hpp"
#include "rse/dme.hpp"
#include "workloads/workloads.hpp"

using namespace rse;

namespace {

int usage() {
  std::cerr << "usage: rse_run <program.s> [--rse] [--icm|--mlr|--ddt|--ahbm|--cfc]...\n"
            << "  [--instrument] [--randomize] [--rerand N] [--limit N] [--fast]\n"
            << "  [--requests N] [--io N] [--stats] [--trace N] [--lint] [--static-cfc]\n"
            << "  [--static-ddt] [--flat-footprint] [--context-depth N]\n"
            << "  [--field-sensitive] [--no-field-sensitive] [--sp-depth N]\n"
            << "  [--dme] [--dme-seeds A:B]\n";
  return 2;
}

void print_stats(os::Machine& machine, os::GuestOs& guest) {
  const cpu::CoreStats& core = machine.core().stats();
  std::cout << "--- machine statistics ---\n";
  std::cout << "cycles:              " << machine.now() << "\n";
  std::cout << "instructions:        " << core.instructions << " (+" << core.chk_committed
            << " CHK)\n";
  std::cout << "IPC:                 "
            << (core.run_cycles ? static_cast<double>(core.instructions) / core.run_cycles : 0)
            << "\n";
  std::cout << "loads/stores:        " << core.loads << "/" << core.stores << "\n";
  std::cout << "branches (mispred):  " << core.branches << " (" << core.mispredicts << ")\n";
  std::cout << "squashed:            " << core.squashed << "\n";
  std::cout << "il1: " << machine.il1().stats().accesses << " accesses, "
            << machine.il1().stats().miss_rate() * 100 << "% miss\n";
  std::cout << "dl1: " << machine.dl1().stats().accesses << " accesses, "
            << machine.dl1().stats().miss_rate() * 100 << "% miss\n";
  std::cout << "bus: " << machine.bus().stats().pipeline_transfers << " pipeline / "
            << machine.bus().stats().mau_transfers << " MAU transfers\n";
  std::cout << "syscalls:            " << guest.stats().syscalls << "\n";
  std::cout << "context switches:    " << guest.stats().context_switches << "\n";
  if (machine.framework() != nullptr) {
    const engine::FrameworkStats& fw = machine.framework()->stats();
    std::cout << "RSE: " << fw.chk_instructions << " CHKs seen, " << fw.errors_reported
              << " errors, safe mode: " << (machine.framework()->safe_mode() ? "YES" : "no")
              << "\n";
    if (machine.icm()->enabled()) {
      std::cout << "ICM: " << machine.icm()->stats().checks_completed << " checks, "
                << machine.icm()->stats().mismatches << " mismatches, "
                << machine.icm()->stats().cache_hits << " cache hits\n";
    }
    if (machine.ddt()->enabled()) {
      std::cout << "DDT: " << machine.ddt()->stats().dependencies_logged << " dependencies, "
                << machine.ddt()->stats().save_page_exceptions << " SavePages\n";
      if (machine.ddt()->has_footprint()) {
        std::cout << "DDT footprint: " << machine.ddt()->stats().footprint_checks
                  << " checks, " << machine.ddt()->stats().footprint_violations
                  << " violations, " << machine.ddt()->stats().pst_prereserved
                  << " pre-reserved, " << machine.ddt()->stats().prereserve_hits
                  << " prereserve hits\n";
      }
    }
    if (machine.ahbm()->enabled()) {
      std::cout << "AHBM: " << machine.ahbm()->stats().beats_received << " beats, "
                << machine.ahbm()->stats().hangs_declared << " hangs declared\n";
    }
    if (machine.cfc()->enabled()) {
      std::cout << "CFC: " << machine.cfc()->stats().transitions_checked << " transitions, "
                << machine.cfc()->stats().violations << " violations ("
                << machine.cfc()->stats().indirect_static_checks << " static / "
                << machine.cfc()->stats().indirect_range_checks << " range indirect checks)\n";
    }
  }
  if (guest.stats().rerandomizations > 0) {
    std::cout << "re-randomizations:   " << guest.stats().rerandomizations << " ("
              << guest.stats().rerandomize_cycles << " stopped cycles)\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string path;
  os::MachineConfig machine_config;
  os::OsConfig os_config;
  bool instrument = false;
  bool stats = false;
  u64 trace = 0;
  bool enable_icm = false, enable_mlr = false, enable_ddt = false, enable_ahbm = false;
  bool enable_cfc = false;
  bool lint = false;
  bool fast = false;
  bool dme = false;
  u64 dme_seed_a = 1, dme_seed_b = 2;
  u32 requests = 0;
  Cycle io_latency = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_u64 = [&](u64 fallback) -> u64 {
      return i + 1 < argc ? std::stoull(argv[++i]) : fallback;
    };
    if (arg == "--rse") machine_config.framework_present = true;
    else if (arg == "--icm") enable_icm = true;
    else if (arg == "--mlr") enable_mlr = true;
    else if (arg == "--ddt") enable_ddt = true;
    else if (arg == "--ahbm") enable_ahbm = true;
    else if (arg == "--cfc") enable_cfc = true;
    else if (arg == "--instrument") instrument = true;
    else if (arg == "--randomize") os_config.randomize_layout = true;
    else if (arg == "--rerand") os_config.rerandomize_interval = next_u64(0);
    else if (arg == "--limit") os_config.run_limit = next_u64(os_config.run_limit);
    else if (arg == "--requests") requests = static_cast<u32>(next_u64(0));
    else if (arg == "--io") io_latency = next_u64(0);
    else if (arg == "--stats") stats = true;
    else if (arg == "--trace") trace = next_u64(0);
    else if (arg == "--lint") lint = true;
    else if (arg == "--fast") fast = true;
    else if (arg == "--dme") dme = true;
    else if (arg == "--dme-seeds") {
      const std::string v = i + 1 < argc ? argv[++i] : "";
      const auto colon = v.find(':');
      if (colon == std::string::npos) {
        std::cerr << "--dme-seeds expects A:B\n";
        return usage();
      }
      dme = true;
      dme_seed_a = std::stoull(v.substr(0, colon));
      dme_seed_b = std::stoull(v.substr(colon + 1));
    }
    else if (arg == "--flat-footprint") os_config.footprint_summaries = false;
    else if (arg == "--context-depth") os_config.context_depth = static_cast<u32>(next_u64(os_config.context_depth));
    else if (arg == "--field-sensitive") os_config.field_sensitive = true;
    else if (arg == "--no-field-sensitive") os_config.field_sensitive = false;
    else if (arg == "--sp-depth") os_config.field_sp_depth = static_cast<u32>(next_u64(os_config.field_sp_depth));
    else if (arg == "--static-cfc") {
      os_config.static_cfc = true;
      enable_cfc = true;
    }
    else if (arg == "--static-ddt") {
      os_config.static_ddt = true;
      enable_ddt = true;
    }
    else if (!arg.empty() && arg[0] == '-') return usage();
    else path = arg;
  }
  if (path.empty()) return usage();
  if (enable_icm || enable_mlr || enable_ddt || enable_ahbm || enable_cfc || instrument ||
      os_config.randomize_layout) {
    machine_config.framework_present = true;
  }

  std::ifstream file(path);
  if (!file) {
    std::cerr << "rse_run: cannot open " << path << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  std::string source = buffer.str();
  if (instrument) source = workloads::instrument_checks(source);

  try {
    if (lint) {
      const analysis::AnalysisResult verdict = analysis::analyze(isa::assemble(source));
      for (const analysis::Diagnostic& d : verdict.diagnostics) {
        std::cerr << analysis::format_diagnostic(d) << "\n";
      }
      if (verdict.has_errors()) {
        std::cerr << "rse_run: refusing to run — " << verdict.count(analysis::Severity::kError)
                  << " lint error(s)\n";
        return 1;
      }
    }
    if (dme) {
      // Record both variants fault-free under distinct MLR seeds and diff
      // the canonical traces.  Variant B goes through the fast-path engine,
      // variant A through the cycle-accurate core, so convergence here also
      // exercises trace parity across both execution engines.
      machine_config.framework_present = true;
      const isa::Program program = isa::assemble(source);
      std::vector<isa::ModuleId> enables;
      if (enable_icm) enables.push_back(isa::ModuleId::kIcm);
      if (enable_mlr) enables.push_back(isa::ModuleId::kMlr);
      if (enable_ddt) enables.push_back(isa::ModuleId::kDdt);
      if (enable_ahbm) enables.push_back(isa::ModuleId::kAhbm);
      if (enable_cfc) enables.push_back(isa::ModuleId::kCfc);
      dme::VariantSpec variant_b{machine_config, os_config, enables, dme_seed_b};
      const dme::RecordedTrace ref = dme::record_trace(variant_b, program);
      dme::VariantSpec variant_a{machine_config, os_config, enables, dme_seed_a};
      const dme::RecordedTrace run = dme::record_trace(variant_a, program,
                                                       dme::kDefaultMaxRecords,
                                                       /*prefer_fast=*/false);
      const dme::DmeResult verdict = dme::compare_traces(run, ref.trace);
      std::cout << run.output;
      if (verdict.divergences == 0) {
        std::cout << "dme: convergent (" << run.trace.records.size() << " canonical records, "
                  << "seeds " << dme_seed_a << ":" << dme_seed_b << ")\n";
      } else {
        std::cout << "dme: DIVERGENCE at record " << verdict.first_divergence << " (seeds "
                  << dme_seed_a << ":" << dme_seed_b << ")\n";
      }
      if (!run.finished) {
        std::cerr << "rse_run: run limit reached before the program finished\n";
      }
      return run.exit_code;
    }
    os::Machine machine(machine_config);
    os::GuestOs guest(machine, os_config);
    if (requests > 0 || io_latency > 0) {
      os::NetworkConfig net;
      if (requests > 0) net.total_requests = requests;
      if (io_latency > 0) net.io_latency_mean = io_latency;
      guest.network().configure(net);
    }
    guest.load(isa::assemble(source));
    if (trace > 0) {
      machine.core().set_commit_trace(
          [&trace](Cycle now, Addr pc, const isa::Instr& instr, ThreadId thread) {
            if (trace == 0) return;
            --trace;
            std::cerr << std::setw(10) << now << "  t" << thread << "  0x" << std::hex
                      << pc << std::dec << "  " << isa::disassemble(instr) << "\n";
          });
    }
    if (enable_icm) guest.enable_module(isa::ModuleId::kIcm);
    if (enable_mlr) guest.enable_module(isa::ModuleId::kMlr);
    if (enable_ddt) guest.enable_module(isa::ModuleId::kDdt);
    if (enable_ahbm) guest.enable_module(isa::ModuleId::kAhbm);
    if (enable_cfc) guest.enable_module(isa::ModuleId::kCfc);
    if (fast) {
      const isa::Program program = isa::assemble(source);
      exec::FastSession session(guest, exec::FastSessionConfig{/*relaxed=*/true});
      session.seed_leaders(program);
      const exec::FastSession::Status status = session.run_until(os_config.run_limit);
      if (status == exec::FastSession::Status::kBail) {
        // Threads, network I/O, or an illegal word: hand the exact current
        // state to the cycle-accurate core and keep going fully modeled.
        session.transplant(session.virtual_now());
        guest.run();
      }
      if (stats) {
        std::cout << "--- fast engine ---\n"
                  << "fast instructions:   " << session.executed() << "\n"
                  << "blocks cached:       " << session.block_cache().blocks_cached() << " ("
                  << session.block_cache().stats().decodes << " decoded, "
                  << session.block_cache().stats().invalidations << " invalidated)\n";
      }
    } else {
      guest.run();
    }

    std::cout << guest.output();
    if (!guest.finished()) {
      std::cerr << "rse_run: run limit reached before the program finished\n";
    }
    if (stats) print_stats(machine, guest);
    return guest.exit_code();
  } catch (const rse::SimError& error) {
    std::cerr << "rse_run: " << error.what() << "\n";
    return 1;
  }
}
