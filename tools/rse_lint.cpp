// rse_lint: static guest-program analyzer (docs/analysis.md).
//
//   rse_lint <program.s> [options]
//   rse_lint --workload <name> [options]
//     --instrument          insert ICM CHECKs before control flow first
//     --protected a:b       declare [a, b) as CHECK-protected (labels or hex
//                           addresses; repeatable)
//     --flat-footprint      disable interprocedural footprint summaries
//     --context-depth N     context-sensitive cloning depth for the
//                           footprint pass (default 1; 0 = joined summaries
//                           only, the context-insensitive behavior)
//     --field-sensitive     strided-interval (field-level) footprint domain
//                           (default on)
//     --no-field-sensitive  revert to dense interval hulls
//     --sp-depth N          abstract-$sp recursion context depth for
//                           field-sensitive summary cloning (default 2)
//     --no-cfi              do not resolve indirect jumps via the
//                           address-taken set
//     --json                machine-readable report on stdout
//     --cfg                 dump the recovered basic blocks
//     --quiet               suppress per-diagnostic output (exit code only)
//
// Exit codes: 0 = no error-severity findings, 1 = errors found (or the
// program failed to assemble), 2 = usage.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "campaign/workload.hpp"
#include "common/error.hpp"
#include "isa/assembler.hpp"
#include "workloads/workloads.hpp"

using namespace rse;

namespace {

int usage() {
  std::cerr << "usage: rse_lint <program.s> [--instrument] [--protected LO:HI]...\n"
            << "       rse_lint --workload NAME\n"
            << "  [--no-cfi] [--flat-footprint] [--context-depth N] [--field-sensitive]\n"
            << "  [--no-field-sensitive] [--sp-depth N] [--json] [--cfg] [--quiet]\n"
            << "workloads:";
  for (const std::string& name : campaign::workload_names()) std::cerr << ' ' << name;
  std::cerr << "\n";
  return 2;
}

/// "label" or hex/decimal address -> Addr.
bool resolve_bound(const isa::Program& program, const std::string& token, Addr* out) {
  try {
    *out = program.symbol(token);
    return true;
  } catch (const SimError&) {
  }
  try {
    *out = static_cast<Addr>(std::stoul(token, nullptr, 0));
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

void dump_footprint(const isa::Program& program, const analysis::PageFootprint& fp) {
  std::cout << "footprint (" << (fp.interprocedural ? "interprocedural" : "flat")
            << (fp.field_sensitive ? ", field-sensitive" : "")
            << "): " << fp.exact_sites << " exact + " << fp.over_sites
            << " over-approximate + " << fp.unknown_sites << " unknown sites\n";
  std::cout << "  pages:";
  for (u32 page : fp.pages) std::cout << " 0x" << std::hex << page << std::dec;
  std::cout << "\n  store pages:";
  for (u32 page : fp.store_pages) std::cout << " 0x" << std::hex << page << std::dec;
  std::cout << "\n";
  if (fp.has_sp_range) {
    std::cout << "  sp envelope: [" << fp.sp_lo << ", " << fp.sp_hi << "]\n";
  }
  if (fp.has_gp_range) {
    std::cout << "  gp envelope: [" << fp.gp_lo << ", " << fp.gp_hi << "]\n";
  }
  for (const analysis::AccessSite& site : fp.sites) {
    if (site.stride < 2) continue;
    std::cout << "  site 0x" << std::hex << site.pc << std::dec
              << (site.is_store ? " store" : " load") << " stride " << site.stride
              << " over [" << site.lo << ", " << site.hi << "]\n";
  }
  for (const analysis::PageFootprint::SitePages& sp : fp.context_pages) {
    std::cout << "  context pages 0x" << std::hex << sp.pc << std::dec
              << (sp.is_store ? " store:" : " load:");
    for (u32 page : sp.pages) std::cout << " 0x" << std::hex << page << std::dec;
    std::cout << "\n";
  }
  for (const analysis::FunctionFootprint& fn : fp.functions) {
    std::cout << "  fn 0x" << std::hex << fn.entry << std::dec;
    const std::string sym = analysis::symbolize(program, fn.entry);
    if (!sym.empty()) std::cout << " " << sym;
    std::cout << ": " << fn.pages.size() << " pages (" << fn.store_pages.size()
              << " written), " << fn.exact_sites << "/" << fn.over_sites << "/"
              << fn.unknown_sites << " exact/over/unknown\n";
  }
  for (const analysis::FunctionSummary& sum : fp.summaries) {
    std::cout << "  summary 0x" << std::hex << sum.entry << std::dec;
    const std::string sym = analysis::symbolize(program, sum.entry);
    if (!sym.empty()) std::cout << " " << sym;
    if (!sum.summarized) {
      std::cout << ": <not summarizable>\n";
      continue;
    }
    std::cout << ": clobbers 0x" << std::hex << sum.clobbered_regs << std::dec
              << (sum.returns ? "" : ", no-return") << ", " << sum.pages.size()
              << " pages";
    if (sum.has_sp_range) {
      std::cout << ", sp [" << sum.sp_lo << ", " << sum.sp_hi << "]";
    }
    if (sum.has_gp_range) {
      std::cout << ", gp [" << sum.gp_lo << ", " << sum.gp_hi << "]";
    }
    if (sum.unknown_sites != 0) std::cout << ", " << sum.unknown_sites << " unknown";
    std::cout << "\n";
  }
}

void dump_cfg(const isa::Program& program, const analysis::ControlFlowGraph& cfg) {
  for (const analysis::BasicBlock& block : cfg.blocks) {
    std::cout << "block " << block.index << " [0x" << std::hex << block.start << ", 0x"
              << block.end << ")" << std::dec;
    const std::string sym = analysis::symbolize(program, block.start);
    if (!sym.empty()) std::cout << " " << sym;
    std::cout << (block.reachable ? "" : " UNREACHABLE");
    std::cout << " ->";
    if (!block.indirect_resolved) {
      std::cout << " <unresolved indirect>";
    } else {
      for (Addr succ : block.successors) std::cout << " 0x" << std::hex << succ << std::dec;
    }
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string workload;
  std::vector<std::string> protected_specs;
  bool instrument = false, json = false, cfg_dump = false, quiet = false;
  analysis::AnalysisOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(usage());
      }
      return argv[++i];
    };
    if (arg == "--workload") workload = value();
    else if (arg == "--protected") protected_specs.push_back(value());
    else if (arg == "--instrument") instrument = true;
    else if (arg == "--no-cfi") options.resolve_indirect_address_taken = false;
    else if (arg == "--flat-footprint") options.interprocedural_footprint = false;
    else if (arg == "--context-depth") options.context_depth = static_cast<u32>(std::strtoul(value(), nullptr, 0));
    else if (arg == "--field-sensitive") options.field_sensitive = true;
    else if (arg == "--no-field-sensitive") options.field_sensitive = false;
    else if (arg == "--sp-depth") options.field_sp_depth = static_cast<u32>(std::strtoul(value(), nullptr, 0));
    else if (arg == "--json") json = true;
    else if (arg == "--cfg") cfg_dump = true;
    else if (arg == "--quiet") quiet = true;
    else if (!arg.empty() && arg[0] == '-') return usage();
    else path = arg;
  }
  if (path.empty() == workload.empty()) return usage();  // exactly one input

  try {
    std::string source;
    if (!workload.empty()) {
      source = campaign::make_workload(workload).source;
    } else {
      std::ifstream file(path);
      if (!file) {
        std::cerr << "rse_lint: cannot open " << path << "\n";
        return 1;
      }
      std::stringstream buffer;
      buffer << file.rdbuf();
      source = buffer.str();
    }
    if (instrument) source = workloads::instrument_checks(source);

    const isa::Program program = isa::assemble(source);
    for (const std::string& spec : protected_specs) {
      const std::size_t colon = spec.find(':');
      analysis::ProtectedRegion region;
      region.name = spec;
      if (colon == std::string::npos ||
          !resolve_bound(program, spec.substr(0, colon), &region.lo) ||
          !resolve_bound(program, spec.substr(colon + 1), &region.hi)) {
        std::cerr << "rse_lint: bad --protected spec '" << spec << "' (want LO:HI)\n";
        return usage();
      }
      options.protected_regions.push_back(std::move(region));
    }

    const analysis::AnalysisResult result = analysis::analyze(program, options);
    if (cfg_dump) {
      dump_cfg(program, result.cfg);
      dump_footprint(program, result.footprint);
    }
    if (json) {
      std::cout << analysis::to_json(program, result);
    } else if (!quiet) {
      for (const analysis::Diagnostic& d : result.diagnostics) {
        std::cout << analysis::format_diagnostic(d) << "\n";
      }
      std::cout << "rse_lint: " << result.cfg.blocks.size() << " blocks ("
                << result.cfg.reachable_blocks() << " reachable), " << result.indirect.size()
                << " resolved + " << result.unresolved_indirects << " unresolved indirects, "
                << result.footprint.pages.size() << " footprint pages ("
                << result.footprint.unknown_sites << " unknown sites), "
                << result.count(analysis::Severity::kError) << " errors, "
                << result.count(analysis::Severity::kWarning) << " warnings\n";
    }
    return result.has_errors() ? 1 : 0;
  } catch (const SimError& error) {
    std::cerr << "rse_lint: " << error.what() << "\n";
    return 1;
  }
}
