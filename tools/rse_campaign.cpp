// rse_campaign: parallel fault-injection campaigns with outcome
// classification (docs/campaigns.md).
//
//   rse_campaign [options]
//     --workload <name>     loop | calls | args | stride | kmeans |
//                           kmeans-large | server                  (kmeans)
//     --runs <n>            number of injected runs                (256)
//     --seed <n>            campaign seed                          (1)
//     --jobs <n>            worker threads, 0 = hardware           (0)
//     --targets a,b,...     subset of reg,instr,data,config        (all)
//     --hang-factor <f>     cycle budget = f x golden cycles       (8)
//     --runs-csv <path>     per-run CSV export
//     --json <path|->       JSON report ('-' = stdout)
//     --flat-footprint      static analysis without interprocedural summaries
//     --context-depth <n>   context-sensitive footprint cloning depth
//                           (default 1; 0 = context-insensitive)
//     --field-sensitive / --no-field-sensitive
//                           strided-interval (field-level) footprint domain
//                           for --static-ddt (default on)
//     --fast-forward        run each eligible run's fault-free prefix through
//                           the exec/ fast engine, then transplant into the
//                           cycle-accurate core at the injection cycle
//                           (identical digest; docs/execution.md)
//     --snapshot-fork       checkpoint-fork injection: one whole-machine
//                           snapshot per injection-cycle bucket, every run
//                           forks from the latest snapshot before its
//                           injection cycle (identical digest)
//     --snapshot-buckets n  snapshot-chain bucket count               (8)
//     --dme                 divergent multi-version execution: the campaign
//                           runs layout-randomized under MLR seed A and every
//                           run's canonical trace is diffed against a
//                           fault-free reference variant under seed B; adds
//                           the detected_dme outcome (docs/security.md)
//     --dme-seeds A:B       the two MLR seeds (default 1:2; implies --dme)
//     --shard i/N           execute plan range i of N (multi-process
//                           scale-out; write the partial report with
//                           --shard-out, fold with --merge)
//     --shard-out <path>    write this shard's report file
//     --merge f1 f2 ...     merge shard report files into one report and
//                           exit (all remaining args are shard files)
//     --window LO:HI        injection-cycle window as fractions of the
//                           golden run (default 0:1 = full range)
//     --ci-threshold <f>    refine outcome strata whose Wilson 95% interval
//                           straddles f with extra deterministic runs
//     --ci-batch <n>        refinement batch size (0 = max(16, runs/2))
//     --ci-max-runs <n>     refinement total-run cap (0 = 4 x runs)
//     --describe <index>    print one run's injection point and exit
//     --digest              print the deterministic digest instead of the
//                           summary (for cross---jobs comparisons)
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "campaign/runner.hpp"
#include "campaign/shard.hpp"
#include "common/error.hpp"

using namespace rse;

namespace {

int usage() {
  std::cerr << "usage: rse_campaign [--workload NAME] [--runs N] [--seed N] [--jobs N]\n"
            << "  [--targets reg,instr,data,config] [--hang-factor F] [--static-cfc]\n"
            << "  [--static-ddt] [--flat-footprint] [--context-depth N] [--field-sensitive]\n"
            << "  [--no-field-sensitive] [--fast-forward] [--snapshot-fork]\n"
            << "  [--snapshot-buckets N] [--dme] [--dme-seeds A:B] [--shard I/N]\n"
            << "  [--shard-out PATH] [--window LO:HI]\n"
            << "  [--ci-threshold F] [--ci-batch N] [--ci-max-runs N]\n"
            << "  [--runs-csv PATH] [--json PATH|-] [--describe INDEX] [--digest]\n"
            << "  | rse_campaign --merge SHARD-FILE... [--runs-csv PATH] [--json PATH|-]\n"
            << "workloads:";
  for (const std::string& name : campaign::workload_names()) std::cerr << ' ' << name;
  std::cerr << "\n";
  return 2;
}

bool parse_targets(const std::string& list, std::vector<campaign::InjectTarget>* out) {
  out->clear();
  std::istringstream in(list);
  std::string token;
  while (std::getline(in, token, ',')) {
    campaign::InjectTarget target;
    if (!campaign::parse_target(token, &target)) return false;
    out->push_back(target);
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  campaign::CampaignSpec spec;
  spec.jobs = 0;  // default: all hardware threads
  std::string runs_csv, json_path, shard_out;
  bool digest_only = false;
  bool merge_mode = false;
  std::vector<std::string> merge_paths;
  long describe_index = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(usage());
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      spec.workload = value();
    } else if (arg == "--runs") {
      spec.runs = static_cast<u32>(std::stoul(value()));
    } else if (arg == "--seed") {
      spec.seed = std::stoull(value());
    } else if (arg == "--jobs") {
      spec.jobs = static_cast<u32>(std::stoul(value()));
    } else if (arg == "--hang-factor") {
      spec.hang_factor = std::stod(value());
    } else if (arg == "--static-cfc") {
      spec.static_cfc = true;
    } else if (arg == "--static-ddt") {
      spec.static_ddt = true;
    } else if (arg == "--flat-footprint") {
      spec.footprint_summaries = false;
    } else if (arg == "--context-depth") {
      spec.context_depth = static_cast<u32>(std::stoul(value()));
    } else if (arg == "--field-sensitive") {
      spec.field_sensitive = true;
    } else if (arg == "--no-field-sensitive") {
      spec.field_sensitive = false;
    } else if (arg == "--fast-forward") {
      spec.fast_forward = true;
    } else if (arg == "--snapshot-fork") {
      spec.snapshot_fork = true;
    } else if (arg == "--snapshot-buckets") {
      spec.snapshot_buckets = static_cast<u32>(std::stoul(value()));
    } else if (arg == "--dme") {
      spec.dme = true;
    } else if (arg == "--dme-seeds") {
      const std::string v = value();
      const auto colon = v.find(':');
      if (colon == std::string::npos) {
        std::cerr << "--dme-seeds expects A:B\n";
        return usage();
      }
      spec.dme = true;
      spec.dme_seed_a = std::stoull(v.substr(0, colon));
      spec.dme_seed_b = std::stoull(v.substr(colon + 1));
    } else if (arg == "--shard") {
      const std::string v = value();
      const auto slash = v.find('/');
      if (slash == std::string::npos) {
        std::cerr << "--shard expects I/N\n";
        return usage();
      }
      spec.shard_index = static_cast<u32>(std::stoul(v.substr(0, slash)));
      spec.shard_count = static_cast<u32>(std::stoul(v.substr(slash + 1)));
    } else if (arg == "--shard-out") {
      shard_out = value();
    } else if (arg == "--merge") {
      merge_mode = true;
    } else if (arg == "--window") {
      const std::string v = value();
      const auto colon = v.find(':');
      if (colon == std::string::npos) {
        std::cerr << "--window expects LO:HI fractions\n";
        return usage();
      }
      spec.window_lo = std::stod(v.substr(0, colon));
      spec.window_hi = std::stod(v.substr(colon + 1));
    } else if (arg == "--ci-threshold") {
      spec.ci_threshold = std::stod(value());
    } else if (arg == "--ci-batch") {
      spec.ci_batch = static_cast<u32>(std::stoul(value()));
    } else if (arg == "--ci-max-runs") {
      spec.ci_max_runs = static_cast<u32>(std::stoul(value()));
    } else if (arg == "--targets") {
      if (!parse_targets(value(), &spec.targets)) {
        std::cerr << "bad --targets list\n";
        return usage();
      }
    } else if (arg == "--runs-csv") {
      runs_csv = value();
    } else if (arg == "--json") {
      json_path = value();
    } else if (arg == "--describe") {
      describe_index = std::stol(value());
    } else if (arg == "--digest") {
      digest_only = true;
    } else if (merge_mode && arg.rfind("--", 0) != 0) {
      merge_paths.push_back(arg);
    } else {
      return usage();
    }
  }
  if (merge_mode && merge_paths.empty()) {
    std::cerr << "--merge needs at least one shard report file\n";
    return usage();
  }

  try {
    campaign::CampaignRunner runner;

    if (describe_index >= 0) {
      const campaign::WorkloadSetup setup = campaign::make_workload(spec.workload);
      const auto golden = runner.cache().get(setup);
      const campaign::InjectionPlan plan = runner.plan_for(spec, *golden, setup);
      std::cout << campaign::describe(plan.record(static_cast<u32>(describe_index))) << "\n";
      return 0;
    }

    const campaign::CampaignReport report =
        merge_mode ? campaign::merge_shard_files(merge_paths) : runner.run(spec);

    if (digest_only) {
      std::cout << campaign::deterministic_digest(report);
    } else {
      std::cout << campaign::summary_text(report);
      if (spec.fast_forward && !merge_mode) {
        // Fallback accounting: why runs left the fast path.  Observational
        // only — outcomes and the digest never depend on the path taken.
        const campaign::FastForwardStats ff = runner.fast_forward_stats();
        std::cout << "fast-forward: " << ff.fast << " fast, " << ff.fallbacks()
                  << " fallback (target " << ff.fallback_target << ", unmapped "
                  << ff.fallback_unmapped << ", conflict " << ff.fallback_conflict
                  << ", checked " << ff.fallback_checked
                  << ", syscall " << ff.fallback_syscall << ", suspend "
                  << ff.fallback_suspend << ", illegal " << ff.fallback_illegal
                  << ", other " << ff.fallback_other << ")\n";
      }
    }
    if (!shard_out.empty() && !campaign::write_shard_report(report, shard_out)) {
      std::cerr << "failed to write " << shard_out << "\n";
      return 1;
    }
    if (!runs_csv.empty() && !campaign::write_runs_csv(report, runs_csv)) {
      std::cerr << "failed to write " << runs_csv << "\n";
      return 1;
    }
    if (!json_path.empty()) {
      if (json_path == "-") {
        std::cout << campaign::to_json(report);
      } else {
        std::ofstream out(json_path);
        out << campaign::to_json(report);
        if (!out) {
          std::cerr << "failed to write " << json_path << "\n";
          return 1;
        }
      }
    }
  } catch (const SimError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
