// rse_campaign: parallel fault-injection campaigns with outcome
// classification (docs/campaigns.md).
//
//   rse_campaign [options]
//     --workload <name>     loop | calls | args | stride | kmeans |
//                           kmeans-large | server                  (kmeans)
//     --runs <n>            number of injected runs                (256)
//     --seed <n>            campaign seed                          (1)
//     --jobs <n>            worker threads, 0 = hardware           (0)
//     --targets a,b,...     subset of reg,instr,data,config        (all)
//     --hang-factor <f>     cycle budget = f x golden cycles       (8)
//     --runs-csv <path>     per-run CSV export
//     --json <path|->       JSON report ('-' = stdout)
//     --flat-footprint      static analysis without interprocedural summaries
//     --context-depth <n>   context-sensitive footprint cloning depth
//                           (default 1; 0 = context-insensitive)
//     --field-sensitive / --no-field-sensitive
//                           strided-interval (field-level) footprint domain
//                           for --static-ddt (default on)
//     --fast-forward        run each eligible run's fault-free prefix through
//                           the exec/ fast engine, then transplant into the
//                           cycle-accurate core at the injection cycle
//                           (identical digest; docs/execution.md)
//     --describe <index>    print one run's injection point and exit
//     --digest              print the deterministic digest instead of the
//                           summary (for cross---jobs comparisons)
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "campaign/runner.hpp"
#include "common/error.hpp"

using namespace rse;

namespace {

int usage() {
  std::cerr << "usage: rse_campaign [--workload NAME] [--runs N] [--seed N] [--jobs N]\n"
            << "  [--targets reg,instr,data,config] [--hang-factor F] [--static-cfc]\n"
            << "  [--static-ddt] [--flat-footprint] [--context-depth N] [--field-sensitive]\n"
            << "  [--no-field-sensitive] [--fast-forward]\n"
            << "  [--runs-csv PATH] [--json PATH|-] [--describe INDEX] [--digest]\n"
            << "workloads:";
  for (const std::string& name : campaign::workload_names()) std::cerr << ' ' << name;
  std::cerr << "\n";
  return 2;
}

bool parse_targets(const std::string& list, std::vector<campaign::InjectTarget>* out) {
  out->clear();
  std::istringstream in(list);
  std::string token;
  while (std::getline(in, token, ',')) {
    campaign::InjectTarget target;
    if (!campaign::parse_target(token, &target)) return false;
    out->push_back(target);
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  campaign::CampaignSpec spec;
  spec.jobs = 0;  // default: all hardware threads
  std::string runs_csv, json_path;
  bool digest_only = false;
  long describe_index = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(usage());
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      spec.workload = value();
    } else if (arg == "--runs") {
      spec.runs = static_cast<u32>(std::stoul(value()));
    } else if (arg == "--seed") {
      spec.seed = std::stoull(value());
    } else if (arg == "--jobs") {
      spec.jobs = static_cast<u32>(std::stoul(value()));
    } else if (arg == "--hang-factor") {
      spec.hang_factor = std::stod(value());
    } else if (arg == "--static-cfc") {
      spec.static_cfc = true;
    } else if (arg == "--static-ddt") {
      spec.static_ddt = true;
    } else if (arg == "--flat-footprint") {
      spec.footprint_summaries = false;
    } else if (arg == "--context-depth") {
      spec.context_depth = static_cast<u32>(std::stoul(value()));
    } else if (arg == "--field-sensitive") {
      spec.field_sensitive = true;
    } else if (arg == "--no-field-sensitive") {
      spec.field_sensitive = false;
    } else if (arg == "--fast-forward") {
      spec.fast_forward = true;
    } else if (arg == "--targets") {
      if (!parse_targets(value(), &spec.targets)) {
        std::cerr << "bad --targets list\n";
        return usage();
      }
    } else if (arg == "--runs-csv") {
      runs_csv = value();
    } else if (arg == "--json") {
      json_path = value();
    } else if (arg == "--describe") {
      describe_index = std::stol(value());
    } else if (arg == "--digest") {
      digest_only = true;
    } else {
      return usage();
    }
  }

  try {
    campaign::CampaignRunner runner;

    if (describe_index >= 0) {
      const campaign::WorkloadSetup setup = campaign::make_workload(spec.workload);
      const auto golden = runner.cache().get(setup);
      const campaign::InjectionPlan plan = runner.plan_for(spec, *golden, setup);
      std::cout << campaign::describe(plan.record(static_cast<u32>(describe_index))) << "\n";
      return 0;
    }

    const campaign::CampaignReport report = runner.run(spec);

    if (digest_only) {
      std::cout << campaign::deterministic_digest(report);
    } else {
      std::cout << campaign::summary_text(report);
    }
    if (!runs_csv.empty() && !campaign::write_runs_csv(report, runs_csv)) {
      std::cerr << "failed to write " << runs_csv << "\n";
      return 1;
    }
    if (!json_path.empty()) {
      if (json_path == "-") {
        std::cout << campaign::to_json(report);
      } else {
        std::ofstream out(json_path);
        out << campaign::to_json(report);
        if (!out) {
          std::cerr << "failed to write " << json_path << "\n";
          return 1;
        }
      }
    }
  } catch (const SimError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
