// rse-asm: assemble a guest .s file and print the listing (addresses,
// encodings, disassembly, symbols).  Useful for inspecting programs before
// running them with rse-run.
//
//   rse_asm program.s [--instrument] [--instrument-mem]
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "isa/assembler.hpp"
#include "workloads/workloads.hpp"

using namespace rse;

namespace {

int usage() {
  std::cerr << "usage: rse_asm <program.s> [--instrument] [--instrument-mem]\n"
            << "  --instrument      insert ICM CHECKs before control-flow instructions\n"
            << "  --instrument-mem  ...and before loads/stores\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string path;
  workloads::InstrumentOptions options;
  bool instrument = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--instrument") {
      instrument = true;
    } else if (arg == "--instrument-mem") {
      instrument = true;
      options.check_mem = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      path = arg;
    }
  }
  if (path.empty()) return usage();

  std::ifstream file(path);
  if (!file) {
    std::cerr << "rse_asm: cannot open " << path << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  std::string source = buffer.str();
  if (instrument) source = workloads::instrument_checks(source, options);

  try {
    const isa::Program program = isa::assemble(source);
    std::cout << "; text: " << program.text.size() << " instructions at 0x" << std::hex
              << program.text_base << ", data: " << std::dec << program.data.size()
              << " bytes at 0x" << std::hex << program.data_base << ", entry 0x"
              << program.entry << std::dec << "\n\n";
    // Reverse symbol map for labels in the listing.
    std::multimap<Addr, std::string> by_addr;
    for (const auto& [name, addr] : program.symbols) by_addr.emplace(addr, name);
    for (std::size_t i = 0; i < program.text.size(); ++i) {
      const Addr pc = program.text_base + static_cast<Addr>(i * 4);
      auto [lo, hi] = by_addr.equal_range(pc);
      for (auto it = lo; it != hi; ++it) std::cout << it->second << ":\n";
      std::cout << "  " << std::hex << std::setw(8) << std::setfill('0') << pc << "  "
                << std::setw(8) << program.text[i] << std::dec << std::setfill(' ') << "  "
                << isa::disassemble(isa::decode(program.text[i])) << "\n";
    }
    std::cout << "\n; data symbols:\n";
    for (const auto& [name, addr] : program.symbols) {
      if (addr >= program.data_base) {
        std::cout << ";   " << name << " = 0x" << std::hex << addr << std::dec << "\n";
      }
    }
  } catch (const rse::SimError& error) {
    std::cerr << "rse_asm: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
