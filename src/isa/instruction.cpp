#include "isa/instruction.hpp"

#include <array>
#include <cassert>
#include <sstream>

#include "common/bits.hpp"

namespace rse::isa {
namespace {

// Primary opcodes.
constexpr u32 kOpcR = 0x00;
constexpr u32 kOpcJ = 0x02;
constexpr u32 kOpcJal = 0x03;
constexpr u32 kOpcBeq = 0x04;
constexpr u32 kOpcBne = 0x05;
constexpr u32 kOpcBlt = 0x06;
constexpr u32 kOpcBge = 0x07;
constexpr u32 kOpcAddi = 0x08;
constexpr u32 kOpcSlti = 0x0A;
constexpr u32 kOpcSltiu = 0x0B;
constexpr u32 kOpcAndi = 0x0C;
constexpr u32 kOpcOri = 0x0D;
constexpr u32 kOpcXori = 0x0E;
constexpr u32 kOpcLui = 0x0F;
constexpr u32 kOpcBltu = 0x10;
constexpr u32 kOpcBgeu = 0x11;
constexpr u32 kOpcLb = 0x20;
constexpr u32 kOpcLh = 0x21;
constexpr u32 kOpcLw = 0x23;
constexpr u32 kOpcLbu = 0x24;
constexpr u32 kOpcLhu = 0x25;
constexpr u32 kOpcSb = 0x28;
constexpr u32 kOpcSh = 0x29;
constexpr u32 kOpcSw = 0x2B;
constexpr u32 kOpcChk = 0x3E;

// R-type function codes.
constexpr u32 kFnSll = 0x00;
constexpr u32 kFnSrl = 0x02;
constexpr u32 kFnSra = 0x03;
constexpr u32 kFnSllv = 0x04;
constexpr u32 kFnSrlv = 0x06;
constexpr u32 kFnSrav = 0x07;
constexpr u32 kFnJr = 0x08;
constexpr u32 kFnJalr = 0x09;
constexpr u32 kFnSyscall = 0x0C;
constexpr u32 kFnMul = 0x18;
constexpr u32 kFnMulh = 0x19;
constexpr u32 kFnDiv = 0x1A;
constexpr u32 kFnRem = 0x1B;
constexpr u32 kFnAdd = 0x20;
constexpr u32 kFnSub = 0x22;
constexpr u32 kFnAnd = 0x24;
constexpr u32 kFnOr = 0x25;
constexpr u32 kFnXor = 0x26;
constexpr u32 kFnNor = 0x27;
constexpr u32 kFnSlt = 0x2A;
constexpr u32 kFnSltu = 0x2B;

Op r_type_op(u32 funct) {
  switch (funct) {
    case kFnSll: return Op::kSll;
    case kFnSrl: return Op::kSrl;
    case kFnSra: return Op::kSra;
    case kFnSllv: return Op::kSllv;
    case kFnSrlv: return Op::kSrlv;
    case kFnSrav: return Op::kSrav;
    case kFnJr: return Op::kJr;
    case kFnJalr: return Op::kJalr;
    case kFnSyscall: return Op::kSyscall;
    case kFnMul: return Op::kMul;
    case kFnMulh: return Op::kMulh;
    case kFnDiv: return Op::kDiv;
    case kFnRem: return Op::kRem;
    case kFnAdd: return Op::kAdd;
    case kFnSub: return Op::kSub;
    case kFnAnd: return Op::kAnd;
    case kFnOr: return Op::kOr;
    case kFnXor: return Op::kXor;
    case kFnNor: return Op::kNor;
    case kFnSlt: return Op::kSlt;
    case kFnSltu: return Op::kSltu;
    default: return Op::kInvalid;
  }
}

u32 r_type_funct(Op op) {
  switch (op) {
    case Op::kSll: return kFnSll;
    case Op::kSrl: return kFnSrl;
    case Op::kSra: return kFnSra;
    case Op::kSllv: return kFnSllv;
    case Op::kSrlv: return kFnSrlv;
    case Op::kSrav: return kFnSrav;
    case Op::kJr: return kFnJr;
    case Op::kJalr: return kFnJalr;
    case Op::kSyscall: return kFnSyscall;
    case Op::kMul: return kFnMul;
    case Op::kMulh: return kFnMulh;
    case Op::kDiv: return kFnDiv;
    case Op::kRem: return kFnRem;
    case Op::kAdd: return kFnAdd;
    case Op::kSub: return kFnSub;
    case Op::kAnd: return kFnAnd;
    case Op::kOr: return kFnOr;
    case Op::kXor: return kFnXor;
    case Op::kNor: return kFnNor;
    case Op::kSlt: return kFnSlt;
    case Op::kSltu: return kFnSltu;
    default: assert(false && "not an R-type op"); return 0;
  }
}

Op i_type_op(u32 opcode) {
  switch (opcode) {
    case kOpcBeq: return Op::kBeq;
    case kOpcBne: return Op::kBne;
    case kOpcBlt: return Op::kBlt;
    case kOpcBge: return Op::kBge;
    case kOpcBltu: return Op::kBltu;
    case kOpcBgeu: return Op::kBgeu;
    case kOpcAddi: return Op::kAddi;
    case kOpcSlti: return Op::kSlti;
    case kOpcSltiu: return Op::kSltiu;
    case kOpcAndi: return Op::kAndi;
    case kOpcOri: return Op::kOri;
    case kOpcXori: return Op::kXori;
    case kOpcLui: return Op::kLui;
    case kOpcLb: return Op::kLb;
    case kOpcLh: return Op::kLh;
    case kOpcLw: return Op::kLw;
    case kOpcLbu: return Op::kLbu;
    case kOpcLhu: return Op::kLhu;
    case kOpcSb: return Op::kSb;
    case kOpcSh: return Op::kSh;
    case kOpcSw: return Op::kSw;
    default: return Op::kInvalid;
  }
}

u32 i_type_opcode(Op op) {
  switch (op) {
    case Op::kBeq: return kOpcBeq;
    case Op::kBne: return kOpcBne;
    case Op::kBlt: return kOpcBlt;
    case Op::kBge: return kOpcBge;
    case Op::kBltu: return kOpcBltu;
    case Op::kBgeu: return kOpcBgeu;
    case Op::kAddi: return kOpcAddi;
    case Op::kSlti: return kOpcSlti;
    case Op::kSltiu: return kOpcSltiu;
    case Op::kAndi: return kOpcAndi;
    case Op::kOri: return kOpcOri;
    case Op::kXori: return kOpcXori;
    case Op::kLui: return kOpcLui;
    case Op::kLb: return kOpcLb;
    case Op::kLh: return kOpcLh;
    case Op::kLw: return kOpcLw;
    case Op::kLbu: return kOpcLbu;
    case Op::kLhu: return kOpcLhu;
    case Op::kSb: return kOpcSb;
    case Op::kSh: return kOpcSh;
    case Op::kSw: return kOpcSw;
    default: assert(false && "not an I-type op"); return 0;
  }
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kInvalid: return "<invalid>";
    case Op::kSll: return "sll";
    case Op::kSrl: return "srl";
    case Op::kSra: return "sra";
    case Op::kSllv: return "sllv";
    case Op::kSrlv: return "srlv";
    case Op::kSrav: return "srav";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kNor: return "nor";
    case Op::kSlt: return "slt";
    case Op::kSltu: return "sltu";
    case Op::kMul: return "mul";
    case Op::kMulh: return "mulh";
    case Op::kDiv: return "div";
    case Op::kRem: return "rem";
    case Op::kJr: return "jr";
    case Op::kJalr: return "jalr";
    case Op::kSyscall: return "syscall";
    case Op::kAddi: return "addi";
    case Op::kAndi: return "andi";
    case Op::kOri: return "ori";
    case Op::kXori: return "xori";
    case Op::kSlti: return "slti";
    case Op::kSltiu: return "sltiu";
    case Op::kLui: return "lui";
    case Op::kLw: return "lw";
    case Op::kLb: return "lb";
    case Op::kLbu: return "lbu";
    case Op::kLh: return "lh";
    case Op::kLhu: return "lhu";
    case Op::kSw: return "sw";
    case Op::kSb: return "sb";
    case Op::kSh: return "sh";
    case Op::kBeq: return "beq";
    case Op::kBne: return "bne";
    case Op::kBlt: return "blt";
    case Op::kBge: return "bge";
    case Op::kBltu: return "bltu";
    case Op::kBgeu: return "bgeu";
    case Op::kJ: return "j";
    case Op::kJal: return "jal";
    case Op::kChk: return "chk";
  }
  return "<bad>";
}

}  // namespace

OpClass Instr::op_class() const {
  switch (op) {
    case Op::kSll:
      if (rd == 0 && rt == 0 && shamt == 0) return OpClass::kNop;
      return OpClass::kIntAlu;
    case Op::kSrl:
    case Op::kSra:
    case Op::kSllv:
    case Op::kSrlv:
    case Op::kSrav:
    case Op::kAdd:
    case Op::kSub:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kNor:
    case Op::kSlt:
    case Op::kSltu:
    case Op::kAddi:
    case Op::kAndi:
    case Op::kOri:
    case Op::kXori:
    case Op::kSlti:
    case Op::kSltiu:
    case Op::kLui:
      return OpClass::kIntAlu;
    case Op::kMul:
    case Op::kMulh:
    case Op::kDiv:
    case Op::kRem:
      return OpClass::kIntMul;
    case Op::kLw:
    case Op::kLb:
    case Op::kLbu:
    case Op::kLh:
    case Op::kLhu:
      return OpClass::kLoad;
    case Op::kSw:
    case Op::kSb:
    case Op::kSh:
      return OpClass::kStore;
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
      return OpClass::kBranch;
    case Op::kJ:
    case Op::kJal:
    case Op::kJr:
    case Op::kJalr:
      return OpClass::kJump;
    case Op::kSyscall:
      return OpClass::kSyscall;
    case Op::kChk:
      return OpClass::kChk;
    case Op::kInvalid:
      return OpClass::kNop;
  }
  return OpClass::kNop;
}

std::optional<u8> Instr::dest_reg() const {
  switch (op) {
    case Op::kSll:
    case Op::kSrl:
    case Op::kSra:
    case Op::kSllv:
    case Op::kSrlv:
    case Op::kSrav:
    case Op::kAdd:
    case Op::kSub:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kNor:
    case Op::kSlt:
    case Op::kSltu:
    case Op::kMul:
    case Op::kMulh:
    case Op::kDiv:
    case Op::kRem:
    case Op::kJalr:
      return rd == 0 ? std::nullopt : std::optional<u8>(rd);
    case Op::kAddi:
    case Op::kAndi:
    case Op::kOri:
    case Op::kXori:
    case Op::kSlti:
    case Op::kSltiu:
    case Op::kLui:
    case Op::kLw:
    case Op::kLb:
    case Op::kLbu:
    case Op::kLh:
    case Op::kLhu:
      return rt == 0 ? std::nullopt : std::optional<u8>(rt);
    case Op::kJal:
      return std::optional<u8>(kRa);
    default:
      return std::nullopt;
  }
}

Instr::Sources Instr::source_regs() const {
  Sources s;
  auto add = [&s](u8 r) { s.regs[s.count++] = r; };
  switch (op) {
    // shift-by-immediate reads rt only
    case Op::kSll:
    case Op::kSrl:
    case Op::kSra:
      add(rt);
      break;
    // two-source R-type
    case Op::kSllv:
    case Op::kSrlv:
    case Op::kSrav:
    case Op::kAdd:
    case Op::kSub:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kNor:
    case Op::kSlt:
    case Op::kSltu:
    case Op::kMul:
    case Op::kMulh:
    case Op::kDiv:
    case Op::kRem:
      add(rs);
      add(rt);
      break;
    case Op::kJr:
    case Op::kJalr:
      add(rs);
      break;
    // I-type ALU reads rs
    case Op::kAddi:
    case Op::kAndi:
    case Op::kOri:
    case Op::kXori:
    case Op::kSlti:
    case Op::kSltiu:
      add(rs);
      break;
    case Op::kLui:
      break;
    // loads read the base; stores read base + value
    case Op::kLw:
    case Op::kLb:
    case Op::kLbu:
    case Op::kLh:
    case Op::kLhu:
      add(rs);
      break;
    case Op::kSw:
    case Op::kSb:
    case Op::kSh:
      add(rs);
      add(rt);
      break;
    // branches compare rs, rt
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
      add(rs);
      add(rt);
      break;
    case Op::kChk:
      add(rs);  // the CHK parameter register
      break;
    // syscall reads v0/a0..a3 but is serializing; model no renaming sources
    default:
      break;
  }
  return s;
}

Instr decode(Word raw) {
  Instr in;
  in.raw = raw;
  const u32 opcode = bits(raw, 26, 6);
  if (opcode == kOpcR) {
    in.op = r_type_op(bits(raw, 0, 6));
    in.rs = static_cast<u8>(bits(raw, 21, 5));
    in.rt = static_cast<u8>(bits(raw, 16, 5));
    in.rd = static_cast<u8>(bits(raw, 11, 5));
    in.shamt = static_cast<u8>(bits(raw, 6, 5));
    return in;
  }
  if (opcode == kOpcJ || opcode == kOpcJal) {
    in.op = opcode == kOpcJ ? Op::kJ : Op::kJal;
    in.target = bits(raw, 0, 26);
    return in;
  }
  if (opcode == kOpcChk) {
    in.op = Op::kChk;
    const u32 mod = bits(raw, 23, 3);
    in.chk_module = static_cast<ModuleId>(mod);
    in.chk_blocking = bits(raw, 22, 1) != 0;
    in.chk_op = static_cast<u8>(bits(raw, 17, 5));
    in.rs = static_cast<u8>(bits(raw, 12, 5));
    in.chk_imm = static_cast<u16>(bits(raw, 0, 12));
    return in;
  }
  in.op = i_type_op(opcode);
  if (in.op == Op::kInvalid) return in;
  in.rs = static_cast<u8>(bits(raw, 21, 5));
  in.rt = static_cast<u8>(bits(raw, 16, 5));
  in.imm = sign_extend(bits(raw, 0, 16), 16);
  return in;
}

Word encode(const Instr& instr) {
  assert(instr.op != Op::kInvalid);
  switch (instr.op_class()) {
    case OpClass::kChk: {
      Word raw = 0;
      raw = insert_bits(raw, 26, 6, kOpcChk);
      raw = insert_bits(raw, 23, 3, static_cast<u32>(instr.chk_module));
      raw = insert_bits(raw, 22, 1, instr.chk_blocking ? 1u : 0u);
      raw = insert_bits(raw, 17, 5, instr.chk_op);
      raw = insert_bits(raw, 12, 5, instr.rs);
      raw = insert_bits(raw, 0, 12, instr.chk_imm);
      return raw;
    }
    default:
      break;
  }
  switch (instr.op) {
    case Op::kJ:
    case Op::kJal: {
      Word raw = 0;
      raw = insert_bits(raw, 26, 6, instr.op == Op::kJ ? kOpcJ : kOpcJal);
      raw = insert_bits(raw, 0, 26, instr.target);
      return raw;
    }
    case Op::kSll:
    case Op::kSrl:
    case Op::kSra:
    case Op::kSllv:
    case Op::kSrlv:
    case Op::kSrav:
    case Op::kAdd:
    case Op::kSub:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kNor:
    case Op::kSlt:
    case Op::kSltu:
    case Op::kMul:
    case Op::kMulh:
    case Op::kDiv:
    case Op::kRem:
    case Op::kJr:
    case Op::kJalr:
    case Op::kSyscall: {
      Word raw = 0;
      raw = insert_bits(raw, 21, 5, instr.rs);
      raw = insert_bits(raw, 16, 5, instr.rt);
      raw = insert_bits(raw, 11, 5, instr.rd);
      raw = insert_bits(raw, 6, 5, instr.shamt);
      raw = insert_bits(raw, 0, 6, r_type_funct(instr.op));
      return raw;
    }
    default: {
      Word raw = 0;
      raw = insert_bits(raw, 26, 6, i_type_opcode(instr.op));
      raw = insert_bits(raw, 21, 5, instr.rs);
      raw = insert_bits(raw, 16, 5, instr.rt);
      raw = insert_bits(raw, 0, 16, static_cast<u32>(instr.imm) & 0xFFFFu);
      return raw;
    }
  }
}

std::string disassemble(const Instr& in) {
  std::ostringstream os;
  auto r = [](u8 reg) { return "r" + std::to_string(reg); };
  if (in.op_class() == OpClass::kNop && in.op == Op::kSll) return "nop";
  os << op_name(in.op);
  switch (in.op_class()) {
    case OpClass::kChk:
      os << " m" << static_cast<int>(in.chk_module) << (in.chk_blocking ? ", blk" : ", nblk")
         << ", op" << static_cast<int>(in.chk_op) << ", " << r(in.rs) << ", " << in.chk_imm;
      break;
    case OpClass::kJump:
      if (in.op == Op::kJ || in.op == Op::kJal) {
        os << " 0x" << std::hex << (in.target << 2);
      } else if (in.op == Op::kJr) {
        os << " " << r(in.rs);
      } else {
        os << " " << r(in.rd) << ", " << r(in.rs);
      }
      break;
    case OpClass::kBranch:
      os << " " << r(in.rs) << ", " << r(in.rt) << ", " << in.imm;
      break;
    case OpClass::kLoad:
      os << " " << r(in.rt) << ", " << in.imm << "(" << r(in.rs) << ")";
      break;
    case OpClass::kStore:
      os << " " << r(in.rt) << ", " << in.imm << "(" << r(in.rs) << ")";
      break;
    case OpClass::kSyscall:
      break;
    default:
      switch (in.op) {
        case Op::kSll:
        case Op::kSrl:
        case Op::kSra:
          os << " " << r(in.rd) << ", " << r(in.rt) << ", " << static_cast<int>(in.shamt);
          break;
        case Op::kLui:
          os << " " << r(in.rt) << ", " << (static_cast<u32>(in.imm) & 0xFFFFu);
          break;
        case Op::kAddi:
        case Op::kAndi:
        case Op::kOri:
        case Op::kXori:
        case Op::kSlti:
        case Op::kSltiu:
          os << " " << r(in.rt) << ", " << r(in.rs) << ", " << in.imm;
          break;
        default:
          os << " " << r(in.rd) << ", " << r(in.rs) << ", " << r(in.rt);
          break;
      }
      break;
  }
  return os.str();
}

}  // namespace rse::isa
