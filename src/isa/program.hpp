// An assembled guest program image: text, data, entry point and symbols.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace rse::isa {

/// Default segment placement (the loader may relocate the stack/heap bases,
/// which is exactly what the MLR module randomizes).
inline constexpr Addr kDefaultTextBase = 0x0040'0000;
inline constexpr Addr kDefaultDataBase = 0x1000'0000;
// Kept 2 MB below 0x8000'0000 so MLR's randomization window (up to 1 MB
// upward) never pushes stack addresses across the signed-compare boundary.
inline constexpr Addr kDefaultStackTop = 0x7FE0'0000;

struct Program {
  Addr text_base = kDefaultTextBase;
  std::vector<Word> text;  // encoded instructions

  Addr data_base = kDefaultDataBase;
  std::vector<u8> data;

  Addr entry = kDefaultTextBase;

  /// Label -> absolute address (text labels and data labels alike).
  std::map<std::string, Addr> symbols;

  Addr text_end() const { return text_base + static_cast<Addr>(text.size() * 4); }
  Addr data_end() const { return data_base + static_cast<Addr>(data.size()); }

  /// Address of a required symbol; throws AssemblyError if missing.
  Addr symbol(const std::string& name) const;

  /// Instruction word at an absolute text address.
  Word text_word(Addr addr) const;
};

}  // namespace rse::isa
