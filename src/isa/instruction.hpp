// Instruction set of the simulated 32-bit RISC core (MIPS/DLX-like, as used
// by the paper's SimpleScalar substrate), including the CHECK ("CHK") ISA
// extension of RSE section 3.3.
//
// Encoding (32-bit, big-field layout):
//   R-type: [31:26]=0      [25:21]=rs [20:16]=rt [15:11]=rd [10:6]=shamt [5:0]=funct
//   I-type: [31:26]=opcode [25:21]=rs [20:16]=rt [15:0]=imm16 (sign-extended)
//   J-type: [31:26]=opcode [25:0]=word target
//   CHK   : [31:26]=0x3E   [25:23]=module# [22]=BLK [21:17]=operation
//           [16:12]=rs (parameter register) [11:0]=imm12 (config/options)
//
// The CHK parameter travels in a register so that the RSE picks it up from
// the Regfile_Data input queue, exactly as the framework's input interface
// is described in section 3.1.
#pragma once

#include <optional>
#include <string>

#include "common/types.hpp"

namespace rse::isa {

inline constexpr unsigned kNumRegs = 32;

/// Register aliases following the MIPS convention used by guest code.
enum Reg : u8 {
  kZero = 0,  // hard-wired zero
  kAt = 1,    // assembler temporary
  kV0 = 2,    // return value / syscall number
  kV1 = 3,
  kA0 = 4,  // arguments
  kA1 = 5,
  kA2 = 6,
  kA3 = 7,
  kT0 = 8,  // caller-saved temporaries t0..t7 = r8..r15
  kS0 = 16,  // callee-saved s0..s7 = r16..r23
  kT8 = 24,
  kT9 = 25,
  kGp = 28,
  kSp = 29,
  kFp = 30,
  kRa = 31,
};

/// Decoded operation.
enum class Op : u8 {
  kInvalid,
  // R-type ALU
  kSll,
  kSrl,
  kSra,
  kSllv,
  kSrlv,
  kSrav,
  kAdd,
  kSub,
  kAnd,
  kOr,
  kXor,
  kNor,
  kSlt,
  kSltu,
  kMul,
  kMulh,
  kDiv,
  kRem,
  kJr,
  kJalr,
  kSyscall,
  // I-type ALU
  kAddi,
  kAndi,
  kOri,
  kXori,
  kSlti,
  kSltiu,
  kLui,
  // memory
  kLw,
  kLb,
  kLbu,
  kLh,
  kLhu,
  kSw,
  kSb,
  kSh,
  // control
  kBeq,
  kBne,
  kBlt,
  kBge,
  kBltu,
  kBgeu,
  kJ,
  kJal,
  // RSE extension
  kChk,
};

/// Coarse class used by the pipeline to route an instruction to a
/// functional unit and by the RSE to recognize memory/control instructions.
enum class OpClass : u8 {
  kNop,      // architectural no-op (sll r0,r0,0)
  kIntAlu,   // single-cycle integer unit
  kIntMul,   // multiply/divide unit
  kLoad,     // load/store unit, reads memory
  kStore,    // load/store unit, writes memory
  kBranch,   // conditional branch
  kJump,     // unconditional jump / call / return
  kSyscall,  // serializing OS trap
  kChk,      // RSE CHECK instruction (NOP in the pipeline except at commit)
};

/// RSE module selector carried in the CHK module# field (section 3.3).
enum class ModuleId : u8 {
  kFramework = 0,  // enable/disable and framework-level controls
  kIcm = 1,
  kMlr = 2,
  kDdt = 3,
  kAhbm = 4,
  kCfc = 5,  // control-flow checker (extensibility demonstration)
};
inline constexpr unsigned kNumModuleIds = 6;

/// Fully decoded instruction.  The raw encoding is kept because the ICM
/// compares instruction binaries bit-for-bit.
struct Instr {
  Word raw = 0;
  Op op = Op::kInvalid;
  u8 rd = 0;
  u8 rs = 0;
  u8 rt = 0;
  u8 shamt = 0;
  i32 imm = 0;     // sign-extended I-type immediate
  u32 target = 0;  // J-type word target

  // CHK fields (valid when op == kChk)
  ModuleId chk_module = ModuleId::kFramework;
  bool chk_blocking = false;
  u8 chk_op = 0;     // module-specific operation selector (5 bits)
  u16 chk_imm = 0;   // config options (12 bits)

  OpClass op_class() const;

  /// Destination register written by this instruction, or nullopt.
  std::optional<u8> dest_reg() const;

  /// Source registers read (0, 1, or 2 entries; r0 reads are included).
  struct Sources {
    u8 count = 0;
    u8 regs[2] = {0, 0};
  };
  Sources source_regs() const;

  bool is_control() const {
    const OpClass c = op_class();
    return c == OpClass::kBranch || c == OpClass::kJump;
  }
  bool is_mem() const {
    const OpClass c = op_class();
    return c == OpClass::kLoad || c == OpClass::kStore;
  }
};

/// Decode a raw 32-bit word.  Returns op == kInvalid for unknown encodings
/// (which the pipeline turns into an illegal-instruction trap).
Instr decode(Word raw);

/// Encode a decoded instruction back to its raw form (used by the assembler
/// and by fault-injection tests).  Precondition: op != kInvalid.
Word encode(const Instr& instr);

/// Human-readable disassembly, e.g. "add r3, r1, r2".
std::string disassemble(const Instr& instr);

/// Canonical NOP encoding (sll r0, r0, 0).
inline constexpr Word kNopEncoding = 0;

}  // namespace rse::isa
