// A simple in-order functional interpreter for the guest ISA — the golden
// model used to differential-test the out-of-order core: both must retire
// the same architectural state for any program.  CHK instructions are
// architectural NOPs here; syscalls are delegated to a host callback.
#pragma once

#include <array>
#include <functional>

#include "common/types.hpp"
#include "isa/instruction.hpp"
#include "mem/main_memory.hpp"

namespace rse::isa {

class Interpreter {
 public:
  /// Syscall handler: reads/writes registers through the interpreter.
  /// Returns false to stop execution (e.g. sys_exit).
  using SyscallHandler = std::function<bool(Interpreter&)>;

  explicit Interpreter(mem::MainMemory& memory) : memory_(&memory) {}

  void set_pc(Addr pc) { pc_ = pc; }
  Addr pc() const { return pc_; }
  Word reg(u8 index) const { return regs_[index]; }
  void set_reg(u8 index, Word value) {
    if (index != 0) regs_[index] = value;
  }
  const std::array<Word, kNumRegs>& regs() const { return regs_; }

  void set_syscall_handler(SyscallHandler handler) { on_syscall_ = std::move(handler); }

  u64 instructions_executed() const { return executed_; }

  /// Why run() returned.
  enum class Stop {
    kHandlerStop,  ///< syscall handler asked to stop (normally sys_exit)
    kIllegal,      ///< undecodable instruction word
    kBudget,       ///< max_instructions exhausted — the program did NOT exit
  };

  /// Execute one instruction.  Returns false when execution should stop
  /// (sys_exit via the handler, or an illegal instruction).
  bool step();

  /// True when the last stopping step() hit an undecodable instruction.
  bool hit_illegal() const { return hit_illegal_; }

  /// Run until stop or the instruction budget is exhausted.  Callers must
  /// distinguish kBudget (a runaway/hung guest) from a clean handler stop.
  Stop run(u64 max_instructions = 10'000'000) {
    for (u64 i = 0; i < max_instructions; ++i) {
      if (!step()) return hit_illegal_ ? Stop::kIllegal : Stop::kHandlerStop;
    }
    return Stop::kBudget;
  }

 private:
  mem::MainMemory* memory_;
  std::array<Word, kNumRegs> regs_{};
  Addr pc_ = 0;
  u64 executed_ = 0;
  bool hit_illegal_ = false;
  SyscallHandler on_syscall_;
};

}  // namespace rse::isa
