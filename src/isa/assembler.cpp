#include "isa/assembler.hpp"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <optional>
#include <sstream>
#include <vector>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace rse::isa {
namespace {

struct Token {
  std::string text;
};

/// Split a statement into mnemonic + comma-separated operand strings.
struct Statement {
  std::string mnemonic;
  std::vector<std::string> operands;
};

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::optional<u8> parse_reg(const std::string& raw) {
  std::string t = lower(trim(raw));
  if (!t.empty() && t[0] == '$') t = t.substr(1);
  if (t.empty()) return std::nullopt;
  auto num = [&t](std::size_t from) -> std::optional<unsigned> {
    if (from >= t.size()) return std::nullopt;
    unsigned v = 0;
    for (std::size_t i = from; i < t.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(t[i]))) return std::nullopt;
      v = v * 10 + static_cast<unsigned>(t[i] - '0');
    }
    return v;
  };
  if (t[0] == 'r') {
    if (auto v = num(1); v && *v < kNumRegs) return static_cast<u8>(*v);
  }
  if (t == "zero") return 0;
  if (t == "at") return kAt;
  if (t == "gp") return kGp;
  if (t == "sp") return kSp;
  if (t == "fp") return kFp;
  if (t == "ra") return kRa;
  if (t[0] == 'v') {
    if (auto v = num(1); v && *v < 2) return static_cast<u8>(kV0 + *v);
  }
  if (t[0] == 'a') {
    if (auto v = num(1); v && *v < 4) return static_cast<u8>(kA0 + *v);
  }
  if (t[0] == 't') {
    if (auto v = num(1)) {
      if (*v < 8) return static_cast<u8>(kT0 + *v);
      if (*v == 8 || *v == 9) return static_cast<u8>(kT8 + (*v - 8));
    }
  }
  if (t[0] == 's') {
    if (auto v = num(1); v && *v < 8) return static_cast<u8>(kS0 + *v);
  }
  return std::nullopt;
}

std::optional<i64> parse_int(const std::string& raw) {
  std::string t = trim(raw);
  if (t.empty()) return std::nullopt;
  bool neg = false;
  std::size_t i = 0;
  if (t[0] == '-' || t[0] == '+') {
    neg = t[0] == '-';
    i = 1;
  }
  if (i >= t.size()) return std::nullopt;
  i64 value = 0;
  if (t.size() > i + 2 && t[i] == '0' && (t[i + 1] == 'x' || t[i + 1] == 'X')) {
    for (std::size_t k = i + 2; k < t.size(); ++k) {
      const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(t[k])));
      int digit;
      if (c >= '0' && c <= '9')
        digit = c - '0';
      else if (c >= 'a' && c <= 'f')
        digit = 10 + (c - 'a');
      else
        return std::nullopt;
      value = value * 16 + digit;
    }
  } else {
    for (std::size_t k = i; k < t.size(); ++k) {
      if (!std::isdigit(static_cast<unsigned char>(t[k]))) return std::nullopt;
      value = value * 10 + (t[k] - '0');
    }
  }
  return neg ? -value : value;
}

std::optional<ModuleId> parse_module(const std::string& raw) {
  const std::string t = lower(trim(raw));
  if (t == "frame" || t == "framework") return ModuleId::kFramework;
  if (t == "icm") return ModuleId::kIcm;
  if (t == "mlr") return ModuleId::kMlr;
  if (t == "ddt") return ModuleId::kDdt;
  if (t == "ahbm") return ModuleId::kAhbm;
  if (t == "cfc") return ModuleId::kCfc;
  if (auto v = parse_int(t); v && *v >= 0 && *v < 8) return static_cast<ModuleId>(*v);
  return std::nullopt;
}

bool is_label_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

/// Either a literal integer or a symbol reference with an optional addend
/// ("label", "label+8", "label-4"), resolved in pass 2.
struct Value {
  std::optional<i64> literal;
  std::string symbol;
  i64 addend = 0;
};

Value parse_value(const std::string& raw) {
  if (auto v = parse_int(raw)) return Value{v, {}, 0};
  std::string t = trim(raw);
  // split "sym+off" / "sym-off" at the first +/- after the symbol name
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (t[i] == '+' || t[i] == '-') {
      const std::string sym = trim(t.substr(0, i));
      const std::string off = trim(t.substr(t[i] == '+' ? i + 1 : i));
      if (auto v = parse_int(off)) return Value{std::nullopt, sym, *v};
      break;
    }
  }
  return Value{std::nullopt, t, 0};
}

// A single source line, pre-parsed.
struct Line {
  int number = 0;
  std::vector<std::string> labels;
  std::optional<Statement> stmt;
};

Statement parse_statement(const std::string& body) {
  Statement st;
  std::size_t i = 0;
  while (i < body.size() && !std::isspace(static_cast<unsigned char>(body[i]))) ++i;
  st.mnemonic = lower(body.substr(0, i));
  std::string rest = trim(body.substr(i));
  if (rest.empty()) return st;
  // split on commas, but keep "off(reg)" together (no commas inside parens anyway)
  std::string current;
  for (char c : rest) {
    if (c == ',') {
      st.operands.push_back(trim(current));
      current.clear();
    } else {
      current += c;
    }
  }
  st.operands.push_back(trim(current));
  return st;
}

struct Asm {
  const AssembleOptions& opts;
  Program prog;
  std::vector<Line> lines;

  explicit Asm(const AssembleOptions& o) : opts(o) {
    prog.text_base = o.text_base;
    prog.data_base = o.data_base;
  }

  [[noreturn]] void fail(int line, const std::string& msg) const {
    throw AssemblyError("assembly error at line " + std::to_string(line) + ": " + msg);
  }

  void tokenize(std::string_view source) {
    int number = 0;
    std::size_t pos = 0;
    while (pos <= source.size()) {
      const std::size_t nl = source.find('\n', pos);
      std::string raw(source.substr(pos, nl == std::string_view::npos ? nl : nl - pos));
      pos = nl == std::string_view::npos ? source.size() + 1 : nl + 1;
      ++number;
      // strip comments
      for (std::size_t i = 0; i < raw.size(); ++i) {
        if (raw[i] == '#' || raw[i] == ';') {
          raw.resize(i);
          break;
        }
      }
      std::string text = trim(raw);
      if (text.empty()) continue;
      Line line;
      line.number = number;
      // peel off leading labels
      while (true) {
        std::size_t i = 0;
        while (i < text.size() && is_label_char(text[i])) ++i;
        if (i > 0 && i < text.size() && text[i] == ':') {
          line.labels.push_back(text.substr(0, i));
          text = trim(text.substr(i + 1));
          if (text.empty()) break;
          continue;
        }
        break;
      }
      if (!text.empty()) line.stmt = parse_statement(text);
      if (!line.labels.empty() || line.stmt) lines.push_back(std::move(line));
    }
  }

  enum class Seg { kText, kData };

  /// Number of machine instructions a (pseudo-)instruction expands to.
  unsigned instr_size(const Statement& st, int line) const {
    const std::string& m = st.mnemonic;
    if (m == "la") return 2;
    if (m == "li") {
      if (st.operands.size() != 2) fail(line, "li needs 2 operands");
      auto v = parse_int(st.operands[1]);
      if (!v) fail(line, "li needs a literal immediate");
      return (*v >= -32768 && *v <= 32767) ? 1 : 2;
    }
    if (m == "lw" || m == "sw" || m == "lb" || m == "sb" || m == "lh" || m == "sh" ||
        m == "lbu" || m == "lhu") {
      // "lw rt, label" pseudo-form takes 2 instructions
      if (st.operands.size() == 2 && st.operands[1].find('(') == std::string::npos &&
          !parse_int(st.operands[1])) {
        return 2;
      }
      return 1;
    }
    return 1;
  }

  void pass1() {
    Seg seg = Seg::kText;
    Addr text_pc = prog.text_base;
    Addr data_pc = prog.data_base;
    for (const Line& line : lines) {
      Addr& pc = seg == Seg::kText ? text_pc : data_pc;
      for (const std::string& label : line.labels) {
        if (prog.symbols.count(label)) fail(line.number, "duplicate label '" + label + "'");
        prog.symbols[label] = pc;
      }
      if (!line.stmt) continue;
      const Statement& st = *line.stmt;
      const std::string& m = st.mnemonic;
      if (m == ".text") {
        seg = Seg::kText;
      } else if (m == ".data") {
        seg = Seg::kData;
      } else if (m == ".entry" || m == ".globl") {
        // sized zero
      } else if (m == ".align") {
        auto v = parse_int(st.operands.empty() ? "" : st.operands[0]);
        if (!v || *v < 0 || *v > 12) fail(line.number, "bad .align");
        data_pc = align_up(data_pc, 1u << *v);
      } else if (m == ".word") {
        if (seg != Seg::kData) fail(line.number, ".word outside .data");
        data_pc = align_up(data_pc, 4);
        // Re-record labels on this line at the aligned address.
        for (const std::string& label : line.labels) prog.symbols[label] = data_pc;
        data_pc += static_cast<Addr>(4 * st.operands.size());
      } else if (m == ".byte") {
        if (seg != Seg::kData) fail(line.number, ".byte outside .data");
        data_pc += static_cast<Addr>(st.operands.size());
      } else if (m == ".space") {
        if (seg != Seg::kData) fail(line.number, ".space outside .data");
        auto v = parse_int(st.operands.empty() ? "" : st.operands[0]);
        if (!v || *v < 0) fail(line.number, "bad .space");
        data_pc += static_cast<Addr>(*v);
      } else if (!m.empty() && m[0] == '.') {
        fail(line.number, "unknown directive '" + m + "'");
      } else {
        if (seg != Seg::kText) fail(line.number, "instruction outside .text");
        pc += 4 * instr_size(st, line.number);
      }
    }
  }

  Addr resolve(const Value& v, int line) const {
    if (v.literal) return static_cast<Addr>(*v.literal);
    auto it = prog.symbols.find(v.symbol);
    if (it == prog.symbols.end()) fail(line, "undefined symbol '" + v.symbol + "'");
    return it->second + static_cast<Addr>(v.addend);
  }

  u8 reg_operand(const Statement& st, std::size_t i, int line) const {
    if (i >= st.operands.size()) fail(line, "missing register operand");
    auto r = parse_reg(st.operands[i]);
    if (!r) fail(line, "bad register '" + st.operands[i] + "'");
    return *r;
  }

  i64 int_operand(const Statement& st, std::size_t i, int line) const {
    if (i >= st.operands.size()) fail(line, "missing operand");
    auto v = parse_int(st.operands[i]);
    if (!v) fail(line, "bad integer '" + st.operands[i] + "'");
    return *v;
  }

  void emit(Instr in) { prog.text.push_back(encode(in)); }

  void emit_i(Op op, u8 rt, u8 rs, i64 imm, int line) {
    if (imm < -32768 || imm > 65535) fail(line, "immediate out of range");
    Instr in;
    in.op = op;
    in.rt = rt;
    in.rs = rs;
    in.imm = static_cast<i32>(sign_extend(static_cast<u32>(imm) & 0xFFFFu, 16));
    emit(in);
  }

  void emit_r(Op op, u8 rd, u8 rs, u8 rt) {
    Instr in;
    in.op = op;
    in.rd = rd;
    in.rs = rs;
    in.rt = rt;
    emit(in);
  }

  void emit_load_addr(u8 rt, Addr addr) {
    // lui rt, hi; ori rt, rt, lo
    Instr lui;
    lui.op = Op::kLui;
    lui.rt = rt;
    lui.imm = static_cast<i32>(sign_extend((addr >> 16) & 0xFFFFu, 16));
    emit(lui);
    Instr ori;
    ori.op = Op::kOri;
    ori.rt = rt;
    ori.rs = rt;
    ori.imm = static_cast<i32>(sign_extend(addr & 0xFFFFu, 16));
    emit(ori);
  }

  /// Parse "off(reg)" or "(reg)" memory operand.
  struct MemOperand {
    u8 base;
    i64 offset;
  };
  std::optional<MemOperand> parse_mem(const std::string& raw) const {
    const std::size_t open = raw.find('(');
    const std::size_t close = raw.rfind(')');
    if (open == std::string::npos || close == std::string::npos || close < open) {
      return std::nullopt;
    }
    const std::string off = trim(raw.substr(0, open));
    const std::string base = raw.substr(open + 1, close - open - 1);
    auto r = parse_reg(base);
    if (!r) return std::nullopt;
    i64 offset = 0;
    if (!off.empty()) {
      auto v = parse_int(off);
      if (!v) return std::nullopt;
      offset = *v;
    }
    return MemOperand{*r, offset};
  }

  void assemble_mem(Op op, const Statement& st, Addr, int line) {
    const u8 rt = reg_operand(st, 0, line);
    if (st.operands.size() != 2) fail(line, "memory op needs 2 operands");
    if (auto mem = parse_mem(st.operands[1])) {
      emit_i(op, rt, mem->base, mem->offset, line);
      return;
    }
    if (auto v = parse_int(st.operands[1])) {
      emit_i(op, rt, 0, *v, line);  // absolute small address
      return;
    }
    // label form: lui at, hi(label); op rt, lo(label)(at)
    const Addr addr = resolve(parse_value(st.operands[1]), line);
    Instr lui;
    lui.op = Op::kLui;
    lui.rt = kAt;
    lui.imm = static_cast<i32>(sign_extend((addr >> 16) & 0xFFFFu, 16));
    // adjust hi if low part is "negative" as a signed 16-bit offset
    const i32 lo = sign_extend(addr & 0xFFFFu, 16);
    if (lo < 0) lui.imm = static_cast<i32>(sign_extend(((addr >> 16) + 1) & 0xFFFFu, 16));
    emit(lui);
    emit_i(op, rt, kAt, lo, line);
  }

  void assemble_branch(Op op, const Statement& st, Addr pc, int line) {
    if (st.operands.size() != 3) fail(line, "branch needs 3 operands");
    const u8 rs = reg_operand(st, 0, line);
    const u8 rt = reg_operand(st, 1, line);
    const Addr target = resolve(parse_value(st.operands[2]), line);
    const i64 diff = (static_cast<i64>(target) - static_cast<i64>(pc) - 4) / 4;
    if (diff < -32768 || diff > 32767) fail(line, "branch target out of range");
    Instr in;
    in.op = op;
    in.rs = rs;
    in.rt = rt;
    in.imm = static_cast<i32>(diff);
    emit(in);
  }

  void assemble_instr(const Statement& st, Addr pc, int line) {
    const std::string& m = st.mnemonic;
    auto simple_r3 = [&](Op op) {
      emit_r(op, reg_operand(st, 0, line), reg_operand(st, 1, line), reg_operand(st, 2, line));
    };
    auto simple_i = [&](Op op) {
      emit_i(op, reg_operand(st, 0, line), reg_operand(st, 1, line), int_operand(st, 2, line),
             line);
    };

    if (m == "nop") {
      prog.text.push_back(kNopEncoding);
    } else if (m == "add") simple_r3(Op::kAdd);
    else if (m == "sub") simple_r3(Op::kSub);
    else if (m == "and") simple_r3(Op::kAnd);
    else if (m == "or") simple_r3(Op::kOr);
    else if (m == "xor") simple_r3(Op::kXor);
    else if (m == "nor") simple_r3(Op::kNor);
    else if (m == "slt") simple_r3(Op::kSlt);
    else if (m == "sltu") simple_r3(Op::kSltu);
    else if (m == "mul") simple_r3(Op::kMul);
    else if (m == "mulh") simple_r3(Op::kMulh);
    else if (m == "div") simple_r3(Op::kDiv);
    else if (m == "rem") simple_r3(Op::kRem);
    else if (m == "sllv") simple_r3(Op::kSllv);
    else if (m == "srlv") simple_r3(Op::kSrlv);
    else if (m == "srav") simple_r3(Op::kSrav);
    else if (m == "sll" || m == "srl" || m == "sra") {
      Instr in;
      in.op = m == "sll" ? Op::kSll : m == "srl" ? Op::kSrl : Op::kSra;
      in.rd = reg_operand(st, 0, line);
      in.rt = reg_operand(st, 1, line);
      const i64 sh = int_operand(st, 2, line);
      if (sh < 0 || sh > 31) fail(line, "shift amount out of range");
      in.shamt = static_cast<u8>(sh);
      emit(in);
    } else if (m == "addi") simple_i(Op::kAddi);
    else if (m == "andi") simple_i(Op::kAndi);
    else if (m == "ori") simple_i(Op::kOri);
    else if (m == "xori") simple_i(Op::kXori);
    else if (m == "slti") simple_i(Op::kSlti);
    else if (m == "sltiu") simple_i(Op::kSltiu);
    else if (m == "lui") {
      Instr in;
      in.op = Op::kLui;
      in.rt = reg_operand(st, 0, line);
      in.imm = static_cast<i32>(sign_extend(static_cast<u32>(int_operand(st, 1, line)) & 0xFFFFu, 16));
      emit(in);
    } else if (m == "lw") assemble_mem(Op::kLw, st, pc, line);
    else if (m == "lb") assemble_mem(Op::kLb, st, pc, line);
    else if (m == "lbu") assemble_mem(Op::kLbu, st, pc, line);
    else if (m == "lh") assemble_mem(Op::kLh, st, pc, line);
    else if (m == "lhu") assemble_mem(Op::kLhu, st, pc, line);
    else if (m == "sw") assemble_mem(Op::kSw, st, pc, line);
    else if (m == "sb") assemble_mem(Op::kSb, st, pc, line);
    else if (m == "sh") assemble_mem(Op::kSh, st, pc, line);
    else if (m == "beq") assemble_branch(Op::kBeq, st, pc, line);
    else if (m == "bne") assemble_branch(Op::kBne, st, pc, line);
    else if (m == "blt") assemble_branch(Op::kBlt, st, pc, line);
    else if (m == "bge") assemble_branch(Op::kBge, st, pc, line);
    else if (m == "bltu") assemble_branch(Op::kBltu, st, pc, line);
    else if (m == "bgeu") assemble_branch(Op::kBgeu, st, pc, line);
    else if (m == "beqz" || m == "bnez") {
      if (st.operands.size() != 2) fail(line, m + " needs 2 operands");
      Statement expanded;
      expanded.mnemonic = m == "beqz" ? "beq" : "bne";
      expanded.operands = {st.operands[0], "r0", st.operands[1]};
      assemble_branch(expanded.mnemonic == "beq" ? Op::kBeq : Op::kBne, expanded, pc, line);
    } else if (m == "b") {
      if (st.operands.size() != 1) fail(line, "b needs 1 operand");
      Statement expanded;
      expanded.operands = {"r0", "r0", st.operands[0]};
      assemble_branch(Op::kBeq, expanded, pc, line);
    } else if (m == "j" || m == "jal") {
      if (st.operands.size() != 1) fail(line, "jump needs 1 operand");
      const Addr target = resolve(parse_value(st.operands[0]), line);
      if (target % 4 != 0) fail(line, "misaligned jump target");
      Instr in;
      in.op = m == "j" ? Op::kJ : Op::kJal;
      in.target = (target >> 2) & 0x03FF'FFFFu;
      emit(in);
    } else if (m == "jr") {
      Instr in;
      in.op = Op::kJr;
      in.rs = reg_operand(st, 0, line);
      emit(in);
    } else if (m == "jalr") {
      Instr in;
      in.op = Op::kJalr;
      if (st.operands.size() == 1) {
        in.rd = kRa;
        in.rs = reg_operand(st, 0, line);
      } else {
        in.rd = reg_operand(st, 0, line);
        in.rs = reg_operand(st, 1, line);
      }
      emit(in);
    } else if (m == "syscall") {
      Instr in;
      in.op = Op::kSyscall;
      emit(in);
    } else if (m == "chk") {
      if (st.operands.size() != 5) fail(line, "chk needs 5 operands: module, op, blk|nblk, reg, imm");
      Instr in;
      in.op = Op::kChk;
      auto mod = parse_module(st.operands[0]);
      if (!mod) fail(line, "bad module '" + st.operands[0] + "'");
      in.chk_module = *mod;
      const i64 opn = int_operand(st, 1, line);
      if (opn < 0 || opn > 31) fail(line, "chk op out of range");
      in.chk_op = static_cast<u8>(opn);
      const std::string blk = lower(trim(st.operands[2]));
      if (blk == "blk") in.chk_blocking = true;
      else if (blk == "nblk") in.chk_blocking = false;
      else fail(line, "expected blk or nblk");
      in.rs = reg_operand(st, 3, line);
      const i64 imm = int_operand(st, 4, line);
      if (imm < 0 || imm > 0xFFF) fail(line, "chk imm out of range");
      in.chk_imm = static_cast<u16>(imm);
      emit(in);
    } else if (m == "li") {
      const u8 rt = reg_operand(st, 0, line);
      const i64 v = int_operand(st, 1, line);
      if (v >= -32768 && v <= 32767) {
        emit_i(Op::kAddi, rt, 0, v, line);
      } else {
        emit_load_addr(rt, static_cast<Addr>(static_cast<u32>(v)));
      }
    } else if (m == "la") {
      const u8 rt = reg_operand(st, 0, line);
      if (st.operands.size() != 2) fail(line, "la needs 2 operands");
      const Addr addr = resolve(parse_value(st.operands[1]), line);
      emit_load_addr(rt, addr);
    } else if (m == "move") {
      emit_r(Op::kAdd, reg_operand(st, 0, line), reg_operand(st, 1, line), 0);
    } else {
      fail(line, "unknown mnemonic '" + m + "'");
    }
  }

  void pass2() {
    Addr data_pc = prog.data_base;
    auto data_put = [&](Addr addr, u8 byte) {
      const std::size_t index = addr - prog.data_base;
      if (index >= prog.data.size()) prog.data.resize(index + 1, 0);
      prog.data[index] = byte;
    };
    for (const Line& line : lines) {
      if (!line.stmt) continue;
      const Statement& st = *line.stmt;
      const std::string& m = st.mnemonic;
      if (m == ".text" || m == ".data") {
        // segment validity was established in pass 1
      } else if (m == ".globl") {
        // no-op
      } else if (m == ".entry") {
        if (st.operands.size() != 1) fail(line.number, ".entry needs a label");
        prog.entry = resolve(parse_value(st.operands[0]), line.number);
      } else if (m == ".align") {
        data_pc = align_up(data_pc, 1u << int_operand(st, 0, line.number));
      } else if (m == ".word") {
        data_pc = align_up(data_pc, 4);
        for (const std::string& operand : st.operands) {
          const Addr v = resolve(parse_value(operand), line.number);
          for (int b = 0; b < 4; ++b) data_put(data_pc + b, static_cast<u8>((v >> (8 * b)) & 0xFF));
          data_pc += 4;
        }
      } else if (m == ".byte") {
        for (const std::string& operand : st.operands) {
          const i64 v = int_operand({.mnemonic = m, .operands = {operand}}, 0, line.number);
          data_put(data_pc, static_cast<u8>(v & 0xFF));
          ++data_pc;
        }
      } else if (m == ".space") {
        const i64 n = int_operand(st, 0, line.number);
        for (i64 i = 0; i < n; ++i) data_put(data_pc + static_cast<Addr>(i), 0);
        data_pc += static_cast<Addr>(n);
      } else {
        const Addr pc = prog.text_base + static_cast<Addr>(prog.text.size() * 4);
        const std::size_t before = prog.text.size();
        assemble_instr(st, pc, line.number);
        const unsigned expected = instr_size(st, line.number);
        if (prog.text.size() - before != expected) {
          fail(line.number, "internal: pass1/pass2 size mismatch");
        }
      }
    }
    if (prog.entry == prog.text_base) {
      auto it = prog.symbols.find("main");
      if (it != prog.symbols.end()) prog.entry = it->second;
    }
  }
};

}  // namespace

Addr Program::symbol(const std::string& name) const {
  auto it = symbols.find(name);
  if (it == symbols.end()) throw AssemblyError("undefined symbol '" + name + "'");
  return it->second;
}

Word Program::text_word(Addr addr) const {
  if (addr < text_base || addr >= text_end() || addr % 4 != 0) {
    throw AssemblyError("text address out of range");
  }
  return text[(addr - text_base) / 4];
}

Program assemble(std::string_view source, const AssembleOptions& options) {
  Asm a(options);
  a.tokenize(source);
  a.pass1();
  a.pass2();
  return std::move(a.prog);
}

}  // namespace rse::isa
