// Two-pass assembler for the guest ISA.
//
// Supported syntax (one statement per line, '#' or ';' comments):
//   label:
//   .text | .data            switch current segment
//   .align N                 align to 2^N bytes (data segment)
//   .word v, v, ...          32-bit values or label references
//   .byte v, v, ...
//   .space N                 N zero bytes
//   .entry label             program entry point (default: 'main', else text start)
//   <mnemonic> operands      machine instructions and pseudo-instructions
//
// Pseudo-instructions: li, la, move, b, beqz, bnez, nop, and the
// label-addressed memory forms "lw rt, label" / "sw rt, label" (expand via
// the assembler temporary register $at).
//
// CHK syntax:  chk <module>, <op#>, blk|nblk, <reg>, <imm12>
// where <module> is one of frame|icm|mlr|ddt|ahbm or a number 0..7.
#pragma once

#include <string>
#include <string_view>

#include "isa/program.hpp"

namespace rse::isa {

struct AssembleOptions {
  Addr text_base = kDefaultTextBase;
  Addr data_base = kDefaultDataBase;
};

/// Assemble `source`; throws AssemblyError with line information on failure.
Program assemble(std::string_view source, const AssembleOptions& options = {});

}  // namespace rse::isa
