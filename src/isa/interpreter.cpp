#include "isa/interpreter.hpp"

#include "common/bits.hpp"

namespace rse::isa {

bool Interpreter::step() {
  const Word raw = memory_->read_u32(pc_);
  const Instr in = decode(raw);
  Addr next = pc_ + 4;
  const Word rs = regs_[in.rs];
  const Word rt = regs_[in.rt];
  const u32 uimm = static_cast<u32>(in.imm) & 0xFFFFu;
  auto wr = [this](u8 reg, Word value) {
    if (reg != 0) regs_[reg] = value;
  };

  hit_illegal_ = false;
  switch (in.op) {
    case Op::kInvalid:
      hit_illegal_ = true;
      return false;
    case Op::kSll: wr(in.rd, rt << in.shamt); break;
    case Op::kSrl: wr(in.rd, rt >> in.shamt); break;
    case Op::kSra: wr(in.rd, static_cast<Word>(static_cast<i32>(rt) >> in.shamt)); break;
    case Op::kSllv: wr(in.rd, rt << (rs & 31)); break;
    case Op::kSrlv: wr(in.rd, rt >> (rs & 31)); break;
    case Op::kSrav: wr(in.rd, static_cast<Word>(static_cast<i32>(rt) >> (rs & 31))); break;
    case Op::kAdd: wr(in.rd, rs + rt); break;
    case Op::kSub: wr(in.rd, rs - rt); break;
    case Op::kAnd: wr(in.rd, rs & rt); break;
    case Op::kOr: wr(in.rd, rs | rt); break;
    case Op::kXor: wr(in.rd, rs ^ rt); break;
    case Op::kNor: wr(in.rd, ~(rs | rt)); break;
    case Op::kSlt: wr(in.rd, static_cast<i32>(rs) < static_cast<i32>(rt) ? 1 : 0); break;
    case Op::kSltu: wr(in.rd, rs < rt ? 1 : 0); break;
    case Op::kMul: wr(in.rd, rs * rt); break;
    case Op::kMulh:
      wr(in.rd, static_cast<Word>((static_cast<i64>(static_cast<i32>(rs)) *
                                   static_cast<i64>(static_cast<i32>(rt))) >>
                                  32));
      break;
    case Op::kDiv:
      wr(in.rd, rt == 0 ? 0 : static_cast<Word>(static_cast<i32>(rs) / static_cast<i32>(rt)));
      break;
    case Op::kRem:
      wr(in.rd, rt == 0 ? 0 : static_cast<Word>(static_cast<i32>(rs) % static_cast<i32>(rt)));
      break;
    case Op::kAddi: wr(in.rt, rs + static_cast<Word>(in.imm)); break;
    case Op::kAndi: wr(in.rt, rs & uimm); break;
    case Op::kOri: wr(in.rt, rs | uimm); break;
    case Op::kXori: wr(in.rt, rs ^ uimm); break;
    case Op::kSlti: wr(in.rt, static_cast<i32>(rs) < in.imm ? 1 : 0); break;
    case Op::kSltiu: wr(in.rt, rs < static_cast<Word>(in.imm) ? 1 : 0); break;
    case Op::kLui: wr(in.rt, uimm << 16); break;
    case Op::kLw: wr(in.rt, memory_->read_u32((rs + static_cast<Word>(in.imm)) & ~3u)); break;
    case Op::kLh:
      wr(in.rt, static_cast<Word>(sign_extend(
                    memory_->read_u16((rs + static_cast<Word>(in.imm)) & ~1u), 16)));
      break;
    case Op::kLhu: wr(in.rt, memory_->read_u16((rs + static_cast<Word>(in.imm)) & ~1u)); break;
    case Op::kLb:
      wr(in.rt,
         static_cast<Word>(sign_extend(memory_->read_u8(rs + static_cast<Word>(in.imm)), 8)));
      break;
    case Op::kLbu: wr(in.rt, memory_->read_u8(rs + static_cast<Word>(in.imm))); break;
    case Op::kSw: memory_->write_u32((rs + static_cast<Word>(in.imm)) & ~3u, rt); break;
    case Op::kSh:
      memory_->write_u16((rs + static_cast<Word>(in.imm)) & ~1u, static_cast<u16>(rt));
      break;
    case Op::kSb: memory_->write_u8(rs + static_cast<Word>(in.imm), static_cast<u8>(rt)); break;
    case Op::kBeq:
      if (rs == rt) next = pc_ + 4 + (static_cast<Word>(in.imm) << 2);
      break;
    case Op::kBne:
      if (rs != rt) next = pc_ + 4 + (static_cast<Word>(in.imm) << 2);
      break;
    case Op::kBlt:
      if (static_cast<i32>(rs) < static_cast<i32>(rt)) {
        next = pc_ + 4 + (static_cast<Word>(in.imm) << 2);
      }
      break;
    case Op::kBge:
      if (static_cast<i32>(rs) >= static_cast<i32>(rt)) {
        next = pc_ + 4 + (static_cast<Word>(in.imm) << 2);
      }
      break;
    case Op::kBltu:
      if (rs < rt) next = pc_ + 4 + (static_cast<Word>(in.imm) << 2);
      break;
    case Op::kBgeu:
      if (rs >= rt) next = pc_ + 4 + (static_cast<Word>(in.imm) << 2);
      break;
    case Op::kJ: next = in.target << 2; break;
    case Op::kJal:
      wr(kRa, pc_ + 4);
      next = in.target << 2;
      break;
    case Op::kJr: next = rs; break;
    case Op::kJalr:
      wr(in.rd, pc_ + 4);
      next = rs;
      break;
    case Op::kChk:
      break;  // architectural NOP in the golden model
    case Op::kSyscall: {
      ++executed_;
      pc_ = next;
      return on_syscall_ ? on_syscall_(*this) : false;
    }
  }
  ++executed_;
  regs_[0] = 0;
  pc_ = next;
  return true;
}

}  // namespace rse::isa
