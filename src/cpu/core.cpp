#include "cpu/core.hpp"

#include <cassert>

#include "common/bits.hpp"

namespace rse::cpu {

using isa::Instr;
using isa::Op;
using isa::OpClass;

Core::Core(const CoreConfig& config, mem::MainMemory& memory, mem::Cache& il1, mem::Cache& dl1)
    : config_(config),
      memory_(&memory),
      il1_(&il1),
      dl1_(&dl1),
      predictor_(config.predictor),
      fetch_buffer_(config.fetch_buffer_size),
      ruu_(config.ruu_size) {
  reg_producer_seq_.fill(0);
}

void Core::set_context(const ThreadContext& context, ThreadId thread) {
  assert(ruu_count_ == 0 && "context switch requires a drained pipeline");
  regs_ = context.regs;
  regs_[0] = 0;
  pc_ = context.pc;
  thread_ = thread;
  fetch_pc_ = context.pc;
  fetch_buffer_.clear();
  wrong_path_mode_ = false;
  serialize_active_ = false;
  draining_ = false;
  reg_producer_seq_.fill(0);
}

ThreadContext Core::context() const {
  ThreadContext ctx;
  ctx.regs = regs_;
  ctx.pc = pc_;
  return ctx;
}

void Core::halt(Cycle now) {
  flush_all(now, pc_);
  running_ = false;
  draining_ = false;
}

std::vector<std::pair<Addr, u32>> Core::inflight_ranges() const {
  std::vector<std::pair<Addr, u32>> ranges;
  ranges.reserve(fetch_buffer_.size() + ruu_count_);
  for (std::size_t i = 0; i < fetch_buffer_.size(); ++i) {
    ranges.emplace_back(fetch_buffer_.at(i).pc, 4u);
  }
  for (u32 offset = 0; offset < ruu_count_; ++offset) {
    const RuuEntry& entry = ruu_[(ruu_head_ + offset) % config_.ruu_size];
    if (!entry.valid) continue;
    ranges.emplace_back(entry.pc, 4u);
    if (entry.is_store && !entry.wrong_path && entry.mem_size != 0) {
      ranges.emplace_back(entry.eff_addr, static_cast<u32>(entry.mem_size));
    }
  }
  return ranges;
}

void Core::cycle(Cycle now) {
  if (!running_) return;
  ++stats_.run_cycles;
  stage_commit(now);
  if (!running_) return;  // a trap/syscall suspended the core mid-cycle
  stage_writeback(now);
  stage_issue(now);
  stage_dispatch(now);
  stage_fetch(now);
  if (draining_ && ruu_count_ == 0) {
    draining_ = false;
    running_ = false;
  }
}

// ---------------------------------------------------------------- functional

Word Core::read_mem_through_stores(Addr addr, u32 size, u32 upto_offset) const {
  // Byte-wise resolution through the in-flight (dispatched, uncommitted)
  // stores older than the load at RUU offset `upto_offset`.
  Word value = 0;
  for (u32 byte = 0; byte < size; ++byte) {
    const Addr a = addr + byte;
    u8 b = 0;
    bool found = false;
    for (u32 off = upto_offset; off-- > 0;) {
      const RuuEntry& e = ruu_[(ruu_head_ + off) % config_.ruu_size];
      if (!e.valid || !e.is_store || e.wrong_path) continue;
      if (a >= e.eff_addr && a < e.eff_addr + e.mem_size) {
        b = static_cast<u8>((e.mem_value >> (8 * (a - e.eff_addr))) & 0xFF);
        found = true;
        break;
      }
    }
    if (!found) b = memory_->read_u8(a);
    value |= static_cast<Word>(b) << (8 * byte);
  }
  return value;
}

void Core::write_reg_with_undo(RuuEntry& entry, u8 reg, Word value) {
  if (reg == 0) return;
  entry.has_dest = true;
  entry.dest_reg = reg;
  entry.old_dest_value = regs_[reg];
  regs_[reg] = value;
  entry.result = value;
}

void Core::exec_functional(RuuEntry& e, const FetchedInstr& f) {
  const Instr& in = e.instr;
  const Addr pc = e.pc;
  Addr next_pc = pc + 4;
  const Word rs = regs_[in.rs];
  const Word rt = regs_[in.rt];
  const u32 uimm = static_cast<u32>(in.imm) & 0xFFFFu;

  switch (in.op) {
    case Op::kSll: write_reg_with_undo(e, in.rd, rt << in.shamt); break;
    case Op::kSrl: write_reg_with_undo(e, in.rd, rt >> in.shamt); break;
    case Op::kSra:
      write_reg_with_undo(e, in.rd, static_cast<Word>(static_cast<i32>(rt) >> in.shamt));
      break;
    case Op::kSllv: write_reg_with_undo(e, in.rd, rt << (rs & 31)); break;
    case Op::kSrlv: write_reg_with_undo(e, in.rd, rt >> (rs & 31)); break;
    case Op::kSrav:
      write_reg_with_undo(e, in.rd, static_cast<Word>(static_cast<i32>(rt) >> (rs & 31)));
      break;
    case Op::kAdd: write_reg_with_undo(e, in.rd, rs + rt); break;
    case Op::kSub: write_reg_with_undo(e, in.rd, rs - rt); break;
    case Op::kAnd: write_reg_with_undo(e, in.rd, rs & rt); break;
    case Op::kOr: write_reg_with_undo(e, in.rd, rs | rt); break;
    case Op::kXor: write_reg_with_undo(e, in.rd, rs ^ rt); break;
    case Op::kNor: write_reg_with_undo(e, in.rd, ~(rs | rt)); break;
    case Op::kSlt:
      write_reg_with_undo(e, in.rd, static_cast<i32>(rs) < static_cast<i32>(rt) ? 1 : 0);
      break;
    case Op::kSltu: write_reg_with_undo(e, in.rd, rs < rt ? 1 : 0); break;
    case Op::kMul: write_reg_with_undo(e, in.rd, rs * rt); break;
    case Op::kMulh:
      write_reg_with_undo(
          e, in.rd,
          static_cast<Word>((static_cast<i64>(static_cast<i32>(rs)) *
                             static_cast<i64>(static_cast<i32>(rt))) >>
                            32));
      break;
    case Op::kDiv:
      write_reg_with_undo(e, in.rd,
                          rt == 0 ? 0
                                  : static_cast<Word>(static_cast<i32>(rs) /
                                                      static_cast<i32>(rt)));
      break;
    case Op::kRem:
      write_reg_with_undo(e, in.rd,
                          rt == 0 ? 0
                                  : static_cast<Word>(static_cast<i32>(rs) %
                                                      static_cast<i32>(rt)));
      break;
    case Op::kAddi: write_reg_with_undo(e, in.rt, rs + static_cast<Word>(in.imm)); break;
    case Op::kAndi: write_reg_with_undo(e, in.rt, rs & uimm); break;
    case Op::kOri: write_reg_with_undo(e, in.rt, rs | uimm); break;
    case Op::kXori: write_reg_with_undo(e, in.rt, rs ^ uimm); break;
    case Op::kSlti:
      write_reg_with_undo(e, in.rt, static_cast<i32>(rs) < in.imm ? 1 : 0);
      break;
    case Op::kSltiu:
      write_reg_with_undo(e, in.rt, rs < static_cast<Word>(in.imm) ? 1 : 0);
      break;
    case Op::kLui: write_reg_with_undo(e, in.rt, uimm << 16); break;
    case Op::kLw:
    case Op::kLh:
    case Op::kLhu:
    case Op::kLb:
    case Op::kLbu: {
      const u32 size = (in.op == Op::kLw) ? 4 : (in.op == Op::kLb || in.op == Op::kLbu) ? 1 : 2;
      // Misaligned accesses are truncated to alignment (documented model
      // simplification; guest code keeps data aligned).
      const Addr addr = (rs + static_cast<Word>(in.imm)) & ~(size - 1);
      e.eff_addr = addr;
      e.mem_size = static_cast<u8>(size);
      e.is_mem = true;
      Word raw = read_mem_through_stores(addr, size, ruu_count_);
      Word value = raw;
      if (in.op == Op::kLb) value = static_cast<Word>(sign_extend(raw & 0xFF, 8));
      if (in.op == Op::kLh) value = static_cast<Word>(sign_extend(raw & 0xFFFF, 16));
      e.mem_value = value;
      write_reg_with_undo(e, in.rt, value);
      break;
    }
    case Op::kSw:
    case Op::kSh:
    case Op::kSb: {
      const u32 size = in.op == Op::kSw ? 4 : in.op == Op::kSh ? 2 : 1;
      const Addr addr = (rs + static_cast<Word>(in.imm)) & ~(size - 1);
      e.eff_addr = addr;
      e.mem_size = static_cast<u8>(size);
      e.mem_value = rt;
      e.is_mem = true;
      e.is_store = true;
      break;
    }
    case Op::kBeq: e.taken = rs == rt; break;
    case Op::kBne: e.taken = rs != rt; break;
    case Op::kBlt: e.taken = static_cast<i32>(rs) < static_cast<i32>(rt); break;
    case Op::kBge: e.taken = static_cast<i32>(rs) >= static_cast<i32>(rt); break;
    case Op::kBltu: e.taken = rs < rt; break;
    case Op::kBgeu: e.taken = rs >= rt; break;
    case Op::kJ: next_pc = in.target << 2; break;
    case Op::kJal:
      write_reg_with_undo(e, isa::kRa, pc + 4);
      next_pc = in.target << 2;
      break;
    case Op::kJr: next_pc = rs; break;
    case Op::kJalr:
      write_reg_with_undo(e, in.rd, pc + 4);
      next_pc = rs;
      break;
    case Op::kChk:
    case Op::kSyscall:
    case Op::kInvalid:
      break;  // no functional effect at dispatch
  }

  if (e.instr.op_class() == OpClass::kBranch) {
    next_pc = e.taken ? pc + 4 + (static_cast<Word>(e.instr.imm) << 2) : pc + 4;
  }
  if (branch_fault_ && e.instr.is_control()) next_pc = branch_fault_(pc, next_pc);
  e.recover_pc = next_pc;
  e.mispredicted = next_pc != f.predicted_next;
  pc_ = next_pc;
  regs_[0] = 0;
  // Syscalls/traps have their architectural effect at commit, not here; every
  // other instruction (CHK included) has now executed functionally, advancing
  // the position the fast-forward controller aligns against.
  if (in.op != Op::kSyscall && in.op != Op::kInvalid) ++functional_pos_;
}

// ------------------------------------------------------------------- commit

void Core::stage_commit(Cycle now) {
  if (now < commit_stall_until_) return;
  u32 committed = 0;
  while (committed < config_.commit_width && ruu_count_ > 0) {
    RuuEntry& e = ruu_[ruu_head_];
    assert(e.valid);
    if (!e.completed) break;
    assert(!e.wrong_path && "wrong-path instruction reached commit");

    if (fw_) {
      const engine::Ioq::CheckBits bits = fw_->check_bits(ruu_head_);
      const bool is_chk = e.instr.op == Op::kChk;
      if (is_chk && e.instr.chk_blocking && !bits.check_valid) {
        ++stats_.chk_commit_stall_cycles;
        break;  // blocking CHECK still executing in its module
      }
      if (bits.check_valid && bits.check) {
        // A module detected an error (Table 1 row 4): flush and retry from
        // the CHECK, or hand the thread to the OS.
        ++stats_.check_error_flushes;
        fw_->on_check_error(ruu_head_, now);
        const Addr fault_pc = e.pc;
        const isa::ModuleId module =
            is_chk ? e.instr.chk_module : isa::ModuleId::kFramework;
        const bool retry = os_ ? os_->on_check_error(now, fault_pc, module) : true;
        flush_all(now, fault_pc);
        if (!retry) running_ = false;
        return;
      }
    }

    if (commit_trace_) commit_trace_(now, e.pc, e.instr, thread_);
    if (commit_record_) {
      commit_record_(CommitRecord{e.pc, e.raw, e.is_mem, e.is_store, e.eff_addr, e.mem_value});
    }
    const OpClass cls = e.instr.op_class();
    if (cls == OpClass::kSyscall || e.instr.op == Op::kInvalid) {
      serialize_active_ = false;
      const bool is_invalid = e.instr.op == Op::kInvalid;
      engine::CommitInfo ci{engine::InstrTag{ruu_head_, e.seq}, e.pc, e.instr, thread_, 0, 0};
      if (fw_) fw_->on_commit(ci, now);
      // Free the entry before invoking the OS so the handler sees a drained
      // pipeline (it may switch contexts).
      free_head_entry(e);
      ++committed;
      ++functional_pos_;  // syscalls/traps take architectural effect here
      if (is_invalid) {
        if (os_) os_->on_illegal(now, ci.pc);
        running_ = false;
        return;
      }
      ++stats_.syscalls;
      ++stats_.instructions;
      if (os_) {
        const OsClient::SyscallResult r = os_->on_syscall(now);
        if (r.stall > 0) commit_stall_until_ = now + r.stall;
        if (r.suspend) {
          running_ = false;
          return;
        }
        if (r.stall > 0) return;
      }
      continue;
    }

    engine::CommitInfo ci{engine::InstrTag{ruu_head_, e.seq}, e.pc,       e.instr,
                          thread_,                            e.eff_addr, e.mem_value};
    Cycle module_stall = 0;
    if (fw_) module_stall = fw_->on_commit(ci, now);

    switch (cls) {
      case OpClass::kStore:
        // The store value reaches memory only now (after the framework saw
        // the commit — the DDT's SavePage snapshot happens pre-store).
        switch (e.mem_size) {
          case 1: memory_->write_u8(e.eff_addr, static_cast<u8>(e.mem_value)); break;
          case 2: memory_->write_u16(e.eff_addr, static_cast<u16>(e.mem_value)); break;
          default: memory_->write_u32(e.eff_addr, e.mem_value); break;
        }
        dl1_->access(now, e.eff_addr, e.mem_size, /*write=*/true);
        ++stats_.stores;
        --lsq_count_;
        break;
      case OpClass::kLoad:
        ++stats_.loads;
        --lsq_count_;
        break;
      case OpClass::kBranch:
        ++stats_.branches;
        if (e.mispredicted) ++stats_.mispredicts;
        predictor_.update_cond(e.pc, e.taken, e.mispredicted);
        break;
      case OpClass::kJump:
        if (e.instr.op == Op::kJr || e.instr.op == Op::kJalr) {
          if (e.mispredicted) ++stats_.mispredicts;
          predictor_.update_indirect(e.pc, e.recover_pc, e.mispredicted);
        }
        break;
      default:
        break;
    }

    if (e.instr.op == Op::kChk) {
      ++stats_.chk_committed;
      serialize_active_ = false;  // release a serializing blocking CHECK
    } else {
      ++stats_.instructions;
    }

    free_head_entry(e);
    ++committed;
    if (module_stall > 0) {
      commit_stall_until_ = now + module_stall;
      stats_.module_stall_cycles += module_stall;
      break;
    }
  }
}

void Core::free_head_entry(RuuEntry& e) {
  if (e.has_dest && reg_producer_seq_[e.dest_reg] == e.seq) {
    reg_producer_seq_[e.dest_reg] = 0;
  }
  e.valid = false;
  ruu_head_ = (ruu_head_ + 1) % config_.ruu_size;
  --ruu_count_;
}

// ---------------------------------------------------------------- writeback

void Core::stage_writeback(Cycle now) {
  for (u32 off = 0; off < ruu_count_; ++off) {
    RuuEntry& e = ruu_at(off);
    if (!e.issued || e.completed || e.complete_at > now) continue;
    e.completed = true;
    if (fw_ && !e.wrong_path) {
      engine::ExecuteInfo xi{engine::InstrTag{ruu_index(off), e.seq}, e.result, e.eff_addr,
                             e.is_mem};
      fw_->on_execute(xi, now);
      if (e.instr.op_class() == OpClass::kLoad) {
        fw_->on_mem_load({engine::InstrTag{ruu_index(off), e.seq}, e.mem_value}, now);
      }
    }
    if (e.mispredicted && !e.wrong_path && e.instr.is_control()) {
      // Branch resolution: squash the wrong path and redirect fetch.
      squash_younger_than(off, now);
      fetch_buffer_.clear();
      fetch_pc_ = e.recover_pc;
      fetch_ready_at_ = now + 1;
      wrong_path_mode_ = false;
      break;  // RUU shape changed; re-scan next cycle
    }
  }
}

void Core::squash_younger_than(u32 offset, Cycle now) {
  while (ruu_count_ > offset + 1) {
    const u32 victim_index = ruu_index(ruu_count_ - 1);
    RuuEntry& v = ruu_[victim_index];
    assert(v.valid);
    if (fw_) fw_->on_squash(engine::InstrTag{victim_index, v.seq}, now);
    if (v.is_mem && !v.wrong_path) --lsq_count_;
    v.valid = false;
    --ruu_count_;
    ++stats_.squashed;
  }
  recompute_producers();
}

void Core::flush_all(Cycle now, Addr refetch_pc) {
  // Undo functional register effects youngest-first (stores were never
  // applied; they die with their RUU entries).
  for (u32 off = ruu_count_; off-- > 0;) {
    const u32 index = ruu_index(off);
    RuuEntry& e = ruu_[index];
    if (!e.wrong_path && e.has_dest) regs_[e.dest_reg] = e.old_dest_value;
    // Correct-path entries (except syscalls/traps, which never execute at
    // dispatch) were counted by exec_functional; they will re-execute after
    // the refetch, so un-count them.
    if (!e.wrong_path && e.instr.op != Op::kSyscall && e.instr.op != Op::kInvalid) {
      --functional_pos_;
    }
    if (fw_) fw_->on_squash(engine::InstrTag{index, e.seq}, now);
    e.valid = false;
    ++stats_.squashed;
  }
  ruu_count_ = 0;
  lsq_count_ = 0;
  pc_ = refetch_pc;
  fetch_pc_ = refetch_pc;
  fetch_ready_at_ = now + 1;
  fetch_buffer_.clear();
  wrong_path_mode_ = false;
  serialize_active_ = false;
  reg_producer_seq_.fill(0);
  regs_[0] = 0;
}

void Core::recompute_producers() {
  reg_producer_seq_.fill(0);
  for (u32 off = 0; off < ruu_count_; ++off) {
    const u32 index = ruu_index(off);
    const RuuEntry& e = ruu_[index];
    if (const auto dest = e.instr.dest_reg()) {
      reg_producer_slot_[*dest] = index;
      reg_producer_seq_[*dest] = e.seq;
    }
  }
}

// -------------------------------------------------------------------- issue

bool Core::entry_ready(const RuuEntry& e) const {
  for (u8 i = 0; i < e.producer_count; ++i) {
    const RuuEntry& p = ruu_[e.producer_slot[i]];
    if (p.valid && p.seq == e.producer_seq[i] && !p.completed) return false;
  }
  return true;
}

Cycle Core::issue_load(RuuEntry& e, u32 offset, Cycle now) {
  if (e.wrong_path) return now + 1;
  // Memory disambiguation: the youngest older store overlapping the load
  // forwards its data (1 cycle if it covers the load, a small penalty for a
  // partial overlap); otherwise the load accesses the D-cache.
  for (u32 off = offset; off-- > 0;) {
    const RuuEntry& s = ruu_[(ruu_head_ + off) % config_.ruu_size];
    if (!s.valid || !s.is_store || s.wrong_path) continue;
    const Addr lo = e.eff_addr;
    const Addr hi = e.eff_addr + e.mem_size;
    const Addr slo = s.eff_addr;
    const Addr shi = s.eff_addr + s.mem_size;
    if (lo < shi && slo < hi) {
      const bool covers = slo <= lo && shi >= hi;
      return now + (covers ? 1 : 3);
    }
  }
  return dl1_->access(now, e.eff_addr, e.mem_size, /*write=*/false);
}

void Core::stage_issue(Cycle now) {
  u32 issued = 0;
  u32 alu_used = 0;
  u32 mem_used = 0;
  bool mdu_used = false;
  for (u32 off = 0; off < ruu_count_ && issued < config_.issue_width; ++off) {
    RuuEntry& e = ruu_at(off);
    if (e.issued || !entry_ready(e)) continue;
    const OpClass cls = e.wrong_path ? OpClass::kIntAlu : e.instr.op_class();
    switch (cls) {
      case OpClass::kIntMul: {
        if (mdu_used || now < mdu_busy_until_) continue;
        const bool is_div = e.instr.op == Op::kDiv || e.instr.op == Op::kRem;
        e.complete_at = now + (is_div ? config_.div_latency : config_.mul_latency);
        if (is_div) mdu_busy_until_ = e.complete_at;  // divider is unpipelined
        mdu_used = true;
        break;
      }
      case OpClass::kLoad: {
        if (mem_used == config_.mem_ports) continue;
        // Loads wait until all older stores have computed their addresses.
        bool blocked = false;
        for (u32 older = 0; older < off; ++older) {
          const RuuEntry& s = ruu_at(older);
          if (s.valid && s.is_store && !s.issued) {
            blocked = true;
            break;
          }
        }
        if (blocked) continue;
        ++mem_used;
        e.complete_at = issue_load(e, off, now);
        break;
      }
      case OpClass::kStore: {
        if (mem_used == config_.mem_ports) continue;
        ++mem_used;
        e.complete_at = now + 1;  // address generation; data written at commit
        break;
      }
      default: {
        if (alu_used == config_.int_alus) continue;
        ++alu_used;
        e.complete_at = now + 1;
        break;
      }
    }
    e.issued = true;
    ++issued;
  }
}

// ----------------------------------------------------------------- dispatch

void Core::stage_dispatch(Cycle now) {
  if (now < commit_stall_until_) return;  // kernel time / module stall
  u32 dispatched = 0;
  while (dispatched < config_.dispatch_width) {
    if (serialize_active_ || fetch_buffer_.empty()) break;
    FetchedInstr& f = fetch_buffer_.front();
    if (f.ready_at > now) break;
    if (ruu_full()) {
      ++stats_.dispatch_stall_cycles;
      break;
    }
    const bool correct_path = !f.wrong_path;
    const OpClass cls = f.instr.op_class();
    const bool is_mem = cls == OpClass::kLoad || cls == OpClass::kStore;
    if (correct_path && is_mem && lsq_count_ == config_.lsq_size) {
      ++stats_.dispatch_stall_cycles;
      break;
    }
    // Syscalls/traps serialize.  So do blocking CHECKs to modules that write
    // guest memory through the MAU (MLR, DDT): the instructions after the
    // CHECK must observe the module's writes, so they may not execute until
    // the check completes ("the module returns control to the program after
    // the randomization is complete", section 5.3).  ICM CHECKs only gate
    // commit and deliberately overlap with execution.
    const bool serializing =
        correct_path &&
        (cls == OpClass::kSyscall || f.instr.op == Op::kInvalid ||
         (f.instr.op == Op::kChk && f.instr.chk_blocking &&
          f.instr.chk_module != isa::ModuleId::kIcm));
    if (serializing && ruu_count_ > 0) break;  // wait until the pipeline is empty

    const u32 index = (ruu_head_ + ruu_count_) % config_.ruu_size;
    RuuEntry& e = ruu_[index];
    e = RuuEntry{};
    e.valid = true;
    e.seq = next_seq_++;
    e.pc = f.pc;
    e.raw = f.raw;
    e.instr = f.instr;
    e.wrong_path = f.wrong_path;

    // Capture operand values and producers before functional execution.
    engine::DispatchInfo di;
    di.tag = engine::InstrTag{index, e.seq};
    di.pc = f.pc;
    di.raw = f.raw;
    di.instr = f.instr;
    di.thread = thread_;
    di.wrong_path = f.wrong_path;
    const Instr::Sources sources = f.instr.source_regs();
    for (u8 i = 0; i < sources.count; ++i) {
      const u8 r = sources.regs[i];
      di.operands[di.operand_count++] = regs_[r];
      if (r != 0 && reg_producer_seq_[r] != 0) {
        e.producer_slot[e.producer_count] = reg_producer_slot_[r];
        e.producer_seq[e.producer_count] = reg_producer_seq_[r];
        ++e.producer_count;
      }
    }

    if (correct_path) {
      exec_functional(e, f);
      if (serializing) {
        // Syscalls/traps have no functional effect at dispatch; the OS runs
        // at commit.  Execution continues past the instruction.
        e.mispredicted = false;
        serialize_active_ = true;
      }
    }

    if (const auto dest = f.instr.dest_reg()) {
      reg_producer_slot_[*dest] = index;
      reg_producer_seq_[*dest] = e.seq;
    }

    ++ruu_count_;
    if (correct_path && is_mem) ++lsq_count_;
    ++dispatched;
    fetch_buffer_.pop();

    if (fw_) fw_->on_dispatch(di, now);

    if (correct_path && e.mispredicted) {
      // Everything currently in the fetch buffer (and everything fetched
      // until this branch resolves) is down the wrong path.
      wrong_path_mode_ = true;
      for (std::size_t i = 0; i < fetch_buffer_.size(); ++i) {
        fetch_buffer_.at(i).wrong_path = true;
      }
    }
  }
}

// -------------------------------------------------------------------- fetch

void Core::stage_fetch(Cycle now) {
  if (draining_) return;
  u32 fetched = 0;
  if (now < fetch_ready_at_) {
    ++stats_.fetch_stall_cycles;
    return;
  }
  while (fetched < config_.fetch_width && !fetch_buffer_.full()) {
    Word raw = memory_->read_u32(fetch_pc_);
    if (fetch_fault_) raw = fetch_fault_(fetch_pc_, raw);
    if (text_hi_ != 0 && (fetch_pc_ < text_lo_ || fetch_pc_ >= text_hi_)) {
      raw = 0xFC00'0000u;  // execute protection: decodes as illegal
    }
    const Cycle done = il1_->access(now, fetch_pc_, 4, /*write=*/false);

    FetchedInstr f;
    f.pc = fetch_pc_;
    f.raw = raw;
    f.instr = isa::decode(raw);
    f.wrong_path = wrong_path_mode_;
    f.ready_at = done;

    bool stop = false;
    switch (f.instr.op_class()) {
      case OpClass::kBranch: {
        f.predicted_taken = predictor_.predict_taken(f.pc);
        const Addr target = f.pc + 4 + (static_cast<Word>(f.instr.imm) << 2);
        f.predicted_next = f.predicted_taken ? target : f.pc + 4;
        stop = f.predicted_taken;
        break;
      }
      case OpClass::kJump: {
        if (f.instr.op == Op::kJ || f.instr.op == Op::kJal) {
          f.predicted_next = f.instr.target << 2;
          if (f.instr.op == Op::kJal) predictor_.ras_push(f.pc + 4);
        } else {
          if (f.instr.op == Op::kJalr) predictor_.ras_push(f.pc + 4);
          Addr predicted = 0;
          if (f.instr.op == Op::kJr && f.instr.rs == isa::kRa) {
            predicted = predictor_.ras_pop();
          }
          if (predicted == 0) predicted = predictor_.predict_indirect(f.pc);
          f.predicted_next = predicted != 0 ? predicted : f.pc + 4;
        }
        f.predicted_taken = true;
        stop = true;
        break;
      }
      default:
        f.predicted_next = f.pc + 4;
        break;
    }

    fetch_buffer_.push(f);
    fetch_pc_ = f.predicted_next;
    ++fetched;

    if (done > now + il1_->config().hit_latency) {
      fetch_ready_at_ = done;  // an I-cache miss blocks the fetch engine
      break;
    }
    if (stop) break;  // a predicted-taken control op ends the fetch group
  }
}

}  // namespace rse::cpu
