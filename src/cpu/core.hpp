// Out-of-order superscalar core in the style of SimpleScalar's sim-outorder:
// a unified RUU (ROB + reservation stations), an LSQ, 4-wide
// fetch/dispatch/issue/commit, and in-order functional execution at dispatch
// with a timing model layered on top.  This is the pipeline of Figure 1 of
// the paper, with tap points feeding the RSE framework:
//
//   dispatch      -> Fetch_Out + Regfile_Data (1-cycle latch)
//   writeback     -> Execute_Out, Memory_Out
//   commit/squash -> Commit_Out
//
// Commit consults the framework's IOQ check bits (Table 1): a blocking CHECK
// stalls commit until checkValid is set; check=1 flushes the pipeline and
// re-fetches from the CHECK so the failed check can be retried or escalated
// to the OS.
#pragma once

#include <array>
#include <functional>
#include <utility>
#include <vector>

#include "common/ring_buffer.hpp"
#include "common/types.hpp"
#include "cpu/branch_predictor.hpp"
#include "isa/instruction.hpp"
#include "mem/cache.hpp"
#include "mem/main_memory.hpp"
#include "rse/framework.hpp"

namespace rse::cpu {

struct CoreConfig {
  u32 fetch_width = 4;
  u32 dispatch_width = 4;
  u32 issue_width = 4;
  u32 commit_width = 4;
  u32 ruu_size = 16;
  u32 lsq_size = 8;
  u32 fetch_buffer_size = 4;
  u32 int_alus = 4;
  u32 mem_ports = 2;
  Cycle mul_latency = 3;
  Cycle div_latency = 20;
  PredictorConfig predictor;
};

struct CoreStats {
  u64 instructions = 0;  // committed, excluding CHK
  u64 chk_committed = 0;
  u64 loads = 0;
  u64 stores = 0;
  u64 branches = 0;
  u64 mispredicts = 0;
  u64 syscalls = 0;
  u64 squashed = 0;  // squashed RUU entries (wrong path + CHECK flushes)
  u64 fetch_stall_cycles = 0;
  u64 dispatch_stall_cycles = 0;
  u64 chk_commit_stall_cycles = 0;  // blocking CHECK waiting on checkValid
  u64 module_stall_cycles = 0;      // SavePage and other module-induced stalls
  u64 check_error_flushes = 0;
  u64 run_cycles = 0;  // cycles during which the core was running
};

/// Architectural thread context owned by the guest OS.
struct ThreadContext {
  std::array<Word, isa::kNumRegs> regs{};
  Addr pc = 0;
};

/// The guest OS side of the core: syscalls and trap policy.
class OsClient {
 public:
  virtual ~OsClient() = default;

  struct SyscallResult {
    Cycle stall = 0;     // cycles the syscall consumes
    bool suspend = false;  // core should suspend after commit (reschedule)
  };
  /// A syscall instruction reached commit with the pipeline otherwise empty.
  /// The handler reads/writes registers through the core.
  virtual SyscallResult on_syscall(Cycle now) = 0;

  /// A module-detected CHECK error (check=1) reached commit.  Return true to
  /// flush and retry from the CHECK instruction, false to abandon the thread
  /// (the OS then owns recovery; the core suspends).
  virtual bool on_check_error(Cycle now, Addr pc, isa::ModuleId module) = 0;

  /// An illegal instruction (or trap-inducing fault) reached commit.
  virtual void on_illegal(Cycle now, Addr pc) = 0;
};

class Core {
 public:
  Core(const CoreConfig& config, mem::MainMemory& memory, mem::Cache& il1, mem::Cache& dl1);

  void attach_framework(engine::Framework* framework) { fw_ = framework; }
  void set_os(OsClient* os) { os_ = os; }

  // ---- context control (driven by the guest OS scheduler) ----
  void set_context(const ThreadContext& context, ThreadId thread);
  ThreadContext context() const;
  ThreadId thread() const { return thread_; }

  void resume() { running_ = true; }
  /// Stop executing without discarding in-flight state — the bare
  /// `running_ = false` of a post-syscall suspend.  Unlike halt(), nothing
  /// is flushed, so a later resume() continues exactly where commit stopped.
  void suspend() { running_ = false; }
  /// Stop fetching; once the pipeline drains the core suspends itself.
  void request_drain() { draining_ = true; }
  /// Immediately stop and discard all in-flight state (used when the OS
  /// terminates the running thread, e.g. during recovery).  The squashed
  /// instructions are reported to the RSE as usual.
  void halt(Cycle now);
  bool running() const { return running_; }
  /// True when suspended with an empty pipeline (safe to switch contexts).
  bool drained() const { return !running_ && ruu_count_ == 0; }

  // ---- architectural state (used by syscall handlers) ----
  Word reg(u8 index) const { return regs_[index]; }
  void set_reg(u8 index, Word value) {
    if (index != 0) regs_[index] = value;
  }
  Addr pc() const { return pc_; }
  void set_pc(Addr pc) { pc_ = pc; }

  // ---- per-cycle advance ----
  void cycle(Cycle now);

  // ---- fault injection ----
  /// Hook applied to every fetched instruction word (pc, raw) -> raw'.
  /// Models corruption between memory and dispatch — what the ICM detects.
  using FetchFaultHook = std::function<Word(Addr pc, Word raw)>;
  void set_fetch_fault_hook(FetchFaultHook hook) { fetch_fault_ = std::move(hook); }

  /// Execute protection: fetches outside [lo, hi) decode as illegal
  /// instructions and trap (the loader sets this to the text segment).
  /// hi == 0 disables the check.
  void set_text_range(Addr lo, Addr hi) {
    text_lo_ = lo;
    text_hi_ = hi;
  }
  Addr text_lo() const { return text_lo_; }
  Addr text_hi() const { return text_hi_; }

  /// Debug hook invoked for every committed instruction, in retirement
  /// order (used by the rse_run --trace tool and by tests).
  using CommitTraceHook = std::function<void(Cycle now, Addr pc, const isa::Instr& instr,
                                             ThreadId thread)>;
  void set_commit_trace(CommitTraceHook hook) { commit_trace_ = std::move(hook); }

  /// Richer per-commit record (rse/dme.hpp trace canonicalization): every
  /// committed instruction in retirement order — syscalls and invalid words
  /// included — with the raw fetched word and, for memory operations, the
  /// alignment-masked effective address and memory value (post-sign-extension
  /// loaded value for loads, unmasked rt for stores).  Like every hook, this
  /// is excluded from serialize_state (snapshots never capture callbacks).
  struct CommitRecord {
    Addr pc = 0;
    Word raw = 0;
    bool is_mem = false;
    bool is_store = false;
    Addr ea = 0;
    Word value = 0;
  };
  using CommitRecordHook = std::function<void(const CommitRecord&)>;
  void set_commit_record(CommitRecordHook hook) { commit_record_ = std::move(hook); }

  /// Execution-path fault injection: applied to the computed next PC of
  /// every control-flow instruction (pc, next) -> next'.  Models a soft
  /// error in the branch/address unit — the corruption class the CFC module
  /// detects (the instruction's binary is intact, so the ICM cannot).
  using BranchFaultHook = std::function<Addr(Addr pc, Addr next)>;
  void set_branch_fault_hook(BranchFaultHook hook) { branch_fault_ = std::move(hook); }

  /// Number of instructions that have taken architectural effect so far, in
  /// program order: dispatch-time functional execution for ordinary
  /// instructions (CHKs included), commit time for syscalls/traps, with
  /// squashed correct-path entries un-counted on flush.  A fault injected
  /// into `regs_`/`pc_` when functional_pos() == N lands exactly after the
  /// first N instructions of the functional stream — the alignment contract
  /// the exec/ fast-forward controller relies on (docs/execution.md).
  u64 functional_pos() const { return functional_pos_; }

  /// Guest-address ranges the pipeline holds in flight right now: the PC of
  /// every fetch-buffer entry, the PC of every RUU entry, and the byte range
  /// of every dispatched correct-path store that has not yet committed.
  /// A memory word flipped at this instant is *not* seen by those — the
  /// clean word was already captured at fetch/dispatch, or will be
  /// overwritten when the store commits — so the exec/ fast-forward
  /// controller refuses memory-word faults overlapping any returned range
  /// (the fast prefix has no pipeline and would observe the flip).
  std::vector<std::pair<Addr, u32>> inflight_ranges() const;

  const CoreStats& stats() const { return stats_; }
  CoreStats& mutable_stats() { return stats_; }
  BranchPredictor& predictor() { return predictor_; }
  const CoreConfig& config() const { return config_; }

  /// Snapshot hook: every value-state member of the pipeline.  Wiring
  /// (memory/cache/framework/OS pointers) and the injection hooks are *not*
  /// serialized — a restore targets a core constructed and wired through the
  /// normal path, and hooks are installed after the fork if a run needs them.
  template <class Ar>
  void serialize_state(Ar& ar) {
    ar.marker(0x434F5245u);  // "CORE"
    ar.field(predictor_);
    ar.field(regs_);
    ar.field(pc_);
    ar.field(thread_);
    ar.field(fetch_pc_);
    ar.field(fetch_ready_at_);
    ar.field(fetch_buffer_);
    ar.field(wrong_path_mode_);
    ar.field(ruu_);
    ar.field(ruu_head_);
    ar.field(ruu_count_);
    ar.field(lsq_count_);
    ar.field(next_seq_);
    ar.field(reg_producer_slot_);
    ar.field(reg_producer_seq_);
    ar.field(serialize_active_);
    ar.field(mdu_busy_until_);
    ar.field(running_);
    ar.field(draining_);
    ar.field(commit_stall_until_);
    ar.field(functional_pos_);
    ar.field(text_lo_);
    ar.field(text_hi_);
    ar.field(stats_);
  }

 private:
  struct FetchedInstr {
    Addr pc = 0;
    Word raw = 0;
    isa::Instr instr;
    bool predicted_taken = false;
    Addr predicted_next = 0;
    bool wrong_path = false;
    Cycle ready_at = 0;  // icache fill time
  };

  struct RuuEntry {
    bool valid = false;
    u64 seq = 0;
    Addr pc = 0;
    Word raw = 0;
    isa::Instr instr;
    bool wrong_path = false;

    // functional results (correct-path only)
    Word result = 0;
    Addr eff_addr = 0;
    Word mem_value = 0;  // store value / loaded value
    u8 mem_size = 0;
    bool taken = false;
    bool mispredicted = false;
    Addr recover_pc = 0;

    // register-undo record for CHECK-error flush recovery
    bool has_dest = false;
    u8 dest_reg = 0;
    Word old_dest_value = 0;

    // scheduling
    bool issued = false;
    bool completed = false;
    Cycle complete_at = 0;
    u32 producer_slot[2] = {0, 0};
    u64 producer_seq[2] = {0, 0};
    u8 producer_count = 0;

    bool is_mem = false;
    bool is_store = false;
  };

  // pipeline stages (called youngest-stage-last each cycle)
  void stage_commit(Cycle now);
  void stage_writeback(Cycle now);
  void stage_issue(Cycle now);
  void stage_dispatch(Cycle now);
  void stage_fetch(Cycle now);

  // helpers
  u32 ruu_index(u32 offset) const { return (ruu_head_ + offset) % config_.ruu_size; }
  RuuEntry& ruu_at(u32 offset) { return ruu_[ruu_index(offset)]; }
  bool ruu_full() const { return ruu_count_ == config_.ruu_size; }

  void exec_functional(RuuEntry& entry, const FetchedInstr& fetched);
  Word read_mem_through_stores(Addr addr, u32 size, u32 upto_offset) const;
  void write_reg_with_undo(RuuEntry& entry, u8 reg, Word value);
  void squash_younger_than(u32 offset, Cycle now);
  void flush_all(Cycle now, Addr refetch_pc);
  bool entry_ready(const RuuEntry& entry) const;
  Cycle issue_load(RuuEntry& entry, u32 offset, Cycle now);
  void recompute_producers();
  void free_head_entry(RuuEntry& entry);

  CoreConfig config_;
  mem::MainMemory* memory_;
  mem::Cache* il1_;
  mem::Cache* dl1_;
  engine::Framework* fw_ = nullptr;
  OsClient* os_ = nullptr;
  BranchPredictor predictor_;

  // architectural state
  std::array<Word, isa::kNumRegs> regs_{};
  Addr pc_ = 0;  // next instruction to execute functionally (dispatch point)
  ThreadId thread_ = kNoThread;

  // fetch engine
  Addr fetch_pc_ = 0;
  Cycle fetch_ready_at_ = 0;
  RingBuffer<FetchedInstr> fetch_buffer_;
  bool wrong_path_mode_ = false;

  // RUU / LSQ
  std::vector<RuuEntry> ruu_;
  u32 ruu_head_ = 0;
  u32 ruu_count_ = 0;
  u32 lsq_count_ = 0;
  u64 next_seq_ = 1;
  std::array<u32, isa::kNumRegs> reg_producer_slot_{};
  std::array<u64, isa::kNumRegs> reg_producer_seq_{};  // 0 = none

  // serialization (syscall / illegal at head)
  bool serialize_active_ = false;
  Cycle mdu_busy_until_ = 0;  // unpipelined divider occupancy

  // run state
  bool running_ = false;
  bool draining_ = false;
  Cycle commit_stall_until_ = 0;
  u64 functional_pos_ = 0;  // see functional_pos()

  FetchFaultHook fetch_fault_;
  BranchFaultHook branch_fault_;
  CommitTraceHook commit_trace_;
  CommitRecordHook commit_record_;
  Addr text_lo_ = 0;
  Addr text_hi_ = 0;
  CoreStats stats_;
};

}  // namespace rse::cpu
