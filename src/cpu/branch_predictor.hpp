// Branch prediction for the fetch engine: a bimodal 2-bit-counter table for
// conditional branches, a direct-mapped BTB for indirect jumps, and a small
// return-address stack — the predictor family SimpleScalar's sim-outorder
// ships with.
#pragma once

#include <vector>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/types.hpp"

namespace rse::cpu {

struct PredictorConfig {
  u32 bimodal_entries = 2048;  // 2-bit counters
  u32 btb_entries = 256;       // direct-mapped PC -> target
  u32 ras_entries = 8;
};

struct PredictorStats {
  u64 cond_lookups = 0;
  u64 cond_mispredicts = 0;
  u64 indirect_lookups = 0;
  u64 indirect_mispredicts = 0;
};

class BranchPredictor {
 public:
  explicit BranchPredictor(const PredictorConfig& config)
      : config_(config),
        counters_(config.bimodal_entries, 2),  // weakly taken
        btb_(config.btb_entries) {
    if (!is_pow2(config.bimodal_entries) || !is_pow2(config.btb_entries)) {
      throw ConfigError("predictor table sizes must be powers of two");
    }
    ras_.reserve(config.ras_entries);
  }

  /// Predict a conditional branch at `pc`.
  bool predict_taken(Addr pc) {
    ++stats_.cond_lookups;
    return counters_[index(pc, config_.bimodal_entries)] >= 2;
  }

  /// Train the bimodal counter with the resolved outcome.
  void update_cond(Addr pc, bool taken, bool mispredicted) {
    u8& counter = counters_[index(pc, config_.bimodal_entries)];
    if (taken && counter < 3) ++counter;
    if (!taken && counter > 0) --counter;
    if (mispredicted) ++stats_.cond_mispredicts;
  }

  /// Predict the target of an indirect jump (jr/jalr).  Returns 0 if the BTB
  /// has no entry, in which case fetch falls through (and will mispredict).
  Addr predict_indirect(Addr pc) {
    ++stats_.indirect_lookups;
    const BtbEntry& entry = btb_[index(pc, config_.btb_entries)];
    return (entry.valid && entry.pc == pc) ? entry.target : 0;
  }

  void update_indirect(Addr pc, Addr target, bool mispredicted) {
    BtbEntry& entry = btb_[index(pc, config_.btb_entries)];
    entry.valid = true;
    entry.pc = pc;
    entry.target = target;
    if (mispredicted) ++stats_.indirect_mispredicts;
  }

  // Return-address stack, updated speculatively at fetch.
  void ras_push(Addr return_pc) {
    if (ras_.size() == config_.ras_entries) ras_.erase(ras_.begin());
    ras_.push_back(return_pc);
  }
  Addr ras_pop() {
    if (ras_.empty()) return 0;
    const Addr top = ras_.back();
    ras_.pop_back();
    return top;
  }

  const PredictorStats& stats() const { return stats_; }

  /// Snapshot hook: counters, BTB, return-address stack and statistics.
  template <class Ar>
  void serialize_state(Ar& ar) {
    ar.field(counters_);
    ar.field(btb_);
    ar.field(ras_);
    ar.field(stats_);
  }

 private:
  struct BtbEntry {
    bool valid = false;
    Addr pc = 0;
    Addr target = 0;
  };

  static u32 index(Addr pc, u32 entries) { return (pc >> 2) & (entries - 1); }

  PredictorConfig config_;
  std::vector<u8> counters_;
  std::vector<BtbEntry> btb_;
  std::vector<Addr> ras_;
  PredictorStats stats_;
};

}  // namespace rse::cpu
