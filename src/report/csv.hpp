// Minimal CSV writer for benchmark series (plot-ready exports).  Benches
// write a .csv next to their stdout tables when the RSE_BENCH_CSV_DIR
// environment variable names a directory.
#pragma once

#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

namespace rse::report {

class CsvWriter {
 public:
  CsvWriter(std::string path, std::vector<std::string> header) : path_(std::move(path)) {
    rows_.push_back(std::move(header));
  }

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Write the file; returns false on I/O failure.
  bool flush() const {
    std::ofstream out(path_);
    if (!out) return false;
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size(); ++c) {
        out << escape(r[c]) << (c + 1 < r.size() ? "," : "");
      }
      out << '\n';
    }
    return static_cast<bool>(out);
  }

  static std::string escape(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  }

 private:
  std::string path_;
  std::vector<std::vector<std::string>> rows_;
};

/// Directory for bench CSV exports, if the user asked for them.
inline std::optional<std::string> csv_export_dir() {
  const char* dir = std::getenv("RSE_BENCH_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return std::nullopt;
  return std::string(dir);
}

}  // namespace rse::report
