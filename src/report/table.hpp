// Minimal fixed-width table printer used by the benchmark harnesses to emit
// paper-style tables on stdout.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace rse::report {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], r[c].size());
      }
    }
    auto line = [&] {
      os << '+';
      for (const std::size_t w : widths) os << std::string(w + 2, '-') << '+';
      os << '\n';
    };
    auto emit = [&](const std::vector<std::string>& cells) {
      os << '|';
      for (std::size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : std::string{};
        os << ' ' << std::setw(static_cast<int>(widths[c])) << std::left << cell << " |";
      }
      os << '\n';
    };
    line();
    emit(headers_);
    line();
    for (const auto& r : rows_) emit(r);
    line();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared by benches.
inline std::string fmt_millions(double value, int precision = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value / 1e6;
  return os.str();
}

inline std::string fmt_pct(double fraction, int precision = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

inline std::string fmt_fixed(double value, int precision = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace rse::report
