#include "campaign/injection.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace rse::campaign {

const char* to_string(InjectTarget target) {
  switch (target) {
    case InjectTarget::kRegisterBit: return "reg";
    case InjectTarget::kInstructionWord: return "instr";
    case InjectTarget::kDataWord: return "data";
    case InjectTarget::kConfigBit: return "config";
  }
  return "?";
}

bool parse_target(const std::string& name, InjectTarget* out) {
  for (unsigned t = 0; t < kNumInjectTargets; ++t) {
    if (name == to_string(static_cast<InjectTarget>(t))) {
      *out = static_cast<InjectTarget>(t);
      return true;
    }
  }
  return false;
}

namespace {

/// SplitMix64 finalizer: decorrelates (seed, index) pairs before they seed
/// the per-run xorshift stream, so neighbouring run indices do not produce
/// neighbouring fault points.
u64 mix(u64 seed, u64 index) {
  u64 z = seed + (index + 1) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

InjectionPlan::InjectionPlan(u64 campaign_seed, InjectionSpace space)
    : seed_(campaign_seed), space_(std::move(space)) {
  if (space_.cycles == 0) throw ConfigError("InjectionPlan: empty cycle space");
  if (space_.targets.empty()) throw ConfigError("InjectionPlan: no targets enabled");
  if (space_.text_words == 0) throw ConfigError("InjectionPlan: empty text segment");
  const Cycle lo = space_.window_lo != 0 ? space_.window_lo : 1;
  const Cycle hi = space_.window_hi != 0 ? space_.window_hi : space_.cycles;
  if (lo > hi || hi > space_.cycles) {
    throw ConfigError("InjectionPlan: empty or out-of-range injection window");
  }
}

InjectionRecord InjectionPlan::record(u32 run_index) const {
  Xorshift64 rng(mix(seed_, run_index));
  InjectionRecord r;
  r.campaign_seed = seed_;
  r.run_index = run_index;
  r.target = space_.targets[rng.next_below(space_.targets.size())];
  if (r.target == InjectTarget::kDataWord && space_.data_words == 0) {
    r.target = InjectTarget::kRegisterBit;  // no data segment to hit
  }
  // Draw the timing before the target-specific fields so every target class
  // consumes the same stream prefix.  The default window [1, cycles] keeps
  // the historical next_below(cycles) draw bit-for-bit.
  const Cycle window_lo = space_.window_lo != 0 ? space_.window_lo : 1;
  const Cycle window_hi = space_.window_hi != 0 ? space_.window_hi : space_.cycles;
  r.inject_cycle = window_lo + rng.next_below(window_hi - window_lo + 1);

  switch (r.target) {
    case InjectTarget::kRegisterBit: {
      // r0 is hardwired to zero, so its draw stands in for the other
      // architectural register of the fetch path: the next-PC latch.
      const u64 pick = rng.next_below(space_.num_regs);
      if (pick == 0) {
        r.reg = kPcPseudoReg;
        // Word-aligned, near-range bits: the corrupted target usually stays
        // inside (or close to) the text segment, the case execute
        // protection alone cannot catch.
        r.bit = static_cast<u8>(2 + rng.next_below(14));
      } else {
        r.reg = static_cast<u8>(pick);
        r.bit = static_cast<u8>(rng.next_below(32));
      }
      r.mask = Word{1} << r.bit;
      break;
    }
    case InjectTarget::kInstructionWord: {
      r.addr = space_.text_base + static_cast<Addr>(4 * rng.next_below(space_.text_words));
      const int bits = 1 + static_cast<int>(rng.next_below(2));  // 1-2 bit flips
      for (int b = 0; b < bits; ++b) r.mask |= Word{1} << rng.next_below(32);
      r.bit = static_cast<u8>(rng.next_below(32));  // recorded for CSV only
      break;
    }
    case InjectTarget::kDataWord:
      r.addr = space_.data_base + static_cast<Addr>(4 * rng.next_below(space_.data_words));
      r.bit = static_cast<u8>(rng.next_below(32));
      r.mask = Word{1} << r.bit;
      break;
    case InjectTarget::kConfigBit:
      if (rng.next_below(2) == 0) {
        r.config_kind = ConfigFaultKind::kIoqStuck;
        r.ioq_slot = static_cast<u32>(rng.next_below(space_.ioq_slots));
        r.ioq_fault = static_cast<engine::IoqStuckFault>(1 + rng.next_below(4));
      } else {
        r.config_kind = ConfigFaultKind::kModuleBehaviour;
        // Behavioural faults target the synchronous checker (ICM) or the
        // async control-flow checker — the modules campaigns enable.
        r.module = rng.next_below(2) == 0 ? isa::ModuleId::kIcm : isa::ModuleId::kCfc;
        r.module_fault = static_cast<engine::ModuleFaultMode>(1 + rng.next_below(3));
      }
      break;
  }
  return r;
}

std::string describe(const InjectionRecord& r) {
  std::ostringstream os;
  os << "run " << r.run_index << ": " << to_string(r.target);
  switch (r.target) {
    case InjectTarget::kRegisterBit:
      os << " r" << static_cast<int>(r.reg) << " bit " << static_cast<int>(r.bit);
      break;
    case InjectTarget::kInstructionWord:
    case InjectTarget::kDataWord:
      os << " @0x" << std::hex << r.addr << " mask 0x" << r.mask << std::dec;
      break;
    case InjectTarget::kConfigBit:
      if (r.config_kind == ConfigFaultKind::kIoqStuck) {
        os << " ioq slot " << r.ioq_slot << " fault " << static_cast<int>(r.ioq_fault);
      } else {
        os << " module " << static_cast<int>(r.module) << " mode "
           << static_cast<int>(r.module_fault);
      }
      break;
  }
  os << " @ cycle " << r.inject_cycle;
  return os.str();
}

}  // namespace rse::campaign
