// Stratified-sampling statistics for fault-injection campaigns: Wilson score
// confidence intervals per outcome stratum and the sequential-refinement
// predicate that decides which strata deserve more runs.
//
// The Wilson interval is preferred over the normal (Wald) approximation
// because campaign strata are routinely degenerate — 0 hits (no SDC
// observed) or n hits (everything masked) — where Wald collapses to a
// zero-width interval and Wilson still reports honest uncertainty.
#pragma once

#include <array>
#include <vector>

#include "campaign/outcome.hpp"
#include "common/types.hpp"

namespace rse::campaign {

/// z for a two-sided 95% interval.
inline constexpr double kZ95 = 1.959963984540054;

struct WilsonInterval {
  double low = 0.0;
  double high = 1.0;
  double center = 0.5;  // the adjusted (not raw) proportion
};

/// Wilson score interval for `hits` successes in `total` trials.  total == 0
/// returns the vacuous [0, 1] interval.
WilsonInterval wilson_interval(u32 hits, u32 total, double z = kZ95);

/// True when the interval still straddles `threshold` — the stratum's rate
/// cannot yet be reported as confidently above or below it.
bool straddles(const WilsonInterval& interval, double threshold);

/// Outcome strata whose Wilson interval still straddles the reporting
/// threshold, i.e. the strata sequential refinement should spend extra runs
/// on.  Strata with zero hits whose upper bound has already fallen below the
/// threshold (or total hits whose lower bound exceeds it) need nothing.
std::vector<unsigned> strata_needing_refinement(
    const std::array<u32, kNumOutcomes>& by_outcome, u32 total, double threshold,
    double z = kZ95);

}  // namespace rse::campaign
