#include "campaign/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "common/error.hpp"

namespace rse::campaign {

CampaignRunner::CampaignRunner(GoldenCache* cache)
    : cache_(cache != nullptr ? cache : &own_cache_) {}

Cycle CampaignRunner::budget_for(const GoldenRun& golden, double hang_factor) const {
  // The additive slack keeps very short workloads from classifying ordinary
  // detection/retry overhead as a hang.
  return static_cast<Cycle>(static_cast<double>(golden.cycles) * hang_factor) + 20'000;
}

InjectionPlan CampaignRunner::plan_for(const CampaignSpec& spec, const GoldenRun& golden,
                                       const WorkloadSetup& setup) const {
  (void)setup;
  InjectionSpace space;
  space.cycles = golden.cycles;
  space.text_base = golden.program.text_base;
  space.text_words = static_cast<u32>(golden.program.text.size());
  space.data_base = golden.program.data_base;
  space.data_words = static_cast<u32>(golden.program.data.size() / 4);
  space.ioq_slots = golden.ioq_slots;
  space.num_regs = isa::kNumRegs;
  space.targets = spec.targets;
  return InjectionPlan(spec.seed, std::move(space));
}

bool CampaignRunner::apply_fault(os::Machine& machine, const InjectionRecord& record) const {
  switch (record.target) {
    case InjectTarget::kRegisterBit: {
      cpu::Core& core = machine.core();
      if (record.reg == kPcPseudoReg) {
        // One-shot corruption of the next-PC latch: the first control-flow
        // instruction to commit after the injection cycle lands on a wrong
        // target.  The binary in memory is untouched, so only the CFC (or
        // the fetch protection fence) can see it.
        core.set_branch_fault_hook(
            [mask = record.mask, fired = false](Addr, Addr next) mutable {
              if (fired) return next;
              fired = true;
              return next ^ mask;
            });
        return true;
      }
      core.set_reg(record.reg, core.reg(record.reg) ^ record.mask);
      return true;
    }
    case InjectTarget::kInstructionWord:
    case InjectTarget::kDataWord: {
      mem::MainMemory& memory = machine.memory();
      memory.write_u32(record.addr, memory.read_u32(record.addr) ^ record.mask);
      return true;
    }
    case InjectTarget::kConfigBit: {
      engine::Framework* fw = machine.framework();
      if (fw == nullptr) return false;
      if (record.config_kind == ConfigFaultKind::kIoqStuck) {
        fw->ioq().inject_stuck_fault(record.ioq_slot, record.ioq_fault);
        return true;
      }
      engine::Module* module = fw->module(record.module);
      if (module == nullptr) return false;
      module->inject_fault(record.module_fault);
      return true;
    }
  }
  return false;
}

RunResult CampaignRunner::run_one(const WorkloadSetup& setup, const GoldenRun& golden,
                                  const InjectionRecord& record) const {
  const Cycle budget = budget_for(golden, /*hang_factor=*/8.0);
  return run_one_with_budget(setup, golden, record, budget);
}

namespace {

/// Classify a completed (or budget-bounded) faulty run from its machine and
/// guest state — shared by the classic and fast-forward paths, which must
/// gather evidence identically.
void finish_run(os::Machine& machine, os::GuestOs& guest, const GoldenRun& golden,
                bool host_trap, RunResult* result) {
  RunEvidence evidence;
  evidence.finished = guest.finished() || host_trap;
  evidence.output = guest.output();
  evidence.exit_code = guest.exit_code();
  if (auto* icm = machine.icm()) evidence.icm_mismatches = icm->stats().mismatches;
  if (auto* cfc = machine.cfc()) evidence.cfc_violations = cfc->stats().violations;
  if (auto* fw = machine.framework()) evidence.selfcheck_trips = fw->stats().selfcheck_trips;
  if (auto* ddt = machine.ddt()) {
    evidence.ddt_footprint_violations = ddt->stats().footprint_violations;
  }
  evidence.recoveries = guest.stats().recoveries;
  evidence.crashes = guest.stats().crashes + (host_trap ? 1 : 0);
  evidence.illegal_traps = guest.stats().illegal_traps;

  result->outcome = classify(evidence, golden);
  result->cycles = machine.now();
}

}  // namespace

RunResult CampaignRunner::run_one_with_budget(const WorkloadSetup& setup,
                                              const GoldenRun& golden,
                                              const InjectionRecord& record,
                                              Cycle budget) const {
  os::OsConfig os_config = setup.os;
  os_config.run_limit = budget;

  os::Machine machine(setup.machine);
  os::GuestOs guest(machine, os_config);
  guest.load(golden.program);
  for (isa::ModuleId id : setup.host_enables) guest.enable_module(id);

  RunResult result;
  result.record = record;

  // A corrupted guest can reach states the OS model treats as fatal host-side
  // errors (unknown syscall number, wild memory access).  Those are crashes
  // of the faulty run, not of the campaign.
  bool host_trap = false;
  try {
    while (!guest.finished() && machine.now() < record.inject_cycle && machine.now() < budget) {
      guest.step();
    }
    if (!guest.finished() && machine.now() < budget) {
      result.fault_applied = apply_fault(machine, record);
    }
    while (!guest.finished() && machine.now() < budget) guest.step();
  } catch (const SimError&) {
    host_trap = true;
  }

  finish_run(machine, guest, golden, host_trap, &result);
  return result;
}

RunResult CampaignRunner::run_one_fast_forward(
    const WorkloadSetup& setup, const GoldenRun& golden, const InjectionRecord& record,
    Cycle budget, const exec::FastForwardController::BoundaryMap& boundaries) const {
  // Only register faults are fast-forward-safe: memory faults can interact
  // with in-flight stores and stale fetch buffers, and config faults with
  // in-flight CHK IOQ entries — microarchitectural windows the fast prefix
  // does not reproduce.  Records whose injection cycle the fault-free run
  // never reaches have no boundary entry (the classic path applies no fault
  // there either).
  if (record.target != InjectTarget::kRegisterBit) {
    return run_one_with_budget(setup, golden, record, budget);
  }
  const auto boundary = boundaries.find(record.inject_cycle);
  if (boundary == boundaries.end()) return run_one_with_budget(setup, golden, record, budget);

  os::OsConfig os_config = setup.os;
  os_config.run_limit = budget;

  os::Machine machine(setup.machine);
  os::GuestOs guest(machine, os_config);
  guest.load(golden.program);
  for (isa::ModuleId id : setup.host_enables) guest.enable_module(id);

  if (!exec::FastForwardController::fast_forward_to(guest, golden.program, boundary->second,
                                                    record.inject_cycle)) {
    // Fast mode bailed (non-whitelisted syscall, early exit, illegal word):
    // rerun classically on a fresh machine — correctness over speed.
    return run_one_with_budget(setup, golden, record, budget);
  }

  RunResult result;
  result.record = record;

  bool host_trap = false;
  try {
    result.fault_applied = apply_fault(machine, record);
    while (!guest.finished() && machine.now() < budget) guest.step();
  } catch (const SimError&) {
    host_trap = true;
  }

  finish_run(machine, guest, golden, host_trap, &result);
  return result;
}

CampaignReport CampaignRunner::run(const CampaignSpec& spec) {
  if (spec.runs == 0) throw ConfigError("campaign needs at least one run");
  WorkloadSetup setup = make_workload(spec.workload);
  setup.os.static_cfc = spec.static_cfc;
  setup.os.static_ddt = spec.static_ddt;
  setup.os.footprint_summaries = spec.footprint_summaries;
  setup.os.context_depth = spec.context_depth;
  setup.os.field_sensitive = spec.field_sensitive;
  if (spec.static_ddt && std::find(setup.host_enables.begin(), setup.host_enables.end(),
                                   isa::ModuleId::kDdt) == setup.host_enables.end()) {
    // The footprint check rides the DDT's commit taps: the mode implies
    // enabling the module for the golden and every faulty run.
    setup.host_enables.push_back(isa::ModuleId::kDdt);
  }
  const std::shared_ptr<const GoldenRun> golden = cache_->get(setup);
  const InjectionPlan plan = plan_for(spec, *golden, setup);
  const Cycle budget = budget_for(*golden, spec.hang_factor);

  // Fast-forward prerequisites: one instrumented cycle-accurate replay maps
  // each register-fault injection cycle to its functional-stream position.
  // A golden run with baseline detector activity disables the fast path
  // entirely — the detector events of the fault-free prefix would be missing
  // from a fast-forwarded run, skewing the against-golden classification.
  exec::FastForwardController::BoundaryMap boundaries;
  const bool golden_baseline_clean =
      golden->icm_mismatches == 0 && golden->cfc_violations == 0 &&
      golden->selfcheck_trips == 0 && golden->os_recoveries == 0 &&
      golden->ddt_footprint_violations == 0;
  if (spec.fast_forward && golden_baseline_clean) {
    std::vector<Cycle> cycles;
    for (u32 i = 0; i < spec.runs; ++i) {
      const InjectionRecord record = plan.record(i);
      if (record.target == InjectTarget::kRegisterBit) cycles.push_back(record.inject_cycle);
    }
    if (!cycles.empty()) {
      os::OsConfig os_config = setup.os;
      os_config.run_limit = budget;
      os::Machine machine(setup.machine);
      os::GuestOs guest(machine, os_config);
      guest.load(golden->program);
      for (isa::ModuleId id : setup.host_enables) guest.enable_module(id);
      boundaries = exec::FastForwardController::map_boundaries(guest, std::move(cycles));
    }
  }
  const bool use_fast_forward = spec.fast_forward && golden_baseline_clean;

  std::vector<RunResult> results(spec.runs);
  std::atomic<u32> next_run{0};
  const auto worker = [&] {
    for (;;) {
      const u32 index = next_run.fetch_add(1, std::memory_order_relaxed);
      if (index >= spec.runs) return;
      results[index] =
          use_fast_forward
              ? run_one_fast_forward(setup, *golden, plan.record(index), budget, boundaries)
              : run_one_with_budget(setup, *golden, plan.record(index), budget);
    }
  };

  u32 jobs = spec.jobs != 0 ? spec.jobs : std::max(1u, std::thread::hardware_concurrency());
  jobs = std::min(jobs, spec.runs);

  const auto start = std::chrono::steady_clock::now();
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (u32 j = 0; j < jobs; ++j) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  CampaignSpec recorded = spec;
  recorded.jobs = jobs;
  return aggregate(recorded, golden->cycles, golden->instructions, std::move(results),
                   wall_seconds);
}

}  // namespace rse::campaign
