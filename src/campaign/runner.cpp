#include "campaign/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <thread>

#include "campaign/stats.hpp"
#include "common/error.hpp"

namespace rse::campaign {

CampaignRunner::CampaignRunner(GoldenCache* cache)
    : cache_(cache != nullptr ? cache : &own_cache_) {}

Cycle CampaignRunner::budget_for(const GoldenRun& golden, double hang_factor) const {
  // The additive slack keeps very short workloads from classifying ordinary
  // detection/retry overhead as a hang.
  return static_cast<Cycle>(static_cast<double>(golden.cycles) * hang_factor) + 20'000;
}

InjectionPlan CampaignRunner::plan_for(const CampaignSpec& spec, const GoldenRun& golden,
                                       const WorkloadSetup& setup) const {
  (void)setup;
  InjectionSpace space;
  space.cycles = golden.cycles;
  space.text_base = golden.program.text_base;
  space.text_words = static_cast<u32>(golden.program.text.size());
  space.data_base = golden.program.data_base;
  space.data_words = static_cast<u32>(golden.program.data.size() / 4);
  space.ioq_slots = golden.ioq_slots;
  space.num_regs = isa::kNumRegs;
  space.targets = spec.targets;
  if (spec.window_lo != 0.0 || spec.window_hi != 1.0) {
    if (!(spec.window_lo >= 0.0 && spec.window_lo <= spec.window_hi && spec.window_hi <= 1.0)) {
      throw ConfigError("campaign injection window must satisfy 0 <= lo <= hi <= 1");
    }
    // Leaving the defaults (0/0) at spec default [0, 1] keeps the historical
    // full-range RNG draw bit-for-bit (InjectionSpace::window_lo).
    space.window_lo = std::max<Cycle>(
        1, static_cast<Cycle>(spec.window_lo * static_cast<double>(golden.cycles)));
    space.window_hi = std::max(
        space.window_lo, static_cast<Cycle>(spec.window_hi * static_cast<double>(golden.cycles)));
  }
  return InjectionPlan(spec.seed, std::move(space));
}

bool CampaignRunner::apply_fault(os::Machine& machine, const InjectionRecord& record) const {
  switch (record.target) {
    case InjectTarget::kRegisterBit: {
      cpu::Core& core = machine.core();
      if (record.reg == kPcPseudoReg) {
        // One-shot corruption of the next-PC latch: the first control-flow
        // instruction to commit after the injection cycle lands on a wrong
        // target.  The binary in memory is untouched, so only the CFC (or
        // the fetch protection fence) can see it.
        core.set_branch_fault_hook(
            [mask = record.mask, fired = false](Addr, Addr next) mutable {
              if (fired) return next;
              fired = true;
              return next ^ mask;
            });
        return true;
      }
      core.set_reg(record.reg, core.reg(record.reg) ^ record.mask);
      return true;
    }
    case InjectTarget::kInstructionWord:
    case InjectTarget::kDataWord: {
      mem::MainMemory& memory = machine.memory();
      memory.write_u32(record.addr, memory.read_u32(record.addr) ^ record.mask);
      return true;
    }
    case InjectTarget::kConfigBit: {
      engine::Framework* fw = machine.framework();
      if (fw == nullptr) return false;
      if (record.config_kind == ConfigFaultKind::kIoqStuck) {
        fw->ioq().inject_stuck_fault(record.ioq_slot, record.ioq_fault);
        return true;
      }
      engine::Module* module = fw->module(record.module);
      if (module == nullptr) return false;
      module->inject_fault(record.module_fault);
      return true;
    }
  }
  return false;
}

RunResult CampaignRunner::run_one(const WorkloadSetup& setup, const GoldenRun& golden,
                                  const InjectionRecord& record,
                                  const dme::CanonicalTrace* dme_reference) const {
  const Cycle budget = budget_for(golden, /*hang_factor=*/8.0);
  return run_one_with_budget(setup, golden, record, budget, dme_reference);
}

namespace {

/// Classify a completed (or budget-bounded) faulty run from its machine and
/// guest state — shared by the classic and fast-forward paths, which must
/// gather evidence identically.  A non-null `checker` contributes the DME
/// trace-comparison evidence: a length shortfall only counts as divergence
/// when the run itself ended cleanly (a crash or hang truncates the trace
/// for reasons the crash/hang outcome already explains).
void finish_run(os::Machine& machine, os::GuestOs& guest, const GoldenRun& golden,
                bool host_trap, dme::TraceChecker* checker, RunResult* result) {
  RunEvidence evidence;
  evidence.finished = guest.finished() || host_trap;
  evidence.output = guest.output();
  evidence.exit_code = guest.exit_code();
  if (auto* icm = machine.icm()) evidence.icm_mismatches = icm->stats().mismatches;
  if (auto* cfc = machine.cfc()) evidence.cfc_violations = cfc->stats().violations;
  if (auto* fw = machine.framework()) evidence.selfcheck_trips = fw->stats().selfcheck_trips;
  if (auto* ddt = machine.ddt()) {
    evidence.ddt_footprint_violations = ddt->stats().footprint_violations;
  }
  evidence.recoveries = guest.stats().recoveries;
  evidence.crashes = guest.stats().crashes + (host_trap ? 1 : 0);
  evidence.illegal_traps = guest.stats().illegal_traps;

  if (checker != nullptr) {
    if (guest.finished() && !host_trap && evidence.crashes == 0 &&
        evidence.illegal_traps == 0) {
      checker->finish_clean();
    }
    evidence.dme_divergences = checker->divergences();
    evidence.dme_first_divergence = checker->first_divergence();
  }

  result->outcome = classify(evidence, golden);
  result->cycles = machine.now();
}

/// Install a streaming trace checker on the machine's commit hook.  The
/// checker must outlive the machine's stepping (the caller keeps it on its
/// stack frame until finish_run).
void install_checker(os::Machine& machine, dme::TraceChecker& checker) {
  machine.core().set_commit_record([&checker](const cpu::Core::CommitRecord& r) {
    checker.push(r.pc, r.raw, r.is_mem, r.is_store, r.ea, r.value);
  });
}

}  // namespace

RunResult CampaignRunner::run_one_with_budget(const WorkloadSetup& setup,
                                              const GoldenRun& golden,
                                              const InjectionRecord& record, Cycle budget,
                                              const dme::CanonicalTrace* dme_reference) const {
  os::OsConfig os_config = setup.os;
  os_config.run_limit = budget;

  os::Machine machine(setup.machine);
  os::GuestOs guest(machine, os_config);
  guest.load(golden.program);
  for (isa::ModuleId id : setup.host_enables) guest.enable_module(id);

  std::optional<dme::TraceChecker> checker;
  if (dme_reference != nullptr) {
    checker.emplace(dme_reference, dme::RegionMap::of(guest));
    install_checker(machine, *checker);
  }

  RunResult result;
  result.record = record;

  // A corrupted guest can reach states the OS model treats as fatal host-side
  // errors (unknown syscall number, wild memory access).  Those are crashes
  // of the faulty run, not of the campaign.
  bool host_trap = false;
  try {
    while (!guest.finished() && machine.now() < record.inject_cycle && machine.now() < budget) {
      guest.step();
    }
    if (!guest.finished() && machine.now() < budget) {
      result.fault_applied = apply_fault(machine, record);
    }
    while (!guest.finished() && machine.now() < budget) guest.step();
  } catch (const SimError&) {
    host_trap = true;
  }

  finish_run(machine, guest, golden, host_trap, checker ? &*checker : nullptr, &result);
  return result;
}

FastForwardStats CampaignRunner::fast_forward_stats() const {
  FastForwardStats stats;
  stats.fast = ff_accum_.fast.load(std::memory_order_relaxed);
  stats.fallback_target = ff_accum_.fallback_target.load(std::memory_order_relaxed);
  stats.fallback_unmapped = ff_accum_.fallback_unmapped.load(std::memory_order_relaxed);
  stats.fallback_conflict = ff_accum_.fallback_conflict.load(std::memory_order_relaxed);
  stats.fallback_checked = ff_accum_.fallback_checked.load(std::memory_order_relaxed);
  stats.fallback_syscall = ff_accum_.fallback_syscall.load(std::memory_order_relaxed);
  stats.fallback_suspend = ff_accum_.fallback_suspend.load(std::memory_order_relaxed);
  stats.fallback_illegal = ff_accum_.fallback_illegal.load(std::memory_order_relaxed);
  stats.fallback_other = ff_accum_.fallback_other.load(std::memory_order_relaxed);
  return stats;
}

void CampaignRunner::reset_fast_forward_stats() const {
  ff_accum_.fast.store(0, std::memory_order_relaxed);
  ff_accum_.fallback_target.store(0, std::memory_order_relaxed);
  ff_accum_.fallback_unmapped.store(0, std::memory_order_relaxed);
  ff_accum_.fallback_conflict.store(0, std::memory_order_relaxed);
  ff_accum_.fallback_checked.store(0, std::memory_order_relaxed);
  ff_accum_.fallback_syscall.store(0, std::memory_order_relaxed);
  ff_accum_.fallback_suspend.store(0, std::memory_order_relaxed);
  ff_accum_.fallback_illegal.store(0, std::memory_order_relaxed);
  ff_accum_.fallback_other.store(0, std::memory_order_relaxed);
}

RunResult CampaignRunner::run_one_fast_forward(
    const WorkloadSetup& setup, const GoldenRun& golden, const InjectionRecord& record,
    Cycle budget, const exec::FastForwardController::BoundaryMap& boundaries,
    const exec::FastForwardController::SyscallSchedule* schedule,
    const dme::CanonicalTrace* dme_reference) const {
  const auto bump = [](std::atomic<u64>& counter) {
    counter.fetch_add(1, std::memory_order_relaxed);
  };
  // Register-bit faults fast-forward unconditionally; instruction-/data-word
  // faults fast-forward unless the word was in flight in the pipeline at the
  // boundary (fetched-but-uncommitted text, or the target of a dispatched
  // store) — the classic run's pipeline holds the clean word across the flip
  // there, which the pipeline-less fast prefix cannot reproduce.  Config
  // faults interact with in-flight CHK IOQ entries and stay classic.
  // Records whose injection cycle the fault-free run never reaches have no
  // boundary entry (the classic path applies no fault there either).
  const bool memory_fault = record.target == InjectTarget::kInstructionWord ||
                            record.target == InjectTarget::kDataWord;
  if (record.target != InjectTarget::kRegisterBit && !memory_fault) {
    bump(ff_accum_.fallback_target);
    return run_one_with_budget(setup, golden, record, budget, dme_reference);
  }
  const auto boundary = boundaries.find(record.inject_cycle);
  if (boundary == boundaries.end()) {
    bump(ff_accum_.fallback_unmapped);
    return run_one_with_budget(setup, golden, record, budget, dme_reference);
  }
  if (memory_fault && boundary->second.conflicts(record.addr, 4)) {
    bump(ff_accum_.fallback_conflict);
    return run_one_with_budget(setup, golden, record, budget, dme_reference);
  }
  // An instruction-word fault on an ICM-checked instruction (one preceded
  // by a `chk icm`) stays classic: the ICM compares the fetched word at
  // dispatch, including wrong-path dispatches that are later squashed, so
  // whether the corrupted word is ever *checked* depends on branch-predictor
  // and pipeline state at the injection cycle — state the pipeline-less fast
  // prefix cannot reproduce.  Faults on unchecked words (and on the chk
  // words themselves) have no speculation-visible detector, so the committed
  // path the transplant reproduces fully determines their classification.
  if (record.target == InjectTarget::kInstructionWord &&
      record.addr >= golden.program.text_base + 4) {
    const std::size_t prev = (record.addr - 4 - golden.program.text_base) / 4;
    if (prev < golden.program.text.size()) {
      const isa::Instr before = isa::decode(golden.program.text[prev]);
      if (before.op == isa::Op::kChk && before.chk_module == isa::ModuleId::kIcm) {
        bump(ff_accum_.fallback_checked);
        return run_one_with_budget(setup, golden, record, budget, dme_reference);
      }
    }
  }

  os::OsConfig os_config = setup.os;
  os_config.run_limit = budget;

  os::Machine machine(setup.machine);
  os::GuestOs guest(machine, os_config);
  guest.load(golden.program);
  for (isa::ModuleId id : setup.host_enables) guest.enable_module(id);

  exec::FastSession::BailReason bail = exec::FastSession::BailReason::kNone;
  if (!exec::FastForwardController::fast_forward_to(guest, golden.program,
                                                    boundary->second.position,
                                                    record.inject_cycle, schedule, &bail)) {
    // Fast mode bailed (non-resumable syscall, early exit, illegal word):
    // rerun classically on a fresh machine — correctness over speed.
    switch (bail) {
      case exec::FastSession::BailReason::kSyscall: bump(ff_accum_.fallback_syscall); break;
      case exec::FastSession::BailReason::kSuspend: bump(ff_accum_.fallback_suspend); break;
      case exec::FastSession::BailReason::kIllegal: bump(ff_accum_.fallback_illegal); break;
      case exec::FastSession::BailReason::kNone: bump(ff_accum_.fallback_other); break;
    }
    return run_one_with_budget(setup, golden, record, budget, dme_reference);
  }
  ff_accum_.fast.fetch_add(1, std::memory_order_relaxed);

  // The fast prefix committed `position` instructions that the checker never
  // saw; advance it to the boundary so the suffix compares against the right
  // reference records.  Valid because the campaign's DME gate requires a
  // divergence-free fault-free baseline (the skipped prefix matches).
  std::optional<dme::TraceChecker> checker;
  if (dme_reference != nullptr) {
    checker.emplace(dme_reference, dme::RegionMap::of(guest));
    checker->set_position(boundary->second.position);
    install_checker(machine, *checker);
  }

  RunResult result;
  result.record = record;

  bool host_trap = false;
  try {
    result.fault_applied = apply_fault(machine, record);
    while (!guest.finished() && machine.now() < budget) guest.step();
  } catch (const SimError&) {
    host_trap = true;
  }

  finish_run(machine, guest, golden, host_trap, checker ? &*checker : nullptr, &result);
  return result;
}

SnapshotChain CampaignRunner::build_snapshot_chain(const WorkloadSetup& setup,
                                                   const GoldenRun& golden,
                                                   const CampaignSpec& spec, Cycle budget,
                                                   bool use_fast_forward) const {
  SnapshotChain chain;
  const u32 buckets = std::max(1u, spec.snapshot_buckets);
  std::vector<Cycle> bounds;
  for (u32 b = 0; b < buckets; ++b) {
    const Cycle bound = golden.cycles * b / buckets;
    if (bounds.empty() || bounds.back() != bound) bounds.push_back(bound);
  }

  os::OsConfig os_config = setup.os;
  os_config.run_limit = budget;

  if (!use_fast_forward) {
    // One from-reset cycle-accurate pass captures every bucket boundary.
    // Because the pass replicates the classic pre-injection loop exactly,
    // each snapshot is bit-identical to the machine state a classic run
    // reaches at that cycle — the chain is exact.
    os::Machine machine(setup.machine);
    os::GuestOs guest(machine, os_config);
    guest.load(golden.program);
    for (isa::ModuleId id : setup.host_enables) guest.enable_module(id);
    for (Cycle bound : bounds) {
      while (!guest.finished() && machine.now() < bound && machine.now() < budget) guest.step();
      while (!guest.finished() && machine.now() < budget &&
             !os::MachineSnapshot::quiescent(machine)) {
        guest.step();
      }
      if (guest.finished() || !os::MachineSnapshot::quiescent(machine)) break;
      if (!chain.snaps.empty() && chain.snaps.back().at == machine.now()) continue;
      chain.snaps.push_back(os::MachineSnapshot::capture(machine, guest));
    }
    return chain;
  }

  // Fast-forward mode: each boundary's fault-free prefix runs through the
  // exec/ fast engine and is transplanted into the cycle-accurate core at
  // the boundary.  The transplant drains the pipeline, so these snapshots
  // are not microarchitecturally identical to a from-reset run's state —
  // the chain is inexact and forking from it is register-fault-only.
  chain.exact = false;
  std::vector<Cycle> ff_bounds;
  for (Cycle bound : bounds) {
    if (bound > 0) ff_bounds.push_back(bound);
  }
  exec::FastForwardController::BoundaryMap bmap;
  if (!ff_bounds.empty()) {
    os::Machine machine(setup.machine);
    os::GuestOs guest(machine, os_config);
    guest.load(golden.program);
    for (isa::ModuleId id : setup.host_enables) guest.enable_module(id);
    bmap = exec::FastForwardController::map_boundaries(guest, std::move(ff_bounds));
  }
  for (Cycle bound : bounds) {
    os::Machine machine(setup.machine);
    os::GuestOs guest(machine, os_config);
    guest.load(golden.program);
    for (isa::ModuleId id : setup.host_enables) guest.enable_module(id);
    if (bound > 0) {
      const auto boundary = bmap.find(bound);
      if (boundary == bmap.end()) break;  // golden finished before this bound
      if (!exec::FastForwardController::fast_forward_to(guest, golden.program,
                                                        boundary->second.position, bound)) {
        continue;  // fast mode bailed; runs in this bucket fork from an earlier snap
      }
    }
    while (!guest.finished() && machine.now() < budget &&
           !os::MachineSnapshot::quiescent(machine)) {
      guest.step();
    }
    if (guest.finished() || !os::MachineSnapshot::quiescent(machine)) continue;
    if (!chain.snaps.empty() && chain.snaps.back().at >= machine.now()) continue;
    chain.snaps.push_back(os::MachineSnapshot::capture(machine, guest));
  }
  return chain;
}

RunResult CampaignRunner::run_one_forked(const WorkloadSetup& setup, const GoldenRun& golden,
                                         const InjectionRecord& record, Cycle budget,
                                         const SnapshotChain& chain) const {
  // Latest snapshot at or before the injection cycle.  Inexact (fast-
  // forward-built) chains are only valid for register faults — the same
  // eligibility rule as run_one_fast_forward.
  const os::MachineSnapshot* snap = nullptr;
  if (chain.exact || record.target == InjectTarget::kRegisterBit) {
    for (const os::MachineSnapshot& s : chain.snaps) {
      if (s.at > record.inject_cycle) break;
      snap = &s;
    }
  }
  if (snap == nullptr) return run_one_with_budget(setup, golden, record, budget);

  os::OsConfig os_config = setup.os;
  os_config.run_limit = budget;

  os::Machine machine(setup.machine);
  os::GuestOs guest(machine, os_config);
  guest.load(golden.program);
  for (isa::ModuleId id : setup.host_enables) guest.enable_module(id);
  // Restore failures are campaign bugs, not guest crashes: let them escape
  // rather than classify as kCrash.
  os::MachineSnapshot::restore(*snap, machine, guest);

  RunResult result;
  result.record = record;

  // From here on the body is the classic run_one_with_budget loop verbatim:
  // the snapshot stands in for the fault-free prefix it already simulated.
  bool host_trap = false;
  try {
    while (!guest.finished() && machine.now() < record.inject_cycle && machine.now() < budget) {
      guest.step();
    }
    if (!guest.finished() && machine.now() < budget) {
      result.fault_applied = apply_fault(machine, record);
    }
    while (!guest.finished() && machine.now() < budget) guest.step();
  } catch (const SimError&) {
    host_trap = true;
  }

  finish_run(machine, guest, golden, host_trap, /*checker=*/nullptr, &result);
  return result;
}

CampaignReport CampaignRunner::run(const CampaignSpec& spec) {
  if (spec.runs == 0) throw ConfigError("campaign needs at least one run");
  if (spec.shard_count == 0 || spec.shard_index >= spec.shard_count) {
    throw ConfigError("campaign shard index out of range");
  }
  if (spec.ci_threshold > 0.0 && spec.shard_count > 1) {
    throw ConfigError("CI refinement is incompatible with sharding: the refined "
                      "run set depends on global outcome counts no shard has");
  }
  if (spec.dme && spec.snapshot_fork) {
    throw ConfigError("DME is incompatible with checkpoint forking: the trace "
                      "checker streams from commit zero and cannot start "
                      "mid-trace from a restored snapshot");
  }
  WorkloadSetup setup = make_workload(spec.workload);
  setup.os.static_cfc = spec.static_cfc;
  setup.os.static_ddt = spec.static_ddt;
  setup.os.footprint_summaries = spec.footprint_summaries;
  setup.os.context_depth = spec.context_depth;
  setup.os.field_sensitive = spec.field_sensitive;
  if (spec.static_ddt && std::find(setup.host_enables.begin(), setup.host_enables.end(),
                                   isa::ModuleId::kDdt) == setup.host_enables.end()) {
    // The footprint check rides the DDT's commit taps: the mode implies
    // enabling the module for the golden and every faulty run.
    setup.host_enables.push_back(isa::ModuleId::kDdt);
  }
  if (spec.dme) {
    // Variant A *is* the campaign: layout randomization on, MLR seed pinned
    // to dme_seed_a.  Mutating the setup before the cache lookup keys the
    // golden on the randomized layout (GoldenCache::key_of).
    setup.machine.framework_present = true;
    setup.machine.mlr.seed = spec.dme_seed_a;
    setup.os.randomize_layout = true;
  }
  const std::shared_ptr<const GoldenRun> golden = cache_->get(setup);
  const InjectionPlan plan = plan_for(spec, *golden, setup);
  const Cycle budget = budget_for(*golden, spec.hang_factor);

  // DME reference: record variant B (same program, distinct MLR seed) once,
  // then establish the fault-free baseline by recording variant A's trace
  // and comparing.  The baseline lives on a local golden copy — the shared
  // cache entry stays DME-agnostic.
  dme::CanonicalTrace reference;
  GoldenRun golden_local;
  const GoldenRun* golden_ptr = golden.get();
  if (spec.dme) {
    os::OsConfig ref_os = setup.os;
    ref_os.run_limit = std::min<Cycle>(ref_os.run_limit, budget);
    dme::VariantSpec variant_b{setup.machine, ref_os, setup.host_enables, spec.dme_seed_b};
    dme::RecordedTrace recorded_b = dme::record_trace(variant_b, golden->program);
    reference = std::move(recorded_b.trace);

    dme::VariantSpec variant_a{setup.machine, ref_os, setup.host_enables, spec.dme_seed_a};
    const dme::RecordedTrace recorded_a = dme::record_trace(variant_a, golden->program);
    const dme::DmeResult baseline = dme::compare_traces(recorded_a, reference);

    golden_local = *golden;
    golden_local.dme_divergences = baseline.divergences;
    golden_local.dme_first_divergence = baseline.first_divergence;
    golden_ptr = &golden_local;
  }

  // Fast-forward prerequisites: one instrumented cycle-accurate replay maps
  // each register-fault injection cycle to its functional-stream position.
  // A golden run with baseline detector activity disables the fast path
  // entirely — the detector events of the fault-free prefix would be missing
  // from a fast-forwarded run, skewing the against-golden classification.
  // This shard executes the contiguous plan range [shard_lo, shard_hi).
  // Unsharded campaigns cover the whole plan; merging every shard's report
  // reproduces the unsharded digest byte-for-byte (campaign/shard.hpp).
  const u32 shard_lo = static_cast<u32>(u64{spec.runs} * spec.shard_index / spec.shard_count);
  const u32 shard_hi =
      static_cast<u32>(u64{spec.runs} * (spec.shard_index + 1) / spec.shard_count);

  reset_fast_forward_stats();
  exec::FastForwardController::BoundaryMap boundaries;
  exec::FastForwardController::SyscallSchedule schedule;
  // A DME baseline divergence (variant B disagrees with fault-free variant A)
  // also disables fast-forward: the skipped prefix could hide where the
  // baseline diverges, so set_position would desynchronize the checker.
  const bool golden_baseline_clean =
      golden->icm_mismatches == 0 && golden->cfc_violations == 0 &&
      golden->selfcheck_trips == 0 && golden->os_recoveries == 0 &&
      golden->ddt_footprint_violations == 0 &&
      (!spec.dme || golden_ptr->dme_divergences == 0);
  const bool use_fast_forward = spec.fast_forward && golden_baseline_clean;
  if (use_fast_forward && !spec.snapshot_fork) {
    std::vector<Cycle> cycles;
    for (u32 i = shard_lo; i < shard_hi; ++i) {
      const InjectionRecord record = plan.record(i);
      const bool eligible = record.target == InjectTarget::kRegisterBit ||
                            record.target == InjectTarget::kInstructionWord ||
                            record.target == InjectTarget::kDataWord;
      if (eligible) cycles.push_back(record.inject_cycle);
    }
    if (!cycles.empty()) {
      os::OsConfig os_config = setup.os;
      os_config.run_limit = budget;
      os::Machine machine(setup.machine);
      os::GuestOs guest(machine, os_config);
      guest.load(golden->program);
      for (isa::ModuleId id : setup.host_enables) guest.enable_module(id);
      // The same replay that samples boundary positions and in-flight
      // ranges also records the syscall schedule that arms bail-and-resume.
      boundaries = exec::FastForwardController::map_boundaries(guest, std::move(cycles),
                                                               &schedule);
    }
  }

  u32 jobs = spec.jobs != 0 ? spec.jobs : std::max(1u, std::thread::hardware_concurrency());
  jobs = std::min(jobs, std::max(1u, shard_hi - shard_lo));

  const auto start = std::chrono::steady_clock::now();

  // The snapshot chain counts toward wall time — it is the checkpoint-fork
  // mode's setup cost, amortized across every run that forks from it.
  SnapshotChain chain;
  if (spec.snapshot_fork) {
    chain = build_snapshot_chain(setup, *golden, spec, budget, use_fast_forward);
  }

  // Execute plan indices [lo, hi), appending to `results` in index order.
  // Work distribution stays a single atomic counter; each run writes its own
  // preallocated slot, so any --jobs value yields identical results.
  std::vector<RunResult> results;
  const auto execute = [&](u32 lo, u32 hi) {
    const size_t base = results.size();
    results.resize(base + (hi - lo));
    std::atomic<u32> next_run{lo};
    const auto worker = [&] {
      for (;;) {
        const u32 index = next_run.fetch_add(1, std::memory_order_relaxed);
        if (index >= hi) return;
        const InjectionRecord record = plan.record(index);
        RunResult& slot = results[base + (index - lo)];
        const dme::CanonicalTrace* dme_ref = spec.dme ? &reference : nullptr;
        if (spec.snapshot_fork) {
          slot = run_one_forked(setup, *golden_ptr, record, budget, chain);
        } else if (use_fast_forward) {
          slot = run_one_fast_forward(setup, *golden_ptr, record, budget, boundaries,
                                      &schedule, dme_ref);
        } else {
          slot = run_one_with_budget(setup, *golden_ptr, record, budget, dme_ref);
        }
      }
    };
    const u32 pool_size = std::min(jobs, hi - lo);
    if (pool_size <= 1) {
      worker();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(pool_size);
      for (u32 j = 0; j < pool_size; ++j) pool.emplace_back(worker);
      for (std::thread& t : pool) t.join();
    }
  };

  execute(shard_lo, shard_hi);

  // Sequential refinement: while any outcome stratum's Wilson interval still
  // straddles the reporting threshold, append the next deterministic batch
  // of plan indices.  The executed run set — and therefore the digest — is a
  // pure function of (spec, classified outcomes), independent of --jobs.
  if (spec.ci_threshold > 0.0) {
    const u32 batch = spec.ci_batch != 0 ? spec.ci_batch : std::max(16u, spec.runs / 2);
    const u32 max_runs = std::max(spec.ci_max_runs != 0 ? spec.ci_max_runs : 4 * spec.runs,
                                  spec.runs);
    u32 total = spec.runs;
    while (total < max_runs) {
      std::array<u32, kNumOutcomes> by_outcome{};
      for (const RunResult& result : results) {
        by_outcome[static_cast<size_t>(result.outcome)]++;
      }
      if (strata_needing_refinement(by_outcome, static_cast<u32>(results.size()),
                                    spec.ci_threshold)
              .empty()) {
        break;
      }
      const u32 step = std::min(batch, max_runs - total);
      execute(total, total + step);
      total += step;
    }
  }

  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  CampaignSpec recorded = spec;
  recorded.jobs = jobs;
  // Refinement grows the executed run set; the recorded spec reflects it so
  // the report is self-consistent.  Shards keep spec.runs — the *plan* size —
  // which merging needs to re-derive the partition.
  if (spec.ci_threshold > 0.0) recorded.runs = static_cast<u32>(results.size());
  return aggregate(recorded, golden->cycles, golden->instructions, std::move(results),
                   wall_seconds);
}

}  // namespace rse::campaign
