#include "campaign/outcome.hpp"

namespace rse::campaign {

const char* to_string(Outcome outcome) {
  switch (outcome) {
    case Outcome::kMasked: return "masked";
    case Outcome::kDetectedIcm: return "detected_icm";
    case Outcome::kDetectedDdt: return "detected_ddt";
    case Outcome::kDetectedCfc: return "detected_cfc";
    case Outcome::kDetectedSelfCheck: return "detected_selfcheck";
    case Outcome::kSdc: return "sdc";
    case Outcome::kCrash: return "crash";
    case Outcome::kHang: return "hang";
  }
  return "?";
}

bool parse_outcome(const std::string& name, Outcome* out) {
  for (unsigned o = 0; o < kNumOutcomes; ++o) {
    if (name == to_string(static_cast<Outcome>(o))) {
      *out = static_cast<Outcome>(o);
      return true;
    }
  }
  return false;
}

bool is_detected(Outcome outcome) {
  switch (outcome) {
    case Outcome::kDetectedIcm:
    case Outcome::kDetectedDdt:
    case Outcome::kDetectedCfc:
    case Outcome::kDetectedSelfCheck:
      return true;
    default:
      return false;
  }
}

Outcome classify(const RunEvidence& run, const GoldenRun& golden) {
  if (!run.finished) return Outcome::kHang;
  // Detection evidence, strongest attribution first.  Comparing against the
  // golden counts (not zero) keeps a workload whose baseline already trips a
  // detector from classifying every faulty run as detected.
  if (run.icm_mismatches > golden.icm_mismatches) return Outcome::kDetectedIcm;
  if (run.cfc_violations > golden.cfc_violations) return Outcome::kDetectedCfc;
  if (run.selfcheck_trips > golden.selfcheck_trips) return Outcome::kDetectedSelfCheck;
  if (run.ddt_footprint_violations > golden.ddt_footprint_violations) {
    return Outcome::kDetectedDdt;  // static-footprint detection (--static-ddt)
  }
  if (run.recoveries > golden.os_recoveries) return Outcome::kDetectedDdt;
  if (run.crashes > 0 || run.illegal_traps > 0 || run.exit_code == 139) return Outcome::kCrash;
  if (run.output != golden.output || run.exit_code != golden.exit_code) return Outcome::kSdc;
  return Outcome::kMasked;
}

}  // namespace rse::campaign
