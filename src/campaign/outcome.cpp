#include "campaign/outcome.hpp"

namespace rse::campaign {

const char* to_string(Outcome outcome) {
  switch (outcome) {
    case Outcome::kMasked: return "masked";
    case Outcome::kDetectedIcm: return "detected_icm";
    case Outcome::kDetectedDdt: return "detected_ddt";
    case Outcome::kDetectedCfc: return "detected_cfc";
    case Outcome::kDetectedSelfCheck: return "detected_selfcheck";
    case Outcome::kSdc: return "sdc";
    case Outcome::kCrash: return "crash";
    case Outcome::kHang: return "hang";
    case Outcome::kDetectedDme: return "detected_dme";
  }
  return "?";
}

bool parse_outcome(const std::string& name, Outcome* out) {
  for (unsigned o = 0; o < kNumOutcomes; ++o) {
    if (name == to_string(static_cast<Outcome>(o))) {
      *out = static_cast<Outcome>(o);
      return true;
    }
  }
  return false;
}

bool is_detected(Outcome outcome) {
  switch (outcome) {
    case Outcome::kDetectedIcm:
    case Outcome::kDetectedDdt:
    case Outcome::kDetectedCfc:
    case Outcome::kDetectedSelfCheck:
    case Outcome::kDetectedDme:
      return true;
    default:
      return false;
  }
}

Outcome classify(const RunEvidence& run, const GoldenRun& golden) {
  if (!run.finished) return Outcome::kHang;
  // Detection evidence, strongest attribution first.  Comparing against the
  // golden counts (not zero) keeps a workload whose baseline already trips a
  // detector from classifying every faulty run as detected.
  if (run.icm_mismatches > golden.icm_mismatches) return Outcome::kDetectedIcm;
  if (run.cfc_violations > golden.cfc_violations) return Outcome::kDetectedCfc;
  if (run.selfcheck_trips > golden.selfcheck_trips) return Outcome::kDetectedSelfCheck;
  if (run.ddt_footprint_violations > golden.ddt_footprint_violations) {
    return Outcome::kDetectedDdt;  // static-footprint detection (--static-ddt)
  }
  if (run.recoveries > golden.os_recoveries) return Outcome::kDetectedDdt;
  // DME trace divergence (--dme).  The golden baseline may itself diverge
  // (layout-dependent timing, e.g. sys_clock values): a faulty run counts as
  // detected only when it diverges *and* the baseline did not, or when it
  // diverges strictly earlier in the canonical stream than the baseline did.
  // Checked before kCrash — a wild write that corrupts the trace and then
  // crashes was caught by the trace diff first (the checker only charges
  // mismatches observed before the crash; see TraceChecker::finish_clean).
  if (run.dme_divergences > golden.dme_divergences ||
      (run.dme_divergences > 0 && golden.dme_divergences > 0 &&
       run.dme_first_divergence < golden.dme_first_divergence)) {
    return Outcome::kDetectedDme;
  }
  if (run.crashes > 0 || run.illegal_traps > 0 || run.exit_code == 139) return Outcome::kCrash;
  if (run.output != golden.output || run.exit_code != golden.exit_code) return Outcome::kSdc;
  return Outcome::kMasked;
}

}  // namespace rse::campaign
