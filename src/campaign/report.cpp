#include "campaign/report.hpp"

#include <iomanip>
#include <sstream>

#include "campaign/stats.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

namespace rse::campaign {

u32 CampaignReport::detected() const {
  u32 n = 0;
  for (unsigned o = 0; o < kNumOutcomes; ++o) {
    if (is_detected(static_cast<Outcome>(o))) n += by_outcome[o];
  }
  return n;
}

u32 CampaignReport::unmasked() const {
  return static_cast<u32>(results.size()) - by_outcome[static_cast<unsigned>(Outcome::kMasked)];
}

double CampaignReport::coverage() const {
  const u32 base = unmasked();
  return base == 0 ? 0.0 : static_cast<double>(detected()) / base;
}

double CampaignReport::sdc_rate() const {
  return results.empty() ? 0.0
                         : static_cast<double>(by_outcome[static_cast<unsigned>(Outcome::kSdc)]) /
                               results.size();
}

CampaignReport aggregate(const CampaignSpec& spec, Cycle golden_cycles,
                         u64 golden_instructions, std::vector<RunResult> results,
                         double wall_seconds) {
  CampaignReport report;
  report.spec = spec;
  report.golden_cycles = golden_cycles;
  report.golden_instructions = golden_instructions;
  report.results = std::move(results);
  for (const RunResult& r : report.results) {
    const auto target = static_cast<unsigned>(r.record.target);
    const auto outcome = static_cast<unsigned>(r.outcome);
    ++report.by_outcome[outcome];
    ++report.by_target_outcome[target][outcome];
    ++report.by_target_runs[target];
    if (r.fault_applied) ++report.faults_applied;
  }
  report.wall_seconds = wall_seconds;
  report.runs_per_second =
      wall_seconds > 0 ? static_cast<double>(report.results.size()) / wall_seconds : 0.0;
  return report;
}

std::string summary_text(const CampaignReport& report) {
  std::ostringstream os;
  os << "campaign: workload=" << report.spec.workload << " runs=" << report.results.size()
     << " seed=" << report.spec.seed << " jobs=" << report.spec.jobs
     << " golden_cycles=" << report.golden_cycles << "\n";

  const u32 total_runs = static_cast<u32>(report.results.size());
  auto fmt_ci = [](const WilsonInterval& ci) {
    std::string s = "[";
    s += report::fmt_pct(ci.low);
    s += ", ";
    s += report::fmt_pct(ci.high);
    s += "]";
    return s;
  };
  report::Table outcomes({"outcome", "runs", "share", "95% CI"});
  for (unsigned o = 0; o < kNumOutcomes; ++o) {
    const u32 n = report.by_outcome[o];
    outcomes.row({to_string(static_cast<Outcome>(o)), std::to_string(n),
                  report::fmt_pct(report.results.empty()
                                      ? 0.0
                                      : static_cast<double>(n) / report.results.size()),
                  fmt_ci(wilson_interval(n, total_runs))});
  }
  outcomes.print(os);

  report::Table targets({"target", "runs", "masked", "detected", "sdc", "crash", "hang",
                         "coverage"});
  for (unsigned t = 0; t < kNumInjectTargets; ++t) {
    const auto& row = report.by_target_outcome[t];
    u32 det = 0;
    for (unsigned o = 0; o < kNumOutcomes; ++o) {
      if (is_detected(static_cast<Outcome>(o))) det += row[o];
    }
    const u32 runs = report.by_target_runs[t];
    const u32 masked = row[static_cast<unsigned>(Outcome::kMasked)];
    const u32 unmasked = runs - masked;
    targets.row({to_string(static_cast<InjectTarget>(t)), std::to_string(runs),
                 std::to_string(masked), std::to_string(det),
                 std::to_string(row[static_cast<unsigned>(Outcome::kSdc)]),
                 std::to_string(row[static_cast<unsigned>(Outcome::kCrash)]),
                 std::to_string(row[static_cast<unsigned>(Outcome::kHang)]),
                 unmasked == 0 ? "-" : report::fmt_pct(static_cast<double>(det) / unmasked)});
  }
  targets.print(os);

  // Per-module detection coverage: which detector caught the unmasked faults.
  report::Table modules({"detector", "detections", "share of unmasked"});
  const u32 unmasked = report.unmasked();
  auto module_row = [&](const char* name, Outcome outcome) {
    const u32 n = report.by_outcome[static_cast<unsigned>(outcome)];
    modules.row({name, std::to_string(n),
                 unmasked == 0 ? "-" : report::fmt_pct(static_cast<double>(n) / unmasked)});
  };
  module_row("ICM", Outcome::kDetectedIcm);
  module_row("CFC", Outcome::kDetectedCfc);
  module_row("DDT", Outcome::kDetectedDdt);
  module_row("self-check", Outcome::kDetectedSelfCheck);
  // Always printed — zero rows included — so detect/miss golden matrices
  // diff cleanly across campaigns with and without --dme.
  module_row("DME", Outcome::kDetectedDme);
  modules.print(os);

  os << "detection coverage (detected/unmasked): " << report::fmt_pct(report.coverage())
     << " 95% CI " << fmt_ci(wilson_interval(report.detected(), report.unmasked()))
     << "   SDC rate: " << report::fmt_pct(report.sdc_rate()) << " 95% CI "
     << fmt_ci(wilson_interval(report.by_outcome[static_cast<unsigned>(Outcome::kSdc)],
                               total_runs))
     << "\n";
  os << "throughput: " << report::fmt_fixed(report.runs_per_second, 1) << " runs/sec ("
     << report::fmt_fixed(report.wall_seconds, 2) << " s wall clock)\n";
  return os.str();
}

namespace {

/// DDT-mode digest token.  Context depth 0 keeps the historical
/// "static-ddt-summary" spelling byte-for-byte (so `--context-depth 0`
/// reproduces the pre-context digests exactly); depth > 0 appends a
/// "-ctx<depth>" suffix so goldens and digests never leak across depths.
/// Flat mode ignores the depth (the analyzer does too).  Field-sensitive
/// mode (the default) appends "-field" to every static-ddt family so the
/// residue-page and dense-hull domains never share goldens or digests;
/// `--no-field-sensitive` reproduces the pre-field tokens byte-for-byte.
std::string ddt_mode_token(const CampaignSpec& spec) {
  if (!spec.static_ddt) return "dynamic-ddt";
  const std::string field = spec.field_sensitive ? "-field" : "";
  if (!spec.footprint_summaries) return "static-ddt-flat" + field;
  if (spec.context_depth == 0) return "static-ddt-summary" + field;
  return "static-ddt-summary-ctx" + std::to_string(spec.context_depth) + field;
}

std::string fmt_fraction(double value) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(4) << value;
  return os.str();
}

/// Digest tokens for the modes that change the *executed run set* — and only
/// those.  A non-default injection window redraws every injection cycle and
/// CI refinement appends runs, so both must key the digest.  Execution
/// strategy knobs (snapshot_fork/snapshot_buckets, shard_index/shard_count,
/// jobs, fast_forward) are deliberately absent: they change how runs are
/// simulated, never which runs exist or how they classify, and the
/// shard-merge / checkpoint-fork determinism tests assert exactly that.
/// Both tokens are empty at their defaults so historical digests are
/// preserved byte-for-byte (same pattern as ddt_mode_token's depth-0 form).
std::string run_set_tokens(const CampaignSpec& spec) {
  std::string tokens;
  if (spec.window_lo != 0.0 || spec.window_hi != 1.0) {
    tokens += "|window" + fmt_fraction(spec.window_lo) + "-" + fmt_fraction(spec.window_hi);
  }
  if (spec.ci_threshold > 0.0) {
    tokens += "|ci-refine" + fmt_fraction(spec.ci_threshold);
  }
  // DME changes both the executed variant (randomized layout under seed A)
  // and the classification evidence (trace diffs against seed B), so the
  // seed pair keys the digest.  Empty at the default (--dme off).
  if (spec.dme) {
    tokens += "|dme" + std::to_string(spec.dme_seed_a) + "-" + std::to_string(spec.dme_seed_b);
  }
  return tokens;
}

}  // namespace

std::string deterministic_digest(const CampaignReport& report) {
  std::ostringstream os;
  os << report.spec.workload << '|' << report.spec.seed << '|' << report.results.size() << '|'
     << report.golden_cycles << '|' << report.faults_applied << '|'
     << (report.spec.static_cfc ? "static-cfc" : "range-cfc") << '|'
     << ddt_mode_token(report.spec) << run_set_tokens(report.spec) << '\n';
  for (unsigned o = 0; o < kNumOutcomes; ++o) {
    os << to_string(static_cast<Outcome>(o)) << '=' << report.by_outcome[o] << '\n';
  }
  for (const RunResult& r : report.results) {
    // No per-run cycle count here: the classified outcome is mode-invariant
    // but the faulty run's length is microarchitectural timing, which
    // legitimately differs under --fast-forward (cold caches/predictor after
    // the transplant).  Cycle counts stay in the CSV/JSON exports.
    os << r.record.run_index << ':' << to_string(r.record.target) << ':'
       << r.record.inject_cycle << ':' << to_string(r.outcome) << '\n';
  }
  return os.str();
}

std::string to_json(const CampaignReport& report) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"workload\": \"" << report.spec.workload << "\",\n";
  os << "  \"runs\": " << report.results.size() << ",\n";
  os << "  \"seed\": " << report.spec.seed << ",\n";
  os << "  \"jobs\": " << report.spec.jobs << ",\n";
  os << "  \"static_cfc\": " << (report.spec.static_cfc ? "true" : "false") << ",\n";
  os << "  \"static_ddt\": " << (report.spec.static_ddt ? "true" : "false") << ",\n";
  os << "  \"footprint_summaries\": " << (report.spec.footprint_summaries ? "true" : "false")
     << ",\n";
  os << "  \"context_depth\": " << report.spec.context_depth << ",\n";
  os << "  \"field_sensitive\": " << (report.spec.field_sensitive ? "true" : "false") << ",\n";
  os << "  \"fast_forward\": " << (report.spec.fast_forward ? "true" : "false") << ",\n";
  os << "  \"snapshot_fork\": " << (report.spec.snapshot_fork ? "true" : "false") << ",\n";
  os << "  \"snapshot_buckets\": " << report.spec.snapshot_buckets << ",\n";
  os << "  \"dme\": " << (report.spec.dme ? "true" : "false") << ",\n";
  os << "  \"dme_seed_a\": " << report.spec.dme_seed_a << ",\n";
  os << "  \"dme_seed_b\": " << report.spec.dme_seed_b << ",\n";
  os << "  \"shard_index\": " << report.spec.shard_index << ",\n";
  os << "  \"shard_count\": " << report.spec.shard_count << ",\n";
  os << "  \"ci_threshold\": " << fmt_fraction(report.spec.ci_threshold) << ",\n";
  os << "  \"window_lo\": " << fmt_fraction(report.spec.window_lo) << ",\n";
  os << "  \"window_hi\": " << fmt_fraction(report.spec.window_hi) << ",\n";
  os << "  \"golden_cycles\": " << report.golden_cycles << ",\n";
  os << "  \"golden_instructions\": " << report.golden_instructions << ",\n";
  os << "  \"faults_applied\": " << report.faults_applied << ",\n";
  os << "  \"outcomes\": {";
  for (unsigned o = 0; o < kNumOutcomes; ++o) {
    os << (o ? ", " : "") << '"' << to_string(static_cast<Outcome>(o))
       << "\": " << report.by_outcome[o];
  }
  os << "},\n";
  os << "  \"by_target\": {";
  for (unsigned t = 0; t < kNumInjectTargets; ++t) {
    os << (t ? ", " : "") << '"' << to_string(static_cast<InjectTarget>(t)) << "\": {";
    for (unsigned o = 0; o < kNumOutcomes; ++o) {
      os << (o ? ", " : "") << '"' << to_string(static_cast<Outcome>(o))
         << "\": " << report.by_target_outcome[t][o];
    }
    os << '}';
  }
  os << "},\n";
  os << "  \"outcome_ci\": {";
  for (unsigned o = 0; o < kNumOutcomes; ++o) {
    const WilsonInterval ci =
        wilson_interval(report.by_outcome[o], static_cast<u32>(report.results.size()));
    os << (o ? ", " : "") << '"' << to_string(static_cast<Outcome>(o)) << "\": ["
       << fmt_fraction(ci.low) << ", " << fmt_fraction(ci.high) << ']';
  }
  os << "},\n";
  os << "  \"detected\": " << report.detected() << ",\n";
  os << "  \"unmasked\": " << report.unmasked() << ",\n";
  {
    const WilsonInterval ci = wilson_interval(report.detected(), report.unmasked());
    os << "  \"coverage_ci\": [" << fmt_fraction(ci.low) << ", " << fmt_fraction(ci.high)
       << "],\n";
  }
  os << std::fixed << std::setprecision(6);
  os << "  \"coverage\": " << report.coverage() << ",\n";
  os << "  \"sdc_rate\": " << report.sdc_rate() << ",\n";
  os << "  \"wall_seconds\": " << report.wall_seconds << ",\n";
  os << "  \"runs_per_second\": " << report.runs_per_second << "\n";
  os << "}\n";
  return os.str();
}

bool write_runs_csv(const CampaignReport& report, const std::string& path) {
  report::CsvWriter csv(path, {"run", "target", "inject_cycle", "reg", "bit", "addr", "mask",
                               "ioq_slot", "config_kind", "applied", "outcome", "cycles"});
  for (const RunResult& r : report.results) {
    std::ostringstream addr, mask;
    addr << "0x" << std::hex << r.record.addr;
    mask << "0x" << std::hex << r.record.mask;
    csv.row({std::to_string(r.record.run_index), to_string(r.record.target),
             std::to_string(r.record.inject_cycle), std::to_string(r.record.reg),
             std::to_string(r.record.bit), addr.str(), mask.str(),
             std::to_string(r.record.ioq_slot),
             r.record.target == InjectTarget::kConfigBit
                 ? (r.record.config_kind == ConfigFaultKind::kIoqStuck ? "ioq" : "module")
                 : "",
             r.fault_applied ? "1" : "0", to_string(r.outcome), std::to_string(r.cycles)});
  }
  return csv.flush();
}

}  // namespace rse::campaign
