// Outcome taxonomy for fault-injection runs (the coverage buckets of the
// paper's section 5 evaluation, extended with the CFC and self-check paths).
//
// Classification diffs one faulty run's architectural results and framework
// statistics against the golden run.  Detection takes precedence over the
// final program result — a run whose fault was flagged by a module counts as
// detected even if recovery could not repair the output — matching how
// detector-coverage studies bucket runs.  The if/else chain guarantees every
// run lands in exactly one bucket.
#pragma once

#include <array>
#include <string>

#include "campaign/golden.hpp"
#include "isa/instruction.hpp"

namespace rse::campaign {

enum class Outcome : u8 {
  kMasked = 0,            // correct output, no detector fired
  kDetectedIcm = 1,       // ICM binary-compare mismatch
  kDetectedDdt = 2,       // crash contained by DDT dependency-driven recovery
  kDetectedCfc = 3,       // control-flow checker violation
  kDetectedSelfCheck = 4, // framework self-check decoupled (config faults)
  kSdc = 5,               // silent data corruption: wrong output, no detection
  kCrash = 6,             // abnormal termination without module detection
  kHang = 7,              // exceeded the cycle budget (watchdog)
  kDetectedDme = 8,       // canonical-trace divergence between MLR variants
};
inline constexpr unsigned kNumOutcomes = 9;

const char* to_string(Outcome outcome);
/// Parse an outcome name as written by to_string ("masked", "sdc", ...);
/// returns false on an unknown name.
bool parse_outcome(const std::string& name, Outcome* out);
bool is_detected(Outcome outcome);

/// Evidence collected from one faulty run after it finished (or its cycle
/// budget expired).
struct RunEvidence {
  bool finished = false;
  std::string output;
  int exit_code = 0;
  u64 icm_mismatches = 0;
  u64 cfc_violations = 0;
  u64 selfcheck_trips = 0;
  u64 recoveries = 0;  // DDT-driven thread-recovery invocations
  u64 ddt_footprint_violations = 0;  // static-footprint detections (--static-ddt)
  u64 crashes = 0;     // thread crashes (illegal instruction, kCrash, CFC kill)
  u64 illegal_traps = 0;
  /// DME (rse/dme.hpp, --dme campaigns): 0 or 1 — whether this run's
  /// canonical trace diverged from the reference variant's — plus the
  /// trace position of the first mismatched record (~0 when convergent).
  u64 dme_divergences = 0;
  u64 dme_first_divergence = ~u64{0};
};

Outcome classify(const RunEvidence& run, const GoldenRun& golden);

}  // namespace rse::campaign
