// Campaign workload registry: named, fully configured guest programs that a
// fault-injection campaign can target.  Each setup bundles the instrumented
// assembly source with the machine/OS configuration and the modules the
// loader enables host-side, so golden and faulty runs are built identically.
#pragma once

#include <string>
#include <vector>

#include "isa/instruction.hpp"
#include "os/guest_os.hpp"
#include "os/machine.hpp"

namespace rse::campaign {

struct WorkloadSetup {
  std::string name;
  std::string source;  // assembly, already CHECK-instrumented
  os::MachineConfig machine;
  os::OsConfig os;
  std::vector<isa::ModuleId> host_enables;  // enabled after load (as a loader would)
};

/// Build a named workload.  Known names: "loop" (small checked loop,
/// thousands of cycles — the unit-test workhorse), "calls" (call/return
/// dominated leaf functions — the static-CFC showcase), "kmeans"
/// (reduced-size clustering, the campaign default), "kmeans-large"
/// (paper-sized kMeans), "server" (multithreaded network server with DDT
/// tracking).
/// Throws ConfigError on an unknown name.
WorkloadSetup make_workload(const std::string& name);

std::vector<std::string> workload_names();

}  // namespace rse::campaign
