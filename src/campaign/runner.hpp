// Parallel fault-injection campaign engine.
//
// The runner fans independent Machine simulations out across std::thread
// workers.  Work distribution is a single atomic run-index counter and each
// run writes into its own preallocated result slot, so the hot path takes no
// locks and the aggregate report is identical for any --jobs value: every
// simulation is hermetic (its own Machine/GuestOs), its fault comes from the
// deterministic InjectionPlan, and aggregation happens in index order after
// the workers join.
//
// A hang watchdog bounds every faulty run at hang_factor x the golden run's
// cycle count; runs that exceed it classify as kHang.
#pragma once

#include "campaign/golden.hpp"
#include "campaign/injection.hpp"
#include "campaign/report.hpp"
#include "exec/fast_forward.hpp"

namespace rse::campaign {

class CampaignRunner {
 public:
  /// `cache` lets several campaigns share golden runs; pass nullptr to use a
  /// runner-private cache.
  explicit CampaignRunner(GoldenCache* cache = nullptr);

  /// Execute a whole campaign: golden run (cached), plan, parallel fan-out,
  /// classification, aggregation.
  CampaignReport run(const CampaignSpec& spec);

  /// Reproduce a single run in isolation (tests, debugging a campaign hit)
  /// with the default hang budget.
  RunResult run_one(const WorkloadSetup& setup, const GoldenRun& golden,
                    const InjectionRecord& record) const;

  RunResult run_one_with_budget(const WorkloadSetup& setup, const GoldenRun& golden,
                                const InjectionRecord& record, Cycle budget) const;

  /// Fast-forward variant: the fault-free prefix runs through the exec/ fast
  /// engine and is transplanted into the cycle-accurate core at the
  /// injection cycle.  Only register-target records with a boundary entry
  /// take the fast path; everything else (memory/config faults, records past
  /// the fault-free run's end, fast-mode bails) falls back to the classic
  /// run_one_with_budget — so the classified outcome is always the classic
  /// one (docs/execution.md).
  RunResult run_one_fast_forward(const WorkloadSetup& setup, const GoldenRun& golden,
                                 const InjectionRecord& record, Cycle budget,
                                 const exec::FastForwardController::BoundaryMap& boundaries) const;

  /// The plan a spec expands to (exposed for tests and --describe).
  InjectionPlan plan_for(const CampaignSpec& spec, const GoldenRun& golden,
                         const WorkloadSetup& setup) const;

  GoldenCache& cache() { return *cache_; }

 private:
  Cycle budget_for(const GoldenRun& golden, double hang_factor) const;
  bool apply_fault(os::Machine& machine, const InjectionRecord& record) const;

  GoldenCache own_cache_;
  GoldenCache* cache_;
};

}  // namespace rse::campaign
