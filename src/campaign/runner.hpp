// Parallel fault-injection campaign engine.
//
// The runner fans independent Machine simulations out across std::thread
// workers.  Work distribution is a single atomic run-index counter and each
// run writes into its own preallocated result slot, so the hot path takes no
// locks and the aggregate report is identical for any --jobs value: every
// simulation is hermetic (its own Machine/GuestOs), its fault comes from the
// deterministic InjectionPlan, and aggregation happens in index order after
// the workers join.
//
// A hang watchdog bounds every faulty run at hang_factor x the golden run's
// cycle count; runs that exceed it classify as kHang.
#pragma once

#include <atomic>

#include "campaign/golden.hpp"
#include "campaign/injection.hpp"
#include "campaign/report.hpp"
#include "exec/fast_forward.hpp"
#include "os/snapshot.hpp"
#include "rse/dme.hpp"

namespace rse::campaign {

/// One whole-machine snapshot per injection-cycle bucket, in increasing `at`
/// order.  A chain built from a single from-reset pass is bit-exact (`exact`):
/// restoring any snapshot reproduces the classic run's machine state at that
/// cycle precisely, so runs of *every* fault target may fork from it.  A
/// chain built through fast-forward transplants is not microarchitecturally
/// exact; forking from it is restricted to register-bit faults — the same
/// restriction run_one_fast_forward enforces.
struct SnapshotChain {
  std::vector<os::MachineSnapshot> snaps;
  bool exact = true;
};

/// Fallback accounting for the fast-forward path, aggregated over one run()
/// call (reset at campaign start).  Purely observational — the classified
/// outcomes and the deterministic digest never depend on which path a run
/// took — but it answers "why wasn't this campaign faster?" precisely.
struct FastForwardStats {
  u64 fast = 0;               // prefixes that ran on the fast engine
  u64 fallback_target = 0;    // ineligible fault target (config faults)
  u64 fallback_unmapped = 0;  // no boundary: golden finished before the cycle,
                              // or a CI-refinement index past the mapped plan
  u64 fallback_conflict = 0;  // memory-word fault overlapped in-flight state
  u64 fallback_checked = 0;   // instr-word fault on an ICM-checked instruction
  u64 fallback_syscall = 0;   // un-executed, non-resumable syscall in prefix
  u64 fallback_suspend = 0;   // post-syscall suspend fast mode couldn't resume
  u64 fallback_illegal = 0;   // illegal word or host trap in the prefix
  u64 fallback_other = 0;     // early exit / boundary position mismatch

  u64 fallbacks() const {
    return fallback_target + fallback_unmapped + fallback_conflict + fallback_checked +
           fallback_syscall + fallback_suspend + fallback_illegal + fallback_other;
  }
};

class CampaignRunner {
 public:
  /// `cache` lets several campaigns share golden runs; pass nullptr to use a
  /// runner-private cache.
  explicit CampaignRunner(GoldenCache* cache = nullptr);

  /// Execute a whole campaign: golden run (cached), plan, parallel fan-out,
  /// classification, aggregation.
  CampaignReport run(const CampaignSpec& spec);

  /// Reproduce a single run in isolation (tests, debugging a campaign hit)
  /// with the default hang budget.  A non-null `dme_reference` streams the
  /// run's canonical committed-instruction trace (rse/dme.hpp) against the
  /// reference variant and fills RunEvidence::dme_divergences; the caller is
  /// responsible for recording the reference and for a golden whose DME
  /// baseline fields reflect the fault-free comparison.
  RunResult run_one(const WorkloadSetup& setup, const GoldenRun& golden,
                    const InjectionRecord& record,
                    const dme::CanonicalTrace* dme_reference = nullptr) const;

  RunResult run_one_with_budget(const WorkloadSetup& setup, const GoldenRun& golden,
                                const InjectionRecord& record, Cycle budget,
                                const dme::CanonicalTrace* dme_reference = nullptr) const;

  /// Fast-forward variant: the fault-free prefix runs through the exec/ fast
  /// engine and is transplanted into the cycle-accurate core at the
  /// injection cycle.  Register-bit records and instruction-/data-word
  /// records whose boundary reports no in-flight overlap take the fast path
  /// (the fault itself is applied after the transplant, exactly where the
  /// classic loop applies it); a non-null `schedule` additionally lets the
  /// prefix bail-and-resume through non-whitelisted syscalls.  Everything
  /// else (config faults, records past the fault-free run's end, in-flight
  /// conflicts, fast-mode bails) falls back to the classic
  /// run_one_with_budget — so the classified outcome is always the classic
  /// one (docs/execution.md).
  RunResult run_one_fast_forward(const WorkloadSetup& setup, const GoldenRun& golden,
                                 const InjectionRecord& record, Cycle budget,
                                 const exec::FastForwardController::BoundaryMap& boundaries,
                                 const exec::FastForwardController::SyscallSchedule* schedule =
                                     nullptr,
                                 const dme::CanonicalTrace* dme_reference = nullptr) const;

  /// Fast-forward fallback accounting for the most recent run() (or the
  /// run_one_fast_forward calls since then).  Not part of any digest.
  FastForwardStats fast_forward_stats() const;

  /// Checkpoint-fork variant: restore the latest chain snapshot at or before
  /// the injection cycle into a fresh machine/guest pair, then replicate the
  /// classic stepping loop from there — only the post-snapshot suffix is
  /// simulated.  Records with no eligible snapshot (inexact chain + non-
  /// register target, or empty chain) fall back to run_one_with_budget, so
  /// classified outcomes are always the classic ones.
  RunResult run_one_forked(const WorkloadSetup& setup, const GoldenRun& golden,
                           const InjectionRecord& record, Cycle budget,
                           const SnapshotChain& chain) const;

  /// Build the per-bucket snapshot chain for a spec: bucket boundaries are
  /// golden.cycles * b / snapshot_buckets.  With `use_fast_forward`, each
  /// boundary's prefix runs through the exec/ fast engine (chain.exact =
  /// false); otherwise one from-reset cycle-accurate pass captures every
  /// boundary (bit-exact).  Each capture steps past its boundary to the next
  /// quiescent cycle (os::MachineSnapshot::quiescent).
  SnapshotChain build_snapshot_chain(const WorkloadSetup& setup, const GoldenRun& golden,
                                     const CampaignSpec& spec, Cycle budget,
                                     bool use_fast_forward) const;

  /// The plan a spec expands to (exposed for tests and --describe).
  InjectionPlan plan_for(const CampaignSpec& spec, const GoldenRun& golden,
                         const WorkloadSetup& setup) const;

  GoldenCache& cache() { return *cache_; }

 private:
  Cycle budget_for(const GoldenRun& golden, double hang_factor) const;
  bool apply_fault(os::Machine& machine, const InjectionRecord& record) const;
  void reset_fast_forward_stats() const;

  GoldenCache own_cache_;
  GoldenCache* cache_;

  // Workers increment concurrently; relaxed atomics, snapshot via
  // fast_forward_stats().
  struct AtomicFfStats {
    std::atomic<u64> fast{0};
    std::atomic<u64> fallback_target{0};
    std::atomic<u64> fallback_unmapped{0};
    std::atomic<u64> fallback_conflict{0};
    std::atomic<u64> fallback_checked{0};
    std::atomic<u64> fallback_syscall{0};
    std::atomic<u64> fallback_suspend{0};
    std::atomic<u64> fallback_illegal{0};
    std::atomic<u64> fallback_other{0};
  };
  mutable AtomicFfStats ff_accum_;
};

}  // namespace rse::campaign
