#include "campaign/stats.hpp"

#include <cmath>

namespace rse::campaign {

WilsonInterval wilson_interval(u32 hits, u32 total, double z) {
  WilsonInterval interval;
  if (total == 0) return interval;  // vacuous [0, 1]
  const double n = static_cast<double>(total);
  const double p = static_cast<double>(hits) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  interval.center = center;
  interval.low = center - half;
  interval.high = center + half;
  if (interval.low < 0.0) interval.low = 0.0;
  if (interval.high > 1.0) interval.high = 1.0;
  return interval;
}

bool straddles(const WilsonInterval& interval, double threshold) {
  return interval.low < threshold && threshold < interval.high;
}

std::vector<unsigned> strata_needing_refinement(
    const std::array<u32, kNumOutcomes>& by_outcome, u32 total, double threshold,
    double z) {
  std::vector<unsigned> strata;
  for (unsigned o = 0; o < kNumOutcomes; ++o) {
    if (straddles(wilson_interval(by_outcome[o], total, z), threshold)) {
      strata.push_back(o);
    }
  }
  return strata;
}

}  // namespace rse::campaign
