// Deterministic fault-injection planning (paper section 5 methodology).
//
// A campaign is a set of independent runs, each perturbing one golden
// simulation with a single fault.  Every run's injection point is a pure
// function of (campaign_seed, run_index) over the workload's injection
// space, so any individual run — including one observed inside a parallel
// campaign — can be reproduced in isolation from those two numbers alone.
//
// Target classes follow the SimpleScalar-style error-injection studies the
// paper builds on: architectural register bits, instruction words in text,
// data words, and framework/module configuration state (IOQ latch stuck-at
// bits and Table 2 module behavioural faults).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "isa/instruction.hpp"
#include "rse/ioq.hpp"
#include "rse/module.hpp"

namespace rse::campaign {

enum class InjectTarget : u8 {
  kRegisterBit = 0,     // flip one bit of an architectural register
  kInstructionWord = 1, // flip bits of one text word in main memory
  kDataWord = 2,        // flip one bit of a data-segment word
  kConfigBit = 3,       // framework state: IOQ stuck-at or module fault mode
};
inline constexpr unsigned kNumInjectTargets = 4;

const char* to_string(InjectTarget target);
/// Parse a target name ("reg", "instr", "data", "config"); returns false on
/// an unknown name.
bool parse_target(const std::string& name, InjectTarget* out);

/// How a kConfigBit fault manifests inside the framework.
enum class ConfigFaultKind : u8 {
  kIoqStuck,         // stuck-at on one IOQ entry's output bits (Table 2 row 4)
  kModuleBehaviour,  // module-level behavioural fault (Table 2 rows 1-3)
};

/// Pseudo register index for kRegisterBit faults that hit the next-PC latch
/// in the branch/address unit instead of a general-purpose register — the
/// corruption class the CFC module detects (the instruction binary stays
/// intact, so the ICM cannot).
inline constexpr u8 kPcPseudoReg = 32;

/// One fully specified fault: where, what, and when to inject.
struct InjectionRecord {
  u64 campaign_seed = 0;
  u32 run_index = 0;
  InjectTarget target = InjectTarget::kRegisterBit;
  Cycle inject_cycle = 0;

  // kRegisterBit
  u8 reg = 0;
  u8 bit = 0;

  // kInstructionWord / kDataWord
  Addr addr = 0;
  Word mask = 0;  // XOR mask applied to the word

  // kConfigBit
  ConfigFaultKind config_kind = ConfigFaultKind::kIoqStuck;
  u32 ioq_slot = 0;
  engine::IoqStuckFault ioq_fault = engine::IoqStuckFault::kNone;
  isa::ModuleId module = isa::ModuleId::kIcm;
  engine::ModuleFaultMode module_fault = engine::ModuleFaultMode::kNone;

  bool operator==(const InjectionRecord&) const = default;
};

/// Compact one-line description ("run 17: reg r9 bit 3 @ cycle 8211").
std::string describe(const InjectionRecord& record);

/// The sampling space of one workload, measured from its golden run.
struct InjectionSpace {
  Cycle cycles = 0;  // golden run length; injection cycles are drawn < this
  Addr text_base = 0;
  u32 text_words = 0;
  Addr data_base = 0;
  u32 data_words = 0;  // 0 = workload has no data segment (target redirects)
  u32 ioq_slots = 16;
  u32 num_regs = 32;
  std::vector<InjectTarget> targets;  // enabled target classes (non-empty)

  /// Injection-cycle window [window_lo, window_hi], inclusive.  0 means the
  /// default bound (1 and `cycles` respectively), which reproduces the
  /// historical full-range draw bit-for-bit: the default window consumes the
  /// RNG stream exactly like the pre-window code did.
  Cycle window_lo = 0;
  Cycle window_hi = 0;
};

class InjectionPlan {
 public:
  InjectionPlan(u64 campaign_seed, InjectionSpace space);

  /// The fault for one run.  Pure: same (seed, index) -> identical record.
  InjectionRecord record(u32 run_index) const;

  const InjectionSpace& space() const { return space_; }
  u64 campaign_seed() const { return seed_; }

 private:
  u64 seed_;
  InjectionSpace space_;
};

}  // namespace rse::campaign
