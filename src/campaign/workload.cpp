#include "campaign/workload.hpp"

#include "common/error.hpp"
#include "workloads/workloads.hpp"

namespace rse::campaign {

namespace {

// A deterministic checked compute loop with a data segment: sums and mixes a
// 64-word table for a few hundred iterations.  Small enough that a unit test
// can afford dozens of runs, but long enough (tens of thousands of cycles)
// that injection timing sampling is meaningful.
constexpr const char* kLoopProgram = R"(
.data
table:
  .space 256
.text
main:
  li t0, 0          # i
  li t3, 0          # checksum
  la t4, table
init:
  li t2, 64
  sll t5, t0, 2
  add t5, t5, t4
  addi t6, t0, 17
  sw t6, 0(t5)
  addi t0, t0, 1
  blt t0, t2, init
  li t0, 0          # outer trip count
outer:
  li t1, 0          # table index
inner:
  li t2, 64
  sll t5, t1, 2
  add t5, t5, t4
  lw t6, 0(t5)
  add t3, t3, t6
  sll t6, t6, 1
  xor t6, t6, t3
  sw t6, 0(t5)
  addi t1, t1, 1
  blt t1, t2, inner
  li t2, 16
  addi t0, t0, 1
  blt t0, t2, outer
  move a0, t3
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
)";

// Call/return-dominated compute: every loop trip makes three calls that
// return with `jr ra`.  The workload where the static CFC successor table
// (docs/analysis.md) separates from the range-check baseline — a corrupted
// return target that stays inside text passes the range check but misses
// the statically inferred return-site set.  It also separates the
// interprocedural footprint from the flat one: the table pointer in t2 is
// live across the calls (none of the callees touch it), so the indexed
// store and `accum`'s pointer-parameter accesses only resolve when the call
// fall-through keeps registers the callee summaries prove preserved.
constexpr const char* kCallsProgram = R"(
.data
table: .space 256

.text
main:
  li s0, 0          # i
  li s1, 0          # acc
  la t2, table
trip:
  li t0, 40
  bge s0, t0, done
  move a0, s0
  jal square
  add s1, s1, v1
  move a0, s1
  jal mix
  move s1, v1
  andi t3, s0, 63
  sll t3, t3, 2
  add t3, t3, t2
  sw s1, 0(t3)
  move a0, t3
  move a1, s0
  jal accum
  add s1, s1, v1
  addi s0, s0, 1
  b trip
done:
  move a0, s1
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall

square:
  mul v1, a0, a0
  addi v1, v1, 3
  jr ra

mix:
  sll t1, a0, 3
  xor v1, a0, t1
  srl t1, v1, 5
  add v1, v1, t1
  jr ra

accum:
  addi sp, sp, -8
  sw ra, 4(sp)
  sw a1, 0(sp)
  lw t1, 0(a0)
  lw t4, 0(sp)
  add v1, t1, t4
  lw ra, 4(sp)
  addi sp, sp, 8
  jr ra
)";

// Argument-pointer-heavy: a shared callee receives its buffer base through
// a0 and walks it with loads and stores.  One call site passes a global
// table, the other a stack-local scratch area.  The context-insensitive
// analyzer joins the two incoming pointers (global ⊔ stack = unknown) and
// must give up on every access in `fill`; context cloning resolves each
// call site exactly, so the DDT checks the callee's accesses against each
// site's own page set.  This is the workload where `--context-depth`
// separates from depth 0 in bench_ddt_static.
constexpr const char* kArgsProgram = R"(
.data
gbuf: .space 512
.text
main:
  li s0, 0          # trip count
trip:
  li t0, 30
  bge s0, t0, done
  la a0, gbuf       # global-buffer call site
  andi t1, s0, 7
  sll t1, t1, 2
  add a0, a0, t1
  li a1, 16
  jal fill
  addi a0, sp, -256 # stack-buffer call site
  li a1, 16
  jal fill
  addi s0, s0, 1
  b trip
done:
  la a0, gbuf
  lw a0, 0(a0)
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall

fill:               # a0 = buffer base, a1 = word count
  li t2, 0
floop:
  sll t3, t2, 2
  add t3, t3, a0
  lw t4, 0(t3)
  addi t4, t4, 1
  sw t4, 0(t3)
  addi t2, t2, 1
  blt t2, a1, floop
  jr ra
)";

WorkloadSetup base_setup(std::string name, std::string source) {
  WorkloadSetup w;
  w.name = std::move(name);
  w.source = workloads::instrument_checks(std::move(source));
  w.machine.framework_present = true;
  // Campaign workloads are short; the default 50k-cycle self-check watchdog
  // would outlast the hang budget of a small run.  None of them issue
  // blocking operations anywhere near this long.
  w.machine.selfcheck.watchdog_timeout = 5'000;
  w.host_enables = {isa::ModuleId::kCfc};
  return w;
}

}  // namespace

WorkloadSetup make_workload(const std::string& name) {
  if (name == "loop") {
    return base_setup(name, kLoopProgram);
  }
  if (name == "calls") {
    return base_setup(name, kCallsProgram);
  }
  if (name == "args") {
    WorkloadSetup w = base_setup(name, kArgsProgram);
    w.host_enables.push_back(isa::ModuleId::kDdt);
    return w;
  }
  if (name == "stride") {
    WorkloadSetup w = base_setup(name, workloads::stride_source({}));
    w.host_enables.push_back(isa::ModuleId::kDdt);
    return w;
  }
  if (name == "kmeans") {
    workloads::KMeansParams params;
    params.patterns = 40;
    params.clusters = 4;
    params.iters = 2;
    return base_setup(name, workloads::kmeans_source(params));
  }
  if (name == "kmeans-large") {
    return base_setup(name, workloads::kmeans_source({}));
  }
  // Security attack corpus (docs/security.md): guests that attack
  // themselves, each with a benign twin performing the same writes legally.
  if (name == "attack-stack") {
    return base_setup(name, workloads::stack_smash_source({}));
  }
  if (name == "benign-stack") {
    workloads::StackSmashParams params;
    params.payload_offset = 8;  // unused scratch slot instead of the saved ra
    return base_setup(name, workloads::stack_smash_source(params));
  }
  if (name == "attack-got") {
    return base_setup(name, workloads::got_overwrite_source({}));
  }
  if (name == "benign-got") {
    workloads::GotOverwriteParams params;
    params.wild = false;
    return base_setup(name, workloads::got_overwrite_source(params));
  }
  if (name == "attack-heap" || name == "benign-heap") {
    workloads::HeapSprayParams params;
    params.wild = name == "attack-heap";
    WorkloadSetup w = base_setup(name, workloads::heap_spray_source(params));
    // Small entropy keeps the wild store inside the arena for *every* MLR
    // seed — the scenario only DME can see (workloads.hpp).
    w.machine.mlr.entropy_pages = 4;
    return w;
  }
  if (name == "attack-chk") {
    return base_setup(name, workloads::chk_bypass_source({}));
  }
  if (name == "benign-chk") {
    workloads::ChkBypassParams params;
    params.bypass = false;
    params.hostile_patch = false;
    return base_setup(name, workloads::chk_bypass_source(params));
  }
  if (name == "server") {
    workloads::ServerParams params;
    params.threads = 4;
    params.compute_iters = 200;
    params.io_phases = 2;
    params.enable_ddt = true;
    WorkloadSetup w = base_setup(name, workloads::server_source(params));
    w.host_enables.push_back(isa::ModuleId::kDdt);
    return w;
  }
  throw ConfigError("unknown campaign workload: " + name);
}

std::vector<std::string> workload_names() {
  return {"loop",        "calls",      "args",       "stride",      "kmeans",
          "kmeans-large", "server",     "attack-stack", "benign-stack",
          "attack-got",   "benign-got", "attack-heap",  "benign-heap",
          "attack-chk",   "benign-chk"};
}

}  // namespace rse::campaign
