#include "campaign/shard.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace rse::campaign {

namespace {

constexpr const char* kHeader = "rse-shard-report v1";

/// max_digits10 round-trips every IEEE double exactly through decimal text.
std::string fmt_double(double v) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return os.str();
}

[[noreturn]] void malformed(const std::string& why) {
  throw SimError("shard report: " + why);
}

/// Consume one "key value..." line; throws when the key does not match.
std::istringstream expect_line(std::istream& in, const std::string& key) {
  std::string line;
  if (!std::getline(in, line)) malformed("truncated before '" + key + "'");
  std::istringstream ls(line);
  std::string got;
  ls >> got;
  if (got != key) malformed("expected '" + key + "', got '" + got + "'");
  return ls;
}

template <typename T>
T expect_value(std::istream& in, const std::string& key) {
  std::istringstream ls = expect_line(in, key);
  T value{};
  if (!(ls >> value)) malformed("unparsable value for '" + key + "'");
  return value;
}

}  // namespace

std::string shard_report_text(const CampaignReport& report) {
  const CampaignSpec& spec = report.spec;
  std::ostringstream os;
  os << kHeader << '\n';
  os << "workload " << spec.workload << '\n';
  os << "runs " << spec.runs << '\n';
  os << "seed " << spec.seed << '\n';
  os << "jobs " << spec.jobs << '\n';
  os << "hang_factor " << fmt_double(spec.hang_factor) << '\n';
  os << "static_cfc " << (spec.static_cfc ? 1 : 0) << '\n';
  os << "static_ddt " << (spec.static_ddt ? 1 : 0) << '\n';
  os << "footprint_summaries " << (spec.footprint_summaries ? 1 : 0) << '\n';
  os << "context_depth " << spec.context_depth << '\n';
  os << "field_sensitive " << (spec.field_sensitive ? 1 : 0) << '\n';
  os << "fast_forward " << (spec.fast_forward ? 1 : 0) << '\n';
  os << "snapshot_fork " << (spec.snapshot_fork ? 1 : 0) << '\n';
  os << "snapshot_buckets " << spec.snapshot_buckets << '\n';
  os << "dme " << (spec.dme ? 1 : 0) << '\n';
  os << "dme_seed_a " << spec.dme_seed_a << '\n';
  os << "dme_seed_b " << spec.dme_seed_b << '\n';
  os << "shard_index " << spec.shard_index << '\n';
  os << "shard_count " << spec.shard_count << '\n';
  os << "ci_threshold " << fmt_double(spec.ci_threshold) << '\n';
  os << "ci_batch " << spec.ci_batch << '\n';
  os << "ci_max_runs " << spec.ci_max_runs << '\n';
  os << "window_lo " << fmt_double(spec.window_lo) << '\n';
  os << "window_hi " << fmt_double(spec.window_hi) << '\n';
  os << "targets";
  for (InjectTarget target : spec.targets) os << ' ' << to_string(target);
  os << '\n';
  os << "golden_cycles " << report.golden_cycles << '\n';
  os << "golden_instructions " << report.golden_instructions << '\n';
  os << "wall_seconds " << fmt_double(report.wall_seconds) << '\n';
  for (const RunResult& result : report.results) {
    const InjectionRecord& r = result.record;
    os << "run " << r.run_index << ' ' << to_string(r.target) << ' ' << r.inject_cycle << ' '
       << static_cast<unsigned>(r.reg) << ' ' << static_cast<unsigned>(r.bit) << ' ' << r.addr
       << ' ' << r.mask << ' ' << static_cast<unsigned>(r.config_kind) << ' ' << r.ioq_slot
       << ' ' << static_cast<unsigned>(r.ioq_fault) << ' ' << static_cast<unsigned>(r.module)
       << ' ' << static_cast<unsigned>(r.module_fault) << ' ' << (result.fault_applied ? 1 : 0)
       << ' ' << to_string(result.outcome) << ' ' << result.cycles << '\n';
  }
  os << "end\n";
  return os.str();
}

CampaignReport parse_shard_report(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) malformed("missing header");

  CampaignSpec spec;
  {
    std::istringstream ls = expect_line(in, "workload");
    // Rest of line, so workload names are not constrained to one token.
    std::getline(ls >> std::ws, spec.workload);
    if (spec.workload.empty()) malformed("empty workload");
  }
  spec.runs = expect_value<u32>(in, "runs");
  spec.seed = expect_value<u64>(in, "seed");
  spec.jobs = expect_value<u32>(in, "jobs");
  spec.hang_factor = expect_value<double>(in, "hang_factor");
  spec.static_cfc = expect_value<int>(in, "static_cfc") != 0;
  spec.static_ddt = expect_value<int>(in, "static_ddt") != 0;
  spec.footprint_summaries = expect_value<int>(in, "footprint_summaries") != 0;
  spec.context_depth = expect_value<u32>(in, "context_depth");
  spec.field_sensitive = expect_value<int>(in, "field_sensitive") != 0;
  spec.fast_forward = expect_value<int>(in, "fast_forward") != 0;
  spec.snapshot_fork = expect_value<int>(in, "snapshot_fork") != 0;
  spec.snapshot_buckets = expect_value<u32>(in, "snapshot_buckets");
  spec.dme = expect_value<int>(in, "dme") != 0;
  spec.dme_seed_a = expect_value<u64>(in, "dme_seed_a");
  spec.dme_seed_b = expect_value<u64>(in, "dme_seed_b");
  spec.shard_index = expect_value<u32>(in, "shard_index");
  spec.shard_count = expect_value<u32>(in, "shard_count");
  spec.ci_threshold = expect_value<double>(in, "ci_threshold");
  spec.ci_batch = expect_value<u32>(in, "ci_batch");
  spec.ci_max_runs = expect_value<u32>(in, "ci_max_runs");
  spec.window_lo = expect_value<double>(in, "window_lo");
  spec.window_hi = expect_value<double>(in, "window_hi");
  {
    std::istringstream ls = expect_line(in, "targets");
    spec.targets.clear();
    std::string name;
    while (ls >> name) {
      InjectTarget target;
      if (!parse_target(name, &target)) malformed("unknown target '" + name + "'");
      spec.targets.push_back(target);
    }
    if (spec.targets.empty()) malformed("no targets");
  }
  const Cycle golden_cycles = expect_value<Cycle>(in, "golden_cycles");
  const u64 golden_instructions = expect_value<u64>(in, "golden_instructions");
  const double wall_seconds = expect_value<double>(in, "wall_seconds");

  std::vector<RunResult> results;
  while (std::getline(in, line)) {
    if (line == "end") {
      return aggregate(spec, golden_cycles, golden_instructions, std::move(results),
                       wall_seconds);
    }
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag != "run") malformed("expected 'run' or 'end', got '" + tag + "'");
    RunResult result;
    InjectionRecord& r = result.record;
    r.campaign_seed = spec.seed;
    std::string target_name, outcome_name;
    unsigned reg = 0, bit = 0, config_kind = 0, ioq_fault = 0, module = 0, module_fault = 0;
    int applied = 0;
    if (!(ls >> r.run_index >> target_name >> r.inject_cycle >> reg >> bit >> r.addr >>
          r.mask >> config_kind >> r.ioq_slot >> ioq_fault >> module >> module_fault >>
          applied >> outcome_name >> result.cycles)) {
      malformed("unparsable run line: " + line);
    }
    if (!parse_target(target_name, &r.target)) malformed("unknown target '" + target_name + "'");
    if (!parse_outcome(outcome_name, &result.outcome)) {
      malformed("unknown outcome '" + outcome_name + "'");
    }
    r.reg = static_cast<u8>(reg);
    r.bit = static_cast<u8>(bit);
    r.config_kind = static_cast<ConfigFaultKind>(config_kind);
    r.ioq_fault = static_cast<engine::IoqStuckFault>(ioq_fault);
    r.module = static_cast<isa::ModuleId>(module);
    r.module_fault = static_cast<engine::ModuleFaultMode>(module_fault);
    result.fault_applied = applied != 0;
    results.push_back(result);
  }
  malformed("missing 'end' trailer");
}

bool write_shard_report(const CampaignReport& report, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << shard_report_text(report);
  return static_cast<bool>(out.flush());
}

CampaignReport read_shard_report(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SimError("shard report: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_shard_report(buffer.str());
}

CampaignReport merge_shard_reports(const std::vector<CampaignReport>& shards) {
  if (shards.empty()) malformed("nothing to merge");

  // Every shard must come from the same campaign: identical spec except for
  // which range it executed, and an identical golden run.
  const CampaignReport& first = shards.front();
  for (const CampaignReport& shard : shards) {
    const CampaignSpec& a = first.spec;
    const CampaignSpec& b = shard.spec;
    const bool same_campaign =
        a.workload == b.workload && a.runs == b.runs && a.seed == b.seed &&
        a.hang_factor == b.hang_factor && a.static_cfc == b.static_cfc &&
        a.static_ddt == b.static_ddt && a.footprint_summaries == b.footprint_summaries &&
        a.context_depth == b.context_depth && a.field_sensitive == b.field_sensitive &&
        a.dme == b.dme && a.dme_seed_a == b.dme_seed_a && a.dme_seed_b == b.dme_seed_b &&
        a.window_lo == b.window_lo && a.window_hi == b.window_hi && a.targets == b.targets &&
        first.golden_cycles == shard.golden_cycles &&
        first.golden_instructions == shard.golden_instructions;
    if (!same_campaign) malformed("shards disagree on campaign spec or golden run");
  }

  std::vector<RunResult> results;
  double wall_seconds = 0;
  for (const CampaignReport& shard : shards) {
    results.insert(results.end(), shard.results.begin(), shard.results.end());
    wall_seconds += shard.wall_seconds;
  }
  std::sort(results.begin(), results.end(), [](const RunResult& a, const RunResult& b) {
    return a.record.run_index < b.record.run_index;
  });
  if (results.size() != first.spec.runs) {
    malformed("merged shards hold " + std::to_string(results.size()) + " runs, campaign has " +
              std::to_string(first.spec.runs));
  }
  for (u32 i = 0; i < results.size(); ++i) {
    if (results[i].record.run_index != i) {
      malformed("run indices do not partition the plan (duplicate or gap at index " +
                std::to_string(results[i].record.run_index) + ")");
    }
  }

  // The merged report *is* the unsharded campaign: shard coordinates reset,
  // so its deterministic digest matches an unsharded run byte-for-byte.
  CampaignSpec spec = first.spec;
  spec.shard_index = 0;
  spec.shard_count = 1;
  return aggregate(spec, first.golden_cycles, first.golden_instructions, std::move(results),
                   wall_seconds);
}

CampaignReport merge_shard_files(const std::vector<std::string>& paths) {
  std::vector<CampaignReport> shards;
  shards.reserve(paths.size());
  for (const std::string& path : paths) shards.push_back(read_shard_report(path));
  return merge_shard_reports(shards);
}

}  // namespace rse::campaign
