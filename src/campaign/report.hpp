// Campaign result aggregation and export (stdout table, CSV, JSON).
//
// Everything in the report except the wall-clock fields is a deterministic
// function of (workload, campaign_seed, runs, targets) — identical no matter
// how many worker threads executed the campaign.  `deterministic_digest`
// serializes exactly that portion, so tests (and users) can compare
// campaigns across --jobs settings byte-for-byte.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "campaign/injection.hpp"
#include "campaign/outcome.hpp"

namespace rse::campaign {

struct RunResult {
  InjectionRecord record;
  Outcome outcome = Outcome::kMasked;
  bool fault_applied = false;  // false: workload finished before inject_cycle
  Cycle cycles = 0;            // faulty run length
};

struct CampaignSpec {
  std::string workload = "kmeans";
  u32 runs = 256;
  u64 seed = 1;
  u32 jobs = 1;  // 0 = std::thread::hardware_concurrency()
  double hang_factor = 8.0;  // cycle budget = golden cycles x this
  /// Precompute the static CFC legal-successor table at load for the golden
  /// and every faulty run (OsConfig::static_cfc).
  bool static_cfc = false;
  /// Precompute the static DDT page footprint at load for the golden and
  /// every faulty run (OsConfig::static_ddt); implies enabling the DDT.
  bool static_ddt = false;
  /// Analyzer call model for static_cfc/static_ddt
  /// (OsConfig::footprint_summaries): interprocedural summaries (default)
  /// vs. the flat model.  Part of the golden-cache key and the
  /// deterministic digest — the two modes check different site sets.
  bool footprint_summaries = true;
  /// Context-sensitive footprint cloning depth (OsConfig::context_depth;
  /// effective only with footprint_summaries).  Part of the golden-cache
  /// key and the deterministic digest — each depth checks a different site
  /// set, so goldens must never leak across depths.  Depth 0 reproduces
  /// the context-insensitive digest bit-for-bit.
  u32 context_depth = 1;
  /// Field-sensitive strided-interval footprint domain (OsConfig::
  /// field_sensitive; effective only with static_ddt).  Part of the
  /// golden-cache key and the deterministic digest — residue page sets and
  /// dense hulls check different page sets, so goldens must never leak
  /// across the two domains.
  bool field_sensitive = true;
  /// Fast-forward the fault-free prefix of eligible runs through the exec/
  /// fast engine and transplant into the cycle-accurate core at the
  /// injection cycle (docs/execution.md).  Off by default.  Classified
  /// outcomes — and therefore the deterministic digest — are identical with
  /// and without it; only per-run cycle counts (timing, excluded from the
  /// digest) may differ.
  bool fast_forward = false;
  /// Checkpoint-fork injection: capture one whole-machine snapshot
  /// (os::MachineSnapshot) per injection-cycle bucket and fork every run
  /// from the latest snapshot at or before its injection cycle, paying only
  /// the post-injection suffix.  Chains built from a from-reset pass are
  /// bit-exact, so classified outcomes, per-run cycle counts, and the
  /// deterministic digest are byte-identical to from-reset runs; neither
  /// flag enters the digest or the golden-cache key.
  bool snapshot_fork = false;
  u32 snapshot_buckets = 8;
  /// Divergent multi-version execution (rse/dme.hpp): the campaign variant
  /// runs with layout randomization under mlr seed `dme_seed_a`, and every
  /// run's canonical committed-instruction trace is diffed against a
  /// fault-free reference variant recorded once under `dme_seed_b`.  Adds
  /// the detected_dme outcome; enters the digest and (via the mutated
  /// setup) the golden-cache key.  Incompatible with snapshot_fork — the
  /// trace checker is a per-run streaming hook that cannot start mid-trace
  /// from a forked snapshot.
  bool dme = false;
  u64 dme_seed_a = 1;
  u64 dme_seed_b = 2;
  /// Contiguous-shard execution for multi-process scale-out: this process
  /// runs plan indices [runs*shard_index/shard_count,
  /// runs*(shard_index+1)/shard_count).  shard_count == 1 = unsharded.
  /// Excluded from the digest and the golden-cache key — merging all shard
  /// reports reproduces the unsharded digest byte-for-byte.
  u32 shard_index = 0;
  u32 shard_count = 1;
  /// Stratified sequential refinement: while any outcome stratum's Wilson
  /// 95% interval still straddles this reporting threshold, append
  /// deterministic batches of extra runs (next plan indices) until every
  /// stratum resolves or ci_max_runs is reached.  0 = off.  Part of the
  /// deterministic digest (it changes the executed run set); incompatible
  /// with sharding.
  double ci_threshold = 0.0;
  u32 ci_batch = 0;     // runs per refinement round (0 = max(16, runs/2))
  u32 ci_max_runs = 0;  // total-run cap (0 = 4 * runs)
  /// Injection-cycle window as fractions of the golden run's cycle count,
  /// drawn inclusively.  The default [0, 1] reproduces the historical
  /// full-range plan bit-for-bit (see InjectionSpace::window_lo).  Part of
  /// the deterministic digest when non-default.
  double window_lo = 0.0;
  double window_hi = 1.0;
  std::vector<InjectTarget> targets = {
      InjectTarget::kRegisterBit, InjectTarget::kInstructionWord,
      InjectTarget::kDataWord, InjectTarget::kConfigBit};
};

struct CampaignReport {
  CampaignSpec spec;
  Cycle golden_cycles = 0;
  u64 golden_instructions = 0;

  std::array<u32, kNumOutcomes> by_outcome{};
  /// by_target_outcome[target][outcome]
  std::array<std::array<u32, kNumOutcomes>, kNumInjectTargets> by_target_outcome{};
  std::array<u32, kNumInjectTargets> by_target_runs{};
  u32 faults_applied = 0;

  std::vector<RunResult> results;  // run-index order, regardless of --jobs

  // non-deterministic (timing) portion
  double wall_seconds = 0;
  double runs_per_second = 0;

  u32 detected() const;
  u32 unmasked() const;  // runs whose fault had any architectural effect
  /// Detection coverage: detected / unmasked (0 when nothing was unmasked).
  double coverage() const;
  double sdc_rate() const;  // sdc / total runs
};

/// Build the aggregate report from per-run results (must be in index order).
CampaignReport aggregate(const CampaignSpec& spec, Cycle golden_cycles,
                         u64 golden_instructions, std::vector<RunResult> results,
                         double wall_seconds);

/// Human-readable summary (outcome histogram + per-module coverage table).
std::string summary_text(const CampaignReport& report);

/// The deterministic portion of the report as a canonical string.
std::string deterministic_digest(const CampaignReport& report);

std::string to_json(const CampaignReport& report);

/// One CSV row per run (plan fields + outcome); returns false on I/O error.
bool write_runs_csv(const CampaignReport& report, const std::string& path);

}  // namespace rse::campaign
