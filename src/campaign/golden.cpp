#include "campaign/golden.hpp"

#include <functional>
#include <sstream>

#include <algorithm>

#include "common/error.hpp"
#include "exec/fast_session.hpp"
#include "isa/assembler.hpp"

namespace rse::campaign {

GoldenRun simulate_golden(const WorkloadSetup& setup) {
  GoldenRun golden;
  golden.program = isa::assemble(setup.source);

  os::Machine machine(setup.machine);
  os::GuestOs guest(machine, setup.os);
  guest.load(golden.program);
  for (isa::ModuleId id : setup.host_enables) guest.enable_module(id);
  guest.run();
  if (!guest.finished()) {
    throw ConfigError("golden run of workload '" + setup.name + "' hit the run limit");
  }

  golden.output = guest.output();
  golden.exit_code = guest.exit_code();
  golden.cycles = machine.now();
  golden.instructions = machine.core().stats().instructions;
  if (auto* icm = machine.icm()) golden.icm_mismatches = icm->stats().mismatches;
  if (auto* cfc = machine.cfc()) golden.cfc_violations = cfc->stats().violations;
  if (auto* fw = machine.framework()) golden.selfcheck_trips = fw->stats().selfcheck_trips;
  if (auto* ddt = machine.ddt()) {
    golden.ddt_footprint_violations = ddt->stats().footprint_violations;
  }
  golden.os_recoveries = guest.stats().recoveries;
  golden.ioq_slots = setup.machine.core.ruu_size;
  return golden;
}

GoldenRun simulate_golden_fast(const WorkloadSetup& setup) {
  GoldenRun golden;
  golden.program = isa::assemble(setup.source);

  os::Machine machine(setup.machine);
  os::GuestOs guest(machine, setup.os);
  guest.load(golden.program);
  for (isa::ModuleId id : setup.host_enables) guest.enable_module(id);

  exec::FastSession session(guest, exec::FastSessionConfig{/*relaxed=*/true});
  session.seed_leaders(golden.program);
  // Instructions never outnumber cycles, so the run limit bounds both.
  const exec::FastSession::Status status = session.run_until(setup.os.run_limit);
  if (status == exec::FastSession::Status::kBail) {
    // Outside fast mode's envelope (threads, network I/O, crash recovery):
    // transplant what was fast-executed and let the cycle-accurate machine
    // finish — output and exit state stay exact, only timing is hybrid.
    session.transplant(session.virtual_now());
    guest.run();
  }
  if (!guest.finished()) {
    throw ConfigError("fast golden run of workload '" + setup.name + "' hit the run limit");
  }

  golden.output = guest.output();
  golden.exit_code = guest.exit_code();
  golden.cycles = std::max<Cycle>(machine.now(), session.virtual_now());
  // Match CoreStats::instructions, which reports CHKs separately.
  golden.instructions = session.executed() - session.engine().chks_executed() +
                        machine.core().stats().instructions;
  golden.ioq_slots = setup.machine.core.ruu_size;
  return golden;
}

std::string GoldenCache::key_of(const WorkloadSetup& setup, bool fast) {
  std::ostringstream key;
  key << setup.name << '|' << std::hash<std::string>{}(setup.source) << '|'
      << setup.machine.framework_present << '|' << setup.machine.core.ruu_size << '|'
      << setup.os.seed << '|' << setup.os.run_limit << '|' << setup.os.static_cfc << '|'
      << setup.os.static_ddt << '|' << setup.os.footprint_summaries << '|'
      << setup.os.context_depth << '|' << setup.os.field_sensitive << '|'
      // Layout randomization moves every stack/heap/shlib address, so a
      // randomized golden (or one under a different MLR seed — DME variants)
      // must never alias an unrandomized one.
      << setup.os.randomize_layout << '|' << setup.machine.mlr.seed << '|'
      << (fast ? "fast" : "cycle-accurate");
  for (isa::ModuleId id : setup.host_enables) key << '|' << static_cast<int>(id);
  return key.str();
}

std::shared_ptr<const GoldenRun> GoldenCache::get(const WorkloadSetup& setup, bool fast) {
  const std::string key = key_of(setup, fast);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = runs_.find(key);
  if (it != runs_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  auto golden = std::make_shared<const GoldenRun>(
      fast ? simulate_golden_fast(setup) : simulate_golden(setup));
  runs_.emplace(key, golden);
  return golden;
}

}  // namespace rse::campaign
