// Golden (fault-free) reference runs and their per-(workload, config) cache.
// Every faulty run is classified by diffing against the golden run of the
// same workload; the cache ensures each campaign — and repeated campaigns in
// one process, e.g. the throughput benchmark — simulates the baseline once.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "campaign/workload.hpp"
#include "isa/program.hpp"

namespace rse::campaign {

struct GoldenRun {
  isa::Program program;  // assembled once, shared read-only by all runs
  std::string output;
  int exit_code = 0;
  Cycle cycles = 0;
  u64 instructions = 0;
  // Baseline detector activity (normally all zero; a workload whose golden
  // run trips a detector would misclassify every faulty run as detected).
  u64 icm_mismatches = 0;
  u64 cfc_violations = 0;
  u64 selfcheck_trips = 0;
  u64 os_recoveries = 0;
  u64 ddt_footprint_violations = 0;
  u32 ioq_slots = 16;  // RUU/IOQ size, bounds kConfigBit slot sampling
  /// DME baseline (--dme campaigns; set by the runner on its local copy, not
  /// by the cache): whether the *fault-free* variant-A trace already diverges
  /// from the reference variant (layout-dependent timing, e.g. sys_clock),
  /// and where.  Faulty runs classify as detected_dme only relative to this.
  u64 dme_divergences = 0;
  u64 dme_first_divergence = ~u64{0};
};

/// Assemble and simulate the fault-free baseline for a workload setup.
GoldenRun simulate_golden(const WorkloadSetup& setup);

/// Fault-free baseline through the exec/ fast engine: identical output,
/// exit code, and instruction count, but `cycles` is virtual time and the
/// detector baselines are zero by construction (no framework activity in
/// fast mode).  Campaign classification keeps using the cycle-accurate
/// golden — injection-plan cycles, hang budgets, and digests depend on real
/// golden cycles; the fast baseline serves rse_run --fast and the
/// throughput benches (docs/execution.md).  Falls back to cycle-accurate
/// execution mid-run when the workload leaves fast mode's envelope.
GoldenRun simulate_golden_fast(const WorkloadSetup& setup);

/// Thread-safe cache of golden runs keyed by (workload name, source,
/// machine knobs that affect execution, execution mode).
class GoldenCache {
 public:
  /// Fetch the golden run, simulating it on first use.  `fast` selects the
  /// fast-engine baseline and is part of the cache key — the two modes'
  /// baselines must never alias (their cycle counts differ).
  std::shared_ptr<const GoldenRun> get(const WorkloadSetup& setup, bool fast = false);

  u64 hits() const { return hits_; }
  u64 misses() const { return misses_; }

 private:
  static std::string key_of(const WorkloadSetup& setup, bool fast);

  std::mutex mu_;
  std::map<std::string, std::shared_ptr<const GoldenRun>> runs_;
  u64 hits_ = 0;
  u64 misses_ = 0;
};

}  // namespace rse::campaign
