// Shard-report serialization and the merge reducer for multi-process
// campaign scale-out.
//
// A sharded campaign (CampaignSpec::shard_index/shard_count) executes one
// contiguous InjectionPlan range per process and serializes its partial
// CampaignReport as a self-contained text file ("rse-shard-report v1"): the
// full spec, the golden run's deterministic scalars, and every per-run
// result with all plan fields.  The merge reducer validates that the shards
// partition [0, runs) exactly, re-sorts by run index, and re-aggregates —
// so the merged report's deterministic digest is byte-identical to an
// unsharded run of the same spec, without re-simulating anything.
#pragma once

#include <string>
#include <vector>

#include "campaign/report.hpp"

namespace rse::campaign {

/// Serialize a (shard) report as the "rse-shard-report v1" text format.
std::string shard_report_text(const CampaignReport& report);

/// Parse text produced by shard_report_text; throws SimError on malformed
/// input.  Round-trips every deterministic field exactly (doubles are
/// written with max_digits10 precision).
CampaignReport parse_shard_report(const std::string& text);

/// Write/read a shard report file.  write returns false on I/O error; read
/// throws SimError when the file is unreadable or malformed.
bool write_shard_report(const CampaignReport& report, const std::string& path);
CampaignReport read_shard_report(const std::string& path);

/// Fold shard reports into the report an unsharded run of the same spec
/// would produce.  Requires all shards to share one spec (modulo
/// shard_index) and one golden run, and their run indices to partition
/// [0, runs) exactly; throws SimError otherwise.  Wall-clock fields are
/// summed (total compute spent across shards).
CampaignReport merge_shard_reports(const std::vector<CampaignReport>& shards);

/// Convenience: read every path, then merge.
CampaignReport merge_shard_files(const std::vector<std::string>& paths);

}  // namespace rse::campaign
