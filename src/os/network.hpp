// Simulated network front-end for the multithreaded-server experiments
// (paper section 5.4 / Figure 9).  Requests arrive on a jittered schedule;
// each accepted request requires one or more backend "I/O" waits (modeled by
// the kNetIo syscall latency) interleaved with guest-code compute before the
// reply completes it.
#pragma once

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace rse::os {

struct NetworkConfig {
  u32 total_requests = 100;
  Cycle interarrival = 1500;      // mean gap between request arrivals
  Cycle io_latency_mean = 9000;   // mean backend wait per kNetIo call
  u32 jitter_pct = 40;            // +/- jitter applied to both
  u64 seed = 7;
};

struct NetworkStats {
  u64 accepted = 0;
  u64 completed = 0;
  Cycle last_completion = 0;
};

class SimNetwork {
 public:
  explicit SimNetwork(const NetworkConfig& config = {}) { configure(config); }

  void configure(const NetworkConfig& config) {
    config_ = config;
    rng_ = Xorshift64(config.seed);
    arrivals_.clear();
    arrivals_.reserve(config.total_requests);
    Cycle at = 0;
    for (u32 i = 0; i < config.total_requests; ++i) {
      at += jittered(config.interarrival);
      arrivals_.push_back(at);
    }
    next_accept_ = 0;
    stats_ = NetworkStats{};
  }

  /// A request has arrived and is waiting to be accepted.
  bool has_ready(Cycle now) const {
    return next_accept_ < arrivals_.size() && arrivals_[next_accept_] <= now;
  }

  /// All requests have already been accepted.
  bool exhausted() const { return next_accept_ >= arrivals_.size(); }

  bool all_completed() const { return stats_.completed == config_.total_requests; }

  /// Cycle the next unaccepted request arrives (for accept blocking).
  Cycle next_arrival() const {
    return next_accept_ < arrivals_.size() ? arrivals_[next_accept_] : 0;
  }

  /// Accept the next request; precondition has_ready(now) or exhausted()==false.
  std::optional<u32> accept(Cycle now) {
    if (!has_ready(now)) return std::nullopt;
    ++stats_.accepted;
    return next_accept_++;
  }

  /// Backend I/O wait drawn for one kNetIo call.
  Cycle io_latency() { return jittered(config_.io_latency_mean); }

  void complete(u32 /*request*/, Cycle now) {
    ++stats_.completed;
    stats_.last_completion = now;
  }

  const NetworkConfig& config() const { return config_; }
  const NetworkStats& stats() const { return stats_; }

  /// Snapshot hook: arrival schedule position, RNG and statistics.
  template <class Ar>
  void serialize_state(Ar& ar) {
    ar.field(config_);
    ar.field(rng_);
    ar.field(arrivals_);
    ar.field(next_accept_);
    ar.field(stats_);
  }

 private:
  Cycle jittered(Cycle mean) {
    if (config_.jitter_pct == 0 || mean == 0) return mean;
    const i64 span = static_cast<i64>(mean) * config_.jitter_pct / 100;
    return static_cast<Cycle>(static_cast<i64>(mean) + rng_.next_in(-span, span));
  }

  NetworkConfig config_;
  Xorshift64 rng_{7};
  std::vector<Cycle> arrivals_;
  u32 next_accept_ = 0;
  NetworkStats stats_;
};

}  // namespace rse::os
