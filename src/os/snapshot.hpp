// Whole-machine snapshot/restore for the campaign engine's checkpoint-fork
// injection path (and any other consumer that wants to fork a simulation).
//
// A MachineSnapshot is the complete *value* state of a quiescent machine +
// guest-OS pair: the sparse memory image, core pipeline context, cache/bus
// timing state, the RSE framework (queues, IOQ, MAU horizon, latched
// events, self-check state) and all five modules, plus the OS scheduler,
// threads, network, DDT SavePage history (the CheckpointStore — note that
// store alone is *not* a machine checkpoint; see src/os/checkpoint.hpp) and
// statistics.
//
// Restore is not hydration from nothing: the target must be a machine/OS
// pair constructed with the same MachineConfig/OsConfig that has load()ed
// the same program and enabled the same modules.  That reconstructs all
// wiring — interconnect pointers, module handler lambdas, the program
// analysis — and restore then overwrites every value-state member, making
// the pair bit-identical to the captured one.  A forked run then steps
// exactly like an uninterrupted run (the determinism contract
// tests/campaign/snapshot_property_test.cpp asserts).
//
// Capture requires quiescence: the MAU's in-flight requests hold raw
// module-buffer pointers and completion callbacks that cannot be
// serialized, so a capture point must satisfy quiescent() — callers step
// the machine until it does (bounded; see CampaignRunner).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "os/guest_os.hpp"
#include "os/machine.hpp"

namespace rse::os {

struct MachineSnapshot {
  Cycle at = 0;             // machine cycle the state was captured at
  std::vector<u8> bytes;    // serialized value state (snap::Writer image)

  bool empty() const { return bytes.empty(); }

  /// True when the machine holds no unserializable in-flight work: the MAU
  /// is idle and no module is mid-operation with a callback outstanding
  /// (ICM CheckerMemory fill, MLR blocking-op state machine).  Machines
  /// without a framework are always quiescent.
  static bool quiescent(Machine& machine);

  /// Serialize the full value state.  Precondition: quiescent(machine).
  static MachineSnapshot capture(Machine& machine, GuestOs& guest);

  /// Overwrite `machine`/`guest` with the captured state.  Precondition:
  /// the pair was constructed with the same configs, load()ed the same
  /// program, had the same modules enabled, and has not been stepped past
  /// the capture cycle.  Throws SimError on archive/precondition mismatch.
  static void restore(const MachineSnapshot& snapshot, Machine& machine, GuestOs& guest);

  /// FNV-1a digest over the sparse memory image (test helper: cheap
  /// bit-identity evidence without holding two full machines alive).
  static u64 memory_digest(const mem::MainMemory& memory);
};

}  // namespace rse::os
