// Machine: wires memory, bus, caches, the out-of-order core, and (optionally)
// the RSE framework with its four hardware modules into one simulated system.
//
// The cache hierarchy and latencies follow the paper's simulation setup
// (Figure 1 parameters + section 5.2): il1/dl1 8 KB direct-mapped, il2 64 KB
// 2-way, dl2 128 KB 2-way; pipelined memory with an 18-cycle first chunk and
// 2-cycle inter-chunk latency on the baseline machine, 19/3 when the RSE is
// present (the memory arbiter adds one cycle to each).
#pragma once

#include <memory>

#include "cpu/core.hpp"
#include "mem/bus.hpp"
#include "mem/cache.hpp"
#include "mem/main_memory.hpp"
#include "modules/ahbm/ahbm.hpp"
#include "modules/cfc/cfc.hpp"
#include "modules/ddt/ddt.hpp"
#include "modules/icm/icm.hpp"
#include "modules/mlr/mlr.hpp"
#include "rse/framework.hpp"

namespace rse::os {

struct MachineConfig {
  cpu::CoreConfig core;
  mem::CacheConfig il1{"il1", 8 * 1024, 1, 32, 1};
  mem::CacheConfig dl1{"dl1", 8 * 1024, 1, 32, 1};
  mem::CacheConfig il2{"il2", 64 * 1024, 2, 64, 6};
  mem::CacheConfig dl2{"dl2", 128 * 1024, 2, 64, 6};
  mem::BusTiming bus_baseline{18, 2, 8};
  mem::BusTiming bus_with_rse{19, 3, 8};

  /// Instantiate the RSE framework (arbiter penalty applies even with no
  /// module enabled — the Table 4 "Framework" configuration).
  bool framework_present = false;

  engine::SelfCheckConfig selfcheck{};
  modules::IcmConfig icm{};
  modules::MlrConfig mlr{};
  modules::DdtConfig ddt{};
  modules::AhbmConfig ahbm{};
  modules::CfcConfig cfc{};
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config = MachineConfig{});

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  mem::MainMemory& memory() { return memory_; }
  mem::BusArbiter& bus() { return bus_; }
  mem::Cache& il1() { return *il1_; }
  mem::Cache& dl1() { return *dl1_; }
  mem::Cache& il2() { return *il2_; }
  mem::Cache& dl2() { return *dl2_; }
  cpu::Core& core() { return *core_; }

  /// Null when framework_present == false.
  engine::Framework* framework() { return framework_.get(); }
  modules::IcmModule* icm() { return icm_; }
  modules::MlrModule* mlr() { return mlr_; }
  modules::DdtModule* ddt() { return ddt_; }
  modules::AhbmModule* ahbm() { return ahbm_; }
  modules::CfcModule* cfc() { return cfc_; }

  Cycle now() const { return now_; }

  /// Advance the whole machine by one cycle.
  void step() {
    ++now_;
    core_->cycle(now_);
    if (framework_) framework_->tick(now_);
  }

  /// Jump the machine clock forward without cycling any component — used by
  /// the fast-forward controller when transplanting fast-mode state into the
  /// cycle-accurate core.  Only legal while the core's RUU is empty and no
  /// module holds pending work (the controller guarantees both); never moves
  /// the clock backwards.
  void warp_to(Cycle target) {
    if (target > now_) now_ = target;
  }

  const MachineConfig& config() const { return config_; }

 private:
  MachineConfig config_;
  mem::MainMemory memory_;
  mem::BusArbiter bus_;
  mem::BusMemory pipeline_port_;
  std::unique_ptr<mem::Cache> il2_;
  std::unique_ptr<mem::Cache> dl2_;
  std::unique_ptr<mem::Cache> il1_;
  std::unique_ptr<mem::Cache> dl1_;
  std::unique_ptr<engine::Framework> framework_;
  modules::IcmModule* icm_ = nullptr;
  modules::MlrModule* mlr_ = nullptr;
  modules::DdtModule* ddt_ = nullptr;
  modules::AhbmModule* ahbm_ = nullptr;
  modules::CfcModule* cfc_ = nullptr;
  std::unique_ptr<cpu::Core> core_;
  Cycle now_ = 0;
};

}  // namespace rse::os
