// A small guest operating system running on the simulated machine: program
// loader (with optional MLR layout randomization), syscall layer, a
// round-robin thread scheduler with blocking I/O, the DDT SavePage exception
// handler, and the thread-recovery driver of paper section 4.2 (terminate the
// faulty thread's dependent closure, undo its memory updates from the saved
// pages, resume the healthy survivors).
#pragma once

#include <array>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <memory>

#include "analysis/analyzer.hpp"
#include "common/rng.hpp"
#include "isa/program.hpp"
#include "os/checkpoint.hpp"
#include "os/machine.hpp"
#include "os/network.hpp"

namespace rse::os {

/// Syscall numbers (guest ABI: number in v0, args in a0..a2, result in v0).
enum class Sys : u32 {
  kExit = 1,         // a0 = exit code; terminates the whole process
  kPrintInt = 2,     // a0 = value
  kPrintChar = 3,    // a0 = character
  kClock = 4,        // -> v0 = current cycle (low 32 bits)
  kSbrk = 5,         // a0 = bytes; -> v0 = old break
  kThreadCreate = 6, // a0 = entry pc, a1 = argument; -> v0 = tid
  kThreadExit = 7,
  kYield = 8,
  kJoin = 9,         // a0 = tid; blocks until it terminates
  kNetAccept = 10,   // -> v0 = request id, or -1 when no requests remain
  kNetIo = 11,       // blocks for a backend I/O latency
  kNetReply = 12,    // a0 = request id
  kCrash = 13,       // simulate a (malicious) crash of the current thread
  kRand = 14,        // -> v0 = pseudo-random value
  kPrintStr = 15,    // a0 = address of NUL-terminated string
  // Runtime re-randomization support (paper section 4.1 extension):
  kRegisterGot = 16,       // a0 = GOT address, a1 = PLT address, a2 = size bytes
  kRegisterPtrTable = 17,  // a0 = table of pointer-slot addresses, a1 = count
};

enum class ThreadState : u8 {
  kReady,
  kRunning,
  kBlockedIo,
  kBlockedAccept,
  kBlockedJoin,
  kTerminated,  // clean exit
  kKilled,      // crashed or terminated by recovery
};

struct OsConfig {
  Cycle quantum = 20'000;
  Cycle context_switch_cost = 300;
  Cycle syscall_cost = 40;
  u32 thread_stack_bytes = 64 * 1024;
  u32 max_threads = 16;
  u32 check_error_retries = 3;  // CHECK-error flush/retry budget per PC
  bool randomize_layout = false;  // loader invokes the MLR module
  /// Runtime re-randomization period (0 = off): every interval the process
  /// is stopped at a drain point and the MLR relocates the registered GOT,
  /// rewriting the PLT and every compiler-recorded pointer slot.
  Cycle rerandomize_interval = 0;
  u64 max_checkpoint_bytes = 0;   // 0 = unbounded
  Cycle run_limit = 2'000'000'000;
  u64 seed = 42;
  /// Run the static analyzer at load and install the CFG-derived
  /// legal-successor table into the CFC module, tightening its indirect-jump
  /// check from "in text range" to "in the statically computed target set".
  bool static_cfc = false;
  /// Run the static analyzer at load and hand the DDT the data-flow page
  /// footprint: PST entries are pre-reserved for the predicted store pages
  /// and a committed access at a statically resolved site landing outside
  /// the predicted page set raises a footprint-violation detection.
  bool static_ddt = false;
  /// Analyzer call model behind static_cfc/static_ddt: interprocedural
  /// per-function summaries (default) vs. the flat full-clobber model
  /// (`--flat-footprint` on the tools).  Summaries resolve more sites, so
  /// the DDT checks more accesses; the flag feeds the campaign golden-run
  /// cache key and determinism digest.
  bool footprint_summaries = true;
  /// Context-sensitive footprint cloning depth (AnalysisOptions::
  /// context_depth; effective only with footprint_summaries).  Depth > 0
  /// additionally installs the analyzer's per-site page tables into the DDT
  /// so a resolved site is checked against its own context-merged pages
  /// instead of the whole-program set.  0 = context-insensitive (bit-for-bit
  /// the pre-context behavior).
  u32 context_depth = 1;
  /// Field-sensitive strided-interval footprint domain (AnalysisOptions::
  /// field_sensitive): per-site residue page sets instead of dense hulls.
  /// Feeds the golden-run cache key and determinism digest.  Off =
  /// bit-for-bit the dense interval behavior (`--no-field-sensitive`).
  bool field_sensitive = true;
  /// Abstract-$sp recursion context depth for field-sensitive summary
  /// cloning (AnalysisOptions::field_sp_depth): recursive frames are cloned
  /// per recursion rung up to this bound, then fall back to the joined
  /// context.  Effective only with field_sensitive and context_depth > 0.
  u32 field_sp_depth = 2;
};

struct RecoveryReport {
  ThreadId faulty = kNoThread;
  std::vector<ThreadId> killed;     // dependent closure, including faulty
  std::vector<ThreadId> survivors;  // healthy threads that keep running
  u32 pages_restored = 0;
  bool total_loss = false;  // needed history was garbage-collected: kill all

  template <class Ar>
  void serialize_state(Ar& ar) {
    ar.field(faulty);
    ar.field(killed);
    ar.field(survivors);
    ar.field(pages_restored);
    ar.field(total_loss);
  }
};

/// One contiguous stretch of a thread owning the core (for Figure 8-style
/// execution timelines).
struct RunSlice {
  ThreadId thread = kNoThread;
  Cycle from = 0;
  Cycle to = 0;
};

struct OsStats {
  u64 context_switches = 0;
  u64 preemptions = 0;
  u64 syscalls = 0;
  u64 check_error_retries = 0;
  u64 check_error_aborts = 0;
  /// CHECK errors escalated to the OS, attributed to the reporting module
  /// (index = isa::ModuleId) — fault-injection campaigns use this to credit
  /// the detecting module.
  std::array<u64, isa::kNumModuleIds> check_errors_by_module{};
  u64 illegal_traps = 0;  // illegal-instruction crashes (distinct from kCrash)
  u64 crashes = 0;
  u64 recoveries = 0;
  u64 pages_saved = 0;
  u64 rerandomizations = 0;
  Cycle rerandomize_cycles = 0;  // total process-stop time spent relocating
  Cycle loader_cycles = 0;
};

class GuestOs : public cpu::OsClient {
 public:
  GuestOs(Machine& machine, OsConfig config = {});

  // ---- process lifecycle ----
  /// Load a program: place segments, register ICM checked instructions,
  /// optionally randomize the layout via the MLR module, create thread 0.
  void load(const isa::Program& program);

  /// Run until the process exits, every thread is dead, or run_limit hits.
  void run();
  /// Advance one machine cycle plus scheduler work (for tests).
  void step();

  bool finished() const;
  int exit_code() const { return exit_code_; }
  const std::string& output() const { return output_; }

  // ---- module convenience (host-side enable, as the loader would) ----
  void enable_module(isa::ModuleId id);
  void disable_module(isa::ModuleId id);

  // ---- introspection ----
  Machine& machine() { return *machine_; }
  const OsConfig& config() const { return config_; }
  SimNetwork& network() { return network_; }
  const OsStats& stats() const { return stats_; }
  const CheckpointStore& checkpoints() const { return checkpoints_; }
  ThreadState thread_state(ThreadId tid) const;
  u32 live_thread_count() const;
  const std::vector<RecoveryReport>& recoveries() const { return recovery_reports_; }
  /// Execution slices in chronological order (recorded when enabled).
  const std::vector<RunSlice>& run_slices() const { return run_slices_; }
  void set_record_slices(bool record) { record_slices_ = record; }
  Addr stack_base() const { return stack_base_; }
  Addr heap_base() const { return heap_base_; }
  Addr shlib_base() const { return shlib_base_; }

  /// Crash a thread from the host side (fault injection).
  void inject_crash(ThreadId tid);

  /// Current location of the registered GOT (moves on re-randomization).
  Addr got_location() const { return got_addr_; }

  /// Static analysis of the loaded program; null unless OsConfig::static_cfc
  /// or OsConfig::static_ddt asked the loader to lint-and-precompute.
  const analysis::AnalysisResult* program_analysis() const { return analysis_.get(); }

  // ---- cpu::OsClient ----
  SyscallResult on_syscall(Cycle now) override;
  bool on_check_error(Cycle now, Addr pc, isa::ModuleId module) override;
  void on_illegal(Cycle now, Addr pc) override;

  /// Snapshot hook (MachineSnapshot): every value-state member of the OS.
  /// Config, the machine pointer, and the program analysis are *not*
  /// serialized — a restore targets a GuestOs constructed with the same
  /// config that has load()ed the same program, which reproduces them (and
  /// reinstalls the module handler lambdas) exactly.
  template <class Ar>
  void serialize_state(Ar& ar) {
    ar.marker(0x4755534Fu);  // "GUSO"
    ar.field(rng_);
    ar.field(network_);
    ar.field(checkpoints_);
    ar.field(threads_);
    ar.field(ready_);
    ar.field(current_);
    ar.field(quantum_start_);
    ar.field(switching_to_);
    ar.field(switch_done_at_);
    ar.field(pending_crash_);
    ar.field(got_addr_);
    ar.field(got_size_);
    ar.field(plt_addr_);
    ar.field(plt_size_);
    ar.field(ptr_slots_);
    ar.field(next_rerandomize_);
    ar.field(rerandomize_pending_);
    ar.field(process_exited_);
    ar.field(exit_code_);
    ar.field(output_);
    ar.field(brk_);
    ar.field(stack_base_);
    ar.field(heap_base_);
    ar.field(shlib_base_);
    ar.field(check_error_counts_);
    ar.field(recovery_reports_);
    ar.field(record_slices_);
    ar.field(run_slices_);
    ar.field(slice_started_);
    ar.field(stats_);
  }

 private:
  struct Thread {
    ThreadId id = 0;
    cpu::ThreadContext ctx;
    ThreadState state = ThreadState::kReady;
    Cycle wake_at = 0;        // kBlockedIo
    ThreadId join_target = kNoThread;
    Addr stack_top = 0;
  };

  void scheduler_tick(Cycle now);
  void make_ready(ThreadId tid);
  void block_current(ThreadState state);
  std::optional<ThreadId> pick_next();
  void begin_switch(ThreadId next, Cycle now);
  void finish_process(int code);
  void handle_crash(ThreadId tid, Cycle now);
  RecoveryReport recover(ThreadId faulty, Cycle now);
  Cycle save_page(u32 page, ThreadId writer, Cycle now);
  void install_ddt_footprint(const isa::Program& program);
  void register_stack_footprint(const Thread& thread);
  void wake_joiners(ThreadId dead);
  Cycle rerandomize_now(Cycle now);
  void note_slice_start(Cycle now);
  void note_slice_end(Cycle now);

  Machine* machine_;
  OsConfig config_;
  Xorshift64 rng_;
  SimNetwork network_;
  CheckpointStore checkpoints_;

  std::vector<Thread> threads_;
  std::deque<ThreadId> ready_;
  ThreadId current_ = kNoThread;
  Cycle quantum_start_ = 0;

  // two-phase context switch (drain happened; waiting out the switch cost)
  std::optional<ThreadId> switching_to_;
  Cycle switch_done_at_ = 0;
  // host-injected crash of the currently running thread, applied once drained
  std::optional<ThreadId> pending_crash_;

  // runtime re-randomization state
  Addr got_addr_ = 0;
  u32 got_size_ = 0;
  Addr plt_addr_ = 0;
  u32 plt_size_ = 0;
  std::vector<Addr> ptr_slots_;  // compiler-recorded pointer locations
  Cycle next_rerandomize_ = 0;
  bool rerandomize_pending_ = false;

  bool process_exited_ = false;
  int exit_code_ = 0;
  std::string output_;

  Addr brk_ = 0;
  Addr stack_base_ = isa::kDefaultStackTop;
  Addr heap_base_ = 0;
  Addr shlib_base_ = 0x6000'0000;

  std::unique_ptr<analysis::AnalysisResult> analysis_;
  std::map<Addr, u32> check_error_counts_;
  std::vector<RecoveryReport> recovery_reports_;
  bool record_slices_ = false;
  std::vector<RunSlice> run_slices_;
  Cycle slice_started_ = 0;
  OsStats stats_;
};

}  // namespace rse::os
