#include "os/machine.hpp"

namespace rse::os {

Machine::Machine(const MachineConfig& config)
    : config_(config),
      bus_(config.framework_present ? config.bus_with_rse : config.bus_baseline),
      pipeline_port_(bus_, mem::BusSource::kPipeline) {
  il2_ = std::make_unique<mem::Cache>(config.il2, pipeline_port_);
  dl2_ = std::make_unique<mem::Cache>(config.dl2, pipeline_port_);
  il1_ = std::make_unique<mem::Cache>(config.il1, *il2_);
  dl1_ = std::make_unique<mem::Cache>(config.dl1, *dl2_);

  if (config.framework_present) {
    framework_ = std::make_unique<engine::Framework>(memory_, bus_, config.core.ruu_size);
    framework_->set_selfcheck_config(config.selfcheck);
    auto icm = std::make_unique<modules::IcmModule>(*framework_, config.icm);
    auto mlr = std::make_unique<modules::MlrModule>(*framework_, config.mlr);
    auto ddt = std::make_unique<modules::DdtModule>(*framework_, config.ddt);
    auto ahbm = std::make_unique<modules::AhbmModule>(*framework_, config.ahbm);
    auto cfc = std::make_unique<modules::CfcModule>(*framework_, config.cfc);
    icm_ = icm.get();
    mlr_ = mlr.get();
    ddt_ = ddt.get();
    ahbm_ = ahbm.get();
    cfc_ = cfc.get();
    framework_->add_module(std::move(icm));
    framework_->add_module(std::move(mlr));
    framework_->add_module(std::move(ddt));
    framework_->add_module(std::move(ahbm));
    framework_->add_module(std::move(cfc));
  }

  core_ = std::make_unique<cpu::Core>(config.core, memory_, *il1_, *dl1_);
  if (framework_) core_->attach_framework(framework_.get());
}

}  // namespace rse::os
