#include "os/guest_os.hpp"

#include <algorithm>
#include <cassert>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "os/recovery.hpp"

namespace rse::os {

using cpu::OsClient;

GuestOs::GuestOs(Machine& machine, OsConfig config)
    : machine_(&machine),
      config_(config),
      rng_(config.seed),
      checkpoints_(config.max_checkpoint_bytes) {
  machine_->core().set_os(this);
  if (auto* cfc = machine_->cfc()) {
    cfc->set_violation_handler([this](ThreadId thread, Addr, Addr, Cycle) {
      // A broken control-flow stream is treated like a crash of that
      // thread: the DDT recovery (or the kill-all policy) contains it.
      inject_crash(thread);
    });
  }
  if (auto* ddt = machine_->ddt()) {
    ddt->set_save_page_handler(
        [this](u32 page, ThreadId writer, Cycle now) { return save_page(page, writer, now); });
    ddt->set_footprint_violation_handler(
        [this](Addr, u32, ThreadId thread, bool, Cycle) {
          // An access outside the static footprint means the thread is
          // operating on corrupted address data: treat it like a crash of
          // that thread so the DDT recovery (or kill-all) contains it.
          inject_crash(thread);
        });
  }
}

void GuestOs::load(const isa::Program& program) {
  // Reset per-process state so the same machine can host successive loads.
  process_exited_ = false;
  exit_code_ = 0;
  output_.clear();
  checkpoints_.clear();
  recovery_reports_.clear();
  check_error_counts_.clear();
  run_slices_.clear();
  switching_to_.reset();
  pending_crash_.reset();
  got_addr_ = 0;
  plt_addr_ = 0;
  got_size_ = 0;
  plt_size_ = 0;
  ptr_slots_.clear();
  next_rerandomize_ = 0;
  rerandomize_pending_ = false;
  current_ = kNoThread;
  if (auto* fw = machine_->framework()) fw->reset();

  mem::MainMemory& memory = machine_->memory();
  for (std::size_t i = 0; i < program.text.size(); ++i) {
    memory.write_u32(program.text_base + static_cast<Addr>(i * 4), program.text[i]);
  }
  if (!program.data.empty()) {
    memory.write_block(program.data_base, program.data.data(), static_cast<u32>(program.data.size()));
  }

  stack_base_ = isa::kDefaultStackTop;
  heap_base_ = align_up(program.data_end(), mem::kPageBytes);
  shlib_base_ = 0x6000'0000;

  if (config_.randomize_layout) {
    auto* mlr = machine_->mlr();
    if (mlr == nullptr) {
      throw ConfigError("randomize_layout requires the RSE framework (MLR module)");
    }
    // The loader's special library function hands the header to the MLR
    // module, which randomizes the position-independent bases.  The fixed
    // cost (paper: 56 cycles) is charged to the loader.
    const auto bases =
        mlr->randomize_bases(shlib_base_, stack_base_, heap_base_, machine_->now());
    shlib_base_ = bases.shlib_base;
    stack_base_ = bases.stack_base;
    heap_base_ = bases.heap_base;
    stats_.loader_cycles += modules::MlrModule::kPiRandFixedCost;
  }
  brk_ = heap_base_;

  // Static parse for the ICM: every instruction following an ICM CHECK gets
  // a redundant copy in CheckerMemory.
  if (auto* icm = machine_->icm()) {
    icm->clear_checker_memory();
    for (std::size_t i = 0; i + 1 < program.text.size(); ++i) {
      const isa::Instr instr = isa::decode(program.text[i]);
      if (instr.op == isa::Op::kChk && instr.chk_module == isa::ModuleId::kIcm) {
        const Addr checked_pc = program.text_base + static_cast<Addr>((i + 1) * 4);
        icm->register_checked_instruction(checked_pc, program.text[i + 1]);
      }
    }
  }

  // Main thread.
  threads_.clear();
  ready_.clear();
  Thread main_thread;
  main_thread.id = 0;
  main_thread.ctx.pc = program.entry;
  main_thread.stack_top = (stack_base_ - 64) & ~Addr{15};
  main_thread.ctx.regs[isa::kSp] = main_thread.stack_top;
  threads_.push_back(main_thread);

  machine_->core().set_text_range(program.text_base, program.text_end());
  analysis_.reset();
  if (config_.static_cfc || config_.static_ddt) {
    analysis::AnalysisOptions options;
    options.interprocedural_footprint = config_.footprint_summaries;
    options.context_depth = config_.context_depth;
    options.field_sensitive = config_.field_sensitive;
    options.field_sp_depth = config_.field_sp_depth;
    analysis_ = std::make_unique<analysis::AnalysisResult>(
        analysis::analyze(program, options));
  }
  if (auto* cfc = machine_->cfc()) {
    cfc->set_text_range(program.text_base, program.text_end());
    // Stale tables from a previous load must not constrain this program.
    cfc->set_successor_table(analysis_ != nullptr && config_.static_cfc
                                 ? analysis_->indirect
                                 : modules::CfcSuccessorTable{});
  }
  install_ddt_footprint(program);
  register_stack_footprint(threads_[0]);
  machine_->core().set_context(main_thread.ctx, 0);
  machine_->core().resume();
  threads_[0].state = ThreadState::kRunning;
  current_ = 0;
  quantum_start_ = machine_->now();
  note_slice_start(machine_->now());
}

void GuestOs::enable_module(isa::ModuleId id) {
  if (auto* fw = machine_->framework()) {
    if (auto* m = fw->module(id)) m->set_enabled(true);
  }
}

void GuestOs::disable_module(isa::ModuleId id) {
  if (auto* fw = machine_->framework()) {
    if (auto* m = fw->module(id)) m->set_enabled(false);
  }
}

bool GuestOs::finished() const {
  if (process_exited_) return true;
  for (const Thread& t : threads_) {
    if (t.state != ThreadState::kTerminated && t.state != ThreadState::kKilled) return false;
  }
  return !threads_.empty();
}

void GuestOs::step() {
  machine_->step();
  scheduler_tick(machine_->now());
}

void GuestOs::run() {
  while (!finished() && machine_->now() < config_.run_limit) step();
}

ThreadState GuestOs::thread_state(ThreadId tid) const {
  return tid < threads_.size() ? threads_[tid].state : ThreadState::kKilled;
}

u32 GuestOs::live_thread_count() const {
  u32 count = 0;
  for (const Thread& t : threads_) {
    if (t.state != ThreadState::kTerminated && t.state != ThreadState::kKilled) ++count;
  }
  return count;
}

// -------------------------------------------------------------- scheduling

void GuestOs::make_ready(ThreadId tid) {
  Thread& t = threads_[tid];
  t.state = ThreadState::kReady;
  ready_.push_back(tid);
}

std::optional<ThreadId> GuestOs::pick_next() {
  while (!ready_.empty()) {
    const ThreadId tid = ready_.front();
    ready_.pop_front();
    if (threads_[tid].state == ThreadState::kReady) return tid;
  }
  return std::nullopt;
}

void GuestOs::begin_switch(ThreadId next, Cycle now) {
  switching_to_ = next;
  switch_done_at_ = now + config_.context_switch_cost;
  ++stats_.context_switches;
}

void GuestOs::scheduler_tick(Cycle now) {
  if (process_exited_) return;
  cpu::Core& core = machine_->core();

  // Wake threads whose I/O completed.
  for (Thread& t : threads_) {
    if (t.state == ThreadState::kBlockedIo && t.wake_at <= now) make_ready(t.id);
  }
  // Hand arrived requests to accept-blocked threads (one per arrival).
  for (Thread& t : threads_) {
    if (t.state != ThreadState::kBlockedAccept) continue;
    if (auto request = network_.accept(now)) {
      t.ctx.regs[isa::kV0] = *request;
      make_ready(t.id);
    } else if (network_.exhausted()) {
      t.ctx.regs[isa::kV0] = static_cast<Word>(-1);
      make_ready(t.id);
    } else {
      break;  // next arrival is in the future
    }
  }

  // Runtime re-randomization due: stop the process at the next drain point.
  if (config_.rerandomize_interval > 0 && got_addr_ != 0 && !rerandomize_pending_ &&
      next_rerandomize_ != 0 && now >= next_rerandomize_) {
    rerandomize_pending_ = true;
    if (core.running()) core.request_drain();
  }

  // Preemption: quantum expired and someone else is ready.
  if (core.running() && current_ != kNoThread && !ready_.empty() &&
      now - quantum_start_ >= config_.quantum) {
    core.request_drain();
    ++stats_.preemptions;
  }

  if (core.running()) return;

  // Phase B of a context switch: the switch cost elapsed, install the thread.
  if (switching_to_) {
    if (now < switch_done_at_) return;
    const ThreadId next = *switching_to_;
    switching_to_.reset();
    Thread& t = threads_[next];
    if (t.state != ThreadState::kReady) {
      // Killed while switching in (recovery); pick someone else next tick.
      current_ = kNoThread;
      return;
    }
    t.state = ThreadState::kRunning;
    current_ = next;
    quantum_start_ = now;
    note_slice_start(now);
    core.set_context(t.ctx, next);
    core.resume();
    return;
  }

  if (!core.drained()) return;  // still draining after request_drain

  if (pending_crash_) {
    const ThreadId victim = *pending_crash_;
    pending_crash_.reset();
    if (current_ == victim) {
      threads_[victim].ctx = core.context();
      note_slice_end(now);
      current_ = kNoThread;
    }
    handle_crash(victim, now);
    if (process_exited_) return;
  }

  // The core stopped: park the outgoing thread.
  if (current_ != kNoThread) {
    note_slice_end(now);
    Thread& t = threads_[current_];
    if (t.state == ThreadState::kRunning) {
      // Preempted (blocked/terminated threads already changed state and had
      // their context saved in the syscall handler).
      t.ctx = core.context();
      if (rerandomize_pending_) {
        // The interrupted thread resumes first once the relocation is done.
        t.state = ThreadState::kReady;
        ready_.push_front(current_);
      } else {
        make_ready(current_);
      }
    }
    current_ = kNoThread;
  }

  if (rerandomize_pending_) {
    // "Periodically, the process is stopped for re-randomization" (§4.1):
    // the whole process stays suspended while the MLR relocates the GOT and
    // the routine patches the PLT and the recorded pointer slots.
    rerandomize_pending_ = false;
    const Cycle cost = rerandomize_now(now);
    ++stats_.rerandomizations;
    stats_.rerandomize_cycles += cost;
    next_rerandomize_ = now + config_.rerandomize_interval;
    if (auto next = pick_next()) {
      switching_to_ = next;
      switch_done_at_ = now + cost + config_.context_switch_cost;
      ++stats_.context_switches;
    }
    return;
  }

  if (auto next = pick_next()) {
    begin_switch(*next, now);
  }
}

// ---------------------------------------------------------------- syscalls

void GuestOs::block_current(ThreadState state) {
  assert(current_ != kNoThread);
  Thread& t = threads_[current_];
  t.ctx = machine_->core().context();
  t.state = state;
}

void GuestOs::finish_process(int code) {
  process_exited_ = true;
  exit_code_ = code;
}

void GuestOs::note_slice_start(Cycle now) {
  if (record_slices_) slice_started_ = now;
}

void GuestOs::note_slice_end(Cycle now) {
  if (record_slices_ && current_ != kNoThread && now > slice_started_) {
    run_slices_.push_back(RunSlice{current_, slice_started_, now});
  }
}

void GuestOs::wake_joiners(ThreadId dead) {
  for (Thread& t : threads_) {
    if (t.state == ThreadState::kBlockedJoin && t.join_target == dead) {
      t.join_target = kNoThread;
      make_ready(t.id);
    }
  }
}

OsClient::SyscallResult GuestOs::on_syscall(Cycle now) {
  ++stats_.syscalls;
  cpu::Core& core = machine_->core();
  const auto number = static_cast<Sys>(core.reg(isa::kV0));
  const Word a0 = core.reg(isa::kA0);
  const Word a1 = core.reg(isa::kA1);
  const Cycle cost = config_.syscall_cost;

  switch (number) {
    case Sys::kExit:
      block_current(ThreadState::kTerminated);
      wake_joiners(current_);
      finish_process(static_cast<int>(a0));
      return {cost, true};
    case Sys::kPrintInt:
      output_ += std::to_string(static_cast<i32>(a0));
      return {cost, false};
    case Sys::kPrintChar:
      output_ += static_cast<char>(a0);
      return {cost, false};
    case Sys::kPrintStr: {
      Addr p = a0;
      for (int i = 0; i < 4096; ++i) {
        const char c = static_cast<char>(machine_->memory().read_u8(p++));
        if (c == '\0') break;
        output_ += c;
      }
      return {cost, false};
    }
    case Sys::kClock:
      core.set_reg(isa::kV0, static_cast<Word>(now));
      return {cost, false};
    case Sys::kSbrk: {
      const Addr old = brk_;
      brk_ = align_up(brk_ + a0, 16);
      core.set_reg(isa::kV0, old);
      return {cost, false};
    }
    case Sys::kRand:
      core.set_reg(isa::kV0, static_cast<Word>(rng_.next()));
      return {cost, false};
    case Sys::kThreadCreate: {
      if (threads_.size() >= config_.max_threads) {
        core.set_reg(isa::kV0, static_cast<Word>(-1));
        return {cost, false};
      }
      Thread t;
      t.id = static_cast<ThreadId>(threads_.size());
      t.ctx.pc = a0;
      t.ctx.regs[isa::kA0] = a1;
      t.stack_top =
          (stack_base_ - 64 - t.id * config_.thread_stack_bytes) & ~Addr{15};
      t.ctx.regs[isa::kSp] = t.stack_top;
      threads_.push_back(t);
      register_stack_footprint(threads_.back());
      make_ready(t.id);
      core.set_reg(isa::kV0, t.id);
      return {cost, false};
    }
    case Sys::kThreadExit:
      block_current(ThreadState::kTerminated);
      wake_joiners(current_);
      return {cost, true};
    case Sys::kYield:
      block_current(ThreadState::kReady);
      ready_.push_back(current_);
      return {cost, true};
    case Sys::kJoin: {
      const ThreadId target = a0;
      if (target >= threads_.size() || threads_[target].state == ThreadState::kTerminated ||
          threads_[target].state == ThreadState::kKilled) {
        core.set_reg(isa::kV0, 0);
        return {cost, false};
      }
      block_current(ThreadState::kBlockedJoin);
      threads_[current_].join_target = target;
      return {cost, true};
    }
    case Sys::kNetAccept: {
      if (auto request = network_.accept(now)) {
        core.set_reg(isa::kV0, *request);
        return {cost, false};
      }
      if (network_.exhausted()) {
        core.set_reg(isa::kV0, static_cast<Word>(-1));
        return {cost, false};
      }
      block_current(ThreadState::kBlockedAccept);
      return {cost, true};
    }
    case Sys::kNetIo: {
      block_current(ThreadState::kBlockedIo);
      threads_[current_].wake_at = now + network_.io_latency();
      return {cost, true};
    }
    case Sys::kNetReply:
      network_.complete(a0, now);
      core.set_reg(isa::kV0, 0);
      return {cost, false};
    case Sys::kCrash:
      handle_crash(current_, now);
      return {cost, true};
    case Sys::kRegisterGot: {
      got_addr_ = a0;
      plt_addr_ = a1;
      got_size_ = core.reg(isa::kA2);
      plt_size_ = got_size_;  // one-word PLT entries, one per GOT entry
      if (config_.rerandomize_interval > 0) {
        next_rerandomize_ = now + config_.rerandomize_interval;
      }
      core.set_reg(isa::kV0, 0);
      return {cost, false};
    }
    case Sys::kRegisterPtrTable: {
      const Word count = a1;
      for (Word i = 0; i < count && i < 1024; ++i) {
        ptr_slots_.push_back(machine_->memory().read_u32(a0 + i * 4));
      }
      core.set_reg(isa::kV0, 0);
      return {cost, false};
    }
  }
  throw GuestError("unknown syscall " + std::to_string(core.reg(isa::kV0)));
}

bool GuestOs::on_check_error(Cycle now, Addr pc, isa::ModuleId module) {
  ++stats_.check_errors_by_module[static_cast<unsigned>(module)];
  u32& count = check_error_counts_[pc];
  ++count;
  if (count <= config_.check_error_retries) {
    ++stats_.check_error_retries;
    return true;  // flush + refetch: a transient fault clears on retry
  }
  // Persistent error: contain it by treating the thread as crashed.
  ++stats_.check_error_aborts;
  handle_crash(current_, now);
  return false;
}

void GuestOs::on_illegal(Cycle now, Addr) {
  // An illegal instruction is a thread crash (e.g. a foiled attack after
  // MLR randomization landing in garbage).
  ++stats_.illegal_traps;
  handle_crash(current_, now);
}

// ---------------------------------------------------------------- recovery

Cycle GuestOs::save_page(u32 page, ThreadId writer, Cycle now) {
  // The OS exception handler checkpoints the page; the process is suspended
  // for the duration of the copy (one bus transfer of a full page).
  checkpoints_.add(page, writer, now, machine_->memory().snapshot_page(page));
  ++stats_.pages_saved;
  return machine_->bus().timing().transfer_cycles(mem::kPageBytes);
}

void GuestOs::install_ddt_footprint(const isa::Program& program) {
  (void)program;
  auto* ddt = machine_->ddt();
  if (ddt == nullptr) return;
  modules::DdtFootprint fp;
  if (config_.static_ddt && analysis_ != nullptr) {
    const analysis::PageFootprint& pf = analysis_->footprint;
    fp.checked_pcs = pf.checked_pcs();
    fp.pages = pf.pages;
    fp.store_pages = pf.store_pages;
    // gp-relative sites resolve against the initial global pointer, which
    // is 0 in a fresh context: the offsets are absolute addresses.
    if (pf.has_gp_range && pf.gp_hi >= 0) {
      std::vector<u32> gp_pages;
      const Addr lo = static_cast<Addr>(std::max<i64>(pf.gp_lo, 0));
      for (u32 page = mem::page_of(lo); page <= mem::page_of(static_cast<Addr>(pf.gp_hi));
           ++page) {
        gp_pages.push_back(page);
      }
      fp.pages.insert(fp.pages.end(), gp_pages.begin(), gp_pages.end());
    }
    // Per-site page tables from the context-sensitive pass (empty at depth
    // 0).  The analyzer already resolved gp-relative components at gp = 0,
    // matching the loader convention above, so the pages install verbatim.
    fp.pc_pages.reserve(pf.context_pages.size());
    for (const analysis::PageFootprint::SitePages& site : pf.context_pages) {
      modules::DdtFootprint::SitePages entry;
      entry.pc = site.pc;
      entry.pages = site.pages;
      fp.pc_pages.push_back(std::move(entry));
    }
  }
  // Installing an empty table clears any stale footprint from a previous
  // load; set_footprint_table sorts and dedups internally.
  ddt->set_footprint_table(std::move(fp));
}

void GuestOs::register_stack_footprint(const Thread& thread) {
  auto* ddt = machine_->ddt();
  if (ddt == nullptr || !ddt->has_footprint() || analysis_ == nullptr) return;
  const analysis::PageFootprint& pf = analysis_->footprint;
  if (!pf.has_sp_range) return;
  // The sp envelope is the hull of every resolved sp-relative site, as an
  // offset from the thread's initial stack pointer: whitelist exactly the
  // pages those sites can touch on this thread's stack.  The offsets are
  // i64 and may be negative; resolve in i64 and clamp to the 32-bit
  // address space instead of letting the u32 addition wrap (a wrapped lo
  // above hi would whitelist nothing — or, worse, the wrong pages).
  const i64 lo64 = std::clamp<i64>(
      static_cast<i64>(thread.stack_top) + pf.sp_lo, 0, 0xFFFFFFFFll);
  const i64 hi64 = std::clamp<i64>(
      static_cast<i64>(thread.stack_top) + pf.sp_hi, 0, 0xFFFFFFFFll);
  if (hi64 < lo64) return;
  const Addr lo = static_cast<Addr>(lo64);
  const Addr hi = static_cast<Addr>(hi64);
  std::vector<u32> pages;
  for (u32 page = mem::page_of(lo); page <= mem::page_of(hi); ++page) {
    pages.push_back(page);
  }
  ddt->add_footprint_pages(pages);
}

Cycle GuestOs::rerandomize_now(Cycle now) {
  auto* mlr = machine_->mlr();
  mem::MainMemory& memory = machine_->memory();
  // Allocate the new GOT location in the (kernel-side) heap with a random
  // 16-byte-aligned offset so successive locations are unpredictable.
  const Addr new_got =
      align_up(brk_ + static_cast<Addr>(rng_.next_below(64 * 1024)), 16);
  brk_ = new_got + got_size_;

  u32 rewritten = 0;
  if (mlr != nullptr) {
    rewritten = mlr->relocate_got(memory, got_addr_, new_got, got_size_, plt_addr_, plt_size_);
  } else {
    // Software fallback (TRR-style) when no RSE is present.
    std::vector<u8> got(got_size_);
    memory.read_block(got_addr_, got.data(), got_size_);
    memory.write_block(new_got, got.data(), got_size_);
    for (u32 i = 0; i < plt_size_ / 4; ++i) {
      const Word p = memory.read_u32(plt_addr_ + i * 4);
      if (p >= got_addr_ && p < got_addr_ + got_size_) {
        memory.write_u32(plt_addr_ + i * 4, new_got + (p - got_addr_));
        ++rewritten;
      }
    }
  }
  // Apply the new offset to every compiler-recorded pointer slot that holds
  // a pointer into the old GOT (the "special data section" of §4.1).
  u32 slots_fixed = 0;
  for (const Addr slot : ptr_slots_) {
    const Word p = memory.read_u32(slot);
    if (p >= got_addr_ && p < got_addr_ + got_size_) {
      memory.write_u32(slot, new_got + (p - got_addr_));
      ++slots_fixed;
    }
  }
  got_addr_ = new_got;

  // Process-stop time: GOT read+write and PLT read+write over the bus, plus
  // the 4-adders-wide rewrite and one pass over the pointer slots.
  const mem::BusTiming& timing = machine_->bus().timing();
  Cycle cost = 2 * timing.transfer_cycles(got_size_) + 2 * timing.transfer_cycles(plt_size_) +
               (rewritten + 3) / 4 + slots_fixed + modules::MlrModule::kPiRandFixedCost;
  (void)now;
  return cost;
}

void GuestOs::inject_crash(ThreadId tid) {
  if (tid >= threads_.size()) return;
  if (tid == current_ && machine_->core().running()) {
    // Crash the running thread at the next drain point (the pipeline must
    // not hold in-flight state for a context we are about to discard).
    machine_->core().request_drain();
    pending_crash_ = tid;
    return;
  }
  handle_crash(tid, machine_->now());
}

void GuestOs::handle_crash(ThreadId tid, Cycle now) {
  ++stats_.crashes;
  auto* ddt = machine_->ddt();
  const bool ddt_live = ddt != nullptr && ddt->enabled();
  if (!ddt_live) {
    // Without dependency information there is no guarantee shared data is
    // consistent: the kill-all policy terminates the entire thread pool.
    for (Thread& t : threads_) {
      if (t.state != ThreadState::kTerminated) t.state = ThreadState::kKilled;
    }
    ready_.clear();
    if (machine_->core().running()) machine_->core().halt(machine_->now());
    note_slice_end(machine_->now());
    current_ = kNoThread;
    finish_process(139);
    return;
  }
  const RecoveryReport report = recover(tid, now);
  recovery_reports_.push_back(report);
  if (report.total_loss || live_thread_count() == 0) finish_process(139);
}

RecoveryReport GuestOs::recover(ThreadId faulty, Cycle now) {
  (void)now;
  ++stats_.recoveries;
  auto* ddt = machine_->ddt();
  const RecoveryPlan plan = run_recovery(*ddt, checkpoints_, machine_->memory(), faulty);
  RecoveryReport report;
  report.faulty = plan.faulty;
  report.killed = plan.killed;
  report.pages_restored = plan.pages_restored;
  report.total_loss = plan.total_loss;

  auto is_killed = [&report](ThreadId t) {
    return std::find(report.killed.begin(), report.killed.end(), t) != report.killed.end();
  };

  if (report.total_loss) {
    for (Thread& t : threads_) {
      if (t.state != ThreadState::kTerminated) t.state = ThreadState::kKilled;
    }
    ready_.clear();
    return report;
  }

  // Terminate the dependent closure.
  for (ThreadId victim : report.killed) {
    if (victim >= threads_.size()) continue;
    Thread& t = threads_[victim];
    if (t.state == ThreadState::kTerminated) continue;
    t.state = ThreadState::kKilled;
    wake_joiners(victim);
  }
  ready_.erase(std::remove_if(ready_.begin(), ready_.end(),
                              [this](ThreadId t) {
                                return threads_[t].state != ThreadState::kReady;
                              }),
               ready_.end());
  if (current_ != kNoThread && is_killed(current_)) {
    // The running thread is in the kill set (it crashed itself, or it
    // depends on the faulty one).  Discard its in-flight state; the
    // scheduler picks a survivor.
    note_slice_end(machine_->now());
    machine_->core().halt(machine_->now());
    current_ = kNoThread;
  }

  for (const Thread& t : threads_) {
    if (t.state != ThreadState::kTerminated && t.state != ThreadState::kKilled) {
      report.survivors.push_back(t.id);
    }
  }

  ddt->forget_threads(report.killed);
  checkpoints_.clear();
  return report;
}

}  // namespace rse::os
