// Checkpoint store for DDT SavePage snapshots (paper section 4.2.2).
// Snapshots live in "main memory" managed by the OS exception handler; a
// byte budget models buffer overflow, handled by garbage-collecting the
// oldest snapshots while keeping history information for deleted pages —
// if recovery later needs a deleted page, the whole process must be
// terminated (insufficient information).
//
// Scope note: this is the *guest-visible* DDT SavePage history — single
// pre-store page images used by the OS recovery handler.  It is not a
// whole-machine checkpoint; that is rse::os::MachineSnapshot
// (src/os/snapshot.hpp), which the campaign engine's checkpoint-fork
// injection path uses and which serializes this store as part of the OS
// state.
#pragma once

#include <set>
#include <vector>

#include "common/types.hpp"

namespace rse::os {

struct PageCheckpoint {
  u32 page = 0;
  ThreadId new_writer = kNoThread;  // the thread whose write triggered SavePage
  Cycle at = 0;
  std::vector<u8> data;  // page content before new_writer's first write

  template <class Ar>
  void serialize_state(Ar& ar) {
    ar.field(page);
    ar.field(new_writer);
    ar.field(at);
    ar.field(data);
  }
};

class CheckpointStore {
 public:
  /// max_bytes == 0 means unbounded.
  explicit CheckpointStore(u64 max_bytes = 0) : max_bytes_(max_bytes) {}

  void add(u32 page, ThreadId writer, Cycle at, std::vector<u8> data) {
    bytes_ += data.size();
    log_.push_back(PageCheckpoint{page, writer, at, std::move(data)});
    while (max_bytes_ != 0 && bytes_ > max_bytes_ && !log_.empty()) {
      bytes_ -= log_.front().data.size();
      dropped_pages_.insert(log_.front().page);
      ++dropped_count_;
      log_.erase(log_.begin());
    }
  }

  const std::vector<PageCheckpoint>& log() const { return log_; }
  bool page_history_dropped(u32 page) const { return dropped_pages_.count(page) != 0; }
  /// Pages whose snapshot history was garbage-collected ("history
  /// information for deleted pages", section 4.2.2).
  const std::set<u32>& dropped_pages() const { return dropped_pages_; }

  u64 bytes() const { return bytes_; }
  std::size_t count() const { return log_.size(); }
  u64 dropped_count() const { return dropped_count_; }

  void clear() {
    log_.clear();
    dropped_pages_.clear();
    bytes_ = 0;
  }

  /// Snapshot hook (MachineSnapshot): the SavePage log and GC bookkeeping.
  /// The byte budget is construction-time config and carries over unchanged.
  template <class Ar>
  void serialize_state(Ar& ar) {
    ar.field(log_);
    ar.field(dropped_pages_);
    ar.field(bytes_);
    ar.field(dropped_count_);
  }

 private:
  std::vector<PageCheckpoint> log_;
  std::set<u32> dropped_pages_;
  u64 bytes_ = 0;
  u64 max_bytes_;
  u64 dropped_count_ = 0;
};

}  // namespace rse::os
