// The thread-recovery algorithm of paper section 4.2: given a faulty thread,
// use the DDT's dependency matrix to find every thread that (transitively)
// consumed its data, and undo the killed threads' memory updates from the
// SavePage checkpoints so the surviving threads can continue without
// rollback.  Factored out of the guest OS so the Figure 8 scenario can be
// tested in isolation.
#pragma once

#include <vector>

#include "mem/main_memory.hpp"
#include "modules/ddt/ddt.hpp"
#include "os/checkpoint.hpp"

namespace rse::os {

struct RecoveryPlan {
  ThreadId faulty = kNoThread;
  std::vector<ThreadId> killed;  // dependent closure, including the faulty thread
  u32 pages_restored = 0;
  bool total_loss = false;  // needed checkpoint history was garbage-collected
};

/// Compute and apply recovery: restores pages in `memory` and returns the
/// plan.  Does NOT touch thread states or the DDT (the caller terminates the
/// killed threads and calls ddt.forget_threads / checkpoints.clear after
/// inspecting the plan).
RecoveryPlan run_recovery(const modules::DdtModule& ddt, const CheckpointStore& checkpoints,
                          mem::MainMemory& memory, ThreadId faulty);

}  // namespace rse::os
