#include "os/recovery.hpp"

#include <algorithm>
#include <map>

namespace rse::os {

RecoveryPlan run_recovery(const modules::DdtModule& ddt, const CheckpointStore& checkpoints,
                          mem::MainMemory& memory, ThreadId faulty) {
  RecoveryPlan plan;
  plan.faulty = faulty;
  plan.killed = ddt.dependent_closure(faulty);

  auto is_killed = [&plan](ThreadId t) {
    return std::find(plan.killed.begin(), plan.killed.end(), t) != plan.killed.end();
  };

  // Pages written by a killed thread whose snapshot history was
  // garbage-collected cannot be reconstructed: terminate everything
  // ("insufficient information", section 4.2.2).
  for (const u32 page : checkpoints.dropped_pages()) {
    if (is_killed(ddt.page_owners(page).write_owner)) {
      plan.total_loss = true;
      return plan;
    }
  }

  // For every page, find the first checkpoint after the last healthy-writer
  // takeover: its snapshot is the newest content not authored by a killed
  // thread.  (A page whose latest takeover was by a healthy thread keeps its
  // current content — the healthy writer owns the final state.)
  std::map<u32, std::vector<const PageCheckpoint*>> by_page;
  for (const PageCheckpoint& cp : checkpoints.log()) by_page[cp.page].push_back(&cp);
  for (auto& [page, records] : by_page) {
    std::size_t first_killed_run = records.size();
    for (std::size_t i = records.size(); i-- > 0;) {
      if (is_killed(records[i]->new_writer)) {
        first_killed_run = i;
      } else {
        break;
      }
    }
    if (first_killed_run == records.size()) continue;  // no trailing killed writer
    if (checkpoints.page_history_dropped(page)) {
      // The snapshot chain was garbage-collected: the state cannot be
      // reconstructed consistently — the whole process must die.
      plan.total_loss = true;
      return plan;
    }
    memory.restore_page(page, records[first_killed_run]->data);
    ++plan.pages_restored;
  }
  return plan;
}

}  // namespace rse::os
