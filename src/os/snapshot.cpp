#include "os/snapshot.hpp"

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace rse::os {

namespace {

/// One serialization routine drives both directions so capture and restore
/// can never disagree about field order.
template <class Ar>
void serialize_machine(Ar& ar, Machine& machine, GuestOs& guest) {
  ar.marker(0x52534531u);  // "RSE1"
  machine.memory().serialize_state(ar);
  machine.bus().serialize_state(ar);
  machine.il2().serialize_state(ar);
  machine.dl2().serialize_state(ar);
  machine.il1().serialize_state(ar);
  machine.dl1().serialize_state(ar);
  machine.core().serialize_state(ar);

  u8 has_framework = machine.framework() != nullptr ? 1 : 0;
  ar.field(has_framework);
  if ((machine.framework() != nullptr) != (has_framework != 0)) {
    throw SimError("MachineSnapshot: framework presence mismatch between snapshot and target");
  }
  if (has_framework) {
    machine.framework()->serialize_state(ar);
    machine.icm()->serialize_state(ar);
    machine.mlr()->serialize_state(ar);
    machine.ddt()->serialize_state(ar);
    machine.ahbm()->serialize_state(ar);
    machine.cfc()->serialize_state(ar);
  }

  guest.serialize_state(ar);
}

}  // namespace

bool MachineSnapshot::quiescent(Machine& machine) {
  engine::Framework* fw = machine.framework();
  if (fw == nullptr) return true;
  if (!fw->mau().idle()) return false;
  if (machine.icm() != nullptr && machine.icm()->mau_pending()) return false;
  if (machine.mlr() != nullptr && machine.mlr()->op_in_flight()) return false;
  return true;
}

MachineSnapshot MachineSnapshot::capture(Machine& machine, GuestOs& guest) {
  if (!quiescent(machine)) {
    throw SimError("MachineSnapshot::capture: machine is not quiescent");
  }
  snap::Writer writer;
  serialize_machine(writer, machine, guest);
  MachineSnapshot snapshot;
  snapshot.at = machine.now();
  snapshot.bytes = writer.take();
  return snapshot;
}

void MachineSnapshot::restore(const MachineSnapshot& snapshot, Machine& machine,
                              GuestOs& guest) {
  if (snapshot.empty()) throw SimError("MachineSnapshot::restore: empty snapshot");
  if (machine.now() > snapshot.at) {
    throw SimError("MachineSnapshot::restore: target machine is past the capture cycle");
  }
  snap::Reader reader(snapshot.bytes);
  serialize_machine(reader, machine, guest);
  if (!reader.exhausted()) {
    throw SimError("MachineSnapshot::restore: trailing bytes in snapshot archive");
  }
  machine.warp_to(snapshot.at);
}

u64 MachineSnapshot::memory_digest(const mem::MainMemory& memory) {
  u64 hash = 1469598103934665603ull;  // FNV offset basis
  auto mix = [&hash](const u8* data, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      hash ^= data[i];
      hash *= 1099511628211ull;  // FNV prime
    }
  };
  for (u32 page : memory.page_numbers()) {
    mix(reinterpret_cast<const u8*>(&page), sizeof page);
    const std::vector<u8> bytes = memory.snapshot_page(page);
    mix(bytes.data(), bytes.size());
  }
  return hash;
}

}  // namespace rse::os
