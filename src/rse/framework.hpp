// The Reliability and Security Engine framework (paper section 3).
//
// The framework owns the input interface (latched pipeline taps), the
// Instruction Output Queue, the Memory Access Unit, the module
// enable/disable unit, and the self-checking watchdog.  The simulated core
// calls the on_* methods as instructions move through the pipeline; the
// machine ticks the framework once per cycle after the core.  Events pushed
// by the core in cycle N become visible to modules in cycle N+1 (the input
// latch of Table 3).
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <variant>
#include <vector>

#include "common/types.hpp"
#include "isa/instruction.hpp"
#include "mem/bus.hpp"
#include "mem/main_memory.hpp"
#include "rse/frame_types.hpp"
#include "rse/input_queues.hpp"
#include "rse/ioq.hpp"
#include "rse/mau.hpp"
#include "rse/module.hpp"

namespace rse::engine {

/// Framework-level CHECK operations (module# = kFramework).
inline constexpr u8 kFrameOpEnableModule = 1;   // imm12 = module id
inline constexpr u8 kFrameOpDisableModule = 2;  // imm12 = module id

/// Why the self-checking logic decoupled the framework (Table 2).
enum class SelfCheckVerdict : u8 {
  kOk,
  kNoProgress,       // CHECK never completed within the watchdog timeout
  kFalseAlarmStorm,  // too many check=1 transitions within the window
  kStuckAt1,         // output bit of a free IOQ entry stuck at 1
};

struct SelfCheckConfig {
  bool enabled = true;
  // Long enough for the slowest legitimate blocking CHECK (an MLR GOT copy
  // moves two 4 KB buffers over the bus, ~3k cycles); tests shrink it.
  Cycle watchdog_timeout = 50'000;
  u32 alarm_threshold = 8;  // check 0->1 transitions per window
};

struct FrameworkStats {
  u64 dispatches_seen = 0;
  u64 chk_instructions = 0;
  u64 commits_seen = 0;
  u64 squashes_seen = 0;
  u64 errors_reported = 0;       // check=1 results delivered to the pipeline
  /// errors_reported attributed to the module owning the IOQ entry (index =
  /// isa::ModuleId) — campaign classification credits detections with this.
  std::array<u64, isa::kNumModuleIds> errors_by_module{};
  u64 module_enables = 0;
  u64 module_disables = 0;
  u64 selfcheck_trips = 0;
  Cycle selfcheck_trip_cycle = 0;  // cycle of the first decoupling (0 = never)
};

class Framework {
 public:
  /// `ruu_entries` sizes every queue (one entry per re-order buffer slot).
  Framework(mem::MainMemory& memory, mem::BusArbiter& bus, u32 ruu_entries);

  // ---- construction-time wiring ----
  void add_module(std::unique_ptr<Module> module);
  Module* module(isa::ModuleId id) const;
  Mau& mau() { return mau_; }
  Ioq& ioq() { return ioq_; }
  InputQueues& queues() { return queues_; }
  mem::MainMemory& memory() { return *memory_; }

  /// Observer invoked when the self-checking logic decouples the framework.
  void set_selfcheck_observer(std::function<void(SelfCheckVerdict, Cycle)> observer) {
    selfcheck_observer_ = std::move(observer);
  }
  void set_selfcheck_config(SelfCheckConfig config) { selfcheck_ = config; }

  // ---- pipeline-facing interface ----
  void on_dispatch(const DispatchInfo& info, Cycle now);
  void on_execute(const ExecuteInfo& info, Cycle now);
  void on_mem_load(const MemoryInfo& info, Cycle now);

  /// Commit notification.  For stores, called before the value reaches
  /// memory; the returned stall is charged to the commit stage (SavePage).
  Cycle on_commit(const CommitInfo& info, Cycle now);

  void on_squash(const InstrTag& tag, Cycle now);

  /// The commit unit observed check=1 for this slot and is about to flush
  /// the pipeline.  Feeds the watchdog's per-entry error-transition counter
  /// (section 3.4): too many error indications within the window — whether
  /// from a module that always alarms or from a stuck-at-1 check bit —
  /// declare the framework erroneous and decouple it.
  void on_check_error(u32 slot, Cycle now);

  /// The check bits the commit unit observes for a slot (constant (1,0) once
  /// the framework has decoupled itself into safe mode).
  Ioq::CheckBits check_bits(u32 slot) const;

  // ---- module-facing interface ----
  /// Write a module's check result to the IOQ, applying any injected module
  /// fault mode and the safe-mode override.
  void module_write_ioq(Module& module, const InstrTag& tag, bool check_valid, bool check,
                        Cycle now);

  // ---- per-cycle advance ----
  void tick(Cycle now);

  // ---- safe mode / self-check ----
  bool safe_mode() const { return safe_mode_; }
  SelfCheckVerdict verdict() const { return verdict_; }
  /// Re-couple the framework after a safe-mode trip (used by tests/OS).
  void recouple();

  const FrameworkStats& stats() const { return stats_; }

  /// Reset transient state between guest runs (modules, queues, IOQ).
  void reset();

  /// Snapshot hook: queues, IOQ, MAU, the latched event stream and the
  /// self-check state.  Module-internal state is serialized separately (the
  /// machine walks its typed module pointers); the self-check observer and
  /// module wiring are reconstructed by the normal construction path.
  /// Requires mau().idle() at capture time — see Mau::serialize_state.
  template <class Ar>
  void serialize_state(Ar& ar) {
    ar.marker(0x46524D57u);  // "FRMW"
    ar.field(queues_);
    ar.field(ioq_);
    ar.field(mau_);
    ar.field(pending_);
    ar.field(safe_mode_);
    ar.field(verdict_);
    ar.field(alarm_counts_);
    ar.field(alarm_window_start_);
    ar.field(free_high_since_);
    ar.field(stats_);
  }

 private:
  struct DispatchEvent {
    DispatchInfo info;
  };
  struct ExecuteEvent {
    ExecuteInfo info;
  };
  struct MemoryEvent {
    MemoryInfo info;
  };
  struct CommitEvent {
    CommitInfo info;
  };
  struct SquashEvent {
    InstrTag tag;
  };
  using Event =
      std::variant<DispatchEvent, ExecuteEvent, MemoryEvent, CommitEvent, SquashEvent>;

  void deliver(const Event& event, Cycle now);
  void handle_frame_chk(const isa::Instr& instr, Cycle now);
  void run_selfcheck(Cycle now);
  void trip_selfcheck(SelfCheckVerdict verdict, Cycle now);

  mem::MainMemory* memory_;
  InputQueues queues_;
  Ioq ioq_;
  Mau mau_;
  std::vector<std::unique_ptr<Module>> modules_;
  std::array<Module*, isa::kNumModuleIds> by_id_{};

  struct PendingEvent {
    Event event;
    Cycle visible_from;
  };
  std::deque<PendingEvent> pending_;

  // self-checking state
  SelfCheckConfig selfcheck_;
  bool safe_mode_ = false;
  SelfCheckVerdict verdict_ = SelfCheckVerdict::kOk;
  std::function<void(SelfCheckVerdict, Cycle)> selfcheck_observer_;
  std::vector<u32> alarm_counts_;       // per-slot check 0->1 transitions in window
  Cycle alarm_window_start_ = 0;
  std::vector<Cycle> free_high_since_;  // per-slot: first cycle a free entry read as 1

  FrameworkStats stats_;
};

}  // namespace rse::engine
