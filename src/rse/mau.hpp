// Memory Access Unit (paper section 3.2): performs memory requests on behalf
// of all RSE modules so that each module does not need its own bus interface
// unit.  A request carries an address, access type, byte count, and a pointer
// to a module-owned buffer.  Requests queue and are serviced in cyclic order,
// one bus transfer at a time; the bus arbiter gives the main pipeline
// priority.
#pragma once

#include <functional>

#include "common/ring_buffer.hpp"
#include "common/types.hpp"
#include "isa/instruction.hpp"
#include "mem/bus.hpp"
#include "mem/main_memory.hpp"

namespace rse::engine {

struct MauStats {
  u64 requests = 0;
  u64 bytes_transferred = 0;
  u64 rejected_full = 0;
};

class Mau {
 public:
  /// Called when the transfer finishes (data already moved to/from `buffer`).
  using Callback = std::function<void(Cycle done_at)>;

  Mau(mem::MainMemory& memory, mem::BusArbiter& bus, u32 queue_depth = 16)
      : memory_(&memory), bus_(&bus), queue_(queue_depth) {}

  /// Queue a request.  `buffer` must stay alive until the callback runs.
  /// Returns false (and drops the request) if the request queue is full.
  bool submit(isa::ModuleId module, Addr addr, u32 bytes, bool is_write, u8* buffer,
              Callback on_done) {
    if (queue_.full()) {
      ++stats_.rejected_full;
      return false;
    }
    queue_.push(Request{module, addr, bytes, is_write, buffer, std::move(on_done)});
    ++stats_.requests;
    stats_.bytes_transferred += bytes;
    return true;
  }

  bool idle() const { return !active_ && queue_.empty(); }

  /// Advance one cycle: finish a completed transfer, then start the next.
  void tick(Cycle now) {
    if (active_ && now >= done_at_) {
      // The data movement is functional; the cycles were spent on the bus.
      if (active_request_.is_write) {
        memory_->write_block(active_request_.addr, active_request_.buffer, active_request_.bytes);
      } else {
        memory_->read_block(active_request_.addr, active_request_.buffer, active_request_.bytes);
      }
      auto cb = std::move(active_request_.on_done);
      active_ = false;
      if (cb) cb(now);
    }
    if (!active_ && !queue_.empty()) {
      active_request_ = queue_.pop();
      done_at_ = bus_->request(now, active_request_.bytes, mem::BusSource::kMau);
      active_ = true;
    }
  }

  const MauStats& stats() const { return stats_; }

  /// Snapshot hook.  In-flight requests hold raw module-buffer pointers and
  /// completion callbacks, which cannot be serialized — snapshots are only
  /// taken at quiescent cycles (idle() holds), so only the bus-completion
  /// horizon and statistics carry over.  The restore target is a freshly
  /// constructed (idle) MAU.
  template <class Ar>
  void serialize_state(Ar& ar) {
    ar.field(done_at_);
    ar.field(stats_);
  }

 private:
  struct Request {
    isa::ModuleId module = isa::ModuleId::kFramework;
    Addr addr = 0;
    u32 bytes = 0;
    bool is_write = false;
    u8* buffer = nullptr;
    Callback on_done;
  };

  mem::MainMemory* memory_;
  mem::BusArbiter* bus_;
  RingBuffer<Request> queue_;
  Request active_request_{};
  bool active_ = false;
  Cycle done_at_ = 0;
  MauStats stats_;
};

}  // namespace rse::engine
