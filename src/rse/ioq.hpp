// Instruction Output Queue (paper section 3.2, Table 1).
//
// One entry per RUU slot, allocated when the instruction is forwarded to the
// framework (i.e. at dispatch).  The (checkValid, check) bit pair tells the
// commit stage what to do:
//
//   checkValid=0 check=0  free, or CHECK still executing -> commit may stall
//   checkValid=1 check=0  non-CHECK instruction, or CHECK passed -> commit
//   checkValid=1 check=1  CHECK detected an error -> flush the pipeline
//
// The queue also hosts the stuck-at fault-injection hooks used by the
// self-checking experiments of Table 2.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "isa/instruction.hpp"
#include "rse/frame_types.hpp"

namespace rse::engine {

/// Stuck-at fault injected on one IOQ entry's output bits (Table 2, row 4).
enum class IoqStuckFault : u8 {
  kNone,
  kCheckValidStuck0,
  kCheckValidStuck1,
  kCheckStuck0,
  kCheckStuck1,
};

class Ioq {
 public:
  struct Entry {
    bool allocated = false;
    bool pending_check = false;  // a module owes this entry a result
    bool check_valid = false;
    bool check = false;
    InstrTag tag;
    isa::ModuleId module = isa::ModuleId::kFramework;
    // transition bookkeeping for the self-checking watchdog
    Cycle allocated_at = 0;
    Cycle last_valid_set = 0;
  };

  explicit Ioq(u32 entries) : entries_(entries) {}

  u32 size() const { return static_cast<u32>(entries_.size()); }

  /// Allocate the entry for a dispatched instruction.  CHECK instructions
  /// addressed to a live module start at (checkValid=0, check=0); everything
  /// else — including CHECKs to disabled modules, whose path the
  /// enable/disable unit desensitizes to a constant (1,0) — starts at (1,0)
  /// so the pipeline commits it as usual.
  void allocate(const InstrTag& tag, bool pending_check, isa::ModuleId module, Cycle now) {
    Entry& e = entries_[tag.slot];
    e.allocated = true;
    e.pending_check = pending_check;
    e.tag = tag;
    e.module = module;
    e.check_valid = !pending_check;
    e.check = false;
    e.allocated_at = now;
    e.last_valid_set = now;
  }

  /// Module writes its result.  In safe (decoupled) mode the framework
  /// overrides the module output with the constant (1, 0) pair.
  void module_write(const InstrTag& tag, bool check_valid, bool check, Cycle now, bool safe_mode) {
    Entry& e = entries_[tag.slot];
    if (!e.allocated || e.tag.seq != tag.seq) return;  // already freed/squashed
    if (safe_mode) {
      check_valid = true;
      check = false;
    }
    e.check_valid = check_valid;
    e.check = check;
    if (check_valid) e.last_valid_set = now;
  }

  void free(const InstrTag& tag) {
    Entry& e = entries_[tag.slot];
    if (e.allocated && e.tag.seq == tag.seq) e = Entry{};
  }

  void free_all() {
    for (Entry& e : entries_) e = Entry{};
  }

  /// The (checkValid, check) pair as seen by the commit unit, i.e. after any
  /// injected stuck-at fault on the output bits.
  struct CheckBits {
    bool check_valid;
    bool check;
  };
  CheckBits observed(u32 slot) const {
    const Entry& e = entries_[slot];
    CheckBits bits{e.check_valid, e.check};
    switch (fault_) {
      case IoqStuckFault::kNone: break;
      case IoqStuckFault::kCheckValidStuck0:
        if (slot == fault_slot_) bits.check_valid = false;
        break;
      case IoqStuckFault::kCheckValidStuck1:
        if (slot == fault_slot_) bits.check_valid = true;
        break;
      case IoqStuckFault::kCheckStuck0:
        if (slot == fault_slot_) bits.check = false;
        break;
      case IoqStuckFault::kCheckStuck1:
        if (slot == fault_slot_) bits.check = true;
        break;
    }
    return bits;
  }

  const Entry& entry(u32 slot) const { return entries_[slot]; }

  void inject_stuck_fault(u32 slot, IoqStuckFault fault) {
    fault_slot_ = slot;
    fault_ = fault;
  }
  IoqStuckFault injected_fault() const { return fault_; }
  u32 injected_fault_slot() const { return fault_slot_; }

  /// Snapshot hook: every entry plus the injected stuck-at fault state.
  template <class Ar>
  void serialize_state(Ar& ar) {
    ar.field(entries_);
    ar.field(fault_);
    ar.field(fault_slot_);
  }

 private:
  std::vector<Entry> entries_;
  IoqStuckFault fault_ = IoqStuckFault::kNone;
  u32 fault_slot_ = 0;
};

}  // namespace rse::engine
