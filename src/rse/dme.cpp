#include "rse/dme.hpp"

#include <algorithm>

#include "exec/fast_session.hpp"

namespace rse::dme {

namespace {

void install_core_recorder(os::Machine& machine, const RegionMap& map, CanonicalTrace* out,
                           u64 max_records) {
  machine.core().set_commit_record([map, out, max_records](const cpu::Core::CommitRecord& r) {
    if (out->records.size() >= max_records) {
      out->truncated = true;
      return;
    }
    out->records.push_back(
        make_record(map, r.pc, r.raw, r.is_mem, r.is_store, r.ea, r.value));
  });
}

}  // namespace

RecordedTrace record_trace(const VariantSpec& spec, const isa::Program& program,
                           u64 max_records, bool prefer_fast) {
  os::MachineConfig machine_config = spec.machine;
  machine_config.framework_present = true;  // MLR lives in the framework
  machine_config.mlr.seed = spec.mlr_seed;
  os::OsConfig os_config = spec.os;
  os_config.randomize_layout = true;

  os::Machine machine(machine_config);
  os::GuestOs guest(machine, os_config);
  guest.load(program);
  for (isa::ModuleId id : spec.host_enables) guest.enable_module(id);

  RecordedTrace result;
  result.map = RegionMap::of(guest);

  if (prefer_fast) {
    // Second consumer of the fast-path engine: the fault-free variant body
    // runs functionally, and any bail (non-whitelisted syscall, threads,
    // illegal word) transplants into the cycle-accurate core which keeps
    // appending to the same trace — the stream stays the committed-
    // instruction stream throughout.
    exec::FastSession session(guest, exec::FastSessionConfig{});
    session.set_instr_trace([map = result.map, out = &result.trace, max_records](
                                Addr pc, Word raw, bool is_mem, bool is_store, Addr ea,
                                Word value) {
      if (out->records.size() >= max_records) {
        out->truncated = true;
        return;
      }
      out->records.push_back(make_record(map, pc, raw, is_mem, is_store, ea, value));
    });
    session.seed_leaders(program);
    const exec::FastSession::Status status = session.run_until(os_config.run_limit);
    result.fast = status != exec::FastSession::Status::kBail;
    if (status == exec::FastSession::Status::kBail) {
      session.transplant(session.virtual_now());
      install_core_recorder(machine, result.map, &result.trace, max_records);
      guest.run();
    }
  } else {
    install_core_recorder(machine, result.map, &result.trace, max_records);
    guest.run();
  }

  result.finished = guest.finished();
  result.exit_code = guest.exit_code();
  result.output = guest.output();
  return result;
}

DmeResult compare_traces(const RecordedTrace& run, const CanonicalTrace& reference) {
  const auto& a = run.trace.records;
  const auto& b = reference.records;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!a[i].matches(b[i])) return DmeResult{1, i};
  }
  // Both traces complete (neither hit its record cap) but one ran longer:
  // a layout-dependent difference in the executed instruction count.
  if (a.size() != b.size() && !run.trace.truncated && !reference.truncated) {
    return DmeResult{1, n};
  }
  return DmeResult{};
}

}  // namespace rse::dme
