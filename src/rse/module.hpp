// Base class for RSE hardware modules (paper section 3.2).
//
// Every module, irrespective of functionality, has (i) a mechanism to scan
// the Fetch_Out queue for CHECK instructions intended for it — modeled by the
// framework routing dispatch events to `on_dispatch` — and (ii) a memory
// buffer for MAU transfers (owned by the concrete module).  Synchronous
// modules hold their CHECK's IOQ entry at checkValid=0 until the check
// completes; asynchronous modules set checkValid immediately and log
// permanent state on the commit signal.
#pragma once

#include "common/types.hpp"
#include "isa/instruction.hpp"
#include "rse/frame_types.hpp"

namespace rse::engine {

class Framework;

/// Behavioural fault injected into a module for the Table 2 self-checking
/// experiments.
enum class ModuleFaultMode : u8 {
  kNone,
  kNoProgress,     // the module never produces a result
  kFalseAlarm,     // the module always declares an error
  kFalseNegative,  // the module always declares "no error"
};

class Module {
 public:
  explicit Module(Framework& framework) : fw_(&framework) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  virtual isa::ModuleId id() const = 0;
  virtual const char* name() const = 0;

  /// Advance internal pipelines/counters by one cycle.
  virtual void tick(Cycle /*now*/) {}

  /// A dispatched instruction became visible in Fetch_Out (1 cycle after
  /// dispatch).  Modules filter for CHK instructions addressed to them and
  /// for the instruction classes they monitor.
  virtual void on_dispatch(const DispatchInfo& /*info*/, Cycle /*now*/) {}

  /// Execute_Out data became visible for an instruction.
  virtual void on_execute(const ExecuteInfo& /*info*/, Cycle /*now*/) {}

  /// Commit signal: the instruction retired; async modules log permanent
  /// state now.  Store commits arrive through on_store_commit instead.
  virtual void on_commit(const CommitInfo& /*info*/, Cycle /*now*/) {}

  /// A store is about to retire and write memory.  Returns extra cycles the
  /// commit stage must stall (e.g. DDT SavePage handling); 0 otherwise.
  virtual Cycle on_store_commit(const CommitInfo& /*info*/, Cycle /*now*/) { return 0; }

  /// The pipeline squashed this instruction; drop any state tied to it.
  virtual void on_squash(const InstrTag& /*tag*/, Cycle /*now*/) {}

  /// Drop all transient state (used on guest process teardown and by tests).
  virtual void reset() {}

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) {
    enabled_ = enabled;
    if (!enabled) reset();
  }

  ModuleFaultMode fault_mode() const { return fault_mode_; }
  void inject_fault(ModuleFaultMode mode) { fault_mode_ = mode; }

  /// Snapshot hook for the base-class state; concrete modules call this from
  /// their own serialize_state.  Assigns enabled_ directly — set_enabled's
  /// reset-on-disable side effect must not fire during a restore.
  template <class Ar>
  void serialize_base(Ar& ar) {
    ar.field(enabled_);
    ar.field(fault_mode_);
  }

 protected:
  Framework* fw_;

 private:
  bool enabled_ = false;
  ModuleFaultMode fault_mode_ = ModuleFaultMode::kNone;
};

}  // namespace rse::engine
