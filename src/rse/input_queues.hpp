// The framework's input interface (paper section 3.1): one slot-indexed
// register bank per pipeline tap (Fetch_Out, Regfile_Data, Execute_Out,
// Memory_Out) plus the Commit_Out event stream.  Each bank has as many
// entries as the re-order buffer.  Data latched from the pipeline becomes
// visible to modules one cycle later (Table 3: "information passed by
// pipeline is available to the framework only after a delay of one cycle").
#pragma once

#include <optional>
#include <vector>

#include "common/ring_buffer.hpp"
#include "common/types.hpp"
#include "rse/frame_types.hpp"

namespace rse::engine {

/// A slot-indexed latch bank with 1-cycle visibility delay.
template <typename Payload>
class LatchBank {
 public:
  explicit LatchBank(u32 entries) : slots_(entries) {}

  void latch(u32 slot, Payload payload, u64 seq, Cycle now) {
    Slot& s = slots_[slot];
    s.payload = std::move(payload);
    s.seq = seq;
    s.visible_from = now + 1;
    s.valid = true;
  }

  /// Read slot contents if they belong to instruction `seq` and are already
  /// visible at `now`.
  const Payload* read(u32 slot, u64 seq, Cycle now) const {
    const Slot& s = slots_[slot];
    if (!s.valid || s.seq != seq || s.visible_from > now) return nullptr;
    return &s.payload;
  }

  void invalidate(u32 slot, u64 seq) {
    Slot& s = slots_[slot];
    if (s.valid && s.seq == seq) s.valid = false;
  }

  void clear() {
    for (Slot& s : slots_) s.valid = false;
  }

  /// Snapshot hook: all latched slots (bank size is construction config).
  template <class Ar>
  void serialize_state(Ar& ar) {
    ar.field(slots_);
  }

 private:
  struct Slot {
    Payload payload{};
    u64 seq = 0;
    Cycle visible_from = 0;
    bool valid = false;
  };
  std::vector<Slot> slots_;
};

struct InputQueues {
  explicit InputQueues(u32 entries)
      : fetch_out(entries), execute_out(entries), memory_out(entries) {}

  // Fetch_Out carries the instruction bits and, in this model, the register
  // operand values (Regfile_Data) captured at dispatch.
  LatchBank<DispatchInfo> fetch_out;
  LatchBank<ExecuteInfo> execute_out;
  LatchBank<MemoryInfo> memory_out;

  void clear() {
    fetch_out.clear();
    execute_out.clear();
    memory_out.clear();
  }

  template <class Ar>
  void serialize_state(Ar& ar) {
    ar.field(fetch_out);
    ar.field(execute_out);
    ar.field(memory_out);
  }
};

}  // namespace rse::engine
