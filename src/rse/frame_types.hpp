// Shared types of the RSE <-> pipeline interface (paper section 3.1).
//
// Instructions are addressed between the pipeline and the framework by their
// re-order buffer (RUU) slot number — "the instruction has a unique
// identifier, the reorder buffer entry number, by which it is addressed
// throughout its lifetime" (section 4.3).  Because a slot is reused after
// commit, the simulator pairs it with a monotonically increasing sequence
// number; hardware needs no such disambiguation since queue entries are
// freed in lock step, but the model asserts it.
#pragma once

#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace rse::engine {

struct InstrTag {
  u32 slot = 0;  // RUU / IOQ / input-queue entry index
  u64 seq = 0;   // global dispatch sequence number

  friend bool operator==(const InstrTag&, const InstrTag&) = default;
};

/// Payload pushed when an instruction is dispatched: the union of what the
/// Fetch_Out and Regfile_Data queues deliver for one entry.
struct DispatchInfo {
  InstrTag tag;
  Addr pc = 0;
  Word raw = 0;  // instruction bits exactly as fetched (ICM compares these)
  isa::Instr instr;
  ThreadId thread = kNoThread;
  Word operands[2] = {0, 0};  // register operand values (Regfile_Data)
  u8 operand_count = 0;
  bool wrong_path = false;  // fetched down a mispredicted path
};

/// Payload for Execute_Out: ALU result or effective address.
struct ExecuteInfo {
  InstrTag tag;
  Word result = 0;
  Addr eff_addr = 0;
  bool is_mem = false;
};

/// Payload for Memory_Out: value loaded from memory.
struct MemoryInfo {
  InstrTag tag;
  Word value = 0;
};

/// Payload for Commit_Out.  Carries the data an asynchronous module logs as
/// permanent state when the commit signal arrives (section 3.2).  For stores
/// this callback is made *before* the store value reaches memory, which is
/// when the DDT's SavePage exception must fire.
struct CommitInfo {
  InstrTag tag;
  Addr pc = 0;
  isa::Instr instr;
  ThreadId thread = kNoThread;
  Addr eff_addr = 0;   // valid for loads/stores
  Word mem_value = 0;  // store value / loaded value
};

}  // namespace rse::engine
