#include "rse/framework.hpp"

#include <cassert>

namespace rse::engine {

Framework::Framework(mem::MainMemory& memory, mem::BusArbiter& bus, u32 ruu_entries)
    : memory_(&memory),
      queues_(ruu_entries),
      ioq_(ruu_entries),
      mau_(memory, bus),
      alarm_counts_(ruu_entries, 0),
      free_high_since_(ruu_entries, 0) {}

void Framework::add_module(std::unique_ptr<Module> module) {
  const auto id = static_cast<std::size_t>(module->id());
  assert(id < by_id_.size() && by_id_[id] == nullptr);
  by_id_[id] = module.get();
  modules_.push_back(std::move(module));
}

Module* Framework::module(isa::ModuleId id) const {
  const auto index = static_cast<std::size_t>(id);
  return index < by_id_.size() ? by_id_[index] : nullptr;
}

void Framework::on_dispatch(const DispatchInfo& info, Cycle now) {
  ++stats_.dispatches_seen;
  const bool is_chk = info.instr.op == isa::Op::kChk;
  if (is_chk) ++stats_.chk_instructions;
  // The enable/disable unit acts as soon as the CHECK reaches the framework:
  // dispatch is in program order, so CHECKs following an enable are already
  // routed to the (now live) module.  Wrong-path CHECKs never take effect.
  if (is_chk && info.instr.chk_module == isa::ModuleId::kFramework && !info.wrong_path) {
    handle_frame_chk(info.instr, now);
  }
  // A CHECK only owes a result when it is addressed to a live (registered
  // and enabled) module; otherwise the enable/disable unit substitutes the
  // constant (checkValid=1, check=0) output.
  bool pending = false;
  if (is_chk && info.instr.chk_module != isa::ModuleId::kFramework) {
    Module* target = module(info.instr.chk_module);
    pending = target != nullptr && target->enabled();
  }
  ioq_.allocate(info.tag, pending, is_chk ? info.instr.chk_module : isa::ModuleId::kFramework,
                now);
  queues_.fetch_out.latch(info.tag.slot, info, info.tag.seq, now);
  pending_.push_back({DispatchEvent{info}, now + 1});
}

void Framework::on_execute(const ExecuteInfo& info, Cycle now) {
  queues_.execute_out.latch(info.tag.slot, info, info.tag.seq, now);
  pending_.push_back({ExecuteEvent{info}, now + 1});
}

void Framework::on_mem_load(const MemoryInfo& info, Cycle now) {
  queues_.memory_out.latch(info.tag.slot, info, info.tag.seq, now);
  pending_.push_back({MemoryEvent{info}, now + 1});
}

Cycle Framework::on_commit(const CommitInfo& info, Cycle now) {
  ++stats_.commits_seen;
  Cycle stall = 0;
  const bool is_store = info.instr.op_class() == isa::OpClass::kStore;
  if (is_store) {
    // SavePage-style checks must intercept the store before it writes
    // memory, so store commits are delivered synchronously.
    for (auto& module : modules_) {
      if (module->enabled()) stall += module->on_store_commit(info, now);
    }
  }
  pending_.push_back({CommitEvent{info}, now + 1});
  // The IOQ entry and queue registers are freed as the commit signal removes
  // the instruction's data from the input queues (section 3.1).
  ioq_.free(info.tag);
  queues_.fetch_out.invalidate(info.tag.slot, info.tag.seq);
  queues_.execute_out.invalidate(info.tag.slot, info.tag.seq);
  queues_.memory_out.invalidate(info.tag.slot, info.tag.seq);
  return stall;
}

void Framework::on_squash(const InstrTag& tag, Cycle now) {
  ++stats_.squashes_seen;
  ioq_.free(tag);
  queues_.fetch_out.invalidate(tag.slot, tag.seq);
  queues_.execute_out.invalidate(tag.slot, tag.seq);
  queues_.memory_out.invalidate(tag.slot, tag.seq);
  pending_.push_back({SquashEvent{tag}, now + 1});
}

Ioq::CheckBits Framework::check_bits(u32 slot) const {
  if (safe_mode_) return Ioq::CheckBits{true, false};
  return ioq_.observed(slot);
}

void Framework::module_write_ioq(Module& module, const InstrTag& tag, bool check_valid,
                                 bool check, Cycle now) {
  switch (module.fault_mode()) {
    case ModuleFaultMode::kNone:
      break;
    case ModuleFaultMode::kNoProgress:
      return;  // the module never produces a result
    case ModuleFaultMode::kFalseAlarm:
      check_valid = true;
      check = true;
      break;
    case ModuleFaultMode::kFalseNegative:
      check_valid = true;
      check = false;
      break;
  }
  ioq_.module_write(tag, check_valid, check, now, safe_mode_);
}

void Framework::on_check_error(u32 slot, Cycle now) {
  (void)now;
  ++stats_.errors_reported;
  const Ioq::Entry& entry = ioq_.entry(slot);
  if (entry.allocated) {
    ++stats_.errors_by_module[static_cast<unsigned>(entry.module)];
  }
  if (!safe_mode_ && slot < alarm_counts_.size()) ++alarm_counts_[slot];
}

void Framework::handle_frame_chk(const isa::Instr& instr, Cycle now) {
  (void)now;
  const auto target = static_cast<isa::ModuleId>(instr.chk_imm & 0x7);
  Module* m = module(target);
  if (!m) return;
  if (instr.chk_op == kFrameOpEnableModule) {
    m->set_enabled(true);
    ++stats_.module_enables;
  } else if (instr.chk_op == kFrameOpDisableModule) {
    // The enable/disable unit desensitizes the module's path to the IOQ;
    // disabled modules are never routed events nor ticked.
    m->set_enabled(false);
    ++stats_.module_disables;
  }
}

void Framework::deliver(const Event& event, Cycle now) {
  if (const auto* d = std::get_if<DispatchEvent>(&event)) {
    for (auto& module : modules_) {
      if (module->enabled()) module->on_dispatch(d->info, now);
    }
  } else if (const auto* e = std::get_if<ExecuteEvent>(&event)) {
    for (auto& module : modules_) {
      if (module->enabled()) module->on_execute(e->info, now);
    }
  } else if (const auto* m = std::get_if<MemoryEvent>(&event)) {
    (void)m;  // Memory_Out is latched for module reads; no push handler yet.
  } else if (const auto* c = std::get_if<CommitEvent>(&event)) {
    for (auto& module : modules_) {
      if (module->enabled()) module->on_commit(c->info, now);
    }
  } else if (const auto* s = std::get_if<SquashEvent>(&event)) {
    for (auto& module : modules_) {
      if (module->enabled()) module->on_squash(s->tag, now);
    }
  }
}

void Framework::tick(Cycle now) {
  while (!pending_.empty() && pending_.front().visible_from <= now) {
    deliver(pending_.front().event, now);
    pending_.pop_front();
  }
  mau_.tick(now);
  for (auto& module : modules_) {
    if (module->enabled()) module->tick(now);
  }
  if (selfcheck_.enabled && !safe_mode_) run_selfcheck(now);
}

void Framework::run_selfcheck(Cycle now) {
  // False-alarm storm: reset the per-entry counters each watchdog window.
  if (now - alarm_window_start_ > selfcheck_.watchdog_timeout) {
    alarm_window_start_ = now;
    for (u32& count : alarm_counts_) count = 0;
  }
  for (u32 slot = 0; slot < ioq_.size(); ++slot) {
    if (alarm_counts_[slot] > selfcheck_.alarm_threshold) {
      trip_selfcheck(SelfCheckVerdict::kFalseAlarmStorm, now);
      return;
    }
    const Ioq::Entry& entry = ioq_.entry(slot);
    const Ioq::CheckBits observed = ioq_.observed(slot);
    if (entry.allocated && entry.pending_check && !observed.check_valid) {
      // Missing 0->1 transition: module not making progress (or checkValid
      // stuck at 0, which is indistinguishable and handled the same way).
      if (now - entry.allocated_at > selfcheck_.watchdog_timeout) {
        trip_selfcheck(SelfCheckVerdict::kNoProgress, now);
        return;
      }
    }
    if (!entry.allocated && (observed.check_valid || observed.check)) {
      // A free entry should read as 0; a missing 1->0 transition over the
      // watchdog interval means a stuck-at-1 output bit.
      if (free_high_since_[slot] == 0) free_high_since_[slot] = now;
      if (now - free_high_since_[slot] > selfcheck_.watchdog_timeout) {
        trip_selfcheck(SelfCheckVerdict::kStuckAt1, now);
        return;
      }
    } else {
      free_high_since_[slot] = 0;
    }
  }
}

void Framework::trip_selfcheck(SelfCheckVerdict verdict, Cycle now) {
  safe_mode_ = true;
  verdict_ = verdict;
  ++stats_.selfcheck_trips;
  if (stats_.selfcheck_trip_cycle == 0) stats_.selfcheck_trip_cycle = now;
  // Decoupling: every allocated entry is released to the pipeline with the
  // constant (checkValid=1, check=0) output.
  for (u32 slot = 0; slot < ioq_.size(); ++slot) {
    const Ioq::Entry& entry = ioq_.entry(slot);
    if (entry.allocated && entry.pending_check) {
      ioq_.module_write(entry.tag, /*check_valid=*/true, /*check=*/false, now,
                        /*safe_mode=*/true);
    }
  }
  if (selfcheck_observer_) selfcheck_observer_(verdict, now);
}

void Framework::recouple() {
  safe_mode_ = false;
  verdict_ = SelfCheckVerdict::kOk;
  alarm_window_start_ = 0;
  for (u32& count : alarm_counts_) count = 0;
  for (Cycle& since : free_high_since_) since = 0;
}

void Framework::reset() {
  pending_.clear();
  queues_.clear();
  ioq_.free_all();
  for (auto& module : modules_) module->reset();
  recouple();
}

}  // namespace rse::engine
