// Divergent multi-version execution (DME) on top of MLR layout
// decorrelation (docs/security.md).
//
// Two variants of the same guest run under distinct MLR seeds, so every
// randomized region (shlib, heap, stack) lives at a different absolute
// address in each.  Both committed-instruction traces are *canonicalized* —
// addresses and values inside a randomized region are rebased onto synthetic
// fixed region bases — and compared record by record.  A correct program is
// layout-transparent: its canonical traces agree exactly, so the first
// mismatched record is evidence that a fault or an attack made execution
// depend on the concrete layout.  The campaign classifier reports that as
// `detected_dme`.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "isa/program.hpp"
#include "os/guest_os.hpp"
#include "os/machine.hpp"

namespace rse::dme {

// Synthetic canonical bases the randomized regions are rebased onto.  The
// values are shared by every variant (only canonical forms are ever compared
// against canonical forms) and sit far above any real guest address so a
// canonicalized word can never collide with a raw one by accident.
inline constexpr Addr kCanonShlibBase = 0x9000'0000;
inline constexpr Addr kCanonHeapBase = 0xA000'0000;
inline constexpr Addr kCanonStackBase = 0xB000'0000;

/// Spans of the heap and stack regions the canonicalizer recognizes.  Wide
/// envelopes are fine: both variants use the same spans relative to their
/// own bases, so a word is either in-region for both or for neither.
inline constexpr Addr kStackSpan = 0x0020'0000;  // thread stacks below base
inline constexpr Addr kHeapSpan = 0x0400'0000;   // sbrk growth above base
inline constexpr Addr kShlibSpan = 0x0040'0000;

/// Per-variant relocation map: the loader's (possibly randomized) region
/// bases, captured after GuestOs::load().  canonicalize() rebases an address
/// through it; addresses outside every region (text, static data) are
/// position-fixed and pass through unchanged.
struct RegionMap {
  Addr stack_base = 0;
  Addr heap_base = 0;
  Addr shlib_base = 0;

  static RegionMap of(const os::GuestOs& guest) {
    return RegionMap{guest.stack_base(), guest.heap_base(), guest.shlib_base()};
  }

  Addr canonicalize(Addr a) const {
    // Stack wins over heap wins over shlib (regions never overlap in
    // practice; the order makes the map total regardless).
    if (a >= stack_base - kStackSpan && a < stack_base + 64) {
      return kCanonStackBase + (a - (stack_base - kStackSpan));
    }
    if (a >= heap_base && a < heap_base + kHeapSpan) {
      return kCanonHeapBase + (a - heap_base);
    }
    if (a >= shlib_base && a < shlib_base + kShlibSpan) {
      return kCanonShlibBase + (a - shlib_base);
    }
    return a;
  }
};

inline constexpr u8 kFlagMem = 1;
inline constexpr u8 kFlagStore = 2;

/// One committed instruction in canonical form.  Raw and canonical forms of
/// the effective address and memory value are both kept: a record matches
/// when either form agrees (a raw match means the word was layout-fixed; a
/// canonical match means it was layout-relative in both variants).  Layout-
/// dependent corruption cannot satisfy either form forever — it surfaces at
/// the first consuming load or control transfer.
struct TraceRecord {
  Addr pc = 0;
  Word raw = 0;  // fetched instruction word
  u8 flags = 0;  // kFlagMem | kFlagStore
  Addr ea = 0;
  Word value = 0;
  Addr ea_canon = 0;
  Word value_canon = 0;

  bool matches(const TraceRecord& o) const {
    if (pc != o.pc || raw != o.raw || flags != o.flags) return false;
    if (!(flags & kFlagMem)) return true;
    if (ea != o.ea && ea_canon != o.ea_canon) return false;
    return value == o.value || value_canon == o.value_canon;
  }
};

struct CanonicalTrace {
  std::vector<TraceRecord> records;
  bool truncated = false;  // hit the record cap; comparison stops there
};

/// Default per-run record cap (~56 MB of records).  Campaign DME runs use
/// short workloads; the cap keeps a runaway variant from exhausting memory.
inline constexpr u64 kDefaultMaxRecords = 2'000'000;

inline TraceRecord make_record(const RegionMap& map, Addr pc, Word raw, bool is_mem,
                               bool is_store, Addr ea, Word value) {
  TraceRecord r;
  r.pc = pc;
  r.raw = raw;
  r.flags = static_cast<u8>((is_mem ? kFlagMem : 0) | (is_store ? kFlagStore : 0));
  if (is_mem) {
    r.ea = ea;
    r.value = value;
    r.ea_canon = map.canonicalize(ea);
    r.value_canon = static_cast<Word>(map.canonicalize(value));
  }
  return r;
}

/// Streaming comparator: feed variant-A records as they commit, against the
/// reference variant's recorded trace.  The first mismatch is terminal —
/// everything after a divergence point is noise, so `divergences()` is 0 or
/// 1 and `first_divergence()` is the canonical-trace position where the
/// traces split.
class TraceChecker {
 public:
  TraceChecker(const CanonicalTrace* reference, RegionMap own)
      : ref_(reference), map_(own) {}

  void push(Addr pc, Word raw, bool is_mem, bool is_store, Addr ea, Word value) {
    if (diverged_ || pos_ >= max_records_) return;
    if (pos_ >= ref_->records.size()) {
      // Ran past the reference.  A truncated reference proves nothing;
      // otherwise the run executed instructions the reference never did.
      if (!ref_->truncated) mark_divergence();
      return;
    }
    const TraceRecord rec = make_record(map_, pc, raw, is_mem, is_store, ea, value);
    if (!rec.matches(ref_->records[pos_])) {
      mark_divergence();
      return;
    }
    ++pos_;
  }

  /// Call when the run finished cleanly (guest exit, no crash/host trap): a
  /// reference suffix the run never reached is then itself a divergence.
  /// Crashed or hung runs skip this — their truncation is explained by the
  /// crash, and charging it to DME would misclassify every crash.
  void finish_clean() {
    if (diverged_ || ref_->truncated || pos_ >= max_records_) return;
    if (pos_ < ref_->records.size()) mark_divergence();
  }

  /// Fast-forwarded runs: the verified fault-free prefix is bit-identical
  /// to the golden run by construction, so the comparator starts at the
  /// boundary's functional position instead of replaying the prefix.
  void set_position(u64 pos) { pos_ = pos; }

  u64 divergences() const { return diverged_ ? 1 : 0; }
  u64 first_divergence() const { return first_divergence_; }
  u64 position() const { return pos_; }

 private:
  void mark_divergence() {
    diverged_ = true;
    first_divergence_ = pos_;
  }

  const CanonicalTrace* ref_;
  RegionMap map_;
  u64 pos_ = 0;
  u64 max_records_ = kDefaultMaxRecords;
  bool diverged_ = false;
  u64 first_divergence_ = ~u64{0};
};

/// One DME variant: the workload's machine/os configuration with layout
/// randomization forced on under `mlr_seed`.
struct VariantSpec {
  os::MachineConfig machine;
  os::OsConfig os;
  std::vector<isa::ModuleId> host_enables;
  u64 mlr_seed = 1;
};

struct RecordedTrace {
  CanonicalTrace trace;
  RegionMap map;
  bool finished = false;
  int exit_code = 0;
  std::string output;
  bool fast = false;  // recorded through the fast-path engine (no bail)
};

/// Run the variant fault-free and record its canonical trace.  With
/// `prefer_fast` the fault-free body executes on the exec/ fast engine (the
/// engine's second consumer after campaign fast-forward) and falls back to
/// the cycle-accurate core mid-run on any bail — the recorded stream is the
/// committed-instruction stream either way, which the differential suite
/// pins.
RecordedTrace record_trace(const VariantSpec& spec, const isa::Program& program,
                           u64 max_records = kDefaultMaxRecords, bool prefer_fast = true);

/// Divergence summary of one recorded trace against a reference (used for
/// baselines: variant A fault-free vs. variant B fault-free).
struct DmeResult {
  u64 divergences = 0;
  u64 first_divergence = ~u64{0};
};

DmeResult compare_traces(const RecordedTrace& run, const CanonicalTrace& reference);

}  // namespace rse::dme
