// Hardware-cost estimator reproducing the paper's overhead arithmetic:
// footnote 4 of section 3.1 (input queues / MUXes) and the MLR hardware
// inventory of section 5.3.
#pragma once

#include "common/types.hpp"

namespace rse::engine {

struct QueueCost {
  u32 flip_flops = 0;
  u32 mux_gates = 0;
};

struct HwCostConfig {
  u32 input_queues = 5;        // Fetch_Out, Regfile_Data, Execute_Out, Memory_Out, Commit_Out
  u32 entries_per_queue = 16;  // == re-order buffer size
  u32 bits_per_entry = 32;     // 32-bit processor
  // MUX fan-in per input queue, as in Figure 1: two queues are fed by 4-to-1
  // MUXes, two by 2-to-1, one by 3-to-1.
  u32 mux4_inputs = 2;
  u32 mux2_inputs = 2;
  u32 mux3_inputs = 1;
};

/// Gate count of a single 1-bit MUX with feedback loop (footnote 4).
constexpr u32 mux_gate_count(u32 fan_in) {
  switch (fan_in) {
    case 2: return 4;
    case 3: return 5;
    case 4: return 6;
    default: return 4 + 2 * (fan_in > 2 ? fan_in - 2 : 0);  // linear extrapolation
  }
}

/// Flip-flop and gate cost of the framework's input interface.  With the
/// paper's parameters (5 queues x 16 entries x 32 bits) this evaluates to
/// 2560 flip-flops and 12,800 gates.
constexpr QueueCost input_interface_cost(const HwCostConfig& c) {
  QueueCost cost;
  cost.flip_flops = c.input_queues * c.entries_per_queue * c.bits_per_entry;
  const u32 per_bit = c.mux4_inputs * mux_gate_count(4) + c.mux2_inputs * mux_gate_count(2) +
                      c.mux3_inputs * mux_gate_count(3);
  cost.mux_gates = per_bit * c.bits_per_entry * c.entries_per_queue;
  return cost;
}

struct MlrHwCost {
  // Position-independent randomization datapath (Figure 3B).
  u32 pi_registers = 24;  // word-length registers
  u32 pi_adders = 4;
  u32 header_block_bytes = 4096;
  // Position-dependent (GOT/PLT) datapath.
  u32 got_buffer_bytes = 4096;
  u32 plt_buffer_bytes = 4096;
  u32 pd_adders = 5;  // 4 rewrite PLT entries in parallel + 1 address
  u32 pd_registers = 2;
};

constexpr MlrHwCost mlr_hw_cost() { return MlrHwCost{}; }

}  // namespace rse::engine
