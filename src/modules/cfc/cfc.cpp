#include "modules/cfc/cfc.hpp"

#include <algorithm>

namespace rse::modules {

bool CfcModule::transition_legal(const LastCommit& last, Addr to_pc) {
  const Addr fallthrough = last.pc + 4;
  if (to_pc == fallthrough) return true;
  if (to_pc == last.pc) return true;  // CHECK-error flush retried in place

  switch (last.instr.op_class()) {
    case isa::OpClass::kBranch:
      // Direct conditional branch: the only other legal successor is the
      // target encoded in the instruction itself.
      return to_pc == last.pc + 4 + (static_cast<Word>(last.instr.imm) << 2);
    case isa::OpClass::kJump:
      if (last.instr.op == isa::Op::kJ || last.instr.op == isa::Op::kJal) {
        return to_pc == (last.instr.target << 2);
      }
      // Indirect jump: the target is data-dependent.  With a static
      // successor table installed for this PC the landing must be in the
      // precomputed set; otherwise require at least a text-segment landing
      // (execute protection's contract).
      if (auto it = successors_.find(last.pc); it != successors_.end()) {
        ++stats_.indirect_static_checks;
        return std::binary_search(it->second.begin(), it->second.end(), to_pc);
      }
      ++stats_.indirect_range_checks;
      if (config_.text_hi != 0) {
        return to_pc >= config_.text_lo && to_pc < config_.text_hi;
      }
      return true;
    case isa::OpClass::kSyscall:
      return true;  // the OS may legitimately redirect control
    default:
      return false;  // straight-line code must stay sequential
  }
}

void CfcModule::on_commit(const engine::CommitInfo& info, Cycle now) {
  auto [it, inserted] = last_.try_emplace(info.thread);
  if (!inserted) {
    ++stats_.transitions_checked;
    if (!transition_legal(it->second, info.pc)) {
      ++stats_.violations;
      if (on_violation_) on_violation_(info.thread, it->second.pc, info.pc, now);
    }
  }
  it->second.pc = info.pc;
  it->second.instr = info.instr;
}

}  // namespace rse::modules
