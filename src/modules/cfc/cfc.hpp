// Control-Flow Checker module — a fifth, watchdog-style checker that
// demonstrates the framework's extensibility claim ("the generic interface
// can support ... a variety of reliability as well as security checking
// routines", sections 2-3; compare the watchdog/signature monitors of
// Mahmood & McCluskey and Wilken & Kong the paper positions itself against).
//
// The module rides the Commit_Out stream and checks the *sequence* of
// committed PCs per thread:
//
//   * after a non-control instruction, the next committed PC must be
//     sequential (pc+4) — or equal (a CHECK-error flush retries in place);
//   * after a direct branch, the next PC must be the fall-through or the
//     target computed from the instruction's own bits;
//   * after a direct jump/call, the next PC must be the encoded target;
//   * after an indirect jump (jr/jalr), the next PC must lie in the static
//     legal-successor set when the loader installed one for that PC
//     (analysis::indirect_targets), and must at least lie in the text
//     segment otherwise;
//   * a trap/syscall may be followed by anything the OS chooses.
//
// This catches *execution-path* control-flow corruption (a flipped branch
// target leaving the ALU/branch unit) that the ICM cannot see — the ICM
// guards the instruction's binary, not the datapath that consumes it.
// Detection happens at the commit of the wrongly-reached instruction, so
// recovery is containment (the OS treats the thread as crashed), not retry.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "rse/framework.hpp"
#include "rse/module.hpp"

namespace rse::modules {

struct CfcConfig {
  Addr text_lo = 0;  // legal range for indirect-jump targets (loader-set)
  Addr text_hi = 0;
};

/// Per-indirect-jump legal-successor sets, statically computed by the
/// analysis layer (analysis::indirect_targets) and installed by the loader.
/// Keys are the PCs of *resolved* indirect jumps; an indirect jump whose PC
/// is absent falls back to the text-range check.
using CfcSuccessorTable = std::unordered_map<Addr, std::vector<Addr>>;

struct CfcStats {
  u64 transitions_checked = 0;
  u64 violations = 0;
  u64 indirect_static_checks = 0;  // indirect transitions matched against the table
  u64 indirect_range_checks = 0;   // fallback: "lands somewhere in text"
};

class CfcModule : public engine::Module {
 public:
  /// Invoked on a control-flow violation: the thread whose stream broke,
  /// the instruction the flow came from, and the PC it illegally reached.
  using ViolationHandler = std::function<void(ThreadId thread, Addr from_pc, Addr to_pc,
                                              Cycle now)>;

  explicit CfcModule(engine::Framework& framework, CfcConfig config = {})
      : Module(framework), config_(config) {}

  isa::ModuleId id() const override { return isa::ModuleId::kCfc; }
  const char* name() const override { return "CFC"; }

  void set_violation_handler(ViolationHandler handler) { on_violation_ = std::move(handler); }
  void set_text_range(Addr lo, Addr hi) {
    config_.text_lo = lo;
    config_.text_hi = hi;
  }

  /// Install (or clear, with an empty table) the static legal-successor
  /// table.  Tightens the indirect-jump check from "within text range" to
  /// "within the statically computed target set" for every PC in the table.
  void set_successor_table(CfcSuccessorTable table) { successors_ = std::move(table); }
  bool has_successor_table() const { return !successors_.empty(); }

  void on_commit(const engine::CommitInfo& info, Cycle now) override;
  // Uniform module-reset semantics: dynamic state and statistics clear;
  // load-time configuration (text range, successor table) survives.
  void reset() override {
    last_.clear();
    stats_ = CfcStats{};
  }

  /// Forget a terminated thread's stream state.
  void forget_thread(ThreadId thread) { last_.erase(thread); }

  const CfcStats& stats() const { return stats_; }

  /// Snapshot hook: per-thread stream state, successor table, text range and
  /// statistics.  The violation handler is reinstalled by the guest OS.
  template <class Ar>
  void serialize_state(Ar& ar) {
    serialize_base(ar);
    ar.field(config_);
    ar.field(stats_);
    ar.field(successors_);
    ar.field(last_);
  }

 private:
  struct LastCommit {
    Addr pc = 0;
    isa::Instr instr;
  };

  bool transition_legal(const LastCommit& last, Addr to_pc);

  CfcConfig config_;
  CfcStats stats_;
  ViolationHandler on_violation_;
  CfcSuccessorTable successors_;
  std::unordered_map<ThreadId, LastCommit> last_;
};

}  // namespace rse::modules
