#include "modules/icm/icm.hpp"

#include <algorithm>

namespace rse::modules {

IcmModule::IcmModule(engine::Framework& framework, IcmConfig config)
    : Module(framework), config_(config) {
  cache_.reserve(config_.cache_entries);
  mau_buffer_.resize(static_cast<std::size_t>(config_.fetch_block_words) * 4);
}

void IcmModule::register_checked_instruction(Addr pc, Word raw) {
  auto [it, inserted] = pc_to_checker_.try_emplace(pc, config_.checker_base + checker_next_);
  if (!inserted) {
    // Re-registration (e.g. reload): refresh the stored copy in place.
    fw_->memory().write_u32(it->second, raw);
    return;
  }
  checker_to_pc_[it->second] = pc;
  fw_->memory().write_u32(it->second, raw);
  checker_next_ += 4;
}

void IcmModule::clear_checker_memory() {
  pc_to_checker_.clear();
  checker_to_pc_.clear();
  checker_next_ = 0;
  cache_.clear();
}

bool IcmModule::cache_lookup(Addr pc, Word* out) {
  for (CacheEntry& entry : cache_) {
    if (entry.pc == pc) {
      entry.lru = ++cache_stamp_;
      *out = entry.word;
      return true;
    }
  }
  return false;
}

void IcmModule::cache_insert(Addr pc, Word word) {
  for (CacheEntry& entry : cache_) {
    if (entry.pc == pc) {
      entry.word = word;
      entry.lru = ++cache_stamp_;
      return;
    }
  }
  if (cache_.size() < config_.cache_entries) {
    cache_.push_back({pc, word, ++cache_stamp_});
    return;
  }
  auto victim = std::min_element(cache_.begin(), cache_.end(),
                                 [](const CacheEntry& a, const CacheEntry& b) { return a.lru < b.lru; });
  *victim = {pc, word, ++cache_stamp_};
}

void IcmModule::on_dispatch(const engine::DispatchInfo& info, Cycle now) {
  if (info.instr.op == isa::Op::kChk && info.instr.chk_module == isa::ModuleId::kIcm) {
    PendingCheck check;
    check.chk_tag = info.tag;
    check.state = PendingCheck::State::kAwaitInstr;
    pending_.push_back(check);
    return;
  }
  // The first non-CHK dispatch after an awaiting CHECK is the checked
  // instruction (the dispatch stream is in program order).
  for (PendingCheck& check : pending_) {
    if (check.state != PendingCheck::State::kAwaitInstr) continue;
    check.inst_tag = info.tag;
    check.pc = info.pc;
    check.pipeline_copy = info.raw;
    check.acquired_at = now;
    ++stats_.checks_started;
    // ICM_IDLE stage: look up the redundant copy in the Icm_Cache.
    Word copy = 0;
    if (cache_lookup(info.pc, &copy)) {
      ++stats_.cache_hits;
      check.was_hit = true;
      if (stats_.first_hit_acquired == 0) stats_.first_hit_acquired = now;
      check.redundant_copy = copy;
      check.copy_ready = true;
      check.mismatch = copy != check.pipeline_copy;
      // copy available next cycle, comparison + IOQ write the cycle after
      check.write_at = now + 2;
      check.state = PendingCheck::State::kDone;
    } else {
      ++stats_.cache_misses;
      if (stats_.first_miss_acquired == 0) stats_.first_miss_acquired = now;
      check.state = PendingCheck::State::kMemWait;
    }
    break;
  }
}

void IcmModule::start_mem_request(PendingCheck& check, Cycle now) {
  auto it = pc_to_checker_.find(check.pc);
  if (it == pc_to_checker_.end()) {
    // No redundant copy registered: treat as unchecked (MATCH) so an
    // uninstrumented loader bug cannot wedge the pipeline.
    ++stats_.unknown_pc;
    check.mismatch = false;
    check.write_at = now + 1;
    check.state = PendingCheck::State::kDone;
    return;
  }
  // Fetch a naturally-aligned block of checked instructions: the contiguous
  // CheckerMemory placement gives spatial locality (section 4.3).
  const u32 block_bytes = config_.fetch_block_words * 4;
  mau_addr_ = it->second & ~(block_bytes - 1);
  mau_words_ = config_.fetch_block_words;
  mau_busy_ = true;
  const Addr pc = check.pc;
  fw_->mau().submit(isa::ModuleId::kIcm, mau_addr_, block_bytes, /*is_write=*/false,
                    mau_buffer_.data(), [this, pc](Cycle done_at) {
                      // Load the returned block into the Icm_Cache.
                      for (u32 w = 0; w < mau_words_; ++w) {
                        const Addr checker_addr = mau_addr_ + w * 4;
                        auto rit = checker_to_pc_.find(checker_addr);
                        if (rit == checker_to_pc_.end()) continue;
                        Word word;
                        std::memcpy(&word, mau_buffer_.data() + w * 4, 4);
                        cache_insert(rit->second, word);
                      }
                      mau_busy_ = false;
                      // Complete every pending check waiting on this block.
                      for (PendingCheck& waiting : pending_) {
                        if (waiting.state != PendingCheck::State::kMemWait) continue;
                        Word copy = 0;
                        if (!cache_lookup(waiting.pc, &copy)) continue;
                        waiting.redundant_copy = copy;
                        waiting.copy_ready = true;
                        waiting.mismatch = copy != waiting.pipeline_copy;
                        waiting.write_at = done_at + 2;  // compare, then broadcast
                        waiting.state = PendingCheck::State::kDone;
                      }
                      (void)pc;
                    });
}

void IcmModule::tick(Cycle now) {
  // Start at most one MAU request per cycle for the oldest waiting check.
  if (!mau_busy_) {
    for (PendingCheck& check : pending_) {
      if (check.state == PendingCheck::State::kMemWait) {
        start_mem_request(check, now);
        break;
      }
    }
  }
  // Retire completed checks whose IOQ write time has arrived.
  while (!pending_.empty()) {
    PendingCheck& front = pending_.front();
    if (front.state != PendingCheck::State::kDone || front.write_at > now) break;
    if (front.mismatch) ++stats_.mismatches;
    ++stats_.checks_completed;
    if (front.was_hit && stats_.first_hit_completed == 0 &&
        stats_.first_hit_acquired == front.acquired_at) {
      stats_.first_hit_completed = now;
    }
    if (!front.was_hit && stats_.first_miss_completed == 0 &&
        stats_.first_miss_acquired == front.acquired_at) {
      stats_.first_miss_completed = now;
    }
    fw_->module_write_ioq(*this, front.chk_tag, /*check_valid=*/true, front.mismatch, now);
    pending_.pop_front();
  }
}

void IcmModule::on_squash(const engine::InstrTag& tag, Cycle now) {
  (void)now;
  // Drop any pending check tied to the squashed CHECK or checked instruction.
  pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                [&tag](const PendingCheck& check) {
                                  return check.chk_tag == tag ||
                                         (check.state != PendingCheck::State::kAwaitInstr &&
                                          check.inst_tag == tag);
                                }),
                 pending_.end());
}

void IcmModule::reset() {
  // Uniform module-reset semantics: dynamic state and statistics clear;
  // load-time configuration (CheckerMemory contents) survives.
  pending_.clear();
  mau_busy_ = false;
  stats_ = IcmStats{};
}

}  // namespace rse::modules
