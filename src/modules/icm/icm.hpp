// Instruction Checker Module (paper section 4.3).
//
// A CHECK with module# = ICM marks the *following* instruction as checked.
// At load time the program is statically parsed and every checked
// instruction's binary is stored contiguously in a dedicated CheckerMemory
// region of main memory.  At run time the ICM pairs each ICM CHECK it sees
// in Fetch_Out with the next dispatched instruction, fetches the redundant
// copy (through a 256-entry LRU Icm_Cache, falling back to a MAU memory
// request), compares the two binaries, and writes MATCH/MISMATCH to the
// CHECK's IOQ entry.  The module is synchronous: the CHECK is blocking and
// commit stalls until checkValid is set.
//
// Timeline on an Icm_Cache hit matches Figure 6: the checked instruction is
// visible to the module at t+2 (fetch t, dispatch t+1, one-cycle latch),
// the redundant copy is available at t+3, the comparison completes and the
// IOQ is written at t+4, and the commit stage sees the result at t+5.
#pragma once

#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "rse/framework.hpp"
#include "rse/module.hpp"

namespace rse::modules {

struct IcmConfig {
  u32 cache_entries = 256;       // Icm_Cache capacity (instruction copies)
  u32 fetch_block_words = 8;     // checked instructions fetched per MAU request
  Addr checker_base = 0xC000'0000;  // CheckerMemory region in main memory
};

struct IcmStats {
  u64 checks_started = 0;
  u64 checks_completed = 0;
  u64 cache_hits = 0;
  u64 cache_misses = 0;
  u64 mismatches = 0;
  u64 unknown_pc = 0;  // checked instruction had no CheckerMemory entry
  // Figure 6 timeline probes: cycle the module acquired the checked
  // instruction and cycle the result reached the IOQ, for the first
  // Icm_Cache miss and the first hit.
  Cycle first_miss_acquired = 0;
  Cycle first_miss_completed = 0;
  Cycle first_hit_acquired = 0;
  Cycle first_hit_completed = 0;
};

class IcmModule : public engine::Module {
 public:
  IcmModule(engine::Framework& framework, IcmConfig config = {});

  isa::ModuleId id() const override { return isa::ModuleId::kIcm; }
  const char* name() const override { return "ICM"; }

  // ---- load-time interface (the "static parse") ----
  /// Register a checked instruction: appends its binary to CheckerMemory
  /// (contiguously, preserving program order for spatial locality) and
  /// records the PC -> CheckerMemory mapping.
  void register_checked_instruction(Addr pc, Word raw);
  /// Drop all registered instructions (new program load).
  void clear_checker_memory();

  // ---- module behaviour ----
  void on_dispatch(const engine::DispatchInfo& info, Cycle now) override;
  void on_squash(const engine::InstrTag& tag, Cycle now) override;
  void tick(Cycle now) override;
  void reset() override;

  const IcmStats& stats() const { return stats_; }

  /// Snapshot hook.  Requires quiescence (no MAU request outstanding, i.e.
  /// !mau_busy_) at capture: a kMemWait check's completion callback cannot be
  /// serialized.  CheckerMemory layout is also captured so a restored module
  /// matches even if registration order ever diverged from the fresh load.
  template <class Ar>
  void serialize_state(Ar& ar) {
    serialize_base(ar);
    ar.field(stats_);
    ar.field(pc_to_checker_);
    ar.field(checker_to_pc_);
    ar.field(checker_next_);
    ar.field(cache_);
    ar.field(cache_stamp_);
    ar.field(pending_);
    ar.field(mau_buffer_);
    ar.field(mau_busy_);
    ar.field(mau_addr_);
    ar.field(mau_words_);
  }

  /// True while a CheckerMemory fill is outstanding at the MAU (its
  /// completion callback holds a reference into this module).
  bool mau_pending() const { return mau_busy_; }

 private:
  struct PendingCheck {
    engine::InstrTag chk_tag;   // IOQ entry to write
    engine::InstrTag inst_tag;  // the checked instruction
    Addr pc = 0;
    Word pipeline_copy = 0;
    Word redundant_copy = 0;
    bool copy_ready = false;
    bool mismatch = false;
    bool was_hit = false;
    Cycle acquired_at = 0;
    Cycle write_at = 0;  // when the result reaches the IOQ
    enum class State { kAwaitInstr, kLookup, kMemWait, kDone } state = State::kAwaitInstr;
  };

  /// Fully-associative LRU cache of checker-memory words, keyed by PC.
  bool cache_lookup(Addr pc, Word* out);
  void cache_insert(Addr pc, Word word);
  void start_mem_request(PendingCheck& check, Cycle now);

  IcmConfig config_;
  IcmStats stats_;

  // CheckerMemory layout
  std::unordered_map<Addr, Addr> pc_to_checker_;  // pc -> address in checker region
  std::unordered_map<Addr, Addr> checker_to_pc_;  // reverse (for block fills)
  Addr checker_next_ = 0;

  // Icm_Cache
  struct CacheEntry {
    Addr pc;
    Word word;
    u64 lru;
  };
  std::vector<CacheEntry> cache_;
  u64 cache_stamp_ = 0;

  std::deque<PendingCheck> pending_;
  std::vector<u8> mau_buffer_;
  bool mau_busy_ = false;
  Addr mau_addr_ = 0;
  u32 mau_words_ = 0;
};

}  // namespace rse::modules
