#include "modules/ddt/ddt.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <iterator>

namespace rse::modules {

DdtModule::DdtModule(engine::Framework& framework, DdtConfig config)
    : Module(framework), config_(config) {
  assert(config_.max_threads <= 64 && "DDM row is modeled as a 64-bit word");
  ddm_.assign(config_.max_threads, 0);
  mau_buffer_.resize(config_.max_threads * 8);
}

DdtModule::PstEntry& DdtModule::pst_lookup(u32 page) {
  auto [it, inserted] = pst_.try_emplace(page);
  it->second.lru = ++pst_stamp_;
  if (inserted) maybe_evict();
  return it->second;
}

void DdtModule::maybe_evict() {
  if (config_.pst_entries == 0 || pst_.size() <= config_.pst_entries) return;
  auto victim = pst_.begin();
  for (auto it = pst_.begin(); it != pst_.end(); ++it) {
    if (it->second.lru < victim->second.lru) victim = it;
  }
  pst_.erase(victim);
  ++stats_.pst_evictions;
}

void DdtModule::on_dispatch(const engine::DispatchInfo& info, Cycle now) {
  if (info.instr.op != isa::Op::kChk || info.instr.chk_module != isa::ModuleId::kDdt) return;
  if (info.wrong_path) return;  // never act on speculative wrong-path CHECKs
  if (info.instr.chk_op == kDdtOpQueryMatrix) {
    write_matrix_to_guest(info.operands[0], now, info.tag);
    return;
  }
  // Unknown DDT op: acknowledge so the pipeline never hangs on it.
  fw_->module_write_ioq(*this, info.tag, /*check_valid=*/true, /*check=*/false, now);
}

void DdtModule::write_matrix_to_guest(Addr dest, Cycle now, const engine::InstrTag& tag) {
  (void)now;
  // Serialize the DDM (one 64-bit row per thread) into the module buffer and
  // ship it to guest memory through the MAU.  The CHECK completes when the
  // transfer lands.
  std::memcpy(mau_buffer_.data(), ddm_.data(), ddm_.size() * 8);
  const engine::InstrTag chk_tag = tag;
  fw_->mau().submit(isa::ModuleId::kDdt, dest, static_cast<u32>(ddm_.size() * 8),
                    /*is_write=*/true, mau_buffer_.data(), [this, chk_tag](Cycle done_at) {
                      fw_->module_write_ioq(*this, chk_tag, /*check_valid=*/true,
                                            /*check=*/false, done_at);
                    });
}

void DdtModule::set_footprint_table(DdtFootprint footprint) {
  footprint_ = std::move(footprint);
  std::sort(footprint_.checked_pcs.begin(), footprint_.checked_pcs.end());
  std::sort(footprint_.pages.begin(), footprint_.pages.end());
  std::sort(footprint_.store_pages.begin(), footprint_.store_pages.end());
  std::sort(footprint_.pc_pages.begin(), footprint_.pc_pages.end(),
            [](const DdtFootprint::SitePages& a, const DdtFootprint::SitePages& b) {
              return a.pc < b.pc;
            });
  for (DdtFootprint::SitePages& site : footprint_.pc_pages) {
    std::sort(site.pages.begin(), site.pages.end());
  }
  allowed_pages_.clear();
  allowed_pages_.insert(footprint_.pages.begin(), footprint_.pages.end());
  runtime_pages_.clear();
  // Replacing the table (a new program load) must not inherit the previous
  // program's speculative PST entries: drop every entry that is still
  // pre-reserved (never confirmed by a real store) so the new table's
  // pre-reservation starts from its own prediction, not a merge of both.
  // Entries a store did touch are live dynamic state and stay.
  for (auto it = pst_.begin(); it != pst_.end();) {
    it = it->second.prereserved ? pst_.erase(it) : std::next(it);
  }
  apply_prereservation();
}

void DdtModule::add_footprint_pages(const std::vector<u32>& pages) {
  if (footprint_.empty() || pages.empty()) return;
  for (u32 page : pages) {
    runtime_pages_.insert(page);
    if (allowed_pages_.insert(page).second) footprint_.pages.push_back(page);
  }
  std::sort(footprint_.pages.begin(), footprint_.pages.end());
}

void DdtModule::apply_prereservation() {
  // Activation benefit of the static signature: PST entries for every
  // statically predicted store page are allocated up front, so the first
  // store to each pays no insertion/eviction work.  Bounded by the LRU cap.
  for (u32 page : footprint_.store_pages) {
    if (config_.pst_entries != 0 && pst_.size() >= config_.pst_entries) break;
    auto [it, inserted] = pst_.try_emplace(page);
    if (inserted) {
      it->second.lru = ++pst_stamp_;
      it->second.prereserved = true;
      ++stats_.pst_prereserved;
    }
  }
}

void DdtModule::check_footprint(const engine::CommitInfo& info, u32 page, bool is_store,
                                Cycle now) {
  if (footprint_.empty()) return;
  if (!std::binary_search(footprint_.checked_pcs.begin(), footprint_.checked_pcs.end(),
                          info.pc)) {
    return;  // statically unresolved site: never checked (soundness)
  }
  ++stats_.footprint_checks;
  // Per-site refinement (context-sensitive analyzer): a site with its own
  // page table is checked against that table plus the runtime-registered
  // stack pages; sites without one use the whole-program set.
  const auto site = std::lower_bound(
      footprint_.pc_pages.begin(), footprint_.pc_pages.end(), info.pc,
      [](const DdtFootprint::SitePages& s, Addr pc) { return s.pc < pc; });
  if (site != footprint_.pc_pages.end() && site->pc == info.pc) {
    if (std::binary_search(site->pages.begin(), site->pages.end(), page)) return;
    if (runtime_pages_.count(page) != 0) return;
  } else if (allowed_pages_.count(page) != 0) {
    return;
  }
  ++stats_.footprint_violations;
  if (on_footprint_violation_) {
    on_footprint_violation_(info.pc, page, info.thread, is_store, now);
  }
}

void DdtModule::on_commit(const engine::CommitInfo& info, Cycle now) {
  if (info.instr.op_class() != isa::OpClass::kLoad) return;
  if (info.thread >= config_.max_threads) return;
  ++stats_.tracked_loads;
  const u32 page = mem::page_of(info.eff_addr);
  check_footprint(info, page, /*is_store=*/false, now);
  PstEntry& entry = pst_lookup(page);
  const ThreadId t = info.thread;
  if (entry.read_owner == kNoThread) {
    // First recorded access: the reader becomes both owners without a
    // dependency (matches the near-zero tracking cost of a single thread).
    entry.read_owner = t;
    if (entry.write_owner == kNoThread) entry.write_owner = t;
    return;
  }
  if (entry.read_owner != t) {
    entry.read_owner = t;
    const ThreadId producer = entry.write_owner;
    if (producer != kNoThread && producer != t) {
      // Section 4.2.1: logging a dependency takes the module one cycle, so
      // it "may lag behind the pipeline by at most 1 cycle — if a new load
      // which creates a new dependency arrives within this time the module
      // fails to log" it.  Modeled behind a flag (off by default).
      if (config_.model_log_lag && last_dep_logged_at_ != 0 &&
          now <= last_dep_logged_at_ + 1) {
        ++stats_.lag_missed_dependencies;
        return;
      }
      const u64 bit = u64{1} << t;
      if (!(ddm_[producer] & bit)) {
        ddm_[producer] |= bit;
        ++stats_.dependencies_logged;
      }
      last_dep_logged_at_ = now;
    }
  }
}

Cycle DdtModule::on_store_commit(const engine::CommitInfo& info, Cycle now) {
  if (info.thread >= config_.max_threads) return 0;
  ++stats_.tracked_stores;
  const u32 page = mem::page_of(info.eff_addr);
  check_footprint(info, page, /*is_store=*/true, now);
  PstEntry& entry = pst_lookup(page);
  if (entry.prereserved) {
    entry.prereserved = false;
    ++stats_.prereserve_hits;
  }
  const ThreadId t = info.thread;
  Cycle stall = 0;
  if (entry.write_owner == kNoThread) {
    // First write to an untracked page: take ownership without a checkpoint.
    entry.write_owner = t;
    entry.read_owner = t;
    return 0;
  }
  if (entry.write_owner != t) {
    // Figure 5: a write by a non-owner raises SavePage.  The OS exception
    // handler checkpoints the page (its content is still pre-store) and the
    // process stays suspended until the copy completes.
    ++stats_.save_page_exceptions;
    if (on_save_page_) stall = on_save_page_(page, t, now);
    entry.write_owner = t;
    entry.read_owner = t;
  }
  return stall;
}

bool DdtModule::depends(ThreadId producer, ThreadId consumer) const {
  if (producer >= config_.max_threads || consumer >= config_.max_threads) return false;
  return (ddm_[producer] >> consumer) & 1;
}

std::vector<ThreadId> DdtModule::dependent_closure(ThreadId faulty) const {
  std::vector<ThreadId> closure;
  if (faulty >= config_.max_threads) return closure;
  std::vector<bool> seen(config_.max_threads, false);
  std::vector<ThreadId> frontier{faulty};
  seen[faulty] = true;
  while (!frontier.empty()) {
    const ThreadId producer = frontier.back();
    frontier.pop_back();
    closure.push_back(producer);
    const u64 row = ddm_[producer];
    for (u32 consumer = 0; consumer < config_.max_threads; ++consumer) {
      if (((row >> consumer) & 1) && !seen[consumer]) {
        seen[consumer] = true;
        frontier.push_back(consumer);
      }
    }
  }
  std::sort(closure.begin(), closure.end());
  return closure;
}

DdtModule::PageOwners DdtModule::page_owners(u32 page) const {
  auto it = pst_.find(page);
  if (it == pst_.end()) return PageOwners{};
  return PageOwners{it->second.read_owner, it->second.write_owner};
}

void DdtModule::forget_threads(const std::vector<ThreadId>& threads) {
  u64 mask = 0;
  for (ThreadId t : threads) {
    if (t < config_.max_threads) {
      ddm_[t] = 0;
      mask |= u64{1} << t;
    }
  }
  for (u64& row : ddm_) row &= ~mask;
  for (auto it = pst_.begin(); it != pst_.end();) {
    const bool read_dead = std::find(threads.begin(), threads.end(), it->second.read_owner) !=
                           threads.end();
    const bool write_dead = std::find(threads.begin(), threads.end(), it->second.write_owner) !=
                            threads.end();
    if (read_dead || write_dead) {
      it = pst_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<u32> DdtModule::tracked_pages() const {
  std::vector<u32> pages;
  pages.reserve(pst_.size());
  for (const auto& [page, entry] : pst_) pages.push_back(page);
  std::sort(pages.begin(), pages.end());
  return pages;
}

void DdtModule::reset() {
  // Uniform module-reset semantics: dynamic state AND statistics go back to
  // zero; load-time configuration (the footprint table, like the ICM's
  // checker memory or the CFC's successor table) survives, and its PST
  // pre-reservation is re-applied to the fresh table.
  stats_ = DdtStats{};
  pst_.clear();
  pst_stamp_ = 0;
  last_dep_logged_at_ = 0;
  std::fill(ddm_.begin(), ddm_.end(), 0);
  apply_prereservation();
}

}  // namespace rse::modules
