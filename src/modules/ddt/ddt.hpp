// Data Dependency Tracker (paper section 4.2).
//
// Page-granularity tracking of inter-thread data dependencies.  Each memory
// page has a read-owner and a write-owner (Page Status Table).  When thread
// t reads a page whose read-owner differs, t becomes the read-owner and the
// dependency write_owner -> t is recorded in the Data Dependency Matrix.
// When thread t writes a page it does not write-own, a SavePage exception
// checkpoints the page (handled by the OS) *before* the store lands, and t
// becomes both owners — the state machine of Figure 5.
//
// The module is asynchronous: dependency logging happens on the Commit_Out
// signal so no speculative state ever enters the module.  The SavePage path
// is the exception — it intercepts the store at commit, suspending the
// process until the page is saved.
#pragma once

#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "mem/main_memory.hpp"
#include "rse/framework.hpp"
#include "rse/module.hpp"

namespace rse::modules {

// CHECK operations for the DDT (enable/disable go through the framework).
inline constexpr u8 kDdtOpQueryMatrix = 3;  // param = destination buffer address

struct DdtConfig {
  u32 max_threads = 32;   // DDM is max_threads x max_threads bits
  u32 pst_entries = 0;    // 0 = unbounded; otherwise LRU-capped "hot page" table
  bool model_log_lag = false;  // model the 1-cycle lag window of section 4.2.1
};

struct DdtStats {
  u64 tracked_loads = 0;
  u64 tracked_stores = 0;
  u64 dependencies_logged = 0;
  u64 save_page_exceptions = 0;
  u64 pst_evictions = 0;
  u64 lag_missed_dependencies = 0;
};

class DdtModule : public engine::Module {
 public:
  /// SavePage handler: the OS checkpoints `page` (content is still
  /// pre-store) and returns the number of cycles the process is suspended.
  using SavePageHandler = std::function<Cycle(u32 page, ThreadId new_writer, Cycle now)>;

  DdtModule(engine::Framework& framework, DdtConfig config = {});

  isa::ModuleId id() const override { return isa::ModuleId::kDdt; }
  const char* name() const override { return "DDT"; }

  void set_save_page_handler(SavePageHandler handler) { on_save_page_ = std::move(handler); }

  void on_dispatch(const engine::DispatchInfo& info, Cycle now) override;
  void on_commit(const engine::CommitInfo& info, Cycle now) override;
  Cycle on_store_commit(const engine::CommitInfo& info, Cycle now) override;
  void reset() override;

  // ---- recovery-side queries (the OS exception handler's privileged view;
  //      guest code uses the kDdtOpQueryMatrix CHECK instead) ----
  /// True if `consumer` directly depends on `producer`.
  bool depends(ThreadId producer, ThreadId consumer) const;
  /// All threads transitively dependent on `faulty` (including `faulty`).
  std::vector<ThreadId> dependent_closure(ThreadId faulty) const;
  struct PageOwners {
    ThreadId read_owner = kNoThread;
    ThreadId write_owner = kNoThread;
  };
  PageOwners page_owners(u32 page) const;
  /// Clear the DDM rows/columns of terminated threads and forget their page
  /// ownership (post-recovery cleanup).
  void forget_threads(const std::vector<ThreadId>& threads);

  const DdtStats& stats() const { return stats_; }
  const DdtConfig& config() const { return config_; }

 private:
  struct PstEntry {
    ThreadId read_owner = kNoThread;
    ThreadId write_owner = kNoThread;
    u64 lru = 0;
  };

  PstEntry& pst_lookup(u32 page);
  void maybe_evict();
  void write_matrix_to_guest(Addr dest, Cycle now, const engine::InstrTag& tag);

  DdtConfig config_;
  DdtStats stats_;
  SavePageHandler on_save_page_;

  std::unordered_map<u32, PstEntry> pst_;
  u64 pst_stamp_ = 0;
  std::vector<u64> ddm_;  // row r bit c: thread c depends on thread r
  Cycle last_dep_logged_at_ = 0;  // for the optional 1-cycle lag model

  std::vector<u8> mau_buffer_;
};

}  // namespace rse::modules
