// Data Dependency Tracker (paper section 4.2).
//
// Page-granularity tracking of inter-thread data dependencies.  Each memory
// page has a read-owner and a write-owner (Page Status Table).  When thread
// t reads a page whose read-owner differs, t becomes the read-owner and the
// dependency write_owner -> t is recorded in the Data Dependency Matrix.
// When thread t writes a page it does not write-own, a SavePage exception
// checkpoints the page (handled by the OS) *before* the store lands, and t
// becomes both owners — the state machine of Figure 5.
//
// The module is asynchronous: dependency logging happens on the Commit_Out
// signal so no speculative state ever enters the module.  The SavePage path
// is the exception — it intercepts the store at commit, suspending the
// process until the page is saved.
#pragma once

#include <functional>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mem/main_memory.hpp"
#include "rse/framework.hpp"
#include "rse/module.hpp"

namespace rse::modules {

// CHECK operations for the DDT (enable/disable go through the framework).
inline constexpr u8 kDdtOpQueryMatrix = 3;  // param = destination buffer address

struct DdtConfig {
  u32 max_threads = 32;   // DDM is max_threads x max_threads bits
  u32 pst_entries = 0;    // 0 = unbounded; otherwise LRU-capped "hot page" table
  bool model_log_lag = false;  // model the 1-cycle lag window of section 4.2.1
};

struct DdtStats {
  u64 tracked_loads = 0;
  u64 tracked_stores = 0;
  u64 dependencies_logged = 0;
  u64 save_page_exceptions = 0;
  u64 pst_evictions = 0;
  u64 lag_missed_dependencies = 0;
  // Static-footprint mode (set_footprint_table):
  u64 footprint_checks = 0;      // committed accesses at statically resolved sites
  u64 footprint_violations = 0;  // such accesses landing outside the predicted set
  u64 pst_prereserved = 0;       // PST entries pre-reserved at activation
  u64 prereserve_hits = 0;       // first store touch that found its entry waiting
};

/// Static page-access signature handed down by the loader (the analyzer's
/// `PageFootprint` resolved against the process layout).  Only accesses whose
/// commit PC is in `checked_pcs` are checked — sites the data-flow pass could
/// not bound stay unchecked, so partial resolution never false-positives.
struct DdtFootprint {
  std::vector<Addr> checked_pcs;  // sorted PCs of statically resolved sites
  std::vector<u32> pages;         // sorted allowed pages (data + stack + gp)
  std::vector<u32> store_pages;   // sorted subset to pre-reserve PST entries for

  /// Per-site page table from the context-sensitive analyzer: a site listed
  /// here is checked against its own pages (plus any runtime-registered
  /// stack pages) instead of the global `pages` set.  Sites not listed fall
  /// back to the global set, so the table is a pure refinement — empty at
  /// context depth 0.
  struct SitePages {
    Addr pc = 0;
    std::vector<u32> pages;  // sorted

    template <class Ar>
    void serialize_state(Ar& ar) {
      ar.field(pc);
      ar.field(pages);
    }
  };
  std::vector<SitePages> pc_pages;  // sorted by pc

  bool empty() const { return checked_pcs.empty(); }

  template <class Ar>
  void serialize_state(Ar& ar) {
    ar.field(checked_pcs);
    ar.field(pages);
    ar.field(store_pages);
    ar.field(pc_pages);
  }
};

class DdtModule : public engine::Module {
 public:
  /// SavePage handler: the OS checkpoints `page` (content is still
  /// pre-store) and returns the number of cycles the process is suspended.
  using SavePageHandler = std::function<Cycle(u32 page, ThreadId new_writer, Cycle now)>;
  /// Footprint-violation observer: a committed access at a statically
  /// resolved site (`pc`) landed on a page outside the predicted set.  The
  /// access itself still completes — the OS decides the response (crash
  /// containment, like a CFC violation).
  using FootprintViolationHandler =
      std::function<void(Addr pc, u32 page, ThreadId thread, bool is_store, Cycle now)>;

  DdtModule(engine::Framework& framework, DdtConfig config = {});

  isa::ModuleId id() const override { return isa::ModuleId::kDdt; }
  const char* name() const override { return "DDT"; }

  void set_save_page_handler(SavePageHandler handler) { on_save_page_ = std::move(handler); }
  void set_footprint_violation_handler(FootprintViolationHandler handler) {
    on_footprint_violation_ = std::move(handler);
  }

  /// Install (or clear, with an empty table) the static footprint.  Survives
  /// reset() like other load-time configuration; activation pre-reserves PST
  /// entries for the predicted store pages.
  void set_footprint_table(DdtFootprint footprint);
  /// Whitelist additional pages resolved only at run time (per-thread stack
  /// envelopes).  No-op until a footprint table is installed.
  void add_footprint_pages(const std::vector<u32>& pages);
  bool has_footprint() const { return !footprint_.empty(); }
  const DdtFootprint& footprint() const { return footprint_; }

  void on_dispatch(const engine::DispatchInfo& info, Cycle now) override;
  void on_commit(const engine::CommitInfo& info, Cycle now) override;
  Cycle on_store_commit(const engine::CommitInfo& info, Cycle now) override;
  void reset() override;

  // ---- recovery-side queries (the OS exception handler's privileged view;
  //      guest code uses the kDdtOpQueryMatrix CHECK instead) ----
  /// True if `consumer` directly depends on `producer`.
  bool depends(ThreadId producer, ThreadId consumer) const;
  /// All threads transitively dependent on `faulty` (including `faulty`).
  std::vector<ThreadId> dependent_closure(ThreadId faulty) const;
  struct PageOwners {
    ThreadId read_owner = kNoThread;
    ThreadId write_owner = kNoThread;
  };
  PageOwners page_owners(u32 page) const;
  /// Clear the DDM rows/columns of terminated threads and forget their page
  /// ownership (post-recovery cleanup).
  void forget_threads(const std::vector<ThreadId>& threads);
  /// Sorted pages currently resident in the PST (test/diagnostic view).
  std::vector<u32> tracked_pages() const;

  const DdtStats& stats() const { return stats_; }
  const DdtConfig& config() const { return config_; }

  /// Snapshot hook: the PST, DDM, footprint tables and statistics.  The
  /// SavePage / footprint-violation handlers are reinstalled by the guest OS
  /// constructor on the restore target, not serialized.
  template <class Ar>
  void serialize_state(Ar& ar) {
    serialize_base(ar);
    ar.field(stats_);
    ar.field(footprint_);
    ar.field(allowed_pages_);
    ar.field(runtime_pages_);
    ar.field(pst_);
    ar.field(pst_stamp_);
    ar.field(ddm_);
    ar.field(last_dep_logged_at_);
    ar.field(mau_buffer_);
  }

 private:
  struct PstEntry {
    ThreadId read_owner = kNoThread;
    ThreadId write_owner = kNoThread;
    u64 lru = 0;
    bool prereserved = false;  // allocated from the static footprint, untouched
  };

  PstEntry& pst_lookup(u32 page);
  void maybe_evict();
  void write_matrix_to_guest(Addr dest, Cycle now, const engine::InstrTag& tag);
  void check_footprint(const engine::CommitInfo& info, u32 page, bool is_store, Cycle now);
  void apply_prereservation();

  DdtConfig config_;
  DdtStats stats_;
  SavePageHandler on_save_page_;
  FootprintViolationHandler on_footprint_violation_;

  DdtFootprint footprint_;                 // load-time config; survives reset()
  std::unordered_set<u32> allowed_pages_;  // footprint_.pages as a hash set
  /// Pages whitelisted via add_footprint_pages (per-thread stack envelopes);
  /// a per-site table never excludes these.
  std::unordered_set<u32> runtime_pages_;

  std::unordered_map<u32, PstEntry> pst_;
  u64 pst_stamp_ = 0;
  std::vector<u64> ddm_;  // row r bit c: thread c depends on thread r
  Cycle last_dep_logged_at_ = 0;  // for the optional 1-cycle lag model

  std::vector<u8> mau_buffer_;
};

}  // namespace rse::modules
