// Adaptive Heartbeat Monitor (paper section 4.4, Figure 7).
//
// Structures: ENTITY_IDX (a CAM mapping entity IDs — processes, threads, or
// the OS — to slots), COUNTER_RAM (per-entity heartbeat counters incremented
// by "Increment Counter Value" CHECK instructions), and TIMEOUT_MEM (dynamic
// per-entity timeout values).  The Adaptive Timeout Monitor samples the
// counters at a fixed interval and recomputes each timeout with an adaptive
// algorithm.  The paper omits its algorithm; ours is a Jacobson-style
// mean + k * mean-deviation estimator over observed inter-beat gaps,
// clamped below by a floor — documented here as a substitution.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "rse/framework.hpp"
#include "rse/module.hpp"

namespace rse::modules {

// CHECK operations for the AHBM.
inline constexpr u8 kAhbmOpRegister = 3;    // param = entity id
inline constexpr u8 kAhbmOpBeat = 4;        // param = entity id
inline constexpr u8 kAhbmOpUnregister = 5;  // param = entity id

struct AhbmConfig {
  u32 entity_slots = 32;        // CAM capacity
  Cycle sample_interval = 2048;  // counter sampling period
  u32 deviation_multiplier = 4;  // timeout = mean + k * deviation
  Cycle min_timeout = 4096;      // floor (at least two sample periods)
  bool adaptive = true;          // false = fixed timeout (ablation baseline)
  Cycle fixed_timeout = 65536;   // used when !adaptive
};

struct AhbmStats {
  u64 beats_received = 0;
  u64 registrations = 0;
  u64 hangs_declared = 0;
  u64 false_resumes = 0;  // entity beat again after being declared hung
};

class AhbmModule : public engine::Module {
 public:
  /// Called when an entity misses its (adaptive) timeout.
  using HangHandler = std::function<void(u32 entity, Cycle now, Cycle silence)>;

  AhbmModule(engine::Framework& framework, AhbmConfig config = {});

  isa::ModuleId id() const override { return isa::ModuleId::kAhbm; }
  const char* name() const override { return "AHBM"; }

  void set_hang_handler(HangHandler handler) { on_hang_ = std::move(handler); }

  void on_dispatch(const engine::DispatchInfo& info, Cycle now) override;
  void tick(Cycle now) override;
  void reset() override;

  // ---- host-side interface (the OS kernel-driver path of section 4.4) ----
  bool register_entity(u32 entity, Cycle now);
  void unregister_entity(u32 entity);
  void beat(u32 entity, Cycle now);

  /// Current timeout for an entity (for tests/benches); nullopt if unknown.
  std::optional<Cycle> timeout_of(u32 entity) const;

  const AhbmStats& stats() const { return stats_; }

  /// Snapshot hook: the entity CAM (counters, timeouts, estimator state)
  /// plus statistics.  The hang handler is reinstalled by the guest OS.
  template <class Ar>
  void serialize_state(Ar& ar) {
    serialize_base(ar);
    ar.field(stats_);
    ar.field(slots_);
    ar.field(next_sample_);
  }

 private:
  struct Slot {
    bool used = false;
    u32 entity = 0;        // ENTITY_IDX
    u64 counter = 0;       // COUNTER_RAM
    u64 sampled_counter = 0;
    Cycle last_change = 0;
    Cycle timeout = 0;     // TIMEOUT_MEM
    // adaptive estimator state
    double mean_gap = 0;
    double dev_gap = 0;
    bool seeded = false;
    bool hung = false;
  };

  Slot* find(u32 entity);

  AhbmConfig config_;
  AhbmStats stats_;
  HangHandler on_hang_;
  std::vector<Slot> slots_;
  Cycle next_sample_ = 0;
};

}  // namespace rse::modules
