#include "modules/ahbm/ahbm.hpp"

#include <algorithm>
#include <cmath>

namespace rse::modules {

AhbmModule::AhbmModule(engine::Framework& framework, AhbmConfig config)
    : Module(framework), config_(config), slots_(config.entity_slots) {}

AhbmModule::Slot* AhbmModule::find(u32 entity) {
  for (Slot& slot : slots_) {
    if (slot.used && slot.entity == entity) return &slot;
  }
  return nullptr;
}

bool AhbmModule::register_entity(u32 entity, Cycle now) {
  if (find(entity) != nullptr) return true;
  for (Slot& slot : slots_) {
    if (slot.used) continue;
    slot = Slot{};
    slot.used = true;
    slot.entity = entity;
    slot.last_change = now;
    slot.timeout = config_.adaptive ? config_.min_timeout : config_.fixed_timeout;
    ++stats_.registrations;
    return true;
  }
  return false;  // CAM full
}

void AhbmModule::unregister_entity(u32 entity) {
  if (Slot* slot = find(entity)) slot->used = false;
}

void AhbmModule::beat(u32 entity, Cycle now) {
  Slot* slot = find(entity);
  if (slot == nullptr) return;
  ++stats_.beats_received;
  ++slot->counter;
  const Cycle gap = now - slot->last_change;
  slot->last_change = now;
  if (slot->hung) {
    slot->hung = false;
    ++stats_.false_resumes;
  }
  if (!config_.adaptive) return;
  // Jacobson-style estimator over inter-beat gaps.
  if (!slot->seeded) {
    slot->mean_gap = static_cast<double>(gap);
    slot->dev_gap = static_cast<double>(gap) / 2.0;
    slot->seeded = true;
  } else {
    const double err = static_cast<double>(gap) - slot->mean_gap;
    slot->mean_gap += err / 8.0;
    slot->dev_gap += (std::abs(err) - slot->dev_gap) / 4.0;
  }
}

void AhbmModule::on_dispatch(const engine::DispatchInfo& info, Cycle now) {
  if (info.instr.op != isa::Op::kChk || info.instr.chk_module != isa::ModuleId::kAhbm) return;
  if (info.wrong_path) return;  // never act on speculative wrong-path CHECKs
  const u32 entity = info.operands[0];
  switch (info.instr.chk_op) {
    case kAhbmOpRegister: register_entity(entity, now); break;
    case kAhbmOpBeat: beat(entity, now); break;
    case kAhbmOpUnregister: unregister_entity(entity); break;
    default: break;
  }
  fw_->module_write_ioq(*this, info.tag, /*check_valid=*/true, /*check=*/false, now);
}

void AhbmModule::tick(Cycle now) {
  if (now < next_sample_) return;
  next_sample_ = now + config_.sample_interval;
  for (Slot& slot : slots_) {
    if (!slot.used) continue;
    if (config_.adaptive && slot.seeded) {
      const double adaptive =
          slot.mean_gap + config_.deviation_multiplier * slot.dev_gap;
      slot.timeout = std::max<Cycle>(config_.min_timeout, static_cast<Cycle>(adaptive));
    } else if (config_.adaptive) {
      // Registration grace: until the first heartbeat seeds the estimator,
      // give the entity a generous rope so slow-but-alive entities are not
      // falsely accused before the monitor has learned their rate.
      slot.timeout = 32 * config_.min_timeout;
    } else {
      slot.timeout = config_.fixed_timeout;
    }
    slot.sampled_counter = slot.counter;
    const Cycle silence = now > slot.last_change ? now - slot.last_change : 0;
    if (!slot.hung && silence > slot.timeout) {
      slot.hung = true;
      ++stats_.hangs_declared;
      if (on_hang_) on_hang_(slot.entity, now, silence);
    }
  }
}

std::optional<Cycle> AhbmModule::timeout_of(u32 entity) const {
  for (const Slot& slot : slots_) {
    if (slot.used && slot.entity == entity) return slot.timeout;
  }
  return std::nullopt;
}

void AhbmModule::reset() {
  // Uniform module-reset semantics: dynamic state and statistics clear.
  for (Slot& slot : slots_) slot = Slot{};
  next_sample_ = 0;
  stats_ = AhbmStats{};
}

}  // namespace rse::modules
