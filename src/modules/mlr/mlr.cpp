#include "modules/mlr/mlr.hpp"

#include <algorithm>
#include <cstring>

namespace rse::modules {

MlrModule::MlrModule(engine::Framework& framework, MlrConfig config)
    : Module(framework), config_(config), rng_(config.seed) {
  buffer_.resize(config_.buffer_bytes);
  buffer2_.resize(config_.buffer_bytes);
}

Addr MlrModule::randomize(Addr base, Cycle now) {
  // Entropy: clock-cycle counter mixed with the module LFSR (Figure 3B shows
  // the adder fed by the clock cycle counter).  The offset keeps the base's
  // alignment and stays within the configured page range.
  const u64 entropy = rng_.next() ^ now;
  const u32 range = config_.entropy_pages * mem::kPageBytes;
  const u32 offset =
      static_cast<u32>(entropy % (range / config_.region_align)) * config_.region_align;
  return base + offset;
}

MlrModule::RandomizedBases MlrModule::randomize_bases(Addr shlib, Addr stack, Addr heap,
                                                      Cycle now) {
  ++stats_.pi_randomizations;
  stats_.last_op_cycles = kPiRandFixedCost;
  return RandomizedBases{randomize(shlib, now), randomize(stack, now + 1),
                         randomize(heap, now + 2)};
}

void MlrModule::on_dispatch(const engine::DispatchInfo& info, Cycle now) {
  if (info.instr.op != isa::Op::kChk || info.instr.chk_module != isa::ModuleId::kMlr) return;
  if (info.wrong_path) return;  // never act on speculative wrong-path CHECKs
  const Word param = info.operands[0];
  switch (info.instr.chk_op) {
    case kMlrOpHdrLoc: hdr_loc_ = param; break;
    case kMlrOpHdrSize: hdr_size_ = param; break;
    case kMlrOpGotOld: got_old_ = param; break;
    case kMlrOpGotSize: got_size_ = param; break;
    case kMlrOpGotNew: got_new_ = param; break;
    case kMlrOpPltLoc: plt_loc_ = param; break;
    case kMlrOpPltSize: plt_size_ = param; break;
    case kMlrOpPiRand:
      pi_result_loc_ = param;
      blocking_tag_ = info.tag;
      blocking_live_ = true;
      op_started_ = now;
      start_pi_rand(now);
      return;
    case kMlrOpCopyGot:
      blocking_tag_ = info.tag;
      blocking_live_ = true;
      op_started_ = now;
      start_got_copy(now);
      return;
    case kMlrOpWritePlt:
      blocking_tag_ = info.tag;
      blocking_live_ = true;
      op_started_ = now;
      start_plt_write(now);
      return;
    default:
      break;
  }
  // Parameter-register writes are non-blocking: acknowledge immediately.
  fw_->module_write_ioq(*this, info.tag, /*check_valid=*/true, /*check=*/false, now);
}

void MlrModule::finish_blocking(bool error, Cycle now) {
  if (!blocking_live_) return;
  stats_.last_op_cycles = now - op_started_;
  fw_->module_write_ioq(*this, blocking_tag_, /*check_valid=*/true, error, now);
  blocking_live_ = false;
  state_ = OpState::kIdle;
}

void MlrModule::start_pi_rand(Cycle now) {
  if (hdr_size_ == 0 || hdr_size_ > config_.buffer_bytes) {
    finish_blocking(/*error=*/true, now);
    return;
  }
  state_ = OpState::kPiReadHdr;
  fw_->mau().submit(isa::ModuleId::kMlr, hdr_loc_, hdr_size_, /*is_write=*/false,
                    buffer_.data(), [this](Cycle done_at) {
                      // Parse header, add the clock-cycle counter, write the
                      // three randomized bases back (Figure 3B datapath: the
                      // three adders run in parallel, one cycle).
                      u32 words[7] = {};
                      std::memcpy(words, buffer_.data(),
                                  std::min<u32>(hdr_size_, sizeof(words)));
                      const Addr shlib = words[4];
                      const Addr stack = words[5];
                      const Addr heap = words[6];
                      u32 results[3];
                      results[0] = randomize(shlib, done_at);
                      results[1] = randomize(stack, done_at);
                      results[2] = randomize(heap, done_at);
                      std::memcpy(buffer_.data(), results, sizeof(results));
                      state_ = OpState::kPiWriteResults;
                      fw_->mau().submit(isa::ModuleId::kMlr, pi_result_loc_, sizeof(results),
                                        /*is_write=*/true, buffer_.data(),
                                        [this](Cycle write_done) {
                                          ++stats_.pi_randomizations;
                                          finish_blocking(false, write_done + 1);
                                        });
                    });
}

void MlrModule::start_got_copy(Cycle now) {
  if (got_size_ == 0 || got_size_ > config_.buffer_bytes) {
    finish_blocking(/*error=*/true, now);
    return;
  }
  state_ = OpState::kGotRead;
  fw_->mau().submit(isa::ModuleId::kMlr, got_old_, got_size_, /*is_write=*/false,
                    buffer_.data(), [this](Cycle) {
                      state_ = OpState::kGotWrite;
                      fw_->mau().submit(isa::ModuleId::kMlr, got_new_, got_size_,
                                        /*is_write=*/true, buffer_.data(),
                                        [this](Cycle write_done) {
                                          ++stats_.got_copies;
                                          finish_blocking(false, write_done + 1);
                                        });
                    });
}

void MlrModule::start_plt_write(Cycle now) {
  if (plt_size_ == 0 || plt_size_ > config_.buffer_bytes) {
    finish_blocking(/*error=*/true, now);
    return;
  }
  state_ = OpState::kPltRead;
  fw_->mau().submit(
      isa::ModuleId::kMlr, plt_loc_, plt_size_, /*is_write=*/false, buffer2_.data(),
      [this](Cycle read_done) {
        // Rewrite PLT entries in the PLT buffer: each one-word entry holds
        // the address of the GOT slot its stub jumps through, retargeted
        // from the old GOT to the new GOT.  Four entries are processed per
        // cycle (the module's four parallel adders).
        const u32 entries = plt_size_ / 4;
        for (u32 i = 0; i < entries; ++i) {
          u32 got_ptr;
          std::memcpy(&got_ptr, buffer2_.data() + i * 4, 4);
          got_ptr = got_new_ + (got_ptr - got_old_);
          std::memcpy(buffer2_.data() + i * 4, &got_ptr, 4);
        }
        stats_.plt_entries_rewritten += entries;
        const Cycle rewrite_cycles =
            (entries + config_.parallel_adders - 1) / config_.parallel_adders;
        state_ = OpState::kPltRewrite;
        rewrite_done_at_ = read_done + rewrite_cycles;
      });
}

void MlrModule::tick(Cycle now) {
  if (state_ == OpState::kPltRewrite && now >= rewrite_done_at_) {
    state_ = OpState::kPltWrite;
    fw_->mau().submit(isa::ModuleId::kMlr, plt_loc_, plt_size_, /*is_write=*/true,
                      buffer2_.data(), [this](Cycle write_done) {
                        ++stats_.plt_rewrites;
                        finish_blocking(false, write_done + 1);
                      });
  }
}

u32 MlrModule::relocate_got(mem::MainMemory& memory, Addr old_got, Addr new_got,
                            u32 got_bytes, Addr plt, u32 plt_bytes) {
  std::vector<u8> got(got_bytes);
  memory.read_block(old_got, got.data(), got_bytes);
  memory.write_block(new_got, got.data(), got_bytes);
  const u32 entries = plt_bytes / 4;
  u32 rewritten = 0;
  for (u32 i = 0; i < entries; ++i) {
    const Addr slot = plt + i * 4;
    const Word p = memory.read_u32(slot);
    if (p >= old_got && p < old_got + got_bytes) {
      memory.write_u32(slot, new_got + (p - old_got));
      ++rewritten;
    }
  }
  ++stats_.got_copies;
  ++stats_.plt_rewrites;
  stats_.plt_entries_rewritten += rewritten;
  return rewritten;
}

void MlrModule::on_squash(const engine::InstrTag& tag, Cycle now) {
  (void)now;
  if (blocking_live_ && blocking_tag_ == tag) {
    // The blocking CHECK was squashed (e.g. a CHECK-error flush); abandon
    // the result but let any in-flight MAU transfer drain harmlessly.
    blocking_live_ = false;
  }
}

void MlrModule::reset() {
  // Uniform module-reset semantics: dynamic state and statistics clear.
  blocking_live_ = false;
  state_ = OpState::kIdle;
  stats_ = MlrStats{};
}

}  // namespace rse::modules
