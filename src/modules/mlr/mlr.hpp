// Memory Layout Randomization module (paper section 4.1, Figure 3).
//
// The randomization task is split between the program loader (a "portable
// library") and the MLR hardware.  The loader assembles a special header
// describing the position-independent regions, passes its location/size via
// CHECK instructions, and requests randomization; the module parses the
// header through the MAU, adds entropy derived from the clock-cycle counter,
// and writes the randomized region bases back to memory.  For the
// position-dependent GOT, the loader passes old/new GOT and PLT locations
// and the module copies the GOT and rewrites the PLT (four entries per
// cycle, using the module's four parallel adders) without any software loop.
//
// Header layout in guest memory (words):
//   [0] code segment start     [1] code segment length
//   [2] static data length     [3] uninitialized data length
//   [4] shared library base    [5] stack segment base    [6] heap segment base
// Randomized results (written to the address given by the PI_RAND CHECK):
//   [0] randomized shared library base  [1] randomized stack base
//   [2] randomized heap base
//
// PLT entry layout (1 word): the address of the GOT entry the stub jumps
// through.  Rewriting replaces it with got_new + (entry - got_old); the
// module's four adders rewrite four entries per cycle.
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "rse/framework.hpp"
#include "rse/module.hpp"

namespace rse::modules {

// CHECK operation numbers for the MLR module.
inline constexpr u8 kMlrOpHdrLoc = 3;    // param = header address
inline constexpr u8 kMlrOpHdrSize = 4;   // param = header size in bytes
inline constexpr u8 kMlrOpPiRand = 5;    // param = result address (blocking)
inline constexpr u8 kMlrOpGotOld = 6;    // param = old GOT address
inline constexpr u8 kMlrOpGotSize = 7;   // param = GOT size in bytes
inline constexpr u8 kMlrOpGotNew = 8;    // param = new GOT address
inline constexpr u8 kMlrOpCopyGot = 9;   // (blocking)
inline constexpr u8 kMlrOpPltLoc = 10;   // param = PLT address
inline constexpr u8 kMlrOpPltSize = 11;  // param = PLT size in bytes
inline constexpr u8 kMlrOpWritePlt = 12; // (blocking)

struct MlrConfig {
  u32 buffer_bytes = 4096;     // GOT buffer == PLT buffer == header block size
  u32 parallel_adders = 4;     // PLT entries rewritten per cycle
  u32 region_align = 16;       // randomized bases are 16-byte aligned
  u32 entropy_pages = 256;     // randomization range (pages) per region
  u64 seed = 0x4D4C52;         // supplements the clock-cycle counter entropy
};

struct MlrStats {
  u64 pi_randomizations = 0;
  u64 got_copies = 0;
  u64 plt_rewrites = 0;
  u64 plt_entries_rewritten = 0;
  Cycle last_op_cycles = 0;  // duration of the most recent blocking op
};

class MlrModule : public engine::Module {
 public:
  MlrModule(engine::Framework& framework, MlrConfig config = {});

  isa::ModuleId id() const override { return isa::ModuleId::kMlr; }
  const char* name() const override { return "MLR"; }

  void on_dispatch(const engine::DispatchInfo& info, Cycle now) override;
  void on_squash(const engine::InstrTag& tag, Cycle now) override;
  void tick(Cycle now) override;
  void reset() override;

  /// Host-side entry point used by the guest OS loader: randomize the three
  /// position-independent bases directly (models the loader invoking the
  /// module before the application starts).  Returns the fixed cycle cost.
  struct RandomizedBases {
    Addr shlib_base;
    Addr stack_base;
    Addr heap_base;
  };
  RandomizedBases randomize_bases(Addr shlib, Addr stack, Addr heap, Cycle now);
  /// The fixed penalty of position-independent randomization (paper: 56).
  static constexpr Cycle kPiRandFixedCost = 56;

  /// Host-side runtime re-randomization (the paper's section 4.1 extension):
  /// copy the GOT to `new_got` and retarget every PLT entry (and nothing
  /// else — pointer-section fixups are the OS's job).  Performs the memory
  /// movement functionally and returns the number of PLT entries rewritten;
  /// the caller charges the cycle cost from the bus timing.
  u32 relocate_got(mem::MainMemory& memory, Addr old_got, Addr new_got, u32 got_bytes,
                   Addr plt, u32 plt_bytes);

  const MlrStats& stats() const { return stats_; }

  /// True while a blocking randomization op is in flight (its MAU callbacks
  /// chain through this module's state machine).
  bool op_in_flight() const { return state_ != OpState::kIdle; }

  /// Snapshot hook.  Requires quiescence (state_ == kIdle) at capture — the
  /// blocking-op state machine chains MAU submits inside callbacks.
  template <class Ar>
  void serialize_state(Ar& ar) {
    serialize_base(ar);
    ar.field(stats_);
    ar.field(rng_);
    ar.field(hdr_loc_);
    ar.field(hdr_size_);
    ar.field(pi_result_loc_);
    ar.field(got_old_);
    ar.field(got_size_);
    ar.field(got_new_);
    ar.field(plt_loc_);
    ar.field(plt_size_);
    ar.field(state_);
    ar.field(blocking_tag_);
    ar.field(blocking_live_);
    ar.field(op_started_);
    ar.field(rewrite_done_at_);
    ar.field(buffer_);
    ar.field(buffer2_);
  }

 private:
  enum class OpState : u8 { kIdle, kPiReadHdr, kPiWriteResults, kGotRead, kGotWrite,
                            kPltRead, kPltRewrite, kPltWrite };

  Addr randomize(Addr base, Cycle now);
  void finish_blocking(bool error, Cycle now);
  void start_pi_rand(Cycle now);
  void start_got_copy(Cycle now);
  void start_plt_write(Cycle now);

  MlrConfig config_;
  MlrStats stats_;
  Xorshift64 rng_;

  // parameter registers (Figure 3B, "From CHECK Instruction Parameters")
  Addr hdr_loc_ = 0;
  u32 hdr_size_ = 0;
  Addr pi_result_loc_ = 0;
  Addr got_old_ = 0;
  u32 got_size_ = 0;
  Addr got_new_ = 0;
  Addr plt_loc_ = 0;
  u32 plt_size_ = 0;

  // in-flight blocking operation
  OpState state_ = OpState::kIdle;
  engine::InstrTag blocking_tag_{};
  bool blocking_live_ = false;
  Cycle op_started_ = 0;
  Cycle rewrite_done_at_ = 0;
  std::vector<u8> buffer_;   // header / GOT buffer
  std::vector<u8> buffer2_;  // PLT buffer
};

}  // namespace rse::modules
