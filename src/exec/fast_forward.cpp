#include "exec/fast_forward.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rse::exec {

FastForwardController::BoundaryMap FastForwardController::map_boundaries(
    os::GuestOs& guest, std::vector<Cycle> cycles, SyscallSchedule* schedule) {
  std::sort(cycles.begin(), cycles.end());
  cycles.erase(std::unique(cycles.begin(), cycles.end()), cycles.end());

  os::Machine& machine = guest.machine();
  cpu::Core& core = machine.core();
  if (schedule != nullptr) {
    // The hook fires before commit advances functional_pos() past the
    // syscall, so the key equals FastEngine::executed() at the moment a
    // fast prefix stops ON the same syscall.
    core.set_commit_trace([&core, schedule](Cycle now, Addr, const isa::Instr& instr, ThreadId) {
      if (instr.op == isa::Op::kSyscall) (*schedule)[core.functional_pos()] = now;
    });
  }

  BoundaryMap map;
  for (const Cycle cycle : cycles) {
    while (!guest.finished() && machine.now() < cycle) guest.step();
    if (guest.finished()) break;  // later cycles never apply a fault either
    Boundary boundary;
    boundary.position = core.functional_pos();
    boundary.inflight = core.inflight_ranges();
    map.emplace(cycle, std::move(boundary));
  }
  if (schedule != nullptr) core.set_commit_trace(nullptr);
  return map;
}

bool FastForwardController::fast_forward_to(os::GuestOs& guest, const isa::Program& program,
                                            u64 position, Cycle inject_cycle,
                                            const SyscallSchedule* schedule,
                                            FastSession::BailReason* bail) {
  FastSessionConfig config;  // strict syscall whitelist
  if (schedule != nullptr) {
    config.resume = true;
    config.syscall_schedule = schedule;
  }
  FastSession session(guest, config);
  session.seed_leaders(program);
  FastSession::Status status;
  try {
    status = session.run_until(position);
  } catch (const SimError&) {
    // A host-side trap in the fault-free prefix cannot happen on the
    // classic path (the golden run completed); treat it as a bail so the
    // classic rerun decides.
    if (bail != nullptr) *bail = FastSession::BailReason::kIllegal;
    return false;
  }
  if (status != FastSession::Status::kBoundary || session.executed() != position) {
    if (bail != nullptr) *bail = session.bail_reason();
    return false;
  }
  session.transplant(inject_cycle);
  return true;
}

}  // namespace rse::exec
