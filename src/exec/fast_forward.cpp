#include "exec/fast_forward.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rse::exec {

FastForwardController::BoundaryMap FastForwardController::map_boundaries(
    os::GuestOs& guest, std::vector<Cycle> cycles) {
  std::sort(cycles.begin(), cycles.end());
  cycles.erase(std::unique(cycles.begin(), cycles.end()), cycles.end());

  BoundaryMap map;
  os::Machine& machine = guest.machine();
  for (const Cycle cycle : cycles) {
    while (!guest.finished() && machine.now() < cycle) guest.step();
    if (guest.finished()) break;  // later cycles never apply a fault either
    map[cycle] = machine.core().functional_pos();
  }
  return map;
}

bool FastForwardController::fast_forward_to(os::GuestOs& guest, const isa::Program& program,
                                            u64 position, Cycle inject_cycle) {
  FastSession session(guest);  // strict syscall whitelist
  session.seed_leaders(program);
  FastSession::Status status;
  try {
    status = session.run_until(position);
  } catch (const SimError&) {
    // A host-side trap in the fault-free prefix cannot happen on the
    // classic path (the golden run completed); treat it as a bail so the
    // classic rerun decides.
    return false;
  }
  if (status != FastSession::Status::kBoundary || session.executed() != position) return false;
  session.transplant(inject_cycle);
  return true;
}

}  // namespace rse::exec
