#include "exec/block_cache.hpp"

#include <algorithm>

namespace rse::exec {

const DecodedBlock* BlockCache::lookup(Addr pc) {
  ++stats_.lookups;
  auto it = blocks_.find(pc);
  if (it != blocks_.end()) return &it->second;

  ++stats_.decodes;
  DecodedBlock block;
  block.start = pc;
  const u32 cap = chaining_ ? kMaxSuperblockInstrs : kMaxBlockInstrs;
  std::unordered_set<Addr> visited;
  Addr at = pc;
  while (block.instrs.size() < cap) {
    if (chaining_) {
      // Loop guard: a superblock never revisits a PC.  A followed jump back
      // into the superblock exits to the dispatcher at run time (the
      // continuity check fails), which re-enters through the cache at that
      // target's own block.
      if (!visited.insert(at).second) break;
      // Sequential decode must not run off the end of text into data.
      if (text_hi_ != 0 && !in_text(at)) break;
      if (at != pc && leaders_.count(at) != 0) block.chained = true;
    } else if (at != pc && leaders_.count(at) != 0) {
      // Stop before a foreign leader: execution entering at that leader must
      // find its own block, and two overlapping decodings of the same bytes
      // would double the invalidation bookkeeping.
      break;
    }
    const isa::Instr in = isa::decode(memory_->read_u32(at));
    block.instrs.push_back(in);
    block.pcs.push_back(at);
    // The engine decides whether to execute terminators (control flow) or
    // stop on them (syscall/illegal) — they end decode and stay in the block.
    if (in.op == isa::Op::kSyscall || in.op == isa::Op::kInvalid) break;
    if (!in.is_control()) {
      at += 4;
      continue;
    }
    if (!chaining_) break;
    // Chain only across statically-known single-successor transfers; a
    // conditional branch or register-indirect jump ends the superblock.
    if (in.op != isa::Op::kJ && in.op != isa::Op::kJal) break;
    const Addr target = in.target << 2;
    if (!in_text(target)) break;
    block.chained = true;
    at = target;
  }
  if (block.chained) ++stats_.superblocks;
  index_block(block);
  auto [pos, inserted] = blocks_.emplace(pc, std::move(block));
  (void)inserted;
  return &pos->second;
}

void BlockCache::index_block(const DecodedBlock& block) {
  // Register the page of every constituent instruction, not just the
  // leader's contiguous span: a superblock's chained tail can sit on pages
  // far from its start, and a store there must still tear the whole
  // superblock down.  Duplicate (page, start) entries from page-straddling
  // chains are harmless — invalidate() erases by block key.
  u32 prev = ~0u;
  for (const Addr at : block.pcs) {
    const u32 page = mem::page_of(at);
    if (page == prev) continue;
    page_index_[page].push_back(block.start);
    prev = page;
  }
}

void BlockCache::invalidate(Addr addr, u32 size) {
  const u32 first = mem::page_of(addr);
  const u32 last = mem::page_of(addr + (size ? size - 1 : 0));
  for (u32 page = first; page <= last; ++page) {
    auto it = page_index_.find(page);
    if (it == page_index_.end()) continue;
    for (const Addr start : it->second) {
      if (blocks_.erase(start) != 0) {
        ++stats_.invalidations;
        ++epoch_;  // orphan every threaded-dispatch link into erased blocks
      }
    }
    // Erased blocks may span other pages; their stale entries there are
    // harmless (erase of a missing key) and vanish on the next decode.
    page_index_.erase(it);
  }
}

void BlockCache::clear() {
  blocks_.clear();
  page_index_.clear();
  ++epoch_;  // links in any surviving DecodedBlock copies are now stale
}

}  // namespace rse::exec
