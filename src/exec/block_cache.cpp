#include "exec/block_cache.hpp"

#include <algorithm>

namespace rse::exec {

const DecodedBlock* BlockCache::lookup(Addr pc) {
  ++stats_.lookups;
  auto it = blocks_.find(pc);
  if (it != blocks_.end()) return &it->second;

  ++stats_.decodes;
  DecodedBlock block;
  block.start = pc;
  for (u32 i = 0; i < kMaxBlockInstrs; ++i) {
    const Addr at = pc + i * 4;
    // Stop before a foreign leader: execution entering at that leader must
    // find its own block, and two overlapping decodings of the same bytes
    // would double the invalidation bookkeeping.
    if (i > 0 && leaders_.count(at) != 0) break;
    const isa::Instr in = isa::decode(memory_->read_u32(at));
    block.instrs.push_back(in);
    // Terminators end the block and stay in it: the engine decides whether
    // to execute them (control flow) or stop on them (syscall/illegal).
    if (in.is_control() || in.op == isa::Op::kSyscall || in.op == isa::Op::kInvalid) break;
  }
  index_block(block);
  auto [pos, inserted] = blocks_.emplace(pc, std::move(block));
  (void)inserted;
  return &pos->second;
}

void BlockCache::index_block(const DecodedBlock& block) {
  const u32 first = mem::page_of(block.start);
  const u32 last = mem::page_of(block.start + static_cast<Addr>(block.instrs.size()) * 4 - 1);
  for (u32 page = first; page <= last; ++page) page_index_[page].push_back(block.start);
}

void BlockCache::invalidate(Addr addr, u32 size) {
  const u32 first = mem::page_of(addr);
  const u32 last = mem::page_of(addr + (size ? size - 1 : 0));
  for (u32 page = first; page <= last; ++page) {
    auto it = page_index_.find(page);
    if (it == page_index_.end()) continue;
    for (const Addr start : it->second) {
      if (blocks_.erase(start) != 0) ++stats_.invalidations;
    }
    // Erased blocks may span neighbouring pages; their stale entries there
    // are harmless (erase of a missing key) and vanish on the next decode.
    page_index_.erase(it);
  }
}

void BlockCache::clear() {
  blocks_.clear();
  page_index_.clear();
}

}  // namespace rse::exec
