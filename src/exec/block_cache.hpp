// Dynamic basic-block cache for the fast functional execution engine.
//
// Blocks are decoded lazily from guest memory the first time execution
// reaches a leader PC and are reused until a store into the text segment
// invalidates them.  A block runs from its leader up to (and including) the
// first terminator: any control-flow instruction, a syscall, or an
// undecodable word.  Optionally the static CFG's leaders (analysis/cfg.hpp)
// seed extra block boundaries so fast-mode blocks line up with the blocks
// the static analyses reason about.
//
// With chaining enabled (the default), decode does not stop at the first
// terminator: statically-known single-successor transfers (`j`, `jal`) are
// followed in place and straight-line decode continues across registered
// leaders and fall-through block ends, forming a *superblock* the engine
// dispatches without returning to the cache between constituent blocks.
// Chaining stops at anything with more than one or a dynamic successor
// (conditional branches, `jr`/`jalr`), at syscalls and undecodable words,
// at jumps leaving the registered text range, on revisiting a PC already in
// the superblock (loop guard), and at kMaxSuperblockInstrs.
//
// Invalidation is page-granular on the lookup side: every block registers
// itself with the 4 KB page of every constituent instruction (a superblock's
// tail can sit pages away from its leader), and invalidate(addr, size)
// erases every block registered on a page the written range touches.  That
// over-approximates (a store to one instruction kills neighbours on the
// page) but keeps the common case — no stores to text — entirely free.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"
#include "isa/instruction.hpp"
#include "mem/main_memory.hpp"

namespace rse::exec {

struct DecodedBlock {
  Addr start = 0;
  /// Pre-decoded instructions; instruction i sits at pcs[i].  Without
  /// chaining pcs[i] == start + 4*i; a superblock's tail may live anywhere
  /// in text after a followed jump.
  std::vector<isa::Instr> instrs;
  std::vector<Addr> pcs;
  /// True if decode followed at least one jump or crossed a leader —
  /// i.e. this block would not exist without chaining.
  bool chained = false;

  /// Threaded-dispatch successor links (chaining mode only): the blocks
  /// that followed this one on recent exits, keyed by exit PC.  Two slots
  /// cover a conditional terminator's pair of successors without thrash.
  /// A link is valid only while its `link_epoch` matches the cache's epoch
  /// — any invalidation or clear bumps the epoch, orphaning every link at
  /// once without walking the cache.  Mutable: the engine patches links
  /// through the const pointer lookup() hands out.
  mutable Addr link_pc[2] = {0, 0};
  mutable const DecodedBlock* link[2] = {nullptr, nullptr};
  mutable u64 link_epoch[2] = {0, 0};
  mutable u8 link_victim = 0;
};

struct BlockCacheStats {
  u64 lookups = 0;
  u64 decodes = 0;        // cache misses that built a block
  u64 invalidations = 0;  // blocks dropped by stores to text
  u64 superblocks = 0;    // decoded blocks that chained past a terminator
};

class BlockCache {
 public:
  explicit BlockCache(mem::MainMemory& memory) : memory_(&memory) {}

  /// Extra block boundaries (typically the static CFG's leaders).  Without
  /// chaining a decoded block never runs across a registered leader, so
  /// block identity is stable regardless of which PC execution entered a
  /// region from.  Superblocks deliberately chain straight through leaders
  /// (the fast path has no module taps that care about block identity).
  void add_leader(Addr pc) { leaders_.insert(pc); }

  /// Superblock formation toggle (default on).  Turning it off restores the
  /// one-basic-block-per-entry decode; cached blocks from the other mode
  /// are dropped so the two shapes never mix.
  void set_chaining(bool on) {
    if (on != chaining_) clear();
    chaining_ = on;
  }
  bool chaining() const { return chaining_; }

  /// Executable range [lo, hi) for chained decode: superblock formation
  /// never follows a jump outside it and never decodes words outside it.
  /// Unset (hi == 0) means unknown — jumps are then never followed.
  void set_text_range(Addr lo, Addr hi) {
    text_lo_ = lo;
    text_hi_ = hi;
  }

  /// Decoded block starting at `pc`, building it on first use.  The pointer
  /// stays valid until the block is invalidated — callers must not hold it
  /// across a store to text.
  const DecodedBlock* lookup(Addr pc);

  /// Drop every block that has an instruction on a page of [addr, addr+size).
  void invalidate(Addr addr, u32 size);

  /// Drop everything (program reload).
  void clear();

  const BlockCacheStats& stats() const { return stats_; }
  std::size_t blocks_cached() const { return blocks_.size(); }

  /// Monotonic generation for threaded-dispatch links: bumped whenever any
  /// block is (or may have been) erased, so a DecodedBlock::link stamped
  /// with an older epoch is known stale without being individually cleared.
  u64 epoch() const { return epoch_; }

  /// Decoded-block length cap; also bounds how stale a block can be.
  static constexpr u32 kMaxBlockInstrs = 64;
  /// Superblock length cap (chaining enabled).
  static constexpr u32 kMaxSuperblockInstrs = 256;

 private:
  bool in_text(Addr addr) const { return text_hi_ != 0 && addr >= text_lo_ && addr < text_hi_; }
  void index_block(const DecodedBlock& block);

  mem::MainMemory* memory_;
  std::unordered_map<Addr, DecodedBlock> blocks_;
  // page number -> leader PCs of blocks with an instruction on that page
  std::unordered_map<u32, std::vector<Addr>> page_index_;
  std::unordered_set<Addr> leaders_;
  bool chaining_ = true;
  Addr text_lo_ = 0;
  Addr text_hi_ = 0;
  u64 epoch_ = 1;
  BlockCacheStats stats_;
};

}  // namespace rse::exec
