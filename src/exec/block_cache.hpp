// Dynamic basic-block cache for the fast functional execution engine.
//
// Blocks are decoded lazily from guest memory the first time execution
// reaches a leader PC and are reused until a store into the text segment
// invalidates them.  A block runs from its leader up to (and including) the
// first terminator: any control-flow instruction, a syscall, or an
// undecodable word.  Optionally the static CFG's leaders (analysis/cfg.hpp)
// seed extra block boundaries so fast-mode blocks line up with the blocks
// the static analyses reason about.
//
// Invalidation is page-granular on the lookup side: every block registers
// itself with each 4 KB page its byte range overlaps, and invalidate(addr,
// size) erases every block registered on a page the written range touches.
// That over-approximates (a store to one instruction kills neighbours on the
// page) but keeps the common case — no stores to text — entirely free.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"
#include "isa/instruction.hpp"
#include "mem/main_memory.hpp"

namespace rse::exec {

struct DecodedBlock {
  Addr start = 0;
  /// Pre-decoded instructions; instruction i sits at start + 4*i.
  std::vector<isa::Instr> instrs;
};

struct BlockCacheStats {
  u64 lookups = 0;
  u64 decodes = 0;        // cache misses that built a block
  u64 invalidations = 0;  // blocks dropped by stores to text
};

class BlockCache {
 public:
  explicit BlockCache(mem::MainMemory& memory) : memory_(&memory) {}

  /// Extra block boundaries (typically the static CFG's leaders).  A decoded
  /// block never runs across a registered leader, so block identity is
  /// stable regardless of which PC execution entered a region from.
  void add_leader(Addr pc) { leaders_.insert(pc); }

  /// Decoded block starting at `pc`, building it on first use.  The pointer
  /// stays valid until the block is invalidated — callers must not hold it
  /// across a store to text.
  const DecodedBlock* lookup(Addr pc);

  /// Drop every block whose byte range shares a page with [addr, addr+size).
  void invalidate(Addr addr, u32 size);

  /// Drop everything (program reload).
  void clear();

  const BlockCacheStats& stats() const { return stats_; }
  std::size_t blocks_cached() const { return blocks_.size(); }

  /// Decoded-block length cap; also bounds how stale a block can be.
  static constexpr u32 kMaxBlockInstrs = 64;

 private:
  void index_block(const DecodedBlock& block);

  mem::MainMemory* memory_;
  std::unordered_map<Addr, DecodedBlock> blocks_;
  // page number -> leader PCs of blocks overlapping that page
  std::unordered_map<u32, std::vector<Addr>> page_index_;
  std::unordered_set<Addr> leaders_;
  BlockCacheStats stats_;
};

}  // namespace rse::exec
