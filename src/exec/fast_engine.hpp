// Fast functional execution engine: architectural-state-only interpretation
// over the decoded basic-block cache, with a direct-memory (DMI) fast path
// that resolves guest RAM to a host page pointer instead of going through
// the timed mem::Bus/cache hierarchy per access (the flat-RAM pattern of the
// Hazard3 rvcpp core — see SNIPPETS.md).
//
// Semantics are bit-for-bit the isa::Interpreter's (the golden model): same
// address masking, division-by-zero results, sign extension, r0 pinning, and
// CHK-as-architectural-NOP.  The engine never executes syscalls or illegal
// words — it stops ON them with the PC still pointing at the instruction, so
// the caller (FastSession) can either delegate to the guest OS or bail into
// the cycle-accurate core with consistent state.
//
// Stores into the text segment invalidate overlapping cached blocks and end
// the current block, so self-modifying code re-decodes before its next
// execution — matching what a functional model must observe (the OoO core's
// stale-fetch-buffer window is a microarchitectural artifact the fast path
// deliberately does not reproduce; see docs/execution.md).
#pragma once

#include <array>
#include <functional>

#include "exec/block_cache.hpp"
#include "isa/instruction.hpp"
#include "mem/main_memory.hpp"

namespace rse::exec {

class FastEngine {
 public:
  /// [text_lo, text_hi): executable range.  Fetches outside it stop as
  /// illegal (mirroring the core's execute protection); stores inside it
  /// invalidate the block cache.
  FastEngine(mem::MainMemory& memory, BlockCache& cache, Addr text_lo, Addr text_hi)
      : memory_(&memory), cache_(&cache), text_lo_(text_lo), text_hi_(text_hi) {
    // Superblock formation must know where text ends: chained decode never
    // follows a jump outside the executable range.
    cache_->set_text_range(text_lo, text_hi);
  }

  enum class Stop {
    kBoundary,  ///< executed() reached the requested target
    kSyscall,   ///< PC rests on an unexecuted syscall instruction
    kIllegal,   ///< PC rests on an undecodable word (or outside text)
  };

  /// Execute until total executed() reaches `target` or a syscall/illegal
  /// word is reached, whichever is first.
  Stop run_until(u64 target);

  // ---- architectural state ----
  Word reg(u8 index) const { return regs_[index]; }
  void set_reg(u8 index, Word value) {
    if (index != 0) regs_[index] = value;
  }
  const std::array<Word, isa::kNumRegs>& regs() const { return regs_; }
  void set_regs(const std::array<Word, isa::kNumRegs>& regs) {
    regs_ = regs;
    regs_[0] = 0;
  }
  Addr pc() const { return pc_; }
  void set_pc(Addr pc) { pc_ = pc; }

  /// Instructions executed so far (CHKs count; unexecuted stop instructions
  /// do not) — the same stream position cpu::Core::functional_pos() tracks.
  u64 executed() const { return executed_; }
  /// Pre-credit externally executed instructions (FastSession counts the
  /// syscalls it delegates to the guest OS here).
  void credit_instruction() { ++executed_; }
  /// CHKs among executed(): cpu::CoreStats reports them separately from
  /// `instructions`, so instruction-count comparisons subtract these.
  u64 chks_executed() const { return chks_executed_; }

  /// Per-instruction trace hook (DME reference recording, rse/dme.hpp):
  /// fired before each instruction executes with the same fields the cycle-
  /// accurate core's commit-record hook reports — raw fetched word, masked
  /// effective address, and the memory value (post-sign-extension loaded
  /// value for loads, unmasked rt for stores).  Syscalls and illegal words
  /// stop the engine unexecuted and are NOT traced here; FastSession emits
  /// the record for the syscalls it delegates.  Unset in production runs —
  /// the inner loop pays one branch.
  using TraceHook =
      std::function<void(Addr pc, Word raw, bool is_mem, bool is_store, Addr ea, Word value)>;
  void set_trace(TraceHook hook) { trace_ = std::move(hook); }

 private:
  void trace_instr(Addr pc, const isa::Instr& in);

  // One-entry data TLB: guest page -> host pointer.  Pages are stable
  // (mem::MainMemory keeps them behind unique_ptr), so entries stay valid
  // until the translation changes page.
  u8* data_host(Addr addr) {
    const u32 page = mem::page_of(addr);
    if (page != dtlb_page_) {
      dtlb_page_ = page;
      dtlb_host_ = memory_->host_page(addr);
    }
    return dtlb_host_ + (addr & (mem::kPageBytes - 1));
  }

  mem::MainMemory* memory_;
  BlockCache* cache_;
  Addr text_lo_;
  Addr text_hi_;

  std::array<Word, isa::kNumRegs> regs_{};
  Addr pc_ = 0;
  u64 executed_ = 0;
  u64 chks_executed_ = 0;

  u32 dtlb_page_ = ~0u;
  u8* dtlb_host_ = nullptr;

  TraceHook trace_;
};

}  // namespace rse::exec
