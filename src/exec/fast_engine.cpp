#include "exec/fast_engine.hpp"

#include <cstring>

#include "common/bits.hpp"

namespace rse::exec {

using isa::Op;

FastEngine::Stop FastEngine::run_until(u64 target) {
  // Threaded dispatch (chaining mode): block transitions stay inside the
  // engine.  A back-edge to the current block's own start re-enters it
  // directly, and each block carries an epoch-stamped link to its last
  // observed successor, so steady-state execution touches the hash map only
  // on cold transitions.  With chaining off the dispatcher is the plain
  // lookup-per-block oracle the differential suites compare against.
  const bool threaded = cache_->chaining();
  const DecodedBlock* block = nullptr;
  while (executed_ < target) {
    if (block == nullptr) {
      if (text_hi_ != 0 && (pc_ < text_lo_ || pc_ >= text_hi_)) return Stop::kIllegal;
      block = cache_->lookup(pc_);
    }
    const std::size_t count = block->instrs.size();
    if (count == 0) return Stop::kIllegal;  // decode refused (outside text)

    Addr pc = block->start;
    std::size_t i = 0;
    // A store landing in the text segment drops overlapping cached blocks
    // — including possibly the one being executed — so the inner loop must
    // end before touching `block` again.
    bool invalidated = false;
    for (;;) {
      if (executed_ == target) {
        pc_ = pc;
        return Stop::kBoundary;
      }
      const isa::Instr in = block->instrs[i];
      if (trace_ && in.op != Op::kSyscall && in.op != Op::kInvalid) trace_instr(pc, in);
      Addr next = pc + 4;
      const Word rs = regs_[in.rs];
      const Word rt = regs_[in.rt];
      const u32 uimm = static_cast<u32>(in.imm) & 0xFFFFu;
      auto wr = [this](u8 reg, Word value) {
        if (reg != 0) regs_[reg] = value;
      };
      auto store = [&](Addr addr, u32 size, Word value) {
        std::memcpy(data_host(addr), &value, size);
        if (addr < text_hi_ && addr + size > text_lo_) {
          cache_->invalidate(addr, size);
          invalidated = true;
        }
      };

      switch (in.op) {
        case Op::kInvalid:
          pc_ = pc;
          return Stop::kIllegal;
        case Op::kSyscall:
          pc_ = pc;
          return Stop::kSyscall;
        case Op::kSll: wr(in.rd, rt << in.shamt); break;
        case Op::kSrl: wr(in.rd, rt >> in.shamt); break;
        case Op::kSra: wr(in.rd, static_cast<Word>(static_cast<i32>(rt) >> in.shamt)); break;
        case Op::kSllv: wr(in.rd, rt << (rs & 31)); break;
        case Op::kSrlv: wr(in.rd, rt >> (rs & 31)); break;
        case Op::kSrav: wr(in.rd, static_cast<Word>(static_cast<i32>(rt) >> (rs & 31))); break;
        case Op::kAdd: wr(in.rd, rs + rt); break;
        case Op::kSub: wr(in.rd, rs - rt); break;
        case Op::kAnd: wr(in.rd, rs & rt); break;
        case Op::kOr: wr(in.rd, rs | rt); break;
        case Op::kXor: wr(in.rd, rs ^ rt); break;
        case Op::kNor: wr(in.rd, ~(rs | rt)); break;
        case Op::kSlt: wr(in.rd, static_cast<i32>(rs) < static_cast<i32>(rt) ? 1 : 0); break;
        case Op::kSltu: wr(in.rd, rs < rt ? 1 : 0); break;
        case Op::kMul: wr(in.rd, rs * rt); break;
        case Op::kMulh:
          wr(in.rd, static_cast<Word>((static_cast<i64>(static_cast<i32>(rs)) *
                                       static_cast<i64>(static_cast<i32>(rt))) >>
                                      32));
          break;
        case Op::kDiv:
          wr(in.rd,
             rt == 0 ? 0 : static_cast<Word>(static_cast<i32>(rs) / static_cast<i32>(rt)));
          break;
        case Op::kRem:
          wr(in.rd,
             rt == 0 ? 0 : static_cast<Word>(static_cast<i32>(rs) % static_cast<i32>(rt)));
          break;
        case Op::kAddi: wr(in.rt, rs + static_cast<Word>(in.imm)); break;
        case Op::kAndi: wr(in.rt, rs & uimm); break;
        case Op::kOri: wr(in.rt, rs | uimm); break;
        case Op::kXori: wr(in.rt, rs ^ uimm); break;
        case Op::kSlti: wr(in.rt, static_cast<i32>(rs) < in.imm ? 1 : 0); break;
        case Op::kSltiu: wr(in.rt, rs < static_cast<Word>(in.imm) ? 1 : 0); break;
        case Op::kLui: wr(in.rt, uimm << 16); break;
        case Op::kLw: {
          u32 v;
          std::memcpy(&v, data_host((rs + static_cast<Word>(in.imm)) & ~3u), 4);
          wr(in.rt, v);
          break;
        }
        case Op::kLh: {
          u16 v;
          std::memcpy(&v, data_host((rs + static_cast<Word>(in.imm)) & ~1u), 2);
          wr(in.rt, static_cast<Word>(sign_extend(v, 16)));
          break;
        }
        case Op::kLhu: {
          u16 v;
          std::memcpy(&v, data_host((rs + static_cast<Word>(in.imm)) & ~1u), 2);
          wr(in.rt, v);
          break;
        }
        case Op::kLb:
          wr(in.rt, static_cast<Word>(
                        sign_extend(*data_host(rs + static_cast<Word>(in.imm)), 8)));
          break;
        case Op::kLbu: wr(in.rt, *data_host(rs + static_cast<Word>(in.imm))); break;
        case Op::kSw: store((rs + static_cast<Word>(in.imm)) & ~3u, 4, rt); break;
        case Op::kSh: store((rs + static_cast<Word>(in.imm)) & ~1u, 2, rt & 0xFFFFu); break;
        case Op::kSb: store(rs + static_cast<Word>(in.imm), 1, rt & 0xFFu); break;
        case Op::kBeq:
          if (rs == rt) next = pc + 4 + (static_cast<Word>(in.imm) << 2);
          break;
        case Op::kBne:
          if (rs != rt) next = pc + 4 + (static_cast<Word>(in.imm) << 2);
          break;
        case Op::kBlt:
          if (static_cast<i32>(rs) < static_cast<i32>(rt)) {
            next = pc + 4 + (static_cast<Word>(in.imm) << 2);
          }
          break;
        case Op::kBge:
          if (static_cast<i32>(rs) >= static_cast<i32>(rt)) {
            next = pc + 4 + (static_cast<Word>(in.imm) << 2);
          }
          break;
        case Op::kBltu:
          if (rs < rt) next = pc + 4 + (static_cast<Word>(in.imm) << 2);
          break;
        case Op::kBgeu:
          if (rs >= rt) next = pc + 4 + (static_cast<Word>(in.imm) << 2);
          break;
        case Op::kJ: next = in.target << 2; break;
        case Op::kJal:
          wr(isa::kRa, pc + 4);
          next = in.target << 2;
          break;
        case Op::kJr: next = rs; break;
        case Op::kJalr:
          wr(in.rd, pc + 4);
          next = rs;
          break;
        case Op::kChk:
          ++chks_executed_;
          break;  // architectural NOP, same as the golden model
      }

      ++executed_;
      regs_[0] = 0;
      if (invalidated) {
        // `block` may be gone; re-enter via the cache.
        pc_ = next;
        break;
      }
      ++i;
      // Superblock continuity needs no PC probe: decode terminates a block
      // at every instruction whose successor is dynamic (conditional
      // branches, jr/jalr, syscalls), so every non-terminator entry was
      // decoded at exactly the PC execution goes to — the straight-line
      // neighbor or a followed j/jal target (block->pcs[i] == next by
      // construction; the differential suites pin this).
      if (i < count) {
        pc = next;
        continue;
      }
      pc_ = next;
      break;
    }

    // Block transition.  pc_ holds the next leader.
    if (invalidated || !threaded) {
      block = nullptr;  // re-enter via the cache (and re-check the range)
      continue;
    }
    if (pc_ == block->start) continue;  // hot loop back-edge: same block
    const u64 epoch = cache_->epoch();
    if (block->link_epoch[0] == epoch && block->link_pc[0] == pc_) {
      block = block->link[0];
      continue;
    }
    if (block->link_epoch[1] == epoch && block->link_pc[1] == pc_) {
      block = block->link[1];
      continue;
    }
    // Cold transition: look the successor up once and patch a link so the
    // next time this block exits to the same leader stays off the hash map.
    if (text_hi_ != 0 && (pc_ < text_lo_ || pc_ >= text_hi_)) return Stop::kIllegal;
    const DecodedBlock* succ = cache_->lookup(pc_);
    const u8 slot = block->link_victim;
    block->link_pc[slot] = pc_;
    block->link[slot] = succ;
    block->link_epoch[slot] = epoch;
    block->link_victim = slot ^ 1;
    block = succ;
  }
  return Stop::kBoundary;
}

void FastEngine::trace_instr(Addr pc, const isa::Instr& in) {
  // Mirror cpu::Core's commit evidence exactly (the DME differential suite
  // pins fast-recorded == cycle-recorded): the raw fetched word, the
  // alignment-masked effective address, the post-sign-extension value for
  // loads (read *before* execution — loads don't write memory, so pre ==
  // post), and the unmasked rt for stores.
  Word raw;
  std::memcpy(&raw, data_host(pc), 4);
  const Word rs = regs_[in.rs];
  const Word rt = regs_[in.rt];
  bool is_mem = false;
  bool is_store = false;
  Addr ea = 0;
  Word value = 0;
  switch (in.op) {
    case Op::kLw: {
      is_mem = true;
      ea = (rs + static_cast<Word>(in.imm)) & ~3u;
      std::memcpy(&value, data_host(ea), 4);
      break;
    }
    case Op::kLh:
    case Op::kLhu: {
      is_mem = true;
      ea = (rs + static_cast<Word>(in.imm)) & ~1u;
      u16 half;
      std::memcpy(&half, data_host(ea), 2);
      value = in.op == Op::kLh ? static_cast<Word>(sign_extend(half, 16)) : half;
      break;
    }
    case Op::kLb:
    case Op::kLbu: {
      is_mem = true;
      ea = rs + static_cast<Word>(in.imm);
      const u8 byte = *data_host(ea);
      value = in.op == Op::kLb ? static_cast<Word>(sign_extend(byte, 8)) : byte;
      break;
    }
    case Op::kSw:
      is_mem = is_store = true;
      ea = (rs + static_cast<Word>(in.imm)) & ~3u;
      value = rt;
      break;
    case Op::kSh:
      is_mem = is_store = true;
      ea = (rs + static_cast<Word>(in.imm)) & ~1u;
      value = rt;
      break;
    case Op::kSb:
      is_mem = is_store = true;
      ea = rs + static_cast<Word>(in.imm);
      value = rt;
      break;
    default:
      break;
  }
  trace_(pc, raw, is_mem, is_store, ea, value);
}

}  // namespace rse::exec
