// FastForwardController: the switchover driver between the fast functional
// engine and the cycle-accurate core (docs/execution.md).
//
// A fault-injection campaign addresses injection points in *cycles*, but the
// fast engine advances in *instructions*.  The controller bridges the two
// with one instrumented cycle-accurate replay of the fault-free run: it
// samples cpu::Core::functional_pos() at every requested cycle — plus the
// pipeline's in-flight address ranges, which decide memory-word-fault
// eligibility — and records the commit cycle of every syscall, which lets a
// strict FastSession execute non-whitelisted syscalls as excursions at
// exactly their classic cycles (bail-and-resume).  Each injected run then
// fast-executes to its position, transplants the architectural state into
// the core, and runs the injection window and everything after it fully
// modeled.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "exec/fast_session.hpp"
#include "isa/program.hpp"
#include "os/guest_os.hpp"

namespace rse::exec {

class FastForwardController {
 public:
  /// Everything one instrumented replay learns about an injection cycle.
  struct Boundary {
    /// Functional-stream position at the cycle (see functional_pos()).
    u64 position = 0;
    /// Guest-address ranges the pipeline held in flight at the cycle: the
    /// PC of every fetched/undispatched and in-RUU instruction, and the
    /// byte range of every dispatched-but-uncommitted store.  A memory word
    /// flipped at this cycle is invisible to those in the classic run (the
    /// clean word was captured earlier, or will be overwritten at store
    /// commit), while the fast prefix — which has no pipeline — would
    /// observe the flip; overlapping memory-word faults are ineligible.
    std::vector<std::pair<Addr, u32>> inflight;

    bool conflicts(Addr addr, u32 size) const {
      for (const auto& [lo, len] : inflight) {
        if (addr < lo + len && lo < addr + size) return true;
      }
      return false;
    }
  };

  /// inject cycle -> boundary at that cycle.  Cycles at which the
  /// fault-free run has already finished get no entry — a fault there would
  /// never be applied, and the caller falls back to the classic path.
  using BoundaryMap = std::map<Cycle, Boundary>;

  /// Syscall stream position -> classic commit cycle, covering every
  /// syscall that commits before the last mapped boundary (exactly the ones
  /// a fast prefix can encounter).
  using SyscallSchedule = std::map<u64, Cycle>;

  /// One instrumented cycle-accurate replay over a freshly loaded guest.
  /// The stepping loop replicates the classic injected-run loop
  /// ("step while now < inject_cycle"), so the sampled position is taken at
  /// exactly the machine state a classic run applies its fault in.  When
  /// `schedule` is non-null it is filled with the syscall commit cycles
  /// observed during the same replay.
  static BoundaryMap map_boundaries(os::GuestOs& guest, std::vector<Cycle> cycles,
                                    SyscallSchedule* schedule = nullptr);

  /// Fast-forward a freshly loaded guest to `position` and transplant at
  /// `inject_cycle`.  A non-null `schedule` arms strict bail-and-resume
  /// (non-whitelisted syscalls run as excursions at their classic cycles).
  /// Returns false when fast mode could not reach the position — the caller
  /// must then rerun classically; the guest is not reusable.  On failure
  /// `bail` (when non-null) receives the reason for fallback accounting.
  static bool fast_forward_to(os::GuestOs& guest, const isa::Program& program, u64 position,
                              Cycle inject_cycle, const SyscallSchedule* schedule = nullptr,
                              FastSession::BailReason* bail = nullptr);
};

}  // namespace rse::exec
