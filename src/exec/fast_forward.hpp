// FastForwardController: the switchover driver between the fast functional
// engine and the cycle-accurate core (docs/execution.md).
//
// A fault-injection campaign addresses injection points in *cycles*, but the
// fast engine advances in *instructions*.  The controller bridges the two
// with one instrumented cycle-accurate replay of the fault-free run: it
// samples cpu::Core::functional_pos() at every requested cycle, yielding the
// exact functional-stream position a register fault at that cycle lands on.
// Each injected run then fast-executes to its position, transplants the
// architectural state into the core, and runs the injection window and
// everything after it fully modeled.
#pragma once

#include <map>
#include <vector>

#include "exec/fast_session.hpp"
#include "isa/program.hpp"
#include "os/guest_os.hpp"

namespace rse::exec {

class FastForwardController {
 public:
  /// inject cycle -> functional-stream position at that cycle.  Cycles at
  /// which the fault-free run has already finished get no entry — a fault
  /// there would never be applied, and the caller falls back to the classic
  /// path.
  using BoundaryMap = std::map<Cycle, u64>;

  /// One instrumented cycle-accurate replay over a freshly loaded guest.
  /// The stepping loop replicates the classic injected-run loop
  /// ("step while now < inject_cycle"), so the sampled position is taken at
  /// exactly the machine state a classic run applies its fault in.
  static BoundaryMap map_boundaries(os::GuestOs& guest, std::vector<Cycle> cycles);

  /// Fast-forward a freshly loaded guest to `position` and transplant at
  /// `inject_cycle`.  Returns false when fast mode could not reach the
  /// position (non-whitelisted syscall, early exit, illegal word) — the
  /// caller must then rerun classically; the guest is not reusable.
  static bool fast_forward_to(os::GuestOs& guest, const isa::Program& program, u64 position,
                              Cycle inject_cycle);
};

}  // namespace rse::exec
