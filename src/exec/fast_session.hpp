// FastSession couples the fast functional engine with a loaded Machine +
// GuestOs: it lifts the architectural context off the cycle-accurate core,
// executes in fast mode (delegating whitelisted syscalls to the guest OS so
// output/brk/rng state stay exactly on the classic trajectory), and
// transplants the resulting state back into cpu::Core.
//
// With `resume` enabled the session additionally survives non-whitelisted
// syscalls: it runs the handler on the real guest OS as an *excursion* —
// in strict mode at exactly the cycle the classic run committed the syscall
// (per the recorded syscall schedule), replaying any suspension on the real
// scheduler — then re-lifts the context and continues fast.  Threaded and
// network prefixes become fast-forwardable this way.
//
// FastForwardController is the campaign-facing piece: it maps injection
// cycles to functional-stream positions with one instrumented golden replay
// (cpu::Core::functional_pos()), fast-forwards each eligible run to its
// boundary, transplants, applies the fault, and lets the cycle-accurate
// machine run the injection window and everything after it fully modeled.
// Switchover guarantees and the eligibility rules live in docs/execution.md.
#pragma once

#include <functional>
#include <map>
#include <utility>

#include "exec/block_cache.hpp"
#include "exec/fast_engine.hpp"
#include "os/guest_os.hpp"

namespace rse::exec {

struct FastSessionConfig {
  /// Strict mode (default, used by campaign fast-forward) delegates only
  /// syscalls whose behavior is independent of simulated time: print*, sbrk,
  /// rand.  Relaxed mode (rse_run --fast) additionally allows exit and
  /// clock — clock then reads *virtual* time (instructions + syscall costs),
  /// a documented divergence from the cycle-accurate run.
  bool relaxed = false;

  /// Bail-and-resume: execute non-whitelisted syscalls on the cycle-accurate
  /// machine (an excursion) and continue fast afterwards, instead of
  /// abandoning fast mode at the first one.  Strict mode additionally
  /// requires `syscall_schedule` so every excursion runs at exactly its
  /// classic commit cycle; without a schedule entry the session still bails.
  bool resume = false;

  /// Syscall stream position -> classic commit cycle, recorded by
  /// FastForwardController::map_boundaries during the instrumented replay.
  /// Not owned; must outlive the session.
  const std::map<u64, Cycle>* syscall_schedule = nullptr;

  /// Superblock chaining in the session's block cache (BlockCache::
  /// set_chaining).  Architecturally invisible — dispatch shape only; the
  /// differential suites run both settings.
  bool superblocks = true;
};

class FastSession {
 public:
  enum class Status {
    kBoundary,  ///< reached the requested instruction-count target
    kExited,    ///< the guest process finished while in fast mode
    kBail,      ///< hit work only the cycle-accurate core can run
  };

  enum class BailReason {
    kNone,
    kSyscall,  ///< PC rests ON an un-executed, non-resumable syscall
    kIllegal,  ///< PC rests on an undecodable word (or outside text)
    kSuspend,  ///< a syscall *was* executed and suspended the guest in a way
               ///< fast mode cannot continue from (multithreaded wake-up,
               ///< suspension unresolved within the run limit)
  };

  /// The guest must be load()ed and single-threaded-so-far; the session
  /// starts from the core's current architectural context.
  explicit FastSession(os::GuestOs& guest, FastSessionConfig config = {});

  /// Fast-execute until `target` total instructions (counted exactly like
  /// cpu::Core::functional_pos()), the process exits, or a bail.  On a
  /// kSyscall/kIllegal bail the state rests ON the un-executed instruction;
  /// on a kSuspend bail the syscall has executed and the lifted context is
  /// the thread the scheduler left on the core — either way a transplant
  /// hands the cycle-accurate core a consistent context.
  Status run_until(u64 target_instructions);

  u64 executed() const { return engine_.executed(); }
  BailReason bail_reason() const { return bail_; }
  /// True when the boundary landed inside a suspension (between a syscall's
  /// commit and the scheduler's wake-up).  transplant() then leaves the core
  /// suspended; the wake-up replays at its absolute classic cycle once the
  /// caller steps the machine.
  bool suspended() const { return suspended_; }
  /// Virtual time: cycles at session start + instructions + syscall stalls,
  /// floored at the machine clock (excursions advance the real clock).
  Cycle virtual_now() const;

  const FastEngine& engine() const { return engine_; }
  BlockCache& block_cache() { return cache_; }

  /// Seed the block cache with the static CFG's leaders (analysis/cfg.hpp)
  /// so dynamic blocks line up with the statically recovered ones.
  void seed_leaders(const isa::Program& program);

  /// Observability probe fired at every delegated syscall boundary, after
  /// the PC has moved past the syscall but before the handler runs — the
  /// exact (pc, regs) the cycle-accurate core exposes when the same syscall
  /// commits.  The differential suite compares these snapshots between
  /// modes; production callers leave it unset.
  using SyscallProbe = std::function<void(Addr pc, const std::array<Word, isa::kNumRegs>&)>;
  void set_syscall_probe(SyscallProbe probe) { probe_ = std::move(probe); }

  /// Instruction trace hook (DME reference recording): installs the engine's
  /// per-instruction hook and additionally emits a record for each syscall
  /// the session delegates or runs as an excursion — at the syscall's own PC,
  /// before the PC moves past it — so the traced stream is exactly the
  /// committed-instruction stream the cycle-accurate core's commit-record
  /// hook reports.  Install before run_until.
  void set_instr_trace(FastEngine::TraceHook hook);

  /// Transplant fast-mode architectural state (regs, pc) into the
  /// cycle-accurate core and warp the machine clock to `target_cycle`.
  /// Memory needs no copy — the engine wrote the machine's MainMemory in
  /// place.  The CFC's per-thread stream state is cleared: the first
  /// post-transplant transition is fault-independent for every fast-forward-
  /// eligible fault class, so skipping its check drops no detection.
  void transplant(Cycle target_cycle);

 private:
  bool syscall_allowed(u32 number) const;
  bool resume_eligible(u32 number) const;
  void trace_syscall();
  Status execute_syscall();
  Status execute_syscall_excursion(u64 target);
  Status resume_from_suspension();

  os::GuestOs* guest_;
  os::Machine* machine_;
  FastSessionConfig config_;
  BlockCache cache_;
  FastEngine engine_;
  Cycle start_now_ = 0;
  Cycle stall_accum_ = 0;
  Cycle floor_ = 0;  // machine clock after the last replayed suspension
  bool suspended_ = false;
  BailReason bail_ = BailReason::kNone;
  SyscallProbe probe_;
  FastEngine::TraceHook trace_;
};

}  // namespace rse::exec
