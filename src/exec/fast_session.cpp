#include "exec/fast_session.hpp"

#include "analysis/cfg.hpp"

namespace rse::exec {

FastSession::FastSession(os::GuestOs& guest, FastSessionConfig config)
    : guest_(&guest),
      machine_(&guest.machine()),
      config_(config),
      cache_(machine_->memory()),
      engine_(machine_->memory(), cache_, machine_->core().text_lo(),
              machine_->core().text_hi()) {
  const cpu::ThreadContext ctx = machine_->core().context();
  engine_.set_regs(ctx.regs);
  engine_.set_pc(ctx.pc);
  start_now_ = machine_->now();
}

void FastSession::seed_leaders(const isa::Program& program) {
  const analysis::ControlFlowGraph cfg = analysis::build_cfg(program);
  for (const analysis::BasicBlock& block : cfg.blocks) cache_.add_leader(block.start);
}

Cycle FastSession::virtual_now() const {
  return start_now_ + engine_.executed() + stall_accum_;
}

bool FastSession::syscall_allowed(u32 number) const {
  switch (static_cast<os::Sys>(number)) {
    // Time-independent, non-blocking, single-thread-preserving syscalls:
    // safe in both modes, and their side effects (output text, brk, rng
    // draws) land exactly where the classic run puts them.
    case os::Sys::kPrintInt:
    case os::Sys::kPrintChar:
    case os::Sys::kPrintStr:
    case os::Sys::kSbrk:
    case os::Sys::kRand:
      return true;
    // Relaxed-mode extras: exit ends the process; clock reads virtual time
    // (documented divergence — the campaign fast-forward path never allows
    // it, because its value could not match the cycle-accurate run).
    case os::Sys::kExit:
    case os::Sys::kClock:
      return config_.relaxed;
    default:
      return false;
  }
}

FastSession::Status FastSession::execute_syscall() {
  cpu::Core& core = machine_->core();
  // Mirror the core's commit semantics: the PC moves past the syscall at
  // dispatch, then the OS handler runs against the architectural registers.
  engine_.set_pc(engine_.pc() + 4);
  for (u8 r = 1; r < isa::kNumRegs; ++r) core.set_reg(r, engine_.reg(r));
  core.set_pc(engine_.pc());
  if (probe_) probe_(engine_.pc(), engine_.regs());

  const cpu::OsClient::SyscallResult result = guest_->on_syscall(virtual_now());
  stall_accum_ += result.stall;

  const cpu::ThreadContext ctx = core.context();
  engine_.set_regs(ctx.regs);
  engine_.set_pc(ctx.pc);
  engine_.credit_instruction();

  if (guest_->finished()) return Status::kExited;
  if (result.suspend) {
    // A whitelisted syscall never blocks a single-threaded guest; treat a
    // suspend as a bail so the cycle-accurate machine takes over cleanly.
    bail_ = BailReason::kSyscall;
    return Status::kBail;
  }
  return Status::kBoundary;
}

FastSession::Status FastSession::run_until(u64 target_instructions) {
  bail_ = BailReason::kNone;
  while (engine_.executed() < target_instructions) {
    const FastEngine::Stop stop = engine_.run_until(target_instructions);
    if (stop == FastEngine::Stop::kBoundary) break;
    if (stop == FastEngine::Stop::kIllegal) {
      bail_ = BailReason::kIllegal;
      return Status::kBail;
    }
    // Stopped ON a syscall.  Delegate if whitelisted, otherwise bail with
    // the PC still pointing at it.
    if (!syscall_allowed(engine_.reg(isa::kV0))) {
      bail_ = BailReason::kSyscall;
      return Status::kBail;
    }
    const Status status = execute_syscall();
    if (status != Status::kBoundary) return status;
  }
  return Status::kBoundary;
}

void FastSession::transplant(Cycle target_cycle) {
  cpu::Core& core = machine_->core();
  cpu::ThreadContext ctx;
  ctx.regs = engine_.regs();
  ctx.pc = engine_.pc();
  core.set_context(ctx, core.thread());
  machine_->warp_to(target_cycle);
  if (machine_->cfc() != nullptr) machine_->cfc()->forget_thread(core.thread());
}

}  // namespace rse::exec
