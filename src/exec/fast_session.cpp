#include "exec/fast_session.hpp"

#include <algorithm>

#include "analysis/cfg.hpp"

namespace rse::exec {

FastSession::FastSession(os::GuestOs& guest, FastSessionConfig config)
    : guest_(&guest),
      machine_(&guest.machine()),
      config_(config),
      cache_(machine_->memory()),
      engine_(machine_->memory(), cache_, machine_->core().text_lo(),
              machine_->core().text_hi()) {
  cache_.set_chaining(config_.superblocks);
  const cpu::ThreadContext ctx = machine_->core().context();
  engine_.set_regs(ctx.regs);
  engine_.set_pc(ctx.pc);
  start_now_ = machine_->now();
}

void FastSession::seed_leaders(const isa::Program& program) {
  const analysis::ControlFlowGraph cfg = analysis::build_cfg(program);
  for (const analysis::BasicBlock& block : cfg.blocks) cache_.add_leader(block.start);
}

Cycle FastSession::virtual_now() const {
  return std::max(start_now_ + engine_.executed() + stall_accum_, floor_);
}

bool FastSession::syscall_allowed(u32 number) const {
  switch (static_cast<os::Sys>(number)) {
    // Time-independent, non-blocking, single-thread-preserving syscalls:
    // safe in both modes, and their side effects (output text, brk, rng
    // draws) land exactly where the classic run puts them.
    case os::Sys::kPrintInt:
    case os::Sys::kPrintChar:
    case os::Sys::kPrintStr:
    case os::Sys::kSbrk:
    case os::Sys::kRand:
      return true;
    // Relaxed-mode extras: exit ends the process; clock reads virtual time
    // (documented divergence — the campaign fast-forward path never allows
    // it, because its value could not match the cycle-accurate run).
    case os::Sys::kExit:
    case os::Sys::kClock:
      return config_.relaxed;
    default:
      return false;
  }
}

bool FastSession::resume_eligible(u32 number) const {
  if (!config_.resume) return false;
  // Crash recovery replays DDT SavePage history the fast prefix never
  // recorded, and re-randomization relocates segments under the block
  // cache's feet — both stay classic-only.
  if (static_cast<os::Sys>(number) == os::Sys::kCrash) return false;
  if (guest_->config().rerandomize_interval > 0) return false;
  // A strict excursion must run at exactly the classic commit cycle, so it
  // needs a schedule entry for this stream position; relaxed excursions run
  // at virtual time (the relaxed consumers accept timing divergence).
  if (!config_.relaxed) {
    if (config_.syscall_schedule == nullptr) return false;
    if (config_.syscall_schedule->find(engine_.executed()) == config_.syscall_schedule->end()) {
      return false;
    }
  }
  return true;
}

void FastSession::set_instr_trace(FastEngine::TraceHook hook) {
  trace_ = std::move(hook);
  engine_.set_trace(trace_);
}

void FastSession::trace_syscall() {
  // The engine stopped ON the syscall without executing it; the session
  // commits it, so the session emits its trace record — at the syscall's own
  // PC, matching the cycle-accurate core's commit-record hook (which reports
  // syscalls with no memory evidence).
  if (!trace_) return;
  const Addr pc = engine_.pc();
  trace_(pc, machine_->memory().read_u32(pc), /*is_mem=*/false, /*is_store=*/false, 0, 0);
}

FastSession::Status FastSession::execute_syscall() {
  cpu::Core& core = machine_->core();
  trace_syscall();
  // Mirror the core's commit semantics: the PC moves past the syscall at
  // dispatch, then the OS handler runs against the architectural registers.
  engine_.set_pc(engine_.pc() + 4);
  for (u8 r = 1; r < isa::kNumRegs; ++r) core.set_reg(r, engine_.reg(r));
  core.set_pc(engine_.pc());
  if (probe_) probe_(engine_.pc(), engine_.regs());

  const cpu::OsClient::SyscallResult result = guest_->on_syscall(virtual_now());
  stall_accum_ += result.stall;

  const cpu::ThreadContext ctx = core.context();
  engine_.set_regs(ctx.regs);
  engine_.set_pc(ctx.pc);
  engine_.credit_instruction();

  if (guest_->finished()) return Status::kExited;
  if (result.suspend) {
    // A whitelisted syscall never blocks a single-threaded guest; if one
    // suspends anyway, report it as what it is — a post-execution suspend,
    // not an un-executed syscall (the state is past the instruction).
    bail_ = BailReason::kSuspend;
    return Status::kBail;
  }
  return Status::kBoundary;
}

FastSession::Status FastSession::execute_syscall_excursion(u64 target) {
  cpu::Core& core = machine_->core();
  Cycle when = 0;
  if (config_.syscall_schedule != nullptr) {
    const auto it = config_.syscall_schedule->find(engine_.executed());
    if (it == config_.syscall_schedule->end()) {
      // resume_eligible() guarantees an entry in strict mode; a relaxed
      // session may carry a schedule too and still fall through to virtual
      // time when a position is missing.
      when = std::max<Cycle>(virtual_now(), machine_->now() + 1);
    } else {
      when = it->second;
    }
  } else {
    when = std::max<Cycle>(virtual_now(), machine_->now() + 1);
  }
  // The classic run committed this syscall at cycle `when`, and every
  // handler decision may depend on that time (clock values, IO wake-ups,
  // scheduler quanta).  Warp to `when - 1` so that, if the handler
  // suspends, the first machine step in resume_from_suspension() lands on
  // `when` itself and replays the machine/framework/scheduler ticks of the
  // commit cycle — which the direct handler call below skips.
  machine_->warp_to(when - 1);

  trace_syscall();
  engine_.set_pc(engine_.pc() + 4);
  for (u8 r = 1; r < isa::kNumRegs; ++r) core.set_reg(r, engine_.reg(r));
  core.set_pc(engine_.pc());
  if (probe_) probe_(engine_.pc(), engine_.regs());

  const cpu::OsClient::SyscallResult result = guest_->on_syscall(when);
  stall_accum_ += result.stall;
  engine_.credit_instruction();

  if (guest_->finished()) return Status::kExited;

  if (result.suspend) {
    // Classic commit would stop the core here (`running_ = false`, nothing
    // flushed); replicate that before handing control to the scheduler.
    core.suspend();
    if (engine_.executed() == target) {
      // The boundary sits inside the suspension, between this syscall's
      // commit and the scheduler's wake-up.  Stop without stepping: the
      // caller's transplant leaves the core suspended (set_context does not
      // resume), and the wake-up replays at its absolute classic cycle when
      // the caller steps the machine.
      const cpu::ThreadContext ctx = core.context();
      engine_.set_regs(ctx.regs);
      engine_.set_pc(ctx.pc);
      suspended_ = true;
      return Status::kBoundary;
    }
    return resume_from_suspension();
  }

  const cpu::ThreadContext ctx = core.context();
  engine_.set_regs(ctx.regs);
  engine_.set_pc(ctx.pc);
  if (guest_->live_thread_count() > 1) {
    // Quantum preemption becomes possible the moment a second thread is
    // live, and the fast engine cannot reproduce where it would land.
    bail_ = BailReason::kSuspend;
    return Status::kBail;
  }
  return Status::kBoundary;
}

FastSession::Status FastSession::resume_from_suspension() {
  cpu::Core& core = machine_->core();
  suspended_ = false;
  // Replay the suspension on the real scheduler: IO wake-ups and thread
  // switches use absolute cycle arithmetic, so stepping from the commit
  // cycle reproduces the classic run's wake-up exactly.
  const Cycle limit = guest_->config().run_limit;
  while (!guest_->finished() && !core.running() && machine_->now() < limit) guest_->step();
  if (guest_->finished()) return Status::kExited;
  if (!core.running()) {
    bail_ = BailReason::kSuspend;  // suspension unresolved within the run limit
    return Status::kBail;
  }
  floor_ = machine_->now();

  const cpu::ThreadContext ctx = core.context();
  engine_.set_regs(ctx.regs);
  engine_.set_pc(ctx.pc);
  if (guest_->live_thread_count() > 1) {
    // More than one live thread: the next preemption point depends on
    // cycle-accurate timing the fast engine does not model.
    bail_ = BailReason::kSuspend;
    return Status::kBail;
  }
  return Status::kBoundary;
}

FastSession::Status FastSession::run_until(u64 target_instructions) {
  bail_ = BailReason::kNone;
  if (suspended_) {
    // A previous run_until stopped mid-suspension and the caller continued
    // fast instead of transplanting: finish the suspension first.
    const Status status = resume_from_suspension();
    if (status != Status::kBoundary) return status;
  }
  while (engine_.executed() < target_instructions) {
    const FastEngine::Stop stop = engine_.run_until(target_instructions);
    if (stop == FastEngine::Stop::kBoundary) break;
    if (stop == FastEngine::Stop::kIllegal) {
      bail_ = BailReason::kIllegal;
      return Status::kBail;
    }
    // Stopped ON a syscall.  Delegate if whitelisted, run it as an
    // excursion if resumable, otherwise bail with the PC still pointing at
    // it.
    const u32 number = engine_.reg(isa::kV0);
    Status status;
    if (syscall_allowed(number)) {
      status = execute_syscall();
    } else if (resume_eligible(number)) {
      status = execute_syscall_excursion(target_instructions);
    } else {
      bail_ = BailReason::kSyscall;
      return Status::kBail;
    }
    if (status != Status::kBoundary) return status;
  }
  return Status::kBoundary;
}

void FastSession::transplant(Cycle target_cycle) {
  cpu::Core& core = machine_->core();
  cpu::ThreadContext ctx;
  ctx.regs = engine_.regs();
  ctx.pc = engine_.pc();
  core.set_context(ctx, core.thread());
  machine_->warp_to(target_cycle);
  if (machine_->cfc() != nullptr) machine_->cfc()->forget_thread(core.thread());
}

}  // namespace rse::exec
