// Guest workload generators.  Each function emits assembly source for the
// simulated machine; callers assemble it (isa::assemble) and load it through
// the guest OS.  These are the reproduction's stand-ins for the paper's
// benchmarks (SPEC2000 vpr place/route, kMeans, a multithreaded network
// server, and the TRR-vs-MLR randomization programs of Table 5) — see
// DESIGN.md for the substitution rationale.
#pragma once

#include <string>

#include "common/types.hpp"

namespace rse::workloads {

// ---- kMeans (paper section 5.1: 3 iterations, 200 patterns, 16 clusters) --
struct KMeansParams {
  u32 patterns = 200;
  u32 clusters = 16;
  u32 iters = 3;
  u64 seed = 1;
};
std::string kmeans_source(const KMeansParams& params = {});

// ---- vpr Placement analog: simulated-annealing cell placement ------------
struct PlaceParams {
  u32 cells = 4096;   // cells on the grid (32 KB of coordinates)
  u32 grid = 64;      // grid side (power of two)
  u32 nets = 16384;   // two-point nets, 128 KB: exceeds the 128 KB dl2
  u32 temps = 30;     // annealing temperature levels
  u32 moves_per_temp = 2500;
  u64 seed = 2;
};
std::string vpr_place_source(const PlaceParams& params = {});

// ---- vpr Routing analog: Lee-style maze router ----------------------------
struct RouteParams {
  u32 grid = 64;        // routing grid side (rounded up to a power of two)
  u32 nets = 20;        // source/sink pairs to route
  u32 obstacles = 600;  // blocked cells
  u64 seed = 3;
};
std::string vpr_route_source(const RouteParams& params = {});

// ---- strided matrix walks + recursive frame writer ------------------------
struct StrideParams {
  u32 rows = 16;        // matrix rows (48-page matrix at the default pitch)
  u32 pitch = 12288;    // row pitch in bytes (3 pages, not a power of two)
  u32 row_words = 32;   // words touched by the dense row walk
  u32 rec_depth = 4;    // recursion depth of the frame writer
  u32 trips = 6;        // outer repetitions
};
/// Strided global-array sweeps (row, column, and struct-field walks through
/// a shared callee) plus a recursive frame writer — the field-sensitive
/// footprint workload.
std::string stride_source(const StrideParams& params = {});

// ---- multithreaded network server (Figure 9) ------------------------------
struct ServerParams {
  u32 threads = 4;           // worker pool size
  u32 compute_iters = 900;   // per-phase compute loop trips (~10 instr each)
  u32 io_phases = 3;         // kNetIo waits per request
  bool enable_ddt = false;   // emit the DDT-enable CHECK at startup
};
std::string server_source(const ServerParams& params = {});

// ---- Table 5 programs: software TRR vs hardware MLR GOT/PLT randomization -
struct MlrProgParams {
  u32 got_entries = 128;  // 4-byte GOT entries; PLT has one 8-byte entry each
};
/// Pure-software randomization (the TRR baseline): copy the GOT and rewrite
/// every PLT entry in guest code loops.
std::string trr_software_source(const MlrProgParams& params);
/// Hardware version: the same task driven by MLR CHECK instructions.
std::string mlr_rse_source(const MlrProgParams& params);

// ---- compiler instrumentation pass (CHECK insertion) ----------------------
struct InstrumentOptions {
  bool check_control = true;  // CHK before every branch/jump (the Table 4 setup)
  bool check_mem = false;     // CHK before loads/stores as well
  bool add_icm_enable = true; // enable the ICM at program entry
};
/// Insert ICM CHECK instructions into assembly source at compile time.
std::string instrument_checks(const std::string& source,
                              const InstrumentOptions& options = {});

}  // namespace rse::workloads
