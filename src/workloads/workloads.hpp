// Guest workload generators.  Each function emits assembly source for the
// simulated machine; callers assemble it (isa::assemble) and load it through
// the guest OS.  These are the reproduction's stand-ins for the paper's
// benchmarks (SPEC2000 vpr place/route, kMeans, a multithreaded network
// server, and the TRR-vs-MLR randomization programs of Table 5) — see
// DESIGN.md for the substitution rationale.
#pragma once

#include <string>

#include "common/types.hpp"

namespace rse::workloads {

// ---- kMeans (paper section 5.1: 3 iterations, 200 patterns, 16 clusters) --
struct KMeansParams {
  u32 patterns = 200;
  u32 clusters = 16;
  u32 iters = 3;
  u64 seed = 1;
};
std::string kmeans_source(const KMeansParams& params = {});

// ---- vpr Placement analog: simulated-annealing cell placement ------------
struct PlaceParams {
  u32 cells = 4096;   // cells on the grid (32 KB of coordinates)
  u32 grid = 64;      // grid side (power of two)
  u32 nets = 16384;   // two-point nets, 128 KB: exceeds the 128 KB dl2
  u32 temps = 30;     // annealing temperature levels
  u32 moves_per_temp = 2500;
  u64 seed = 2;
};
std::string vpr_place_source(const PlaceParams& params = {});

// ---- vpr Routing analog: Lee-style maze router ----------------------------
struct RouteParams {
  u32 grid = 64;        // routing grid side (rounded up to a power of two)
  u32 nets = 20;        // source/sink pairs to route
  u32 obstacles = 600;  // blocked cells
  u64 seed = 3;
};
std::string vpr_route_source(const RouteParams& params = {});

// ---- strided matrix walks + recursive frame writer ------------------------
struct StrideParams {
  u32 rows = 16;        // matrix rows (48-page matrix at the default pitch)
  u32 pitch = 12288;    // row pitch in bytes (3 pages, not a power of two)
  u32 row_words = 32;   // words touched by the dense row walk
  u32 rec_depth = 4;    // recursion depth of the frame writer
  u32 trips = 6;        // outer repetitions
};
/// Strided global-array sweeps (row, column, and struct-field walks through
/// a shared callee) plus a recursive frame writer — the field-sensitive
/// footprint workload.
std::string stride_source(const StrideParams& params = {});

// ---- multithreaded network server (Figure 9) ------------------------------
struct ServerParams {
  u32 threads = 4;           // worker pool size
  u32 compute_iters = 900;   // per-phase compute loop trips (~10 instr each)
  u32 io_phases = 3;         // kNetIo waits per request
  bool enable_ddt = false;   // emit the DDT-enable CHECK at startup
};
std::string server_source(const ServerParams& params = {});

// ---- Table 5 programs: software TRR vs hardware MLR GOT/PLT randomization -
struct MlrProgParams {
  u32 got_entries = 128;  // 4-byte GOT entries; PLT has one 8-byte entry each
};
/// Pure-software randomization (the TRR baseline): copy the GOT and rewrite
/// every PLT entry in guest code loops.
std::string trr_software_source(const MlrProgParams& params);
/// Hardware version: the same task driven by MLR CHECK instructions.
std::string mlr_rse_source(const MlrProgParams& params);

// ---- security attack corpus (docs/security.md) ----------------------------
//
// Guest programs that *attack themselves*: each scenario carries a deliberate
// memory-corruption or check-bypass primitive whose payload parameters live
// in .data (so no static analysis can prove them away), plus a benign twin
// performing the same class of writes legally.  The campaign engine runs them
// like any workload; docs/security.md tabulates which module detects which
// scenario (the detect/miss matrix pinned by tests/campaign/attack_matrix).

struct StackSmashParams {
  /// Frame slot the overflowing write lands on.  28 is the worker's saved-ra
  /// slot (the attack); 8 is an unused scratch slot (the benign twin).
  u32 payload_offset = 28;
};
/// Stack-smash return-address overwrite: a callee writes a .data-supplied
/// value (the address of a `privileged` text routine) at a .data-supplied
/// frame offset, then returns through the saved slot.
std::string stack_smash_source(const StackSmashParams& params = {});

struct GotOverwriteParams {
  /// Attack form: one absolute store at the *default-layout* address of the
  /// table entry (the attacker hardcoded it from an unrandomized build).
  /// false = benign twin: the same function-pointer update made legally
  /// through the program's own allocation pointer.
  bool wild = true;
  u32 entry = 4;  // targeted function-pointer table entry
};
/// GOT/PLT-style function-pointer table overwrite — MLR's own target class.
std::string got_overwrite_source(const GotOverwriteParams& params = {});

struct HeapSprayParams {
  /// Attack form: one wild absolute store of a poison word at a
  /// default-layout arena address.  false = benign twin: the same poison
  /// store at a fixed arena-relative offset.
  bool wild = true;
};
/// Wild-pointer heap corruption: densely initialize an sbrk arena, land one
/// poison word in it, then checksum the arena.  Run with a small MLR entropy
/// (entropy_pages = 4) the wild store lands *somewhere* in the arena for
/// every seed, at a seed-dependent index — only divergent multi-version
/// execution (rse/dme.hpp) can see it.
std::string heap_spray_source(const HeapSprayParams& params = {});

struct ChkBypassParams {
  /// Jump past the ICM CHECK guarding the gate instruction (the bypass);
  /// false = call through the CHECK.
  bool bypass = true;
  /// Patch the gate with a hostile donor word (prints 666); false = patch
  /// with a bit-identical word (the benign twin's "same write").
  bool hostile_patch = true;
};
/// CHK-bypass attempt: the guest patches a checked text word, then enters
/// the gate either through its ICM CHECK (caught) or one instruction past
/// it (bypassed — the pinned ICM miss).
std::string chk_bypass_source(const ChkBypassParams& params = {});

// ---- compiler instrumentation pass (CHECK insertion) ----------------------
struct InstrumentOptions {
  bool check_control = true;  // CHK before every branch/jump (the Table 4 setup)
  bool check_mem = false;     // CHK before loads/stores as well
  bool add_icm_enable = true; // enable the ICM at program entry
};
/// Insert ICM CHECK instructions into assembly source at compile time.
std::string instrument_checks(const std::string& source,
                              const InstrumentOptions& options = {});

}  // namespace rse::workloads
