// Strided-access workload: row/column/field walks over a global matrix
// through one shared callee, plus a recursive frame writer.  Exercises the
// field-sensitive footprint domain — every access pattern here is a strided
// interval whose dense hull grossly over-approximates the touched pages:
//
//   - the column walks step by the row pitch (default 12288 bytes = 3
//     pages, deliberately not a power of two), touching every third page of
//     the matrix while the hull covers all of them;
//   - the struct-field walk steps by 8, touching alternate words;
//   - the recursive writer pushes a frame per rung, separating $sp values
//     that only the recursion-rung contexts can keep apart.
#include "workloads/workloads.hpp"

#include <sstream>

namespace rse::workloads {

std::string stride_source(const StrideParams& params) {
  const u32 matrix_bytes = params.rows * params.pitch;
  std::ostringstream os;
  os << ".data\n";
  os << "matrix: .space " << matrix_bytes << "\n";
  os << "frames: .space 256\n";
  os << "\n.text\n";
  os << "main:\n";
  os << "  li s0, 0\n";
  os << "trip:\n";
  os << "  li t0, " << params.trips << "\n";
  os << "  bge s0, t0, done\n";
  // Dense row walk: stride 4 within row 0.
  os << "  la a0, matrix\n";
  os << "  li a1, " << params.row_words << "\n";
  os << "  li a2, 4\n";
  os << "  jal walk\n";
  // Column walk: one word per row, stepping by the full pitch.
  os << "  la a0, matrix\n";
  os << "  li a1, " << params.rows << "\n";
  os << "  li a2, " << params.pitch << "\n";
  os << "  jal walk\n";
  // Second column at a struct-field offset inside each row.
  os << "  la a0, matrix\n";
  os << "  addi a0, a0, 8\n";
  os << "  li a1, " << params.rows << "\n";
  os << "  li a2, " << params.pitch << "\n";
  os << "  jal walk\n";
  // Struct-field walk: every other word of the first row.
  os << "  la a0, matrix\n";
  os << "  addi a0, a0, 4\n";
  os << "  li a1, " << params.row_words / 2 << "\n";
  os << "  li a2, 8\n";
  os << "  jal walk\n";
  // Recursive frame writer: one stack frame and one slot write per rung.
  os << "  la a0, frames\n";
  os << "  li a1, " << params.rec_depth << "\n";
  os << "  jal recw\n";
  os << "  addi s0, s0, 1\n";
  os << "  b trip\n";
  os << "done:\n";
  os << "  la a0, matrix\n";
  os << "  lw a0, 0(a0)\n";
  os << "  li v0, 2\n";
  os << "  syscall\n";
  os << "  li a0, 0\n";
  os << "  li v0, 1\n";
  os << "  syscall\n";
  os << "\n";
  os << "walk:               # a0 = base, a1 = count, a2 = step bytes\n";
  os << "  li t2, 0\n";
  os << "wl:\n";
  os << "  mul t3, t2, a2\n";
  os << "  add t3, t3, a0\n";
  os << "  lw t4, 0(t3)\n";
  os << "  addi t4, t4, 1\n";
  os << "  sw t4, 0(t3)\n";
  os << "  addi t2, t2, 1\n";
  os << "  blt t2, a1, wl\n";
  os << "  jr ra\n";
  os << "\n";
  os << "recw:               # a0 = frame slot, a1 = remaining depth\n";
  os << "  addi sp, sp, -8\n";
  os << "  sw ra, 4(sp)\n";
  os << "  sw a1, 0(sp)\n";
  os << "  sw a1, 0(a0)\n";
  os << "  bge r0, a1, recw_done\n";
  os << "  addi a0, a0, 4\n";
  os << "  addi a1, a1, -1\n";
  os << "  jal recw\n";
  os << "recw_done:\n";
  os << "  lw a1, 0(sp)\n";
  os << "  lw ra, 4(sp)\n";
  os << "  addi sp, sp, 8\n";
  os << "  jr ra\n";
  return os.str();
}

}  // namespace rse::workloads
