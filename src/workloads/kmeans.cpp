// Fixed-point K-Means clustering in guest assembly (4-dimensional patterns,
// Euclidean distance, fixed iteration count) — the paper's kMeans benchmark.
#include <sstream>

#include "common/rng.hpp"
#include "workloads/workloads.hpp"

namespace rse::workloads {

std::string kmeans_source(const KMeansParams& p) {
  Xorshift64 rng(p.seed);
  std::ostringstream s;
  const u32 dims = 4;

  s << ".data\n.align 4\n";
  s << "patterns:\n";
  for (u32 i = 0; i < p.patterns; ++i) {
    s << "  .word ";
    for (u32 j = 0; j < dims; ++j) {
      s << rng.next_below(1024) << (j + 1 < dims ? ", " : "\n");
    }
  }
  s << "centroids: .space " << p.clusters * dims * 4 << "\n";
  s << "sums:      .space " << p.clusters * dims * 4 << "\n";
  s << "counts:    .space " << p.clusters * 4 << "\n";
  s << "assign:    .space " << p.patterns * 4 << "\n";

  s << R"(.text
main:
  la s0, patterns
  la s1, centroids
  la s2, sums
  la s3, counts
)";
  // Initialize centroids with the first k patterns.
  s << "  li t0, 0\n";
  s << "init_cent:\n";
  s << "  li t1, " << p.clusters * dims * 4 << "\n";
  s << R"(  bge t0, t1, init_done
  add t2, s0, t0
  lw t3, 0(t2)
  add t2, s1, t0
  sw t3, 0(t2)
  addi t0, t0, 4
  b init_cent
init_done:
  li s6, 0              # iteration counter
iter_loop:
)";
  s << "  li t0, " << p.iters << "\n";
  s << R"(  bge s6, t0, report
  # zero sums and counts
  li t0, 0
)";
  s << "zero_sums:\n  li t1, " << p.clusters * dims * 4 << "\n";
  s << R"(  bge t0, t1, zero_counts
  add t2, s2, t0
  sw r0, 0(t2)
  addi t0, t0, 4
  b zero_sums
zero_counts:
  li t0, 0
)";
  s << "zc_loop:\n  li t1, " << p.clusters * 4 << "\n";
  s << R"(  bge t0, t1, assign_phase
  add t2, s3, t0
  sw r0, 0(t2)
  addi t0, t0, 4
  b zc_loop

assign_phase:
  li s7, 0              # pattern index i
pattern_loop:
)";
  s << "  li t0, " << p.patterns << "\n";
  s << R"(  bge s7, t0, update_phase
  sll t1, s7, 4         # i * 16 bytes (4 dims)
  add s4, s0, t1        # &patterns[i]
  li s5, 0x7FFFFFFF     # best distance  (note: li expands to lui+ori)
  li t8, 0              # best cluster
  li t9, 0              # cluster c
cluster_loop:
)";
  s << "  li t0, " << p.clusters << "\n";
  s << R"(  bge t9, t0, assign_store
  sll t1, t9, 4
  add t2, s1, t1        # &centroids[c]
  # unrolled 4-dim squared distance
  lw t3, 0(s4)
  lw t4, 0(t2)
  sub t3, t3, t4
  mul t5, t3, t3
  lw t3, 4(s4)
  lw t4, 4(t2)
  sub t3, t3, t4
  mul t3, t3, t3
  add t5, t5, t3
  lw t3, 8(s4)
  lw t4, 8(t2)
  sub t3, t3, t4
  mul t3, t3, t3
  add t5, t5, t3
  lw t3, 12(s4)
  lw t4, 12(t2)
  sub t3, t3, t4
  mul t3, t3, t3
  add t5, t5, t3
  bge t5, s5, next_cluster
  move s5, t5
  move t8, t9
next_cluster:
  addi t9, t9, 1
  b cluster_loop
assign_store:
  sll t1, s7, 2
  la t2, assign
  add t2, t2, t1
  sw t8, 0(t2)
  # sums[best] += pattern; counts[best]++
  sll t1, t8, 4
  add t2, s2, t1        # &sums[best]
  lw t3, 0(s4)
  lw t4, 0(t2)
  add t4, t4, t3
  sw t4, 0(t2)
  lw t3, 4(s4)
  lw t4, 4(t2)
  add t4, t4, t3
  sw t4, 4(t2)
  lw t3, 8(s4)
  lw t4, 8(t2)
  add t4, t4, t3
  sw t4, 8(t2)
  lw t3, 12(s4)
  lw t4, 12(t2)
  add t4, t4, t3
  sw t4, 12(t2)
  sll t1, t8, 2
  add t2, s3, t1
  lw t3, 0(t2)
  addi t3, t3, 1
  sw t3, 0(t2)
  addi s7, s7, 1
  b pattern_loop

update_phase:
  li t9, 0              # cluster c
update_loop:
)";
  s << "  li t0, " << p.clusters << "\n";
  s << R"(  bge t9, t0, next_iter
  sll t1, t9, 2
  add t2, s3, t1
  lw t3, 0(t2)          # count
  beq t3, r0, skip_update
  sll t1, t9, 4
  add t2, s2, t1        # &sums[c]
  add t4, s1, t1        # &centroids[c]
  lw t5, 0(t2)
  div t5, t5, t3
  sw t5, 0(t4)
  lw t5, 4(t2)
  div t5, t5, t3
  sw t5, 4(t4)
  lw t5, 8(t2)
  div t5, t5, t3
  sw t5, 8(t4)
  lw t5, 12(t2)
  div t5, t5, t3
  sw t5, 12(t4)
skip_update:
  addi t9, t9, 1
  b update_loop
next_iter:
  addi s6, s6, 1
  b iter_loop

report:
  # print the first centroid's first coordinate as a checksum
  lw a0, 0(s1)
  li v0, 2
  syscall
  li a0, 10
  li v0, 3
  syscall
  li a0, 0
  li v0, 1
  syscall
)";
  return s.str();
}

}  // namespace rse::workloads
