#include <cctype>
#include <sstream>
#include <string>

#include "workloads/workloads.hpp"

namespace rse::workloads {
namespace {

std::string lower_first_word(const std::string& text) {
  std::size_t i = 0;
  while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  std::string word = text.substr(0, i);
  for (char& c : word) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return word;
}

bool is_control_mnemonic(const std::string& m) {
  return m == "beq" || m == "bne" || m == "blt" || m == "bge" || m == "bltu" || m == "bgeu" ||
         m == "b" || m == "beqz" || m == "bnez" || m == "j" || m == "jal" || m == "jr" ||
         m == "jalr";
}

bool is_mem_mnemonic(const std::string& m) {
  return m == "lw" || m == "lb" || m == "lbu" || m == "lh" || m == "lhu" || m == "sw" ||
         m == "sb" || m == "sh";
}

}  // namespace

std::string instrument_checks(const std::string& source, const InstrumentOptions& options) {
  std::ostringstream out;
  std::istringstream in(source);
  std::string line;
  while (std::getline(in, line)) {
    // Separate code from comment.
    std::string code = line;
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (code[i] == '#' || code[i] == ';') {
        code.resize(i);
        break;
      }
    }
    // Peel labels (they stay in front of any inserted CHECK so control
    // transfers execute the CHECK before the checked instruction).
    std::string labels;
    std::size_t pos = 0;
    while (true) {
      std::size_t i = pos;
      while (i < code.size() &&
             (std::isalnum(static_cast<unsigned char>(code[i])) || code[i] == '_' ||
              code[i] == '.')) {
        ++i;
      }
      if (i > pos && i < code.size() && code[i] == ':') {
        labels += code.substr(pos, i - pos + 1);
        labels += '\n';
        pos = i + 1;
        while (pos < code.size() && std::isspace(static_cast<unsigned char>(code[pos]))) ++pos;
        continue;
      }
      break;
    }
    std::string body = code.substr(pos);
    // trim
    std::size_t b = 0, e = body.size();
    while (b < e && std::isspace(static_cast<unsigned char>(body[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(body[e - 1]))) --e;
    body = body.substr(b, e - b);

    if (!labels.empty()) out << labels;
    if (body.empty()) {
      out << line.substr(0, 0) << "\n";
      continue;
    }
    const std::string mnemonic = lower_first_word(body);
    const bool check = (options.check_control && is_control_mnemonic(mnemonic)) ||
                       (options.check_mem && is_mem_mnemonic(mnemonic));
    if (options.add_icm_enable && body == ".text" && !labels.empty()) {
      // nothing: enable insertion is handled at 'main:'
    }
    if (check) out << "  chk icm, 0, blk, r0, 0\n";
    out << "  " << body << "\n";
  }

  std::string result = out.str();
  if (options.add_icm_enable) {
    // Enable the ICM as the first action of main (module id 1 = ICM).
    const std::string needle = "main:\n";
    const std::size_t at = result.find(needle);
    if (at != std::string::npos) {
      result.insert(at + needle.size(), "  chk frame, 1, nblk, r0, 1\n");
    }
  }
  return result;
}

}  // namespace rse::workloads
