// Lee-style maze router in guest assembly — the structural analog of vpr's
// routing phase: per-net breadth-first wavefront expansion over a blocked
// grid with an in-memory work queue.
#include <set>
#include <sstream>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "workloads/workloads.hpp"

namespace rse::workloads {

std::string vpr_route_source(const RouteParams& p) {
  Xorshift64 rng(p.seed);
  std::ostringstream s;
  // Use a power-of-two grid so cell indices are shift/mask combinations.
  u32 grid = 32;
  while (grid < p.grid && grid < 128) grid *= 2;
  const u32 cells = grid * grid;
  const u32 mask = grid - 1;
  const u32 shift = log2_pow2(grid);

  // Generate obstacles and net terminals (terminals never on obstacles).
  std::set<u32> blocked;
  while (blocked.size() < p.obstacles) blocked.insert(static_cast<u32>(rng.next_below(cells)));
  auto free_cell = [&] {
    while (true) {
      const u32 c = static_cast<u32>(rng.next_below(cells));
      if (blocked.count(c) == 0) return c;
    }
  };

  s << ".data\n.align 4\n";
  s << "grid:\n";
  for (u32 c = 0; c < cells; ++c) s << "  .word " << (blocked.count(c) ? -1 : 0) << "\n";
  s << "nets:\n";
  for (u32 n = 0; n < p.nets; ++n) {
    s << "  .word " << free_cell() << ", " << free_cell() << "\n";
  }
  s << "dist:  .space " << cells * 4 << "\n";
  s << "queue: .space " << cells * 4 << "\n";
  s << "total: .word 0\n";

  // Registers: s0=&grid s1=&dist s2=&queue s3=&nets s4=net index
  //            s5=dst cell s6=queue head s7=queue tail
  s << ".text\nmain:\n";
  s << "  la s0, grid\n  la s1, dist\n  la s2, queue\n  la s3, nets\n";
  s << "  li s4, 0\n";
  s << "net_loop:\n";
  s << "  li t0, " << p.nets << "\n";
  s << R"(  bge s4, t0, done
  # clear the distance grid
  li t0, 0
clear_loop:
)";
  s << "  li t1, " << cells * 4 << "\n";
  s << R"(  bge t0, t1, clear_done
  add t2, s1, t0
  sw r0, 0(t2)
  addi t0, t0, 4
  b clear_loop
clear_done:
  sll t0, s4, 3
  add t0, s3, t0
  lw t1, 0(t0)          # src cell
  lw s5, 4(t0)          # dst cell
  # seed the wavefront
  sll t2, t1, 2
  add t2, s1, t2
  li t3, 1
  sw t3, 0(t2)          # dist[src] = 1
  sw t1, 0(s2)          # queue[0] = src
  li s6, 0              # head
  li s7, 1              # tail
bfs_loop:
  bge s6, s7, net_next  # queue empty: unroutable, skip
  sll t0, s6, 2
  add t0, s2, t0
  lw t1, 0(t0)          # cur cell
  addi s6, s6, 1
  beq t1, s5, net_found
  sll t2, t1, 2
  add t2, s1, t2
  lw t3, 0(t2)          # d = dist[cur]
  addi t3, t3, 1        # d+1 for neighbors
)";
  s << "  andi t4, t1, " << mask << "    # x\n";
  s << "  srl t5, t1, " << shift << "    # y\n";

  struct Neighbor {
    const char* name;
    const char* guard;  // emitted bounds check
  };
  // For each neighbor: bounds check, blocked check, unvisited check, enqueue.
  auto emit_neighbor = [&](const char* tag, const std::string& bounds,
                           const std::string& cell_expr) {
    s << bounds;
    s << cell_expr;  // computes neighbor cell index into t6
    s << R"(  sll t7, t6, 2
  add t7, s0, t7
  lw t8, 0(t7)
)";
    s << "  bne t8, r0, skip_" << tag << "   # blocked\n";
    s << R"(  sll t7, t6, 2
  add t7, s1, t7
  lw t8, 0(t7)
)";
    s << "  bne t8, r0, skip_" << tag << "   # already visited\n";
    s << R"(  sw t3, 0(t7)
  sll t7, s7, 2
  add t7, s2, t7
  sw t6, 0(t7)
  addi s7, s7, 1
)";
    s << "skip_" << tag << ":\n";
  };

  emit_neighbor("left", "  beq t4, r0, skip_left\n", "  addi t6, t1, -1\n");
  {
    std::ostringstream bounds;
    bounds << "  li t9, " << mask << "\n  beq t4, t9, skip_right\n";
    emit_neighbor("right", bounds.str(), "  addi t6, t1, 1\n");
  }
  {
    std::ostringstream cell;
    cell << "  addi t6, t1, -" << grid << "\n";
    emit_neighbor("up", "  beq t5, r0, skip_up\n", cell.str());
  }
  {
    std::ostringstream bounds, cell;
    bounds << "  li t9, " << mask << "\n  beq t5, t9, skip_down\n";
    cell << "  addi t6, t1, " << grid << "\n";
    emit_neighbor("down", bounds.str(), cell.str());
  }

  s << R"(  b bfs_loop
net_found:
  # accumulate the path length (wavefront number at the sink)
  sll t2, s5, 2
  add t2, s1, t2
  lw t3, 0(t2)
  la t4, total
  lw t5, 0(t4)
  add t5, t5, t3
  sw t5, 0(t4)
net_next:
  addi s4, s4, 1
  b net_loop
done:
  la t0, total
  lw a0, 0(t0)
  li v0, 2
  syscall
  li a0, 10
  li v0, 3
  syscall
  li a0, 0
  li v0, 1
  syscall
)";
  return s.str();
}

}  // namespace rse::workloads
