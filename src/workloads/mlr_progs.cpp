// The Table 5 comparison programs: GOT/PLT randomization performed (a) by a
// pure-software loop (the TRR baseline) and (b) by MLR CHECK instructions.
// Both follow the paper's "application-private dynamic loader" methodology:
// the program carries its own GOT and PLT in its data segment — exactly as a
// freshly mapped process image would, so the tables are cache-cold when the
// measured randomization begins — performs a fixed amount of loader setup
// (allocating and clearing the bookkeeping area for the new mapping), runs
// the randomization, and exits.
#include <sstream>

#include "workloads/workloads.hpp"

namespace rse::workloads {
namespace {

/// Emit the process image: a GOT populated with library addresses, a PLT
/// whose one-word entries hold the addresses of their GOT slots, space for
/// the relocated GOT, and a loader bookkeeping area.
void emit_tables(std::ostringstream& s, const MlrProgParams& p) {
  s << ".data\n.align 4\n";
  s << "got_old:\n";
  for (u32 i = 0; i < p.got_entries; ++i) s << "  .word " << (0x6000'0000u + i * 16) << "\n";
  s << "plt:\n";
  for (u32 i = 0; i < p.got_entries; ++i) s << "  .word got_old+" << i * 4 << "\n";
  s << "got_new:  .space " << p.got_entries * 4 << "\n";
  s << "loadmeta: .space 1024\n";
}

/// Fixed-cost loader setup shared by both versions: "allocate" the new GOT
/// region and clear the loader bookkeeping area (constant work, independent
/// of the GOT size — the constant part of the paper's Table 5 counts).
constexpr const char* kLoaderSetup = R"(
  la s0, got_old
  la s1, got_new
  la s2, plt
  la t4, loadmeta
  li t0, 0
setup_loop:
  li t1, 1024
  bge t0, t1, setup_done
  add t2, t4, t0
  sw r0, 0(t2)
  addi t0, t0, 4
  b setup_loop
setup_done:
)";

}  // namespace

std::string trr_software_source(const MlrProgParams& p) {
  std::ostringstream s;
  emit_tables(s, p);
  s << ".text\nmain:\n" << kLoaderSetup;
  s << "  li s3, " << p.got_entries << "\n";
  s << R"(  # --- measured randomization work (software TRR) ---
  # (1) copy the GOT to its new location
  li t0, 0
copy_loop:
  bge t0, s3, copy_done
  sll t1, t0, 2
  add t2, s0, t1
  lw t3, 0(t2)
  add t2, s1, t1
  sw t3, 0(t2)
  addi t0, t0, 1
  b copy_loop
copy_done:
  # (2) rewrite every PLT entry to point into the new GOT
  li t0, 0
plt_loop:
  bge t0, s3, plt_done
  sll t1, t0, 2
  add t2, s2, t1
  lw t3, 0(t2)          # &got_old[i]
  sub t3, t3, s0
  add t3, t3, s1        # &got_new[i]
  sw t3, 0(t2)
  addi t0, t0, 1
  b plt_loop
plt_done:
  li a0, 0
  li v0, 1
  syscall
)";
  return s.str();
}

std::string mlr_rse_source(const MlrProgParams& p) {
  std::ostringstream s;
  emit_tables(s, p);
  s << ".text\nmain:\n";
  s << "  chk frame, 1, nblk, r0, 2     # enable the MLR module\n";
  s << kLoaderSetup;
  s << "  li s3, " << p.got_entries * 4 << "\n";
  s << R"(  # --- measured randomization work: a handful of CHECK instructions ---
  chk mlr, 6, nblk, s0, 0       # old GOT location
  chk mlr, 7, nblk, s3, 0       # GOT size
  chk mlr, 8, nblk, s1, 0       # new GOT location
  chk mlr, 9, blk, r0, 0        # copy GOT (module + MAU do the work)
  chk mlr, 10, nblk, s2, 0      # PLT location
  chk mlr, 11, nblk, s3, 0      # PLT size
  chk mlr, 12, blk, r0, 0       # rewrite PLT (4 entries per cycle)
  li a0, 0
  li v0, 1
  syscall
)";
  return s.str();
}

}  // namespace rse::workloads
