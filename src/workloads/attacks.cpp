// Security attack corpus (docs/security.md).
//
// Each generator emits a guest that attacks itself with one corruption or
// bypass primitive.  Two invariants shape every scenario:
//
//   - payload parameters (offsets, target addresses, payload values) are
//     loaded from .data, never materialized as immediates, so the static
//     analyzer sees an unresolved store and cannot whitelist or reject the
//     attack at load time;
//   - the benign twin performs the same writes through legal channels (its
//     own frame slot, its own allocation pointer, a bit-identical patch), so
//     any detector that fires on the twin is a false positive.
//
// The "default layout" addresses the wild attacks hardcode are what an
// attacker reads off an unrandomized build: both pointer-table scenarios pad
// .data to exactly one page, so the first sbrk returns
// isa::kDefaultDataBase + 0x1000 whenever layout randomization is off.
#include "workloads/workloads.hpp"

#include <sstream>

#include "isa/program.hpp"

namespace rse::workloads {

namespace {

/// Both table scenarios pad .data to one page so the unrandomized heap base
/// is a build-time constant the "attacker" can hardcode.
constexpr u32 kAttackDataBytes = 4096;
constexpr Addr kDefaultHeapBase = isa::kDefaultDataBase + kAttackDataBytes;

/// Shared epilogue: print marker char `c`, exit with `code`.
void emit_exit(std::ostringstream& os, int c, int code) {
  os << "  li a0, " << c << "\n";
  os << "  li v0, 3\n";
  os << "  syscall\n";
  os << "  li a0, " << code << "\n";
  os << "  li v0, 1\n";
  os << "  syscall\n";
}

}  // namespace

std::string stack_smash_source(const StackSmashParams& params) {
  std::ostringstream os;
  os << ".data\n";
  os << "slot: .word " << params.payload_offset << "\n";
  os << "pval: .word privileged\n";
  os << "\n.text\n";
  os << "main:\n";
  os << "  jal worker\n";
  emit_exit(os, 'n', 0);  // normal return path
  os << "\n";
  // Placed *before* worker: were it the instruction after worker's `jr ra`,
  // the hijacked return would equal the jump's fallthrough address and the
  // CFC would accept it without consulting the successor set.
  os << "privileged:\n";
  emit_exit(os, '!', 7);
  os << "\n";
  os << "worker:\n";
  os << "  addi sp, sp, -32\n";
  os << "  sw ra, 28(sp)\n";
  // A little legal frame traffic so the smash hides among ordinary writes.
  os << "  li t5, 5\n";
  os << "  sw t5, 0(sp)\n";
  os << "  lw t6, 0(sp)\n";
  os << "  add t6, t6, t5\n";
  os << "  sw t6, 4(sp)\n";
  // The payload write: offset and value both come from .data.
  os << "  la t0, slot\n";
  os << "  lw t1, 0(t0)\n";
  os << "  la t2, pval\n";
  os << "  lw t3, 0(t2)\n";
  os << "  add t4, sp, t1\n";
  os << "  sw t3, 0(t4)\n";
  os << "  lw ra, 28(sp)\n";
  os << "  addi sp, sp, 32\n";
  os << "  jr ra\n";
  return os.str();
}

std::string got_overwrite_source(const GotOverwriteParams& params) {
  const Addr entry_off = 4 * params.entry;
  std::ostringstream os;
  os << ".data\n";
  os << "tval: .word privileged\n";
  if (params.wild) {
    os << "taddr: .word " << (kDefaultHeapBase + entry_off) << "\n";
  } else {
    os << "taddr: .word " << entry_off << "\n";  // table-relative, made legal below
  }
  os << "pad: .space " << (kAttackDataBytes - 8) << "\n";
  os << "\n.text\n";
  os << "main:\n";
  os << "  li a0, 4096\n";
  os << "  li v0, 5\n";
  os << "  syscall\n";
  os << "  move s0, v0\n";  // function-pointer table base
  os << "  la t0, benign_fn\n";
  os << "  li t1, 0\n";
  os << "gfill:\n";
  os << "  sll t2, t1, 2\n";
  os << "  add t2, t2, s0\n";
  os << "  sw t0, 0(t2)\n";
  os << "  addi t1, t1, 1\n";
  os << "  li t3, 8\n";
  os << "  blt t1, t3, gfill\n";
  // The overwrite: wild = absolute store at the default-layout entry
  // address; benign = the same update through the allocation pointer.
  os << "  la t4, taddr\n";
  os << "  lw t4, 0(t4)\n";
  if (!params.wild) os << "  add t4, t4, s0\n";
  os << "  la t5, tval\n";
  os << "  lw t5, 0(t5)\n";
  os << "  sw t5, 0(t4)\n";
  // Dispatch through the (possibly re-pointed) entry.
  os << "  lw t7, " << entry_off << "(s0)\n";
  os << "  jalr ra, t7\n";
  emit_exit(os, 'n', 0);
  os << "\n";
  os << "benign_fn:\n";
  os << "  li a0, 98\n";  // 'b'
  os << "  li v0, 3\n";
  os << "  syscall\n";
  os << "  jr ra\n";
  os << "\n";
  os << "privileged:\n";
  emit_exit(os, '!', 7);
  return os.str();
}

std::string heap_spray_source(const HeapSprayParams& params) {
  // Arena: 5 pages, densely initialized.  The wild store targets default
  // heap base + 4 pages + 64: under entropy_pages = 4 the randomized base
  // moves by r in [0, 4 pages), so the poison lands (4 pages + 64 - r) into
  // the arena — always inside it, at a seed-dependent word index.
  constexpr u32 kArenaBytes = 5 * 4096;
  constexpr u32 kArenaWords = kArenaBytes / 4;
  constexpr Addr kWildTarget = kDefaultHeapBase + 4 * 4096 + 64;
  constexpr u32 kBenignOffset = 320;  // fixed arena-relative slot (word 80)
  std::ostringstream os;
  os << ".data\n";
  os << "ha: .word " << (params.wild ? kWildTarget : kBenignOffset) << "\n";
  os << "pv: .word 12648430\n";  // 0xC0FFEE poison
  os << "pad: .space " << (kAttackDataBytes - 8) << "\n";
  os << "\n.text\n";
  os << "main:\n";
  os << "  li a0, " << kArenaBytes << "\n";
  os << "  li v0, 5\n";
  os << "  syscall\n";
  os << "  move s0, v0\n";
  os << "  li t0, 0\n";
  os << "hfill:\n";
  os << "  sll t1, t0, 2\n";
  os << "  add t1, t1, s0\n";
  os << "  addi t3, t0, 5\n";
  os << "  sw t3, 0(t1)\n";
  os << "  addi t0, t0, 1\n";
  os << "  li t2, " << kArenaWords << "\n";
  os << "  blt t0, t2, hfill\n";
  // The poison store.
  os << "  la t3, ha\n";
  os << "  lw t3, 0(t3)\n";
  if (!params.wild) os << "  add t3, t3, s0\n";
  os << "  la t4, pv\n";
  os << "  lw t4, 0(t4)\n";
  os << "  sw t4, 0(t3)\n";
  // Checksum the arena and report it.
  os << "  li t0, 0\n";
  os << "  li t5, 0\n";
  os << "hsum:\n";
  os << "  sll t1, t0, 2\n";
  os << "  add t1, t1, s0\n";
  os << "  lw t6, 0(t1)\n";
  os << "  add t5, t5, t6\n";
  os << "  addi t0, t0, 1\n";
  os << "  blt t0, t2, hsum\n";
  os << "  move a0, t5\n";
  os << "  li v0, 2\n";
  os << "  syscall\n";
  os << "  li a0, 0\n";
  os << "  li v0, 1\n";
  os << "  syscall\n";
  return os.str();
}

std::string chk_bypass_source(const ChkBypassParams& params) {
  std::ostringstream os;
  os << ".data\n";
  os << "gaddr: .word " << (params.bypass ? "gate_instr" : "gate") << "\n";
  os << "\n.text\n";
  os << "main:\n";
  // Patch the checked gate instruction with the donor's text word.
  os << "  la t0, " << (params.hostile_patch ? "donor" : "mirror") << "\n";
  os << "  lw t1, 0(t0)\n";
  os << "  la t2, gate_instr\n";
  os << "  sw t1, 0(t2)\n";
  // Enter through a .data-loaded address: either the gate's CHECK, or one
  // instruction past it.
  os << "  la t3, gaddr\n";
  os << "  lw t4, 0(t3)\n";
  os << "  jalr ra, t4\n";
  os << "  move a0, s6\n";
  os << "  li v0, 2\n";
  os << "  syscall\n";
  os << "  li a0, 0\n";
  os << "  li v0, 1\n";
  os << "  syscall\n";
  os << "\n";
  os << "gate:\n";
  os << "  chk icm, 0, blk, r0, 0\n";
  os << "gate_instr:\n";
  os << "  addi s6, r0, 7\n";
  os << "  jr ra\n";
  os << "\n";
  // Never executed: donor words the patch copies over gate_instr.
  os << "donor:\n";
  os << "  addi s6, r0, 666\n";
  os << "  jr ra\n";
  os << "mirror:\n";
  os << "  addi s6, r0, 7\n";
  os << "  jr ra\n";
  return os.str();
}

}  // namespace rse::workloads
