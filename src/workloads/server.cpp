// Multithreaded network server in guest assembly (the Figure 9 workload):
// a pool of worker threads accepts requests, alternates compute phases with
// blocking backend I/O, and updates shared pages (job table, response cache,
// statistics) that create the inter-thread dependencies the DDT tracks.
// Each worker also has a private scratch page so thread-local traffic does
// not alias shared pages.
#include <sstream>

#include "workloads/workloads.hpp"

namespace rse::workloads {

std::string server_source(const ServerParams& p) {
  std::ostringstream s;

  s << ".data\n";
  s << ".align 12\njobs:    .space 4096\n";   // shared job-table + stats page
  s << ".align 12\ncache:   .space " << 8 * 4096 << "\n";  // 8 shared cache pages
  s << ".align 12\nscratch: .space " << (p.threads + 1) * 4096 << "\n";  // private pages
  s << "tids: .space " << p.threads * 4 << "\n";

  s << ".text\nmain:\n";
  if (p.enable_ddt) {
    s << "  chk frame, 1, nblk, r0, 3    # enable the DDT module\n";
  }
  s << "  li s0, 0\n";
  s << "spawn_loop:\n";
  s << "  li t0, " << p.threads << "\n";
  s << R"(  bge s0, t0, join_init
  la a0, worker
  move a1, s0
  li v0, 6
  syscall               # thread_create(worker, id) -> tid
  sll t1, s0, 2
  la t2, tids
  add t2, t2, t1
  sw v0, 0(t2)
  addi s0, s0, 1
  b spawn_loop
join_init:
  li s0, 0
join_loop:
)";
  s << "  li t0, " << p.threads << "\n";
  s << R"(  bge s0, t0, all_done
  sll t1, s0, 2
  la t2, tids
  add t2, t2, t1
  lw a0, 0(t2)
  li v0, 9
  syscall               # join tid
  addi s0, s0, 1
  b join_loop
all_done:
  la t0, jobs
  lw a0, 2048(t0)
  li v0, 2
  syscall               # print requests handled
  li a0, 10
  li v0, 3
  syscall
  li a0, 0
  li v0, 1
  syscall

worker:
  move s7, a0           # worker id
  # private scratch page for this worker
  la s2, scratch
  sll t0, s7, 12
  add s2, s2, t0
  # per-worker LCG state
  li t0, 2654435761
  mul s3, s7, t0
  addi s3, s3, 12345
work_loop:
  li v0, 10
  syscall               # accept -> v0 (request id or -1)
  li t0, -1
  beq v0, t0, work_done
  move s6, v0           # request id
  # record the job in the shared job table (page write -> ownership change)
  la t1, jobs
  andi t2, s6, 127
  sll t2, t2, 4
  add t1, t1, t2
  sw s6, 0(t1)
  sw s7, 4(t1)
  li s4, 0              # I/O phase counter
phase_loop:
)";
  s << "  li t0, " << p.io_phases << "\n";
  s << R"(  bge s4, t0, respond
  li s5, 0
compute_loop:
)";
  s << "  li t0, " << p.compute_iters << "\n";
  s << R"(  bge s5, t0, compute_done
  li t3, 1664525
  mul s3, s3, t3
  li t3, 1013904223
  add s3, s3, t3
  srl t3, s3, 8
  andi t3, t3, 1023
  sll t3, t3, 2
  add t3, s2, t3        # private scratch word
  lw t4, 0(t3)
  add t4, t4, s3
  sw t4, 0(t3)
  addi s5, s5, 1
  b compute_loop
compute_done:
  li v0, 11
  syscall               # blocking backend I/O
  addi s4, s4, 1
  b phase_loop
respond:
  # consult and update a randomly selected shared response-cache page
  # (read -> dependency, write -> SavePage when another worker owned it);
  # randomizing the page makes sharing instances grow with the pool size,
  # as in the paper's Figure 9
  la t1, cache
  srl t2, s3, 13
  andi t2, t2, 7
  sll t2, t2, 12        # one of 8 cache pages
  add t1, t1, t2
  andi t2, s6, 63
  sll t2, t2, 6
  add t1, t1, t2
  lw t3, 0(t1)
  add t3, t3, s6
  sw t3, 0(t1)
  # bump the shared handled-requests counter (lives on the job page)
  la t1, jobs
  lw t3, 2048(t1)
  addi t3, t3, 1
  sw t3, 2048(t1)
  move a0, s6
  li v0, 12
  syscall               # reply
  b work_loop
work_done:
  li v0, 7
  syscall               # thread_exit
)";
  return s.str();
}

}  // namespace rse::workloads
