// Simulated-annealing placement kernel in guest assembly — the structural
// analog of SPEC2000 vpr's placement phase: random displacement moves on a
// grid, half-perimeter-style cost deltas, temperature-dependent acceptance.
// The move-evaluation body is replicated into 32 variants reached through a
// jump table indexed by net id (the way a compiler lowers vpr's switches),
// giving realistic instruction-cache footprint and indirect-branch
// behaviour.  The net array is sized beyond the L2 capacity so the kernel
// generates real main-memory traffic (which is what the RSE arbiter
// penalizes).  Grid, cell and net counts are powers of two so random
// indices come from masking (no divider pressure).
#include <sstream>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "workloads/workloads.hpp"

namespace rse::workloads {

std::string vpr_place_source(const PlaceParams& p) {
  Xorshift64 rng(p.seed);
  std::ostringstream s;
  const u32 variants = 32;
  const u32 net_mask = p.nets - 1;
  const u32 grid_mask = p.grid - 1;

  s << ".data\n.align 4\n";
  s << "xs:\n";
  for (u32 i = 0; i < p.cells; ++i) s << "  .word " << (rng.next() & grid_mask) << "\n";
  s << "ys:\n";
  for (u32 i = 0; i < p.cells; ++i) s << "  .word " << (rng.next() & grid_mask) << "\n";
  s << "nets:\n";
  for (u32 i = 0; i < p.nets; ++i) {
    const u64 a = rng.next_below(p.cells);
    u64 b = rng.next_below(p.cells);
    if (b == a) b = (b + 1) % p.cells;
    s << "  .word " << a << ", " << b << "\n";
  }
  s << "jumptable:\n";
  for (u32 v = 0; v < variants; ++v) s << "  .word var_" << v << "\n";
  s << "accepted: .word 0\n";

  // Register plan:
  //   s0=&xs s1=&ys s2=&nets s3=lcg state s4=temperature s5=move counter
  //   s6=temp-level counter s7=accepted count fp=&jumptable
  s << ".text\nmain:\n";
  s << "  la s0, xs\n  la s1, ys\n  la s2, nets\n  la fp, jumptable\n";
  s << "  li s3, " << (rng.next() & 0x7FFFFFFF) << "\n";
  s << "  li s4, 512\n";  // initial temperature (acceptance threshold /1024)
  s << "  li s6, 0\n  li s7, 0\n";
  s << "temp_loop:\n";
  s << "  li t0, " << p.temps << "\n";
  s << "  bge s6, t0, done\n";
  s << "  li s5, 0\n";
  s << "move_loop:\n";
  s << "  li t0, " << p.moves_per_temp << "\n";
  s << "  bge s5, t0, temp_next\n";
  // rand: s3 = s3*1664525 + 1013904223
  s << R"(  li t0, 1664525
  mul s3, s3, t0
  li t0, 1013904223
  add s3, s3, t0
  srl t0, s3, 8
)";
  s << "  li t1, " << net_mask << "\n";
  s << "  and t0, t0, t1          # net index\n";
  // dispatch through the jump table (net index low bits pick the variant)
  s << "  andi t2, t0, " << (variants - 1) << "\n";
  s << R"(  sll t2, t2, 2
  add t2, fp, t2
  lw t2, 0(t2)
  jr t2
)";

  for (u32 v = 0; v < variants; ++v) {
    s << "var_" << v << ":\n";
    s << R"(  sll t1, t0, 3
  add t1, s2, t1        # &nets[idx]
  lw t4, 0(t1)          # cell a
  lw t5, 4(t1)          # cell b
  sll t6, t4, 2
  add t6, s0, t6
  lw t6, 0(t6)          # xa
  sll t7, t4, 2
  add t7, s1, t7
  lw t7, 0(t7)          # ya
  sll t8, t5, 2
  add t8, s0, t8
  lw t8, 0(t8)          # xb
  sll t9, t5, 2
  add t9, s1, t9
  lw t9, 0(t9)          # yb
  # old cost = |xa-xb| + |ya-yb|
  sub t1, t6, t8
)";
    s << "  bge t1, r0, pos_x_" << v << "\n";
    s << "  sub t1, r0, t1\n";
    s << "pos_x_" << v << ":\n";
    s << "  sub t2, t7, t9\n";
    s << "  bge t2, r0, pos_y_" << v << "\n";
    s << "  sub t2, r0, t2\n";
    s << "pos_y_" << v << ":\n";
    s << R"(  add t3, t1, t2        # old cost
  # propose new location for cell a
  li t1, 1664525
  mul s3, s3, t1
  li t1, 1013904223
  add s3, s3, t1
  srl t1, s3, 10
)";
    s << "  andi t1, t1, " << grid_mask << "   # nx\n";
    s << "  srl t2, s3, 20\n";
    s << "  andi t2, t2, " << grid_mask << "   # ny\n";
    s << "  sub v0, t1, t8\n";
    s << "  bge v0, r0, pos_nx_" << v << "\n";
    s << "  sub v0, r0, v0\n";
    s << "pos_nx_" << v << ":\n";
    s << "  sub v1, t2, t9\n";
    s << "  bge v1, r0, pos_ny_" << v << "\n";
    s << "  sub v1, r0, v1\n";
    s << "pos_ny_" << v << ":\n";
    s << R"(  add v0, v0, v1        # new cost
  sub v0, v0, t3        # delta
)";
    s << "  blt v0, r0, accept_" << v << "\n";
    // metropolis-style acceptance: small uphill moves pass while hot
    s << R"(  li t3, 1664525
  mul s3, s3, t3
  li t3, 1013904223
  add s3, s3, t3
  srl t3, s3, 12
  andi t3, t3, 1023
)";
    s << "  bge t3, s4, move_next\n";
    s << "  li t3, 4\n";
    s << "  bge v0, t3, move_next   # reject large uphill moves\n";
    s << "accept_" << v << ":\n";
    s << R"(  sll t3, t4, 2
  add t3, s0, t3
  sw t1, 0(t3)          # xs[a] = nx
  sll t3, t4, 2
  add t3, s1, t3
  sw t2, 0(t3)          # ys[a] = ny
  addi s7, s7, 1
  b move_next
)";
  }

  s << R"(move_next:
  addi s5, s5, 1
  b move_loop
temp_next:
  # T = T * 3 / 4
  li t0, 3
  mul s4, s4, t0
  srl s4, s4, 2
  addi s6, s6, 1
  b temp_loop
done:
  la t0, accepted
  sw s7, 0(t0)
  move a0, s7
  li v0, 2
  syscall
  li a0, 10
  li v0, 3
  syscall
  li a0, 0
  li v0, 1
  syscall
)";
  return s.str();
}

}  // namespace rse::workloads
