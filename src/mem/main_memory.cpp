#include "mem/main_memory.hpp"

#include <algorithm>
#include <cassert>

namespace rse::mem {

u8* MainMemory::page_ptr(Addr addr) {
  auto& slot = pages_[page_of(addr)];
  if (!slot) {
    slot = std::make_unique<u8[]>(kPageBytes);
    std::memset(slot.get(), 0, kPageBytes);
  }
  return slot.get();
}

const u8* MainMemory::page_ptr_or_null(Addr addr) const {
  auto it = pages_.find(page_of(addr));
  return it == pages_.end() ? nullptr : it->second.get();
}

u8 MainMemory::read_u8(Addr addr) const {
  const u8* p = page_ptr_or_null(addr);
  return p ? p[addr & (kPageBytes - 1)] : 0;
}

u16 MainMemory::read_u16(Addr addr) const {
  return static_cast<u16>(read_u8(addr) | (read_u8(addr + 1) << 8));
}

u32 MainMemory::read_u32(Addr addr) const {
  // Fast path: whole word within one page.
  const u8* p = page_ptr_or_null(addr);
  const u32 off = addr & (kPageBytes - 1);
  if (p && off + 4 <= kPageBytes) {
    u32 v;
    std::memcpy(&v, p + off, 4);
    return v;
  }
  return static_cast<u32>(read_u16(addr)) | (static_cast<u32>(read_u16(addr + 2)) << 16);
}

void MainMemory::write_u8(Addr addr, u8 value) { page_ptr(addr)[addr & (kPageBytes - 1)] = value; }

void MainMemory::write_u16(Addr addr, u16 value) {
  write_u8(addr, static_cast<u8>(value & 0xFF));
  write_u8(addr + 1, static_cast<u8>(value >> 8));
}

void MainMemory::write_u32(Addr addr, u32 value) {
  u8* p = page_ptr(addr);
  const u32 off = addr & (kPageBytes - 1);
  if (off + 4 <= kPageBytes) {
    std::memcpy(p + off, &value, 4);
    return;
  }
  write_u16(addr, static_cast<u16>(value & 0xFFFF));
  write_u16(addr + 2, static_cast<u16>(value >> 16));
}

void MainMemory::read_block(Addr addr, u8* out, u32 count) const {
  u32 done = 0;
  while (done < count) {
    const u32 off = (addr + done) & (kPageBytes - 1);
    const u32 chunk = std::min(count - done, kPageBytes - off);
    const u8* p = page_ptr_or_null(addr + done);
    if (p) {
      std::memcpy(out + done, p + off, chunk);
    } else {
      std::memset(out + done, 0, chunk);
    }
    done += chunk;
  }
}

void MainMemory::write_block(Addr addr, const u8* data, u32 count) {
  u32 done = 0;
  while (done < count) {
    const u32 off = (addr + done) & (kPageBytes - 1);
    const u32 chunk = std::min(count - done, kPageBytes - off);
    std::memcpy(page_ptr(addr + done) + off, data + done, chunk);
    done += chunk;
  }
}

std::vector<u8> MainMemory::snapshot_page(u32 page) const {
  std::vector<u8> bytes(kPageBytes);
  read_block(page_base(page), bytes.data(), kPageBytes);
  return bytes;
}

void MainMemory::restore_page(u32 page, const std::vector<u8>& bytes) {
  assert(bytes.size() == kPageBytes);
  write_block(page_base(page), bytes.data(), kPageBytes);
}

}  // namespace rse::mem
