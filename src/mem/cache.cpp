#include "mem/cache.hpp"

#include "common/bits.hpp"

namespace rse::mem {

Cache::Cache(CacheConfig config, MemLevel& next) : config_(std::move(config)), next_(&next) {
  if (!is_pow2(config_.size_bytes) || !is_pow2(config_.block_bytes) || config_.assoc == 0) {
    throw ConfigError("cache '" + config_.name + "': size and block must be powers of two");
  }
  if (config_.size_bytes % (config_.block_bytes * config_.assoc) != 0) {
    throw ConfigError("cache '" + config_.name + "': size not divisible by assoc*block");
  }
  num_sets_ = config_.size_bytes / (config_.block_bytes * config_.assoc);
  if (!is_pow2(num_sets_)) {
    throw ConfigError("cache '" + config_.name + "': number of sets must be a power of two");
  }
  block_shift_ = log2_pow2(config_.block_bytes);
  set_shift_ = log2_pow2(num_sets_);
  lines_.assign(static_cast<std::size_t>(num_sets_) * config_.assoc, Line{});
}

Cycle Cache::access(Cycle now, Addr addr, u32 bytes, bool write) {
  ++stats_.accesses;
  ++stamp_;
  const u32 set = set_index(addr);
  const u32 tag = tag_of(addr);
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.assoc];

  // Hit?
  for (u32 w = 0; w < config_.assoc; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      ++stats_.hits;
      line.lru = stamp_;
      if (write) line.dirty = true;
      // Accesses crossing a block boundary pay one extra hit-latency; guest
      // code keeps data aligned so this is rare.
      const bool crosses = ((addr & (config_.block_bytes - 1)) + bytes) > config_.block_bytes;
      return now + config_.hit_latency + (crosses ? config_.hit_latency : 0);
    }
  }

  // Miss: choose LRU victim.
  ++stats_.misses;
  Line* victim = base;
  for (u32 w = 1; w < config_.assoc; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }

  Cycle t = now + config_.hit_latency;  // tag check before going down
  if (victim->valid && victim->dirty) {
    ++stats_.writebacks;
    const Addr victim_addr = ((victim->tag << set_shift_) | set) << block_shift_;
    t = next_->access(t, victim_addr, config_.block_bytes, /*write=*/true);
  }
  t = next_->access(t, addr & ~(config_.block_bytes - 1), config_.block_bytes, /*write=*/false);

  victim->valid = true;
  victim->dirty = write;
  victim->tag = tag;
  victim->lru = stamp_;
  return t;
}

void Cache::flush() {
  for (Line& line : lines_) line = Line{};
}

}  // namespace rse::mem
