// Timing-only set-associative cache model (tags + LRU + dirty bits, no data —
// functional values live in MainMemory).  Matches the paper's simulated
// hierarchy: il1/dl1 8 KB direct-mapped, il2 64 KB 2-way, dl2 128 KB 2-way,
// with write-back write-allocate policy.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "mem/bus.hpp"

namespace rse::mem {

struct CacheConfig {
  std::string name;
  u32 size_bytes = 8 * 1024;
  u32 assoc = 1;
  u32 block_bytes = 32;
  Cycle hit_latency = 1;
};

struct CacheStats {
  u64 accesses = 0;
  u64 hits = 0;
  u64 misses = 0;
  u64 writebacks = 0;

  double miss_rate() const { return accesses == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(accesses); }
};

/// A level that can satisfy block fills: either another cache or the bus.
class MemLevel {
 public:
  virtual ~MemLevel() = default;
  /// Access `bytes` at `addr` (read or write) starting at `now`; returns the
  /// completion cycle.
  virtual Cycle access(Cycle now, Addr addr, u32 bytes, bool write) = 0;
};

/// Bottom of the hierarchy: main memory behind the arbitrated bus.
class BusMemory : public MemLevel {
 public:
  BusMemory(BusArbiter& arbiter, BusSource source) : arbiter_(&arbiter), source_(source) {}

  Cycle access(Cycle now, Addr, u32 bytes, bool) override {
    return arbiter_->request(now, bytes, source_);
  }

 private:
  BusArbiter* arbiter_;
  BusSource source_;
};

class Cache : public MemLevel {
 public:
  Cache(CacheConfig config, MemLevel& next);

  /// Access a single datum (<= block size) at `addr`.  Returns the cycle at
  /// which the datum is available (read) or accepted (write).
  Cycle access(Cycle now, Addr addr, u32 bytes, bool write) override;

  /// Invalidate everything (used when the guest rewrites code, and by tests).
  void flush();

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

  /// Snapshot hook: tag/LRU/dirty state plus statistics (geometry is config).
  template <class Ar>
  void serialize_state(Ar& ar) {
    ar.field(stamp_);
    ar.field(lines_);
    ar.field(stats_);
  }

 private:
  struct Line {
    bool valid = false;
    bool dirty = false;
    u32 tag = 0;
    u64 lru = 0;  // last-touch stamp
  };

  u32 set_index(Addr addr) const { return (addr >> block_shift_) & (num_sets_ - 1); }
  u32 tag_of(Addr addr) const { return addr >> (block_shift_ + set_shift_); }

  CacheConfig config_;
  MemLevel* next_;
  u32 num_sets_;
  u32 block_shift_;
  u32 set_shift_;
  u64 stamp_ = 0;
  std::vector<Line> lines_;  // num_sets_ * assoc, set-major
  CacheStats stats_;
};

}  // namespace rse::mem
