// Functional main memory: a sparse, page-granular byte store for the guest's
// 32-bit address space.  Timing is modeled separately (BusArbiter / Cache);
// this class answers "what value lives at address A" only.
#pragma once

#include <algorithm>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace rse::mem {

inline constexpr u32 kPageShift = 12;  // 4 KB pages (also the DDT granularity)
inline constexpr u32 kPageBytes = 1u << kPageShift;

/// Page number of an address.
constexpr u32 page_of(Addr addr) { return addr >> kPageShift; }
constexpr Addr page_base(u32 page) { return page << kPageShift; }

class MainMemory {
 public:
  u8 read_u8(Addr addr) const;
  u16 read_u16(Addr addr) const;
  u32 read_u32(Addr addr) const;

  void write_u8(Addr addr, u8 value);
  void write_u16(Addr addr, u16 value);
  void write_u32(Addr addr, u32 value);

  /// Bulk copy out of guest memory (used by the MAU and checkpointing).
  void read_block(Addr addr, u8* out, u32 count) const;
  /// Bulk copy into guest memory.
  void write_block(Addr addr, const u8* data, u32 count);

  /// Host pointer to the 4 KB page containing `addr` (allocating it if
  /// untouched).  Pages live behind unique_ptr, so the pointer stays valid
  /// across later allocations — the contract the exec/ direct-memory fast
  /// path depends on.  Accesses through it bypass nothing semantically:
  /// this is the same backing store read_u8/write_u32 use.
  u8* host_page(Addr addr) { return page_ptr(addr); }

  /// Snapshot one whole page (allocating it if untouched).
  std::vector<u8> snapshot_page(u32 page) const;
  /// Restore a page snapshot.
  void restore_page(u32 page, const std::vector<u8>& bytes);

  /// Number of distinct pages touched so far.
  std::size_t pages_touched() const { return pages_.size(); }

  /// Sorted page numbers of every touched page.
  std::vector<u32> page_numbers() const {
    std::vector<u32> pages;
    pages.reserve(pages_.size());
    for (const auto& [page, data] : pages_) pages.push_back(page);
    std::sort(pages.begin(), pages.end());
    return pages;
  }

  /// Snapshot hook: the byte image is the sorted set of touched pages.  A
  /// restore drops every existing page first, so the restored store is
  /// byte-identical even if the target had touched pages the snapshot lacks.
  template <class Ar>
  void serialize_state(Ar& ar) {
    if constexpr (Ar::kIsWriter) {
      const std::vector<u32> pages = page_numbers();
      u64 count = pages.size();
      ar.raw(&count, sizeof count);
      for (u32 page : pages) {
        ar.raw(&page, sizeof page);
        ar.raw(pages_.at(page).get(), kPageBytes);
      }
    } else {
      pages_.clear();
      u64 count = 0;
      ar.raw(&count, sizeof count);
      for (u64 i = 0; i < count; ++i) {
        u32 page = 0;
        ar.raw(&page, sizeof page);
        ar.raw(page_ptr(page_base(page)), kPageBytes);
      }
    }
  }

 private:
  u8* page_ptr(Addr addr);
  const u8* page_ptr_or_null(Addr addr) const;

  // unique_ptr to fixed arrays keeps page data stable across rehashing.
  std::unordered_map<u32, std::unique_ptr<u8[]>> pages_;
};

}  // namespace rse::mem
