// Off-chip memory bus timing model and arbiter.
//
// Memory access is pipelined (paper section 5.2): the first chunk of a
// transfer arrives after `first_chunk_cycles`, each subsequent chunk after
// `inter_chunk_cycles`.  The baseline machine uses 18/2; with the RSE present
// the arbiter between the pipeline and the MAU adds one cycle to each,
// giving 19/3 — exactly the change the paper simulates.
//
// The arbiter serializes transfers on the single bus.  Requests from the main
// pipeline (cache refills/writebacks) take priority over MAU requests issued
// in the same cycle; this falls out of the simulation order (the core is
// stepped before the RSE each cycle) and is additionally asserted by the
// per-source accounting kept here.
#pragma once

#include "common/types.hpp"

namespace rse::mem {

struct BusTiming {
  u32 first_chunk_cycles = 18;
  u32 inter_chunk_cycles = 2;
  u32 chunk_bytes = 8;

  /// Latency of transferring `bytes` (>=1) bytes.
  Cycle transfer_cycles(u32 bytes) const {
    const u32 chunks = (bytes + chunk_bytes - 1) / chunk_bytes;
    return first_chunk_cycles + static_cast<Cycle>(chunks == 0 ? 0 : chunks - 1) * inter_chunk_cycles;
  }
};

enum class BusSource : u8 { kPipeline, kMau };

struct BusStats {
  u64 pipeline_transfers = 0;
  u64 mau_transfers = 0;
  u64 pipeline_wait_cycles = 0;  // cycles pipeline requests spent queued behind the bus
  u64 mau_wait_cycles = 0;
  u64 busy_cycles = 0;  // total cycles the bus spent transferring
};

class BusArbiter {
 public:
  explicit BusArbiter(BusTiming timing) : timing_(timing) {}

  const BusTiming& timing() const { return timing_; }
  void set_timing(BusTiming timing) { timing_ = timing; }

  /// Request a transfer of `bytes` at cycle `now`; returns the cycle at which
  /// the transfer completes.  The bus is occupied until then.
  Cycle request(Cycle now, u32 bytes, BusSource source) {
    const Cycle start = now > busy_until_ ? now : busy_until_;
    const Cycle wait = start - now;
    const Cycle latency = timing_.transfer_cycles(bytes);
    busy_until_ = start + latency;
    stats_.busy_cycles += latency;
    if (source == BusSource::kPipeline) {
      ++stats_.pipeline_transfers;
      stats_.pipeline_wait_cycles += wait;
    } else {
      ++stats_.mau_transfers;
      stats_.mau_wait_cycles += wait;
    }
    return busy_until_;
  }

  Cycle busy_until() const { return busy_until_; }
  const BusStats& stats() const { return stats_; }
  void reset_stats() { stats_ = BusStats{}; }

  /// Snapshot hook: occupancy horizon plus statistics.
  template <class Ar>
  void serialize_state(Ar& ar) {
    ar.field(busy_until_);
    ar.field(stats_);
  }

 private:
  BusTiming timing_;
  Cycle busy_until_ = 0;
  BusStats stats_;
};

}  // namespace rse::mem
