// Bit-manipulation helpers used by the ISA encoder/decoder and hardware models.
#pragma once

#include <cassert>

#include "common/types.hpp"

namespace rse {

/// Extract `count` bits starting at bit position `lsb` (0 = least significant).
constexpr u32 bits(u32 value, unsigned lsb, unsigned count) {
  assert(lsb < 32 && count >= 1 && count <= 32 && lsb + count <= 32);
  const u32 mask = count == 32 ? ~0u : ((1u << count) - 1u);
  return (value >> lsb) & mask;
}

/// Insert the low `count` bits of `field` into `value` at position `lsb`.
constexpr u32 insert_bits(u32 value, unsigned lsb, unsigned count, u32 field) {
  assert(lsb < 32 && count >= 1 && count <= 32 && lsb + count <= 32);
  const u32 mask = (count == 32 ? ~0u : ((1u << count) - 1u)) << lsb;
  return (value & ~mask) | ((field << lsb) & mask);
}

/// Sign-extend the low `count` bits of `value` to a signed 32-bit integer.
constexpr i32 sign_extend(u32 value, unsigned count) {
  assert(count >= 1 && count <= 32);
  const u32 shift = 32 - count;
  return static_cast<i32>(value << shift) >> shift;
}

/// True if `value` is a power of two (and nonzero).
constexpr bool is_pow2(u64 value) { return value != 0 && (value & (value - 1)) == 0; }

/// log2 of a power-of-two value.
constexpr unsigned log2_pow2(u64 value) {
  assert(is_pow2(value));
  unsigned n = 0;
  while (value > 1) {
    value >>= 1;
    ++n;
  }
  return n;
}

/// Round `value` up to the next multiple of power-of-two `align`.
constexpr u32 align_up(u32 value, u32 align) {
  assert(is_pow2(align));
  return (value + align - 1) & ~(align - 1);
}

}  // namespace rse
