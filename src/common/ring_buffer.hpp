// Fixed-capacity circular FIFO used for hardware queue models (fetch buffer,
// MAU request queue, network event queues).  Capacity is set at construction;
// no reallocation ever happens, matching the fixed-size hardware structures.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace rse {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : slots_(capacity) { assert(capacity > 0); }

  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == slots_.size(); }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }

  /// Push to the back.  Precondition: !full().
  void push(T value) {
    assert(!full());
    slots_[(head_ + size_) % slots_.size()] = std::move(value);
    ++size_;
  }

  /// Pop from the front.  Precondition: !empty().
  T pop() {
    assert(!empty());
    T value = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --size_;
    return value;
  }

  const T& front() const {
    assert(!empty());
    return slots_[head_];
  }

  T& front() {
    assert(!empty());
    return slots_[head_];
  }

  /// Element `i` positions behind the front (0 == front).
  const T& at(std::size_t i) const {
    assert(i < size_);
    return slots_[(head_ + i) % slots_.size()];
  }

  T& at(std::size_t i) {
    assert(i < size_);
    return slots_[(head_ + i) % slots_.size()];
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

  /// Snapshot hook: serializes all slots (capacity is part of the image, so
  /// restore must target a buffer constructed with the same capacity).
  template <class Ar>
  void serialize_state(Ar& ar) {
    ar.field(slots_);
    u64 head = head_;
    u64 size = size_;
    ar.field(head);
    ar.field(size);
    head_ = static_cast<std::size_t>(head);
    size_ = static_cast<std::size_t>(size);
  }

 private:
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace rse
