// Error types for the library's public API.  Simulator construction and guest
// program assembly report problems through exceptions derived from SimError;
// per-cycle hardware models never throw.
#pragma once

#include <stdexcept>
#include <string>

namespace rse {

/// Base class for all errors raised by the RSE simulator library.
class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Raised by the assembler on malformed guest assembly.
class AssemblyError : public SimError {
 public:
  using SimError::SimError;
};

/// Raised when a guest program performs an unrecoverable illegal action
/// (e.g. misaligned access with trapping disabled, unknown syscall).
class GuestError : public SimError {
 public:
  using SimError::SimError;
};

/// Raised on invalid simulator configuration (non-power-of-two cache size...).
class ConfigError : public SimError {
 public:
  using SimError::SimError;
};

}  // namespace rse
