// Byte-exact value-state serialization used by whole-machine snapshots
// (rse::os::MachineSnapshot).  A component exposes
//
//   template <class Ar> void serialize_state(Ar& ar) { ar.field(a_); ... }
//
// and the same member function both captures (snap::Writer) and restores
// (snap::Reader) its value state.  Only *value* state goes through here:
// pointers, callbacks and other wiring are reconstructed by re-running the
// normal construction/load path before restoring, so the archive never has
// to encode object identity.
//
// Unordered containers are serialized in sorted key order so the byte image
// is a pure function of the value state, independent of hash seeds or
// insertion history.
#pragma once

#include <algorithm>
#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace rse::snap {

class Writer;
class Reader;

template <class Ar, typename T>
void serialize_value(Ar& ar, T& value);

/// Appends value state to a growing byte buffer.
class Writer {
 public:
  static constexpr bool kIsWriter = true;

  void raw(const void* data, std::size_t bytes) {
    const u8* p = static_cast<const u8*>(data);
    bytes_.insert(bytes_.end(), p, p + bytes);
  }

  template <typename T>
  void field(T& value) {
    serialize_value(*this, value);
  }

  /// Structural guard: the matching Reader::marker throws on mismatch, which
  /// localizes capture/restore schema drift to the component that diverged.
  void marker(u32 tag) { raw(&tag, sizeof tag); }

  std::vector<u8> take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<u8> bytes_;
};

/// Reads value state back out of a byte buffer produced by Writer.
class Reader {
 public:
  static constexpr bool kIsWriter = false;

  explicit Reader(const std::vector<u8>& bytes) : bytes_(&bytes) {}

  void raw(void* data, std::size_t bytes) {
    if (pos_ + bytes > bytes_->size()) {
      throw SimError("snapshot restore: truncated archive");
    }
    std::memcpy(data, bytes_->data() + pos_, bytes);
    pos_ += bytes;
  }

  template <typename T>
  void field(T& value) {
    serialize_value(*this, value);
  }

  void marker(u32 tag) {
    u32 got = 0;
    raw(&got, sizeof got);
    if (got != tag) throw SimError("snapshot restore: archive marker mismatch");
  }

  bool exhausted() const { return pos_ == bytes_->size(); }

 private:
  const std::vector<u8>* bytes_;
  std::size_t pos_ = 0;
};

namespace detail {

template <class Ar, typename T>
concept HasSerializeState = requires(Ar& ar, T& v) { v.serialize_state(ar); };

template <typename T>
struct IsStdContainer : std::false_type {};
template <typename T, typename A>
struct IsStdContainer<std::vector<T, A>> : std::true_type {};
template <typename T, typename A>
struct IsStdContainer<std::deque<T, A>> : std::true_type {};

}  // namespace detail

template <class Ar, typename T>
void serialize_sequence(Ar& ar, T& seq) {
  u64 count = seq.size();
  ar.raw(&count, sizeof count);
  if constexpr (!Ar::kIsWriter) {
    seq.clear();
    seq.resize(static_cast<std::size_t>(count));
  }
  for (auto& element : seq) serialize_value(ar, element);
}

template <class Ar, typename K, typename V>
void serialize_sorted_map(Ar& ar, std::unordered_map<K, V>& map) {
  if constexpr (Ar::kIsWriter) {
    std::vector<K> keys;
    keys.reserve(map.size());
    for (const auto& [k, v] : map) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    u64 count = keys.size();
    ar.raw(&count, sizeof count);
    for (K& k : keys) {
      serialize_value(ar, k);
      serialize_value(ar, map.at(k));
    }
  } else {
    map.clear();
    u64 count = 0;
    ar.raw(&count, sizeof count);
    map.reserve(static_cast<std::size_t>(count));
    for (u64 i = 0; i < count; ++i) {
      K k{};
      serialize_value(ar, k);
      V v{};
      serialize_value(ar, v);
      map.emplace(std::move(k), std::move(v));
    }
  }
}

template <class Ar, typename K>
void serialize_sorted_set(Ar& ar, std::unordered_set<K>& set) {
  if constexpr (Ar::kIsWriter) {
    std::vector<K> keys(set.begin(), set.end());
    std::sort(keys.begin(), keys.end());
    u64 count = keys.size();
    ar.raw(&count, sizeof count);
    for (K& k : keys) serialize_value(ar, k);
  } else {
    set.clear();
    u64 count = 0;
    ar.raw(&count, sizeof count);
    set.reserve(static_cast<std::size_t>(count));
    for (u64 i = 0; i < count; ++i) {
      K k{};
      serialize_value(ar, k);
      set.insert(std::move(k));
    }
  }
}

template <class Ar, typename T>
void serialize_value(Ar& ar, T& value) {
  if constexpr (detail::HasSerializeState<Ar, T>) {
    value.serialize_state(ar);
  } else if constexpr (detail::IsStdContainer<T>::value) {
    using Element = typename T::value_type;
    if constexpr (std::is_trivially_copyable_v<Element> &&
                  std::is_same_v<T, std::vector<Element>>) {
      u64 count = value.size();
      ar.raw(&count, sizeof count);
      if constexpr (!Ar::kIsWriter) value.resize(static_cast<std::size_t>(count));
      if (count != 0) ar.raw(value.data(), value.size() * sizeof(Element));
    } else {
      serialize_sequence(ar, value);
    }
  } else if constexpr (std::is_trivially_copyable_v<T>) {
    ar.raw(&value, sizeof value);
  } else {
    static_assert(detail::HasSerializeState<Ar, T>,
                  "type has no serialize_state and no generic encoding");
  }
}

template <class Ar>
void serialize_value(Ar& ar, std::string& value) {
  u64 count = value.size();
  ar.raw(&count, sizeof count);
  if constexpr (!Ar::kIsWriter) value.resize(static_cast<std::size_t>(count));
  if (count != 0) ar.raw(value.data(), value.size());
}

template <class Ar, typename K, typename V>
void serialize_value(Ar& ar, std::map<K, V>& value) {
  if constexpr (Ar::kIsWriter) {
    u64 count = value.size();
    ar.raw(&count, sizeof count);
    for (auto& [k, v] : value) {
      K key = k;
      serialize_value(ar, key);
      serialize_value(ar, v);
    }
  } else {
    value.clear();
    u64 count = 0;
    ar.raw(&count, sizeof count);
    for (u64 i = 0; i < count; ++i) {
      K k{};
      serialize_value(ar, k);
      V v{};
      serialize_value(ar, v);
      value.emplace_hint(value.end(), std::move(k), std::move(v));
    }
  }
}

template <class Ar, typename K>
void serialize_value(Ar& ar, std::set<K>& value) {
  if constexpr (Ar::kIsWriter) {
    u64 count = value.size();
    ar.raw(&count, sizeof count);
    for (const K& k : value) {
      K key = k;
      serialize_value(ar, key);
    }
  } else {
    value.clear();
    u64 count = 0;
    ar.raw(&count, sizeof count);
    for (u64 i = 0; i < count; ++i) {
      K k{};
      serialize_value(ar, k);
      value.insert(value.end(), std::move(k));
    }
  }
}

template <class Ar, typename K, typename V>
void serialize_value(Ar& ar, std::unordered_map<K, V>& value) {
  serialize_sorted_map(ar, value);
}

template <class Ar, typename K>
void serialize_value(Ar& ar, std::unordered_set<K>& value) {
  serialize_sorted_set(ar, value);
}

template <class Ar, typename T>
void serialize_value(Ar& ar, std::optional<T>& value) {
  u8 has = value.has_value() ? 1 : 0;
  ar.raw(&has, sizeof has);
  if constexpr (!Ar::kIsWriter) {
    if (has) {
      value.emplace();
    } else {
      value.reset();
    }
  }
  if (has) serialize_value(ar, *value);
}

}  // namespace rse::snap
