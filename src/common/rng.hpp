// Deterministic, seedable RNG used by hardware models (MLR randomizer) and
// workload generators.  xorshift64* is small enough to reason about as a
// stand-in for the paper's "clock cycle counter" entropy source while still
// giving well-distributed values for workload generation.
#pragma once

#include "common/types.hpp"

namespace rse {

class Xorshift64 {
 public:
  explicit Xorshift64(u64 seed = 0x9E3779B97F4A7C15ull) : state_(seed ? seed : 1) {}

  /// Next 64-bit pseudo-random value.
  u64 next() {
    u64 x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform value in [0, bound). bound must be nonzero.
  u64 next_below(u64 bound) { return next() % bound; }

  /// Uniform value in [lo, hi] inclusive.
  i64 next_in(i64 lo, i64 hi) {
    return lo + static_cast<i64>(next_below(static_cast<u64>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_unit() { return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Snapshot hook: the whole generator is its 64-bit state word.
  template <class Ar>
  void serialize_state(Ar& ar) {
    ar.field(state_);
  }

 private:
  u64 state_;
};

}  // namespace rse
