// Fundamental type aliases shared across the simulator.
#pragma once

#include <cstdint>

namespace rse {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Byte address in the simulated 32-bit physical/virtual address space.
using Addr = u32;

/// Simulated machine cycle count.
using Cycle = u64;

/// A 32-bit machine word (register value or encoded instruction).
using Word = u32;

/// Identifier of a guest thread (index into the guest process' thread table).
using ThreadId = u32;

/// Sentinel for "no thread".
inline constexpr ThreadId kNoThread = 0xFFFFFFFFu;

}  // namespace rse
